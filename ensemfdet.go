// Package ensemfdet is a from-scratch Go implementation of ENSEMFDET, the
// ensemble approach to fraud detection on bipartite graphs of Ren, Zhu,
// Zhang, Dai and Bo (ICDE 2021; arXiv:1912.11113).
//
// ENSEMFDET finds groups of fraudsters — dense, synchronized blocks in the
// "who buy-from where" user-merchant purchase graph — by decomposing the
// graph into N structurally sampled subgraphs, running the FDET greedy
// densest-block heuristic on every sample in parallel, and majority-voting
// the per-sample detections into a final fraud set whose size is controlled
// continuously by a vote threshold T.
//
// The package is a facade over the building blocks in internal/: construct
// a Graph, configure a Detector, call Detect or Votes, and evaluate with
// the Labels helpers. The cmd/ tools and examples/ directories show complete
// workflows, and internal/experiments regenerates every table and figure of
// the paper's evaluation.
//
//	g, _ := ensemfdet.ReadGraphFile("transactions.tsv")
//	det := ensemfdet.NewDetector(ensemfdet.Config{})
//	res, _ := det.Detect(g, 40) // accept nodes with ≥ 40 of 80 votes
//	fmt.Println(res.Users)
package ensemfdet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/core"
	"ensemfdet/internal/density"
	"ensemfdet/internal/fdet"
	"ensemfdet/internal/persist"
	"ensemfdet/internal/replicate"
	"ensemfdet/internal/sampling"
	"ensemfdet/internal/serve"
	"ensemfdet/internal/stream"
)

// Graph is an immutable bipartite "who buy-from where" purchase graph.
type Graph = bipartite.Graph

// Edge is one purchase: user U bought from merchant V.
type Edge = bipartite.Edge

// GraphBuilder accumulates edges into a Graph.
type GraphBuilder = bipartite.Builder

// NewGraphBuilder returns an empty builder; side sizes are inferred from the
// edges added.
func NewGraphBuilder() *GraphBuilder { return bipartite.NewBuilder() }

// NewGraph constructs a Graph with declared side sizes from an edge list.
func NewGraph(numUsers, numMerchants int, edges []Edge) (*Graph, error) {
	return bipartite.FromEdges(numUsers, numMerchants, edges)
}

// ReadGraph parses a text edge list ("user<TAB>merchant" per line, '#'
// comments allowed) into a Graph.
func ReadGraph(r io.Reader) (*Graph, error) { return bipartite.ReadEdgeList(r) }

// ReadGraphFile reads an edge-list file.
func ReadGraphFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ensemfdet: %w", err)
	}
	defer f.Close()
	return ReadGraph(f)
}

// ReadGraphFileMax reads an edge-list file, rejecting any node id above
// maxID. Ids are dense indices — graph memory scales with the largest id,
// not the edge count — so use this for untrusted inputs.
func ReadGraphFileMax(path string, maxID uint32) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ensemfdet: %w", err)
	}
	defer f.Close()
	return bipartite.ReadEdgeListMax(f, maxID)
}

// ReadEdgesFile parses an edge-list file into a raw edge slice without
// building a graph, rejecting node ids above maxID — the right shape for
// feeding a StreamGraph, which dedups and builds snapshots itself.
func ReadEdgesFile(path string, maxID uint32) ([]Edge, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ensemfdet: %w", err)
	}
	defer f.Close()
	return bipartite.ReadEdgesMax(f, maxID)
}

// WriteGraph writes g as a text edge list.
func WriteGraph(w io.Writer, g *Graph) error { return bipartite.WriteEdgeList(w, g) }

// SamplerKind selects the structural sampling method M of Algorithm 2
// (paper §IV-A).
type SamplerKind string

// The four sampling methods analysed in the paper.
const (
	// RandomEdgeSampling draws S·|E| edges uniformly (RES, the default —
	// it is the method the paper fixes for the parameter studies).
	RandomEdgeSampling SamplerKind = "RES"
	// UserNodeSampling draws S·|U| users keeping all their edges
	// ("Node_PIN_Bagging" — the paper shows it is the weakest choice when
	// merchants carry the density).
	UserNodeSampling SamplerKind = "ONS-user"
	// MerchantNodeSampling draws S·|V| merchants keeping all their edges
	// ("Node_Merchant_Bagging" — retains dense topology when
	// Davg(merchant) ≫ Davg(user)).
	MerchantNodeSampling SamplerKind = "ONS-merchant"
	// TwoSideNodeSampling draws S of both sides and keeps the
	// cross-section; samples hold ≈ S²·|E| edges.
	TwoSideNodeSampling SamplerKind = "TNS"
)

// Config carries the ensemble parameters of the paper's Table II. The zero
// value reproduces the paper's main setting: RES, N = 80, S = 0.1,
// column-weighted density with c = 5, automatic kˆ truncation.
type Config struct {
	// Sampler is the structural sampling method M. Empty means RES.
	Sampler SamplerKind
	// NumSamples is N, the number of sampled subgraphs (0 → 80).
	NumSamples int
	// SampleRatio is S ∈ (0,1] (0 → 0.1).
	SampleRatio float64
	// Parallelism caps the worker pool (0 → GOMAXPROCS).
	Parallelism int
	// Seed fixes all sampling randomness; runs are fully deterministic.
	Seed int64
	// DensityC is the c constant of Definition 2's 1/log(d+c) merchant
	// weighting (0 → 5, the FRAUDAR reference value).
	DensityC float64
	// UseAvgDegreeMetric switches the density score to Charikar's
	// unweighted |E(S)|/|S| (an ablation; loses camouflage resistance).
	UseAvgDegreeMetric bool
	// FixedK disables automatic truncation and makes FDET return exactly
	// K blocks per sample (the ENSEMFDET-FIX-K ablation). 0 keeps the
	// paper's kˆ = argmin Δ²φ rule.
	FixedK int
	// MaxBlocksPerSample caps FDET rounds per sample (0 → 50).
	MaxBlocksPerSample int
}

// RepetitionRate returns R = S × N (Table II).
func (c Config) RepetitionRate() float64 { return c.coreConfig().RepetitionRate() }

func (c Config) metric() density.Metric {
	if c.UseAvgDegreeMetric {
		return density.AvgDegree{}
	}
	cc := c.DensityC
	if cc == 0 {
		cc = density.DefaultC
	}
	return density.ColumnWeighted{C: cc}
}

func (c Config) sampler() (sampling.Method, error) {
	if c.Sampler == "" {
		return sampling.RandomEdge{}, nil
	}
	return sampling.ByName(string(c.Sampler))
}

func (c Config) coreConfig() core.Config {
	return core.Config{
		NumSamples:  c.NumSamples,
		SampleRatio: c.SampleRatio,
		Parallelism: c.Parallelism,
		Seed:        c.Seed,
		FDet: fdet.Options{
			Metric:    c.metric(),
			FixedK:    c.FixedK,
			MaxBlocks: c.MaxBlocksPerSample,
		},
	}
}

// Detector runs the ENSEMFDET pipeline. It is safe for concurrent use; each
// call runs an independent ensemble.
type Detector struct {
	cfg    Config
	method sampling.Method
}

// NewDetector validates the configuration and returns a Detector.
func NewDetector(cfg Config) (*Detector, error) {
	m, err := cfg.sampler()
	if err != nil {
		return nil, err
	}
	if !core.ValidSampleRatio(cfg.SampleRatio) {
		return nil, fmt.Errorf("ensemfdet: sample ratio S must be in (0,1], got %g", cfg.SampleRatio)
	}
	return &Detector{cfg: cfg, method: m}, nil
}

// Votes holds per-node vote counts; see the methods for MVA thresholding.
type Votes = core.Votes

// Result is a final detection at one vote threshold.
type Result struct {
	// Users and Merchants are the accepted fraud sets (U_final, V_final of
	// Algorithm 2), ascending by id.
	Users     []uint32
	Merchants []uint32
	// Threshold is the MVA threshold T that produced the sets.
	Threshold int
	// NumSamples is the ensemble size N the votes came from.
	NumSamples int
}

// Votes runs the parallel ensemble phase (sampling + FDET + vote
// aggregation) and returns the vote counts, from which any number of
// thresholds can be evaluated without re-running detection.
func (d *Detector) Votes(g *Graph) (*Votes, error) {
	cc := d.cfg.coreConfig()
	cc.Method = d.method
	out, err := core.Run(g, cc)
	if err != nil {
		return nil, err
	}
	return &out.Votes, nil
}

// Detect runs the full pipeline and applies majority voting at threshold t.
func (d *Detector) Detect(g *Graph, t int) (Result, error) {
	votes, err := d.Votes(g)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Users:      votes.AcceptUsers(t),
		Merchants:  votes.AcceptMerchants(t),
		Threshold:  t,
		NumSamples: votes.NumSamples,
	}, nil
}

// Block is one dense subgraph detected by the FDET heuristic.
type Block = fdet.Block

// DetectBlocks runs plain FDET (no sampling, no ensemble) on the whole
// graph and returns the truncated block list — the building block the
// ensemble repeats per sample, exposed for diagnostics and for
// FRAUDAR-style single-shot detection.
func DetectBlocks(g *Graph, cfg Config) []Block {
	res := fdet.Detect(g, fdet.Options{
		Metric:    cfg.metric(),
		FixedK:    cfg.FixedK,
		MaxBlocks: cfg.MaxBlocksPerSample,
	})
	return res.Blocks
}

// DensityScore returns φ(G) of the whole graph under the configured metric
// (Definition 2).
func DensityScore(g *Graph, cfg Config) float64 {
	return density.Score(g, cfg.metric())
}

// --- streaming / serving layer ---
//
// The batch API above runs one ensemble per call. The streaming layer below
// is the daemon-shaped alternative: ingest purchase edges incrementally into
// a StreamGraph, then answer detection queries through a DetectEngine that
// caches ensemble votes per (graph version, config) — so threshold sweeps,
// re-queries and rankings against an unchanged graph are cache hits, and new
// edges invalidate exactly by bumping the version. cmd/ensemfdetd wraps the
// whole stack in an HTTP daemon.

// MaxNodeID is the largest node id the graph substrate supports; ids are
// dense uint32 indices and CSR offsets index by id+1.
const MaxNodeID = bipartite.MaxNodeID

// StreamGraph is a mutable, concurrency-safe dynamic bipartite graph with a
// monotonic version counter and cached immutable snapshots. Ingest is
// sharded across user-range partitions for multi-core writers, and
// snapshots are built incrementally from per-shard deltas; neither affects
// detection results.
type StreamGraph = stream.Graph

// NewStreamGraph returns an empty dynamic graph at version 0 with a default
// shard count near GOMAXPROCS.
func NewStreamGraph() *StreamGraph { return stream.New() }

// MaxStreamShards is the largest accepted ingest shard count.
const MaxStreamShards = stream.MaxShards

// NewStreamGraphSharded returns an empty dynamic graph with the given ingest
// shard count, rounded up to a power of two and clamped to
// [1, MaxStreamShards]; 0 selects the default. Shard count trades write
// concurrency against per-batch scan overhead and is invisible to readers:
// snapshots — and therefore votes — are byte-identical across shard counts.
func NewStreamGraphSharded(shards int) *StreamGraph { return stream.NewSharded(shards) }

// WindowPolicy bounds a StreamGraph's live edge set for unbounded streams:
// by wall-clock age, by version age, by live edge count, or any combination.
// Install with StreamGraph.SetWindow; apply with StreamGraph.Retire (the
// daemon runs a periodic retire ticker via -retire-every). Expired edges
// leave the dedup set, so a re-observed purchase re-ingests with fresh
// recency.
type WindowPolicy = stream.WindowPolicy

// WindowMark is the expiry watermark: no live edge carries an ingest stamp
// at or below it. Durable snapshots persist the mark so recovery restores
// expiry progress along with the edges.
type WindowMark = stream.WindowMark

// WindowStats reports window policy, watermark, and retire counters.
type WindowStats = stream.WindowStats

// RetireResult summarizes one retire pass or explicit StreamGraph.Remove.
type RetireResult = stream.RetireResult

// DetectEngine serves detection queries over a StreamGraph from a vote
// cache, single-flighting concurrent identical requests.
type DetectEngine = serve.Engine

// DetectParams selects one ensemble configuration for the engine; the zero
// value is the paper's main setting (RES, N = 80, S = 0.1).
type DetectParams = serve.Params

// EngineOptions bounds the engine's concurrency and cache size.
type EngineOptions = serve.Options

// EngineStats reports graph size, version and cache counters.
type EngineStats = serve.Stats

// NewDetectEngine returns an engine serving detections over src.
func NewDetectEngine(src *StreamGraph, opts EngineOptions) *DetectEngine {
	return serve.NewEngine(src, opts)
}

// NewHTTPHandler returns the ensemfdetd HTTP API (POST /v1/edges,
// POST /v1/detect, GET /v1/votes, GET /v1/stats, GET /healthz) over e.
func NewHTTPHandler(e *DetectEngine) http.Handler { return serve.NewHandler(e) }

// HTTPHandlerConfig shapes the HTTP surface by role: read-only mode with a
// primary pointer (the follower's write guard), a mounted replication
// handler, a /readyz gate, and a build version for /metrics.
type HTTPHandlerConfig = serve.HandlerConfig

// NewHTTPHandlerWith returns the ensemfdetd HTTP API over e shaped by cfg.
func NewHTTPHandlerWith(e *DetectEngine, cfg HTTPHandlerConfig) http.Handler {
	return serve.NewHandlerWith(e, cfg)
}

// ReplStats is the replication section of EngineStats (/v1/stats "repl"),
// populated via DetectEngine.AttachRepl.
type ReplStats = serve.ReplStats

// --- durability layer ---

// ErrNodeIDRange tags errors caused by a node id above a configured bound —
// distinct from parse or I/O failures, so callers know raising the bound
// (not fixing the file) is the remedy. ReadEdgesFile, ReadGraphFileMax, and
// DetectEngine.Ingest all wrap it.
var ErrNodeIDRange = bipartite.ErrIDRange

// PersistStore is the daemon's durability engine: a segmented, checksummed
// write-ahead log of ingested edge batches plus binary CSR snapshots, with
// boot-time recovery. Wire it as a StreamGraph's journal (SetJournal) and
// snapshot source (SetSource); see cmd/ensemfdetd for the full lifecycle.
type PersistStore = persist.Store

// PersistOptions configures the store; the zero value fsyncs every batch
// and snapshots every 16MB of WAL growth.
type PersistOptions = persist.Options

// PersistStats reports WAL and snapshot counters.
type PersistStats = persist.Stats

// RecoveryStats summarizes one boot-time recovery.
type RecoveryStats = persist.RecoveryStats

// FsyncPolicy selects when the WAL is flushed to stable storage.
type FsyncPolicy = persist.FsyncPolicy

// The WAL flush policies: FsyncAlways acknowledges a batch only after it is
// on disk; FsyncNever trades that guarantee for page-cache-speed ingest.
const (
	FsyncAlways = persist.FsyncAlways
	FsyncNever  = persist.FsyncNever
)

// ParseFsyncPolicy maps "always"/"never" (the -fsync flag values) to a
// policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return persist.ParseFsyncPolicy(s) }

// OpenPersist opens (creating if needed) the durability state under dir,
// truncating a torn WAL tail from a previous crash with a logged warning.
// Call Recover on the result to load the state into a StreamGraph.
func OpenPersist(dir string, opts PersistOptions) (*PersistStore, error) {
	return persist.Open(dir, opts)
}

// --- replication layer ---
//
// WAL-shipping replication turns one durable daemon into a primary that any
// number of read-only followers track: the primary serves its snapshot +
// WAL over HTTP (GET /v1/repl/..., behind -serve-replication), a follower
// bootstraps from them and then tails the log continuously, applying each
// record at its exact version so its graph — and therefore its votes — are
// byte-identical to the primary's at every version. See cmd/ensemfdetd's
// -follow flag for the daemon wiring.

// ReplPrimary serves the replication shipping endpoints over a PersistStore.
type ReplPrimary = replicate.Primary

// ReplPrimaryConfig configures the shipping side.
type ReplPrimaryConfig = replicate.PrimaryConfig

// ReplPrimaryStats reports shipping counters.
type ReplPrimaryStats = replicate.PrimaryStats

// NewReplPrimary returns the shipping half; mount its Handler via
// HTTPHandlerConfig.Repl.
func NewReplPrimary(cfg ReplPrimaryConfig) *ReplPrimary { return replicate.NewPrimary(cfg) }

// ReplFollower replicates a primary's state into a local StreamGraph.
type ReplFollower = replicate.Follower

// ReplFollowerConfig configures the tailing side.
type ReplFollowerConfig = replicate.FollowerConfig

// ReplFollowerStats reports lag and apply counters.
type ReplFollowerStats = replicate.FollowerStats

// NewReplFollower validates the primary URL and returns a follower ready to
// Bootstrap and Run.
func NewReplFollower(cfg ReplFollowerConfig) (*ReplFollower, error) {
	return replicate.NewFollower(cfg)
}

// ReplNeedsBootstrap reports whether a follower data directory needs a fresh
// download (no recoverable state, or an interrupted earlier bootstrap).
func ReplNeedsBootstrap(dir string) bool { return replicate.NeedsBootstrap(dir) }

// ReplDownloadInto ships the primary's snapshot and WAL segments into
// dataDir so a normal OpenPersist + Recover reproduces the primary's durable
// state. client and logf may be nil.
func ReplDownloadInto(ctx context.Context, client *http.Client, primary, dataDir string, logf func(string, ...any)) error {
	return replicate.DownloadInto(ctx, client, primary, dataDir, logf)
}

// --- failover layer ---
//
// Epoch-fenced failover promotes a follower to primary without a
// coordinator: every durable node carries a monotonic epoch (term) number in
// a fsynced fence file, in its snapshot headers, and as fence records in the
// WAL. POST /v1/admin/promote on a follower stops its tail, fsyncs the next
// epoch with write ownership, and starts serving ingest and replication;
// every replication exchange carries the epoch both ways, so a deposed
// primary observing a higher term durably drops write ownership (ingest
// answers 409 naming the ruling epoch) and followers of the old timeline
// converge onto the new one through an epoch-boundary resync. See the
// README's Failover section for the runbook.

// ReplNode is the failover role manager: a daemon node that starts as a
// follower, can be promoted to primary at runtime, and can be re-pointed at
// a different primary. Mount its ReplHandler and AdminHandler via
// HTTPHandlerConfig.
type ReplNode = replicate.Node

// ReplNodeConfig wires a ReplNode's store, graph, and tuning.
type ReplNodeConfig = replicate.NodeConfig

// NewReplNode validates the wiring and returns a node with no role yet; call
// Follow (or Promote/BecomePrimary) to give it one.
func NewReplNode(cfg ReplNodeConfig) (*ReplNode, error) { return replicate.NewNode(cfg) }

// EpochAction is the follower-side classification of a replication response
// whose epoch differs from the local one; ClassifyEpoch computes it.
type EpochAction = replicate.EpochAction

// The possible classifications; see replicate.ClassifyEpoch.
const (
	EpochOK     = replicate.EpochOK
	EpochStale  = replicate.EpochStale
	EpochAdopt  = replicate.EpochAdopt
	EpochResync = replicate.EpochResync
)

// ClassifyEpoch decides what a follower must do with a response from a node
// in a different failover term.
func ClassifyEpoch(localEpoch, respEpoch, localVersion, epochStart uint64) EpochAction {
	return replicate.ClassifyEpoch(localEpoch, respEpoch, localVersion, epochStart)
}

// ErrWALDegraded tags ingest failures caused by a WAL that is rejecting
// writes until a covering snapshot heals it — the HTTP layer maps it to 503
// with Retry-After. ErrFenced tags writes rejected because the store's epoch
// is owned by another primary (this node was deposed) — mapped to 409.
var (
	ErrWALDegraded = persist.ErrDegraded
	ErrFenced      = persist.ErrFenced
)
