// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V), one testing.B benchmark per artifact, plus micro-benchmarks of the
// pipeline stages used for the ablation notes in EXPERIMENTS.md.
//
// Each experiment benchmark runs the same code path as `cmd/repro -exp X`
// at a reduced scale (dataset generation is excluded from timing). Run with:
//
//	go test -bench=. -benchmem
package ensemfdet_test

import (
	"math/rand"
	"testing"

	"ensemfdet"
	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/core"
	"ensemfdet/internal/datagen"
	"ensemfdet/internal/density"
	"ensemfdet/internal/experiments"
	"ensemfdet/internal/fdet"
	"ensemfdet/internal/fraudar"
	"ensemfdet/internal/linalg"
	"ensemfdet/internal/sampling"
	"ensemfdet/internal/spectral"
)

// benchScale mirrors experiments.Quick but with a fixed seed distinct from
// tests so cached datasets do not leak assumptions between suites.
func benchScale() experiments.Scale {
	s := experiments.Quick()
	s.Seed = 99
	return s
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	env := experiments.NewEnv(benchScale())
	// Generate datasets outside the timed region.
	for _, id := range datagen.AllPresets() {
		if _, err := env.Dataset(id); err != nil {
			b.Fatal(err)
		}
	}
	runner, err := experiments.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner(env); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per table/figure ---

func BenchmarkTable1DatasetStats(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkTable3TimeComparison(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkFig1BlockScores(b *testing.B)       { benchExperiment(b, "fig1") }
func BenchmarkFig3MethodComparison(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4DetectedCurve(b *testing.B)     { benchExperiment(b, "fig4") }
func BenchmarkFig5SamplerComparison(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig6Truncation(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7ImpactN(b *testing.B)           { benchExperiment(b, "fig7") }
func BenchmarkFig8ImpactS(b *testing.B)           { benchExperiment(b, "fig8") }
func BenchmarkFig9ImpactT(b *testing.B)           { benchExperiment(b, "fig9") }

// --- micro-benchmarks of the pipeline stages ---

func benchGraph(b *testing.B) *bipartite.Graph {
	b.Helper()
	env := experiments.NewEnv(benchScale())
	ds, err := env.Dataset(datagen.Dataset1)
	if err != nil {
		b.Fatal(err)
	}
	return ds.Graph
}

// BenchmarkFDETFullGraph measures one full FDET run (peel + truncate) on
// Dataset #1 — the unit of work FRAUDAR performs K times and the ensemble
// performs once per (much smaller) sample.
func BenchmarkFDETFullGraph(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fdet.Detect(g, fdet.Options{})
	}
}

// BenchmarkPeelSingleBlock isolates one greedy peeling round.
func BenchmarkPeelSingleBlock(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := fdet.Peel(g, density.Default()); !ok {
			b.Fatal("no block")
		}
	}
}

// BenchmarkSampleRES measures one S=0.1 random-edge sample, the ensemble's
// per-sample setup cost.
func BenchmarkSampleRES(b *testing.B) {
	g := benchGraph(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(sampling.RandomEdge{}).Sample(g, 0.1, rng)
	}
}

// BenchmarkSampleONSMerchant measures one merchant-side node sample, which
// retains full columns and is therefore the heaviest sampler.
func BenchmarkSampleONSMerchant(b *testing.B) {
	g := benchGraph(b)
	rng := rand.New(rand.NewSource(1))
	m := sampling.OneSideNode{Side: bipartite.MerchantSide}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sample(g, 0.1, rng)
	}
}

// BenchmarkEnsembleRun measures the full Algorithm 2 parallel phase at the
// paper's S=0.1 with a bench-scale N.
func BenchmarkEnsembleRun(b *testing.B) {
	g := benchGraph(b)
	cfg := core.Config{NumSamples: 16, SampleRatio: 0.1, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFraudarK10 measures the baseline's 10-block detection on the
// full graph for comparison with BenchmarkEnsembleRun (Table III's ratio).
func BenchmarkFraudarK10(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fraudar.Detect(g, fraudar.Config{K: 10})
	}
}

// BenchmarkTruncatedSVD measures the rank-25 decomposition behind the
// spectral baselines.
func BenchmarkTruncatedSVD(b *testing.B) {
	g := benchGraph(b)
	adj := spectral.Adjacency(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.TruncatedSVD(adj, 25, 3, 1)
	}
}

// BenchmarkVoteAggregation measures MVA thresholding over a realistic vote
// vector (Definition 4).
func BenchmarkVoteAggregation(b *testing.B) {
	g := benchGraph(b)
	cfg := core.Config{NumSamples: 16, SampleRatio: 0.1, Seed: 1}
	out, err := core.Run(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 1; t <= out.Votes.NumSamples; t++ {
			out.Votes.CountUsersAt(t)
		}
	}
}

// BenchmarkPublicDetect measures the end-to-end public API path.
func BenchmarkPublicDetect(b *testing.B) {
	g := benchGraph(b)
	det, err := ensemfdet.NewDetector(ensemfdet.Config{NumSamples: 16, SampleRatio: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphBuild measures CSR construction from an edge list — the
// substrate cost every sampler pays per sample.
func BenchmarkGraphBuild(b *testing.B) {
	g := benchGraph(b)
	edges := g.EdgeList()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bipartite.FromEdges(g.NumUsers(), g.NumMerchants(), edges); err != nil {
			b.Fatal(err)
		}
	}
}
