// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V), one testing.B benchmark per artifact, plus micro-benchmarks of the
// pipeline stages used for the ablation notes in EXPERIMENTS.md.
//
// Each experiment benchmark runs the same code path as `cmd/repro -exp X`
// at a reduced scale (dataset generation is excluded from timing). Run with:
//
//	go test -bench=. -benchmem
package ensemfdet_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ensemfdet"
	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/core"
	"ensemfdet/internal/datagen"
	"ensemfdet/internal/density"
	"ensemfdet/internal/experiments"
	"ensemfdet/internal/fdet"
	"ensemfdet/internal/fraudar"
	"ensemfdet/internal/linalg"
	"ensemfdet/internal/sampling"
	"ensemfdet/internal/spectral"
)

// benchScale mirrors experiments.Quick but with a fixed seed distinct from
// tests so cached datasets do not leak assumptions between suites.
func benchScale() experiments.Scale {
	s := experiments.Quick()
	s.Seed = 99
	return s
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	env := experiments.NewEnv(benchScale())
	// Generate datasets outside the timed region.
	for _, id := range datagen.AllPresets() {
		if _, err := env.Dataset(id); err != nil {
			b.Fatal(err)
		}
	}
	runner, err := experiments.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner(env); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per table/figure ---

func BenchmarkTable1DatasetStats(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkTable3TimeComparison(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkFig1BlockScores(b *testing.B)       { benchExperiment(b, "fig1") }
func BenchmarkFig3MethodComparison(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4DetectedCurve(b *testing.B)     { benchExperiment(b, "fig4") }
func BenchmarkFig5SamplerComparison(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig6Truncation(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7ImpactN(b *testing.B)           { benchExperiment(b, "fig7") }
func BenchmarkFig8ImpactS(b *testing.B)           { benchExperiment(b, "fig8") }
func BenchmarkFig9ImpactT(b *testing.B)           { benchExperiment(b, "fig9") }

// --- micro-benchmarks of the pipeline stages ---

func benchGraph(b *testing.B) *bipartite.Graph {
	b.Helper()
	env := experiments.NewEnv(benchScale())
	ds, err := env.Dataset(datagen.Dataset1)
	if err != nil {
		b.Fatal(err)
	}
	return ds.Graph
}

// BenchmarkFDETFullGraph measures one full FDET run (peel + truncate) on
// Dataset #1 — the unit of work FRAUDAR performs K times and the ensemble
// performs once per (much smaller) sample.
func BenchmarkFDETFullGraph(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fdet.Detect(g, fdet.Options{})
	}
}

// BenchmarkPeelSingleBlock isolates one greedy peeling round.
func BenchmarkPeelSingleBlock(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := fdet.Peel(g, density.Default()); !ok {
			b.Fatal("no block")
		}
	}
}

// BenchmarkSampleRES measures one S=0.1 random-edge sample, the ensemble's
// per-sample setup cost, on the one-shot (allocating) path.
func BenchmarkSampleRES(b *testing.B) {
	g := benchGraph(b)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(sampling.RandomEdge{}).Sample(g, 0.1, rng)
	}
}

// BenchmarkSampleRESScratch is the ensemble worker's actual per-sample
// path: a warmed sampling.Scratch makes the draw allocation-free.
func BenchmarkSampleRESScratch(b *testing.B) {
	g := benchGraph(b)
	rng := rand.New(rand.NewSource(1))
	s := new(sampling.Scratch)
	sampling.SampleInto(sampling.RandomEdge{}, g, 0.1, rng, s) // warm up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampling.SampleInto(sampling.RandomEdge{}, g, 0.1, rng, s)
	}
}

// BenchmarkSampleONSMerchant measures one merchant-side node sample, which
// retains full columns and is therefore the heaviest sampler.
func BenchmarkSampleONSMerchant(b *testing.B) {
	g := benchGraph(b)
	rng := rand.New(rand.NewSource(1))
	m := sampling.OneSideNode{Side: bipartite.MerchantSide}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sample(g, 0.1, rng)
	}
}

// BenchmarkEnsembleRun measures the full Algorithm 2 parallel phase at the
// paper's S=0.1 with a bench-scale N.
func BenchmarkEnsembleRun(b *testing.B) {
	g := benchGraph(b)
	cfg := core.Config{NumSamples: 16, SampleRatio: 0.1, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPeelOnce isolates the cross-round cost of one peeling round
// inside a multi-block detection: a warm peeler peels its graph to
// exhaustion, so allocs/op exposes any per-round slice churn (the seed
// reallocated every priority/degree/order/membership slice per round).
// rounds/op is a custom metric, constant for a fixed graph — it makes
// ns/op ÷ rounds/op the per-round cost without baking a derived time
// metric into the output (benchstat can only difference raw metrics).
func BenchmarkPeelOnce(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	rounds := 0
	for i := 0; i < b.N; i++ {
		res := fdet.Detect(g, fdet.Options{FixedK: 8})
		rounds += len(res.Scores)
	}
	b.StopTimer()
	if rounds == 0 {
		b.Fatal("no peeling rounds")
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
}

// benchPeelEngine drives the same unit-weight multi-block detection through
// a chosen peeling engine. Unit weights (AvgDegree) make the priorities
// integer, which is the bucket queue's domain; ForceHeap pins the heap on
// the identical input so the two benchmarks differ only in the engine.
func benchPeelEngine(b *testing.B, forceHeap bool) {
	b.Helper()
	g := benchGraph(b)
	opts := fdet.Options{FixedK: 8, Metric: density.AvgDegree{}, ForceHeap: forceHeap}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fdet.Detect(g, opts)
	}
}

// BenchmarkPeelBucketQueue and BenchmarkPeelHeap are the side-by-side for
// the O(E) bucket peeler vs the O(E log V) heap on the integer-priority
// path; their results are byte-identical (see internal/fdet's equivalence
// tests), so the pair measures pure data-structure cost.
func BenchmarkPeelBucketQueue(b *testing.B) { benchPeelEngine(b, false) }
func BenchmarkPeelHeap(b *testing.B)        { benchPeelEngine(b, true) }

// BenchmarkEnsembleN80 is the paper's main setting (RES, N=80, S=0.1) and
// the PR-over-PR allocation regression guard: the ensemble hot path is meant
// to be allocation-free after arena warm-up, so allocs/op here must stay
// O(workers + N), not O(N·subgraph).
func BenchmarkEnsembleN80(b *testing.B) {
	g := benchGraph(b)
	cfg := core.Config{NumSamples: 80, SampleRatio: 0.1, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFraudarK10 measures the baseline's 10-block detection on the
// full graph for comparison with BenchmarkEnsembleRun (Table III's ratio).
func BenchmarkFraudarK10(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fraudar.Detect(g, fraudar.Config{K: 10})
	}
}

// BenchmarkTruncatedSVD measures the rank-25 decomposition behind the
// spectral baselines.
func BenchmarkTruncatedSVD(b *testing.B) {
	g := benchGraph(b)
	adj := spectral.Adjacency(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.TruncatedSVD(adj, 25, 3, 1)
	}
}

// BenchmarkVoteAggregation measures MVA thresholding over a realistic vote
// vector (Definition 4).
func BenchmarkVoteAggregation(b *testing.B) {
	g := benchGraph(b)
	cfg := core.Config{NumSamples: 16, SampleRatio: 0.1, Seed: 1}
	out, err := core.Run(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 1; t <= out.Votes.NumSamples; t++ {
			out.Votes.CountUsersAt(t)
		}
	}
}

// BenchmarkPublicDetect measures the end-to-end public API path.
func BenchmarkPublicDetect(b *testing.B) {
	g := benchGraph(b)
	det, err := ensemfdet.NewDetector(ensemfdet.Config{NumSamples: 16, SampleRatio: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphBuild measures CSR construction from an edge list — the
// substrate cost every sampler pays per sample.
func BenchmarkGraphBuild(b *testing.B) {
	g := benchGraph(b)
	edges := g.EdgeList()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bipartite.FromEdges(g.NumUsers(), g.NumMerchants(), edges); err != nil {
			b.Fatal(err)
		}
	}
}

// --- streaming / serving layer ---

// benchEdgePool pre-generates distinct random edges so the ingest benchmark
// times only Append (dedup + log + version), not edge generation.
func benchEdgePool(n int) []bipartite.Edge {
	rng := rand.New(rand.NewSource(17))
	seen := make(map[uint64]struct{}, n)
	pool := make([]bipartite.Edge, 0, n)
	for len(pool) < n {
		e := bipartite.Edge{U: uint32(rng.Intn(1 << 20)), V: uint32(rng.Intn(1 << 18))}
		k := uint64(e.U)<<32 | uint64(e.V)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		pool = append(pool, e)
	}
	return pool
}

// BenchmarkStreamIngest measures dynamic-graph ingest throughput in batches
// of 1024 fresh edges; the edges/s metric is the daemon's sustained write
// capacity per core.
func BenchmarkStreamIngest(b *testing.B) {
	const batch = 1024
	pool := benchEdgePool(1 << 18)
	sg := ensemfdet.NewStreamGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (i * batch) % (len(pool) - batch)
		if i > 0 && off == 0 {
			// Pool exhausted: restart on a fresh graph outside the metric's
			// meaning (still timed; amortized away for large b.N).
			sg = ensemfdet.NewStreamGraph()
		}
		sg.Append(pool[off : off+batch])
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkStreamSnapshot measures the copy-on-snapshot CSR build that a
// cold detection pays after each ingest batch.
func BenchmarkStreamSnapshot(b *testing.B) {
	sg := ensemfdet.NewStreamGraph()
	sg.Append(benchEdgePool(1 << 17))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Bump the version so every iteration rebuilds instead of hitting
		// the snapshot cache.
		sg.AppendEdge(uint32(1<<21+i), 0)
		if snap, _ := sg.Snapshot(); snap.NumEdges() == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkIngestParallel measures multi-producer append throughput: 8
// goroutines ingest an identical deterministic sequence of 256-edge batches
// into a 1-shard graph (the old single-mutex spine) and an 8-shard graph.
// The shards=8/shards=1 edges/s ratio is the sharding win; the edge sequence
// cycles a 2^22-pair space so memory stays bounded at any b.N.
func BenchmarkIngestParallel(b *testing.B) {
	const (
		workers = 8
		batch   = 256
	)
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sg := ensemfdet.NewStreamGraphSharded(shards)
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					buf := make([]bipartite.Edge, batch)
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						for j := range buf {
							// Cheap deterministic unique-ish pairs: the same
							// sequence regardless of scheduling, so both
							// shard counts ingest identical workloads.
							k := (uint64(i)*batch + uint64(j)) & (1<<22 - 1)
							h := (k + 1) * 0x9E3779B97F4A7C15
							buf[j] = bipartite.Edge{
								U: uint32(h>>40) & (1<<20 - 1),
								V: uint32(h>>20) & (1<<18 - 1),
							}
						}
						sg.Append(buf)
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

// BenchmarkSnapshotDelta measures the incremental snapshot path: a fixed
// 64-edge delta against base graphs of different sizes. The point of the
// sub-benchmark pair is the allocs/op column — it must be identical across
// base sizes (the delta build allocates its four output arrays and per-build
// bookkeeping, never O(|E|) scratch), which the CI allocs gate pins.
func BenchmarkSnapshotDelta(b *testing.B) {
	for _, size := range []int{1 << 15, 1 << 17} {
		b.Run(fmt.Sprintf("E=%d", size), func(b *testing.B) {
			sg := ensemfdet.NewStreamGraphSharded(8)
			sg.Append(benchEdgePool(size))
			sg.Snapshot() // pay the initial full build outside the loop
			const delta = 64
			buf := make([]bipartite.Edge, delta)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range buf {
					// A fresh merchant id per iteration guarantees every
					// delta edge is new without unbounded user growth.
					buf[j] = bipartite.Edge{
						U: uint32((uint64(i)*delta + uint64(j)) * 2654435761 & (1<<20 - 1)),
						V: uint32(1<<18 + i),
					}
				}
				sg.Append(buf)
				if snap, _ := sg.Snapshot(); snap.NumEdges() == 0 {
					b.Fatal("empty snapshot")
				}
			}
			b.StopTimer()
			if bs := sg.BuildStats(); bs.DeltaBuilds != uint64(b.N) {
				b.Fatalf("delta path used for %d of %d snapshots", bs.DeltaBuilds, b.N)
			}
		})
	}
}

// BenchmarkWindowedChurn measures the steady-state cost of a sliding-window
// daemon: a graph pinned at ~64k live edges ingests fresh 256-edge batches
// while a MaxEdges window retires the oldest versions every 16 batches and a
// snapshot rebuild (delta path with deletions) follows each retire. edges/s
// is the sustained churn throughput; compare against the unbounded
// BenchmarkStreamIngest / BenchmarkSnapshotDelta numbers in BENCH_pr3.json —
// windowing must not regress the append path itself (the retire pass and
// deletion-aware merges are the new, additive cost).
func BenchmarkWindowedChurn(b *testing.B) {
	const (
		windowEdges  = 1 << 16
		batch        = 256
		retireEvery  = 16
		idSpaceUsers = 1 << 20
	)
	sg := ensemfdet.NewStreamGraphSharded(8)
	sg.SetWindow(ensemfdet.WindowPolicy{MaxEdges: windowEdges})
	buf := make([]bipartite.Edge, batch)
	seq := uint64(0)
	fill := func() {
		for j := range buf {
			k := seq
			seq++
			h := (k + 1) * 0x9E3779B97F4A7C15
			// Cycle a bounded id space: after the window retires an edge its
			// ids eventually recur, exercising the re-ingest path too.
			buf[j] = bipartite.Edge{
				U: uint32(h>>40) & (idSpaceUsers - 1),
				V: uint32(h>>20) & (1<<18 - 1),
			}
		}
	}
	// Pre-fill to the window size so the loop measures steady state.
	for sg.Stats().NumEdges < windowEdges {
		fill()
		sg.Append(buf)
	}
	sg.Retire(time.Now())
	sg.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill()
		sg.Append(buf)
		if i%retireEvery == retireEvery-1 {
			sg.Retire(time.Now())
			if snap, _ := sg.Snapshot(); snap.NumEdges() == 0 {
				b.Fatal("window drained the graph")
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "edges/s")
	if ws := sg.WindowStats(); b.N > 2*retireEvery && ws.RetiredEdges == 0 {
		b.Fatal("steady-state churn never retired anything")
	}
}

// benchEngine returns a detect engine over an ingested bench-scale graph.
func benchEngine(b *testing.B) *ensemfdet.DetectEngine {
	b.Helper()
	g := benchGraph(b)
	sg := ensemfdet.NewStreamGraph()
	sg.Append(g.EdgeList())
	return ensemfdet.NewDetectEngine(sg, ensemfdet.EngineOptions{})
}

// BenchmarkDetectCold measures a cache-miss detection: every iteration uses
// a distinct seed, forcing a full ensemble run (the latency a client sees
// the first time it queries a fresh graph version).
func BenchmarkDetectCold(b *testing.B) {
	e := benchEngine(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ensemfdet.DetectParams{NumSamples: 16, SampleRatio: 0.1, Seed: int64(i + 1)}
		if _, err := e.Detect(ctx, p, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectIncremental measures the delta-aware detect path against a
// cold recompute at increasing ingest deltas. Each iteration applies one
// delta-sized batch and serves one detect at the paper's N=80: the
// incremental engine resumes from the previous version's record and re-runs
// only the samples the delta dirtied; the cold engine recomputes all 80.
// The batch alternates append/remove of the same fresh edges so the graph
// size stays bounded at any b.N, and its shape is a fraud burst — fresh
// users transacting with a few hot merchants — under which ONS-merchant
// proves every sample that did not draw a touched merchant clean. Ingest and
// the post-ingest CSR build run with the timer stopped (both modes pay them
// identically; BenchmarkSnapshotDelta gates that path), so the timed region
// is detection at an already-snapshotted version. The reused/sample metric
// is the measured clean fraction; the incremental/cold ns/op ratio at
// delta=0.1pct is the PR's headline speedup.
func BenchmarkDetectIncremental(b *testing.B) {
	base := benchGraph(b)
	ne := base.NumEdges()
	deltas := []struct {
		name  string
		edges int
	}{
		{"delta=1edge", 1},
		{"delta=0.1pct", max(1, ne/1000)},
		{"delta=1pct", max(1, ne/100)},
		{"delta=10pct", max(1, ne/10)},
	}
	for _, d := range deltas {
		// ~256 burst edges per hot merchant; fresh user ids start right above
		// the existing range so vote-vector sizes stay realistic.
		hot := max(1, d.edges/256)
		batch := make([]bipartite.Edge, d.edges)
		for j := range batch {
			batch[j] = bipartite.Edge{U: uint32(base.NumUsers() + j), V: uint32(j % hot)}
		}
		for _, mode := range []struct {
			name string
			opts ensemfdet.EngineOptions
		}{
			{"incremental", ensemfdet.EngineOptions{}},
			{"cold", ensemfdet.EngineOptions{IncrementalMaxDeltaRatio: -1}},
		} {
			b.Run(d.name+"/"+mode.name, func(b *testing.B) {
				sg := ensemfdet.NewStreamGraph()
				sg.Append(base.EdgeList())
				e := ensemfdet.NewDetectEngine(sg, mode.opts)
				ctx := context.Background()
				p := ensemfdet.DetectParams{Sampler: "ONS-merchant", NumSamples: 80, SampleRatio: 0.1, Seed: 1}
				if _, err := e.Detect(ctx, p, 40); err != nil { // warm the base
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					if i%2 == 0 {
						sg.Append(batch)
					} else {
						sg.Remove(batch)
					}
					sg.Snapshot() // build the CSR outside the timed region
					b.StartTimer()
					if _, err := e.Detect(ctx, p, 40); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := e.Stats()
				if mode.name == "incremental" && st.Detect.IncrementalRuns == 0 {
					b.Fatal("no run went incremental")
				}
				if total := st.Detect.SamplesReused + st.Detect.SamplesRerun; total > 0 {
					b.ReportMetric(float64(st.Detect.SamplesReused)/float64(total), "reused/sample")
				}
			})
		}
	}
}

// BenchmarkDetectCached measures the steady-state query path: same graph
// version, same config, any threshold — a map lookup plus an O(nodes)
// threshold scan. The cold/cached ratio is the serving layer's whole point.
func BenchmarkDetectCached(b *testing.B) {
	e := benchEngine(b)
	ctx := context.Background()
	p := ensemfdet.DetectParams{NumSamples: 16, SampleRatio: 0.1, Seed: 1}
	if _, err := e.Detect(ctx, p, 8); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Detect(ctx, p, 1+i%16); err != nil {
			b.Fatal(err)
		}
	}
}
