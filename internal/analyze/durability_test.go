package analyze_test

import (
	"testing"

	"ensemfdet/internal/analyze"
	"ensemfdet/internal/analyze/analysistest"
)

func TestDurability(t *testing.T) {
	analysistest.Run(t, "testdata", "internal/persist", analyze.Durability)
}
