package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// Determinism enforces the byte-identical vote contract on the packages the
// detection pipeline flows through: the same graph, config, and seed must
// produce the same bytes on every run, across samplers, shard counts, and
// incremental-vs-cold execution. Three classes of constructs break that
// silently:
//
//   - ranging over a map, whose iteration order is randomized per run —
//     unless the loop provably cannot leak order (it only counts or
//     accumulates with commutative integer ops, or every slice it appends
//     to is sorted later in the same function);
//   - the global math/rand source (rand.Intn and friends), which is seeded
//     per process — all randomness must flow from an explicit, seeded
//     *rand.Rand;
//   - wall-clock reads (time.Now, time.Since), which differ per run.
//
// Findings carry the //ensemfdet:nondeterministic-ok escape hatch for
// deliberately stamped wall-clock fields (ingest timestamps, latency
// metrics) that never feed vote bytes.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag nondeterministic constructs (map ranges, global math/rand, wall clock) on the byte-identical vote path",
	Run:  runDeterminism,
}

const nondetOK = "nondeterministic-ok"

// determinismScope is the set of packages on the vote path: everything that
// runs between an edge batch arriving and a vote vector being emitted.
var determinismScope = regexp.MustCompile(`(^|/)internal/(core|fdet|sampling|bipartite|stream|bucketq|indexheap)$`)

// globalRandFuncs are the math/rand package-level functions backed by the
// process-global source. Constructors (New, NewSource, NewZipf) and *Rand
// methods are fine: they force the caller to thread an explicit seed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func runDeterminism(pass *Pass) error {
	if !determinismScope.MatchString(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				pass.checkMapRange(n)
			case *ast.SelectorExpr:
				pass.checkClockAndRand(n)
			}
			return true
		})
	}
	return nil
}

// checkClockAndRand flags any reference (call or value) to time.Now,
// time.Since, or a global-source math/rand function.
func (p *Pass) checkClockAndRand(sel *ast.SelectorExpr) {
	fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			if !p.Exempt(sel.Pos(), nondetOK) {
				p.Reportf(sel.Pos(), "time.%s on the vote path: wall-clock reads are nondeterministic; thread the time in, or annotate a stamped field with //ensemfdet:%s <why>", fn.Name(), nondetOK)
			}
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn.Name()] {
			if !p.Exempt(sel.Pos(), nondetOK) {
				p.Reportf(sel.Pos(), "global math/rand.%s on the vote path: randomness must come from an explicit seeded *rand.Rand", fn.Name())
			}
		}
	}
}

// checkMapRange flags ranging over a map unless the loop body is provably
// order-insensitive.
func (p *Pass) checkMapRange(rng *ast.RangeStmt) {
	if rng.X == nil {
		return
	}
	t := p.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if p.Exempt(rng.Pos(), nondetOK) {
		return
	}
	if p.orderInsensitive(rng) {
		return
	}
	p.Reportf(rng.Pos(), "range over map on the vote path: iteration order is nondeterministic; collect and sort, or annotate with //ensemfdet:%s <why>", nondetOK)
}

// orderInsensitive reports whether a map-range loop cannot leak iteration
// order: every statement in its body is a commutative integer accumulation
// (x++, x--, x += k, ...), an append to a local slice that is sorted later
// in the same function, a guard (if/continue), or a no-op. Anything else —
// calls, sends, plain assignments, float accumulation — is assumed to
// observe order.
func (p *Pass) orderInsensitive(rng *ast.RangeStmt) bool {
	var appended []*ast.Ident
	if !p.orderFreeStmts(rng.Body.List, &appended) {
		return false
	}
	if len(appended) == 0 {
		return true
	}
	body := p.enclosingFuncBody(rng.Pos())
	if body == nil {
		return false
	}
	for _, id := range appended {
		if !p.sortedAfter(body, id, rng.End()) {
			return false
		}
	}
	return true
}

func (p *Pass) orderFreeStmts(stmts []ast.Stmt, appended *[]*ast.Ident) bool {
	for _, s := range stmts {
		if !p.orderFreeStmt(s, appended) {
			return false
		}
	}
	return true
}

func (p *Pass) orderFreeStmt(s ast.Stmt, appended *[]*ast.Ident) bool {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.BlockStmt:
		return p.orderFreeStmts(s.List, appended)
	case *ast.IfStmt:
		if containsCall(s.Cond) || s.Init != nil {
			return false
		}
		if !p.orderFreeStmts(s.Body.List, appended) {
			return false
		}
		return s.Else == nil || p.orderFreeStmt(s.Else, appended)
	case *ast.IncDecStmt:
		return p.integerTyped(s.X)
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative only over integers: float rounding observes order.
			return len(s.Lhs) == 1 && p.integerTyped(s.Lhs[0]) && !containsCall(s.Rhs[0])
		case token.ASSIGN:
			// x = append(x, ...) with x a plain local; order is laundered
			// only if x is later sorted (checked by the caller).
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuiltin(p, call, "append") {
				return false
			}
			if first, ok := ast.Unparen(call.Args[0]).(*ast.Ident); !ok || p.TypesInfo.Uses[first] != p.objOf(id) {
				return false
			}
			*appended = append(*appended, id)
			return true
		}
		return false
	}
	return false
}

// sortedAfter reports whether a sort call over id appears after pos in body.
func (p *Pass) sortedAfter(body *ast.BlockStmt, id *ast.Ident, pos token.Pos) bool {
	obj := p.objOf(id)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found || len(call.Args) == 0 {
			return !found
		}
		fn := p.funcFor(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg, name := fn.Pkg().Path(), fn.Name()
		isSort := (pkg == "sort" && (name == "Ints" || name == "Strings" || name == "Float64s" ||
			name == "Slice" || name == "SliceStable" || name == "Sort" || name == "Stable")) ||
			(pkg == "slices" && (name == "Sort" || name == "SortFunc" || name == "SortStableFunc"))
		if !isSort {
			return true
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && p.TypesInfo.Uses[arg] == obj {
			found = true
		}
		return !found
	})
	return found
}

// objOf resolves an identifier to its object via either Defs or Uses.
func (p *Pass) objOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return p.TypesInfo.Uses[id]
}

func (p *Pass) integerTyped(e ast.Expr) bool {
	t := p.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func containsCall(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

func isBuiltin(p *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := p.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}
