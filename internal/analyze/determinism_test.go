package analyze_test

import (
	"testing"

	"ensemfdet/internal/analyze"
	"ensemfdet/internal/analyze/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", "internal/core", analyze.Determinism)
}

func TestDeterminismOffPath(t *testing.T) {
	analysistest.Run(t, "testdata", "offpath", analyze.Determinism)
}
