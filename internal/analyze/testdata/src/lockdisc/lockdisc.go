// Fixture for the lockdiscipline analyzer.
package lockdisc

import "sync"

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (c *counter) bumpLocked() { c.n++ }

func (c *counter) readLocked() int { return c.n }

func deferHeld(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked() // silent: dominating Lock with deferred Unlock
}

func explicitHeld(c *counter) {
	c.mu.Lock()
	c.bumpLocked() // silent: Lock before, Unlock after
	c.mu.Unlock()
}

func readHeld(c *counter) int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.readLocked() // silent: RLock counts
}

func (c *counter) chainLocked() { c.bumpLocked() } // silent: caller is itself *Locked

func bare(c *counter) {
	c.bumpLocked() // want `bumpLocked called without its mutex held`
}

func released(c *counter) {
	c.mu.Lock()
	c.mu.Unlock()
	c.bumpLocked() // want `bumpLocked called without its mutex held`
}

func branchReleaseDoesNotDominate(c *counter, done bool) {
	c.mu.Lock()
	if done {
		c.mu.Unlock()
		return
	}
	c.bumpLocked() // silent: the branch Unlock does not dominate this path
	c.mu.Unlock()
}

func branchLockDoesNotDominate(c *counter, lock bool) {
	if lock {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.bumpLocked() // want `bumpLocked called without its mutex held`
}

type pair struct {
	mu sync.Mutex
	a  counter
	b  counter
}

func wrongReceiver(p *pair) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.a.bumpLocked() // silent: p.a derives from p, whose lock is held
}

func otherVariable(a, b *counter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.bumpLocked() // want `bumpLocked called without its mutex held`
}

//ensemfdet:locked-ok the lock is taken by the caller before invoking this callback
func annotatedCallback(c *counter) {
	c.bumpLocked() // silent: justified annotation on the enclosing function
}

type sharded struct {
	shards []struct {
		mu sync.Mutex
		n  int
	}
}

func (s *sharded) Total() int { return 0 }

func (s *sharded) scanBad(i int) int {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.Total() + sh.n // want `exported method Total called while shard lock`
}

func (s *sharded) scanGood(i int) int {
	sh := &s.shards[i]
	sh.mu.Lock()
	n := sh.n
	sh.mu.Unlock()
	return s.Total() + n // silent: shard lock released before the exported call
}

func (s *sharded) scanDirect(i int) int {
	s.shards[i].mu.Lock()
	defer s.shards[i].mu.Unlock()
	return s.Total() // want `exported method Total called while shard lock`
}
