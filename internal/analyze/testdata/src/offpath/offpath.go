// Fixture proving the determinism analyzer's scope: this package is not on
// the vote path, so none of these constructs may be flagged.
package offpath

import (
	"math/rand"
	"time"
)

func MapOrder(m map[int]int) []int {
	var out []int
	for k := range m { // silent: off the vote path
		out = append(out, k)
	}
	return out
}

func WallClock() int64 {
	return time.Now().UnixNano() // silent: off the vote path
}

func GlobalRand() int {
	return rand.Intn(10) // silent: off the vote path
}
