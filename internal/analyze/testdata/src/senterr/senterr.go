// Fixture for the senterr analyzer.
package senterr

import (
	"context"
	"errors"
	"io"
)

var ErrGone = errors.New("gone")

var errLocalSentinel = errors.New("local") // package-level, lowercase: not Err-prefixed, not a sentinel

func eq(err error) bool {
	return err == ErrGone // want `sentinel error senterr.ErrGone compared with ==`
}

func neq(err error) bool {
	return err != io.EOF // want `sentinel error io.EOF compared with !=`
}

func reversed(err error) bool {
	return context.Canceled == err // want `sentinel error context.Canceled compared with ==`
}

func deadline(err error) bool {
	return err == context.DeadlineExceeded // want `sentinel error context.DeadlineExceeded compared with ==`
}

func good(err error) bool {
	return errors.Is(err, ErrGone) // silent: errors.Is is the contract
}

func nilCompare(err error) bool {
	return err == nil // silent: nil checks are fine
}

func nonSentinelVar(err error) bool {
	return err == errLocalSentinel // silent: not an Err-prefixed sentinel or stdlib special
}

func localScoped(err error) bool {
	ErrHere := errors.New("here")
	return err == ErrHere // silent: function-local value, identity is exact
}

func switchIdentity(err error) bool {
	switch err {
	case io.EOF: // want `sentinel error io.EOF in a switch case`
		return true
	case nil:
		return false
	}
	return false
}

//ensemfdet:senterr-ok this API documents returning the sentinel unwrapped
func annotated(err error) bool {
	return err == ErrGone // silent: justified annotation
}
