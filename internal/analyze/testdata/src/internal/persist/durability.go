// Fixture for the durability analyzer: this package path matches the
// internal/persist scope.
package persist

import "os"

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func goodPublish(dir, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // silent: tmp-sibling cleanup idiom
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil { // silent: sync before, dir fsync after
		return err
	}
	return syncDir(dir)
}

func renameWithoutSync(tmp, path string) error {
	return os.Rename(tmp, path) // want `not preceded by a File.Sync` `not followed by a directory fsync`
}

func renameNoDirSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // silent: tmp-sibling cleanup idiom
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path) // want `not followed by a directory fsync`
}

//ensemfdet:durability-ok the caller dir-fsyncs once after the whole batch of renames
func renameAnnotated(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // silent: tmp-sibling cleanup idiom
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path) // silent: function-level justification
}

func unblessedRemove(path string) {
	os.Remove(path) // want `os.Remove outside a blessed helper`
}

func unblessedTruncate(path string) error {
	return os.Truncate(path, 0) // want `os.Truncate outside a blessed helper`
}

func blessedRemove(path string) {
	//ensemfdet:durability-ok superseded snapshots are redundant once the new one is durable
	os.Remove(path) // silent: line-level justification
}

//ensemfdet:durability-ok rewinds drop the whole abandoned timeline by design
func blessedHelper(paths []string) {
	for _, p := range paths {
		os.Remove(p) // silent: blessed helper
	}
}
