// Fixture for the determinism analyzer: this package path matches the
// vote-path scope, so every nondeterministic construct below must be
// flagged unless it is provably order-insensitive or annotated.
package core

import (
	"math/rand"
	"sort"
	"time"
)

func mapOrderLeaks(m map[int]int) []int {
	var out []int
	for k := range m { // want `range over map on the vote path`
		out = append(out, k)
	}
	return out
}

func mapOrderCallInBody(m map[int]int, f func(int)) {
	for k := range m { // want `range over map on the vote path`
		f(k)
	}
}

func sortedSink(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m { // silent: every appended slice is sorted below
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedSinkSlices(m map[uint64]int) []uint64 {
	vers := make([]uint64, 0, len(m))
	for v := range m { // silent: sorted before the slice escapes
		vers = append(vers, v)
	}
	sort.Slice(vers, func(i, j int) bool { return vers[i] < vers[j] })
	return vers
}

func pureCounting(m map[int]int) (n, sum int) {
	for _, v := range m { // silent: commutative integer accumulation
		n++
		sum += v
	}
	return n, sum
}

func guardedCounting(m map[int]int) int {
	n := 0
	for _, v := range m { // silent: guards and continue do not observe order
		if v == 0 {
			continue
		}
		n++
	}
	return n
}

func floatAccumulation(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want `range over map on the vote path`
		sum += v // float addition rounds, so order leaks into the result
	}
	return sum
}

func unsortedAppend(m map[int]int) []int {
	var out []int
	for k := range m { // want `range over map on the vote path`
		out = append(out, k)
	}
	return out // never sorted: iteration order escapes
}

//ensemfdet:nondeterministic-ok the caller deduplicates and re-sorts downstream
func annotatedAtFunc(m map[int]int) []int {
	var out []int
	for k := range m { // silent: enclosing function carries the annotation
		out = append(out, k)
	}
	return out
}

func annotatedAtLine(m map[int]int) []int {
	var out []int
	//ensemfdet:nondeterministic-ok feeds a log line, not the vote bytes
	for k := range m { // silent: line-above annotation
		out = append(out, k)
	}
	return out
}

func bareAnnotationDoesNotExempt(m map[int]int) []int {
	var out []int
	//ensemfdet:nondeterministic-ok
	for k := range m { // want `range over map on the vote path`
		out = append(out, k)
	}
	return out
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `time.Now on the vote path`
}

func wallElapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since on the vote path`
}

type clocked struct {
	now func() time.Time
}

func clockValue() clocked {
	return clocked{
		//ensemfdet:nondeterministic-ok wall stamps feed window aging, never vote bytes
		now: time.Now, // silent: annotated value reference
	}
}

func clockValueUnannotated() clocked {
	return clocked{
		now: time.Now, // want `time.Now on the vote path`
	}
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand.Intn`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand.Shuffle`
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // silent: explicit seeded source
	return rng.Intn(10)                   // silent: *rand.Rand method
}

func timeConstantsOK() time.Duration {
	return 3 * time.Second // silent: constants are not clock reads
}
