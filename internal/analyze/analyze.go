// Package analyze is a suite of static analyzers that enforce the repo's
// cross-cutting invariants — vote-path determinism, *Locked call discipline,
// WAL/snapshot durability ordering, and sentinel-error comparison hygiene —
// at compile time instead of hoping a runtime test gets lucky.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis (an
// Analyzer runs over one type-checked package via a Pass and reports
// Diagnostics) but is built on the standard library only, so the module
// stays dependency-free. Swapping a future x/tools dependency in is a
// mechanical rename.
//
// Every analyzer honors a per-finding escape hatch: a line comment of the
// form
//
//	//ensemfdet:<directive> <justification>
//
// on the flagged line, the line above it, or in the enclosing function's doc
// comment suppresses the finding. The justification is mandatory — a bare
// directive does not exempt, so each suppression records *why* the invariant
// does not apply.
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one analysis and how to run it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package and a
// sink for its findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees, parsed with comments.
	Files []*ast.File
	// Path is the canonical import path ("internal/stream" relative to the
	// module for in-repo packages; fixture packages use their testdata-
	// relative path).
	Path      string
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report receives each finding.
	Report func(Diagnostic)

	directives map[*ast.File]map[int][]directive // lazily built per file
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// directive is one parsed //ensemfdet: annotation.
type directive struct {
	name          string
	justification string
}

const directivePrefix = "//ensemfdet:"

// parseDirective decodes a comment into a directive. ok is false for
// ordinary comments.
func parseDirective(text string) (directive, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name, justification, _ := strings.Cut(rest, " ")
	return directive{name: name, justification: strings.TrimSpace(justification)}, true
}

// fileDirectives indexes f's //ensemfdet: comments by line.
func (p *Pass) fileDirectives(f *ast.File) map[int][]directive {
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int][]directive)
	}
	if m, ok := p.directives[f]; ok {
		return m
	}
	m := make(map[int][]directive)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := parseDirective(c.Text); ok {
				m[p.Fset.Position(c.Pos()).Line] = append(m[p.Fset.Position(c.Pos()).Line], d)
			}
		}
	}
	p.directives[f] = m
	return m
}

// Exempt reports whether pos carries a justified //ensemfdet:<name>
// directive: on its own line, on the line above, or in the doc comment of
// the enclosing function declaration. A directive with an empty
// justification never exempts.
func (p *Pass) Exempt(pos token.Pos, name string) bool {
	f := p.fileFor(pos)
	if f == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	for _, ds := range [][]directive{p.fileDirectives(f)[line], p.fileDirectives(f)[line-1]} {
		for _, d := range ds {
			if d.name == name && d.justification != "" {
				return true
			}
		}
	}
	if fd := p.enclosingFuncDecl(pos); fd != nil && fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if d, ok := parseDirective(c.Text); ok && d.name == name && d.justification != "" {
				return true
			}
		}
	}
	return false
}

// fileFor returns the syntax tree containing pos.
func (p *Pass) fileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// enclosingFuncDecl returns the function declaration containing pos, if any.
func (p *Pass) enclosingFuncDecl(pos token.Pos) *ast.FuncDecl {
	f := p.fileFor(pos)
	if f == nil {
		return nil
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
			return fd
		}
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function (declaration
// or literal) containing pos.
func (p *Pass) enclosingFuncBody(pos token.Pos) *ast.BlockStmt {
	f := p.fileFor(pos)
	if f == nil {
		return nil
	}
	var body *ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || n.End() <= pos {
			return n == f // keep scanning siblings at the top, prune elsewhere
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				body = fn.Body
			}
		case *ast.FuncLit:
			body = fn.Body
		}
		return true
	})
	return body
}

// isTestFile reports whether pos lies in a _test.go file. The determinism,
// lock-discipline, and durability analyzers skip tests: tests exercise
// wall clocks, private state, and raw file surgery on purpose.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// funcFor resolves the called function or method, unwrapping parentheses.
// It returns nil for calls through function-typed variables, conversions,
// and builtins.
func (p *Pass) funcFor(call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch fn := fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := p.TypesInfo.Uses[id].(*types.Func)
	return f
}

// isPkgFunc reports whether f is the package-level function pkgPath.name.
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name &&
		f.Type().(*types.Signature).Recv() == nil
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, LockDiscipline, Durability, SentErr}
}
