package analyze_test

import (
	"testing"

	"ensemfdet/internal/analyze"
	"ensemfdet/internal/analyze/analysistest"
)

func TestSentErr(t *testing.T) {
	analysistest.Run(t, "testdata", "senterr", analyze.SentErr)
}
