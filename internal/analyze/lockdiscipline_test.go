package analyze_test

import (
	"testing"

	"ensemfdet/internal/analyze"
	"ensemfdet/internal/analyze/analysistest"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", "lockdisc", analyze.LockDiscipline)
}
