package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Durability enforces the WAL/snapshot publication protocol in
// internal/persist. Every durable artifact lands tmp → fsync → rename →
// dir-fsync; anything else can surface a torn or vanished file after a
// crash. Concretely:
//
//   - os.Rename must be preceded (in the same function) by a File.Sync on
//     the temp file, and followed by a directory fsync (syncDir or a
//     Sync on an opened directory) — a rename made durable out of order
//     can publish a name whose bytes the kernel never flushed;
//   - os.Remove / os.RemoveAll / os.Truncate on WAL-segment or snapshot
//     paths are destructive and restricted to blessed helpers: deleting
//     a ".tmp" sibling created in the same function is always fine, any
//     other deletion needs a //ensemfdet:durability-ok justification on
//     the call or the enclosing helper.
var Durability = &Analyzer{
	Name: "durability",
	Doc:  "enforce tmp→fsync→rename→dir-fsync ordering and blessed-helper-only deletion in internal/persist",
	Run:  runDurability,
}

const durabilityOK = "durability-ok"

var durabilityScope = regexp.MustCompile(`(^|/)internal/persist$`)

func runDurability(pass *Pass) error {
	if !durabilityScope.MatchString(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.funcFor(call)
			switch {
			case isPkgFunc(fn, "os", "Rename"):
				pass.checkRename(call)
			case isPkgFunc(fn, "os", "Remove") || isPkgFunc(fn, "os", "RemoveAll") || isPkgFunc(fn, "os", "Truncate"):
				pass.checkDeletion(call, fn.Name())
			}
			return true
		})
	}
	return nil
}

// checkRename validates fsync ordering around one os.Rename.
func (p *Pass) checkRename(call *ast.CallExpr) {
	if p.Exempt(call.Pos(), durabilityOK) {
		return
	}
	body := p.enclosingFuncBody(call.Pos())
	if body == nil {
		return
	}
	syncBefore, dirSyncAfter := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.funcFor(c)
		if fn == nil {
			return true
		}
		if c.Pos() < call.Pos() && p.isFileSync(fn) {
			syncBefore = true
		}
		if c.Pos() > call.Pos() && (p.isFileSync(fn) || strings.Contains(strings.ToLower(fn.Name()), "syncdir")) {
			dirSyncAfter = true
		}
		return true
	})
	if !syncBefore {
		p.Reportf(call.Pos(), "os.Rename not preceded by a File.Sync in this function: the renamed file's bytes may not be durable (sync the temp file first, or annotate with //ensemfdet:%s <why>)", durabilityOK)
	}
	if !dirSyncAfter {
		p.Reportf(call.Pos(), "os.Rename not followed by a directory fsync in this function: the new name may vanish across a crash (call syncDir after, or annotate with //ensemfdet:%s <why>)", durabilityOK)
	}
}

// isFileSync reports whether fn is (*os.File).Sync.
func (p *Pass) isFileSync(fn *types.Func) bool {
	if fn.Name() != "Sync" || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	return fn.Type().(*types.Signature).Recv() != nil
}

// checkDeletion validates one destructive os call.
func (p *Pass) checkDeletion(call *ast.CallExpr, name string) {
	if len(call.Args) > 0 && p.tmpCleanup(call) {
		return
	}
	if p.Exempt(call.Pos(), durabilityOK) {
		return
	}
	p.Reportf(call.Pos(), "os.%s outside a blessed helper: deleting or truncating durable state needs a //ensemfdet:%s <why> justification (tmp-sibling cleanup is exempt automatically)", name, durabilityOK)
}

// tmpCleanup recognizes the temp-sibling cleanup idiom: the deleted path is
// a local variable assigned from an expression mentioning a ".tmp" string
// literal in the same function (tmp := path + ".tmp"; defer os.Remove(tmp)).
func (p *Pass) tmpCleanup(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.objOf(id)
	if obj == nil {
		return false
	}
	body := p.enclosingFuncBody(call.Pos())
	if body == nil {
		return false
	}
	isTmp := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || isTmp {
			return !isTmp
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || p.objOf(lid) != obj || i >= len(as.Rhs) {
				continue
			}
			ast.Inspect(as.Rhs[i], func(m ast.Node) bool {
				if lit, ok := m.(*ast.BasicLit); ok && lit.Kind == token.STRING && strings.Contains(lit.Value, ".tmp") {
					isTmp = true
				}
				return !isTmp
			})
		}
		return !isTmp
	})
	return isTmp
}
