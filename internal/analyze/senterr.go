package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SentErr flags sentinel errors compared with == or != (including switch
// cases over an error tag) instead of errors.Is. The repo's failure
// surfaces wrap sentinels with context as they cross layers
// (fmt.Errorf("...: %w", ErrFenced)), so an identity comparison silently
// stops matching the moment a call site adds context — exactly the class
// of bug that turns a fenced primary's 409 into a generic 500.
//
// A sentinel is a package-level error variable whose name starts with
// "Err", plus the stdlib's pre-convention trio io.EOF, context.Canceled,
// and context.DeadlineExceeded. Comparisons to nil are fine. The
// //ensemfdet:senterr-ok escape hatch covers the rare intentional identity
// check.
var SentErr = &Analyzer{
	Name: "senterr",
	Doc:  "flag ==/!= comparisons against sentinel errors; use errors.Is",
	Run:  runSentErr,
}

const senterrOK = "senterr-ok"

func runSentErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if name, ok := pass.sentinelError(side); ok {
						if !pass.Exempt(n.Pos(), senterrOK) {
							pass.Reportf(n.Pos(), "sentinel error %s compared with %s: wrapped errors will not match; use errors.Is (or annotate with //ensemfdet:%s <why>)", name, n.Op, senterrOK)
						}
						return true
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				t := pass.TypesInfo.TypeOf(n.Tag)
				if t == nil || !isErrorType(t) {
					return true
				}
				for _, c := range n.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name, ok := pass.sentinelError(e); ok && !pass.Exempt(cc.Pos(), senterrOK) {
							pass.Reportf(e.Pos(), "sentinel error %s in a switch case compares by identity: wrapped errors will not match; use errors.Is (or annotate with //ensemfdet:%s <why>)", name, senterrOK)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// sentinelError reports whether e denotes a sentinel error variable.
func (p *Pass) sentinelError(e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := p.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !isErrorType(v.Type()) {
		return "", false
	}
	// Package-level only: a local "errFoo" is this function's own value and
	// identity is exact for it.
	if v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	name := v.Name()
	qualified := v.Pkg().Name() + "." + name
	if len(name) >= 3 && name[:3] == "Err" {
		return qualified, true
	}
	switch {
	case v.Pkg().Path() == "io" && name == "EOF",
		v.Pkg().Path() == "context" && (name == "Canceled" || name == "DeadlineExceeded"):
		return qualified, true
	}
	return "", false
}

func isErrorType(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type()) || iface.NumMethods() == 1 && iface.Method(0).Name() == "Error"
}
