// Package analysistest runs an analyzer over want-comment fixtures, in the
// spirit of golang.org/x/tools/go/analysis/analysistest but built on the
// standard library only.
//
// Fixtures live under <testdata>/src/<pkgpath>/*.go. A line that should be
// flagged carries a trailing comment of the form
//
//	// want "regexp"            one expected diagnostic
//	// want "re1" "re2"         two expected diagnostics on the same line
//
// Each regexp must match the reported message. The runner fails the test on
// any unmatched expectation and on any unexpected diagnostic. Fixture
// packages are type-checked against the real standard library (via the
// compiler's source importer), so os.Rename, sync.Mutex, time.Now, and
// friends resolve to their true objects.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"ensemfdet/internal/analyze"
)

// One process-wide fileset + source importer: importing "os" from source is
// not free, and every fixture shares the same stdlib.
var (
	fsetOnce sync.Once
	fset     *token.FileSet
	imp      types.Importer
)

func sharedImporter() (*token.FileSet, types.Importer) {
	fsetOnce.Do(func() {
		fset = token.NewFileSet()
		imp = importer.ForCompiler(fset, "source", nil)
	})
	return fset, imp
}

// Run applies a to the fixture package at <testdata>/src/<pkgPath> and
// checks its diagnostics against the fixture's want comments.
func Run(t *testing.T, testdata string, pkgPath string, a *analyze.Analyzer) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
	fset, imp := sharedImporter()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkgPath, err)
	}

	var got []analyze.Diagnostic
	pass := &analyze.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Path:      pkgPath,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analyze.Diagnostic) { got = append(got, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	check(t, fset, files, got)
}

type key struct {
	file string
	line int
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// check matches diagnostics against want comments.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, got []analyze.Diagnostic) {
	t.Helper()
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, q := range splitQuoted(t, m[1]) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, q, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })
	for _, d := range got {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		wants[k][matched] = nil
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// splitQuoted extracts the Go-quoted strings from a want comment's tail.
func splitQuoted(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("malformed want comment tail %q", s)
		}
		quote := s[0]
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == quote && (quote == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			t.Fatalf("unterminated quote in want comment %q", s)
		}
		q, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("unquoting %q: %v", s[:end+1], err)
		}
		out = append(out, q)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		t.Fatalf("want comment with no expectations")
	}
	return out
}
