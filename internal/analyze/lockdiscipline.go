package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDiscipline enforces the repo's *Locked naming contract: a function
// whose name ends in "Locked" documents that its caller must hold the
// corresponding mutex. A call to such a function is accepted only when the
// caller
//
//   - is itself named *Locked (the obligation propagates outward), or
//   - acquires a lock on a dominating path: a mu.Lock()/mu.RLock() call
//     earlier in the same function, in a block enclosing the call site,
//     with no dominating Unlock in between. When the callee is a method,
//     the lock must hang off the same receiver variable.
//
// It also enforces the shard-lock re-entrancy rule: while a shard lock (a
// mutex reached through an index expression, e.g. g.shards[i].mu) is held,
// calling an exported method on the enclosing receiver is flagged — exported
// methods take top-level locks and re-entering through one under a shard
// lock is a lock-order inversion waiting to deadlock.
//
// The //ensemfdet:locked-ok escape hatch suppresses a finding where the
// lock provably arrives another way (e.g. a callback invoked under lock).
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "require *Locked functions to be called with the corresponding mutex held, and no exported re-entry under shard locks",
	Run:  runLockDiscipline,
}

const lockedOK = "locked-ok"

func runLockDiscipline(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pass.checkLockedCall(call)
			pass.checkShardReentry(call)
			return true
		})
	}
	return nil
}

// checkLockedCall validates one call of a *Locked function.
func (p *Pass) checkLockedCall(call *ast.CallExpr) {
	fn := p.funcFor(call)
	if fn == nil || !strings.HasSuffix(fn.Name(), "Locked") {
		return
	}
	// A *Locked caller inherits the obligation; its own callers are checked.
	if fd := p.enclosingFuncDecl(call.Pos()); fd != nil && strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	// The callee's receiver variable at this call site, when the call is
	// recv.fooLocked(): the lock must hang off the same variable.
	var recv types.Object
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			recv = p.TypesInfo.Uses[id]
		}
	}
	body := p.enclosingFuncBody(call.Pos())
	if body != nil && p.lockHeldAt(body, call.Pos(), recv) {
		return
	}
	if p.Exempt(call.Pos(), lockedOK) {
		return
	}
	p.Reportf(call.Pos(), "%s called without its mutex held: no dominating Lock/RLock in the caller (rename the caller *Locked, lock first, or annotate with //ensemfdet:%s <why>)", fn.Name(), lockedOK)
}

// mutexOp describes one Lock/RLock/Unlock/RUnlock call found in a body.
type mutexOp struct {
	pos      token.Pos
	acquire  bool
	deferred bool
	base     string       // printed receiver chain, e.g. "e.mu" or "sh.mu"
	root     types.Object // leading identifier's object, e.g. e or sh
	indexed  bool         // receiver chain passes through an index expression
}

// mutexOps collects every mutex operation in body, in source order.
func (p *Pass) mutexOps(body *ast.BlockStmt) []mutexOp {
	var ops []mutexOp
	deferredCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		deferred := false
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.DeferStmt:
			call, deferred = n.Call, true
			deferredCalls[call] = true
		case *ast.CallExpr:
			if deferredCalls[n] {
				return true // already recorded via its DeferStmt
			}
			call = n
		default:
			return true
		}
		op, ok := p.mutexOpOf(call, deferred)
		if ok {
			ops = append(ops, op)
		}
		return true
	})
	return ops
}

// mutexOpOf decodes a call as a sync.Mutex/RWMutex (R)Lock/(R)Unlock.
func (p *Pass) mutexOpOf(call *ast.CallExpr, deferred bool) (mutexOp, bool) {
	fn := p.funcFor(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return mutexOp{}, false
	}
	var acquire bool
	switch fn.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return mutexOp{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return mutexOp{}, false
	}
	op := mutexOp{pos: call.Pos(), acquire: acquire, deferred: deferred, base: types.ExprString(sel.X)}
	for x := ast.Unparen(sel.X); ; {
		switch e := x.(type) {
		case *ast.Ident:
			op.root = p.TypesInfo.Uses[e]
			return op, true
		case *ast.SelectorExpr:
			x = ast.Unparen(e.X)
		case *ast.IndexExpr:
			op.indexed = true
			x = ast.Unparen(e.X)
		case *ast.StarExpr:
			x = ast.Unparen(e.X)
		default:
			return op, true
		}
	}
}

// lockHeldAt reports whether some mutex is provably held at pos: an acquire
// earlier in a block that encloses pos, with no later non-deferred release
// of the same mutex that also dominates pos. When recv is non-nil the
// acquire's receiver chain must be rooted at the same variable (or at a
// variable whose shard-projection derives from it — sh := &g.shards[i]
// still guards g's *Locked helpers, so any surviving acquire counts when
// the roots differ but the caller has no other candidates... we keep it
// strict: same root, or a root the receiver cannot be determined for).
func (p *Pass) lockHeldAt(body *ast.BlockStmt, pos token.Pos, recv types.Object) bool {
	ops := p.mutexOps(body)
	for _, acq := range ops {
		if !acq.acquire || acq.pos >= pos || acq.deferred {
			continue
		}
		if !p.dominates(body, acq.pos, pos) {
			continue
		}
		if recv != nil && acq.root != nil && acq.root != recv && !p.derivedFrom(body, acq.root, recv) {
			continue
		}
		released := false
		for _, rel := range ops {
			if rel.acquire || rel.deferred || rel.base != acq.base {
				continue
			}
			if rel.pos > acq.pos && rel.pos < pos && p.dominates(body, rel.pos, pos) {
				released = true
				break
			}
		}
		if !released {
			return true
		}
	}
	return false
}

// dominates approximates "every path to pos passes through opPos": the
// innermost block statement containing opPos must also contain pos. An
// operation inside a sibling branch (an if-arm the control flow may skip)
// does not dominate statements after the branch.
func (p *Pass) dominates(body *ast.BlockStmt, opPos, pos token.Pos) bool {
	blk := body
	for {
		var inner *ast.BlockStmt
		for _, s := range blk.List {
			if s.Pos() <= opPos && opPos < s.End() {
				found := false
				ast.Inspect(s, func(n ast.Node) bool {
					b, ok := n.(*ast.BlockStmt)
					if ok && !found && b.Pos() <= opPos && opPos < b.End() {
						inner, found = b, true
					}
					return !found
				})
				break
			}
		}
		if inner == nil || inner == blk {
			return blk.Pos() <= pos && pos < blk.End()
		}
		blk = inner
	}
}

// derivedFrom reports whether variable root was initialized from an
// expression mentioning recv in this body (sh := &g.shards[i] makes sh
// derived from g), which lets a shard-entry lock guard the outer receiver's
// *Locked helpers.
func (p *Pass) derivedFrom(body *ast.BlockStmt, root, recv types.Object) bool {
	derived := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || derived {
			return !derived
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || p.objOf(id) != root || i >= len(as.Rhs) {
				continue
			}
			ast.Inspect(as.Rhs[i], func(m ast.Node) bool {
				if rid, ok := m.(*ast.Ident); ok && p.TypesInfo.Uses[rid] == recv {
					derived = true
				}
				return !derived
			})
		}
		return !derived
	})
	return derived
}

// checkShardReentry flags exported same-receiver method calls made while a
// shard lock (indexed mutex) is held.
func (p *Pass) checkShardReentry(call *ast.CallExpr) {
	fn := p.funcFor(call)
	if fn == nil || !fn.Exported() || fn.Type().(*types.Signature).Recv() == nil {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	callRecv := p.TypesInfo.Uses[id]
	if callRecv == nil {
		return
	}
	body := p.enclosingFuncBody(call.Pos())
	if body == nil {
		return
	}
	for _, acq := range p.mutexOps(body) {
		if !acq.acquire || acq.pos >= call.Pos() || !acq.indexed && !p.shardDerived(body, acq.root) {
			continue
		}
		if !p.dominates(body, acq.pos, call.Pos()) {
			continue
		}
		released := false
		for _, rel := range p.mutexOps(body) {
			if !rel.acquire && !rel.deferred && rel.base == acq.base &&
				rel.pos > acq.pos && rel.pos < call.Pos() && p.dominates(body, rel.pos, call.Pos()) {
				released = true
				break
			}
		}
		if released || p.Exempt(call.Pos(), lockedOK) {
			continue
		}
		p.Reportf(call.Pos(), "exported method %s called while shard lock %s is held: exported methods may re-acquire top-level locks (hoist the call past the unlock, or annotate with //ensemfdet:%s <why>)", fn.Name(), acq.base, lockedOK)
		return
	}
}

// shardDerived reports whether root was initialized through an index
// expression (sh := &g.shards[i]), making its mutex a shard lock even
// though the lock call itself has no index syntax.
func (p *Pass) shardDerived(body *ast.BlockStmt, root types.Object) bool {
	if root == nil {
		return false
	}
	derived := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || derived {
			return !derived
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || p.objOf(id) != root || i >= len(as.Rhs) {
				continue
			}
			ast.Inspect(as.Rhs[i], func(m ast.Node) bool {
				if _, ok := m.(*ast.IndexExpr); ok {
					derived = true
				}
				return !derived
			})
		}
		return !derived
	})
	return derived
}
