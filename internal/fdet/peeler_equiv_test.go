package fdet

import (
	"math"
	"testing"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/density"
)

// completeBipartite builds the full a×b biclique.
func completeBipartite(a, b int) *bipartite.Graph {
	bld := bipartite.NewBuilderSized(a, b, a*b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			bld.AddEdge(uint32(u), uint32(v))
		}
	}
	return bld.Build()
}

// mustEqualResults asserts two Detect results are byte-identical: same
// blocks, same bitwise scores, same truncation.
func mustEqualResults(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.TruncatedAt != b.TruncatedAt {
		t.Fatalf("%s: TruncatedAt %d vs %d", label, a.TruncatedAt, b.TruncatedAt)
	}
	if len(a.Scores) != len(b.Scores) {
		t.Fatalf("%s: %d vs %d scores", label, len(a.Scores), len(b.Scores))
	}
	for i := range a.Scores {
		if math.Float64bits(a.Scores[i]) != math.Float64bits(b.Scores[i]) {
			t.Fatalf("%s: score %d differs bitwise: %v vs %v", label, i, a.Scores[i], b.Scores[i])
		}
	}
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatalf("%s: %d vs %d blocks", label, len(a.Blocks), len(b.Blocks))
	}
	for i := range a.Blocks {
		ba, bb := a.Blocks[i], b.Blocks[i]
		if math.Float64bits(ba.Score) != math.Float64bits(bb.Score) {
			t.Fatalf("%s: block %d score differs bitwise", label, i)
		}
		if len(ba.Users) != len(bb.Users) || len(ba.Merchants) != len(bb.Merchants) {
			t.Fatalf("%s: block %d shape differs", label, i)
		}
		for j := range ba.Users {
			if ba.Users[j] != bb.Users[j] {
				t.Fatalf("%s: block %d user %d differs", label, i, j)
			}
		}
		for j := range ba.Merchants {
			if ba.Merchants[j] != bb.Merchants[j] {
				t.Fatalf("%s: block %d merchant %d differs", label, i, j)
			}
		}
	}
}

// TestBucketHeapEquivalence pins the tentpole contract: on unit weights the
// bucket-queue engine and the heap engine produce byte-identical results —
// blocks, bitwise scores, and truncation — across random graphs and both
// truncation modes.
func TestBucketHeapEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g, _ := plantedGraph(seed, 120, 80, 500, 2, 6, 6)
		for _, opts := range []Options{
			{Metric: density.AvgDegree{}},
			{Metric: density.AvgDegree{}, DisableEarlyStop: true, MaxBlocks: 20},
			{Metric: density.AvgDegree{}, FixedK: 5},
		} {
			bucket := Detect(g, opts)
			heapOpts := opts
			heapOpts.ForceHeap = true
			heap := Detect(g, heapOpts)
			mustEqualResults(t, "detect", bucket, heap)
		}
	}
}

// TestBucketPathEngages guards the equivalence suite against vacuity: unit
// weights must actually select the bucket engine, and the default
// column-weighted metric must not.
func TestBucketPathEngages(t *testing.T) {
	g, _ := plantedGraph(3, 50, 40, 200, 1, 5, 5)
	var s Scratch
	s.Detect(g, Options{Metric: density.AvgDegree{}})
	if !s.p.unitWeights || s.p.forceHeap {
		t.Fatal("AvgDegree did not select the bucket engine")
	}
	s.Detect(g, Options{Metric: density.AvgDegree{}, ForceHeap: true})
	if !s.p.forceHeap {
		t.Fatal("ForceHeap not honored")
	}
	s.Detect(g, Options{})
	if s.p.unitWeights {
		t.Fatal("column-weighted metric misclassified as unit weights")
	}
	// Explicit all-unit weights hit the bucket path too.
	w := make([]float64, g.NumMerchants())
	for i := range w {
		w[i] = 1
	}
	s.Detect(g, Options{MerchantWeights: w})
	if !s.p.unitWeights {
		t.Fatal("explicit unit weights did not select the bucket engine")
	}
}

// TestPeelerAllEqualPrioritiesPinsTieBreak pins the raw deletion order on a
// graph whose nodes all start at the same priority: the 3×3 biclique. Every
// pop must take the lowest id among minimum-priority nodes, giving exactly
// this interleaving (users are ids 0..2, merchants ids 3..5):
//
//	pop u0@3 → merchants drop to 2 → pop m0@2 → u1,u2 drop to 2 →
//	pop u1@2 → m1,m2 drop to 1 → pop m1@1 → u2 drops to 1 →
//	pop u2@1 → m2 drops to 0 → pop m2@0.
func TestPeelerAllEqualPrioritiesPinsTieBreak(t *testing.T) {
	want := []int32{0, 3, 1, 4, 2, 5}
	for _, forceHeap := range []bool{false, true} {
		g := completeBipartite(3, 3)
		var p peeler
		p.reset(g, density.AvgDegree{}, nil, forceHeap)
		if _, ok := p.peelOnce(); !ok {
			t.Fatal("peelOnce found nothing")
		}
		if len(p.order) != len(want) {
			t.Fatalf("forceHeap=%v: %d deletions, want %d", forceHeap, len(p.order), len(want))
		}
		for i, id := range p.order {
			if id != want[i] {
				t.Fatalf("forceHeap=%v: deletion %d = node %d, want %d (order %v)", forceHeap, i, id, want[i], p.order)
			}
		}
	}
}

// TestDetectDegenerateInputs covers the peeler edge cases on both engines:
// empty graph, a single edge, and a graph that empties entirely in round
// one.
func TestDetectDegenerateInputs(t *testing.T) {
	for _, forceHeap := range []bool{false, true} {
		opts := Options{Metric: density.AvgDegree{}, ForceHeap: forceHeap}

		// Empty graph: no blocks, no scores.
		empty := Detect(bipartite.NewBuilder().Build(), opts)
		if len(empty.Blocks) != 0 || len(empty.Scores) != 0 || empty.TruncatedAt != 0 {
			t.Fatalf("forceHeap=%v: empty graph detected %+v", forceHeap, empty)
		}

		// Single edge: one block holding both endpoints, φ = 1/2.
		single := bipartite.NewBuilderSized(1, 1, 1)
		single.AddEdge(0, 0)
		res := Detect(single.Build(), opts)
		if len(res.Blocks) != 1 {
			t.Fatalf("forceHeap=%v: single edge gave %d blocks", forceHeap, len(res.Blocks))
		}
		blk := res.Blocks[0]
		if len(blk.Users) != 1 || blk.Users[0] != 0 || len(blk.Merchants) != 1 || blk.Merchants[0] != 0 {
			t.Fatalf("forceHeap=%v: single-edge block = %+v", forceHeap, blk)
		}
		if blk.Score != 0.5 {
			t.Fatalf("forceHeap=%v: single-edge score = %v, want 0.5", forceHeap, blk.Score)
		}

		// Complete biclique: round one consumes the whole graph (the best
		// suffix is the intact graph, and removing its edges empties it), so
		// detection must stop after one block even when asked for more.
		res = Detect(completeBipartite(4, 4), Options{Metric: density.AvgDegree{}, ForceHeap: forceHeap, FixedK: 5})
		if len(res.Blocks) != 1 {
			t.Fatalf("forceHeap=%v: biclique gave %d blocks, want 1", forceHeap, len(res.Blocks))
		}
		blk = res.Blocks[0]
		if len(blk.Users) != 4 || len(blk.Merchants) != 4 {
			t.Fatalf("forceHeap=%v: biclique block shape %dx%d, want 4x4", forceHeap, len(blk.Users), len(blk.Merchants))
		}
		if blk.Score != 2 { // 16 edges / 8 nodes
			t.Fatalf("forceHeap=%v: biclique score = %v, want 2", forceHeap, blk.Score)
		}
	}
}
