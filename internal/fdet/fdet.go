// Package fdet implements FDET, the paper's heuristic fraud-detection
// algorithm (Algorithm 1): repeated greedy densest-block peeling with
// edge removal between rounds and automatic truncation of the block
// sequence at the elbow of the density-score curve (Definition 3).
package fdet

import (
	"math"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/density"
)

// Block is one detected dense subgraph. Ids are local to the graph that was
// peeled; callers detecting on sampled subgraphs map them back with the
// subgraph's id maps.
type Block struct {
	Users     []uint32
	Merchants []uint32
	// Score is the density score φ of the block at detection time, under
	// merchant weights frozen from the graph FDET started with.
	Score float64
}

// NumNodes returns |S| of the block.
func (b Block) NumNodes() int { return len(b.Users) + len(b.Merchants) }

// Options configures Detect. The zero value uses the paper's defaults.
type Options struct {
	// Metric is the density score; nil means density.Default().
	Metric density.Metric
	// MerchantWeights, when non-nil, overrides the metric's weights with
	// externally frozen per-merchant weights (length NumMerchants of the
	// graph passed to Detect). The ensemble freezes weights on the *parent*
	// graph before sampling: a merchant's suspiciousness discount must
	// reflect its global popularity, not its deflated degree inside one
	// sample — otherwise sparse connected blobs of rare merchants outscore
	// genuinely dense fraud blocks.
	MerchantWeights []float64
	// MaxBlocks caps the number of peeling rounds; 0 means DefaultMaxBlocks.
	MaxBlocks int
	// FixedK, when positive, detects exactly min(FixedK, available) blocks
	// and disables truncation. This is the ENSEMFDET-FIX-K variant and also
	// how the FRAUDAR baseline's K-block mode is expressed.
	FixedK int
	// Lookahead is how many blocks past the current elbow estimate are
	// detected before stopping early; 0 means DefaultLookahead. Ignored
	// when DisableEarlyStop is set.
	Lookahead int
	// DisableEarlyStop forces detection to run to MaxBlocks (or an empty
	// graph) before truncating. Used by tests to validate the early-stop
	// heuristic against the exhaustive result.
	DisableEarlyStop bool
}

// DefaultMaxBlocks bounds the number of peeling rounds. The paper observes
// kˆ "varies from few to few tens" and records kˆ < 15 in experiments.
const DefaultMaxBlocks = 50

// DefaultLookahead is the number of confirmation blocks detected beyond the
// running elbow estimate before stopping early.
const DefaultLookahead = 3

// Result is the outcome of Detect.
type Result struct {
	// Blocks are the retained blocks: the first TruncatedAt of the detected
	// sequence (all of it in FixedK mode).
	Blocks []Block
	// Scores holds φ of every detected block, pre-truncation, in detection
	// order. This is the curve of the paper's Figure 1.
	Scores []float64
	// TruncatedAt is kˆ, the number of retained blocks.
	TruncatedAt int
}

// DetectedUsers returns the union of user ids over retained blocks.
func (r Result) DetectedUsers() []uint32 { return unionIDs(r.Blocks, true) }

// DetectedMerchants returns the union of merchant ids over retained blocks.
func (r Result) DetectedMerchants() []uint32 { return unionIDs(r.Blocks, false) }

func unionIDs(blocks []Block, users bool) []uint32 {
	seen := make(map[uint32]bool)
	var out []uint32
	for _, b := range blocks {
		ids := b.Users
		if !users {
			ids = b.Merchants
		}
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// Detect runs FDET on g. Blocks are edge-disjoint: each round removes the
// detected block's edges before the next search, exactly as Algorithm 1 does
// (a node may appear in several blocks if its edges are split across them;
// the detected node set is the union, as in Alg. 1 lines 9-10).
func Detect(g *bipartite.Graph, opts Options) Result {
	maxBlocks := opts.MaxBlocks
	if maxBlocks <= 0 {
		maxBlocks = DefaultMaxBlocks
	}
	lookahead := opts.Lookahead
	if lookahead <= 0 {
		lookahead = DefaultLookahead
	}
	metric := opts.Metric
	if metric == nil {
		metric = density.Default()
	}
	if opts.FixedK > 0 {
		maxBlocks = opts.FixedK
	}

	p := newPeeler(g, metric, opts.MerchantWeights)
	var blocks []Block
	var scores []float64
	for len(blocks) < maxBlocks && p.aliveEdges > 0 {
		blk, ok := p.peelOnce()
		if !ok {
			break
		}
		blocks = append(blocks, blk)
		scores = append(scores, blk.Score)
		if opts.FixedK > 0 || opts.DisableEarlyStop {
			continue
		}
		if len(scores) >= 3 {
			if kHat := TruncatingPoint(scores); len(scores) >= kHat+lookahead {
				break
			}
		}
	}

	kHat := len(blocks)
	if opts.FixedK == 0 {
		kHat = TruncatingPoint(scores)
	}
	return Result{Blocks: blocks[:kHat], Scores: scores, TruncatedAt: kHat}
}

// TruncatingPoint implements Definition 3: kˆ = argmin_i Δ²φ(G(S_i)) where
// Δ²φ(i) = φ(i+1) − 2φ(i) + φ(i−1) is the second-order central finite
// difference of the block-score sequence. The returned kˆ is the number of
// blocks to keep (1-based). Sequences shorter than 3 cannot form a second
// difference and are kept whole.
func TruncatingPoint(scores []float64) int {
	if len(scores) < 3 {
		return len(scores)
	}
	best, bestVal := 1, math.Inf(1)
	for i := 1; i+1 < len(scores); i++ {
		d2 := scores[i+1] - 2*scores[i] + scores[i-1]
		if d2 < bestVal {
			bestVal = d2
			best = i
		}
	}
	return best + 1 // keep blocks 0..best inclusive
}

// SecondDifferences returns Δ²φ for each interior index of scores; it is
// exposed for experiment reporting (Figure 1 analysis).
func SecondDifferences(scores []float64) []float64 {
	if len(scores) < 3 {
		return nil
	}
	out := make([]float64, len(scores)-2)
	for i := 1; i+1 < len(scores); i++ {
		out[i-1] = scores[i+1] - 2*scores[i] + scores[i-1]
	}
	return out
}

// Peel runs a single densest-block peeling round on g (no edge removal, no
// truncation). It returns ok=false when g has no edges.
func Peel(g *bipartite.Graph, metric density.Metric) (Block, bool) {
	if metric == nil {
		metric = density.Default()
	}
	return newPeeler(g, metric, nil).peelOnce()
}
