// Package fdet implements FDET, the paper's heuristic fraud-detection
// algorithm (Algorithm 1): repeated greedy densest-block peeling with
// edge removal between rounds and automatic truncation of the block
// sequence at the elbow of the density-score curve (Definition 3).
package fdet

import (
	"math"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/density"
	"ensemfdet/internal/scratch"
)

// Block is one detected dense subgraph. Ids are local to the graph that was
// peeled; callers detecting on sampled subgraphs map them back with the
// subgraph's id maps.
type Block struct {
	Users     []uint32
	Merchants []uint32
	// Score is the density score φ of the block at detection time, under
	// merchant weights frozen from the graph FDET started with.
	Score float64
}

// NumNodes returns |S| of the block.
func (b Block) NumNodes() int { return len(b.Users) + len(b.Merchants) }

// Options configures Detect. The zero value uses the paper's defaults.
type Options struct {
	// Metric is the density score; nil means density.Default().
	Metric density.Metric
	// MerchantWeights, when non-nil, overrides the metric's weights with
	// externally frozen per-merchant weights (length NumMerchants of the
	// graph passed to Detect). The ensemble freezes weights on the *parent*
	// graph before sampling: a merchant's suspiciousness discount must
	// reflect its global popularity, not its deflated degree inside one
	// sample — otherwise sparse connected blobs of rare merchants outscore
	// genuinely dense fraud blocks.
	MerchantWeights []float64
	// MaxBlocks caps the number of peeling rounds; 0 means DefaultMaxBlocks.
	MaxBlocks int
	// FixedK, when positive, detects exactly min(FixedK, available) blocks
	// and disables truncation. This is the ENSEMFDET-FIX-K variant and also
	// how the FRAUDAR baseline's K-block mode is expressed.
	FixedK int
	// Lookahead is how many blocks past the current elbow estimate are
	// detected before stopping early; 0 means DefaultLookahead. Ignored
	// when DisableEarlyStop is set.
	Lookahead int
	// DisableEarlyStop forces detection to run to MaxBlocks (or an empty
	// graph) before truncating. Used by tests to validate the early-stop
	// heuristic against the exhaustive result.
	DisableEarlyStop bool
	// ForceHeap pins deletion to the float-priority index heap even when
	// every merchant weight is 1 and the O(E) bucket queue would apply. The
	// result is byte-identical either way — both engines delete in the same
	// (priority, id) total order — so this exists purely for the
	// bucket-vs-heap equivalence tests and side-by-side benchmarks.
	ForceHeap bool
}

// DefaultMaxBlocks bounds the number of peeling rounds. The paper observes
// kˆ "varies from few to few tens" and records kˆ < 15 in experiments.
const DefaultMaxBlocks = 50

// DefaultLookahead is the number of confirmation blocks detected beyond the
// running elbow estimate before stopping early.
const DefaultLookahead = 3

// Result is the outcome of Detect.
type Result struct {
	// Blocks are the retained blocks: the first TruncatedAt of the detected
	// sequence (all of it in FixedK mode).
	Blocks []Block
	// Scores holds φ of every detected block, pre-truncation, in detection
	// order. This is the curve of the paper's Figure 1.
	Scores []float64
	// TruncatedAt is kˆ, the number of retained blocks.
	TruncatedAt int
}

// DetectedUsers returns the union of user ids over retained blocks, sorted
// ascending.
func (r Result) DetectedUsers() []uint32 { return unionIDs(r.Blocks, true) }

// DetectedMerchants returns the union of merchant ids over retained blocks,
// sorted ascending.
func (r Result) DetectedMerchants() []uint32 { return unionIDs(r.Blocks, false) }

// unionIDs unions one side's ids over blocks. Block ids are dense local ids
// of the peeled (sub)graph, so a membership slice sized to the largest id
// replaces the old per-call map: one bulk allocation instead of per-id map
// inserts, and the ascending collection scan makes the output sorted — an
// order callers can rely on (pinned by tests).
func unionIDs(blocks []Block, users bool) []uint32 {
	maxID := -1
	for _, b := range blocks {
		ids := b.Users
		if !users {
			ids = b.Merchants
		}
		for _, id := range ids {
			if int(id) > maxID {
				maxID = int(id)
			}
		}
	}
	if maxID < 0 {
		return nil
	}
	seen := make([]bool, maxID+1)
	n := 0
	for _, b := range blocks {
		ids := b.Users
		if !users {
			ids = b.Merchants
		}
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				n++
			}
		}
	}
	out := make([]uint32, 0, n)
	for id, ok := range seen {
		if ok {
			out = append(out, uint32(id))
		}
	}
	return out
}

// Scratch holds the reusable state of one FDET worker: the peeler's alive
// adjacency, heap, priority/degree/order/membership tables, and the block
// and score storage of the last detection. A worker that runs many FDET
// detections (the ensemble runs one per sample) reuses a single Scratch and
// allocates nothing after warm-up.
//
// Aliasing contract: the Result returned by Scratch.Detect points into
// scratch-owned memory — block id slices and the score slice are overwritten
// by the next Detect on the same scratch. The zero value is ready to use.
// A Scratch must not be shared between goroutines without synchronization.
type Scratch struct {
	p        peeler
	refs     []blockRef
	blocks   []Block
	scoreBuf []float64
}

// NewScratch returns an empty scratch; all state is grown lazily.
func NewScratch() *Scratch { return &Scratch{} }

// Detect runs FDET on g exactly like the package-level Detect but reuses
// s's buffers. Results are identical; see the Scratch aliasing contract.
func (s *Scratch) Detect(g *bipartite.Graph, opts Options) Result {
	maxBlocks := opts.MaxBlocks
	if maxBlocks <= 0 {
		maxBlocks = DefaultMaxBlocks
	}
	lookahead := opts.Lookahead
	if lookahead <= 0 {
		lookahead = DefaultLookahead
	}
	metric := opts.Metric
	if metric == nil {
		metric = density.Default()
	}
	if opts.FixedK > 0 {
		maxBlocks = opts.FixedK
	}

	s.p.reset(g, metric, opts.MerchantWeights, opts.ForceHeap)
	refs := s.refs[:0]
	scores := s.scoreBuf[:0]
	for len(refs) < maxBlocks && s.p.aliveEdges > 0 {
		ref, ok := s.p.peelOnce()
		if !ok {
			break
		}
		refs = append(refs, ref)
		scores = append(scores, ref.score)
		if opts.FixedK > 0 || opts.DisableEarlyStop {
			continue
		}
		if len(scores) >= 3 {
			if kHat := TruncatingPoint(scores); len(scores) >= kHat+lookahead {
				break
			}
		}
	}
	s.refs = refs
	s.scoreBuf = scores

	kHat := len(refs)
	if opts.FixedK == 0 {
		kHat = TruncatingPoint(scores)
	}
	// Materialize blocks only now: the membership arrays are final, so the
	// subslices handed out cannot be moved by a later append.
	blocks := scratch.Grow(&s.blocks, len(refs))
	for i, ref := range refs {
		blocks[i] = s.p.block(ref)
	}
	return Result{Blocks: blocks[:kHat:kHat], Scores: scores, TruncatedAt: kHat}
}

// Detect runs FDET on g. Blocks are edge-disjoint: each round removes the
// detected block's edges before the next search, exactly as Algorithm 1 does
// (a node may appear in several blocks if its edges are split across them;
// the detected node set is the union, as in Alg. 1 lines 9-10).
func Detect(g *bipartite.Graph, opts Options) Result {
	// A fresh scratch per call keeps the returned Result exclusively owned,
	// preserving the original allocating semantics.
	var s Scratch
	return s.Detect(g, opts)
}

// TruncatingPoint implements Definition 3: kˆ = argmin_i Δ²φ(G(S_i)) where
// Δ²φ(i) = φ(i+1) − 2φ(i) + φ(i−1) is the second-order central finite
// difference of the block-score sequence. The returned kˆ is the number of
// blocks to keep (1-based). Sequences shorter than 3 cannot form a second
// difference and are kept whole.
func TruncatingPoint(scores []float64) int {
	if len(scores) < 3 {
		return len(scores)
	}
	best, bestVal := 1, math.Inf(1)
	for i := 1; i+1 < len(scores); i++ {
		d2 := scores[i+1] - 2*scores[i] + scores[i-1]
		if d2 < bestVal {
			bestVal = d2
			best = i
		}
	}
	return best + 1 // keep blocks 0..best inclusive
}

// SecondDifferences returns Δ²φ for each interior index of scores; it is
// exposed for experiment reporting (Figure 1 analysis).
func SecondDifferences(scores []float64) []float64 {
	if len(scores) < 3 {
		return nil
	}
	out := make([]float64, len(scores)-2)
	for i := 1; i+1 < len(scores); i++ {
		out[i-1] = scores[i+1] - 2*scores[i] + scores[i-1]
	}
	return out
}

// Peel runs a single densest-block peeling round on g (no edge removal, no
// truncation). It returns ok=false when g has no edges.
func Peel(g *bipartite.Graph, metric density.Metric) (Block, bool) {
	if metric == nil {
		metric = density.Default()
	}
	var p peeler
	p.reset(g, metric, nil, false)
	ref, ok := p.peelOnce()
	if !ok {
		return Block{}, false
	}
	return p.block(ref), true
}
