package fdet

import (
	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/density"
	"ensemfdet/internal/indexheap"
)

// peeler holds the mutable cross-round state of one FDET run: the frozen
// merchant weights and the per-edge liveness left behind by earlier blocks.
type peeler struct {
	g          *bipartite.Graph
	w          []float64 // merchant weights frozen from g at construction
	edgeAlive  []bool    // indexed by canonical (user-major) edge id
	crossIndex []int32   // merchant-major position -> canonical edge id
	aliveEdges int
}

func newPeeler(g *bipartite.Graph, metric density.Metric, weights []float64) *peeler {
	if weights == nil {
		weights = metric.MerchantWeights(g)
	}
	p := &peeler{
		g:          g,
		w:          weights,
		edgeAlive:  make([]bool, g.NumEdges()),
		crossIndex: g.BuildCrossIndex(),
		aliveEdges: g.NumEdges(),
	}
	for i := range p.edgeAlive {
		p.edgeAlive[i] = true
	}
	return p
}

// peelOnce performs one greedy peeling round over the alive part of the
// graph: it deletes the minimum-priority node repeatedly, tracks the density
// score φ after every deletion, returns the best suffix as a Block, and
// marks that block's edges dead. ok is false when no alive edges remain.
//
// Priorities are the removal cost of a node: for a user, the summed weight
// of its alive edges; for a merchant, its alive degree times its weight.
// Removing the node subtracts exactly its priority from the total weighted
// edge mass, so φ can be maintained incrementally in O(1) per deletion plus
// O(deg log n) heap updates — the structure that yields the paper's
// O(kˆ|E| log(|U|+|V|)) bound.
func (p *peeler) peelOnce() (Block, bool) {
	if p.aliveEdges == 0 {
		return Block{}, false
	}
	g := p.g
	nu, nm := g.NumUsers(), g.NumMerchants()

	userPrio := make([]float64, nu)
	merchPrio := make([]float64, nm)
	userDeg := make([]int, nu)
	merchDeg := make([]int, nm)
	total := 0.0
	for u := 0; u < nu; u++ {
		start, end := g.UserRowRange(uint32(u))
		for i := start; i < end; i++ {
			if !p.edgeAlive[i] {
				continue
			}
			v := g.UserAdjAt(i)
			userPrio[u] += p.w[v]
			userDeg[u]++
			merchDeg[v]++
			total += p.w[v]
		}
	}

	h := indexheap.New(nu + nm)
	nodesAlive := 0
	for u := 0; u < nu; u++ {
		if userDeg[u] > 0 {
			h.Push(u, userPrio[u])
			nodesAlive++
		}
	}
	for v := 0; v < nm; v++ {
		if merchDeg[v] > 0 {
			merchPrio[v] = float64(merchDeg[v]) * p.w[v]
			h.Push(nu+v, merchPrio[v])
			nodesAlive++
		}
	}

	// Simulate the full deletion sequence, recording φ after t deletions.
	// phis[0] is the intact alive graph (H_n in Algorithm 1).
	order := make([]int32, 0, nodesAlive)
	phis := make([]float64, 1, nodesAlive+1)
	phis[0] = total / float64(nodesAlive)
	left := nodesAlive
	for h.Len() > 0 {
		id, prio := h.Pop()
		order = append(order, int32(id))
		total -= prio
		left--
		if id < nu {
			u := uint32(id)
			start, end := g.UserRowRange(u)
			for i := start; i < end; i++ {
				if !p.edgeAlive[i] {
					continue
				}
				v := int(g.UserAdjAt(i))
				if h.Contains(nu + v) {
					h.Add(nu+v, -p.w[v])
				}
			}
		} else {
			v := uint32(id - nu)
			wv := p.w[v]
			start, end := g.MerchantRowRange(v)
			for pp := start; pp < end; pp++ {
				if !p.edgeAlive[p.crossIndex[pp]] {
					continue
				}
				u := int(g.MerchantAdjAt(pp))
				if h.Contains(u) {
					h.Add(u, -wv)
				}
			}
		}
		if left > 0 {
			phis = append(phis, total/float64(left))
		} else {
			phis = append(phis, 0)
		}
	}

	// Best suffix: earliest argmax keeps the largest qualifying subgraph and
	// makes the result deterministic.
	bestT, bestPhi := 0, phis[0]
	for t, phi := range phis {
		if phi > bestPhi {
			bestT, bestPhi = t, phi
		}
	}

	// Membership: alive nodes not deleted in the first bestT steps.
	inBlockUser := make([]bool, nu)
	inBlockMerch := make([]bool, nm)
	for u := 0; u < nu; u++ {
		inBlockUser[u] = userDeg[u] > 0
	}
	for v := 0; v < nm; v++ {
		inBlockMerch[v] = merchDeg[v] > 0
	}
	for t := 0; t < bestT; t++ {
		id := int(order[t])
		if id < nu {
			inBlockUser[id] = false
		} else {
			inBlockMerch[id-nu] = false
		}
	}

	blk := Block{Score: bestPhi}
	for u := 0; u < nu; u++ {
		if inBlockUser[u] {
			blk.Users = append(blk.Users, uint32(u))
		}
	}
	for v := 0; v < nm; v++ {
		if inBlockMerch[v] {
			blk.Merchants = append(blk.Merchants, uint32(v))
		}
	}

	// Remove the block's internal edges so the next round searches the rest
	// of the graph (Algorithm 1 line 11).
	for _, u := range blk.Users {
		start, end := g.UserRowRange(u)
		for i := start; i < end; i++ {
			if p.edgeAlive[i] && inBlockMerch[g.UserAdjAt(i)] {
				p.edgeAlive[i] = false
				p.aliveEdges--
			}
		}
	}
	return blk, true
}
