package fdet

import (
	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/bucketq"
	"ensemfdet/internal/density"
	"ensemfdet/internal/indexheap"
	"ensemfdet/internal/scratch"
)

// peeler holds the mutable cross-round state of one FDET run: the frozen
// merchant weights, the per-edge liveness left behind by earlier blocks, and
// a compacted alive-adjacency so round k scans only edges still alive
// instead of all |E|.
//
// All state lives in grow-in-place buffers, so a peeler embedded in a
// Scratch is recycled across FDET runs (and across the samples one ensemble
// worker processes) without allocating. The zero value is ready for reset.
//
// Determinism invariant: every float accumulation and every heap operation
// happens in exactly the order the naive implementation (full-CSR scan that
// skips dead edges) would produce. Compaction is stable — surviving edges
// keep their user-major (resp. merchant-major) relative order — so priority
// sums see the same addends in the same order and votes stay byte-identical
// for a fixed seed.
type peeler struct {
	g          *bipartite.Graph
	w          []float64 // merchant weights frozen from g at reset
	edgeAlive  []bool    // indexed by canonical (user-major) edge id
	aliveEdges int

	// Compacted alive adjacency. uOff/uAdj/uEid mirror the user-major CSR
	// restricted to alive edges (uEid carries canonical edge ids); mOff/
	// mAdj/mEid mirror the merchant-major direction. Rows are re-compacted
	// at the start of every round, dropping edges killed by the previous
	// block, so dead edges are never rescanned.
	uOff, mOff []int32
	uAdj, mAdj []uint32
	uEid, mEid []int32

	userPrio          []float64
	userDeg, merchDeg []int32
	heap              indexheap.Heap
	bucket            bucketq.Queue
	// unitWeights is true when every merchant weight is exactly 1.0 (the
	// AvgDegree metric, or explicit all-unit weights). On that path node
	// priorities are alive degrees — small non-negative integers whose
	// float64 images are exact — so deletion runs on the O(E) bucket queue
	// instead of the O(E log V) heap. forceHeap pins the heap anyway; it is
	// the escape hatch the bucket-vs-heap equivalence tests and benchmarks
	// are built on.
	unitWeights  bool
	forceHeap    bool
	order        []int32
	phis         []float64
	inBlockUser  []bool
	inBlockMerch []bool

	// Backing storage for detected block memberships; blockRef ranges index
	// into these. Materialized into []Block only when detection finishes,
	// because append may move the arrays while rounds are still running.
	blockUsers     []uint32
	blockMerchants []uint32
}

// blockRef is one detected block as ranges into the peeler's membership
// arrays, plus its φ score.
type blockRef struct {
	uStart, uEnd int
	vStart, vEnd int
	score        float64
}

// reset prepares the peeler to run FDET on g. Weights default to the
// metric's weights on g (allocating); hot-path callers pass frozen weights.
func (p *peeler) reset(g *bipartite.Graph, metric density.Metric, weights []float64, forceHeap bool) {
	if weights == nil {
		weights = metric.MerchantWeights(g)
	}
	p.g, p.w = g, weights
	p.forceHeap = forceHeap
	p.unitWeights = true
	for _, wv := range weights {
		if wv != 1 {
			p.unitWeights = false
			break
		}
	}
	e := g.NumEdges()
	nu, nm := g.NumUsers(), g.NumMerchants()
	alive := scratch.Grow(&p.edgeAlive, e)
	for i := range alive {
		alive[i] = true
	}
	p.aliveEdges = e
	p.blockUsers = p.blockUsers[:0]
	p.blockMerchants = p.blockMerchants[:0]

	// Seed the alive adjacency with the whole graph in canonical order. The
	// merchant-major side is filled by a user-major walk, which visits each
	// merchant's users in ascending order — matching the merchant rows'
	// sort order — with mEid recording canonical (user-major) edge ids.
	uOff := scratch.Grow(&p.uOff, nu+1)
	uAdj := scratch.Grow(&p.uAdj, e)
	uEid := scratch.Grow(&p.uEid, e)
	mOff := scratch.Grow(&p.mOff, nm+1)
	mAdj := scratch.Grow(&p.mAdj, e)
	mEid := scratch.Grow(&p.mEid, e)
	mCur := scratch.GrowZero(&p.merchDeg, nm) // borrowed as fill cursor
	mOff[0] = 0
	for v := 0; v < nm; v++ {
		rs, re := g.MerchantRowRange(uint32(v))
		mOff[v+1] = mOff[v] + int32(re-rs)
	}
	for u := 0; u < nu; u++ {
		start, end := g.UserRowRange(uint32(u))
		uOff[u] = int32(start)
		for i := start; i < end; i++ {
			v := g.UserAdjAt(i)
			uAdj[i] = v
			uEid[i] = int32(i)
			pos := mOff[v] + mCur[v]
			mAdj[pos] = uint32(u)
			mEid[pos] = int32(i)
			mCur[v]++
		}
	}
	uOff[nu] = int32(e)
}

// peelOnce performs one greedy peeling round over the alive part of the
// graph: it deletes the minimum-priority node repeatedly, tracks the density
// score φ after every deletion, returns the best suffix as a blockRef, and
// marks that block's edges dead. ok is false when no alive edges remain.
//
// Priorities are the removal cost of a node: for a user, the summed weight
// of its alive edges; for a merchant, its alive degree times its weight.
// Removing the node subtracts exactly its priority from the total weighted
// edge mass, so φ can be maintained incrementally in O(1) per deletion plus
// O(deg log n) heap updates — the structure that yields the paper's
// O(kˆ|E| log(|U|+|V|)) bound. The round's scans touch only alive edges:
// the stable compaction below drops edges killed by earlier blocks exactly
// once, instead of re-skipping them every subsequent round.
func (p *peeler) peelOnce() (blockRef, bool) {
	if p.aliveEdges == 0 {
		return blockRef{}, false
	}
	g := p.g
	nu, nm := g.NumUsers(), g.NumMerchants()

	userPrio := scratch.Grow(&p.userPrio, nu)
	userDeg := scratch.Grow(&p.userDeg, nu)
	merchDeg := scratch.GrowZero(&p.merchDeg, nm)

	// Stable in-place compaction of the user-major alive rows, fused with
	// the priority/degree recomputation the round needs anyway. Surviving
	// edges keep their relative order, so the float sums below add the same
	// values in the same order as a full-CSR scan skipping dead edges.
	total := 0.0
	w := int32(0)
	start := p.uOff[0]
	for u := 0; u < nu; u++ {
		end := p.uOff[u+1]
		p.uOff[u] = w
		prio := 0.0
		deg := int32(0)
		for i := start; i < end; i++ {
			eid := p.uEid[i]
			if !p.edgeAlive[eid] {
				continue
			}
			v := p.uAdj[i]
			p.uAdj[w] = v
			p.uEid[w] = eid
			w++
			wv := p.w[v]
			prio += wv
			total += wv
			deg++
			merchDeg[v]++
		}
		userPrio[u] = prio
		userDeg[u] = deg
		start = end
	}
	p.uOff[nu] = w

	// Merchant-major side: same stable compaction, no arithmetic.
	wm := int32(0)
	startM := p.mOff[0]
	for v := 0; v < nm; v++ {
		end := p.mOff[v+1]
		p.mOff[v] = wm
		for i := startM; i < end; i++ {
			eid := p.mEid[i]
			if !p.edgeAlive[eid] {
				continue
			}
			p.mAdj[wm] = p.mAdj[i]
			p.mEid[wm] = eid
			wm++
		}
		startM = end
	}
	p.mOff[nm] = wm

	nodesAlive := 0
	for u := 0; u < nu; u++ {
		if userDeg[u] > 0 {
			nodesAlive++
		}
	}
	for v := 0; v < nm; v++ {
		if merchDeg[v] > 0 {
			nodesAlive++
		}
	}

	// Simulate the full deletion sequence, recording φ after t deletions.
	// phis[0] is the intact alive graph (H_n in Algorithm 1). Neighbor
	// scans need no liveness checks: every compacted entry is alive for the
	// whole round (edges die only between rounds).
	//
	// Both engines delete in the same total order on (priority, id) — the
	// minimum priority first, ties to the lowest id — and on unit weights
	// every float priority is the exact float64 image of an alive degree, so
	// the order/phis they record are byte-identical; which engine ran is
	// unobservable in the result. The bucket queue makes the whole deletion
	// sequence O(E); the heap path pays O(E log V) but accepts arbitrary
	// float weights (the FRAUDAR column weighting of the default metric).
	if p.unitWeights && !p.forceHeap {
		p.deleteAllBucket(nu, nm, total, nodesAlive)
	} else {
		p.deleteAllHeap(nu, nm, total, nodesAlive)
	}
	order, phis := p.order, p.phis

	// Best suffix: earliest argmax keeps the largest qualifying subgraph and
	// makes the result deterministic.
	bestT, bestPhi := 0, phis[0]
	for t, phi := range phis {
		if phi > bestPhi {
			bestT, bestPhi = t, phi
		}
	}

	// Membership: alive nodes not deleted in the first bestT steps.
	inBlockUser := scratch.Grow(&p.inBlockUser, nu)
	inBlockMerch := scratch.Grow(&p.inBlockMerch, nm)
	for u := 0; u < nu; u++ {
		inBlockUser[u] = userDeg[u] > 0
	}
	for v := 0; v < nm; v++ {
		inBlockMerch[v] = merchDeg[v] > 0
	}
	for t := 0; t < bestT; t++ {
		id := int(order[t])
		if id < nu {
			inBlockUser[id] = false
		} else {
			inBlockMerch[id-nu] = false
		}
	}

	ref := blockRef{uStart: len(p.blockUsers), vStart: len(p.blockMerchants), score: bestPhi}
	for u := 0; u < nu; u++ {
		if inBlockUser[u] {
			p.blockUsers = append(p.blockUsers, uint32(u))
		}
	}
	for v := 0; v < nm; v++ {
		if inBlockMerch[v] {
			p.blockMerchants = append(p.blockMerchants, uint32(v))
		}
	}
	ref.uEnd, ref.vEnd = len(p.blockUsers), len(p.blockMerchants)

	// Remove the block's internal edges so the next round searches the rest
	// of the graph (Algorithm 1 line 11). Only the block's alive rows are
	// walked; the next round's compaction drops the kills.
	for i := ref.uStart; i < ref.uEnd; i++ {
		u := p.blockUsers[i]
		s, e := p.uOff[u], p.uOff[u+1]
		for j := s; j < e; j++ {
			if inBlockMerch[p.uAdj[j]] {
				p.edgeAlive[p.uEid[j]] = false
				p.aliveEdges--
			}
		}
	}
	return ref, true
}

// deleteAllHeap runs the deletion sequence on the index heap: float
// priorities, O(log V) per pop and per neighbor decrement. The heap is bulk
// built (Floyd) — construction order cannot leak into the result because
// pops follow the (priority, id) total order regardless of layout.
func (p *peeler) deleteAllHeap(nu, nm int, total float64, nodesAlive int) {
	h := &p.heap
	h.Reset(nu + nm)
	for u := 0; u < nu; u++ {
		if p.userDeg[u] > 0 {
			h.PushUnordered(u, p.userPrio[u])
		}
	}
	for v := 0; v < nm; v++ {
		if p.merchDeg[v] > 0 {
			h.PushUnordered(nu+v, float64(p.merchDeg[v])*p.w[v])
		}
	}
	h.Heapify()

	order := p.order[:0]
	phis := p.phis[:0]
	phis = append(phis, total/float64(nodesAlive))
	left := nodesAlive
	for h.Len() > 0 {
		id, prio := h.Pop()
		order = append(order, int32(id))
		total -= prio
		left--
		if id < nu {
			s, e := p.uOff[id], p.uOff[id+1]
			for i := s; i < e; i++ {
				v := int(p.uAdj[i])
				h.AddIfPresent(nu+v, -p.w[v])
			}
		} else {
			v := id - nu
			wv := p.w[v]
			s, e := p.mOff[v], p.mOff[v+1]
			for i := s; i < e; i++ {
				h.AddIfPresent(int(p.mAdj[i]), -wv)
			}
		}
		if left > 0 {
			phis = append(phis, total/float64(left))
		} else {
			phis = append(phis, 0)
		}
	}
	p.order, p.phis = order, phis
}

// deleteAllBucket runs the deletion sequence on the bucket queue: integer
// alive-degree priorities, O(1) amortized pops and decrements. Seeding
// pushes ids in descending order so every push is an O(1) head insert, and
// the subtraction `total -= float64(prio)` subtracts exactly the float the
// heap path would have (a sum of 1.0s is the exact float64 image of the
// degree), keeping phis bitwise identical across engines.
func (p *peeler) deleteAllBucket(nu, nm int, total float64, nodesAlive int) {
	maxDeg := int32(0)
	for _, d := range p.userDeg[:nu] {
		if d > maxDeg {
			maxDeg = d
		}
	}
	for _, d := range p.merchDeg[:nm] {
		if d > maxDeg {
			maxDeg = d
		}
	}
	q := &p.bucket
	q.Reset(nu+nm, int(maxDeg))
	for v := nm - 1; v >= 0; v-- {
		if d := p.merchDeg[v]; d > 0 {
			q.Push(int32(nu+v), d)
		}
	}
	for u := nu - 1; u >= 0; u-- {
		if d := p.userDeg[u]; d > 0 {
			q.Push(int32(u), d)
		}
	}

	order := p.order[:0]
	phis := p.phis[:0]
	phis = append(phis, total/float64(nodesAlive))
	left := nodesAlive
	for q.Len() > 0 {
		id, prio := q.PopMin()
		order = append(order, id)
		total -= float64(prio)
		left--
		if int(id) < nu {
			s, e := p.uOff[id], p.uOff[id+1]
			for i := s; i < e; i++ {
				q.DecIfPresent(int32(nu) + int32(p.uAdj[i]))
			}
		} else {
			v := int(id) - nu
			s, e := p.mOff[v], p.mOff[v+1]
			for i := s; i < e; i++ {
				q.DecIfPresent(int32(p.mAdj[i]))
			}
		}
		if left > 0 {
			phis = append(phis, total/float64(left))
		} else {
			phis = append(phis, 0)
		}
	}
	p.order, p.phis = order, phis
}

// block materializes ref against the (final) membership arrays. Full slice
// expressions keep later appends from silently sharing the blocks' tails.
func (p *peeler) block(ref blockRef) Block {
	return Block{
		Users:     p.blockUsers[ref.uStart:ref.uEnd:ref.uEnd],
		Merchants: p.blockMerchants[ref.vStart:ref.vEnd:ref.vEnd],
		Score:     ref.score,
	}
}
