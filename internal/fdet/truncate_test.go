package fdet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPropertyTruncatingPointBounds(t *testing.T) {
	// 1 ≤ kˆ ≤ len(scores) for any score sequence of length ≥ 1, and for
	// sequences shorter than 3 the whole sequence is kept.
	f := func(raw []float64) bool {
		k := TruncatingPoint(raw)
		if len(raw) < 3 {
			return k == len(raw)
		}
		return k >= 1 && k <= len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTruncatingPointFindsSharpestDrop(t *testing.T) {
	// For a sequence that is flat except for one sharp drop after index j,
	// the truncating point must be j+1 (keep blocks up to and including the
	// last pre-drop block).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		j := 1 + rng.Intn(n-3) // drop strictly inside the interior
		scores := make([]float64, n)
		for i := range scores {
			if i <= j {
				scores[i] = 1.0 - 0.001*float64(i) // high plateau
			} else {
				scores[i] = 0.2 - 0.001*float64(i) // low plateau
			}
		}
		return TruncatingPoint(scores) == j+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertySecondDifferencesLength(t *testing.T) {
	f := func(raw []float64) bool {
		d2 := SecondDifferences(raw)
		if len(raw) < 3 {
			return d2 == nil
		}
		return len(d2) == len(raw)-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDetectBlockScoresMatchTruncation(t *testing.T) {
	// Detect's retained block count always equals TruncatingPoint of its
	// full score sequence when early stopping is disabled.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, _ := plantedGraph(seed, 50+rng.Intn(100), 50+rng.Intn(100), 100+rng.Intn(300),
			1+rng.Intn(3), 4+rng.Intn(5), 4+rng.Intn(5))
		res := Detect(g, Options{DisableEarlyStop: true, MaxBlocks: 12})
		if len(res.Scores) == 0 {
			return len(res.Blocks) == 0
		}
		want := TruncatingPoint(res.Scores)
		return res.TruncatedAt == want && len(res.Blocks) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBlockScoresPositive(t *testing.T) {
	// Every detected block must have a strictly positive score (an empty or
	// zero-mass block must never be emitted).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, _ := plantedGraph(seed, 30+rng.Intn(60), 30+rng.Intn(60), 50+rng.Intn(150), 1, 5, 5)
		res := Detect(g, Options{FixedK: 10})
		for _, blk := range res.Blocks {
			if !(blk.Score > 0) || blk.NumNodes() == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
