package fdet

import (
	"reflect"
	"sort"
	"testing"

	"ensemfdet/internal/density"
)

// TestUnionIDsSortedOrder pins the satellite contract: DetectedUsers and
// DetectedMerchants return sorted ascending ids, with duplicates across
// blocks merged.
func TestUnionIDsSortedOrder(t *testing.T) {
	blocks := []Block{
		{Users: []uint32{9, 2, 5}, Merchants: []uint32{4}},
		{Users: []uint32{2, 7, 0}, Merchants: []uint32{1, 4, 3}},
		{Users: []uint32{5}, Merchants: nil},
	}
	r := Result{Blocks: blocks}
	wantU := []uint32{0, 2, 5, 7, 9}
	if got := r.DetectedUsers(); !reflect.DeepEqual(got, wantU) {
		t.Errorf("DetectedUsers = %v, want %v (sorted, deduped)", got, wantU)
	}
	wantM := []uint32{1, 3, 4}
	if got := r.DetectedMerchants(); !reflect.DeepEqual(got, wantM) {
		t.Errorf("DetectedMerchants = %v, want %v (sorted, deduped)", got, wantM)
	}
	if got := (Result{}).DetectedUsers(); got != nil {
		t.Errorf("empty result DetectedUsers = %v, want nil", got)
	}
}

func TestUnionIDsSortedProperty(t *testing.T) {
	g, _ := plantedGraph(37, 150, 150, 400, 2, 6, 6)
	res := Detect(g, Options{FixedK: 4})
	for _, ids := range [][]uint32{res.DetectedUsers(), res.DetectedMerchants()} {
		if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
			t.Errorf("union not sorted: %v", ids)
		}
		for i := 1; i < len(ids); i++ {
			if ids[i] == ids[i-1] {
				t.Errorf("duplicate id %d in union", ids[i])
			}
		}
	}
}

func sameResult(t *testing.T, tag string, a, b Result) {
	t.Helper()
	if a.TruncatedAt != b.TruncatedAt {
		t.Errorf("%s: kˆ %d != %d", tag, a.TruncatedAt, b.TruncatedAt)
	}
	if !reflect.DeepEqual(a.Scores, b.Scores) {
		t.Errorf("%s: scores differ: %v vs %v", tag, a.Scores, b.Scores)
	}
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatalf("%s: block counts differ: %d vs %d", tag, len(a.Blocks), len(b.Blocks))
	}
	for i := range a.Blocks {
		if a.Blocks[i].Score != b.Blocks[i].Score ||
			!reflect.DeepEqual(a.Blocks[i].Users, b.Blocks[i].Users) ||
			!reflect.DeepEqual(a.Blocks[i].Merchants, b.Blocks[i].Merchants) {
			t.Errorf("%s: block %d differs", tag, i)
		}
	}
}

// TestScratchDetectMatchesDetect reuses one Scratch across many graphs of
// varying shapes and sizes and checks every Result against a fresh Detect.
// Shrinking then growing the graph between runs is the interesting case:
// stale buffer tails must never leak into a later detection.
func TestScratchDetectMatchesDetect(t *testing.T) {
	s := NewScratch()
	shapes := []struct {
		seed                              int64
		bgU, bgM, bgE, blocks, blkU, blkM int
	}{
		{1, 300, 300, 700, 3, 8, 8},
		{2, 40, 40, 90, 1, 4, 4}, // shrink
		{3, 500, 450, 1200, 2, 10, 10},
		{4, 10, 10, 15, 1, 3, 3}, // shrink hard
		{5, 200, 260, 500, 2, 6, 6},
	}
	optVariants := []Options{
		{},
		{FixedK: 5},
		{DisableEarlyStop: true, MaxBlocks: 12},
		{Metric: density.AvgDegree{}},
	}
	for _, sh := range shapes {
		g, _ := plantedGraph(sh.seed, sh.bgU, sh.bgM, sh.bgE, sh.blocks, sh.blkU, sh.blkM)
		for _, opts := range optVariants {
			got := s.Detect(g, opts)
			want := Detect(g, opts)
			sameResult(t, g.String(), got, want)
		}
	}
}

// TestScratchDetectEmptyGraph covers the degenerate reuse case: a warmed
// scratch handed an empty graph must return an empty result, not stale
// blocks from the previous run.
func TestScratchDetectEmptyGraph(t *testing.T) {
	s := NewScratch()
	g, _ := plantedGraph(11, 100, 100, 300, 1, 5, 5)
	if res := s.Detect(g, Options{}); len(res.Blocks) == 0 {
		t.Fatal("warm-up detection found nothing")
	}
	empty, _ := plantedGraph(12, 5, 5, 0, 0, 0, 0)
	res := s.Detect(empty, Options{})
	if len(res.Blocks) != 0 || len(res.Scores) != 0 || res.TruncatedAt != 0 {
		t.Errorf("empty graph on warm scratch produced %+v", res)
	}
}
