package fdet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/density"
)

// plantedGraph embeds numBlocks disjoint dense blocks (blockUsers x
// blockMerchants, full) in a sparse random background.
func plantedGraph(seed int64, bgUsers, bgMerchants, bgEdges, numBlocks, blockUsers, blockMerchants int) (*bipartite.Graph, [][]uint32) {
	rng := rand.New(rand.NewSource(seed))
	nu := bgUsers + numBlocks*blockUsers
	nm := bgMerchants + numBlocks*blockMerchants
	b := bipartite.NewBuilderSized(nu, nm, bgEdges+numBlocks*blockUsers*blockMerchants)
	for i := 0; i < bgEdges; i++ {
		b.AddEdge(uint32(rng.Intn(bgUsers)), uint32(rng.Intn(bgMerchants)))
	}
	var blockUserIDs [][]uint32
	for k := 0; k < numBlocks; k++ {
		var ids []uint32
		for i := 0; i < blockUsers; i++ {
			u := uint32(bgUsers + k*blockUsers + i)
			ids = append(ids, u)
			for j := 0; j < blockMerchants; j++ {
				v := uint32(bgMerchants + k*blockMerchants + j)
				b.AddEdge(u, v)
			}
		}
		blockUserIDs = append(blockUserIDs, ids)
	}
	return b.Build(), blockUserIDs
}

func TestPeelFindsPlantedBlock(t *testing.T) {
	g, blocks := plantedGraph(1, 200, 200, 400, 1, 8, 8)
	blk, ok := Peel(g, density.Default())
	if !ok {
		t.Fatal("Peel found nothing")
	}
	inBlock := make(map[uint32]bool)
	for _, u := range blocks[0] {
		inBlock[u] = true
	}
	hit := 0
	for _, u := range blk.Users {
		if inBlock[u] {
			hit++
		}
	}
	if hit < len(blocks[0]) {
		t.Errorf("peel recovered %d/%d planted users; users=%v", hit, len(blocks[0]), blk.Users)
	}
	// The block should not engulf much of the background.
	if len(blk.Users) > 3*len(blocks[0]) {
		t.Errorf("peel block too large: %d users", len(blk.Users))
	}
}

func TestPeelEmptyGraph(t *testing.T) {
	g := bipartite.NewBuilder().Build()
	if _, ok := Peel(g, density.Default()); ok {
		t.Error("Peel on empty graph reported a block")
	}
}

func TestPeelScoreMatchesScoreSubset(t *testing.T) {
	// The incremental φ maintained by the peeler must equal the direct
	// subset score of the returned block.
	for seed := int64(0); seed < 5; seed++ {
		g, _ := plantedGraph(seed, 50, 50, 150, 1, 5, 5)
		blk, ok := Peel(g, density.Default())
		if !ok {
			t.Fatal("no block")
		}
		direct := density.ScoreSubset(g, density.Default(), blk.Users, blk.Merchants)
		if math.Abs(direct-blk.Score) > 1e-9 {
			t.Errorf("seed %d: incremental score %g != direct %g", seed, blk.Score, direct)
		}
	}
}

func TestPropertyPeelBlockIsBestSuffix(t *testing.T) {
	// On small random graphs, no suffix of the deletion order may beat the
	// returned block — verified indirectly: the block's direct score must be
	// ≥ the whole graph's score (the whole alive graph is a candidate).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu, nm := 2+rng.Intn(15), 2+rng.Intn(15)
		b := bipartite.NewBuilderSized(nu, nm, 0)
		for i := 0; i < 5+rng.Intn(60); i++ {
			b.AddEdge(uint32(rng.Intn(nu)), uint32(rng.Intn(nm)))
		}
		g := b.Build()
		blk, ok := Peel(g, density.Default())
		if !ok {
			return g.NumEdges() == 0
		}
		direct := density.ScoreSubset(g, density.Default(), blk.Users, blk.Merchants)
		if math.Abs(direct-blk.Score) > 1e-9 {
			return false
		}
		// Whole-alive-graph score (isolated nodes excluded, matching the
		// peeler's universe).
		var users, merchants []uint32
		for u := 0; u < nu; u++ {
			if g.UserDegree(uint32(u)) > 0 {
				users = append(users, uint32(u))
			}
		}
		for v := 0; v < nm; v++ {
			if g.MerchantDegree(uint32(v)) > 0 {
				merchants = append(merchants, uint32(v))
			}
		}
		whole := density.ScoreSubset(g, density.Default(), users, merchants)
		return blk.Score >= whole-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDetectMultipleBlocks(t *testing.T) {
	g, planted := plantedGraph(7, 300, 300, 500, 3, 8, 8)
	res := Detect(g, Options{})
	if len(res.Blocks) < 3 {
		t.Fatalf("detected %d blocks, want ≥ 3 (scores %v)", len(res.Blocks), res.Scores)
	}
	// Every planted user must appear in the union of retained blocks.
	detected := make(map[uint32]bool)
	for _, u := range res.DetectedUsers() {
		detected[u] = true
	}
	for k, ids := range planted {
		for _, u := range ids {
			if !detected[u] {
				t.Errorf("planted block %d user %d not detected", k, u)
			}
		}
	}
}

func TestDetectScoresDecreasing(t *testing.T) {
	// Figure 1 shape: the per-block score curve is (weakly) decreasing for
	// well-separated planted blocks of decreasing density.
	g, _ := plantedGraph(3, 400, 400, 800, 4, 10, 10)
	res := Detect(g, Options{DisableEarlyStop: true, MaxBlocks: 10})
	for i := 1; i < len(res.Scores); i++ {
		if res.Scores[i] > res.Scores[i-1]+1e-9 {
			t.Errorf("scores increase at %d: %v", i, res.Scores)
			break
		}
	}
}

func TestDetectEdgeDisjointBlocks(t *testing.T) {
	g, _ := plantedGraph(11, 100, 100, 300, 2, 6, 6)
	res := Detect(g, Options{FixedK: 5})
	type edge struct{ u, v uint32 }
	seen := make(map[edge]int)
	for _, blk := range res.Blocks {
		inM := make(map[uint32]bool)
		for _, v := range blk.Merchants {
			inM[v] = true
		}
		for _, u := range blk.Users {
			for _, v := range g.UserNeighbors(u) {
				if inM[v] {
					seen[edge{u, v}]++
				}
			}
		}
	}
	// Edge-disjointness is a property of Algorithm 1's edge removal; a
	// graph edge may at most be claimed once... but note a block records
	// nodes, and an unclaimed edge between later-block nodes may exist in
	// the graph without belonging to the block. We therefore only check
	// that total claimed mass does not exceed |E|.
	totalClaims := 0
	for _, c := range seen {
		totalClaims += c
	}
	if totalClaims > 2*g.NumEdges() {
		t.Errorf("implausible edge claim count %d for %d edges", totalClaims, g.NumEdges())
	}
}

func TestDetectFixedK(t *testing.T) {
	g, _ := plantedGraph(5, 200, 200, 600, 2, 6, 6)
	res := Detect(g, Options{FixedK: 4})
	if len(res.Blocks) != 4 {
		t.Errorf("FixedK=4 returned %d blocks", len(res.Blocks))
	}
	if res.TruncatedAt != 4 {
		t.Errorf("TruncatedAt = %d, want 4", res.TruncatedAt)
	}
}

func TestDetectEmptyGraph(t *testing.T) {
	g := bipartite.NewBuilder().Build()
	res := Detect(g, Options{})
	if len(res.Blocks) != 0 || len(res.Scores) != 0 {
		t.Errorf("empty graph produced blocks: %+v", res)
	}
}

func TestDetectSingleEdge(t *testing.T) {
	b := bipartite.NewBuilder()
	b.AddEdge(0, 0)
	res := Detect(b.Build(), Options{})
	if len(res.Blocks) != 1 {
		t.Fatalf("got %d blocks, want 1", len(res.Blocks))
	}
	blk := res.Blocks[0]
	if len(blk.Users) != 1 || len(blk.Merchants) != 1 {
		t.Errorf("block = %+v, want the single edge", blk)
	}
}

func TestTruncatingPoint(t *testing.T) {
	cases := []struct {
		name   string
		scores []float64
		want   int
	}{
		{"too short 0", nil, 0},
		{"too short 1", []float64{1}, 1},
		{"too short 2", []float64{1, 0.9}, 2},
		// Elbow after the 2nd block: sharp drop 0.9→0.2 then plateau.
		{"elbow at 2", []float64{1.0, 0.9, 0.2, 0.18, 0.17}, 2},
		// Gradual decay: Δ² minimized at the first interior point.
		{"linear decay", []float64{1.0, 0.8, 0.6, 0.4}, 2},
	}
	for _, c := range cases {
		if got := TruncatingPoint(c.scores); got != c.want {
			t.Errorf("%s: TruncatingPoint(%v) = %d, want %d", c.name, c.scores, got, c.want)
		}
	}
}

func TestSecondDifferences(t *testing.T) {
	got := SecondDifferences([]float64{1, 0.9, 0.2, 0.18})
	want := []float64{0.2 - 2*0.9 + 1, 0.18 - 2*0.2 + 0.9}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Δ²[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if SecondDifferences([]float64{1, 2}) != nil {
		t.Error("short sequence should return nil")
	}
}

func TestTruncationKeepsDenseBlocksDropsTail(t *testing.T) {
	// With 3 planted blocks and noise, truncation must keep at least the
	// planted blocks' worth of detections and kˆ must be < MaxBlocks.
	g, _ := plantedGraph(13, 500, 500, 1000, 3, 10, 10)
	res := Detect(g, Options{DisableEarlyStop: true, MaxBlocks: 20})
	if res.TruncatedAt < 3 {
		t.Errorf("kˆ = %d, want ≥ 3 planted blocks (scores %v)", res.TruncatedAt, res.Scores)
	}
	if res.TruncatedAt >= 20 {
		t.Errorf("kˆ = %d did not truncate at all", res.TruncatedAt)
	}
}

func TestEarlyStopMatchesExhaustiveKHat(t *testing.T) {
	// The early-stop heuristic must retain the same blocks as exhaustive
	// detection whenever the elbow is well-formed.
	g, _ := plantedGraph(17, 300, 300, 600, 3, 9, 9)
	fast := Detect(g, Options{})
	full := Detect(g, Options{DisableEarlyStop: true})
	if fast.TruncatedAt != full.TruncatedAt {
		t.Logf("fast kˆ=%d full kˆ=%d (allowed to differ on ill-formed elbows); fast=%v full=%v",
			fast.TruncatedAt, full.TruncatedAt, fast.Scores, full.Scores)
	}
	if len(fast.Blocks) == 0 {
		t.Error("early stop returned no blocks")
	}
}

func TestDetectDeterministic(t *testing.T) {
	g, _ := plantedGraph(23, 200, 200, 500, 2, 7, 7)
	a := Detect(g, Options{})
	b := Detect(g, Options{})
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatalf("block counts differ: %d vs %d", len(a.Blocks), len(b.Blocks))
	}
	for i := range a.Blocks {
		if a.Blocks[i].Score != b.Blocks[i].Score {
			t.Errorf("block %d scores differ", i)
		}
	}
}

func TestDetectAvgDegreeMetric(t *testing.T) {
	g, planted := plantedGraph(29, 200, 200, 400, 1, 8, 8)
	res := Detect(g, Options{Metric: density.AvgDegree{}})
	if len(res.Blocks) == 0 {
		t.Fatal("no blocks with avg-degree metric")
	}
	detected := make(map[uint32]bool)
	for _, u := range res.DetectedUsers() {
		detected[u] = true
	}
	hits := 0
	for _, u := range planted[0] {
		if detected[u] {
			hits++
		}
	}
	if hits < len(planted[0])/2 {
		t.Errorf("avg-degree metric recovered %d/%d planted users", hits, len(planted[0]))
	}
}
