package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEvaluateBasics(t *testing.T) {
	l := NewLabels(10, []uint32{0, 1, 2, 3}) // 4 fraud users
	m := Evaluate(l, []uint32{0, 1, 5})      // 2 tp, 1 fp
	if m.TruePositives != 2 || m.FalsePositives != 1 || m.FalseNegatives != 2 {
		t.Fatalf("confusion = %+v", m)
	}
	if math.Abs(m.Precision-2.0/3) > 1e-12 {
		t.Errorf("P = %g", m.Precision)
	}
	if math.Abs(m.Recall-0.5) > 1e-12 {
		t.Errorf("R = %g", m.Recall)
	}
	wantF1 := 2 * (2.0 / 3) * 0.5 / (2.0/3 + 0.5)
	if math.Abs(m.F1-wantF1) > 1e-12 {
		t.Errorf("F1 = %g, want %g", m.F1, wantF1)
	}
}

func TestEvaluateEmptyDetection(t *testing.T) {
	l := NewLabels(5, []uint32{0})
	m := Evaluate(l, nil)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Errorf("empty detection: %+v", m)
	}
}

func TestEvaluateNoFraud(t *testing.T) {
	l := NewLabels(5, nil)
	m := Evaluate(l, []uint32{1, 2})
	if m.Recall != 0 || m.Precision != 0 {
		t.Errorf("no-fraud labels: %+v", m)
	}
}

func TestEvaluateDuplicatesAndOutOfRange(t *testing.T) {
	l := NewLabels(3, []uint32{0})
	m := Evaluate(l, []uint32{0, 0, 7})
	if m.TruePositives != 1 || m.FalsePositives != 1 || m.Detected != 2 {
		t.Errorf("dup/out-of-range handling: %+v", m)
	}
}

func TestNewLabelsDedups(t *testing.T) {
	l := NewLabels(4, []uint32{1, 1, 2})
	if l.NumFraud != 2 {
		t.Errorf("NumFraud = %d, want 2", l.NumFraud)
	}
}

func TestPropertyPrecisionRecallBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		var fraud []uint32
		for u := 0; u < n; u++ {
			if rng.Intn(3) == 0 {
				fraud = append(fraud, uint32(u))
			}
		}
		l := NewLabels(n, fraud)
		var det []uint32
		for u := 0; u < n; u++ {
			if rng.Intn(4) == 0 {
				det = append(det, uint32(u))
			}
		}
		m := Evaluate(l, det)
		if m.Precision < 0 || m.Precision > 1 || m.Recall < 0 || m.Recall > 1 || m.F1 < 0 || m.F1 > 1 {
			return false
		}
		// F1 is bounded by both P and R... precisely, min ≤ F1 ≤ max is
		// false in general; but F1 ≤ 2·min(P,R) and F1 ≥ 0 hold.
		if m.F1 > 2*math.Min(m.Precision, m.Recall)+1e-12 {
			return false
		}
		return m.TruePositives+m.FalseNegatives == l.NumFraud
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func mkCurve(points ...[3]float64) Curve {
	// each point: {detected, precision, recall}
	var c Curve
	for _, p := range points {
		c = append(c, CurvePoint{Metrics: Metrics{
			Detected:  int(p[0]),
			Precision: p[1],
			Recall:    p[2],
			F1:        f1(p[1], p[2]),
		}})
	}
	return c
}

func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func TestCurveMaxF1(t *testing.T) {
	c := mkCurve([3]float64{10, 0.9, 0.1}, [3]float64{50, 0.5, 0.5}, [3]float64{100, 0.2, 0.8})
	best := c.MaxF1()
	if best.Detected != 50 {
		t.Errorf("MaxF1 at detected=%d, want 50", best.Detected)
	}
	var empty Curve
	if empty.MaxF1().F1 != 0 {
		t.Error("empty curve MaxF1 != 0")
	}
}

func TestCurveAUCPR(t *testing.T) {
	// Rectangle: P=1 from R=0 to R=1 → area 1.
	c := mkCurve([3]float64{1, 1, 0}, [3]float64{2, 1, 1})
	if got := c.AUCPR(); math.Abs(got-1) > 1e-12 {
		t.Errorf("AUCPR = %g, want 1", got)
	}
	if (Curve{}).AUCPR() != 0 {
		t.Error("empty AUCPR != 0")
	}
}

func TestCurveMaxDetectedGap(t *testing.T) {
	c := mkCurve([3]float64{10, 0.5, 0.1}, [3]float64{15, 0.5, 0.2}, [3]float64{100, 0.4, 0.6})
	if got := c.MaxDetectedGap(); got != 85 {
		t.Errorf("MaxDetectedGap = %d, want 85", got)
	}
}

func TestPrecisionAtRecall(t *testing.T) {
	c := mkCurve([3]float64{10, 0.9, 0.1}, [3]float64{50, 0.6, 0.4}, [3]float64{100, 0.3, 0.7})
	p, ok := c.PrecisionAtRecall(0.4)
	if !ok || math.Abs(p-0.6) > 1e-12 {
		t.Errorf("PrecisionAtRecall(0.4) = (%g,%v)", p, ok)
	}
	if _, ok := c.PrecisionAtRecall(0.9); ok {
		t.Error("recall 0.9 unreachable but reported")
	}
}

func TestInterpolateAtDetected(t *testing.T) {
	c := mkCurve([3]float64{10, 1.0, 0.1}, [3]float64{20, 0.5, 0.2})
	got, ok := c.InterpolateAtDetected(15, PrecisionOf)
	if !ok || math.Abs(got-0.75) > 1e-12 {
		t.Errorf("interp = (%g,%v), want (0.75,true)", got, ok)
	}
	if _, ok := c.InterpolateAtDetected(5, PrecisionOf); ok {
		t.Error("below-range target interpolated")
	}
	if _, ok := c.InterpolateAtDetected(25, PrecisionOf); ok {
		t.Error("above-range target interpolated")
	}
	if _, ok := (Curve{}).InterpolateAtDetected(1, F1Of); ok {
		t.Error("empty curve interpolated")
	}
}

func TestScoredCurve(t *testing.T) {
	// Users 0..3 fraud; scores rank them on top.
	l := NewLabels(8, []uint32{0, 1, 2, 3})
	scores := []float64{8, 7, 6, 5, 4, 3, 2, 1}
	c := ScoredCurve(l, scores, []int{2, 4, 8})
	if len(c) != 3 {
		t.Fatalf("curve len = %d, want 3", len(c))
	}
	if c[0].Precision != 1 || math.Abs(c[0].Recall-0.5) > 1e-12 {
		t.Errorf("point 0 = %+v", c[0].Metrics)
	}
	if c[1].Precision != 1 || c[1].Recall != 1 {
		t.Errorf("point 1 = %+v", c[1].Metrics)
	}
	if math.Abs(c[2].Precision-0.5) > 1e-12 {
		t.Errorf("point 2 = %+v", c[2].Metrics)
	}
}

func TestScoredCurveSkipsNaN(t *testing.T) {
	l := NewLabels(3, []uint32{0})
	c := ScoredCurve(l, []float64{math.NaN(), 1, 2}, []int{2})
	if c[0].Detected != 2 {
		t.Errorf("NaN user included: %+v", c[0].Metrics)
	}
}

func TestScoredCurveDefaultCutoffs(t *testing.T) {
	l := NewLabels(100, []uint32{0})
	scores := make([]float64, 100)
	for i := range scores {
		scores[i] = float64(i)
	}
	c := ScoredCurve(l, scores, nil)
	if len(c) == 0 {
		t.Fatal("default cutoffs produced empty curve")
	}
	last := c[len(c)-1]
	if last.Detected != 100 {
		t.Errorf("last point detects %d, want 100", last.Detected)
	}
}

func TestPropertyScoredCurveMonotoneRecall(t *testing.T) {
	// Recall never decreases as the cutoff grows.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(80)
		var fraud []uint32
		for u := 0; u < n; u++ {
			if rng.Intn(4) == 0 {
				fraud = append(fraud, uint32(u))
			}
		}
		l := NewLabels(n, fraud)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64()
		}
		c := ScoredCurve(l, scores, nil)
		for i := 1; i < len(c); i++ {
			if c[i].Recall < c[i-1].Recall-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
