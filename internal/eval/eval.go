// Package eval provides the evaluation machinery of paper §V-B1: Precision,
// Recall and F1 against a blacklist ground truth, plus operating-curve
// utilities (PR curves, F1-vs-detected curves) used to render Figures 3-9.
//
// As the paper notes, Accuracy is meaningless at fraud base rates of a few
// percent, so it is deliberately absent.
package eval

import (
	"fmt"
	"math"
	"sort"
)

// Labels is the ground-truth blacklist: Fraud[u] is true when user u is
// blacklisted. NumFraud caches the positive count.
type Labels struct {
	Fraud    []bool
	NumFraud int
}

// NewLabels builds Labels for numUsers users with the given fraud ids.
func NewLabels(numUsers int, fraudIDs []uint32) *Labels {
	l := &Labels{Fraud: make([]bool, numUsers)}
	for _, u := range fraudIDs {
		if !l.Fraud[u] {
			l.Fraud[u] = true
			l.NumFraud++
		}
	}
	return l
}

// Metrics is one confusion-derived measurement.
type Metrics struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	Precision      float64
	Recall         float64
	F1             float64
	Detected       int // |detected set|
}

// Evaluate scores a detected user set against the labels. Detected ids out
// of range are counted as false positives (they can arise when a detector is
// run on a graph with declared extra nodes).
func Evaluate(l *Labels, detected []uint32) Metrics {
	m := Metrics{Detected: len(detected)}
	seen := make(map[uint32]bool, len(detected))
	for _, u := range detected {
		if seen[u] {
			m.Detected--
			continue
		}
		seen[u] = true
		if int(u) < len(l.Fraud) && l.Fraud[u] {
			m.TruePositives++
		} else {
			m.FalsePositives++
		}
	}
	m.FalseNegatives = l.NumFraud - m.TruePositives
	if m.TruePositives+m.FalsePositives > 0 {
		m.Precision = float64(m.TruePositives) / float64(m.TruePositives+m.FalsePositives)
	}
	if l.NumFraud > 0 {
		m.Recall = float64(m.TruePositives) / float64(l.NumFraud)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// String implements fmt.Stringer.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.4f R=%.4f F1=%.4f (tp=%d fp=%d fn=%d |det|=%d)",
		m.Precision, m.Recall, m.F1, m.TruePositives, m.FalsePositives, m.FalseNegatives, m.Detected)
}

// CurvePoint is one operating point of a detector, e.g. one vote threshold
// or one Fraudar block prefix.
type CurvePoint struct {
	// Param is the detector knob producing this point (vote threshold T,
	// block count k, score cutoff...), recorded for reporting.
	Param float64
	Metrics
}

// Curve is a sequence of operating points, ordered by ascending detected
// count (the x-axis of Figures 4 and 7-9).
type Curve []CurvePoint

// SortByDetected orders the curve by ascending |detected|.
func (c Curve) SortByDetected() {
	sort.SliceStable(c, func(i, j int) bool { return c[i].Detected < c[j].Detected })
}

// SortByRecall orders the curve by ascending recall (PR-curve order).
func (c Curve) SortByRecall() {
	sort.SliceStable(c, func(i, j int) bool { return c[i].Recall < c[j].Recall })
}

// MaxF1 returns the best F1 on the curve, 0 for an empty curve.
func (c Curve) MaxF1() (best CurvePoint) {
	for _, p := range c {
		if p.F1 > best.F1 {
			best = p
		}
	}
	return best
}

// PrecisionAtRecall returns the highest precision among points whose recall
// is at least r, and false when no point qualifies.
func (c Curve) PrecisionAtRecall(r float64) (float64, bool) {
	best, found := 0.0, false
	for _, p := range c {
		if p.Recall >= r && p.Precision > best {
			best, found = p.Precision, true
		}
	}
	return best, found
}

// AUCPR returns the area under the precision-recall curve by trapezoidal
// integration after sorting by recall. Curves with fewer than two points
// have zero area.
func (c Curve) AUCPR() float64 {
	if len(c) < 2 {
		return 0
	}
	pts := append(Curve(nil), c...)
	pts.SortByRecall()
	area := 0.0
	for i := 1; i < len(pts); i++ {
		dr := pts[i].Recall - pts[i-1].Recall
		area += dr * (pts[i].Precision + pts[i-1].Precision) / 2
	}
	return area
}

// MaxDetectedGap returns the largest jump in |detected| between consecutive
// points of the curve (after sorting by detected count). This quantifies the
// paper's Figure 4 "polyline vs smooth curve" practicability argument: a
// detector with huge gaps cannot be tuned to a node budget.
func (c Curve) MaxDetectedGap() int {
	if len(c) < 2 {
		return 0
	}
	pts := append(Curve(nil), c...)
	pts.SortByDetected()
	gap := 0
	for i := 1; i < len(pts); i++ {
		if d := pts[i].Detected - pts[i-1].Detected; d > gap {
			gap = d
		}
	}
	return gap
}

// InterpolateAtDetected estimates a metric at a target detected count by
// linear interpolation between the two bracketing points; it returns false
// when the target is outside the curve's range. Used for fair EnsemFDet-vs-
// Fraudar comparisons "when they detect the equivalent fraud nodes" (§V-C1).
func (c Curve) InterpolateAtDetected(target int, metric func(Metrics) float64) (float64, bool) {
	if len(c) == 0 {
		return 0, false
	}
	pts := append(Curve(nil), c...)
	pts.SortByDetected()
	if target < pts[0].Detected || target > pts[len(pts)-1].Detected {
		return 0, false
	}
	for i := 1; i < len(pts); i++ {
		lo, hi := pts[i-1], pts[i]
		if target > hi.Detected {
			continue
		}
		if hi.Detected == lo.Detected {
			return metric(hi.Metrics), true
		}
		t := float64(target-lo.Detected) / float64(hi.Detected-lo.Detected)
		return metric(lo.Metrics) + t*(metric(hi.Metrics)-metric(lo.Metrics)), true
	}
	return metric(pts[len(pts)-1].Metrics), true
}

// F1Of and PrecisionOf and RecallOf are metric selectors for
// InterpolateAtDetected.
func F1Of(m Metrics) float64        { return m.F1 }
func PrecisionOf(m Metrics) float64 { return m.Precision }
func RecallOf(m Metrics) float64    { return m.Recall }

// ScoredCurve builds a curve from per-user anomaly scores by sweeping a
// descending score cutoff: point k detects the k highest-scoring users.
// cutoffs selects the detected-set sizes to report; if nil, a default sweep
// of 50 evenly spaced sizes is used. Ties are broken by user id for
// determinism.
func ScoredCurve(l *Labels, scores []float64, cutoffs []int) Curve {
	type su struct {
		id    uint32
		score float64
	}
	order := make([]su, 0, len(scores))
	for id, s := range scores {
		if !math.IsNaN(s) {
			order = append(order, su{uint32(id), s})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].score != order[j].score {
			return order[i].score > order[j].score
		}
		return order[i].id < order[j].id
	})
	if cutoffs == nil {
		n := len(order)
		for i := 1; i <= 50; i++ {
			cutoffs = append(cutoffs, n*i/50)
		}
	}
	var curve Curve
	detected := make([]uint32, 0, len(order))
	prev := 0
	for _, k := range cutoffs {
		if k > len(order) {
			k = len(order)
		}
		if k < prev {
			continue
		}
		for i := prev; i < k; i++ {
			detected = append(detected, order[i].id)
		}
		prev = k
		m := Evaluate(l, detected)
		curve = append(curve, CurvePoint{Param: float64(k), Metrics: m})
	}
	return curve
}
