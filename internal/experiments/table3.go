package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"ensemfdet/internal/core"
	"ensemfdet/internal/datagen"
	"ensemfdet/internal/fraudar"
)

// PaperParallelism is the worker count the paper's deployment assumes: with
// N=80 sampled graphs processed simultaneously ("we will apply FDET to all
// sampled graphs simultaneously with the multicore environment"), wall time
// is the serial sample work divided by N.
const PaperParallelism = 80

// Table3Row is one dataset's timing comparison.
type Table3Row struct {
	Dataset string
	Edges   int
	// Measured wall-clock on this machine.
	EnsemFDet time.Duration // S=0.1
	Fraudar   time.Duration // K blocks on the full graph
	SpeedupX  float64
	// SerialWork is the summed per-sample duration: what one core would
	// spend on the whole ensemble.
	SerialWork time.Duration
	// Projected wall time and speedup with the paper's one-core-per-sample
	// deployment.
	Projected         time.Duration
	ProjectedSpeedupX float64
	// The S=0.01 run backing the paper's "up to 100x faster" claim.
	EnsemFDet001        time.Duration
	Projected001        time.Duration
	Projected001Speedup float64
}

// Table3Result reproduces Table III: running time of ENSEMFDET vs FRAUDAR.
type Table3Result struct {
	N           int
	FraudarK    int
	Parallelism int
	Rows        []Table3Row
}

// RunTable3 times both heuristics on all three datasets. Wall-clock numbers
// are machine-specific; the claims under test are the ratios — paper: ≥10×
// at S=0.1 and up to 100× at S=0.01, *given one core per sample*. On hosts
// with few cores the measured ratio shrinks accordingly, so the projected
// columns normalize to the paper's deployment.
func RunTable3(env *Env) (*Table3Result, error) {
	res := &Table3Result{N: env.Scale.N, FraudarK: env.Scale.FraudarK}
	for _, id := range datagen.AllPresets() {
		ds, err := env.Dataset(id)
		if err != nil {
			return nil, err
		}
		cfg := env.EnsembleConfig()

		start := time.Now()
		out, err := core.Run(ds.Graph, cfg)
		if err != nil {
			return nil, err
		}
		ensemDur := time.Since(start)

		cfg001 := cfg
		cfg001.SampleRatio = 0.01
		start = time.Now()
		out001, err := core.Run(ds.Graph, cfg001)
		if err != nil {
			return nil, err
		}
		ensem001Dur := time.Since(start)

		start = time.Now()
		fraudar.Detect(ds.Graph, fraudar.Config{K: env.Scale.FraudarK})
		fraudarDur := time.Since(start)

		workers := env.Scale.N
		if workers > PaperParallelism {
			workers = PaperParallelism
		}
		projected := out.TotalWork() / time.Duration(workers)
		projected001 := out001.TotalWork() / time.Duration(workers)

		res.Rows = append(res.Rows, Table3Row{
			Dataset:             ds.Name,
			Edges:               ds.Graph.NumEdges(),
			EnsemFDet:           ensemDur,
			Fraudar:             fraudarDur,
			SpeedupX:            ratio(fraudarDur, ensemDur),
			SerialWork:          out.TotalWork(),
			Projected:           projected,
			ProjectedSpeedupX:   ratio(fraudarDur, projected),
			EnsemFDet001:        ensem001Dur,
			Projected001:        projected001,
			Projected001Speedup: ratio(fraudarDur, projected001),
		})
	}
	return res, nil
}

func ratio(num, den time.Duration) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Render implements the experiment report.
func (r *Table3Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "TABLE III — TIME CONSUMPTION: ENSEMFDET (S=0.1, N=%d) vs FRAUDAR (K=%d)\n", r.N, r.FraudarK)
	fmt.Fprintf(w, "(projected columns model the paper's one-core-per-sample deployment)\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tEdges\tFraudar\tEnsemFDet(wall)\tspeedup\tEnsemFDet(projected)\tspeedup\tS=0.01(projected)\tspeedup")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%.1fx\t%v\t%.1fx\t%v\t%.1fx\n",
			row.Dataset, row.Edges,
			row.Fraudar.Round(time.Millisecond),
			row.EnsemFDet.Round(time.Millisecond), row.SpeedupX,
			row.Projected.Round(time.Microsecond), row.ProjectedSpeedupX,
			row.Projected001.Round(time.Microsecond), row.Projected001Speedup)
	}
	return tw.Flush()
}
