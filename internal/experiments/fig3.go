package experiments

import (
	"fmt"
	"io"

	"ensemfdet/internal/core"
	"ensemfdet/internal/datagen"
	"ensemfdet/internal/eval"
	"ensemfdet/internal/fbox"
	"ensemfdet/internal/fraudar"
	"ensemfdet/internal/spoken"
	"ensemfdet/internal/textplot"
)

// MethodCurve names one detector's operating curve.
type MethodCurve struct {
	Method string
	Curve  eval.Curve
}

// Fig3Dataset is one subplot of Figure 3.
type Fig3Dataset struct {
	Dataset string
	Methods []MethodCurve
}

// Fig3Result reproduces Figure 3: precision-recall comparison of SPOKEN,
// FRAUDAR, FBOX and ENSEMFDET on the three datasets.
type Fig3Result struct {
	Datasets []Fig3Dataset
}

// RunFig3 evaluates all four methods on all three datasets.
func RunFig3(env *Env) (*Fig3Result, error) {
	res := &Fig3Result{}
	for _, id := range datagen.AllPresets() {
		ds, err := env.Dataset(id)
		if err != nil {
			return nil, err
		}
		sub := Fig3Dataset{Dataset: ds.Name}

		// ENSEMFDET: vote-threshold sweep.
		out, err := core.Run(ds.Graph, env.EnsembleConfig())
		if err != nil {
			return nil, err
		}
		sub.Methods = append(sub.Methods, MethodCurve{"EnsemFDet", VoteCurve(&out.Votes, ds.Labels)})

		// FRAUDAR: block-prefix points.
		fr := fraudar.Detect(ds.Graph, fraudar.Config{K: env.Scale.FraudarK})
		sub.Methods = append(sub.Methods, MethodCurve{"Fraudar", fr.Curve(ds.Labels)})

		// SPOKEN: eigenspoke score sweep.
		sp := spoken.Score(ds.Graph, spoken.Config{Components: env.Scale.SpectralRank, Seed: env.Scale.Seed})
		sub.Methods = append(sub.Methods, MethodCurve{"SPOKEN", eval.ScoredCurve(ds.Labels, sp.UserScores, scoredCutoffs(ds))})

		// FBOX: reconstruction-residual sweep.
		fb := fbox.Score(ds.Graph, fbox.Config{K: env.Scale.SpectralRank, Seed: env.Scale.Seed, MinDegree: 2})
		sub.Methods = append(sub.Methods, MethodCurve{"FBox", eval.ScoredCurve(ds.Labels, fb.UserScores, scoredCutoffs(ds))})

		res.Datasets = append(res.Datasets, sub)
	}
	return res, nil
}

// scoredCutoffs sweeps detection budgets up to ~4x the blacklist size, the
// operating region the paper plots.
func scoredCutoffs(ds *datagen.Dataset) []int {
	maxDet := 4 * ds.Labels.NumFraud
	if maxDet > ds.Graph.NumUsers() {
		maxDet = ds.Graph.NumUsers()
	}
	var cutoffs []int
	for i := 1; i <= 40; i++ {
		cutoffs = append(cutoffs, maxDet*i/40)
	}
	return cutoffs
}

// Render implements the experiment report.
func (r *Fig3Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "FIGURE 3 — PERFORMANCE COMPARISON OF DIFFERENT METHODS (PR curves)")
	for _, sub := range r.Datasets {
		p := textplot.New(sub.Dataset, "recall", "precision")
		for _, mc := range sub.Methods {
			var xs, ys []float64
			pts := append(eval.Curve(nil), mc.Curve...)
			pts.SortByRecall()
			for _, pt := range pts {
				xs = append(xs, pt.Recall)
				ys = append(ys, pt.Precision)
			}
			p.Add(textplot.Series{Name: mc.Method, Marker: rune(mc.Method[0]), X: xs, Y: ys})
		}
		if _, err := io.WriteString(w, p.Render()); err != nil {
			return err
		}
		for _, mc := range sub.Methods {
			best := mc.Curve.MaxF1()
			fmt.Fprintf(w, "  %-10s AUC-PR=%.4f bestF1=%.4f (P=%.3f R=%.3f at |det|=%d)\n",
				mc.Method, mc.Curve.AUCPR(), best.F1, best.Precision, best.Recall, best.Detected)
		}
	}
	return nil
}
