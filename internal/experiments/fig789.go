package experiments

import (
	"fmt"
	"io"

	"ensemfdet/internal/core"
	"ensemfdet/internal/datagen"
	"ensemfdet/internal/eval"
	"ensemfdet/internal/textplot"
)

// ParamCurve is one setting of a swept parameter with its operating curve.
type ParamCurve struct {
	Label string
	Curve eval.Curve
}

// Fig7Result reproduces Figure 7: impact of the ensemble size N at fixed
// S = 0.1 on Dataset #3.
type Fig7Result struct {
	Dataset string
	Sweeps  []ParamCurve
}

// RunFig7 sweeps N ∈ {10, 20, 40, 80} scaled by Scale.N/80 (at full scale
// the paper's literal values).
func RunFig7(env *Env) (*Fig7Result, error) {
	ds, err := env.Dataset(datagen.Dataset3)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Dataset: ds.Name}
	for _, frac := range []int{8, 4, 2, 1} { // N/8, N/4, N/2, N ⇒ 10,20,40,80 at N=80
		n := env.Scale.N / frac
		if n < 2 {
			n = 2
		}
		cfg := env.EnsembleConfig()
		cfg.NumSamples = n
		out, err := core.Run(ds.Graph, cfg)
		if err != nil {
			return nil, err
		}
		res.Sweeps = append(res.Sweeps, ParamCurve{
			Label: fmt.Sprintf("N=%d", n),
			Curve: VoteCurve(&out.Votes, ds.Labels),
		})
	}
	return res, nil
}

// Render implements the experiment report.
func (r *Fig7Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "FIGURE 7 — IMPACT OF N AT S=0.1 (%s)\n", r.Dataset)
	return renderParamSweep(w, r.Sweeps)
}

// Fig8Result reproduces Figure 8: impact of the sample ratio S with the
// repetition rate fixed at S·N = 1 on Dataset #3.
type Fig8Result struct {
	Dataset string
	Sweeps  []ParamCurve
}

// RunFig8 sweeps S ∈ {0.01, 0.05, 0.1} with N = R/S at R = 1.
func RunFig8(env *Env) (*Fig8Result, error) {
	ds, err := env.Dataset(datagen.Dataset3)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{Dataset: ds.Name}
	for _, s := range []float64{0.1, 0.05, 0.01} {
		cfg := env.EnsembleConfig()
		cfg.SampleRatio = s
		cfg.NumSamples = int(1.0 / s) // R = S × N = 1
		out, err := core.Run(ds.Graph, cfg)
		if err != nil {
			return nil, err
		}
		res.Sweeps = append(res.Sweeps, ParamCurve{
			Label: fmt.Sprintf("S=%g", s),
			Curve: VoteCurve(&out.Votes, ds.Labels),
		})
	}
	return res, nil
}

// Render implements the experiment report.
func (r *Fig8Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "FIGURE 8 — IMPACT OF S AT S×N=1 (%s)\n", r.Dataset)
	return renderParamSweep(w, r.Sweeps)
}

// Fig9Point is one vote threshold's measurement on one dataset.
type Fig9Point struct {
	T int
	eval.Metrics
}

// Fig9Dataset is one dataset's T sweep.
type Fig9Dataset struct {
	Dataset string
	Points  []Fig9Point
}

// Fig9Result reproduces Figure 9: impact of the voting threshold T at
// S = 0.1, N as scaled, on all three datasets.
type Fig9Result struct {
	Datasets []Fig9Dataset
}

// RunFig9 sweeps T ∈ {1..TMax}.
func RunFig9(env *Env) (*Fig9Result, error) {
	res := &Fig9Result{}
	for _, id := range datagen.AllPresets() {
		ds, err := env.Dataset(id)
		if err != nil {
			return nil, err
		}
		out, err := core.Run(ds.Graph, env.EnsembleConfig())
		if err != nil {
			return nil, err
		}
		sub := Fig9Dataset{Dataset: ds.Name}
		tMax := env.Scale.TMax
		if tMax > out.Votes.NumSamples {
			tMax = out.Votes.NumSamples
		}
		for t := 1; t <= tMax; t++ {
			m := eval.Evaluate(ds.Labels, out.Votes.AcceptUsers(t))
			sub.Points = append(sub.Points, Fig9Point{T: t, Metrics: m})
		}
		res.Datasets = append(res.Datasets, sub)
	}
	return res, nil
}

// Render implements the experiment report.
func (r *Fig9Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "FIGURE 9 — IMPACT OF VOTING THRESHOLD T (S=0.1)")
	for _, panel := range []struct {
		name   string
		metric func(eval.Metrics) float64
	}{{"F1", eval.F1Of}, {"Recall", eval.RecallOf}, {"Precision", eval.PrecisionOf}} {
		p := textplot.New(panel.name+" vs T", "T", panel.name)
		for i, sub := range r.Datasets {
			var xs, ys []float64
			for _, pt := range sub.Points {
				xs = append(xs, float64(pt.T))
				ys = append(ys, panel.metric(pt.Metrics))
			}
			p.Add(textplot.Series{Name: sub.Dataset, Marker: rune('1' + i), X: xs, Y: ys})
		}
		if _, err := io.WriteString(w, p.Render()); err != nil {
			return err
		}
	}
	for _, sub := range r.Datasets {
		fmt.Fprintf(w, "  %s: ", sub.Dataset)
		for _, pt := range sub.Points {
			fmt.Fprintf(w, "T=%d(P=%.2f,R=%.2f) ", pt.T, pt.Precision, pt.Recall)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// renderParamSweep prints the PR plot plus F1/Recall/Precision-vs-detected
// plots shared by Figures 7 and 8.
func renderParamSweep(w io.Writer, sweeps []ParamCurve) error {
	pr := textplot.New("PR curve", "recall", "precision")
	for i, sw := range sweeps {
		pts := append(eval.Curve(nil), sw.Curve...)
		pts.SortByRecall()
		var xs, ys []float64
		for _, pt := range pts {
			xs = append(xs, pt.Recall)
			ys = append(ys, pt.Precision)
		}
		pr.Add(textplot.Series{Name: sw.Label, Marker: rune('1' + i), X: xs, Y: ys})
	}
	if _, err := io.WriteString(w, pr.Render()); err != nil {
		return err
	}
	for _, panel := range []struct {
		name   string
		metric func(eval.Metrics) float64
	}{{"F1", eval.F1Of}, {"Recall", eval.RecallOf}, {"Precision", eval.PrecisionOf}} {
		p := textplot.New(panel.name+" vs # detected PIN", "# detected PIN", panel.name)
		for i, sw := range sweeps {
			pts := append(eval.Curve(nil), sw.Curve...)
			pts.SortByDetected()
			var xs, ys []float64
			for _, pt := range pts {
				xs = append(xs, float64(pt.Detected))
				ys = append(ys, panel.metric(pt.Metrics))
			}
			p.Add(textplot.Series{Name: sw.Label, Marker: rune('1' + i), X: xs, Y: ys})
		}
		if _, err := io.WriteString(w, p.Render()); err != nil {
			return err
		}
	}
	for _, sw := range sweeps {
		fmt.Fprintf(w, "  %-8s AUC-PR=%.4f bestF1=%.4f\n", sw.Label, sw.Curve.AUCPR(), sw.Curve.MaxF1().F1)
	}
	return nil
}
