package experiments

import (
	"fmt"
	"io"

	"ensemfdet/internal/core"
	"ensemfdet/internal/datagen"
	"ensemfdet/internal/eval"
	"ensemfdet/internal/fraudar"
	"ensemfdet/internal/textplot"
)

// Fig4Dataset is one column of Figure 4: F1 and Precision as functions of
// the number of detected PINs, for EnsemFDet (vote sweep, near-continuous)
// and Fraudar (block prefixes, discrete polyline).
type Fig4Dataset struct {
	Dataset   string
	EnsemFDet eval.Curve
	Fraudar   eval.Curve
	// Practicability measurements backing the paper's §V-C1 argument.
	EnsemMaxGap   int // largest |detected| jump between EnsemFDet points
	FraudarMaxGap int // largest |detected| jump between Fraudar points
}

// Fig4Result reproduces Figure 4(a)-(f).
type Fig4Result struct {
	Datasets []Fig4Dataset
}

// RunFig4 compares the two heuristics' operating-curve granularity on all
// three datasets (S=0.1, N as scaled — the paper's §V-C1 setting).
func RunFig4(env *Env) (*Fig4Result, error) {
	res := &Fig4Result{}
	for _, id := range datagen.AllPresets() {
		ds, err := env.Dataset(id)
		if err != nil {
			return nil, err
		}
		out, err := core.Run(ds.Graph, env.EnsembleConfig())
		if err != nil {
			return nil, err
		}
		ens := VoteCurve(&out.Votes, ds.Labels)
		fr := fraudar.Detect(ds.Graph, fraudar.Config{K: env.Scale.FraudarK}).Curve(ds.Labels)
		res.Datasets = append(res.Datasets, Fig4Dataset{
			Dataset:       ds.Name,
			EnsemFDet:     ens,
			Fraudar:       fr,
			EnsemMaxGap:   ens.MaxDetectedGap(),
			FraudarMaxGap: fr.MaxDetectedGap(),
		})
	}
	return res, nil
}

// Render implements the experiment report.
func (r *Fig4Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "FIGURE 4 — ENSEMFDET vs FRAUDAR: metric vs # of detected PINs")
	for _, sub := range r.Datasets {
		for _, panel := range []struct {
			name   string
			metric func(eval.Metrics) float64
		}{{"F1", eval.F1Of}, {"Precision", eval.PrecisionOf}} {
			p := textplot.New(fmt.Sprintf("%s — %s", sub.Dataset, panel.name), "# detected PIN", panel.name)
			for _, mc := range []MethodCurve{{"EnsemFDet", sub.EnsemFDet}, {"Fraudar", sub.Fraudar}} {
				pts := append(eval.Curve(nil), mc.Curve...)
				pts.SortByDetected()
				var xs, ys []float64
				for _, pt := range pts {
					xs = append(xs, float64(pt.Detected))
					ys = append(ys, panel.metric(pt.Metrics))
				}
				p.Add(textplot.Series{Name: mc.Method, Marker: rune(mc.Method[0]), X: xs, Y: ys})
			}
			if _, err := io.WriteString(w, p.Render()); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "  practicability: EnsemFDet max |detected| gap = %d points=%d; Fraudar max gap = %d points=%d\n",
			sub.EnsemMaxGap, len(sub.EnsemFDet), sub.FraudarMaxGap, len(sub.Fraudar))
	}
	return nil
}
