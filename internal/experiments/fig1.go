package experiments

import (
	"fmt"
	"io"

	"ensemfdet/internal/core"
	"ensemfdet/internal/datagen"
	"ensemfdet/internal/fdet"
	"ensemfdet/internal/textplot"
)

// Fig1Result reproduces Figure 1: the density score φ of each detected block
// for several sampled graphs, demonstrating that the curves decrease
// monotonically toward a common plateau and that the truncating point kˆ is
// well defined.
type Fig1Result struct {
	Dataset string
	// Curves[i] is the per-block score sequence of sample i.
	Curves [][]float64
	// KHats[i] is the truncation point chosen for sample i.
	KHats []int
}

// RunFig1 collects block-score curves from several RES samples of
// Dataset #1.
func RunFig1(env *Env) (*Fig1Result, error) {
	ds, err := env.Dataset(datagen.Dataset1)
	if err != nil {
		return nil, err
	}
	cfg := env.EnsembleConfig()
	cfg.NumSamples = 6 // a handful of lines, as in the paper's plot
	cfg.CollectScores = true
	// Run past the elbow so the plateau is visible, as in the figure.
	cfg.FDet = fdet.Options{DisableEarlyStop: true, MaxBlocks: 16}
	out, err := core.Run(ds.Graph, cfg)
	if err != nil {
		return nil, err
	}
	return &Fig1Result{Dataset: ds.Name, Curves: out.BlockScores, KHats: out.KHats}, nil
}

// Render implements the experiment report.
func (r *Fig1Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "FIGURE 1 — SCORES OF DETECTED BLOCKS (%s, %d sampled graphs)\n", r.Dataset, len(r.Curves))
	p := textplot.New("density score φ per detected block", "detected block index", "φ")
	for i, scores := range r.Curves {
		xs := make([]float64, len(scores))
		for j := range scores {
			xs[j] = float64(j + 1)
		}
		p.Add(textplot.Series{Name: fmt.Sprintf("sample %d (kˆ=%d)", i+1, r.KHats[i]), X: xs, Y: scores})
	}
	if _, err := io.WriteString(w, p.Render()); err != nil {
		return err
	}
	for i, scores := range r.Curves {
		fmt.Fprintf(w, "sample %d: kˆ=%d scores=", i+1, r.KHats[i])
		for _, s := range scores {
			fmt.Fprintf(w, " %.3f", s)
		}
		fmt.Fprintln(w)
	}
	return nil
}
