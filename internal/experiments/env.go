// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V) on the synthetic JD.com workload. Each experiment
// is a named runner producing a structured result that renders to text
// (tables plus ASCII figures); cmd/repro drives them and bench_test.go wraps
// each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"sync"

	"ensemfdet/internal/core"
	"ensemfdet/internal/datagen"
	"ensemfdet/internal/eval"
	"ensemfdet/internal/fdet"
)

// Scale shrinks the paper's experimental setup to the host machine. The
// paper's own values are Graph=1.0 (Table I sizes), N=80, TMax=40,
// FraudarK=30.
type Scale struct {
	// Graph is the fraction of Table I node/edge counts to synthesize.
	Graph float64
	// N is the ensemble size (paper: 80).
	N int
	// TMax bounds the vote-threshold sweep of Figure 9 (paper: 40).
	TMax int
	// FraudarK is the baseline's block count (paper: 30).
	FraudarK int
	// SpectralRank is the component count for SPOKEN/FBOX (paper: 25).
	SpectralRank int
	// Seed drives dataset generation and all samplers.
	Seed int64
	// Parallelism caps ensemble workers; 0 = GOMAXPROCS.
	Parallelism int
}

// Quick returns the unit-test scale: seconds, not minutes. SpectralRank
// stays at the paper's 25: fewer components would under-dilute the spectral
// baselines (SPOKEN flags whichever structures the leading components
// describe; the paper's setting mixes communities in).
func Quick() Scale {
	return Scale{Graph: 0.006, N: 32, TMax: 16, FraudarK: 10, SpectralRank: 25, Seed: 7}
}

// Default returns the cmd/repro scale: a faithful miniature of the paper's
// setup (all parameter values literal, graphs at 2% of Table I).
func Default() Scale {
	return Scale{Graph: 0.02, N: 80, TMax: 40, FraudarK: 30, SpectralRank: 25, Seed: 7}
}

// Env caches generated datasets so a sequence of experiments reuses them,
// exactly as the paper evaluates every method on the same three datasets.
type Env struct {
	Scale Scale

	mu       sync.Mutex
	datasets map[datagen.PresetID]*datagen.Dataset
}

// NewEnv returns an Env for the given scale.
func NewEnv(s Scale) *Env {
	return &Env{Scale: s, datasets: make(map[datagen.PresetID]*datagen.Dataset)}
}

// Dataset returns the cached synthetic analogue of the given Table I
// dataset, generating it on first use.
func (e *Env) Dataset(id datagen.PresetID) (*datagen.Dataset, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ds, ok := e.datasets[id]; ok {
		return ds, nil
	}
	ds, err := datagen.GeneratePreset(id, e.Scale.Graph, e.Scale.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating %v: %w", id, err)
	}
	e.datasets[id] = ds
	return ds, nil
}

// EnsembleConfig returns the paper's main operating configuration (§V-C1:
// S=0.1, N=80, RES) adjusted to the scale.
func (e *Env) EnsembleConfig() core.Config {
	return core.Config{
		NumSamples:  e.Scale.N,
		SampleRatio: 0.1,
		Seed:        e.Scale.Seed,
		Parallelism: e.Scale.Parallelism,
	}
}

// VoteCurve sweeps the MVA threshold T over 1..NumSamples and evaluates each
// detection set — the operating curve EnsemFDet contributes to every figure.
// Points that detect nothing are dropped.
func VoteCurve(votes *core.Votes, labels *eval.Labels) eval.Curve {
	var curve eval.Curve
	for t := 1; t <= votes.NumSamples; t++ {
		det := votes.AcceptUsers(t)
		if len(det) == 0 {
			continue
		}
		m := eval.Evaluate(labels, det)
		curve = append(curve, eval.CurvePoint{Param: float64(t), Metrics: m})
	}
	return curve
}

// fixKOptions returns FDET options for the ENSEMFDET-FIX-K ablation.
func (e *Env) fixKOptions() fdet.Options {
	return fdet.Options{FixedK: e.Scale.FraudarK}
}
