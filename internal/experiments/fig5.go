package experiments

import (
	"fmt"
	"io"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/core"
	"ensemfdet/internal/datagen"
	"ensemfdet/internal/eval"
	"ensemfdet/internal/sampling"
	"ensemfdet/internal/textplot"
)

// Fig5Result reproduces Figure 5: PR comparison of the four sampling methods
// inside ENSEMFDET on Dataset #3 (S=0.1, R=8). Paper naming: TNS =
// "Two_sides_Bagging", ONS-merchant = "Node_Merchant_Bagging", ONS-user =
// "Node_PIN_Bagging", RES = "Random_Edge_Bagging".
type Fig5Result struct {
	Dataset string
	Methods []MethodCurve
	// DavgPIN and DavgMerchant document the §IV-A3 side-selection argument:
	// with Davg(merchant) ≫ Davg(PIN), merchant-side ONS retains topology
	// and PIN-side ONS destroys it.
	DavgPIN      float64
	DavgMerchant float64
}

var fig5Names = map[string]string{
	"TNS":          "Two_sides_Bagging",
	"ONS-merchant": "Node_Merchant_Bagging",
	"ONS-user":     "Node_PIN_Bagging",
	"RES":          "Random_Edge_Bagging",
}

// RunFig5 runs the ensemble once per sampling method.
func RunFig5(env *Env) (*Fig5Result, error) {
	ds, err := env.Dataset(datagen.Dataset3)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{
		Dataset:      ds.Name,
		DavgPIN:      ds.Graph.AvgDegree(bipartite.UserSide),
		DavgMerchant: ds.Graph.AvgDegree(bipartite.MerchantSide),
	}
	for _, m := range sampling.All() {
		cfg := env.EnsembleConfig()
		cfg.Method = m
		out, err := core.Run(ds.Graph, cfg)
		if err != nil {
			return nil, err
		}
		res.Methods = append(res.Methods, MethodCurve{
			Method: fig5Names[m.Name()],
			Curve:  VoteCurve(&out.Votes, ds.Labels),
		})
	}
	return res, nil
}

// Render implements the experiment report.
func (r *Fig5Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "FIGURE 5 — SAMPLING METHODS IN ENSEMFDET (%s, Davg(PIN)=%.2f, Davg(Merchant)=%.2f)\n",
		r.Dataset, r.DavgPIN, r.DavgMerchant)
	p := textplot.New("PR by sampling method", "recall", "precision")
	for i, mc := range r.Methods {
		pts := append(eval.Curve(nil), mc.Curve...)
		pts.SortByRecall()
		var xs, ys []float64
		for _, pt := range pts {
			xs = append(xs, pt.Recall)
			ys = append(ys, pt.Precision)
		}
		p.Add(textplot.Series{Name: mc.Method, Marker: rune('1' + i), X: xs, Y: ys})
	}
	if _, err := io.WriteString(w, p.Render()); err != nil {
		return err
	}
	for _, mc := range r.Methods {
		best := mc.Curve.MaxF1()
		fmt.Fprintf(w, "  %-24s AUC-PR=%.4f bestF1=%.4f\n", mc.Method, mc.Curve.AUCPR(), best.F1)
	}
	return nil
}
