package experiments

import (
	"bytes"
	"strings"
	"testing"

	"ensemfdet/internal/datagen"
)

func quickEnv(t *testing.T) *Env {
	t.Helper()
	return NewEnv(Quick())
}

func TestTable1MatchesTargets(t *testing.T) {
	env := quickEnv(t)
	res, err := RunTable1(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		g, target := row.Generated, row.Target
		if g.Users < target.Users*8/10 || g.Users > target.Users*12/10 {
			t.Errorf("%s users %d vs target %d", g.Name, g.Users, target.Users)
		}
		if g.Edges < target.Edges*7/10 || g.Edges > target.Edges*13/10 {
			t.Errorf("%s edges %d vs target %d", g.Name, g.Edges, target.Edges)
		}
		// §V-C2 premise: Davg(merchant) ≫ Davg(PIN).
		if row.AvgDegMer <= row.AvgDegPIN {
			t.Errorf("%s: Davg(merchant)=%.2f not above Davg(PIN)=%.2f", g.Name, row.AvgDegMer, row.AvgDegPIN)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TABLE I") {
		t.Error("render missing header")
	}
}

func TestTable3EnsemFDetFaster(t *testing.T) {
	env := quickEnv(t)
	res, err := RunTable3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Shape claims, normalized to the paper's one-core-per-sample
		// deployment (this host has too few cores for the measured wall
		// ratio to be meaningful): the projected ensemble beats full-graph
		// Fraudar, and the S=0.01 ensemble beats it by much more.
		if row.ProjectedSpeedupX < 1 {
			t.Errorf("%s: projected EnsemFDet slower than Fraudar (%.2fx)", row.Dataset, row.ProjectedSpeedupX)
		}
		// At quick scale, S=0.01 samples are so small that fixed per-sample
		// overhead dominates, so only require it not to regress badly; the
		// paper's 100x separation needs full-size graphs (see
		// EXPERIMENTS.md for default-scale measurements).
		if row.Projected001Speedup < 0.5*row.ProjectedSpeedupX {
			t.Errorf("%s: S=0.01 projected speedup %.1fx far below S=0.1's %.1fx",
				row.Dataset, row.Projected001Speedup, row.ProjectedSpeedupX)
		}
		if row.SerialWork <= 0 || row.EnsemFDet <= 0 || row.Fraudar <= 0 {
			t.Errorf("%s: non-positive timing: %+v", row.Dataset, row)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TABLE III") {
		t.Error("render missing header")
	}
}

func TestFig1CurvesDecreaseToPlateau(t *testing.T) {
	env := quickEnv(t)
	res, err := RunFig1(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) == 0 {
		t.Fatal("no curves")
	}
	for i, scores := range res.Curves {
		if len(scores) < 3 {
			continue
		}
		// Figure 1 shape: monotonically decreasing per-block scores.
		for j := 1; j < len(scores); j++ {
			if scores[j] > scores[j-1]+1e-9 {
				t.Errorf("sample %d: scores increase at block %d: %v", i, j, scores)
				break
			}
		}
		if res.KHats[i] < 1 || res.KHats[i] > len(scores) {
			t.Errorf("sample %d: kˆ=%d out of range", i, res.KHats[i])
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FIGURE 1") {
		t.Error("render missing header")
	}
}

func TestFig3MethodOrdering(t *testing.T) {
	env := quickEnv(t)
	res, err := RunFig3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 3 {
		t.Fatalf("datasets = %d", len(res.Datasets))
	}
	// Shape claims per dataset (Fig. 3's visual): the heuristics beat the
	// spectral methods — on best-F1 (best operating point of either
	// heuristic vs either spectral method) and on curve dominance
	// (EnsemFDet's AUC-PR vs the spectral sweeps'; Fraudar's AUC is not
	// comparable because its K prefix points span a narrow recall range).
	// EnsemFDet also stays within a factor of Fraudar, the paper's "close
	// performance" claim.
	// Our synthetic substitute lacks production noise, which makes the
	// spectral baselines slightly more competitive than the paper reports;
	// at quick scale a spectral method may tie a heuristic within a few
	// percent on one dataset. Require strict heuristic wins on at least two
	// datasets and never more than 10% spectral advantage anywhere.
	strictWins := 0
	for _, sub := range res.Datasets {
		f1 := map[string]float64{}
		auc := map[string]float64{}
		for _, mc := range sub.Methods {
			f1[mc.Method] = mc.Curve.MaxF1().F1
			auc[mc.Method] = mc.Curve.AUCPR()
		}
		heuristic := f1["EnsemFDet"]
		if f1["Fraudar"] > heuristic {
			heuristic = f1["Fraudar"]
		}
		strict := true
		for _, spectral := range []string{"SPOKEN", "FBox"} {
			if f1[spectral] > heuristic {
				strict = false
			}
			if f1[spectral] > 1.1*heuristic {
				t.Errorf("%s: %s F1 %.3f far above heuristics %.3f (paper shape violated)",
					sub.Dataset, spectral, f1[spectral], heuristic)
			}
			if auc[spectral] > auc["EnsemFDet"] {
				strict = false
			}
			if auc[spectral] > 1.1*auc["EnsemFDet"] {
				t.Errorf("%s: %s AUC %.4f far above EnsemFDet AUC %.4f (paper shape violated)",
					sub.Dataset, spectral, auc[spectral], auc["EnsemFDet"])
			}
		}
		if strict {
			strictWins++
		}
		if f1["EnsemFDet"] < 0.5*f1["Fraudar"] {
			t.Errorf("%s: EnsemFDet F1 %.3f far below Fraudar %.3f", sub.Dataset, f1["EnsemFDet"], f1["Fraudar"])
		}
	}
	if strictWins < 2 {
		t.Errorf("heuristics strictly dominate spectral methods on only %d/3 datasets", strictWins)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FIGURE 3", "EnsemFDet", "Fraudar", "SPOKEN", "FBox"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig4SmoothVsPolyline(t *testing.T) {
	env := quickEnv(t)
	res, err := RunFig4(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range res.Datasets {
		// Practicability shape: EnsemFDet offers at least as many operating
		// points as Fraudar on every dataset, and a strictly finer curve
		// (more points) on at least one — at quick scale the vote sweep can
		// saturate, so the per-dataset assertion stays conservative.
		if len(sub.EnsemFDet) < len(sub.Fraudar) {
			t.Errorf("%s: EnsemFDet has fewer operating points (%d) than Fraudar (%d)",
				sub.Dataset, len(sub.EnsemFDet), len(sub.Fraudar))
		}
		if len(sub.EnsemFDet) == 0 || len(sub.Fraudar) == 0 {
			t.Errorf("%s: empty curve", sub.Dataset)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FIGURE 4") {
		t.Error("render missing header")
	}
}

func TestFig5PINBaggingWorst(t *testing.T) {
	env := quickEnv(t)
	res, err := RunFig5(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) != 4 {
		t.Fatalf("methods = %d", len(res.Methods))
	}
	auc := map[string]float64{}
	for _, mc := range res.Methods {
		auc[mc.Method] = mc.Curve.AUCPR()
	}
	// §IV-A3 / Figure 5 shape: PIN-side bagging fails to retain dense
	// topology when Davg(merchant) ≫ Davg(PIN), so it must lose to both
	// merchant-side bagging and RES. (TNS is excluded from the quick-scale
	// assertion: at S=0.1 it keeps only S² ≈ 1% of edges and the paper
	// itself notes it needs an enlarged S or N to be comparable.)
	if res.DavgMerchant <= res.DavgPIN {
		t.Fatalf("dataset premise broken: Davg(merchant)=%.2f ≤ Davg(PIN)=%.2f", res.DavgMerchant, res.DavgPIN)
	}
	pin := auc["Node_PIN_Bagging"]
	if pin > auc["Random_Edge_Bagging"] {
		t.Errorf("PIN bagging (%.4f) beats RES (%.4f); paper shape violated", pin, auc["Random_Edge_Bagging"])
	}
	// Merchant-side bagging's full advantage needs the paper's R=8
	// repetition rate; at quick scale (R≈3) PIN may close part of the gap,
	// so only a bounded violation is tolerated (see EXPERIMENTS.md).
	if pin > 1.5*auc["Node_Merchant_Bagging"] {
		t.Errorf("PIN bagging (%.4f) far above merchant bagging (%.4f); paper shape violated",
			pin, auc["Node_Merchant_Bagging"])
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FIGURE 5") {
		t.Error("render missing header")
	}
}

func TestFig6TruncationHelps(t *testing.T) {
	env := quickEnv(t)
	res, err := RunFig6(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxKHat >= 15 {
		t.Errorf("max kˆ = %d, paper records < 15", res.MaxKHat)
	}
	// Auto-truncation must not lose AUC versus FIX-K (the paper finds it
	// *gains* precision; equality is the conservative bound).
	if res.Auto.AUCPR() < 0.8*res.FixK.AUCPR() {
		t.Errorf("auto AUC %.4f far below fix-k AUC %.4f", res.Auto.AUCPR(), res.FixK.AUCPR())
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FIGURE 6") {
		t.Error("render missing header")
	}
}

func TestFig7MoreSamplesNoWorse(t *testing.T) {
	env := quickEnv(t)
	res, err := RunFig7(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweeps) != 4 {
		t.Fatalf("sweeps = %d", len(res.Sweeps))
	}
	// Figure 7 shape: performance improves (weakly) with N; assert the
	// largest N is not beaten badly by the smallest.
	small := res.Sweeps[0].Curve.AUCPR()
	large := res.Sweeps[len(res.Sweeps)-1].Curve.AUCPR()
	if large < 0.8*small {
		t.Errorf("AUC at largest N (%.4f) below AUC at smallest N (%.4f)", large, small)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FIGURE 7") {
		t.Error("render missing header")
	}
}

func TestFig8StabilityAcrossS(t *testing.T) {
	env := quickEnv(t)
	res, err := RunFig8(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweeps) != 3 {
		t.Fatalf("sweeps = %d", len(res.Sweeps))
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FIGURE 8") {
		t.Error("render missing header")
	}
}

func TestFig9Monotonicity(t *testing.T) {
	env := quickEnv(t)
	res, err := RunFig9(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 3 {
		t.Fatalf("datasets = %d", len(res.Datasets))
	}
	for _, sub := range res.Datasets {
		for i := 1; i < len(sub.Points); i++ {
			// Figure 9(c): recall decreases monotonically with T. (Precision
			// trends up but is not strictly monotone at small scale.)
			if sub.Points[i].Recall > sub.Points[i-1].Recall+1e-9 {
				t.Errorf("%s: recall increases at T=%d", sub.Dataset, sub.Points[i].T)
			}
			if sub.Points[i].Detected > sub.Points[i-1].Detected {
				t.Errorf("%s: detected count increases at T=%d", sub.Dataset, sub.Points[i].T)
			}
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FIGURE 9") {
		t.Error("render missing header")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table1", "table3"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Error("Lookup accepted bogus name")
	}
	for _, name := range got {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
}

func TestEnvDatasetCaching(t *testing.T) {
	env := quickEnv(t)
	a, err := env.Dataset(datagen.Dataset1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Dataset(datagen.Dataset1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("dataset not cached")
	}
}
