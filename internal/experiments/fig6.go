package experiments

import (
	"fmt"
	"io"

	"ensemfdet/internal/core"
	"ensemfdet/internal/datagen"
	"ensemfdet/internal/eval"
	"ensemfdet/internal/textplot"
)

// Fig6Result reproduces Figure 6: automatic truncation (Definition 3) versus
// ENSEMFDET-FIX-K with k fixed at the FRAUDAR setting.
type Fig6Result struct {
	Dataset string
	Auto    eval.Curve
	FixK    eval.Curve
	FixedK  int
	// MaxKHat is the largest truncation point any sample chose; the paper
	// records "all of the records are smaller than 15".
	MaxKHat int
	// MeanKHat is the average truncation point across samples.
	MeanKHat float64
}

// RunFig6 compares the two truncation regimes on Dataset #1.
func RunFig6(env *Env) (*Fig6Result, error) {
	ds, err := env.Dataset(datagen.Dataset1)
	if err != nil {
		return nil, err
	}

	autoCfg := env.EnsembleConfig()
	autoOut, err := core.Run(ds.Graph, autoCfg)
	if err != nil {
		return nil, err
	}

	fixCfg := env.EnsembleConfig()
	fixCfg.FDet = env.fixKOptions()
	fixOut, err := core.Run(ds.Graph, fixCfg)
	if err != nil {
		return nil, err
	}

	res := &Fig6Result{
		Dataset: ds.Name,
		Auto:    VoteCurve(&autoOut.Votes, ds.Labels),
		FixK:    VoteCurve(&fixOut.Votes, ds.Labels),
		FixedK:  env.Scale.FraudarK,
	}
	total := 0
	for _, k := range autoOut.KHats {
		total += k
		if k > res.MaxKHat {
			res.MaxKHat = k
		}
	}
	if len(autoOut.KHats) > 0 {
		res.MeanKHat = float64(total) / float64(len(autoOut.KHats))
	}
	return res, nil
}

// Render implements the experiment report.
func (r *Fig6Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "FIGURE 6 — AUTO-TRUNCATION vs FIX-K (%s, fixed k=%d)\n", r.Dataset, r.FixedK)
	fmt.Fprintf(w, "  per-sample kˆ: mean=%.1f max=%d (paper: all < 15)\n", r.MeanKHat, r.MaxKHat)
	p := textplot.New("PR: auto truncating vs fixed k", "recall", "precision")
	for _, mc := range []MethodCurve{{"Auto_truncating_K", r.Auto}, {fmt.Sprintf("K=%d", r.FixedK), r.FixK}} {
		pts := append(eval.Curve(nil), mc.Curve...)
		pts.SortByRecall()
		var xs, ys []float64
		for _, pt := range pts {
			xs = append(xs, pt.Recall)
			ys = append(ys, pt.Precision)
		}
		p.Add(textplot.Series{Name: mc.Method, X: xs, Y: ys})
	}
	if _, err := io.WriteString(w, p.Render()); err != nil {
		return err
	}
	fmt.Fprintf(w, "  auto:  AUC-PR=%.4f bestF1=%.4f\n", r.Auto.AUCPR(), r.Auto.MaxF1().F1)
	fmt.Fprintf(w, "  fix-k: AUC-PR=%.4f bestF1=%.4f\n", r.FixK.AUCPR(), r.FixK.MaxF1().F1)
	return nil
}
