package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Report is a renderable experiment result.
type Report interface {
	Render(w io.Writer) error
}

// Runner executes one experiment against an environment.
type Runner func(*Env) (Report, error)

// registry maps experiment ids (the paper's table/figure names) to runners.
var registry = map[string]Runner{
	"table1": func(e *Env) (Report, error) { return RunTable1(e) },
	"table3": func(e *Env) (Report, error) { return RunTable3(e) },
	"fig1":   func(e *Env) (Report, error) { return RunFig1(e) },
	"fig3":   func(e *Env) (Report, error) { return RunFig3(e) },
	"fig4":   func(e *Env) (Report, error) { return RunFig4(e) },
	"fig5":   func(e *Env) (Report, error) { return RunFig5(e) },
	"fig6":   func(e *Env) (Report, error) { return RunFig6(e) },
	"fig7":   func(e *Env) (Report, error) { return RunFig7(e) },
	"fig8":   func(e *Env) (Report, error) { return RunFig8(e) },
	"fig9":   func(e *Env) (Report, error) { return RunFig9(e) },
}

// Names returns the experiment ids in run order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the runner for an experiment id.
func Lookup(name string) (Runner, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
	}
	return r, nil
}

// RunAll executes every experiment in name order against a shared
// environment, rendering each to w.
func RunAll(env *Env, w io.Writer) error {
	for _, name := range Names() {
		runner, err := Lookup(name)
		if err != nil {
			return err
		}
		rep, err := runner(env)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
		fmt.Fprintf(w, "\n==================== %s ====================\n", name)
		if err := rep.Render(w); err != nil {
			return fmt.Errorf("experiments: rendering %s: %w", name, err)
		}
	}
	return nil
}
