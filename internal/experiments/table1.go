package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/datagen"
)

// Table1Row pairs a generated dataset's statistics with the paper's scaled
// Table I target.
type Table1Row struct {
	Generated datagen.Stats
	Target    datagen.Stats
	AvgDegPIN float64
	AvgDegMer float64
}

// Table1Result reproduces Table I: statistics of the three datasets.
type Table1Result struct {
	Scale float64
	Rows  []Table1Row
}

// RunTable1 generates the three datasets and summarizes them.
func RunTable1(env *Env) (*Table1Result, error) {
	res := &Table1Result{Scale: env.Scale.Graph}
	for _, id := range datagen.AllPresets() {
		ds, err := env.Dataset(id)
		if err != nil {
			return nil, err
		}
		target, err := datagen.TableITarget(id, env.Scale.Graph)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table1Row{
			Generated: ds.Stats(),
			Target:    target,
			AvgDegPIN: ds.Graph.AvgDegree(bipartite.UserSide),
			AvgDegMer: ds.Graph.AvgDegree(bipartite.MerchantSide),
		})
	}
	return res, nil
}

// Render implements the experiment report.
func (r *Table1Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "TABLE I — STATISTICS OF DATASETS (synthetic, scale %.3g of paper sizes)\n", r.Scale)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tNode:PIN\tFraud PIN\tNode:Merchant\tEdge\tDavg(PIN)\tDavg(Merchant)")
	for _, row := range r.Rows {
		g := row.Generated
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.2f\t%.2f\n",
			g.Name, g.Users, g.FraudPINs, g.Merchants, g.Edges, row.AvgDegPIN, row.AvgDegMer)
		t := row.Target
		fmt.Fprintf(tw, "  (paper×scale)\t%d\t%d\t%d\t%d\t\t\n", t.Users, t.FraudPINs, t.Merchants, t.Edges)
	}
	return tw.Flush()
}
