package replicate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/persist"
	"ensemfdet/internal/stream"
)

// FollowerConfig configures the tailing half.
type FollowerConfig struct {
	// Primary is the primary's base URL (e.g. http://primary:8080).
	Primary string
	// Graph is the follower's stream graph; records apply through its
	// version-exact replay primitives. It must carry no journal and no
	// window policy — replicated tombstones are the only deletions.
	Graph *stream.Graph
	// Store, when non-nil, re-journals received records so a follower
	// restart resumes from local state instead of re-bootstrapping. Leave
	// nil for a memory-only follower.
	Store *persist.Store
	// Client issues the HTTP requests (nil → a client with sane timeouts).
	Client *http.Client
	// WaitMS is the per-request long-poll budget sent to the primary
	// (0 → 20000).
	WaitMS int
	// RetryMin/RetryMax bound the reconnect backoff (0 → 100ms / 5s). Each
	// sleep is jittered into [d/2, d) so a fleet of followers knocked over
	// by the same primary restart does not reconnect in lockstep; a
	// Retry-After from the primary (it answers 503 while degraded) overrides
	// the computed backoff when longer.
	RetryMin time.Duration
	RetryMax time.Duration
	// FlushCache, when non-nil, runs after an epoch-boundary resync — the
	// one path that can move the graph version backwards, which invalidates
	// anything cached under version keys (the serving engine's vote cache).
	FlushCache func()
	// Logf receives replication progress and warnings (nil → log.Printf).
	Logf func(string, ...any)
}

func (c FollowerConfig) waitMS() int {
	if c.WaitMS <= 0 {
		return 20000
	}
	return c.WaitMS
}

func (c FollowerConfig) retryMin() time.Duration {
	if c.RetryMin <= 0 {
		return 100 * time.Millisecond
	}
	return c.RetryMin
}

func (c FollowerConfig) retryMax() time.Duration {
	if c.RetryMax <= 0 {
		return 5 * time.Second
	}
	return c.RetryMax
}

func (c FollowerConfig) logf() func(string, ...any) {
	if c.Logf == nil {
		return log.Printf
	}
	return c.Logf
}

func (c FollowerConfig) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	// No overall request timeout: tail long-polls legitimately idle for
	// WaitMS. The dial bound keeps a dead primary from pinning a retry.
	return &http.Client{Transport: http.DefaultTransport}
}

// Follower replicates a primary's durable state into a local graph and
// serves as the readiness/lag authority for the read-only daemon around it.
type Follower struct {
	cfg    FollowerConfig
	base   string
	client *http.Client
	logf   func(string, ...any)

	primaryVersion atomic.Uint64
	lastContact    atomic.Int64 // unix ns of the last successful primary response
	behindSince    atomic.Int64 // unix ns when the current lag streak began (0 = caught up)
	bootstrapped   atomic.Bool

	// memEpoch tracks the adopted failover term for memory-only followers;
	// with a store attached the store's fence file is authoritative and this
	// mirrors it. respEpoch remembers the last term the primary advertised.
	memEpoch  atomic.Uint64
	respEpoch atomic.Uint64

	bytesShipped      atomic.Uint64
	recordsApplied    atomic.Uint64
	tombstonesApplied atomic.Uint64
	resyncs           atomic.Uint64
	reconnects        atomic.Uint64
	journalErrs       atomic.Uint64
	epochAdopts       atomic.Uint64
	epochRejects      atomic.Uint64
	epochResyncs      atomic.Uint64
	backoffNanos      atomic.Int64
	retryAfterHint    atomic.Int64 // nanos requested by the last Retry-After header
}

// NewFollower validates the primary URL and returns a follower ready to
// Bootstrap and Run.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Graph == nil {
		return nil, errors.New("replicate: FollowerConfig needs a Graph")
	}
	base, err := normalizePrimaryURL(cfg.Primary)
	if err != nil {
		return nil, err
	}
	f := &Follower{cfg: cfg, base: base, client: cfg.client(), logf: cfg.logf()}
	if cfg.Store != nil {
		e, _, _ := cfg.Store.Epoch()
		f.memEpoch.Store(e)
	}
	return f, nil
}

// epoch is the failover term this follower has adopted — what it advertises
// on every request to the primary.
func (f *Follower) epoch() uint64 {
	if f.cfg.Store != nil {
		e, _, _ := f.cfg.Store.Epoch()
		return e
	}
	return f.memEpoch.Load()
}

// lastRespEpoch is the term the primary stamped on its latest response.
func (f *Follower) lastRespEpoch() uint64 { return f.respEpoch.Load() }

// adoptEpoch durably records a higher term (fence file when a store is
// attached). Adopting never grants write ownership.
func (f *Follower) adoptEpoch(epoch, start uint64) {
	if epoch <= f.epoch() {
		return
	}
	if f.cfg.Store != nil {
		if err := f.cfg.Store.AdoptEpoch(epoch, start); err != nil {
			f.logf("replicate: adopting epoch %d: %v", epoch, err)
			return
		}
	}
	f.memEpoch.Store(epoch)
	f.epochAdopts.Add(1)
	f.logf("replicate: adopted epoch %d (starts at version %d)", epoch, start)
}

func normalizePrimaryURL(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("replicate: bad primary URL %q: %w", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("replicate: primary URL %q must be http(s)://host[:port]", raw)
	}
	return strings.TrimRight(u.String(), "/"), nil
}

// Bootstrap seeds an empty graph from the primary's newest snapshot — the
// memory-only fast path (a disk-backed follower is seeded by DownloadInto +
// local recovery before this runs, so for it Bootstrap is a no-op beyond
// fetching the initial lag reference). A primary with no snapshot yet means
// the whole history is still in its WAL; tailing from the current version
// (possibly 0) covers it.
func (f *Follower) Bootstrap(ctx context.Context) error {
	m, err := f.fetchManifest(ctx)
	if err != nil {
		return err
	}
	f.primaryVersion.Store(m.Version)
	f.noteContact()
	if f.cfg.Graph.Version() == 0 && m.Snapshot != nil {
		g, hdr, n, err := f.fetchSnapshot(ctx, m.Snapshot.Name)
		if err != nil {
			return err
		}
		if err := f.cfg.Graph.RestoreAt(g, hdr.Version, hdr.Mark, hdr.WrittenAt); err != nil {
			return fmt.Errorf("replicate: seeding graph from shipped snapshot: %w", err)
		}
		f.bytesShipped.Add(uint64(n))
		f.logf("replicate: bootstrapped from snapshot %s: version %d, %d edges", m.Snapshot.Name, hdr.Version, g.NumEdges())
	}
	// A primary already in a later term than ours: adopt it now when our
	// history is provably a shared prefix; a forked history is left for the
	// tail loop, whose epoch check pushes it through a boundary resync.
	if ClassifyEpoch(f.epoch(), m.Epoch, f.cfg.Graph.Version(), m.EpochVersion) == EpochAdopt {
		f.adoptEpoch(m.Epoch, m.EpochVersion)
	}
	f.bootstrapped.Store(true)
	return nil
}

// EpochAction is ClassifyEpoch's verdict on one replication response.
type EpochAction int

const (
	// EpochOK: terms match — apply the response normally.
	EpochOK EpochAction = iota
	// EpochStale: the responder is in an older term than we are — it is a
	// deposed primary (or a replica of one); nothing it sends may be
	// applied.
	EpochStale
	// EpochAdopt: the responder is in a newer term and our entire history
	// predates that term's first version, so it is a shared prefix of the
	// new timeline — adopt the term durably and keep tailing in place.
	EpochAdopt
	// EpochResync: the responder is in a newer term and we hold versions at
	// or past the term boundary — versions that may belong to the abandoned
	// timeline. Local history cannot be trusted past the fork; converge by
	// snapshot diff, then force version and watermark onto the new timeline.
	EpochResync
)

func (a EpochAction) String() string {
	switch a {
	case EpochOK:
		return "ok"
	case EpochStale:
		return "stale"
	case EpochAdopt:
		return "adopt"
	case EpochResync:
		return "resync"
	}
	return fmt.Sprintf("EpochAction(%d)", int(a))
}

// ClassifyEpoch decides what a follower at (localEpoch, localVersion) must
// do with a response from a node at respEpoch whose term began at epochStart
// (0 = unknown). The rule that makes fencing safe: a version is only
// trustworthy if it was assigned in a term ≤ the term we have adopted, and a
// higher-term node's history only shares our prefix strictly below its
// term's first version. An unknown boundary forces the conservative resync.
func ClassifyEpoch(localEpoch, respEpoch, localVersion, epochStart uint64) EpochAction {
	switch {
	case respEpoch < localEpoch:
		return EpochStale
	case respEpoch == localEpoch:
		return EpochOK
	case epochStart == 0 || localVersion >= epochStart:
		return EpochResync
	default:
		return EpochAdopt
	}
}

// Sentinels tailOnce raises when the primary's advertised epoch disagrees
// with ours; Run turns them into a hard reject (stale) or a manifest-driven
// adopt/resync (ahead).
var (
	errEpochStale = errors.New("replicate: primary is in an older epoch than this follower")
	errEpochAhead = errors.New("replicate: primary is in a newer epoch than this follower")
)

// Run tails the primary until ctx is canceled, applying each shipped record
// at its explicit version. Stream breaks reconnect with jittered exponential
// backoff (a Retry-After from a degraded primary overrides it when longer),
// resuming from the last locally applied version; a 410 Gone (the primary
// truncated past our position) triggers a snapshot resync, and an epoch
// mismatch triggers adopt/boundary-resync per ClassifyEpoch. Run returns nil
// on cancellation — any terminal error would mean giving up on replication,
// which a replica never does while alive.
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.cfg.retryMin()
	for ctx.Err() == nil {
		status, err := f.tailOnce(ctx)
		switch {
		case errors.Is(err, errEpochAhead):
			if err := f.handleEpochAhead(ctx); err != nil {
				if ctx.Err() != nil {
					return nil
				}
				f.logf("replicate: epoch-boundary resync: %v (retrying)", err)
				if !f.pause(ctx, f.cfg.retryMax()) {
					return nil
				}
			}
			backoff = f.cfg.retryMin()
			continue
		case errors.Is(err, errEpochStale):
			// A deposed primary cannot become current again by waiting; back
			// off at the cap until an operator re-points us (/v1/admin/follow)
			// or the node is rebooted into the new timeline.
			f.epochRejects.Add(1)
			f.logf("replicate: %s answers with epoch %d below ours (%d); refusing its records until re-pointed",
				f.base, f.lastRespEpoch(), f.epoch())
			if !f.pause(ctx, f.cfg.retryMax()) {
				return nil
			}
			continue
		case err != nil:
			if ctx.Err() != nil {
				return nil
			}
			f.reconnects.Add(1)
			f.logf("replicate: tail from %s: %v (retrying in ~%v)", f.base, err, backoff)
			if !f.pause(ctx, backoff) {
				return nil
			}
			if backoff *= 2; backoff > f.cfg.retryMax() {
				backoff = f.cfg.retryMax()
			}
			continue
		}
		backoff = f.cfg.retryMin()
		if status == http.StatusGone {
			if err := f.resync(ctx); err != nil {
				if ctx.Err() != nil {
					return nil
				}
				f.logf("replicate: snapshot resync: %v (retrying)", err)
				if !f.pause(ctx, f.cfg.retryMax()) {
					return nil
				}
			}
		}
	}
	return nil
}

// pause sleeps one backoff step: base jittered into [base/2, base] so
// followers desynchronize, raised to the primary's Retry-After request when
// that is longer. The slept time feeds the repl_backoff_seconds metric.
func (f *Follower) pause(ctx context.Context, base time.Duration) bool {
	d := base/2 + time.Duration(rand.Int63n(int64(base/2)+1))
	if hint := time.Duration(f.retryAfterHint.Swap(0)); hint > d {
		d = hint
	}
	f.backoffNanos.Add(int64(d))
	return sleepCtx(ctx, d)
}

// handleEpochAhead runs after a response advertised a term above ours:
// re-fetch the manifest (it carries the term's first version, which the
// header cannot) and either adopt in place or converge through an
// epoch-boundary resync.
func (f *Follower) handleEpochAhead(ctx context.Context) error {
	m, err := f.fetchManifest(ctx)
	if err != nil {
		return err
	}
	f.primaryVersion.Store(m.Version)
	f.noteContact()
	switch ClassifyEpoch(f.epoch(), m.Epoch, f.cfg.Graph.Version(), m.EpochVersion) {
	case EpochAdopt:
		f.adoptEpoch(m.Epoch, m.EpochVersion)
		return nil
	case EpochResync:
		return f.epochResync(ctx, m)
	default:
		// The manifest caught up with (or fell behind) the header race;
		// the next tail request re-evaluates.
		return nil
	}
}

// tailOnce issues one tail request from the current graph version and
// applies whatever comes back. It returns the HTTP status for flow control
// (200 applied, 204 idle, 410 needs resync), an epoch sentinel when the
// primary's term disagrees with ours, or an error for retryable
// transport/server failures.
func (f *Follower) tailOnce(ctx context.Context) (int, error) {
	from := f.cfg.Graph.Version()
	u := fmt.Sprintf("%s/v1/repl/tail?from=%d&wait=%d", f.base, from, f.cfg.waitMS())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set(hdrEpoch, strconv.FormatUint(f.epoch(), 10))
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if v, err := strconv.ParseUint(resp.Header.Get(hdrPrimaryVersion), 10, 64); err == nil {
		f.primaryVersion.Store(v)
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.ParseFloat(s, 64); err == nil && secs > 0 {
			f.retryAfterHint.Store(int64(secs * float64(time.Second)))
		}
	}
	if raw := resp.Header.Get(hdrEpoch); raw != "" {
		if e, err := strconv.ParseUint(raw, 10, 64); err == nil {
			f.respEpoch.Store(e)
			switch local := f.epoch(); {
			case e < local:
				f.noteContact()
				return 0, errEpochStale
			case e > local:
				f.noteContact()
				return 0, errEpochAhead
			}
		}
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNoContent, http.StatusGone:
		f.noteContact()
		f.updateLag()
		return resp.StatusCode, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("tail: primary answered %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, fmt.Errorf("tail: reading body: %w", err)
	}
	f.noteContact()
	f.bytesShipped.Add(uint64(len(payload)))
	if err := f.applyFrames(payload); err != nil {
		return 0, err
	}
	f.updateLag()
	return http.StatusOK, nil
}

// applyFrames decodes a tail body (concatenated v2 frames, version-sorted)
// and applies each record exactly as boot-time recovery would: journal
// first when a store is attached, then the version-exact replay primitives.
// Records at or below the current version (overlap after a resume or
// resync) are skipped whole — never re-journaled, never re-applied.
func (f *Follower) applyFrames(payload []byte) error {
	g := f.cfg.Graph
	off := 0
	for off < len(payload) {
		rec, n, ok := persist.DecodeRecordFrame(payload[off:])
		if !ok {
			return fmt.Errorf("tail: undecodable frame at offset %d", off)
		}
		off += n
		if rec.Version <= g.Version() {
			continue
		}
		if f.cfg.Store != nil {
			// Journal-first mirrors the primary's WAL-before-commit order: a
			// crash between the two replays the record at the same version.
			// A journal failure degrades the store (it heals itself via a
			// snapshot cut from this graph) but must not stall replication —
			// the in-memory replica keeps serving, exactly like a degraded
			// primary does.
			if err := f.cfg.Store.AppendRecord(rec); err != nil {
				f.journalErrs.Add(1)
				f.logf("replicate: journaling record %d: %v", rec.Version, err)
			}
		}
		switch rec.Kind {
		case persist.RecordTombstone:
			g.Remove(rec.Edges)
			g.AdvanceMarkTo(rec.Mark)
			g.AdvanceVersionTo(rec.Version)
			f.tombstonesApplied.Add(1)
		case persist.RecordEpochFence:
			// The new primary's fence record arriving in version order means
			// our whole history is the new timeline's prefix: adopt the term
			// in place, no resync needed. The version bump is the record's
			// only graph effect.
			g.AdvanceVersionTo(rec.Version)
			f.adoptEpoch(rec.Epoch, rec.Version)
		default:
			g.Append(rec.Edges)
			g.AdvanceVersionTo(rec.Version)
		}
		f.recordsApplied.Add(1)
	}
	return nil
}

// resync converges the live graph onto the primary's newest snapshot after
// the tail went 410: the versions between our position F and the snapshot's
// S exist only inside that snapshot now. Rather than wiping in-process
// state, it applies the set difference — Remove what the snapshot lost,
// Append what it gained — then pins version and watermark.
//
// Version safety: Remove and Append each bump the version by at most one,
// and a bump only happens when its set is non-empty. A single version step
// is a single WAL record, which either only adds or only deletes, so both
// sets non-empty implies S ≥ F+2; one set non-empty implies S ≥ F+1. The
// version therefore never overshoots S before AdvanceVersionTo pins it.
// Canonical snapshots make the result byte-identical to the primary at S.
func (f *Follower) resync(ctx context.Context) error {
	m, err := f.fetchManifest(ctx)
	if err != nil {
		return err
	}
	f.primaryVersion.Store(m.Version)
	f.noteContact()
	if m.Snapshot == nil {
		return errors.New("tail gone but the primary lists no snapshot; retrying")
	}
	g := f.cfg.Graph
	if m.Snapshot.Version <= g.Version() {
		// A stale manifest racing an even newer snapshot; the next tail will
		// either work or push us back here with a fresher listing.
		return nil
	}
	target, hdr, n, err := f.fetchSnapshot(ctx, m.Snapshot.Name)
	if err != nil {
		return err
	}
	deletes, inserts := f.diffOnto(target)
	g.AdvanceVersionTo(hdr.Version)
	g.AdvanceMarkTo(hdr.Mark)
	f.bytesShipped.Add(uint64(n))
	f.resyncs.Add(1)
	f.updateLag()
	f.logf("replicate: resynced to snapshot version %d (-%d/+%d edges)", hdr.Version, len(deletes), len(inserts))
	if f.cfg.Store != nil {
		// The diff was applied without journaling (its operations are not
		// primary history); a forced snapshot makes the converged state
		// durable and truncates the now-stale local WAL.
		if err := f.cfg.Store.Snapshot(); err != nil {
			f.journalErrs.Add(1)
			f.logf("replicate: snapshot after resync: %v", err)
		}
	}
	return nil
}

// diffOnto converges the live graph's edge set onto target via the same
// Remove/Append set difference the 410 resync uses, returning both halves.
func (f *Follower) diffOnto(target *bipartite.Graph) (deletes, inserts []bipartite.Edge) {
	g := f.cfg.Graph
	local, _ := g.Snapshot()
	local.Edges(func(e bipartite.Edge) bool {
		if !target.HasEdge(e.U, e.V) {
			deletes = append(deletes, e)
		}
		return true
	})
	target.Edges(func(e bipartite.Edge) bool {
		if !local.HasEdge(e.U, e.V) {
			inserts = append(inserts, e)
		}
		return true
	})
	g.Remove(deletes)
	g.Append(inserts)
	return deletes, inserts
}

// epochResync converges a forked follower onto a new primary's timeline.
// The follower holds versions at or past the term boundary that the new
// primary may never have had (the abandoned timeline), so unlike the 410
// resync the version counter must move BACKWARDS — to the primary's newest
// snapshot (or to zero when it has none yet, in which case the target is the
// empty graph and the tail replays the whole new timeline).
//
// Order is crash-safe by construction: diff the graph onto the target, force
// version+watermark, wipe the local store (Rewind: all snapshots + WAL —
// they describe the abandoned timeline), adopt the new term, then cut a
// fresh snapshot of the converged state. A crash before AdoptEpoch leaves
// the old (or an empty) epoch on disk, so the reboot re-enters this path and
// re-converges; a crash after it leaves an empty store in the new term,
// which tails forward from zero. At no point can the node serve the
// abandoned timeline under the new term's epoch.
func (f *Follower) epochResync(ctx context.Context, m Manifest) error {
	g := f.cfg.Graph
	var target *bipartite.Graph
	var hdr persist.SnapshotHeader
	if m.Snapshot != nil {
		t, h, n, err := f.fetchSnapshot(ctx, m.Snapshot.Name)
		if err != nil {
			return err
		}
		target, hdr = t, h
		f.bytesShipped.Add(uint64(n))
	} else {
		target = bipartite.NewBuilder().Build()
	}
	deletes, inserts := f.diffOnto(target)
	g.ForceVersionTo(hdr.Version)
	g.ForceMarkTo(hdr.Mark)
	if f.cfg.Store != nil {
		if err := f.cfg.Store.Rewind(); err != nil {
			return fmt.Errorf("rewinding store across epoch boundary: %w", err)
		}
	}
	f.adoptEpoch(m.Epoch, m.EpochVersion)
	if f.cfg.Store != nil {
		if err := f.cfg.Store.Snapshot(); err != nil {
			f.journalErrs.Add(1)
			f.logf("replicate: snapshot after epoch resync: %v", err)
		}
	}
	if f.cfg.FlushCache != nil {
		f.cfg.FlushCache()
	}
	f.epochResyncs.Add(1)
	f.updateLag()
	f.logf("replicate: epoch-boundary resync to epoch %d at version %d (-%d/+%d edges)",
		m.Epoch, hdr.Version, len(deletes), len(inserts))
	return nil
}

func (f *Follower) fetchManifest(ctx context.Context) (Manifest, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.base+"/v1/repl/manifest", nil)
	if err != nil {
		return Manifest{}, err
	}
	req.Header.Set(hdrEpoch, strconv.FormatUint(f.epoch(), 10))
	resp, err := f.client.Do(req)
	if err != nil {
		return Manifest{}, fmt.Errorf("replicate: fetching manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Manifest{}, fmt.Errorf("replicate: manifest: primary answered %s", resp.Status)
	}
	var m Manifest
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("replicate: decoding manifest: %w", err)
	}
	return m, nil
}

// fetchSnapshot downloads and decodes one snapshot, returning the validated
// graph, its header, and the byte count shipped.
func (f *Follower) fetchSnapshot(ctx context.Context, name string) (*bipartite.Graph, persist.SnapshotHeader, int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.base+"/v1/repl/snapshot/"+url.PathEscape(name), nil)
	if err != nil {
		return nil, persist.SnapshotHeader{}, 0, err
	}
	req.Header.Set(hdrEpoch, strconv.FormatUint(f.epoch(), 10))
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, persist.SnapshotHeader{}, 0, fmt.Errorf("replicate: fetching snapshot %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, persist.SnapshotHeader{}, 0, fmt.Errorf("replicate: snapshot %s: primary answered %s", name, resp.Status)
	}
	cr := &countingReader{r: resp.Body}
	g, hdr, err := persist.DecodeSnapshot(cr)
	if err != nil {
		return nil, persist.SnapshotHeader{}, 0, err
	}
	return g, hdr, cr.n, nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (f *Follower) noteContact() { f.lastContact.Store(time.Now().UnixNano()) }

// updateLag maintains the behind-since stamp: zero while the applied
// version has caught the primary's, else the time the current streak began.
func (f *Follower) updateLag() {
	if f.cfg.Graph.Version() >= f.primaryVersion.Load() {
		f.behindSince.Store(0)
		return
	}
	f.behindSince.CompareAndSwap(0, time.Now().UnixNano())
}

// Lag reports how far behind the primary this follower is. known is false
// until the first successful primary contact.
func (f *Follower) Lag() (versionsBehind uint64, secondsBehind float64, known bool) {
	if f.lastContact.Load() == 0 {
		return 0, 0, false
	}
	pv, av := f.primaryVersion.Load(), f.cfg.Graph.Version()
	if pv > av {
		versionsBehind = pv - av
	}
	if since := f.behindSince.Load(); since != 0 {
		secondsBehind = time.Since(time.Unix(0, since)).Seconds()
	}
	return versionsBehind, secondsBehind, true
}

// Ready implements the /readyz contract: a follower is ready once it has
// bootstrapped, heard from the primary, and its lag is within maxLag
// versions — so load balancers never route detection traffic to a replica
// still cold or far behind.
func (f *Follower) Ready(maxLag uint64) (bool, string) {
	if !f.bootstrapped.Load() {
		return false, "bootstrap in progress"
	}
	behind, _, known := f.Lag()
	if !known {
		return false, "no contact with primary yet"
	}
	if behind > maxLag {
		return false, fmt.Sprintf("replication lag %d versions exceeds %d", behind, maxLag)
	}
	return true, ""
}

// FollowerStats is the follower-side replication summary for /v1/stats and
// the ensemfdetd_repl_* metrics.
type FollowerStats struct {
	Primary           string  `json:"primary"`
	PrimaryVersion    uint64  `json:"primary_version"`
	AppliedVersion    uint64  `json:"applied_version"`
	VersionsBehind    uint64  `json:"versions_behind"`
	SecondsBehind     float64 `json:"seconds_behind"`
	Bootstrapped      bool    `json:"bootstrapped"`
	Epoch             uint64  `json:"epoch"`
	BytesShipped      uint64  `json:"bytes_shipped"`
	RecordsApplied    uint64  `json:"records_applied"`
	TombstonesApplied uint64  `json:"tombstones_applied"`
	Resyncs           uint64  `json:"resyncs"`
	Reconnects        uint64  `json:"reconnects"`
	JournalErrors     uint64  `json:"journal_errors"`
	// EpochAdopts counts higher terms adopted in place; EpochResyncs counts
	// boundary resyncs off an abandoned timeline; EpochRejects counts
	// responses refused because the sender's term was below ours.
	EpochAdopts  uint64 `json:"epoch_adopts"`
	EpochResyncs uint64 `json:"epoch_resyncs"`
	EpochRejects uint64 `json:"epoch_rejects"`
	// BackoffSeconds is cumulative time spent sleeping between retries —
	// the ensemfdetd_repl_backoff_seconds metric.
	BackoffSeconds float64 `json:"backoff_seconds"`
}

// Stats returns current replication counters.
func (f *Follower) Stats() FollowerStats {
	behind, seconds, _ := f.Lag()
	return FollowerStats{
		Primary:           f.base,
		PrimaryVersion:    f.primaryVersion.Load(),
		AppliedVersion:    f.cfg.Graph.Version(),
		VersionsBehind:    behind,
		SecondsBehind:     seconds,
		Bootstrapped:      f.bootstrapped.Load(),
		Epoch:             f.epoch(),
		BytesShipped:      f.bytesShipped.Load(),
		RecordsApplied:    f.recordsApplied.Load(),
		TombstonesApplied: f.tombstonesApplied.Load(),
		Resyncs:           f.resyncs.Load(),
		Reconnects:        f.reconnects.Load(),
		JournalErrors:     f.journalErrs.Load(),
		EpochAdopts:       f.epochAdopts.Load(),
		EpochResyncs:      f.epochResyncs.Load(),
		EpochRejects:      f.epochRejects.Load(),
		BackoffSeconds:    time.Duration(f.backoffNanos.Load()).Seconds(),
	}
}

// sleepCtx sleeps for d or until ctx is done, reporting whether it slept
// the full duration.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// --- disk bootstrap ---

// bootstrapMarker flags a data directory whose bootstrap did not finish: a
// crash mid-download must not leave a half-shipped segment set that a later
// boot would "recover" with silent version holes. The marker lands before
// any shipped file and is removed only after every file is in place.
const bootstrapMarker = "REPL_BOOTSTRAP_INCOMPLETE"

// NeedsBootstrap reports whether a follower's data directory requires a
// fresh download: it holds no recoverable state, or a previous bootstrap
// was interrupted (marker present).
func NeedsBootstrap(dir string) bool {
	if _, err := os.Stat(filepath.Join(dir, bootstrapMarker)); err == nil {
		return true
	}
	return !persist.HasState(dir)
}

// DownloadInto ships the primary's newest snapshot and WAL segments into
// dataDir (creating it), laid out exactly as the persist store writes them,
// so a normal Open+Recover afterwards reproduces the primary's durable
// state version-exactly. Existing snap/wal contents are wiped first — the
// caller gates on NeedsBootstrap, so anything present is the debris of an
// interrupted earlier attempt.
//
// A download that finds a file changed or gone (the primary snapshotted and
// truncated mid-bootstrap) restarts the whole procedure from a fresh
// manifest — partial sets from two manifests must never mix, or recovery
// could see version holes it cannot detect.
func DownloadInto(ctx context.Context, client *http.Client, primary, dataDir string, logf func(string, ...any)) error {
	base, err := normalizePrimaryURL(primary)
	if err != nil {
		return err
	}
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Minute}
	}
	if logf == nil {
		logf = log.Printf
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return fmt.Errorf("replicate: creating data dir: %w", err)
	}
	marker := filepath.Join(dataDir, bootstrapMarker)
	if err := os.WriteFile(marker, []byte("bootstrap in progress\n"), 0o644); err != nil {
		return fmt.Errorf("replicate: writing bootstrap marker: %w", err)
	}

	const maxAttempts = 5
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if lastErr != nil {
			logf("replicate: bootstrap attempt %d/%d restarting: %v", attempt, maxAttempts, lastErr)
		}
		if lastErr = downloadAttempt(ctx, client, base, dataDir); lastErr == nil {
			if err := os.Remove(marker); err != nil {
				return fmt.Errorf("replicate: clearing bootstrap marker: %w", err)
			}
			return syncDirBestEffort(dataDir)
		}
	}
	return fmt.Errorf("replicate: bootstrap from %s failed after %d attempts: %w", base, maxAttempts, lastErr)
}

func downloadAttempt(ctx context.Context, client *http.Client, base, dataDir string) error {
	// Wipe debris from any earlier attempt so files from two manifests
	// never mix.
	for _, sub := range []string{"snap", "wal"} {
		dir := filepath.Join(dataDir, sub)
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	m, err := fetchManifestWith(ctx, client, base)
	if err != nil {
		return err
	}
	fetch := func(kind, name, dest string, wantBytes int64, exact bool) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/repl/"+kind+"/"+url.PathEscape(name), nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("fetching %s %s: %w", kind, name, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s %s: primary answered %s", kind, name, resp.Status)
		}
		f, err := os.OpenFile(dest, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		n, err := io.Copy(f, resp.Body)
		if serr := f.Sync(); err == nil {
			err = serr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s %s: %w", kind, name, err)
		}
		// The active segment may legitimately have grown since the manifest
		// (extra records the tail would ship anyway); anything shorter — or
		// a sealed file of the wrong size — means the set changed under us.
		if n < wantBytes || (exact && n != wantBytes) {
			return fmt.Errorf("%s %s: got %d bytes, manifest said %d (primary state moved)", kind, name, n, wantBytes)
		}
		return nil
	}
	if m.Snapshot != nil {
		dest := filepath.Join(dataDir, "snap", m.Snapshot.Name)
		if err := fetch("snapshot", m.Snapshot.Name, dest, m.Snapshot.Bytes, true); err != nil {
			return err
		}
		// Decode-validate now: a corrupt shipped snapshot found at boot
		// recovery time would refuse the boot with data-loss wording that
		// sends the operator entirely the wrong way.
		if f, err := os.Open(dest); err != nil {
			return err
		} else {
			_, _, derr := persist.DecodeSnapshot(f)
			f.Close()
			if derr != nil {
				return fmt.Errorf("validating shipped snapshot: %w", derr)
			}
		}
	}
	for i, seg := range m.Segments {
		exact := i < len(m.Segments)-1 || seg.Legacy // only the final (active) segment may grow
		if err := fetch("segment", seg.Name, filepath.Join(dataDir, "wal", seg.Name), seg.Bytes, exact); err != nil {
			return err
		}
	}
	return nil
}

func fetchManifestWith(ctx context.Context, client *http.Client, base string) (Manifest, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/repl/manifest", nil)
	if err != nil {
		return Manifest{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return Manifest{}, fmt.Errorf("fetching manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Manifest{}, fmt.Errorf("manifest: primary answered %s", resp.Status)
	}
	var m Manifest
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("decoding manifest: %w", err)
	}
	return m, nil
}

func syncDirBestEffort(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	d.Sync()
	return d.Close()
}
