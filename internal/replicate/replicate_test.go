package replicate

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/core"
	"ensemfdet/internal/persist"
	"ensemfdet/internal/stream"
)

// testPrimary is a durable primary under test: graph, store, and the
// replication endpoints on an httptest server.
type testPrimary struct {
	g   *stream.Graph
	st  *persist.Store
	p   *Primary
	srv *httptest.Server
}

func newTestPrimary(t *testing.T, opts persist.Options) *testPrimary {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	st, err := persist.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	g := stream.NewSharded(4)
	if _, err := st.Recover(g); err != nil {
		t.Fatal(err)
	}
	g.SetJournal(st)
	st.SetSource(g)
	p := NewPrimary(PrimaryConfig{Store: st, Version: g.Version, Logf: t.Logf})
	srv := httptest.NewServer(p.Handler())
	t.Cleanup(func() { srv.Close(); st.Close() })
	return &testPrimary{g: g, st: st, p: p, srv: srv}
}

func (tp *testPrimary) append(t *testing.T, edges ...bipartite.Edge) {
	t.Helper()
	if res := tp.g.Append(edges); res.Err != nil {
		t.Fatal(res.Err)
	}
}

func batches(seed, n, per int) [][]bipartite.Edge {
	out := make([][]bipartite.Edge, n)
	x := uint32(seed)
	for i := range out {
		b := make([]bipartite.Edge, per)
		for j := range b {
			x = x*1664525 + 1013904223 // LCG: deterministic, no shared rand
			b[j] = bipartite.Edge{U: x % 97, V: (x >> 8) % 83}
		}
		out[i] = b
	}
	return out
}

func csr(t *testing.T, g *bipartite.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := bipartite.WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func runVotes(t *testing.T, g *bipartite.Graph) core.Votes {
	t.Helper()
	out, err := core.Run(g, core.Config{NumSamples: 8, SampleRatio: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return out.Votes
}

// catchUp drives tailOnce until the follower reports no lag, bounded so a
// broken tail fails the test instead of hanging it.
func catchUp(t *testing.T, f *Follower) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		status, err := f.tailOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if status == http.StatusGone {
			if err := f.resync(ctx); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if behind, _, known := f.Lag(); known && behind == 0 {
			return
		}
	}
	t.Fatal("follower failed to catch up in 200 tail rounds")
}

// assertIdentical pins the acceptance criterion: same version, byte-identical
// CSR, byte-identical votes.
func assertIdentical(t *testing.T, primary, follower *stream.Graph) {
	t.Helper()
	pv, fv := primary.Version(), follower.Version()
	if pv != fv {
		t.Fatalf("follower at version %d, primary at %d", fv, pv)
	}
	ps, _ := primary.Snapshot()
	fs, _ := follower.Snapshot()
	if !bytes.Equal(csr(t, ps), csr(t, fs)) {
		t.Fatalf("CSR diverged at version %d", pv)
	}
	pvotes, fvotes := runVotes(t, ps), runVotes(t, fs)
	if !reflect.DeepEqual(pvotes, fvotes) {
		t.Fatalf("votes diverged at version %d", pv)
	}
}

// TestMemoryFollowerBootstrapAndTail attaches a diskless follower to a
// primary that already snapshotted and kept ingesting: the follower seeds
// from the snapshot body, tails the rest, and serves byte-identical votes at
// the primary's version.
func TestMemoryFollowerBootstrapAndTail(t *testing.T) {
	tp := newTestPrimary(t, persist.Options{Fsync: persist.FsyncNever})
	bs := batches(1, 10, 25)
	for _, b := range bs[:5] {
		tp.append(t, b...)
	}
	if err := tp.st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for _, b := range bs[5:] {
		tp.append(t, b...)
	}

	f, err := NewFollower(FollowerConfig{Primary: tp.srv.URL, Graph: stream.New(), WaitMS: 10, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	if f.cfg.Graph.Version() == 0 {
		t.Fatal("bootstrap did not seed from the primary's snapshot")
	}
	catchUp(t, f)
	assertIdentical(t, tp.g, f.cfg.Graph)

	// Mid-churn continuation: more primary batches, tail again, still identical.
	for _, b := range batches(2, 5, 25) {
		tp.append(t, b...)
	}
	catchUp(t, f)
	assertIdentical(t, tp.g, f.cfg.Graph)

	st := f.Stats()
	if st.RecordsApplied == 0 || st.BytesShipped == 0 || !st.Bootstrapped {
		t.Fatalf("stats did not track the session: %+v", st)
	}
	if ready, reason := f.Ready(8); !ready {
		t.Fatalf("caught-up follower not ready: %s", reason)
	}
}

// TestDiskFollowerBootstrapKillResume is the durability pin: a follower
// bootstraps into a data directory, tails mid-churn, dies without cleanup,
// reboots from local state, and converges again — byte-identical both times.
func TestDiskFollowerBootstrapKillResume(t *testing.T) {
	tp := newTestPrimary(t, persist.Options{Fsync: persist.FsyncNever})
	bs := batches(3, 12, 20)
	for _, b := range bs[:4] {
		tp.append(t, b...)
	}
	if err := tp.st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for _, b := range bs[4:8] {
		tp.append(t, b...)
	}

	dir := t.TempDir()
	if !NeedsBootstrap(dir) {
		t.Fatal("fresh dir does not need bootstrap")
	}
	if err := DownloadInto(context.Background(), nil, tp.srv.URL, dir, t.Logf); err != nil {
		t.Fatal(err)
	}
	if NeedsBootstrap(dir) {
		t.Fatal("completed bootstrap still reports needing one")
	}
	downloadedAt := tp.g.Version()
	for _, b := range bs[8:10] {
		tp.append(t, b...) // churn lands between the download and the boot
	}

	boot := func() (*persist.Store, *stream.Graph, *Follower) {
		st, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncNever, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		g := stream.NewSharded(2)
		if _, err := st.Recover(g); err != nil {
			t.Fatal(err)
		}
		st.SetSource(g) // journaling goes through AppendRecord, not SetJournal
		f, err := NewFollower(FollowerConfig{Primary: tp.srv.URL, Graph: g, Store: st, WaitMS: 10, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Bootstrap(context.Background()); err != nil {
			t.Fatal(err)
		}
		return st, g, f
	}

	_, g1, f1 := boot()
	if g1.Version() != downloadedAt {
		t.Fatalf("local recovery reached version %d, want the downloaded %d", g1.Version(), downloadedAt)
	}
	catchUp(t, f1)
	assertIdentical(t, tp.g, g1)
	killedAt := g1.Version()
	// SIGKILL: the store is abandoned — no Close, no final snapshot.

	for _, b := range bs[10:] {
		tp.append(t, b...)
	}
	if NeedsBootstrap(dir) {
		t.Fatal("dir with replicated state reports needing bootstrap")
	}
	st2, g2, f2 := boot()
	defer st2.Close()
	if g2.Version() < killedAt {
		t.Fatalf("rebooted at version %d, below the %d already applied before the kill", g2.Version(), killedAt)
	}
	catchUp(t, f2)
	assertIdentical(t, tp.g, g2)
	if f2.Stats().Resyncs != 0 {
		t.Fatal("resume from local state should not have needed a snapshot resync")
	}
}

// TestFollowerResyncAfterTruncation pins the 410 path: a follower left
// behind a truncating snapshot converges through the snapshot diff and
// counts the resync — with the live version never overshooting the snapshot.
func TestFollowerResyncAfterTruncation(t *testing.T) {
	tp := newTestPrimary(t, persist.Options{Fsync: persist.FsyncNever})
	for _, b := range batches(5, 4, 15) {
		tp.append(t, b...)
	}

	f, err := NewFollower(FollowerConfig{Primary: tp.srv.URL, Graph: stream.New(), WaitMS: 10, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	catchUp(t, f)
	behindAt := f.cfg.Graph.Version()

	// Primary moves on — including removals, so the diff has both sides —
	// and truncates past the follower's position.
	for _, b := range batches(6, 6, 15) {
		tp.append(t, b...)
	}
	snap, _ := tp.g.Snapshot()
	victim := []bipartite.Edge{}
	snap.Edges(func(e bipartite.Edge) bool {
		victim = append(victim, e)
		return len(victim) < 5
	})
	if res := tp.g.Remove(victim); res.Removed == 0 {
		t.Fatal("removal removed nothing")
	}
	if err := tp.st.Snapshot(); err != nil {
		t.Fatal(err)
	}

	status, err := f.tailOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusGone {
		t.Fatalf("tail from %d after truncation answered %d, want 410", behindAt, status)
	}
	if err := f.resync(context.Background()); err != nil {
		t.Fatal(err)
	}
	catchUp(t, f)
	assertIdentical(t, tp.g, f.cfg.Graph)
	if f.Stats().Resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1", f.Stats().Resyncs)
	}
}

// TestDownloadRestartsOnMovedState pins the bootstrap restart: a primary
// that snapshots between the manifest read and the segment download makes
// the attempt fail size validation, and the retry converges on the new
// manifest instead of mixing files from two listings.
func TestDownloadRestartsOnMovedState(t *testing.T) {
	tp := newTestPrimary(t, persist.Options{Fsync: persist.FsyncNever})
	for _, b := range batches(7, 5, 15) {
		tp.append(t, b...)
	}

	// A tripwire proxy: after serving the manifest once, compact the
	// primary's log before letting the first segment request through.
	tripped := false
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !tripped && r.URL.Path == "/v1/repl/manifest" {
			tripped = true
			tp.p.Handler().ServeHTTP(w, r)
			tp.append(t, bipartite.Edge{U: 500, V: 500})
			if err := tp.st.Snapshot(); err != nil {
				t.Error(err)
			}
			return
		}
		tp.p.Handler().ServeHTTP(w, r)
	}))
	defer proxy.Close()

	dir := t.TempDir()
	if err := DownloadInto(context.Background(), nil, proxy.URL, dir, t.Logf); err != nil {
		t.Fatal(err)
	}
	st, err := persist.Open(dir, persist.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	g := stream.New()
	if _, err := st.Recover(g); err != nil {
		t.Fatal(err)
	}
	if g.Version() != tp.g.Version() {
		t.Fatalf("bootstrapped to version %d, primary at %d", g.Version(), tp.g.Version())
	}
	ps, _ := tp.g.Snapshot()
	fs, _ := g.Snapshot()
	if !bytes.Equal(csr(t, ps), csr(t, fs)) {
		t.Fatal("bootstrapped CSR diverged")
	}
}

// TestNewFollowerRejectsBadURLs pins URL validation.
func TestNewFollowerRejectsBadURLs(t *testing.T) {
	for _, raw := range []string{"", "primary:8080", "ftp://x", "http://"} {
		if _, err := NewFollower(FollowerConfig{Primary: raw, Graph: stream.New()}); err == nil {
			t.Fatalf("NewFollower accepted %q", raw)
		}
	}
	if _, err := NewFollower(FollowerConfig{Primary: "http://localhost:1"}); err == nil {
		t.Fatal("NewFollower accepted a nil graph")
	}
}

// TestTailLongPollWakes pins the long-poll: a tail parked on an idle
// primary returns promptly once a record lands, without waiting out ?wait=.
func TestTailLongPollWakes(t *testing.T) {
	tp := newTestPrimary(t, persist.Options{Fsync: persist.FsyncNever})
	tp.append(t, bipartite.Edge{U: 1, V: 1})

	f, err := NewFollower(FollowerConfig{Primary: tp.srv.URL, Graph: stream.New(), WaitMS: 5000, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	catchUp(t, f)

	done := make(chan error, 1)
	go func() {
		_, err := f.tailOnce(context.Background())
		done <- err
	}()
	tp.append(t, bipartite.Edge{U: 2, V: 2})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := f.cfg.Graph.Version(); got != tp.g.Version() {
		t.Fatalf("woken tail applied to version %d, primary at %d", got, tp.g.Version())
	}
}
