// Package replicate is the WAL-shipping replication subsystem behind
// ensemfdetd's read-replica scale-out: one ingest primary feeds any number
// of read-only followers that serve detections from byte-identical state.
//
// The primary side serves four HTTP endpoints over the persist store's
// shippable surface (mounted under /v1/repl/ behind -serve-replication):
//
//	GET /v1/repl/manifest         newest snapshot + segment listing (JSON)
//	GET /v1/repl/snapshot/{name}  one snapshot file, verbatim
//	GET /v1/repl/segment/{name}   one WAL segment, verbatim (acknowledged bytes only)
//	GET /v1/repl/tail?from=V      long-poll stream of v2-framed records with version > V
//
// The follower side boots read-only against a primary URL: it recovers from
// its local data directory when one holds state, bootstraps by downloading
// the snapshot + segments otherwise (or seeds its graph straight from the
// snapshot body when it has no disk at all), then tails continuously,
// applying records through the stream graph's version-exact replay
// primitives. Because stream snapshots are canonical — byte-identical for a
// given live edge set regardless of shard count or arrival order — a
// follower at version V serves exactly the primary's votes at V.
//
// Consistency: the tail carries the durable history only. Versions a
// degraded primary committed in memory while its WAL rejected writes never
// appear as records; they reach followers through the healing snapshot,
// which raises the truncation floor, turns the next tail request into 410
// Gone, and pushes the follower through a snapshot resync.
package replicate

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"ensemfdet/internal/persist"
)

// Tail response headers: the highest record version included, the primary's
// current graph version (the follower's lag reference, present on empty
// responses too), and the record count. hdrEpoch travels both ways: every
// replication response carries the primary's failover epoch, and every
// follower request carries the follower's — which is how a deposed primary
// learns it has been deposed without any coordinator (a follower that
// adopted a higher term keeps gossiping it back on its next request).
const (
	hdrLastVersion    = "X-Repl-Last-Version"
	hdrPrimaryVersion = "X-Repl-Primary-Version"
	hdrRecords        = "X-Repl-Records"
	hdrEpoch          = "X-Repl-Epoch"
)

// PrimaryConfig configures the serving half.
type PrimaryConfig struct {
	// Store is the durability store whose WAL and snapshots are shipped.
	Store *persist.Store
	// Version reports the primary's current graph version (stamped on tail
	// responses so followers can measure lag).
	Version func() uint64
	// MaxChunkBytes caps one tail response (0 → 4MB). Followers loop.
	MaxChunkBytes int64
	// MaxWait caps a tail long-poll (0 → 25s); Poll is the idle re-check
	// period while waiting (0 → 25ms).
	MaxWait time.Duration
	Poll    time.Duration
	// OnHigherEpoch, when non-nil, runs after the built-in self-fence when a
	// follower request advertises an epoch above this primary's — the moment
	// a deposed primary learns a follower was promoted. The store has
	// already adopted the higher epoch (dropping write ownership) before the
	// callback fires.
	OnHigherEpoch func(epoch uint64)
	// Logf receives shipping warnings (nil → log.Printf).
	Logf func(string, ...any)
}

func (c PrimaryConfig) maxChunkBytes() int64 {
	if c.MaxChunkBytes <= 0 {
		return 4 << 20
	}
	return c.MaxChunkBytes
}

func (c PrimaryConfig) maxWait() time.Duration {
	if c.MaxWait <= 0 {
		return 25 * time.Second
	}
	return c.MaxWait
}

func (c PrimaryConfig) poll() time.Duration {
	if c.Poll <= 0 {
		return 25 * time.Millisecond
	}
	return c.Poll
}

func (c PrimaryConfig) logf() func(string, ...any) {
	if c.Logf == nil {
		return log.Printf
	}
	return c.Logf
}

// Primary serves the replication endpoints. Safe for concurrent use.
type Primary struct {
	cfg  PrimaryConfig
	logf func(string, ...any)

	manifests    atomic.Uint64
	tailRequests atomic.Uint64
	tailRecords  atomic.Uint64
	tailBytes    atomic.Uint64
	filesShipped atomic.Uint64
	fileBytes    atomic.Uint64
	epochFences  atomic.Uint64
}

// epoch is the term this serving half stamps on every response.
func (p *Primary) epoch() uint64 {
	e, _, _ := p.cfg.Store.Epoch()
	return e
}

// observeEpoch inspects the follower's advertised epoch on an incoming
// replication request. A higher term is proof positive that a promotion
// happened elsewhere: this primary immediately and durably adopts the term
// (losing write ownership — the fail-stop half of fencing), so it can never
// again acknowledge local ingest, then notifies OnHigherEpoch. Serving
// replication reads continues: the shipped history below the fork is still
// valid, and a lagging follower may need it.
func (p *Primary) observeEpoch(r *http.Request) {
	raw := r.Header.Get(hdrEpoch)
	if raw == "" {
		return
	}
	remote, err := strconv.ParseUint(raw, 10, 64)
	if err != nil || remote <= p.epoch() {
		return
	}
	p.epochFences.Add(1)
	if err := p.cfg.Store.AdoptEpoch(remote, 0); err != nil {
		p.logf("replicate: adopting epoch %d observed from %s: %v", remote, r.RemoteAddr, err)
		return
	}
	p.logf("replicate: fenced — follower %s advertises epoch %d; local writes now rejected", r.RemoteAddr, remote)
	if p.cfg.OnHigherEpoch != nil {
		p.cfg.OnHigherEpoch(remote)
	}
}

// NewPrimary returns the serving half over cfg.Store; it panics on a nil
// store or version source, which are wiring bugs, not runtime conditions.
func NewPrimary(cfg PrimaryConfig) *Primary {
	if cfg.Store == nil || cfg.Version == nil {
		panic("replicate: PrimaryConfig needs Store and Version")
	}
	return &Primary{cfg: cfg, logf: cfg.logf()}
}

// Manifest is the bootstrap listing a follower downloads from: the persist
// store's shippable state plus the primary's current graph version.
type Manifest struct {
	Version uint64 `json:"version"`
	persist.Manifest
}

// Handler returns the replication routes on their absolute /v1/repl/ paths,
// ready to mount on the daemon mux (or serve alone in tests).
func (p *Primary) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/repl/manifest", p.handleManifest)
	mux.HandleFunc("GET /v1/repl/snapshot/{name}", func(w http.ResponseWriter, r *http.Request) {
		p.handleFile(w, r, p.cfg.Store.OpenSnapshotFile)
	})
	mux.HandleFunc("GET /v1/repl/segment/{name}", func(w http.ResponseWriter, r *http.Request) {
		p.handleFile(w, r, p.cfg.Store.OpenSegmentFile)
	})
	mux.HandleFunc("GET /v1/repl/tail", p.handleTail)
	return mux
}

func (p *Primary) handleManifest(w http.ResponseWriter, r *http.Request) {
	p.observeEpoch(r)
	m, err := p.cfg.Store.Manifest()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	p.manifests.Add(1)
	w.Header().Set(hdrPrimaryVersion, strconv.FormatUint(p.cfg.Version(), 10))
	w.Header().Set(hdrEpoch, strconv.FormatUint(m.Epoch, 10))
	writeJSON(w, http.StatusOK, Manifest{Version: p.cfg.Version(), Manifest: m})
}

// handleFile streams one snapshot or segment verbatim. The open callback
// (which validates the name and re-derives the path) pins the readable size,
// so a segment racing new appends still ships a clean prefix.
func (p *Primary) handleFile(w http.ResponseWriter, r *http.Request, open func(string) (io.ReadCloser, int64, error)) {
	p.observeEpoch(r)
	w.Header().Set(hdrEpoch, strconv.FormatUint(p.epoch(), 10))
	rc, size, err := open(r.PathValue("name"))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, os.ErrNotExist) {
			status = http.StatusNotFound
		}
		httpError(w, status, err)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	n, err := io.Copy(w, rc)
	if err != nil {
		p.logf("replicate: shipping %s: %v", r.URL.Path, err)
	}
	p.filesShipped.Add(1)
	p.fileBytes.Add(uint64(n))
}

// handleTail long-polls for records past ?from=V: it answers immediately
// when the log already holds newer records, otherwise re-checks every Poll
// until ?wait= (capped at MaxWait) elapses, then returns 204 with the
// primary's version header so an idle follower still refreshes its lag
// reference. A from below the truncation floor is 410 Gone: the follower
// must resync from a snapshot.
func (p *Primary) handleTail(w http.ResponseWriter, r *http.Request) {
	p.tailRequests.Add(1)
	p.observeEpoch(r)
	w.Header().Set(hdrEpoch, strconv.FormatUint(p.epoch(), 10))
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad from: %w", err))
		return
	}
	wait := p.cfg.maxWait()
	if s := r.URL.Query().Get("wait"); s != "" {
		ms, err := strconv.ParseInt(s, 10, 64)
		if err != nil || ms < 0 {
			httpError(w, http.StatusBadRequest, errors.New("bad wait: want non-negative milliseconds"))
			return
		}
		if d := time.Duration(ms) * time.Millisecond; d < wait {
			wait = d
		}
	}

	deadline := time.Now().Add(wait)
	for {
		payload, last, n, err := p.cfg.Store.TailSince(from, p.cfg.maxChunkBytes())
		switch {
		case errors.Is(err, persist.ErrTailGone):
			w.Header().Set(hdrPrimaryVersion, strconv.FormatUint(p.cfg.Version(), 10))
			httpError(w, http.StatusGone, err)
			return
		case err != nil:
			httpError(w, http.StatusInternalServerError, err)
			return
		case n > 0:
			p.tailRecords.Add(uint64(n))
			p.tailBytes.Add(uint64(len(payload)))
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set(hdrLastVersion, strconv.FormatUint(last, 10))
			w.Header().Set(hdrPrimaryVersion, strconv.FormatUint(p.cfg.Version(), 10))
			w.Header().Set(hdrRecords, strconv.Itoa(n))
			w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
			if _, err := w.Write(payload); err != nil {
				p.logf("replicate: tail write to %s: %v", r.RemoteAddr, err)
			}
			return
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			w.Header().Set(hdrPrimaryVersion, strconv.FormatUint(p.cfg.Version(), 10))
			w.WriteHeader(http.StatusNoContent)
			return
		}
		poll := p.cfg.poll()
		if poll > remaining {
			poll = remaining
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(poll):
		}
	}
}

// PrimaryStats is the primary-side replication summary for /v1/stats and
// the ensemfdetd_repl_* metrics.
type PrimaryStats struct {
	Manifests    uint64 `json:"manifests"`
	TailRequests uint64 `json:"tail_requests"`
	TailRecords  uint64 `json:"tail_records"`
	TailBytes    uint64 `json:"tail_bytes"`
	FilesShipped uint64 `json:"files_shipped"`
	FileBytes    uint64 `json:"file_bytes"`
	// EpochFences counts requests that advertised a higher epoch than ours —
	// each one is an observation that this node was deposed.
	EpochFences uint64 `json:"epoch_fences"`
}

// Stats returns current shipping counters.
func (p *Primary) Stats() PrimaryStats {
	return PrimaryStats{
		Manifests:    p.manifests.Load(),
		TailRequests: p.tailRequests.Load(),
		TailRecords:  p.tailRecords.Load(),
		TailBytes:    p.tailBytes.Load(),
		FilesShipped: p.filesShipped.Load(),
		FileBytes:    p.fileBytes.Load(),
		EpochFences:  p.epochFences.Load(),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
