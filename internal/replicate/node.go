package replicate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ensemfdet/internal/persist"
	"ensemfdet/internal/stream"
)

// NodeConfig configures a failover-capable replica node.
type NodeConfig struct {
	// Store is required: promotion is only meaningful when the epoch fence
	// can be made durable before the first write of the new term.
	Store *persist.Store
	// Graph is the node's stream graph, shared with the serving engine.
	Graph *stream.Graph
	// Client, WaitMS, RetryMin, RetryMax configure the tailing half (see
	// FollowerConfig).
	Client   *http.Client
	WaitMS   int
	RetryMin time.Duration
	RetryMax time.Duration
	// MaxChunkBytes, MaxWait, Poll configure the serving half after a
	// promotion (see PrimaryConfig).
	MaxChunkBytes int64
	MaxWait       time.Duration
	Poll          time.Duration
	// MaxLag is the readiness lag bound while following (see Follower.Ready).
	MaxLag uint64
	// FlushCache runs after any state change that can move the graph version
	// backwards (epoch-boundary resyncs).
	FlushCache func()
	// Inject, when non-nil, is consulted at the promotion crash-points
	// ("promote.pre-fence", "promote.post-fence"); a non-nil return aborts
	// the promotion at exactly the state a crash there would leave behind.
	Inject func(point string) error
	// Logf receives role-transition and replication logs (nil → log.Printf).
	Logf func(string, ...any)
}

// servingHalf pairs a promoted Primary with its built handler so ReplHandler
// can delegate without rebuilding the mux per request.
type servingHalf struct {
	p *Primary
	h http.Handler
}

// Node is the failover role manager: a daemon process that starts as a
// follower, can be promoted to primary at runtime (POST /v1/admin/promote),
// and can be re-pointed at a different primary (POST /v1/admin/follow). It
// owns the tailing goroutine's lifecycle and exposes the role-dependent
// readiness and replication-serving surfaces the HTTP layer mounts.
//
// The promotion sequence is ordered so the fencing guarantee holds at every
// crash-point: (1) stop tailing — no record from the old timeline lands
// after this; (2) fsync the epoch fence with write ownership, which is the
// commit point of the promotion; (3) journal the fence record so tailing
// followers and boot-time recovery learn the term; (4) attach the WAL
// journal to the graph and start serving replication. A crash before (2)
// reboots as the follower it was; a crash after (2) reboots as the owned
// primary of the new term.
type Node struct {
	cfg  NodeConfig
	logf func(string, ...any)

	mu        sync.Mutex // serializes role transitions
	cancel    context.CancelFunc
	done      chan struct{}
	follower  atomic.Pointer[Follower]
	serving   atomic.Pointer[servingHalf]
	isPrimary atomic.Bool
	promoting atomic.Bool

	promotions atomic.Uint64
	repoints   atomic.Uint64
}

// NewNode validates the wiring and returns a node with no role yet; call
// Follow to start tailing (or Promote to claim the primary role directly).
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Store == nil || cfg.Graph == nil {
		return nil, errors.New("replicate: NodeConfig needs Store and Graph")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = PrimaryConfig{}.logf()
	}
	return &Node{cfg: cfg, logf: logf}, nil
}

func (n *Node) inject(point string) error {
	if n.cfg.Inject == nil {
		return nil
	}
	return n.cfg.Inject(point)
}

// Follow (re-)points the node at primaryURL: any current tail is stopped,
// a fresh follower bootstraps against the new primary (a no-op beyond the
// lag reference when local state exists — the epoch machinery reconciles a
// forked history on the first tail exchange), and tailing resumes in the
// background. It refuses on a promoted node: demoting a primary requires a
// restart, so the decision to abandon write ownership is never one HTTP
// request away.
func (n *Node) Follow(ctx context.Context, primaryURL string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.isPrimary.Load() {
		return errors.New("replicate: node is primary; restart it as a follower to demote")
	}
	f, err := NewFollower(FollowerConfig{
		Primary:    primaryURL,
		Graph:      n.cfg.Graph,
		Store:      n.cfg.Store,
		Client:     n.cfg.Client,
		WaitMS:     n.cfg.WaitMS,
		RetryMin:   n.cfg.RetryMin,
		RetryMax:   n.cfg.RetryMax,
		FlushCache: n.cfg.FlushCache,
		Logf:       n.cfg.Logf,
	})
	if err != nil {
		return err
	}
	n.stopTailingLocked()
	if err := f.Bootstrap(ctx); err != nil {
		return fmt.Errorf("replicate: bootstrapping against %s: %w", primaryURL, err)
	}
	runCtx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	n.cancel, n.done = cancel, done
	n.follower.Store(f)
	go func() {
		defer close(done)
		_ = f.Run(runCtx)
	}()
	n.repoints.Add(1)
	n.logf("replicate: following %s (epoch %d, version %d)", f.base, f.epoch(), n.cfg.Graph.Version())
	return nil
}

func (n *Node) stopTailingLocked() {
	if n.cancel != nil {
		n.cancel()
		<-n.done
		n.cancel, n.done = nil, nil
	}
	n.follower.Store(nil)
}

// Promote claims the next epoch for this node and switches it to the
// primary role, returning the new term. Promoting an already-promoted node
// is an idempotent success (retried admin calls must not mint extra terms).
// On a crash-point abort the node deliberately stays not-ready — exactly
// like the process crash it simulates — until rebooted or re-promoted.
func (n *Node) Promote() (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.isPrimary.Load() {
		epoch, _, _ := n.cfg.Store.Epoch()
		return epoch, nil
	}
	n.promoting.Store(true)
	n.stopTailingLocked()
	if err := n.inject("promote.pre-fence"); err != nil {
		return 0, fmt.Errorf("replicate: promote aborted before fence: %w", err)
	}
	cur, _, _ := n.cfg.Store.Epoch()
	epoch := cur + 1
	start := n.cfg.Graph.Version() + 1
	if err := n.cfg.Store.PromoteEpoch(epoch, start); err != nil {
		return 0, fmt.Errorf("replicate: fencing epoch %d: %w", epoch, err)
	}
	n.cfg.Graph.AdvanceVersionTo(start)
	if err := n.inject("promote.post-fence"); err != nil {
		return 0, fmt.Errorf("replicate: promote aborted after fence (epoch %d is durable): %w", epoch, err)
	}
	n.finishPromotionLocked(epoch)
	n.logf("replicate: promoted to primary at epoch %d (fence at version %d)", epoch, start)
	return epoch, nil
}

// BecomePrimary adopts the primary role without minting a new epoch — the
// boot path for a node whose store already owns its term (a promoted node
// restarting, or a fresh pre-epoch primary).
func (n *Node) BecomePrimary() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.isPrimary.Load() {
		return nil
	}
	if _, _, owned := n.cfg.Store.Epoch(); !owned {
		epoch, _, _ := n.cfg.Store.Epoch()
		return fmt.Errorf("replicate: store does not own epoch %d; promote instead", epoch)
	}
	n.stopTailingLocked()
	epoch, _, _ := n.cfg.Store.Epoch()
	n.finishPromotionLocked(epoch)
	return nil
}

func (n *Node) finishPromotionLocked(epoch uint64) {
	// Primaries tee local ingest into the WAL; the graph carried no journal
	// while following (records were re-journaled by the apply path).
	n.cfg.Graph.SetJournal(n.cfg.Store)
	p := NewPrimary(PrimaryConfig{
		Store:         n.cfg.Store,
		Version:       n.cfg.Graph.Version,
		MaxChunkBytes: n.cfg.MaxChunkBytes,
		MaxWait:       n.cfg.MaxWait,
		Poll:          n.cfg.Poll,
		Logf:          n.cfg.Logf,
	})
	n.serving.Store(&servingHalf{p: p, h: p.Handler()})
	n.isPrimary.Store(true)
	n.promoting.Store(false)
	n.promotions.Add(1)
}

// Close stops the tailing goroutine, if any.
func (n *Node) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopTailingLocked()
}

// Role reports "primary", "follower", or "promoting".
func (n *Node) Role() string {
	switch {
	case n.promoting.Load():
		return "promoting"
	case n.isPrimary.Load():
		return "primary"
	default:
		return "follower"
	}
}

// Epoch is the node's current failover term.
func (n *Node) Epoch() uint64 {
	e, _, _ := n.cfg.Store.Epoch()
	return e
}

// Follower returns the tailing half while following (nil otherwise);
// Primary returns the serving half once promoted (nil otherwise).
func (n *Node) Follower() *Follower { return n.follower.Load() }
func (n *Node) Primary() *Primary {
	if s := n.serving.Load(); s != nil {
		return s.p
	}
	return nil
}

// Promotions counts successful promotions since the process started.
func (n *Node) Promotions() uint64 { return n.promotions.Load() }

// PrimaryURL reports the URL this node is currently tailing, or "" when it
// is not following anyone (promoted, or mid-transition).
func (n *Node) PrimaryURL() string {
	if f := n.follower.Load(); f != nil {
		return f.base
	}
	return ""
}

// Ready implements the /readyz contract across role transitions. The
// mid-promote window reports not-ready: between stopping the tail and the
// fence fsync the node is neither a current follower nor a primary anyone
// may write to, and load balancers must not route to it.
func (n *Node) Ready() (bool, string) {
	if n.promoting.Load() {
		return false, "promotion in progress: epoch fence not yet durable"
	}
	if n.isPrimary.Load() {
		return true, ""
	}
	if f := n.follower.Load(); f != nil {
		return f.Ready(n.cfg.MaxLag)
	}
	return false, "not following any primary"
}

// ReplHandler serves the /v1/repl/ surface: delegated to the promoted
// serving half, 503 while still a follower (a follower's log is not
// authoritative — replicas must chain from the primary).
func (n *Node) ReplHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s := n.serving.Load(); s != nil {
			s.h.ServeHTTP(w, r)
			return
		}
		httpError(w, http.StatusServiceUnavailable, errors.New("not primary: this node does not serve replication"))
	})
}

// AdminHandler serves the failover control surface on absolute paths:
//
//	POST /v1/admin/promote  claim the next epoch and become primary
//	POST /v1/admin/follow   {"primary": "http://host:port"} re-point the tail
func (n *Node) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/admin/promote", func(w http.ResponseWriter, r *http.Request) {
		epoch, err := n.Promote()
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"role":    n.Role(),
			"epoch":   epoch,
			"version": n.cfg.Graph.Version(),
		})
	})
	mux.HandleFunc("POST /v1/admin/follow", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Primary string `json:"primary"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
			return
		}
		if strings.TrimSpace(body.Primary) == "" {
			httpError(w, http.StatusBadRequest, errors.New(`bad body: "primary" URL required`))
			return
		}
		if err := n.Follow(r.Context(), body.Primary); err != nil {
			status := http.StatusBadGateway
			if n.isPrimary.Load() {
				status = http.StatusConflict
			}
			httpError(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"role":    n.Role(),
			"primary": body.Primary,
			"epoch":   n.Epoch(),
			"version": n.cfg.Graph.Version(),
		})
	})
	return mux
}
