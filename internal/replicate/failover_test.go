package replicate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/faultinject"
	"ensemfdet/internal/persist"
	"ensemfdet/internal/stream"
)

// TestClassifyEpoch is the table for the one function every fencing decision
// funnels through: what a follower at (localEpoch, localVersion) does with a
// response from a node at respEpoch whose term began at epochStart.
func TestClassifyEpoch(t *testing.T) {
	cases := []struct {
		name                    string
		localEpoch, respEpoch   uint64
		localVersion, respStart uint64
		want                    EpochAction
	}{
		{"both pre-epoch", 0, 0, 10, 0, EpochOK},
		{"equal terms", 3, 3, 10, 5, EpochOK},
		// Equal epoch with the follower behind in versions is still OK — the
		// tail closes a version gap, terms are what fence.
		{"equal epoch, follower behind", 2, 2, 4, 2, EpochOK},
		{"stale responder (deposed primary)", 2, 1, 10, 0, EpochStale},
		{"stale responder, far behind", 5, 0, 0, 0, EpochStale},
		// History strictly before the new term's first version is a shared
		// prefix — adopt in place, keep tailing.
		{"newer term, shared prefix", 0, 1, 7, 8, EpochAdopt},
		{"newer term after reboot, shared prefix", 1, 3, 9, 10, EpochAdopt},
		// Holding versions at/past the boundary means those versions may
		// belong to the abandoned timeline — forced resync.
		{"newer term, at the boundary", 0, 1, 8, 8, EpochResync},
		{"newer term, past the boundary (forked)", 0, 1, 12, 8, EpochResync},
		// Epoch skew across a reboot: the node slept through several terms;
		// the classification only depends on the current boundary.
		{"epoch skew across reboot, forked", 1, 4, 20, 15, EpochResync},
		// An unknown boundary can never prove a shared prefix.
		{"newer term, unknown boundary", 0, 2, 0, 0, EpochResync},
	}
	for _, tc := range cases {
		if got := ClassifyEpoch(tc.localEpoch, tc.respEpoch, tc.localVersion, tc.respStart); got != tc.want {
			t.Errorf("%s: ClassifyEpoch(%d,%d,%d,%d) = %v, want %v",
				tc.name, tc.localEpoch, tc.respEpoch, tc.localVersion, tc.respStart, got, tc.want)
		}
	}
	for _, a := range []EpochAction{EpochOK, EpochStale, EpochAdopt, EpochResync, EpochAction(99)} {
		if a.String() == "" {
			t.Errorf("EpochAction(%d) has no String form", int(a))
		}
	}
}

// testNode is a durable failover-capable replica under test: data dir,
// store, graph, role manager, and an httptest server exposing the node's
// replication + admin surfaces (what a promoted node serves its peers).
type testNode struct {
	dir string
	g   *stream.Graph
	st  *persist.Store
	n   *Node
	srv *httptest.Server
}

// newTestNode boots a node over dir (bootstrapping from primaryURL when the
// dir is empty), exactly as cmd/ensemfdetd wires a durable follower.
func newTestNode(t *testing.T, dir, primaryURL string, cfg NodeConfig) *testNode {
	t.Helper()
	ctx := context.Background()
	if primaryURL != "" && NeedsBootstrap(dir) {
		if err := DownloadInto(ctx, nil, primaryURL, dir, t.Logf); err != nil {
			t.Fatal(err)
		}
	}
	st, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncNever, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	g := stream.NewSharded(2)
	if _, err := st.Recover(g); err != nil {
		t.Fatal(err)
	}
	st.SetSource(g)
	cfg.Store, cfg.Graph = st, g
	if cfg.WaitMS == 0 {
		cfg.WaitMS = 50
	}
	if cfg.RetryMin == 0 {
		cfg.RetryMin = 2 * time.Millisecond
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = 50 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("GET /v1/repl/", n.ReplHandler())
	mux.Handle("POST /v1/admin/", n.AdminHandler())
	srv := httptest.NewServer(mux)
	tn := &testNode{dir: dir, g: g, st: st, n: n, srv: srv}
	t.Cleanup(func() { srv.Close(); n.Close(); st.Close() })
	if primaryURL != "" {
		if err := n.Follow(ctx, primaryURL); err != nil {
			t.Fatal(err)
		}
	}
	return tn
}

// waitVersion polls until g reaches at least v; the background tailer owns
// the apply path, so drills observe convergence instead of driving it.
func waitVersion(t *testing.T, g *stream.Graph, v uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.Version() < v {
		if time.Now().After(deadline) {
			t.Fatalf("graph stuck at version %d, want ≥ %d", g.Version(), v)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitEpoch polls until the node adopts at least the given term.
func waitEpoch(t *testing.T, n *Node, epoch uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for n.Epoch() < epoch {
		if time.Now().After(deadline) {
			t.Fatalf("node stuck at epoch %d, want ≥ %d", n.Epoch(), epoch)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFailoverDrillKillThePrimary is the full in-process drill the CI smoke
// re-runs across real processes: churn through a primary with two durable
// followers, kill the primary mid-churn after it acknowledged writes the
// followers never saw (a forked history), promote follower A, re-point
// follower B at A, continue churn, reboot the old primary as a follower of A,
// and require all three graphs byte-identical — with the old primary durably
// fenced so it can never acknowledge a write again.
func TestFailoverDrillKillThePrimary(t *testing.T) {
	// The primary is assembled by hand (not newTestPrimary) so the drill can
	// abandon its store without Close — that is what kill -9 leaves behind.
	pDir := t.TempDir()
	pStore, err := persist.Open(pDir, persist.Options{Fsync: persist.FsyncNever, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	pGraph := stream.NewSharded(4)
	if _, err := pStore.Recover(pGraph); err != nil {
		t.Fatal(err)
	}
	pGraph.SetJournal(pStore)
	pStore.SetSource(pGraph)
	pPrimary := NewPrimary(PrimaryConfig{Store: pStore, Version: pGraph.Version, Logf: t.Logf})
	pSrv := httptest.NewServer(pPrimary.Handler())

	bs := batches(11, 14, 20)
	for _, b := range bs[:4] {
		if res := pGraph.Append(b); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if err := pStore.Snapshot(); err != nil {
		t.Fatal(err)
	}

	// Follower A tails through a faulty network: dropped requests and a torn
	// tail chunk, seed-driven so a failure replays byte-identically. It must
	// converge anyway — and spend jittered backoff doing it. The rules arm
	// only after the bootstrap handshake: a torn bootstrap is a boot failure
	// by design (the daemon exits and the supervisor retries), not a retry
	// loop, so it is out of scope for the churn drill.
	inj := faultinject.New(42)
	aClient := &http.Client{Transport: &faultinject.Transport{Inj: inj}}
	a := newTestNode(t, t.TempDir(), pSrv.URL, NodeConfig{Client: aClient})
	inj.Arm(faultinject.PointHTTPDrop, faultinject.Rule{Prob: 0.2, Count: 5})
	inj.Arm(faultinject.PointHTTPTorn, faultinject.Rule{Prob: 0.2, Count: 3})
	b := newTestNode(t, t.TempDir(), pSrv.URL, NodeConfig{})

	for _, batch := range bs[4:8] {
		if res := pGraph.Append(batch); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	waitVersion(t, a.g, pGraph.Version())
	waitVersion(t, b.g, pGraph.Version())
	if inj.Hits(faultinject.PointHTTPDrop)+inj.Hits(faultinject.PointHTTPTorn) == 0 {
		t.Fatal("fault injector never fired; the drill did not exercise the faulty network")
	}

	// KILL -9: the serving socket dies first; then the primary acknowledges
	// more batches that no follower will ever see — the forked suffix.
	pSrv.Close()
	forkBase := pGraph.Version()
	for _, batch := range bs[8:11] {
		if res := pGraph.Append(batch); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	// No pStore.Close(): the process is gone, the handles just vanish.

	// Promote A. The fence record takes its own version slot.
	epoch, err := a.n.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("first promotion minted epoch %d, want 1", epoch)
	}
	if a.n.Role() != "primary" {
		t.Fatalf("promoted node reports role %q", a.n.Role())
	}
	if e, start, owned := a.st.Epoch(); e != 1 || !owned || start != forkBase+1 {
		t.Fatalf("fence after promote: epoch=%d start=%d owned=%v, want 1/%d/true", e, start, owned, forkBase+1)
	}
	if got, reason := a.n.Ready(); !got {
		t.Fatalf("promoted node not ready: %s", reason)
	}

	// Re-point B at A; its history is a shared prefix of the new timeline,
	// so the fence record (or manifest classification) adopts the term in
	// place — no resync, nothing rewound.
	if err := b.n.Follow(context.Background(), a.srv.URL); err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, b.n, 1)

	// Churn continues on the new primary (the drill's "writes keep flowing").
	for _, batch := range batches(12, 4, 20) {
		if res := a.g.Append(batch); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	waitVersion(t, b.g, a.g.Version())
	assertIdentical(t, a.g, b.g)
	if b.n.Follower().Stats().EpochResyncs != 0 {
		t.Fatal("shared-prefix follower should have adopted in place, not resynced")
	}

	// Reboot the old primary from its data dir as a follower of A. It
	// recovers the forked suffix (versions past the fence), so it must
	// converge through an epoch-boundary resync — and come out fenced.
	old := newTestNode(t, pDir, a.srv.URL, NodeConfig{})
	if old.g.Version() <= forkBase {
		t.Fatalf("rebooted old primary recovered to %d; the forked suffix (past %d) is missing from the drill", old.g.Version(), forkBase)
	}
	waitEpoch(t, old.n, 1)
	waitVersion(t, old.g, a.g.Version())
	assertIdentical(t, a.g, old.g)
	assertIdentical(t, a.g, b.g)
	if old.n.Follower().Stats().EpochResyncs == 0 {
		t.Fatal("forked old primary converged without an epoch-boundary resync")
	}

	// The fencing guarantee: the deposed primary can never acknowledge a
	// write again — not through its store, not across its own reboot.
	if err := old.st.AppendEdges(old.g.Version()+1, []bipartite.Edge{{U: 1, V: 1}}); !errors.Is(err, persist.ErrFenced) {
		t.Fatalf("deposed primary's store accepted a write: %v", err)
	}
	if e, _, owned := old.st.Epoch(); e != 1 || owned {
		t.Fatalf("deposed primary fence: epoch=%d owned=%v, want 1/false", e, owned)
	}
}

// TestDeposedPrimaryFailStopsOnHigherEpoch pins the coordinator-free
// deposition signal: the moment any request advertises a higher term, a
// running primary durably drops write ownership — before answering — and
// every subsequent local write fails with ErrFenced, while replication reads
// keep working so the new timeline's followers can still chain through it.
func TestDeposedPrimaryFailStopsOnHigherEpoch(t *testing.T) {
	tp := newTestPrimary(t, persist.Options{Fsync: persist.FsyncNever})
	tp.append(t, batches(21, 1, 10)[0]...)

	req, err := http.NewRequest(http.MethodGet, tp.srv.URL+"/v1/repl/manifest", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(hdrEpoch, "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest after deposition: %s (replication reads must keep serving)", resp.Status)
	}
	if got := resp.Header.Get(hdrEpoch); got != "2" {
		t.Fatalf("deposed primary advertises epoch %q, want the adopted 2", got)
	}
	if tp.p.Stats().EpochFences != 1 {
		t.Fatalf("epoch_fences = %d, want 1", tp.p.Stats().EpochFences)
	}
	if e, _, owned := tp.st.Epoch(); e != 2 || owned {
		t.Fatalf("fence after deposition: epoch=%d owned=%v, want 2/false", e, owned)
	}
	// The write path is dead: the graph commits in memory but the journal
	// refuses, surfacing ErrFenced to the ingest caller.
	if res := tp.g.Append([]bipartite.Edge{{U: 900, V: 900}}); !errors.Is(res.Err, persist.ErrFenced) {
		t.Fatalf("deposed primary acknowledged a write: %v", res.Err)
	}
}

// TestFollowerRefusesStaleEpoch pins the stale half of the handshake: a
// follower that has adopted a newer term refuses everything an old-term node
// ships, no matter what records ride in the response.
func TestFollowerRefusesStaleEpoch(t *testing.T) {
	// A stub primary stuck in epoch 1 that would happily ship a record.
	stale := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(hdrEpoch, "1")
		w.Header().Set(hdrPrimaryVersion, "99")
		w.WriteHeader(http.StatusOK)
	}))
	defer stale.Close()

	f, err := NewFollower(FollowerConfig{Primary: stale.URL, Graph: stream.New(), WaitMS: 10, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	f.memEpoch.Store(3)
	if _, err := f.tailOnce(context.Background()); !errors.Is(err, errEpochStale) {
		t.Fatalf("tail from a stale-epoch node returned %v, want errEpochStale", err)
	}
	if f.cfg.Graph.Version() != 0 {
		t.Fatal("stale-epoch response still applied records")
	}
	if f.lastRespEpoch() != 1 {
		t.Fatalf("respEpoch = %d, want 1", f.lastRespEpoch())
	}
}

// TestNodeDoublePromote pins promotion idempotence: a retried admin call must
// not mint an extra term, and the promotion counter reflects one transition.
func TestNodeDoublePromote(t *testing.T) {
	n := newTestNode(t, t.TempDir(), "", NodeConfig{})
	e1, err := n.n.Promote()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := n.n.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 || e1 != 1 {
		t.Fatalf("double promote minted epochs %d then %d, want 1 both times", e1, e2)
	}
	if n.n.Promotions() != 1 {
		t.Fatalf("promotions = %d, want 1", n.n.Promotions())
	}
	// Demotion is not an HTTP request away.
	if err := n.n.Follow(context.Background(), "http://localhost:1"); err == nil {
		t.Fatal("Follow on a primary succeeded; demote must require a restart")
	}
}

// TestNodePromoteCrashPoints drills the two crash-points around the promote
// fsync. Before the fence: nothing durable changed, the node deliberately
// holds not-ready (it is neither follower nor primary), and a retry wins the
// term. After the fence: the epoch is durable with ownership, so the
// "rebooted" node resumes as primary of the term it won — without minting a
// new one.
func TestNodePromoteCrashPoints(t *testing.T) {
	t.Run("pre-fence", func(t *testing.T) {
		inj := faultinject.New(7)
		inj.Arm("promote.pre-fence", faultinject.Rule{Count: 1})
		tn := newTestNode(t, t.TempDir(), "", NodeConfig{Inject: inj.Check})
		if _, err := tn.n.Promote(); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("armed crash-point did not abort: %v", err)
		}
		if e, _, owned := tn.st.Epoch(); e != 0 || !owned {
			t.Fatalf("pre-fence abort changed the fence: epoch=%d owned=%v", e, owned)
		}
		if ready, reason := tn.n.Ready(); ready || reason == "" {
			t.Fatalf("mid-promote node reports ready=%v (%q)", ready, reason)
		}
		if tn.n.Role() != "promoting" {
			t.Fatalf("role = %q, want promoting", tn.n.Role())
		}
		// The rule is spent; the operator's retry completes the promotion.
		if e, err := tn.n.Promote(); err != nil || e != 1 {
			t.Fatalf("retry after pre-fence crash: epoch=%d err=%v", e, err)
		}
	})
	t.Run("post-fence", func(t *testing.T) {
		inj := faultinject.New(7)
		inj.Arm("promote.post-fence", faultinject.Rule{Count: 1})
		dir := t.TempDir()
		tn := newTestNode(t, dir, "", NodeConfig{Inject: inj.Check})
		if _, err := tn.n.Promote(); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("armed crash-point did not abort: %v", err)
		}
		// The fence landed before the crash: epoch 1, owned — the commit
		// point of the promotion survived the process.
		if e, _, owned := tn.st.Epoch(); e != 1 || !owned {
			t.Fatalf("post-fence crash lost the fence: epoch=%d owned=%v", e, owned)
		}
		if ready, _ := tn.n.Ready(); ready {
			t.Fatal("crashed-mid-promote node reports ready")
		}
		tn.n.Close()
		tn.st.Close()
		tn.srv.Close()

		reboot := newTestNode(t, dir, "", NodeConfig{})
		if e, _, owned := reboot.st.Epoch(); e != 1 || !owned {
			t.Fatalf("reboot lost the fence: epoch=%d owned=%v", e, owned)
		}
		if err := reboot.n.BecomePrimary(); err != nil {
			t.Fatal(err)
		}
		if reboot.n.Role() != "primary" || reboot.n.Epoch() != 1 {
			t.Fatalf("rebooted owner: role=%q epoch=%d, want primary/1", reboot.n.Role(), reboot.n.Epoch())
		}
	})
}

// TestNodePromoteDuringInflightTail promotes while the tailer is parked in a
// long poll against the old primary: the in-flight exchange must be cut off
// before the fence, and no record from the old timeline may land after it.
func TestNodePromoteDuringInflightTail(t *testing.T) {
	tp := newTestPrimary(t, persist.Options{Fsync: persist.FsyncNever})
	for _, b := range batches(31, 3, 15) {
		tp.append(t, b...)
	}
	// A long wait guarantees the tail goroutine is inside an exchange when
	// Promote lands.
	tn := newTestNode(t, t.TempDir(), tp.srv.URL, NodeConfig{WaitMS: 20000})
	waitVersion(t, tn.g, tp.g.Version())

	atPromote := tn.g.Version()
	epoch, err := tn.n.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("epoch = %d, want 1", epoch)
	}
	// The fence record occupies exactly one version slot past the promote
	// point; the old primary appending afterwards must not reach this node.
	if got := tn.g.Version(); got != atPromote+1 {
		t.Fatalf("version after promote = %d, want %d (fence slot only)", got, atPromote+1)
	}
	tp.append(t, bipartite.Edge{U: 777, V: 777})
	time.Sleep(20 * time.Millisecond)
	if got := tn.g.Version(); got != atPromote+1 {
		t.Fatalf("old-timeline record landed after the fence: version %d", got)
	}
	if tn.n.Follower() != nil {
		t.Fatal("promoted node still has a live tailing half")
	}
}

// TestAdminHTTPRoundTrip drives the failover control surface the way the CI
// drill does — over HTTP: promote A via POST /v1/admin/promote, re-point B
// via POST /v1/admin/follow, and require byte-identical votes on both.
func TestAdminHTTPRoundTrip(t *testing.T) {
	tp := newTestPrimary(t, persist.Options{Fsync: persist.FsyncNever})
	for _, b := range batches(41, 4, 15) {
		tp.append(t, b...)
	}
	if err := tp.st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	a := newTestNode(t, t.TempDir(), tp.srv.URL, NodeConfig{})
	b := newTestNode(t, t.TempDir(), tp.srv.URL, NodeConfig{})
	waitVersion(t, a.g, tp.g.Version())
	waitVersion(t, b.g, tp.g.Version())
	tp.srv.Close()

	var promoted struct {
		Role    string `json:"role"`
		Epoch   uint64 `json:"epoch"`
		Version uint64 `json:"version"`
	}
	resp, err := http.Post(a.srv.URL+"/v1/admin/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&promoted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || promoted.Role != "primary" || promoted.Epoch != 1 {
		t.Fatalf("promote response: %d %+v", resp.StatusCode, promoted)
	}

	// Bad follow bodies are client errors, not crashes.
	for _, body := range []string{"", `{"primary":""}`, `{"primary":`} {
		resp, err := http.Post(b.srv.URL+"/v1/admin/follow", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("follow with body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err = http.Post(b.srv.URL+"/v1/admin/follow", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"primary":%q}`, a.srv.URL))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow: status %d", resp.StatusCode)
	}
	// A promoted node refuses to be re-pointed.
	resp, err = http.Post(a.srv.URL+"/v1/admin/follow", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"primary":%q}`, b.srv.URL))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("follow on a primary: status %d, want 409", resp.StatusCode)
	}

	for _, batch := range batches(42, 3, 15) {
		if res := a.g.Append(batch); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	waitVersion(t, b.g, a.g.Version())
	assertIdentical(t, a.g, b.g)
	if got := strconv.FormatUint(b.n.Epoch(), 10); got != "1" {
		t.Fatalf("re-pointed follower at epoch %s, want 1", got)
	}
}

// TestFollowerBackoffJitterAndRetryAfter pins the backoff satellite: pause
// jitters into [base/2, base], a primary's Retry-After raises the sleep when
// longer, and every slept nanosecond lands in the BackoffSeconds counter.
func TestFollowerBackoffJitterAndRetryAfter(t *testing.T) {
	f, err := NewFollower(FollowerConfig{Primary: "http://localhost:1", Graph: stream.New(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base := 20 * time.Millisecond
	for i := 0; i < 5; i++ {
		start := time.Now()
		if !f.pause(ctx, base) {
			t.Fatal("pause returned early without cancellation")
		}
		if slept := time.Since(start); slept < base/2-time.Millisecond || slept > base*3 {
			t.Fatalf("pause slept %v, want jittered into [%v, %v]", slept, base/2, base)
		}
	}
	// A Retry-After hint longer than the computed backoff wins — and is
	// consumed (one sleep, not a permanent floor).
	f.retryAfterHint.Store(int64(60 * time.Millisecond))
	start := time.Now()
	f.pause(ctx, base)
	if slept := time.Since(start); slept < 55*time.Millisecond {
		t.Fatalf("Retry-After hint ignored: slept %v, want ≥ ~60ms", slept)
	}
	if hint := f.retryAfterHint.Load(); hint != 0 {
		t.Fatalf("hint not consumed: %d", hint)
	}
	if s := f.Stats().BackoffSeconds; s <= 0 {
		t.Fatalf("BackoffSeconds = %v, want > 0", s)
	}
	// A canceled context cuts the sleep short and reports it.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if f.pause(canceled, time.Minute) {
		t.Fatal("pause ignored a canceled context")
	}
}
