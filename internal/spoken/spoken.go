// Package spoken implements the SPOKEN baseline (Prakash et al., PAKDD'10;
// paper §II and §V-B2): spectral fraud detection from the "eigenspokes"
// pattern. Pairs of singular vectors of real social/transaction graphs show
// axis-aligned spokes in their EE-plots; nodes far out on a spoke — i.e.
// with a large magnitude in some leading singular vector — belong to
// near-cliques and are flagged as suspicious.
//
// The paper runs SPOKEN with 25 components; Config.Components defaults to
// that value.
package spoken

import (
	"math"
	"sort"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/spectral"
)

// DefaultComponents matches the paper's experimental setting (§V-B2).
const DefaultComponents = 25

// Config parameterizes SPOKEN.
type Config struct {
	// Components is the number of leading singular vector pairs inspected;
	// 0 means DefaultComponents.
	Components int
	// PowerIters tunes the underlying randomized SVD; 0 means its default.
	PowerIters int
	// Seed makes the decomposition deterministic.
	Seed int64
}

func (c Config) components() int {
	if c.Components <= 0 {
		return DefaultComponents
	}
	return c.Components
}

// Result carries per-node spoke scores; higher is more suspicious. Scores
// are comparable across nodes of the same side only.
type Result struct {
	UserScores     []float64
	MerchantScores []float64
}

// Score computes eigenspoke scores for every node: the maximum magnitude of
// the node's coordinate across the leading singular vectors. Nodes deep in a
// spoke dominate one singular direction and receive scores near 1; bulk
// nodes spread thinly over all directions and score near 0.
func Score(g *bipartite.Graph, cfg Config) Result {
	res := Result{
		UserScores:     make([]float64, g.NumUsers()),
		MerchantScores: make([]float64, g.NumMerchants()),
	}
	if g.NumEdges() == 0 {
		return res
	}
	svd := spectral.Decompose(g, cfg.components(), cfg.PowerIters, cfg.Seed)
	for c := 0; c < svd.Rank(); c++ {
		if svd.S[c] <= 0 {
			continue
		}
		uc := svd.U.Col(c)
		for u, x := range uc {
			if a := math.Abs(x); a > res.UserScores[u] {
				res.UserScores[u] = a
			}
		}
		vc := svd.V.Col(c)
		for v, x := range vc {
			if a := math.Abs(x); a > res.MerchantScores[v] {
				res.MerchantScores[v] = a
			}
		}
	}
	return res
}

// TopUsers returns the n highest-scoring users, most suspicious first.
func (r Result) TopUsers(n int) []uint32 {
	return topIDs(r.UserScores, n)
}

func topIDs(scores []float64, n int) []uint32 {
	type su struct {
		id uint32
		s  float64
	}
	order := make([]su, len(scores))
	for i, s := range scores {
		order[i] = su{uint32(i), s}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].s != order[j].s {
			return order[i].s > order[j].s
		}
		return order[i].id < order[j].id // deterministic ties
	})
	if n > len(order) {
		n = len(order)
	}
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		out[i] = order[i].id
	}
	return out
}
