package spoken

import (
	"math"
	"math/rand"
	"testing"

	"ensemfdet/internal/bipartite"
)

// spokeGraph plants one dense block (a near-clique, which produces an
// eigenspoke) inside random background traffic.
func spokeGraph(seed int64) (*bipartite.Graph, map[uint32]bool) {
	rng := rand.New(rand.NewSource(seed))
	const bgU, bgV, blockU, blockV = 150, 150, 10, 10
	b := bipartite.NewBuilderSized(bgU+blockU, bgV+blockV, 0)
	for i := 0; i < 450; i++ {
		b.AddEdge(uint32(rng.Intn(bgU)), uint32(rng.Intn(bgV)))
	}
	fraud := make(map[uint32]bool)
	for u := 0; u < blockU; u++ {
		fraud[uint32(bgU+u)] = true
		for v := 0; v < blockV; v++ {
			b.AddEdge(uint32(bgU+u), uint32(bgV+v))
		}
	}
	return b.Build(), fraud
}

func TestScoreRanksSpokeUsersHigh(t *testing.T) {
	g, fraud := spokeGraph(1)
	res := Score(g, Config{Components: 5, Seed: 2})
	// Spectral methods are imprecise (the paper's Fig. 3 finding); require
	// only that the spoke block clearly separates from the background: half
	// the planted users in the top-|fraud| and a higher mean score.
	top := res.TopUsers(len(fraud))
	hits := 0
	for _, u := range top {
		if fraud[u] {
			hits++
		}
	}
	if hits < len(fraud)/2 {
		t.Errorf("top-%d contains %d planted spoke users, want ≥ 50%%", len(fraud), hits)
	}
	var fm, hm float64
	var nf, nh int
	for u, s := range res.UserScores {
		if fraud[uint32(u)] {
			fm += s
			nf++
		} else {
			hm += s
			nh++
		}
	}
	if fm/float64(nf) <= hm/float64(nh) {
		t.Errorf("spoke users mean score %.4f not above background %.4f",
			fm/float64(nf), hm/float64(nh))
	}
}

func TestScoreBoundsAndShape(t *testing.T) {
	g, _ := spokeGraph(3)
	res := Score(g, Config{Components: 4, Seed: 4})
	if len(res.UserScores) != g.NumUsers() || len(res.MerchantScores) != g.NumMerchants() {
		t.Fatal("score vector lengths wrong")
	}
	for u, s := range res.UserScores {
		if s < 0 || s > 1+1e-9 || math.IsNaN(s) {
			t.Fatalf("user %d score %g out of [0,1]", u, s)
		}
	}
}

func TestScoreEmptyGraph(t *testing.T) {
	g := bipartite.NewBuilder().Build()
	res := Score(g, Config{})
	if len(res.UserScores) != 0 || len(res.MerchantScores) != 0 {
		t.Error("empty graph produced scores")
	}
}

func TestScoreDeterministic(t *testing.T) {
	g, _ := spokeGraph(5)
	a := Score(g, Config{Components: 3, Seed: 7})
	b := Score(g, Config{Components: 3, Seed: 7})
	for u := range a.UserScores {
		if a.UserScores[u] != b.UserScores[u] {
			t.Fatal("scores not deterministic")
		}
	}
}

func TestTopUsersClamp(t *testing.T) {
	g, _ := spokeGraph(9)
	res := Score(g, Config{Components: 2, Seed: 1})
	if got := len(res.TopUsers(10_000)); got != g.NumUsers() {
		t.Errorf("TopUsers clamp: %d, want %d", got, g.NumUsers())
	}
}

func TestDefaultComponents(t *testing.T) {
	if (Config{}).components() != DefaultComponents {
		t.Errorf("default components = %d", (Config{}).components())
	}
	if (Config{Components: 7}).components() != 7 {
		t.Error("explicit components ignored")
	}
}
