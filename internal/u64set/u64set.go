// Package u64set implements an open-addressing set of uint64 keys with
// deletion support, built for the stream layer's per-shard edge-dedup sets.
//
// The previous implementation was a map[uint64]struct{} per shard — Go's
// generic map spends ~48 bytes per resident entry (bucket headers, tophash
// bytes, overflow pointers) and cannot release buckets on delete. Edge
// expiry needs deletion anyway (a retired edge must become re-ingestable),
// so the set is a flat power-of-two table of raw keys probed linearly with
// a Fibonacci-scrambled hash: 8 bytes per slot at ≤ 7/8 load, deletions via
// backward-shift compaction (no tombstones, so churn never degrades probe
// lengths), and the whole structure is two allocations regardless of size.
package u64set

// emptySlot marks a free table slot. Key 0 itself is legal — it is tracked
// out of band by hasZero — so the sentinel never collides with user data.
const emptySlot = 0

// minCapacity is the smallest table allocated once the set holds anything.
const minCapacity = 16

// maxLoadNum/maxLoadDen set the resize threshold: grow when occupied slots
// exceed 7/8 of the table. Linear probing stays short well past 3/4; 7/8
// trades a little probe length for per-edge memory, which is what this
// package exists to shrink.
const (
	maxLoadNum = 7
	maxLoadDen = 8
)

// Set is an open-addressing set of uint64 keys. The zero value is an empty
// set ready for use. Not safe for concurrent use; the stream layer guards
// each shard's set with the shard lock.
type Set struct {
	slots   []uint64 // power-of-two table; emptySlot marks a free slot
	n       int      // occupied slots (excludes the zero key)
	hasZero bool
}

// hash scrambles k into a table index. Fibonacci multiply then an xor-fold
// of the high half into the low half, so every input bit reaches the masked
// low bits — the stream's edge keys (user<<32|merchant) are sequential-ish
// on both halves and would cluster under a plain multiplicative low mask.
func hash(k uint64, mask uint64) uint64 {
	h := k * 0x9E3779B97F4A7C15
	return (h ^ h>>32) & mask
}

// New returns a set pre-sized to hold at least hint keys without resizing.
func New(hint int) *Set {
	s := &Set{}
	if hint > 0 {
		s.grow(tableFor(hint))
	}
	return s
}

// tableFor returns the power-of-two table size that keeps n keys under the
// load limit.
func tableFor(n int) int {
	c := minCapacity
	for c*maxLoadNum < n*maxLoadDen {
		c <<= 1
	}
	return c
}

// Len returns the number of keys in the set.
func (s *Set) Len() int {
	if s.hasZero {
		return s.n + 1
	}
	return s.n
}

// Bytes returns the resident size of the table backing array — the number
// the dedup-memory benchmark compares against the map implementation.
func (s *Set) Bytes() int { return 8 * cap(s.slots) }

// Has reports whether k is in the set.
func (s *Set) Has(k uint64) bool {
	if k == emptySlot {
		return s.hasZero
	}
	if len(s.slots) == 0 {
		return false
	}
	mask := uint64(len(s.slots) - 1)
	for i := hash(k, mask); ; i = (i + 1) & mask {
		switch s.slots[i] {
		case k:
			return true
		case emptySlot:
			return false
		}
	}
}

// Add inserts k, reporting whether it was newly added (false = already
// present, the dedup signal).
func (s *Set) Add(k uint64) bool {
	if k == emptySlot {
		if s.hasZero {
			return false
		}
		s.hasZero = true
		return true
	}
	if (s.n+1)*maxLoadDen > len(s.slots)*maxLoadNum {
		s.grow(tableFor(s.n + 1))
	}
	mask := uint64(len(s.slots) - 1)
	for i := hash(k, mask); ; i = (i + 1) & mask {
		switch s.slots[i] {
		case k:
			return false
		case emptySlot:
			s.slots[i] = k
			s.n++
			return true
		}
	}
}

// Delete removes k, reporting whether it was present. Removal compacts the
// probe cluster in place (backward shift), so the table never accumulates
// tombstones under ingest/expiry churn.
func (s *Set) Delete(k uint64) bool {
	if k == emptySlot {
		if !s.hasZero {
			return false
		}
		s.hasZero = false
		return true
	}
	if len(s.slots) == 0 {
		return false
	}
	mask := uint64(len(s.slots) - 1)
	i := hash(k, mask)
	for s.slots[i] != k {
		if s.slots[i] == emptySlot {
			return false
		}
		i = (i + 1) & mask
	}
	s.n--
	// Backward-shift deletion (Knuth 6.4 algorithm R): walk the cluster past
	// i; any key whose home position does not lie in the (cyclic) gap
	// (hole, j] can — and must — fill the hole, or later lookups that probe
	// through the hole would miss it.
	hole := i
	for j := (i + 1) & mask; s.slots[j] != emptySlot; j = (j + 1) & mask {
		home := hash(s.slots[j], mask)
		// "home is cyclically within (hole, j]" ⇔ the key must stay after
		// the hole; otherwise it probed through the hole's position.
		if cyclicBetween(hole, home, j) {
			continue
		}
		s.slots[hole] = s.slots[j]
		hole = j
	}
	s.slots[hole] = emptySlot
	return true
}

// cyclicBetween reports whether lo < x ≤ hi on the ring of table indices.
func cyclicBetween(lo, x, hi uint64) bool {
	if lo <= hi {
		return lo < x && x <= hi
	}
	return lo < x || x <= hi
}

// grow rehashes into a table of newSize slots (a power of two ≥ current).
func (s *Set) grow(newSize int) {
	old := s.slots
	s.slots = make([]uint64, newSize)
	mask := uint64(newSize - 1)
	for _, k := range old {
		if k == emptySlot {
			continue
		}
		i := hash(k, mask)
		for s.slots[i] != emptySlot {
			i = (i + 1) & mask
		}
		s.slots[i] = k
	}
}

// Clear empties the set, keeping the table for reuse.
func (s *Set) Clear() {
	clear(s.slots)
	s.n = 0
	s.hasZero = false
}
