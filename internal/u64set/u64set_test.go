package u64set

import (
	"math/rand"
	"runtime"
	"testing"
)

func TestBasicAddHasDelete(t *testing.T) {
	s := New(0)
	if s.Len() != 0 || s.Has(7) {
		t.Fatal("fresh set not empty")
	}
	if !s.Add(7) || s.Add(7) {
		t.Fatal("Add(7) should be new once")
	}
	if !s.Has(7) || s.Len() != 1 {
		t.Fatalf("after Add(7): Has=%v Len=%d", s.Has(7), s.Len())
	}
	if !s.Delete(7) || s.Delete(7) {
		t.Fatal("Delete(7) should succeed exactly once")
	}
	if s.Has(7) || s.Len() != 0 {
		t.Fatal("7 survived deletion")
	}
}

func TestZeroKey(t *testing.T) {
	s := &Set{} // zero value is usable
	if s.Has(0) || s.Delete(0) {
		t.Fatal("empty set claims to hold the zero key")
	}
	if !s.Add(0) || s.Add(0) {
		t.Fatal("Add(0) should be new once")
	}
	if !s.Has(0) || s.Len() != 1 {
		t.Fatal("zero key not tracked")
	}
	s.Add(1)
	if !s.Delete(0) || s.Has(0) || s.Len() != 1 || !s.Has(1) {
		t.Fatal("deleting the zero key disturbed the set")
	}
}

// TestMatchesMapModel drives the set with a random Add/Delete/Has workload
// and checks every answer against a map — including heavy delete churn over
// a small key space, the access pattern backward-shift deletion must survive.
func TestMatchesMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(0)
	model := map[uint64]struct{}{}
	const space = 512 // small space → constant collisions and re-adds
	for i := 0; i < 200_000; i++ {
		k := uint64(rng.Intn(space))
		if rng.Intn(3) == 0 {
			_, had := model[k]
			delete(model, k)
			if got := s.Delete(k); got != had {
				t.Fatalf("step %d: Delete(%d) = %v, model had %v", i, k, got, had)
			}
		} else {
			_, had := model[k]
			model[k] = struct{}{}
			if got := s.Add(k); got == had {
				t.Fatalf("step %d: Add(%d) = %v, model had %v", i, k, got, had)
			}
		}
		probe := uint64(rng.Intn(space))
		if _, want := model[probe]; s.Has(probe) != want {
			t.Fatalf("step %d: Has(%d) = %v, want %v", i, probe, s.Has(probe), want)
		}
		if s.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, model %d", i, s.Len(), len(model))
		}
	}
	for k := range model {
		if !s.Has(k) {
			t.Fatalf("final sweep: missing %d", k)
		}
	}
}

// TestGrowPreservesKeys fills past several resize thresholds with keys that
// stress the hash (dense sequential, high-bit-only, and mixed edge-shaped
// keys), then verifies membership and full deletion.
func TestGrowPreservesKeys(t *testing.T) {
	s := New(0)
	keys := make([]uint64, 0, 30_000)
	for i := 0; i < 10_000; i++ {
		keys = append(keys, uint64(i))                 // dense low
		keys = append(keys, uint64(i)<<32)             // dense high (user<<32|0)
		keys = append(keys, uint64(i)<<32|uint64(i*7)) // edge-shaped
	}
	for _, k := range keys {
		s.Add(k)
	}
	want := map[uint64]struct{}{}
	for _, k := range keys {
		want[k] = struct{}{}
	}
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	for k := range want {
		if !s.Has(k) {
			t.Fatalf("lost key %#x across growth", k)
		}
	}
	for k := range want {
		if !s.Delete(k) {
			t.Fatalf("Delete(%#x) failed", k)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", s.Len())
	}
}

func TestClear(t *testing.T) {
	s := New(100)
	for i := uint64(0); i < 100; i++ {
		s.Add(i)
	}
	before := s.Bytes()
	s.Clear()
	if s.Len() != 0 || s.Has(5) {
		t.Fatal("Clear left keys behind")
	}
	if s.Bytes() != before {
		t.Fatal("Clear released the table (should keep it for reuse)")
	}
	if !s.Add(5) {
		t.Fatal("set unusable after Clear")
	}
}

func TestNewHintAvoidsResize(t *testing.T) {
	s := New(10_000)
	before := s.Bytes()
	for i := uint64(0); i < 10_000; i++ {
		s.Add(i)
	}
	if s.Bytes() != before {
		t.Fatalf("pre-sized set resized: %d -> %d bytes", before, s.Bytes())
	}
}

// heapInUse returns the live heap after a double GC — coarse, but stable
// enough to compare two dedup-set implementations holding a million keys.
func heapInUse() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// edgeKeys returns n deduplicated edge-shaped keys (user<<32 | merchant).
func edgeKeys(n int) []uint64 {
	rng := rand.New(rand.NewSource(7))
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(rng.Intn(1<<20))<<32 | uint64(rng.Intn(1<<18))
	}
	return out
}

// BenchmarkDedupResidentBytes is the before/after memory comparison behind
// replacing the stream shards' map dedup sets: it loads one million edge
// keys into each implementation and reports resident bytes per key. Run with
// -benchtime=1x; the numbers are memory metrics, not timings.
func BenchmarkDedupResidentBytes(b *testing.B) {
	keys := edgeKeys(1 << 20)
	b.Run("map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base := heapInUse()
			m := make(map[uint64]struct{})
			for _, k := range keys {
				m[k] = struct{}{}
			}
			bytes := float64(heapInUse() - base)
			b.ReportMetric(bytes/float64(len(m)), "bytes/key")
			runtime.KeepAlive(m)
		}
	})
	b.Run("u64set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base := heapInUse()
			s := New(0)
			for _, k := range keys {
				s.Add(k)
			}
			bytes := float64(heapInUse() - base)
			b.ReportMetric(bytes/float64(s.Len()), "bytes/key")
			runtime.KeepAlive(s)
		}
	})
}

// BenchmarkChurn measures steady-state Add+Delete throughput — the expiry
// workload — at a stable size.
func BenchmarkChurn(b *testing.B) {
	keys := edgeKeys(1 << 16)
	s := New(len(keys))
	for _, k := range keys {
		s.Add(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		s.Delete(k)
		s.Add(k)
	}
}
