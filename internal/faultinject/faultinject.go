// Package faultinject is a deterministic, seed-driven fault injector for the
// durability and replication stack. Production code exposes named injection
// points (persist.Options.Inject, the replication Node's crash-points) and
// drill tests arm rules against them: WAL write/fsync errors, snapshot and
// fence write failures, crashes around the promote fsync, and — through
// Transport — dropped, delayed, or torn replication HTTP exchanges.
//
// Every decision an Injector makes flows from its seed, so a failing drill
// replays byte-identically. The zero-value rules are the common cases: an
// armed point with an empty Rule fires on every check.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ErrInjected is the default error returned by a firing point; drills match
// it with errors.Is to tell injected failures from real ones.
var ErrInjected = errors.New("faultinject: injected failure")

// Rule shapes when an armed point fires.
type Rule struct {
	// Prob is the per-check firing probability; 0 means always fire.
	Prob float64
	// After skips the first After checks before the rule may fire.
	After int
	// Count caps total firings; 0 means unlimited.
	Count int
	// Err is the error a firing check returns (nil → ErrInjected, wrapped
	// with the point name).
	Err error
}

type ruleState struct {
	rule   Rule
	checks int
	fired  int
}

// Injector dispatches named injection points. All methods are safe for
// concurrent use, and every method is a no-op on a nil receiver, so
// production code can call Check unconditionally.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	armed map[string]*ruleState
	hits  map[string]int
}

// New returns an injector whose probabilistic decisions derive from seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		armed: make(map[string]*ruleState),
		hits:  make(map[string]int),
	}
}

// Arm installs (or replaces) the rule for a point.
func (in *Injector) Arm(point string, r Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.armed[point] = &ruleState{rule: r}
	in.mu.Unlock()
}

// Disarm removes the rule for a point; its hit count is preserved.
func (in *Injector) Disarm(point string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	delete(in.armed, point)
	in.mu.Unlock()
}

// Check consults the point's rule and returns its error when it fires, nil
// otherwise. Unarmed points never fire.
func (in *Injector) Check(point string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.armed[point]
	if !ok {
		return nil
	}
	st.checks++
	if st.checks <= st.rule.After {
		return nil
	}
	if st.rule.Count > 0 && st.fired >= st.rule.Count {
		return nil
	}
	if st.rule.Prob > 0 && in.rng.Float64() >= st.rule.Prob {
		return nil
	}
	st.fired++
	in.hits[point]++
	if st.rule.Err != nil {
		return st.rule.Err
	}
	return fmt.Errorf("%w at %s", ErrInjected, point)
}

// Hits reports how many times a point has fired since New.
func (in *Injector) Hits(point string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[point]
}

// Transport point names. Drop aborts the exchange before it is sent, Delay
// sleeps before sending, Torn truncates the response body mid-stream — the
// follower then sees exactly what a primary dying mid-chunk produces.
const (
	PointHTTPDrop  = "http.drop"
	PointHTTPDelay = "http.delay"
	PointHTTPTorn  = "http.torn"
)

// Transport wraps an http.RoundTripper with injectable request drops, delays,
// and torn response bodies. Install it as the follower client's Transport to
// drill the tailer against a misbehaving network or a dying primary.
type Transport struct {
	// Base performs the real exchange (nil → http.DefaultTransport).
	Base http.RoundTripper
	// Inj supplies the decisions; a nil injector passes everything through.
	Inj *Injector
	// Delay is how long a firing PointHTTPDelay sleeps (0 → 50ms).
	Delay time.Duration
	// TornAfter is how many body bytes survive a firing PointHTTPTorn
	// (0 → 64).
	TornAfter int64
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := t.Inj.Check(PointHTTPDrop); err != nil {
		return nil, err
	}
	if err := t.Inj.Check(PointHTTPDelay); err != nil {
		d := t.Delay
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		time.Sleep(d)
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if terr := t.Inj.Check(PointHTTPTorn); terr != nil {
		limit := t.TornAfter
		if limit <= 0 {
			limit = 64
		}
		resp.Body = &tornBody{rc: resp.Body, remaining: limit}
		// The declared length no longer matches what the body will deliver,
		// which is precisely the point: the client library surfaces an
		// unexpected-EOF mid-read, like a primary dying mid-chunk.
	}
	return resp, nil
}

// tornBody delivers at most remaining bytes and then fails the read, keeping
// the error distinguishable from a clean EOF.
type tornBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("%w: torn response body", ErrInjected)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == nil && b.remaining <= 0 {
		err = fmt.Errorf("%w: torn response body", ErrInjected)
	}
	return n, err
}

func (b *tornBody) Close() error { return b.rc.Close() }
