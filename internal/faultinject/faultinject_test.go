package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestCheckSemantics pins the Rule knobs one at a time: always-fire,
// skip-the-first-After, cap-at-Count, and the custom error passthrough.
func TestCheckSemantics(t *testing.T) {
	in := New(1)

	in.Arm("always", Rule{})
	for i := 0; i < 3; i++ {
		if err := in.Check("always"); !errors.Is(err, ErrInjected) {
			t.Fatalf("check %d of an empty rule: %v, want ErrInjected", i, err)
		}
	}
	if got := in.Hits("always"); got != 3 {
		t.Fatalf("hits = %d, want 3", got)
	}

	in.Arm("after", Rule{After: 2})
	fired := 0
	for i := 0; i < 5; i++ {
		if in.Check("after") != nil {
			if i < 2 {
				t.Fatalf("After=2 rule fired on check %d", i)
			}
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("After=2 rule fired %d of 5 checks, want 3", fired)
	}

	in.Arm("capped", Rule{Count: 2})
	fired = 0
	for i := 0; i < 5; i++ {
		if in.Check("capped") != nil {
			fired++
		}
	}
	if fired != 2 || in.Hits("capped") != 2 {
		t.Fatalf("Count=2 rule fired %d (hits %d), want 2", fired, in.Hits("capped"))
	}

	sentinel := errors.New("boom")
	in.Arm("custom", Rule{Err: sentinel})
	if err := in.Check("custom"); !errors.Is(err, sentinel) {
		t.Fatalf("custom error: %v, want the sentinel", err)
	}

	if err := in.Check("unarmed"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	in.Disarm("capped")
	if err := in.Check("capped"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if in.Hits("capped") != 2 {
		t.Fatal("disarm erased the hit count")
	}
}

// TestProbIsSeedDeterministic is the replayability guarantee: two injectors
// with the same seed make the identical sequence of probabilistic decisions,
// and a different seed diverges — a failing drill replays byte-identically.
func TestProbIsSeedDeterministic(t *testing.T) {
	sequence := func(seed int64) string {
		in := New(seed)
		in.Arm("p", Rule{Prob: 0.5})
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if in.Check("p") != nil {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	a, b := sequence(42), sequence(42)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "1") || !strings.Contains(a, "0") {
		t.Fatalf("Prob=0.5 produced a degenerate sequence %s", a)
	}
	if c := sequence(43); c == a {
		t.Fatal("different seeds produced the identical sequence")
	}
}

// TestNilInjectorIsInert pins the production contract: every method on a nil
// *Injector is a safe no-op, so un-drilled builds pay no conditional at the
// injection points.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	in.Arm("x", Rule{})
	in.Disarm("x")
	if err := in.Check("x"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if in.Hits("x") != 0 {
		t.Fatal("nil injector counted a hit")
	}
}

// TestTransportFaults drives the three HTTP fault modes through a real
// round-trip: a drop never reaches the server, a delay does but late, and a
// torn body fails mid-read with ErrInjected rather than a clean EOF.
func TestTransportFaults(t *testing.T) {
	const body = "0123456789abcdef0123456789abcdef" // 32 bytes, > TornAfter below
	var served int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		io.WriteString(w, body)
	}))
	defer srv.Close()

	in := New(7)
	client := &http.Client{Transport: &Transport{
		Inj:       in,
		Delay:     20 * time.Millisecond,
		TornAfter: 8,
	}}

	// Unarmed: a clean pass-through.
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(got) != body {
		t.Fatalf("clean exchange: %q, %v", got, err)
	}

	in.Arm(PointHTTPDrop, Rule{Count: 1})
	if _, err := client.Get(srv.URL); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("dropped exchange: %v, want ErrInjected", err)
	}
	if served != 1 {
		t.Fatalf("dropped request reached the server (%d exchanges served)", served)
	}

	in.Arm(PointHTTPDelay, Rule{Count: 1})
	start := time.Now()
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delayed exchange finished in %v, want >= 20ms", d)
	}

	in.Arm(PointHTTPTorn, Rule{Count: 1})
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn body read error: %v, want ErrInjected", err)
	}
	if len(got) > 8 {
		t.Fatalf("torn body delivered %d bytes, want <= 8", len(got))
	}
	if in.Hits(PointHTTPTorn) != 1 {
		t.Fatalf("torn hits = %d, want 1", in.Hits(PointHTTPTorn))
	}
}
