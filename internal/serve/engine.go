// Package serve implements the detection job engine behind the ensemfdetd
// daemon: it turns the batch ensemble of internal/core into a query-serving
// layer over a dynamic internal/stream graph.
//
// The key observation — the one the paper sells as ENSEMFDET's
// practicability edge — is that the expensive parallel phase (sampling +
// FDET + vote aggregation) depends only on the graph and the ensemble
// configuration, never on the vote threshold T. The engine therefore caches
// core.Votes keyed on (graph version, config fingerprint): any threshold
// sweep, top-K ranking, or repeated detect against an unchanged graph is a
// cache hit that costs a map lookup plus an O(nodes) scan. Concurrent
// requests for the same key are single-flighted into one ensemble run, and
// distinct cold keys share a bounded worker pool so a burst of queries
// cannot oversubscribe the host.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/core"
	"ensemfdet/internal/persist"
	"ensemfdet/internal/sampling"
	"ensemfdet/internal/stream"
)

// Params selects one ensemble configuration. The zero value reproduces the
// paper's main setting (RES, N = 80, S = 0.1, seed 0). Two Params that
// normalize to the same values share a cache entry.
type Params struct {
	// Sampler is the structural sampling method name understood by
	// sampling.ByName ("RES", "ONS-user", "ONS-merchant", "TNS"); empty
	// means RES.
	Sampler string
	// NumSamples is the ensemble size N (0 → core.DefaultN).
	NumSamples int
	// SampleRatio is S ∈ (0,1] (0 → core.DefaultS).
	SampleRatio float64
	// Seed fixes the ensemble's randomness.
	Seed int64
	// Parallelism caps the per-run worker pool (0 → GOMAXPROCS). It is
	// deliberately excluded from the cache fingerprint: results are
	// deterministic in it.
	Parallelism int
}

func (p Params) normalize() Params {
	if p.Sampler == "" {
		p.Sampler = "RES"
	}
	if p.NumSamples <= 0 {
		p.NumSamples = core.DefaultN
	}
	if p.SampleRatio <= 0 {
		p.SampleRatio = core.DefaultS
	}
	return p
}

// ErrInvalidParams tags parameter validation failures so transport layers
// can map them to client errors (HTTP 400) via errors.Is.
var ErrInvalidParams = errors.New("invalid detection parameters")

// ErrOverloaded tags batches shed by the bounded ingest queue
// (Options.IngestQueue) so transport layers can map them to 429 +
// Retry-After via errors.Is. A shed batch was never appended; retrying it
// later is safe (and dedup makes even an accidental double-send safe).
var ErrOverloaded = errors.New("ingest queue full")

// Validate checks the sampler name and numeric ranges without touching any
// graph — cheap enough to run before a request body is even fully trusted.
// It inspects the raw (pre-normalization) values so that a negative, huge,
// or NaN sample ratio is rejected rather than silently replaced with the
// default.
func (p Params) Validate() error {
	if _, err := sampling.ByName(p.normalize().Sampler); err != nil {
		return fmt.Errorf("serve: %w: %v", ErrInvalidParams, err)
	}
	if !core.ValidSampleRatio(p.SampleRatio) {
		return fmt.Errorf("serve: %w: sample ratio S must be in (0,1], got %g", ErrInvalidParams, p.SampleRatio)
	}
	if p.NumSamples < 0 || p.NumSamples > MaxEnsembleSize {
		return fmt.Errorf("serve: %w: number of samples N must be in [0,%d], got %d",
			ErrInvalidParams, MaxEnsembleSize, p.NumSamples)
	}
	return nil
}

// MaxEnsembleSize caps the per-request ensemble size N. The paper's largest
// setting is N = 200; the cap exists because ensemble memory and work are
// O(N), and the detect endpoint must not let one request allocate
// per-sample state for an arbitrary N.
const MaxEnsembleSize = 10_000

// Fingerprint returns a canonical string identifying the detection-relevant
// parameters; it is the config half of the vote-cache key.
func (p Params) Fingerprint() string {
	n := p.normalize()
	return n.Sampler + "|N=" + strconv.Itoa(n.NumSamples) +
		"|S=" + strconv.FormatFloat(n.SampleRatio, 'g', -1, 64) +
		"|seed=" + strconv.FormatInt(n.Seed, 10)
}

// Options configures an Engine.
type Options struct {
	// MaxConcurrent bounds how many ensemble runs may execute at once
	// across all cache keys (0 → 2). Each run itself parallelizes over
	// samples, so a small number is usually right.
	MaxConcurrent int
	// MaxCacheEntries bounds the vote cache; the oldest entries are
	// evicted first (0 → 32). Votes cost O(|U|+|V|) ints per entry.
	MaxCacheEntries int
	// MaxNodeID bounds the node ids the ingest path accepts (0 → 1<<26;
	// values above bipartite.MaxNodeID are clamped to it, since CSR offset
	// arithmetic indexes by id+1). Graph and vote memory is proportional
	// to the largest id, not the edge count, so without a cap a single
	// tiny request naming id 2^32-2 would force multi-gigabyte allocations
	// on the next detection.
	MaxNodeID uint32
	// IncrementalMaxDeltaRatio bounds when a run goes incremental instead of
	// cold: the edge churn between the base version and the requested one
	// must be at most this fraction of the snapshot's edges (0 → 0.25,
	// mirroring the stream layer's delta-rebuild threshold; negative
	// disables incremental detection entirely). Past the threshold most
	// samples are dirty anyway and classification is pure overhead.
	IncrementalMaxDeltaRatio float64
	// IngestQueue bounds how many ingest batches may be inside Ingest at
	// once (validating, appending, journaling). When the bound is reached
	// further batches are shed immediately with ErrOverloaded — surfaced by
	// the HTTP layer as 429 + Retry-After — so overload degrades into
	// explicit backpressure instead of ballooning every caller's latency
	// behind the shard and WAL locks. 0 means unbounded (no admission
	// control), preserving the pre-queue behavior.
	IngestQueue int
}

func (o Options) maxConcurrent() int {
	if o.MaxConcurrent <= 0 {
		return 2
	}
	return o.MaxConcurrent
}

func (o Options) maxCacheEntries() int {
	if o.MaxCacheEntries <= 0 {
		return 32
	}
	return o.MaxCacheEntries
}

func (o Options) incrementalMaxDeltaRatio() float64 {
	if o.IncrementalMaxDeltaRatio == 0 {
		return 0.25
	}
	if o.IncrementalMaxDeltaRatio < 0 {
		return 0
	}
	return o.IncrementalMaxDeltaRatio
}

func (o Options) maxNodeID() uint32 {
	if o.MaxNodeID == 0 {
		return 1 << 26
	}
	if o.MaxNodeID > bipartite.MaxNodeID {
		return bipartite.MaxNodeID
	}
	return o.MaxNodeID
}

// MaxNodeID returns the effective ingest id bound (the transport layer
// enforces it per batch).
func (e *Engine) MaxNodeID() uint32 { return e.opts.maxNodeID() }

// Snapshotter is the engine's seam to the dynamic graph: anything that can
// ingest edge batches, report sizes, and hand out immutable versioned
// snapshots can sit behind the engine. *stream.Graph is the production
// implementation; tests can substitute fakes. Implementations may
// additionally expose ShardSizes() []stream.ShardSize and
// BuildStats() stream.BuildStats, which Stats and the metrics endpoint
// surface when present.
type Snapshotter interface {
	Snapshot() (*bipartite.Graph, uint64)
	Append(edges []bipartite.Edge) stream.AppendResult
	Stats() stream.Stats
}

// Windower is the optional windowing extension of Snapshotter: a source that
// can retire edges under a sliding-window policy. *stream.Graph implements
// it; when the engine's source does and a policy is active, the engine
// surfaces window stats/metrics, and Ingest kicks an asynchronous retire
// pass whenever a batch pushes the live count past the MaxEdges bound (age
// bounds are the retire ticker's job — cmd/ensemfdetd runs one).
type Windower interface {
	Retire(now time.Time) stream.RetireResult
	Window() stream.WindowPolicy
	WindowStats() stream.WindowStats
}

// Deltaer is the optional churn-tracking extension of Snapshotter: a source
// that can report which nodes changed between two snapshot versions.
// *stream.Graph implements it; when present, the engine reuses the newest
// completed run per config fingerprint as an incremental base and re-runs
// only the samples the delta dirtied (core.RunIncremental). ok=false from
// Delta — evicted history, a restore, an epoch resync — simply forces a cold
// run.
type Deltaer interface {
	Delta(from, to uint64) (stream.Delta, bool)
}

type cacheKey struct {
	version uint64
	config  string
}

type entry struct {
	done  chan struct{} // closed when votes/err are set
	votes *core.Votes
	err   error
	// out retains the full recorded output while this entry is the newest
	// completed one for its fingerprint — the incremental base. It is
	// released (set nil under the engine lock) when a newer version
	// completes. Only out.Votes and out.Rec remain valid after the run: the
	// scratch-backed per-sample arrays are recycled into later runs.
	out *core.Output
	// Run provenance, fixed before done closes: whether the run reused a
	// base, and how many samples were carried over vs re-executed (a cold
	// run reports 0 / NumSamples).
	incremental   bool
	reused, rerun int
}

// Engine serves detection queries over a dynamic graph from a vote cache.
// It is safe for concurrent use.
type Engine struct {
	src  Snapshotter
	opts Options
	sem  chan struct{} // bounds concurrent ensemble runs

	// arenas is shared by every ensemble run this engine launches: each run
	// draws one arena per worker and returns it afterwards, so scratch
	// state (sampler buffers, remapper tables, peeler state, vote
	// accumulators) persists per worker across requests and graph versions
	// instead of being rebuilt per request. Arenas are pure scratch —
	// results are byte-identical for a fixed seed — so sharing never leaks
	// state between cache keys.
	arenas *core.ArenaPool

	// outScratch recycles the per-run output scaffolding (kˆ array, sample
	// work array, φ-curve spine) across cold runs, one slot per concurrent
	// run. Votes are never pooled — cached entries retain them.
	outScratch chan *core.RunScratch

	mu    sync.Mutex
	cache map[cacheKey]*entry
	order []cacheKey // insertion order, for FIFO eviction
	// latest maps a config fingerprint to the newest completed version with
	// a retained reuse record — the incremental base. Pinned against
	// first-pass eviction; guarded by mu.
	latest map[string]uint64

	hits   atomic.Uint64
	misses atomic.Uint64
	runs   atomic.Uint64 // completed ensemble runs (cold or incremental)

	// delta is the source's churn-tracking seam (nil when the Snapshotter
	// cannot report deltas); the detect counters below split runs by path.
	delta         Deltaer
	incRuns       atomic.Uint64
	coldRuns      atomic.Uint64
	incFallbacks  atomic.Uint64
	samplesReused atomic.Uint64
	samplesRerun  atomic.Uint64
	detectLatency latencyHist

	ingestBatches atomic.Uint64
	ingestEdges   atomic.Uint64 // edges actually added (post-dedup)
	ingestDups    atomic.Uint64

	// ingestSlots is the bounded admission queue (nil when Options.IngestQueue
	// is 0): a batch holds one slot for its whole stay inside Ingest, and a
	// batch that cannot get a slot without blocking is shed.
	ingestSlots chan struct{}
	ingestShed  atomic.Uint64

	// peelRounds totals the peeling rounds executed by completed ensemble
	// runs (cache hits and reused incremental samples add nothing): the
	// detect-path work metric the bucket peeler optimizes.
	peelRounds atomic.Uint64

	// win is the source's windowing seam (nil when the Snapshotter cannot
	// retire). retiring single-flights the post-ingest count-policy kicks;
	// retireWG lets Close join an in-flight kick before tearing down the
	// persistence the retire would journal into.
	win         Windower
	retiring    atomic.Bool
	retireWG    sync.WaitGroup
	retireKicks atomic.Uint64

	// persist, when attached, is the daemon's durability store; the engine
	// only observes it (Stats, /metrics) and closes it on shutdown — the
	// write path reaches it through the stream graph's journal hook.
	persist *persist.Store

	// repl, when attached, reports replication state for Stats and /metrics
	// (primary shipping counters or follower lag, mapped by the daemon).
	repl func() *ReplStats
}

// NewEngine returns an Engine serving detections over src.
func NewEngine(src Snapshotter, opts Options) *Engine {
	e := &Engine{
		src:        src,
		opts:       opts,
		sem:        make(chan struct{}, opts.maxConcurrent()),
		arenas:     core.NewArenaPool(),
		outScratch: make(chan *core.RunScratch, opts.maxConcurrent()),
		cache:      make(map[cacheKey]*entry),
		latest:     make(map[string]uint64),
	}
	e.win, _ = src.(Windower)
	e.delta, _ = src.(Deltaer)
	if opts.IngestQueue > 0 {
		e.ingestSlots = make(chan struct{}, opts.IngestQueue)
	}
	return e
}

// VoteSet is a cached ensemble outcome pinned to the graph version that
// produced it.
type VoteSet struct {
	// Votes is the shared cached vote vector; callers must treat it as
	// read-only.
	Votes *core.Votes
	// GraphVersion is the stream version the ensemble ran against.
	GraphVersion uint64
	// Cached reports whether this request was answered from cache (true)
	// or had to execute the ensemble (false). Requests that coalesce onto
	// another in-flight run count as cached.
	Cached bool
	// Incremental reports whether the run that produced these votes reused a
	// previous version's ensemble record; ReusedSamples/RerunSamples split
	// the ensemble by clean vs dirty classification (a cold run reports
	// 0/NumSamples). Cache hits report the original run's values.
	Incremental   bool
	ReusedSamples int
	RerunSamples  int
}

// Votes returns the ensemble vote counts for the current graph version under
// p, computing them at most once per (version, config) key. Concurrent calls
// with the same key block on a single underlying run. ctx cancels the wait,
// not the computation — an abandoned run still completes and populates the
// cache for the next caller.
func (e *Engine) Votes(ctx context.Context, p Params) (VoteSet, error) {
	if err := p.Validate(); err != nil {
		return VoteSet{}, err
	}
	start := time.Now()
	snap, version := e.src.Snapshot()
	key := cacheKey{version: version, config: p.Fingerprint()}

	e.mu.Lock()
	ent, ok := e.cache[key]
	if ok {
		e.mu.Unlock()
		e.hits.Add(1)
	} else {
		ent = &entry{done: make(chan struct{})}
		// Resolve the incremental base under the same lock as the insert:
		// the insert below can trigger eviction, and at the cache bound the
		// evicted entry may be exactly the base this run is about to resume
		// from. Holding the output pointer through the run keeps it usable
		// even if its cache entry is reclaimed meanwhile.
		var base *core.Output
		var baseVer uint64
		if e.delta != nil && e.opts.incrementalMaxDeltaRatio() > 0 {
			base, baseVer = e.incrementalBaseLocked(key)
		}
		e.cache[key] = ent
		e.order = append(e.order, key)
		e.evictLocked()
		e.mu.Unlock()
		e.misses.Add(1)
		go e.run(key, ent, snap, p, base, baseVer)
	}

	select {
	case <-ent.done:
	case <-ctx.Done():
		return VoteSet{}, ctx.Err()
	}
	if ent.err != nil {
		return VoteSet{}, ent.err
	}
	e.detectLatency.observe(time.Since(start))
	return VoteSet{
		Votes:         ent.votes,
		GraphVersion:  version,
		Cached:        ok,
		Incremental:   ent.incremental,
		ReusedSamples: ent.reused,
		RerunSamples:  ent.rerun,
	}, nil
}

// evictLocked drops the oldest completed cache entries beyond the
// configured bound. In-flight entries are never evicted — dropping one
// would let a repeat request launch a duplicate of a run that is still
// executing — so the cache may transiently exceed the bound while many
// distinct cold keys are computing. Waiters holding an evicted *entry
// still see its result; it just stops being findable.
//
// The newest completed entry per config fingerprint is pinned: it is the
// incremental base for the next graph version, and a strict FIFO sweep would
// evict exactly the entry every future request wants to resume from (the
// latest one) whenever a fingerprint's history fills the cache. Pinned
// entries are only reclaimed in a second pass, when the cache is over bound
// with nothing unpinned left — many distinct fingerprints — so memory stays
// bounded by the configured entry count either way.
func (e *Engine) evictLocked() {
	excess := len(e.order) - e.opts.maxCacheEntries()
	if excess <= 0 {
		return
	}
	kept := e.order[:0]
	for _, k := range e.order {
		ent := e.cache[k]
		if excess > 0 && ent != nil && entryDone(ent) && !e.pinnedLocked(k) {
			delete(e.cache, k)
			excess--
			continue
		}
		kept = append(kept, k)
	}
	e.order = kept
	if excess <= 0 {
		return
	}
	kept = e.order[:0]
	for _, k := range e.order {
		ent := e.cache[k]
		if excess > 0 && ent != nil && entryDone(ent) {
			if e.pinnedLocked(k) {
				delete(e.latest, k.config)
			}
			delete(e.cache, k)
			excess--
			continue
		}
		kept = append(kept, k)
	}
	e.order = kept
}

// pinnedLocked reports whether k is its fingerprint's registered incremental
// base. Caller holds e.mu.
func (e *Engine) pinnedLocked(k cacheKey) bool {
	v, ok := e.latest[k.config]
	return ok && v == k.version
}

// FlushCache drops every cached vote set, including keys with runs still in
// flight (their waiters keep the entry pointer; fresh requests recompute).
// The cache is keyed on the numeric graph version, so it is only coherent
// while versions never repeat — an epoch-boundary resync moves the version
// backwards, after which a re-reached version number names different graph
// content and every pre-resync entry is poison.
func (e *Engine) FlushCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	clear(e.cache)
	e.order = e.order[:0]
	// Incremental bases die with their entries: after a resync the recorded
	// dependencies describe a different graph history, and the stream layer's
	// delta history is reset anyway.
	clear(e.latest)
}

func entryDone(ent *entry) bool {
	select {
	case <-ent.done:
		return true
	default:
		return false
	}
}

func (e *Engine) run(key cacheKey, ent *entry, snap *bipartite.Graph, p Params, base *core.Output, baseVer uint64) {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	defer close(ent.done)
	// A failed run must not be negatively cached: current waiters get the
	// error, but the entry is dropped so the next request retries instead
	// of replaying a possibly transient failure forever on a static graph.
	defer func() {
		if ent.err == nil {
			return
		}
		e.mu.Lock()
		if e.cache[key] == ent {
			delete(e.cache, key)
			for i, k := range e.order {
				if k == key {
					e.order = append(e.order[:i], e.order[i+1:]...)
					break
				}
			}
		}
		e.mu.Unlock()
	}()
	// A panic in the ensemble must surface as a request error, not kill
	// the daemon: this goroutine has no other recover between it and the
	// runtime.
	defer func() {
		if r := recover(); r != nil {
			ent.err = fmt.Errorf("serve: ensemble run panicked: %v", r)
		}
	}()

	n := p.normalize()
	method, err := sampling.ByName(n.Sampler)
	if err != nil {
		ent.err = err
		return
	}
	// Draw a per-run output scratch (kˆ/φ-curve arrays) if one is free; the
	// pool is sized to the concurrency bound, so steady-state cold runs
	// reuse instead of allocating. Only Votes and the reuse record outlive
	// the run — they are the freshly-allocated pieces — so recycling is
	// invisible to callers.
	var rs *core.RunScratch
	select {
	case rs = <-e.outScratch:
	default:
		rs = new(core.RunScratch)
	}
	cfg := core.Config{
		Method:      method,
		NumSamples:  n.NumSamples,
		SampleRatio: n.SampleRatio,
		Seed:        n.Seed,
		Parallelism: p.Parallelism,
		Arenas:      e.arenas,
		Scratch:     rs,
		// Record every run: the per-sample record is what the next version's
		// run resumes from. Non-resumable configs skip recording internally.
		Record: true,
	}

	// Try to resume from the newest completed run of this fingerprint. Any
	// failure to prove reuse — no base, evicted delta history, churn past the
	// threshold, a non-resumable config — falls back to a cold run; votes are
	// byte-identical either way.
	var out *core.Output
	if base != nil {
		if d, dok := e.delta.Delta(baseVer, key.version); dok && e.deltaWithinRatio(d, snap) {
			o, st, ierr := core.RunIncremental(snap, cfg, base, core.DeltaInfo{
				Users:     d.Users,
				Merchants: d.Merchants,
			})
			switch {
			case ierr == nil:
				out = o
				ent.incremental = true
				ent.reused, ent.rerun = st.Reused, st.Rerun
				e.incRuns.Add(1)
				e.samplesReused.Add(uint64(st.Reused))
				e.samplesRerun.Add(uint64(st.Rerun))
			case errors.Is(ierr, core.ErrNotResumable):
				e.incFallbacks.Add(1)
			default:
				select {
				case e.outScratch <- rs:
				default:
				}
				ent.err = ierr
				return
			}
		}
	}
	if out == nil {
		out, err = core.Run(snap, cfg)
		if err == nil {
			e.coldRuns.Add(1)
			ent.rerun = out.Votes.NumSamples
			e.samplesRerun.Add(uint64(out.Votes.NumSamples))
		}
	}
	select {
	case e.outScratch <- rs:
	default:
	}
	if err != nil {
		ent.err = err
		return
	}
	ent.votes = &out.Votes
	e.runs.Add(1)
	e.peelRounds.Add(uint64(out.PeelRounds))
	e.publishBase(key, ent, out)
}

// incrementalBaseLocked returns the retained output of the newest completed
// run with key's fingerprint at an older version, or nil. Caller holds e.mu
// and has already checked that the source is delta-capable.
func (e *Engine) incrementalBaseLocked(key cacheKey) (*core.Output, uint64) {
	baseVer, ok := e.latest[key.config]
	if !ok || baseVer >= key.version {
		return nil, 0
	}
	ent := e.cache[cacheKey{version: baseVer, config: key.config}]
	if ent == nil || !entryDone(ent) || ent.err != nil || ent.out == nil || ent.out.Rec == nil {
		return nil, 0
	}
	return ent.out, baseVer
}

// deltaWithinRatio applies the incremental threshold: the churn between base
// and target must be a small fraction of the snapshot's edges, mirroring the
// stream layer's delta-vs-rebuild decision.
func (e *Engine) deltaWithinRatio(d stream.Delta, snap *bipartite.Graph) bool {
	ne := snap.NumEdges()
	if ne == 0 {
		return false
	}
	return float64(d.EdgesChanged()) <= e.opts.incrementalMaxDeltaRatio()*float64(ne)
}

// publishBase registers a successful run as its fingerprint's incremental
// base if it is the newest, releasing the demoted predecessor's record (its
// votes stay servable). A stale run finishing late — older than the current
// base — keeps nothing.
func (e *Engine) publishBase(key cacheKey, ent *entry, out *core.Output) {
	if out.Rec == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// A run whose entry is no longer in the cache (flushed by an epoch
	// resync, or evicted) must not register: post-resync version numbers
	// restart, and a stale high version in latest would block every
	// new-timeline run from publishing.
	if e.cache[key] != ent {
		return
	}
	cur, ok := e.latest[key.config]
	if ok && cur >= key.version {
		return
	}
	if ok {
		if old := e.cache[cacheKey{version: cur, config: key.config}]; old != nil {
			old.out = nil
		}
	}
	ent.out = out
	e.latest[key.config] = key.version
}

// Detection is a thresholded fraud set served from cached votes.
type Detection struct {
	Users        []uint32
	Merchants    []uint32
	Threshold    int
	NumSamples   int
	GraphVersion uint64
	Cached       bool
	// Incremental, ReusedSamples and RerunSamples describe the run that
	// produced the underlying votes (see VoteSet).
	Incremental   bool
	ReusedSamples int
	RerunSamples  int
}

// Detect answers one MVA query at threshold t. t < 0 picks the paper's
// default N/2; t = 0 is clamped to 1 (a node needs at least one vote to be
// detected) and the clamped value is reported, so the response threshold is
// always the one actually applied. The threshold is applied at query time
// against cached votes, so sweeping t is free once any one threshold has
// been asked.
func (e *Engine) Detect(ctx context.Context, p Params, t int) (Detection, error) {
	vs, err := e.Votes(ctx, p)
	if err != nil {
		return Detection{}, err
	}
	if t < 0 {
		t = vs.Votes.NumSamples / 2
	}
	if t < 1 {
		t = 1
	}
	return Detection{
		Users:         vs.Votes.AcceptUsers(t),
		Merchants:     vs.Votes.AcceptMerchants(t),
		Threshold:     t,
		NumSamples:    vs.Votes.NumSamples,
		GraphVersion:  vs.GraphVersion,
		Cached:        vs.Cached,
		Incremental:   vs.Incremental,
		ReusedSamples: vs.ReusedSamples,
		RerunSamples:  vs.RerunSamples,
	}, nil
}

// NodeVotes pairs a node id with its vote count for ranked output.
type NodeVotes struct {
	ID    uint32 `json:"id"`
	Votes int    `json:"votes"`
}

// rankVotes returns nodes with at least minVotes votes, sorted by votes
// descending then id ascending, truncated to top entries (top <= 0 → all).
func rankVotes(votes []int, minVotes, top int) []NodeVotes {
	if minVotes < 1 {
		minVotes = 1
	}
	out := make([]NodeVotes, 0, 64)
	for id, n := range votes {
		if n >= minVotes {
			out = append(out, NodeVotes{ID: uint32(id), Votes: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Votes != out[j].Votes {
			return out[i].Votes > out[j].Votes
		}
		return out[i].ID < out[j].ID
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}

// Ranking is a ranked vote listing for both sides of the graph.
type Ranking struct {
	Users        []NodeVotes
	Merchants    []NodeVotes
	NumSamples   int
	GraphVersion uint64
	Cached       bool
}

// Rank returns the top-K voted users and merchants with at least minVotes
// votes, served from the same cache as Detect.
func (e *Engine) Rank(ctx context.Context, p Params, minVotes, top int) (Ranking, error) {
	vs, err := e.Votes(ctx, p)
	if err != nil {
		return Ranking{}, err
	}
	return Ranking{
		Users:        rankVotes(vs.Votes.User, minVotes, top),
		Merchants:    rankVotes(vs.Votes.Merchant, minVotes, top),
		NumSamples:   vs.Votes.NumSamples,
		GraphVersion: vs.GraphVersion,
		Cached:       vs.Cached,
	}, nil
}

// Stats is a point-in-time engine and graph summary; the cache counters are
// what lets operators (and the end-to-end tests) verify that threshold
// sweeps do not trigger recomputation. Shards and Build are present when the
// underlying Snapshotter exposes them (the sharded stream graph does).
type Stats struct {
	Graph  stream.Stats       `json:"graph"`
	Shards []stream.ShardSize `json:"shards,omitempty"`
	Build  *stream.BuildStats `json:"build,omitempty"`
	// Window reports the sliding-window policy, watermark and retire
	// counters when the underlying source can window and a policy is active;
	// nil for an unbounded graph.
	Window       *stream.WindowStats `json:"window,omitempty"`
	CacheEntries int                 `json:"cache_entries"`
	CacheHits    uint64              `json:"cache_hits"`
	CacheMisses  uint64              `json:"cache_misses"`
	EnsembleRuns uint64              `json:"ensemble_runs"`
	InFlight     int                 `json:"in_flight"`
	// Detect splits completed ensemble runs by path (incremental vs cold)
	// and counts sample-level reuse; it is how operators verify that small
	// ingest deltas are not paying cold-run latency.
	Detect      DetectStats `json:"detect"`
	IngestStats IngestStats `json:"ingest"`
	// Persist reports WAL and snapshot counters when a durability store is
	// attached; nil for a memory-only daemon.
	Persist *persist.Stats `json:"persist,omitempty"`
	// Repl reports replication state when this daemon ships to or follows
	// another; nil for a standalone daemon.
	Repl *ReplStats `json:"repl,omitempty"`
}

// ReplStats is the transport-neutral replication summary for /v1/stats and
// /metrics; cmd/ensemfdetd maps the replicate package's counters into it so
// serve stays free of a replicate import. Primary-side fields are zero on a
// follower and vice versa.
type ReplStats struct {
	// Role is "primary", "follower", or "promoting" (mid-failover).
	Role string `json:"role"`
	// Epoch is the failover term this node has adopted; Fenced reports a
	// deposed primary — it observed a higher term and rejects local writes.
	Epoch  uint64 `json:"epoch"`
	Fenced bool   `json:"fenced,omitempty"`
	// Promotions counts this process's successful follower→primary
	// transitions.
	Promotions uint64 `json:"promotions,omitempty"`
	// Follower side.
	Primary           string  `json:"primary,omitempty"`
	PrimaryVersion    uint64  `json:"primary_version,omitempty"`
	AppliedVersion    uint64  `json:"applied_version,omitempty"`
	VersionsBehind    uint64  `json:"versions_behind"`
	SecondsBehind     float64 `json:"seconds_behind"`
	RecordsApplied    uint64  `json:"records_applied,omitempty"`
	TombstonesApplied uint64  `json:"tombstones_applied,omitempty"`
	Resyncs           uint64  `json:"resyncs,omitempty"`
	Reconnects        uint64  `json:"reconnects,omitempty"`
	JournalErrors     uint64  `json:"journal_errors,omitempty"`
	EpochAdopts       uint64  `json:"epoch_adopts,omitempty"`
	EpochResyncs      uint64  `json:"epoch_resyncs,omitempty"`
	EpochRejects      uint64  `json:"epoch_rejects,omitempty"`
	BackoffSeconds    float64 `json:"backoff_seconds,omitempty"`
	Ready             bool    `json:"ready"`
	// Both sides: bytes shipped over the replication channel (sent for a
	// primary, received for a follower).
	BytesShipped uint64 `json:"bytes_shipped"`
	// Primary side.
	TailRequests uint64 `json:"tail_requests,omitempty"`
	TailRecords  uint64 `json:"tail_records,omitempty"`
	FilesShipped uint64 `json:"files_shipped,omitempty"`
	EpochFences  uint64 `json:"epoch_fences,omitempty"`
}

// IngestStats counts what passed through Ingest (the daemon's chokepoint).
type IngestStats struct {
	Batches    uint64 `json:"batches"`
	Added      uint64 `json:"added"`
	Duplicates uint64 `json:"duplicates"`
	// Shed counts batches refused by the bounded admission queue (HTTP
	// 429); QueueDepth/QueueBound describe the queue at sampling time.
	// QueueBound 0 means admission control is off.
	Shed       uint64 `json:"shed"`
	QueueDepth int    `json:"queue_depth"`
	QueueBound int    `json:"queue_bound"`
}

// Stats returns current counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	entries := len(e.cache)
	e.mu.Unlock()
	st := Stats{
		Graph:        e.src.Stats(),
		CacheEntries: entries,
		CacheHits:    e.hits.Load(),
		CacheMisses:  e.misses.Load(),
		EnsembleRuns: e.runs.Load(),
		InFlight:     len(e.sem),
		Detect:       e.detectStats(),
		IngestStats: IngestStats{
			Batches:    e.ingestBatches.Load(),
			Added:      e.ingestEdges.Load(),
			Duplicates: e.ingestDups.Load(),
			Shed:       e.ingestShed.Load(),
			QueueDepth: len(e.ingestSlots),
			QueueBound: cap(e.ingestSlots),
		},
	}
	if ss, ok := e.src.(interface{ ShardSizes() []stream.ShardSize }); ok {
		st.Shards = ss.ShardSizes()
	}
	if bs, ok := e.src.(interface{ BuildStats() stream.BuildStats }); ok {
		b := bs.BuildStats()
		st.Build = &b
	}
	if e.win != nil && e.win.Window().Enabled() {
		w := e.win.WindowStats()
		st.Window = &w
	}
	if e.persist != nil {
		p := e.persist.Stats()
		st.Persist = &p
	}
	if e.repl != nil {
		st.Repl = e.repl()
	}
	return st
}

// AttachRepl registers a replication stats source (primary shipping counters
// or follower lag), surfaced in Stats and /metrics. Attach before serving
// traffic.
func (e *Engine) AttachRepl(fn func() *ReplStats) { e.repl = fn }

// AttachPersist registers the durability store backing this engine's graph,
// surfacing its counters in Stats and /metrics and handing its lifetime to
// Close. Attach before serving traffic.
func (e *Engine) AttachPersist(st *persist.Store) { e.persist = st }

// Close flushes and closes the attached durability store (final snapshot +
// WAL sync); it is a no-op for a memory-only engine. Call it after the HTTP
// server has drained, so no ingest races the shutdown flush. An in-flight
// background retire pass is joined first — its tombstone must reach the WAL
// before the final snapshot cut, not race the store teardown.
func (e *Engine) Close() error {
	e.retireWG.Wait()
	if e.persist == nil {
		return nil
	}
	return e.persist.Close()
}

// RetireNow runs one synchronous retire pass against the source's window
// policy (the daemon's retire ticker calls this on its period). It reports
// ok=false when the source cannot window or no policy is active. Callers
// driving RetireNow from their own goroutine must join it before Close: a
// pass that commits its removal after the final snapshot cut, with its
// tombstone refused by the closed store, would resurrect the expired edges
// at the next boot. (Close itself only joins the engine's internal ingest
// kicks.)
func (e *Engine) RetireNow() (stream.RetireResult, bool) {
	if e.win == nil || !e.win.Window().Enabled() {
		return stream.RetireResult{}, false
	}
	return e.win.Retire(time.Now()), true
}

// kickRetire starts one background retire pass unless one is already in
// flight. It is the MaxEdges backstop: the retire ticker bounds staleness
// for the age policies, but a burst of ingest can blow through a count bound
// between ticks, so the ingest path kicks eagerly. A journal failure inside
// the pass is counted by the stream layer (WindowStats.JournalErrors) and
// degrades the persistence store exactly like a failed append; the pass
// itself needs no error plumbing here.
func (e *Engine) kickRetire() {
	if !e.retiring.CompareAndSwap(false, true) {
		return
	}
	e.retireKicks.Add(1)
	e.retireWG.Add(1)
	go func() {
		defer e.retireWG.Done()
		defer e.retiring.Store(false)
		e.win.Retire(time.Now())
	}()
}

// Source exposes the underlying dynamic graph. Ingest should go through
// Ingest, which enforces the node-id bound; Source is for reads and for
// callers that have validated ids themselves.
func (e *Engine) Source() Snapshotter { return e.src }

// Ingest appends a batch of edges after enforcing the configured node-id
// bound. It is the single ingest chokepoint: ids are dense indices, so
// graph and vote memory scale with the largest id, and one edge naming id
// 2^32-2 would commit the next snapshot to multi-gigabyte allocations.
func (e *Engine) Ingest(edges []bipartite.Edge) (stream.AppendResult, error) {
	// Admission control first: under overload the cheapest thing to do with
	// a batch is refuse it before spending any validation or lock time on
	// it. The slot is held for the whole append (including the WAL write
	// behind the stream's journal hook), so the queue bound is a bound on
	// in-flight ingest work, and len(ingestSlots) is an honest depth gauge.
	if e.ingestSlots != nil {
		select {
		case e.ingestSlots <- struct{}{}:
			defer func() { <-e.ingestSlots }()
		default:
			e.ingestShed.Add(1)
			return stream.AppendResult{}, fmt.Errorf("serve: %w", ErrOverloaded)
		}
	}
	maxID := e.opts.maxNodeID()
	for i, ed := range edges {
		if ed.U > maxID || ed.V > maxID {
			return stream.AppendResult{}, fmt.Errorf("serve: %w: edge %d: %w: node id exceeds the configured maximum %d",
				ErrInvalidParams, i, bipartite.ErrIDRange, maxID)
		}
	}
	res := e.src.Append(edges)
	e.ingestBatches.Add(1)
	e.ingestEdges.Add(uint64(res.Added))
	e.ingestDups.Add(uint64(res.Duplicates))
	if e.win != nil {
		if p := e.win.Window(); p.MaxEdges > 0 && res.Stats.NumEdges > p.MaxEdges {
			e.kickRetire()
		}
	}
	if res.Err != nil {
		// The batch is in memory but the journal did not acknowledge it:
		// fail the request so the client retries (dedup makes that safe)
		// instead of believing the batch durable.
		return res, fmt.Errorf("serve: %w", res.Err)
	}
	return res, nil
}
