// Package serve implements the detection job engine behind the ensemfdetd
// daemon: it turns the batch ensemble of internal/core into a query-serving
// layer over a dynamic internal/stream graph.
//
// The key observation — the one the paper sells as ENSEMFDET's
// practicability edge — is that the expensive parallel phase (sampling +
// FDET + vote aggregation) depends only on the graph and the ensemble
// configuration, never on the vote threshold T. The engine therefore caches
// core.Votes keyed on (graph version, config fingerprint): any threshold
// sweep, top-K ranking, or repeated detect against an unchanged graph is a
// cache hit that costs a map lookup plus an O(nodes) scan. Concurrent
// requests for the same key are single-flighted into one ensemble run, and
// distinct cold keys share a bounded worker pool so a burst of queries
// cannot oversubscribe the host.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/core"
	"ensemfdet/internal/persist"
	"ensemfdet/internal/sampling"
	"ensemfdet/internal/stream"
)

// Params selects one ensemble configuration. The zero value reproduces the
// paper's main setting (RES, N = 80, S = 0.1, seed 0). Two Params that
// normalize to the same values share a cache entry.
type Params struct {
	// Sampler is the structural sampling method name understood by
	// sampling.ByName ("RES", "ONS-user", "ONS-merchant", "TNS"); empty
	// means RES.
	Sampler string
	// NumSamples is the ensemble size N (0 → core.DefaultN).
	NumSamples int
	// SampleRatio is S ∈ (0,1] (0 → core.DefaultS).
	SampleRatio float64
	// Seed fixes the ensemble's randomness.
	Seed int64
	// Parallelism caps the per-run worker pool (0 → GOMAXPROCS). It is
	// deliberately excluded from the cache fingerprint: results are
	// deterministic in it.
	Parallelism int
}

func (p Params) normalize() Params {
	if p.Sampler == "" {
		p.Sampler = "RES"
	}
	if p.NumSamples <= 0 {
		p.NumSamples = core.DefaultN
	}
	if p.SampleRatio <= 0 {
		p.SampleRatio = core.DefaultS
	}
	return p
}

// ErrInvalidParams tags parameter validation failures so transport layers
// can map them to client errors (HTTP 400) via errors.Is.
var ErrInvalidParams = errors.New("invalid detection parameters")

// Validate checks the sampler name and numeric ranges without touching any
// graph — cheap enough to run before a request body is even fully trusted.
// It inspects the raw (pre-normalization) values so that a negative, huge,
// or NaN sample ratio is rejected rather than silently replaced with the
// default.
func (p Params) Validate() error {
	if _, err := sampling.ByName(p.normalize().Sampler); err != nil {
		return fmt.Errorf("serve: %w: %v", ErrInvalidParams, err)
	}
	if !core.ValidSampleRatio(p.SampleRatio) {
		return fmt.Errorf("serve: %w: sample ratio S must be in (0,1], got %g", ErrInvalidParams, p.SampleRatio)
	}
	if p.NumSamples < 0 || p.NumSamples > MaxEnsembleSize {
		return fmt.Errorf("serve: %w: number of samples N must be in [0,%d], got %d",
			ErrInvalidParams, MaxEnsembleSize, p.NumSamples)
	}
	return nil
}

// MaxEnsembleSize caps the per-request ensemble size N. The paper's largest
// setting is N = 200; the cap exists because ensemble memory and work are
// O(N), and the detect endpoint must not let one request allocate
// per-sample state for an arbitrary N.
const MaxEnsembleSize = 10_000

// Fingerprint returns a canonical string identifying the detection-relevant
// parameters; it is the config half of the vote-cache key.
func (p Params) Fingerprint() string {
	n := p.normalize()
	return n.Sampler + "|N=" + strconv.Itoa(n.NumSamples) +
		"|S=" + strconv.FormatFloat(n.SampleRatio, 'g', -1, 64) +
		"|seed=" + strconv.FormatInt(n.Seed, 10)
}

// Options configures an Engine.
type Options struct {
	// MaxConcurrent bounds how many ensemble runs may execute at once
	// across all cache keys (0 → 2). Each run itself parallelizes over
	// samples, so a small number is usually right.
	MaxConcurrent int
	// MaxCacheEntries bounds the vote cache; the oldest entries are
	// evicted first (0 → 32). Votes cost O(|U|+|V|) ints per entry.
	MaxCacheEntries int
	// MaxNodeID bounds the node ids the ingest path accepts (0 → 1<<26;
	// values above bipartite.MaxNodeID are clamped to it, since CSR offset
	// arithmetic indexes by id+1). Graph and vote memory is proportional
	// to the largest id, not the edge count, so without a cap a single
	// tiny request naming id 2^32-2 would force multi-gigabyte allocations
	// on the next detection.
	MaxNodeID uint32
}

func (o Options) maxConcurrent() int {
	if o.MaxConcurrent <= 0 {
		return 2
	}
	return o.MaxConcurrent
}

func (o Options) maxCacheEntries() int {
	if o.MaxCacheEntries <= 0 {
		return 32
	}
	return o.MaxCacheEntries
}

func (o Options) maxNodeID() uint32 {
	if o.MaxNodeID == 0 {
		return 1 << 26
	}
	if o.MaxNodeID > bipartite.MaxNodeID {
		return bipartite.MaxNodeID
	}
	return o.MaxNodeID
}

// MaxNodeID returns the effective ingest id bound (the transport layer
// enforces it per batch).
func (e *Engine) MaxNodeID() uint32 { return e.opts.maxNodeID() }

// Snapshotter is the engine's seam to the dynamic graph: anything that can
// ingest edge batches, report sizes, and hand out immutable versioned
// snapshots can sit behind the engine. *stream.Graph is the production
// implementation; tests can substitute fakes. Implementations may
// additionally expose ShardSizes() []stream.ShardSize and
// BuildStats() stream.BuildStats, which Stats and the metrics endpoint
// surface when present.
type Snapshotter interface {
	Snapshot() (*bipartite.Graph, uint64)
	Append(edges []bipartite.Edge) stream.AppendResult
	Stats() stream.Stats
}

// Windower is the optional windowing extension of Snapshotter: a source that
// can retire edges under a sliding-window policy. *stream.Graph implements
// it; when the engine's source does and a policy is active, the engine
// surfaces window stats/metrics, and Ingest kicks an asynchronous retire
// pass whenever a batch pushes the live count past the MaxEdges bound (age
// bounds are the retire ticker's job — cmd/ensemfdetd runs one).
type Windower interface {
	Retire(now time.Time) stream.RetireResult
	Window() stream.WindowPolicy
	WindowStats() stream.WindowStats
}

type cacheKey struct {
	version uint64
	config  string
}

type entry struct {
	done  chan struct{} // closed when votes/err are set
	votes *core.Votes
	err   error
}

// Engine serves detection queries over a dynamic graph from a vote cache.
// It is safe for concurrent use.
type Engine struct {
	src  Snapshotter
	opts Options
	sem  chan struct{} // bounds concurrent ensemble runs

	// arenas is shared by every ensemble run this engine launches: each run
	// draws one arena per worker and returns it afterwards, so scratch
	// state (sampler buffers, remapper tables, peeler state, vote
	// accumulators) persists per worker across requests and graph versions
	// instead of being rebuilt per request. Arenas are pure scratch —
	// results are byte-identical for a fixed seed — so sharing never leaks
	// state between cache keys.
	arenas *core.ArenaPool

	// outScratch recycles the per-run output scaffolding (kˆ array, sample
	// work array, φ-curve spine) across cold runs, one slot per concurrent
	// run. Votes are never pooled — cached entries retain them.
	outScratch chan *core.RunScratch

	mu    sync.Mutex
	cache map[cacheKey]*entry
	order []cacheKey // insertion order, for FIFO eviction

	hits   atomic.Uint64
	misses atomic.Uint64
	runs   atomic.Uint64 // completed ensemble runs (cold computations)

	ingestBatches atomic.Uint64
	ingestEdges   atomic.Uint64 // edges actually added (post-dedup)
	ingestDups    atomic.Uint64

	// win is the source's windowing seam (nil when the Snapshotter cannot
	// retire). retiring single-flights the post-ingest count-policy kicks;
	// retireWG lets Close join an in-flight kick before tearing down the
	// persistence the retire would journal into.
	win         Windower
	retiring    atomic.Bool
	retireWG    sync.WaitGroup
	retireKicks atomic.Uint64

	// persist, when attached, is the daemon's durability store; the engine
	// only observes it (Stats, /metrics) and closes it on shutdown — the
	// write path reaches it through the stream graph's journal hook.
	persist *persist.Store

	// repl, when attached, reports replication state for Stats and /metrics
	// (primary shipping counters or follower lag, mapped by the daemon).
	repl func() *ReplStats
}

// NewEngine returns an Engine serving detections over src.
func NewEngine(src Snapshotter, opts Options) *Engine {
	e := &Engine{
		src:        src,
		opts:       opts,
		sem:        make(chan struct{}, opts.maxConcurrent()),
		arenas:     core.NewArenaPool(),
		outScratch: make(chan *core.RunScratch, opts.maxConcurrent()),
		cache:      make(map[cacheKey]*entry),
	}
	e.win, _ = src.(Windower)
	return e
}

// VoteSet is a cached ensemble outcome pinned to the graph version that
// produced it.
type VoteSet struct {
	// Votes is the shared cached vote vector; callers must treat it as
	// read-only.
	Votes *core.Votes
	// GraphVersion is the stream version the ensemble ran against.
	GraphVersion uint64
	// Cached reports whether this request was answered from cache (true)
	// or had to execute the ensemble (false). Requests that coalesce onto
	// another in-flight run count as cached.
	Cached bool
}

// Votes returns the ensemble vote counts for the current graph version under
// p, computing them at most once per (version, config) key. Concurrent calls
// with the same key block on a single underlying run. ctx cancels the wait,
// not the computation — an abandoned run still completes and populates the
// cache for the next caller.
func (e *Engine) Votes(ctx context.Context, p Params) (VoteSet, error) {
	if err := p.Validate(); err != nil {
		return VoteSet{}, err
	}
	snap, version := e.src.Snapshot()
	key := cacheKey{version: version, config: p.Fingerprint()}

	e.mu.Lock()
	ent, ok := e.cache[key]
	if ok {
		e.mu.Unlock()
		e.hits.Add(1)
	} else {
		ent = &entry{done: make(chan struct{})}
		e.cache[key] = ent
		e.order = append(e.order, key)
		e.evictLocked()
		e.mu.Unlock()
		e.misses.Add(1)
		go e.run(key, ent, snap, p)
	}

	select {
	case <-ent.done:
	case <-ctx.Done():
		return VoteSet{}, ctx.Err()
	}
	if ent.err != nil {
		return VoteSet{}, ent.err
	}
	return VoteSet{Votes: ent.votes, GraphVersion: version, Cached: ok}, nil
}

// evictLocked drops the oldest completed cache entries beyond the
// configured bound. In-flight entries are never evicted — dropping one
// would let a repeat request launch a duplicate of a run that is still
// executing — so the cache may transiently exceed the bound while many
// distinct cold keys are computing. Waiters holding an evicted *entry
// still see its result; it just stops being findable.
func (e *Engine) evictLocked() {
	excess := len(e.order) - e.opts.maxCacheEntries()
	if excess <= 0 {
		return
	}
	kept := e.order[:0]
	for _, k := range e.order {
		ent := e.cache[k]
		if excess > 0 && ent != nil && entryDone(ent) {
			delete(e.cache, k)
			excess--
			continue
		}
		kept = append(kept, k)
	}
	e.order = kept
}

// FlushCache drops every cached vote set, including keys with runs still in
// flight (their waiters keep the entry pointer; fresh requests recompute).
// The cache is keyed on the numeric graph version, so it is only coherent
// while versions never repeat — an epoch-boundary resync moves the version
// backwards, after which a re-reached version number names different graph
// content and every pre-resync entry is poison.
func (e *Engine) FlushCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	clear(e.cache)
	e.order = e.order[:0]
}

func entryDone(ent *entry) bool {
	select {
	case <-ent.done:
		return true
	default:
		return false
	}
}

func (e *Engine) run(key cacheKey, ent *entry, snap *bipartite.Graph, p Params) {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	defer close(ent.done)
	// A failed run must not be negatively cached: current waiters get the
	// error, but the entry is dropped so the next request retries instead
	// of replaying a possibly transient failure forever on a static graph.
	defer func() {
		if ent.err == nil {
			return
		}
		e.mu.Lock()
		if e.cache[key] == ent {
			delete(e.cache, key)
			for i, k := range e.order {
				if k == key {
					e.order = append(e.order[:i], e.order[i+1:]...)
					break
				}
			}
		}
		e.mu.Unlock()
	}()
	// A panic in the ensemble must surface as a request error, not kill
	// the daemon: this goroutine has no other recover between it and the
	// runtime.
	defer func() {
		if r := recover(); r != nil {
			ent.err = fmt.Errorf("serve: ensemble run panicked: %v", r)
		}
	}()

	n := p.normalize()
	method, err := sampling.ByName(n.Sampler)
	if err != nil {
		ent.err = err
		return
	}
	// Draw a per-run output scratch (kˆ/φ-curve arrays) if one is free; the
	// pool is sized to the concurrency bound, so steady-state cold runs
	// reuse instead of allocating. Only Votes outlives the run — it is the
	// one freshly-allocated piece — so recycling is invisible to callers.
	var rs *core.RunScratch
	select {
	case rs = <-e.outScratch:
	default:
		rs = new(core.RunScratch)
	}
	out, err := core.Run(snap, core.Config{
		Method:      method,
		NumSamples:  n.NumSamples,
		SampleRatio: n.SampleRatio,
		Seed:        n.Seed,
		Parallelism: p.Parallelism,
		Arenas:      e.arenas,
		Scratch:     rs,
	})
	select {
	case e.outScratch <- rs:
	default:
	}
	if err != nil {
		ent.err = err
		return
	}
	ent.votes = &out.Votes
	e.runs.Add(1)
}

// Detection is a thresholded fraud set served from cached votes.
type Detection struct {
	Users        []uint32
	Merchants    []uint32
	Threshold    int
	NumSamples   int
	GraphVersion uint64
	Cached       bool
}

// Detect answers one MVA query at threshold t. t < 0 picks the paper's
// default N/2; t = 0 is clamped to 1 (a node needs at least one vote to be
// detected) and the clamped value is reported, so the response threshold is
// always the one actually applied. The threshold is applied at query time
// against cached votes, so sweeping t is free once any one threshold has
// been asked.
func (e *Engine) Detect(ctx context.Context, p Params, t int) (Detection, error) {
	vs, err := e.Votes(ctx, p)
	if err != nil {
		return Detection{}, err
	}
	if t < 0 {
		t = vs.Votes.NumSamples / 2
	}
	if t < 1 {
		t = 1
	}
	return Detection{
		Users:        vs.Votes.AcceptUsers(t),
		Merchants:    vs.Votes.AcceptMerchants(t),
		Threshold:    t,
		NumSamples:   vs.Votes.NumSamples,
		GraphVersion: vs.GraphVersion,
		Cached:       vs.Cached,
	}, nil
}

// NodeVotes pairs a node id with its vote count for ranked output.
type NodeVotes struct {
	ID    uint32 `json:"id"`
	Votes int    `json:"votes"`
}

// rankVotes returns nodes with at least minVotes votes, sorted by votes
// descending then id ascending, truncated to top entries (top <= 0 → all).
func rankVotes(votes []int, minVotes, top int) []NodeVotes {
	if minVotes < 1 {
		minVotes = 1
	}
	out := make([]NodeVotes, 0, 64)
	for id, n := range votes {
		if n >= minVotes {
			out = append(out, NodeVotes{ID: uint32(id), Votes: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Votes != out[j].Votes {
			return out[i].Votes > out[j].Votes
		}
		return out[i].ID < out[j].ID
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}

// Ranking is a ranked vote listing for both sides of the graph.
type Ranking struct {
	Users        []NodeVotes
	Merchants    []NodeVotes
	NumSamples   int
	GraphVersion uint64
	Cached       bool
}

// Rank returns the top-K voted users and merchants with at least minVotes
// votes, served from the same cache as Detect.
func (e *Engine) Rank(ctx context.Context, p Params, minVotes, top int) (Ranking, error) {
	vs, err := e.Votes(ctx, p)
	if err != nil {
		return Ranking{}, err
	}
	return Ranking{
		Users:        rankVotes(vs.Votes.User, minVotes, top),
		Merchants:    rankVotes(vs.Votes.Merchant, minVotes, top),
		NumSamples:   vs.Votes.NumSamples,
		GraphVersion: vs.GraphVersion,
		Cached:       vs.Cached,
	}, nil
}

// Stats is a point-in-time engine and graph summary; the cache counters are
// what lets operators (and the end-to-end tests) verify that threshold
// sweeps do not trigger recomputation. Shards and Build are present when the
// underlying Snapshotter exposes them (the sharded stream graph does).
type Stats struct {
	Graph  stream.Stats       `json:"graph"`
	Shards []stream.ShardSize `json:"shards,omitempty"`
	Build  *stream.BuildStats `json:"build,omitempty"`
	// Window reports the sliding-window policy, watermark and retire
	// counters when the underlying source can window and a policy is active;
	// nil for an unbounded graph.
	Window       *stream.WindowStats `json:"window,omitempty"`
	CacheEntries int                 `json:"cache_entries"`
	CacheHits    uint64              `json:"cache_hits"`
	CacheMisses  uint64              `json:"cache_misses"`
	EnsembleRuns uint64              `json:"ensemble_runs"`
	InFlight     int                 `json:"in_flight"`
	IngestStats  IngestStats         `json:"ingest"`
	// Persist reports WAL and snapshot counters when a durability store is
	// attached; nil for a memory-only daemon.
	Persist *persist.Stats `json:"persist,omitempty"`
	// Repl reports replication state when this daemon ships to or follows
	// another; nil for a standalone daemon.
	Repl *ReplStats `json:"repl,omitempty"`
}

// ReplStats is the transport-neutral replication summary for /v1/stats and
// /metrics; cmd/ensemfdetd maps the replicate package's counters into it so
// serve stays free of a replicate import. Primary-side fields are zero on a
// follower and vice versa.
type ReplStats struct {
	// Role is "primary", "follower", or "promoting" (mid-failover).
	Role string `json:"role"`
	// Epoch is the failover term this node has adopted; Fenced reports a
	// deposed primary — it observed a higher term and rejects local writes.
	Epoch  uint64 `json:"epoch"`
	Fenced bool   `json:"fenced,omitempty"`
	// Promotions counts this process's successful follower→primary
	// transitions.
	Promotions uint64 `json:"promotions,omitempty"`
	// Follower side.
	Primary           string  `json:"primary,omitempty"`
	PrimaryVersion    uint64  `json:"primary_version,omitempty"`
	AppliedVersion    uint64  `json:"applied_version,omitempty"`
	VersionsBehind    uint64  `json:"versions_behind"`
	SecondsBehind     float64 `json:"seconds_behind"`
	RecordsApplied    uint64  `json:"records_applied,omitempty"`
	TombstonesApplied uint64  `json:"tombstones_applied,omitempty"`
	Resyncs           uint64  `json:"resyncs,omitempty"`
	Reconnects        uint64  `json:"reconnects,omitempty"`
	JournalErrors     uint64  `json:"journal_errors,omitempty"`
	EpochAdopts       uint64  `json:"epoch_adopts,omitempty"`
	EpochResyncs      uint64  `json:"epoch_resyncs,omitempty"`
	EpochRejects      uint64  `json:"epoch_rejects,omitempty"`
	BackoffSeconds    float64 `json:"backoff_seconds,omitempty"`
	Ready             bool    `json:"ready"`
	// Both sides: bytes shipped over the replication channel (sent for a
	// primary, received for a follower).
	BytesShipped uint64 `json:"bytes_shipped"`
	// Primary side.
	TailRequests uint64 `json:"tail_requests,omitempty"`
	TailRecords  uint64 `json:"tail_records,omitempty"`
	FilesShipped uint64 `json:"files_shipped,omitempty"`
	EpochFences  uint64 `json:"epoch_fences,omitempty"`
}

// IngestStats counts what passed through Ingest (the daemon's chokepoint).
type IngestStats struct {
	Batches    uint64 `json:"batches"`
	Added      uint64 `json:"added"`
	Duplicates uint64 `json:"duplicates"`
}

// Stats returns current counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	entries := len(e.cache)
	e.mu.Unlock()
	st := Stats{
		Graph:        e.src.Stats(),
		CacheEntries: entries,
		CacheHits:    e.hits.Load(),
		CacheMisses:  e.misses.Load(),
		EnsembleRuns: e.runs.Load(),
		InFlight:     len(e.sem),
		IngestStats: IngestStats{
			Batches:    e.ingestBatches.Load(),
			Added:      e.ingestEdges.Load(),
			Duplicates: e.ingestDups.Load(),
		},
	}
	if ss, ok := e.src.(interface{ ShardSizes() []stream.ShardSize }); ok {
		st.Shards = ss.ShardSizes()
	}
	if bs, ok := e.src.(interface{ BuildStats() stream.BuildStats }); ok {
		b := bs.BuildStats()
		st.Build = &b
	}
	if e.win != nil && e.win.Window().Enabled() {
		w := e.win.WindowStats()
		st.Window = &w
	}
	if e.persist != nil {
		p := e.persist.Stats()
		st.Persist = &p
	}
	if e.repl != nil {
		st.Repl = e.repl()
	}
	return st
}

// AttachRepl registers a replication stats source (primary shipping counters
// or follower lag), surfaced in Stats and /metrics. Attach before serving
// traffic.
func (e *Engine) AttachRepl(fn func() *ReplStats) { e.repl = fn }

// AttachPersist registers the durability store backing this engine's graph,
// surfacing its counters in Stats and /metrics and handing its lifetime to
// Close. Attach before serving traffic.
func (e *Engine) AttachPersist(st *persist.Store) { e.persist = st }

// Close flushes and closes the attached durability store (final snapshot +
// WAL sync); it is a no-op for a memory-only engine. Call it after the HTTP
// server has drained, so no ingest races the shutdown flush. An in-flight
// background retire pass is joined first — its tombstone must reach the WAL
// before the final snapshot cut, not race the store teardown.
func (e *Engine) Close() error {
	e.retireWG.Wait()
	if e.persist == nil {
		return nil
	}
	return e.persist.Close()
}

// RetireNow runs one synchronous retire pass against the source's window
// policy (the daemon's retire ticker calls this on its period). It reports
// ok=false when the source cannot window or no policy is active. Callers
// driving RetireNow from their own goroutine must join it before Close: a
// pass that commits its removal after the final snapshot cut, with its
// tombstone refused by the closed store, would resurrect the expired edges
// at the next boot. (Close itself only joins the engine's internal ingest
// kicks.)
func (e *Engine) RetireNow() (stream.RetireResult, bool) {
	if e.win == nil || !e.win.Window().Enabled() {
		return stream.RetireResult{}, false
	}
	return e.win.Retire(time.Now()), true
}

// kickRetire starts one background retire pass unless one is already in
// flight. It is the MaxEdges backstop: the retire ticker bounds staleness
// for the age policies, but a burst of ingest can blow through a count bound
// between ticks, so the ingest path kicks eagerly. A journal failure inside
// the pass is counted by the stream layer (WindowStats.JournalErrors) and
// degrades the persistence store exactly like a failed append; the pass
// itself needs no error plumbing here.
func (e *Engine) kickRetire() {
	if !e.retiring.CompareAndSwap(false, true) {
		return
	}
	e.retireKicks.Add(1)
	e.retireWG.Add(1)
	go func() {
		defer e.retireWG.Done()
		defer e.retiring.Store(false)
		e.win.Retire(time.Now())
	}()
}

// Source exposes the underlying dynamic graph. Ingest should go through
// Ingest, which enforces the node-id bound; Source is for reads and for
// callers that have validated ids themselves.
func (e *Engine) Source() Snapshotter { return e.src }

// Ingest appends a batch of edges after enforcing the configured node-id
// bound. It is the single ingest chokepoint: ids are dense indices, so
// graph and vote memory scale with the largest id, and one edge naming id
// 2^32-2 would commit the next snapshot to multi-gigabyte allocations.
func (e *Engine) Ingest(edges []bipartite.Edge) (stream.AppendResult, error) {
	maxID := e.opts.maxNodeID()
	for i, ed := range edges {
		if ed.U > maxID || ed.V > maxID {
			return stream.AppendResult{}, fmt.Errorf("serve: %w: edge %d: %w: node id exceeds the configured maximum %d",
				ErrInvalidParams, i, bipartite.ErrIDRange, maxID)
		}
	}
	res := e.src.Append(edges)
	e.ingestBatches.Add(1)
	e.ingestEdges.Add(uint64(res.Added))
	e.ingestDups.Add(uint64(res.Duplicates))
	if e.win != nil {
		if p := e.win.Window(); p.MaxEdges > 0 && res.Stats.NumEdges > p.MaxEdges {
			e.kickRetire()
		}
	}
	if res.Err != nil {
		// The batch is in memory but the journal did not acknowledge it:
		// fail the request so the client retries (dedup makes that safe)
		// instead of believing the batch durable.
		return res, fmt.Errorf("serve: %w", res.Err)
	}
	return res, nil
}
