package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ensemfdet/internal/stream"
)

// replicaDaemon boots the HTTP stack in follower shape: read-only, with a
// controllable readiness gate.
func replicaDaemon(t *testing.T, ready *bool, reason *string) *httptest.Server {
	t.Helper()
	e := NewEngine(stream.New(), Options{})
	e.AttachRepl(func() *ReplStats {
		return &ReplStats{Role: "follower", Primary: "http://primary:8080", VersionsBehind: 3,
			SecondsBehind: 1.5, RecordsApplied: 42, BytesShipped: 4096, Ready: *ready}
	})
	srv := httptest.NewServer(NewHandlerWith(e, HandlerConfig{
		ReadOnly:   true,
		PrimaryURL: "http://primary:8080",
		Ready:      func() (bool, string) { return *ready, *reason },
		Version:    "test-1.2.3",
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestFollowerWriteGuard pins the 403 contract: every mutating request —
// including methods and POST routes that do not exist today — is rejected
// with a body naming the primary, while reads and POST /v1/detect pass.
func TestFollowerWriteGuard(t *testing.T) {
	ready, reason := true, ""
	srv := replicaDaemon(t, &ready, &reason)

	do := func(method, path, body string) (int, string) {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	for _, tc := range []struct{ method, path string }{
		{"POST", "/v1/edges"},
		{"POST", "/v1/some-future-route"},
		{"PUT", "/v1/edges"},
		{"DELETE", "/v1/stats"},
		{"PATCH", "/v1/votes"},
	} {
		status, body := do(tc.method, tc.path, `{"edges":[[1,2]]}`)
		if status != http.StatusForbidden {
			t.Errorf("%s %s: status %d, want 403", tc.method, tc.path, status)
		}
		if !strings.Contains(body, "http://primary:8080") {
			t.Errorf("%s %s: rejection body does not name the primary: %s", tc.method, tc.path, body)
		}
	}

	if status, body := do("POST", "/v1/detect", `{"n":4,"s":0.5}`); status != http.StatusOK {
		t.Errorf("POST /v1/detect on a replica: status %d, body %s — detection is a read and must pass", status, body)
	}
	for _, path := range []string{"/v1/votes", "/v1/stats", "/metrics", "/healthz", "/readyz"} {
		if status, body := do("GET", path, ""); status != http.StatusOK {
			t.Errorf("GET %s on a replica: status %d, body %s", path, status, body)
		}
	}
}

// TestReadyz pins the readiness gate: distinct from /healthz, 503 with the
// gate's reason while not ready, 200 once ready, and always 200 without a
// gate (the primary shape).
func TestReadyz(t *testing.T) {
	ready, reason := false, "replication lag 12 versions exceeds 8"
	srv := replicaDaemon(t, &ready, &reason)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	if status, body := get("/readyz"); status != http.StatusServiceUnavailable || !strings.Contains(body, reason) {
		t.Fatalf("not-ready /readyz: status %d body %s", status, body)
	}
	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Fatal("liveness must not follow readiness")
	}
	ready = true
	if status, _ := get("/readyz"); status != http.StatusOK {
		t.Fatal("/readyz still failing after the gate opened")
	}

	primary := httptest.NewServer(NewHandler(NewEngine(stream.New(), Options{})))
	defer primary.Close()
	resp, err := http.Get(primary.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ungated /readyz: status %d, want 200", resp.StatusCode)
	}
}

// TestReplStatsAndMetrics pins the observability surface: the repl section
// in /v1/stats and the ensemfdetd_repl_* and build-info series in /metrics.
func TestReplStatsAndMetrics(t *testing.T) {
	ready, reason := true, ""
	srv := replicaDaemon(t, &ready, &reason)

	var stats struct {
		Repl *ReplStats `json:"repl"`
	}
	if status := getJSON(t, srv.URL+"/v1/stats", &stats); status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	if stats.Repl == nil || stats.Repl.Role != "follower" || stats.Repl.VersionsBehind != 3 ||
		stats.Repl.RecordsApplied != 42 || !stats.Repl.Ready {
		t.Fatalf("repl stats section: %+v", stats.Repl)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	if !strings.Contains(body, `ensemfdetd_build_info{version="test-1.2.3"} 1`) {
		t.Error("build info series missing or mislabelled")
	}
	if !strings.Contains(body, `ensemfdetd_repl_role{role="follower"} 1`) {
		t.Error("repl role series missing")
	}
	for series, want := range map[string]float64{
		"ensemfdetd_repl_versions_behind":       3,
		"ensemfdetd_repl_seconds_behind":        1.5,
		"ensemfdetd_repl_records_applied_total": 42,
		"ensemfdetd_repl_bytes_shipped_total":   4096,
		"ensemfdetd_repl_ready":                 1,
	} {
		if got := metricValue(t, body, series); got != want {
			t.Errorf("%s = %g, want %g", series, got, want)
		}
	}

	// A standalone daemon exposes neither section.
	plain := httptest.NewServer(NewHandler(NewEngine(stream.New(), Options{})))
	defer plain.Close()
	var plainStats struct {
		Repl *ReplStats `json:"repl"`
	}
	getJSON(t, plain.URL+"/v1/stats", &plainStats)
	if plainStats.Repl != nil {
		t.Fatalf("standalone daemon grew a repl section: %+v", plainStats.Repl)
	}

	// And a primary role renders the shipping counters.
	pe := NewEngine(stream.New(), Options{})
	pe.AttachRepl(func() *ReplStats {
		return &ReplStats{Role: "primary", Ready: true, BytesShipped: 123, TailRequests: 7, TailRecords: 5, FilesShipped: 2}
	})
	psrv := httptest.NewServer(NewHandlerWith(pe, HandlerConfig{}))
	defer psrv.Close()
	presp, err := http.Get(psrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	praw, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	pbody := string(praw)
	if !strings.Contains(pbody, `ensemfdetd_repl_role{role="primary"} 1`) {
		t.Error("primary repl role series missing")
	}
	if got := metricValue(t, pbody, "ensemfdetd_repl_tail_requests_total"); got != 7 {
		t.Errorf("tail_requests_total = %g, want 7", got)
	}
}

// TestReplHandlerMount pins HandlerConfig.Repl: requests under /v1/repl/
// reach the mounted handler; without one they 404.
func TestReplHandlerMount(t *testing.T) {
	e := NewEngine(stream.New(), Options{})
	mounted := httptest.NewServer(NewHandlerWith(e, HandlerConfig{
		Repl: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, "repl:%s", r.URL.Path)
		}),
	}))
	defer mounted.Close()
	resp, err := http.Get(mounted.URL + "/v1/repl/manifest")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(raw) != "repl:/v1/repl/manifest" {
		t.Fatalf("mounted repl handler: status %d body %q", resp.StatusCode, raw)
	}

	bare := httptest.NewServer(NewHandler(NewEngine(stream.New(), Options{})))
	defer bare.Close()
	resp2, err := http.Get(bare.URL + "/v1/repl/manifest")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unmounted /v1/repl/: status %d, want 404", resp2.StatusCode)
	}
}
