package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/stream"
)

// metricValue extracts the value of a (possibly labelled) series from a
// Prometheus text exposition body.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s missing from metrics body:\n%s", series, body)
	return 0
}

func TestMetricsEndpoint(t *testing.T) {
	e := NewEngine(stream.NewSharded(4), Options{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	// 9 entries, 1 duplicate → 8 added. The base must be ≥ 4 edges so the
	// later single-edge delta stays under the 25% rebuild threshold.
	if _, err := e.Ingest([]bipartite.Edge{
		{U: 0, V: 0}, {U: 1, V: 0}, {U: 1, V: 1}, {U: 0, V: 1},
		{U: 2, V: 0}, {U: 2, V: 1}, {U: 3, V: 0}, {U: 3, V: 1},
		{U: 0, V: 0},
	}); err != nil {
		t.Fatal(err)
	}
	p := Params{NumSamples: 4, SampleRatio: 0.5, Seed: 3}
	if _, err := e.Detect(context.Background(), p, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Detect(context.Background(), p, 2); err != nil { // cache hit
		t.Fatal(err)
	}
	// A second version forces a delta build so both build kinds appear.
	e.Ingest([]bipartite.Edge{{U: 9, V: 9}})
	if _, err := e.Detect(context.Background(), p, 1); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	checks := map[string]float64{
		"ensemfdetd_ingest_batches_total":                  2,
		"ensemfdetd_ingest_edges_total":                    9,
		"ensemfdetd_ingest_duplicates_total":               1,
		"ensemfdetd_cache_misses_total":                    2,
		"ensemfdetd_cache_hits_total":                      1,
		"ensemfdetd_ensemble_runs_total":                   2,
		"ensemfdetd_graph_version":                         2,
		"ensemfdetd_graph_edges":                           9,
		"ensemfdetd_snapshot_builds_total{kind=\"full\"}":  1,
		"ensemfdetd_snapshot_builds_total{kind=\"delta\"}": 1,
		"ensemfdetd_ingest_shed_total":                     0,
		"ensemfdetd_ingest_queue_depth":                    0,
	}
	for series, want := range checks {
		if got := metricValue(t, body, series); got != want {
			t.Errorf("%s = %g, want %g", series, got, want)
		}
	}
	// Peel rounds accumulate across the two completed runs; the exact count
	// depends on the graph, but two runs of four samples must peel something.
	if rounds := metricValue(t, body, "ensemfdetd_detect_peel_rounds_total"); rounds < 1 {
		t.Errorf("ensemfdetd_detect_peel_rounds_total = %g, want >= 1", rounds)
	}

	// Per-shard gauges must cover every shard and sum to the edge count.
	shardRe := regexp.MustCompile(`(?m)^ensemfdetd_shard_edges\{shard="\d+"\} (\d+)$`)
	matches := shardRe.FindAllStringSubmatch(body, -1)
	if len(matches) != 4 {
		t.Fatalf("found %d shard series, want 4", len(matches))
	}
	sum := 0
	for _, m := range matches {
		n, _ := strconv.Atoi(m[1])
		sum += n
	}
	if sum != 9 {
		t.Errorf("shard edges sum to %d, want 9", sum)
	}

	// Every exposed series needs HELP/TYPE metadata.
	for _, name := range []string{"ensemfdetd_snapshot_build_seconds_total", "ensemfdetd_shard_edges"} {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("missing TYPE line for %s", name)
		}
	}
}
