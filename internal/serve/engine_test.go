package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/stream"
)

// seedStream plants a dense fraud block in random background traffic,
// mirroring the facade tests, and returns the ingested dynamic graph.
func seedStream(t *testing.T) *stream.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	g := stream.New()
	batch := make([]bipartite.Edge, 0, 512)
	for i := 0; i < 2000; i++ {
		batch = append(batch, bipartite.Edge{U: uint32(rng.Intn(400)), V: uint32(rng.Intn(400))})
	}
	for u := 0; u < 25; u++ {
		for v := 0; v < 12; v++ {
			batch = append(batch, bipartite.Edge{U: uint32(400 + u), V: uint32(400 + v)})
		}
	}
	g.Append(batch)
	return g
}

func testParams() Params {
	return Params{NumSamples: 12, SampleRatio: 0.3, Seed: 7}
}

func TestDetectServedFromCacheAcrossThresholds(t *testing.T) {
	e := NewEngine(seedStream(t), Options{})
	ctx := context.Background()

	d1, err := e.Detect(ctx, testParams(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Cached {
		t.Error("first detect reported cached")
	}
	if len(d1.Users) == 0 {
		t.Fatal("planted block not detected")
	}

	// Sweeping T and ranking reuse the same votes: still exactly one run.
	for _, T := range []int{3, 6, 12} {
		d, err := e.Detect(ctx, testParams(), T)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Cached {
			t.Errorf("T=%d not served from cache", T)
		}
	}
	if _, err := e.Rank(ctx, testParams(), 1, 10); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.EnsembleRuns != 1 || st.CacheMisses != 1 || st.CacheHits != 4 {
		t.Errorf("stats after sweep: %+v, want runs=1 misses=1 hits=4", st)
	}
}

func TestDefaultThresholdIsHalfN(t *testing.T) {
	e := NewEngine(seedStream(t), Options{})
	d, err := e.Detect(context.Background(), testParams(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Threshold != 6 {
		t.Errorf("default threshold = %d, want N/2 = 6", d.Threshold)
	}
	// An explicit T=0 must not fall back to N/2; it clamps to the minimum
	// meaningful threshold 1, and the response reports the applied value.
	d0, err := e.Detect(context.Background(), testParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d0.Threshold != 1 {
		t.Errorf("explicit T=0 applied as %d, want clamp to 1", d0.Threshold)
	}
}

func TestIngestInvalidatesCache(t *testing.T) {
	g := seedStream(t)
	e := NewEngine(g, Options{})
	ctx := context.Background()

	d1, err := e.Detect(ctx, testParams(), 6)
	if err != nil {
		t.Fatal(err)
	}
	g.AppendEdge(999, 999)
	d2, err := e.Detect(ctx, testParams(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Cached {
		t.Error("detect after ingest served stale cache")
	}
	if d2.GraphVersion != d1.GraphVersion+1 {
		t.Errorf("versions: %d then %d", d1.GraphVersion, d2.GraphVersion)
	}
	if st := e.Stats(); st.EnsembleRuns != 2 {
		t.Errorf("runs = %d, want 2", st.EnsembleRuns)
	}

	// A duplicate-only batch keeps the version, so the cache stays warm.
	g.AppendEdge(999, 999)
	d3, err := e.Detect(ctx, testParams(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if !d3.Cached {
		t.Error("duplicate-only ingest invalidated the cache")
	}
}

func TestSingleFlight(t *testing.T) {
	e := NewEngine(seedStream(t), Options{MaxConcurrent: 1})
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Votes(context.Background(), testParams()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := e.Stats()
	if st.EnsembleRuns != 1 {
		t.Errorf("%d concurrent identical requests ran the ensemble %d times", callers, st.EnsembleRuns)
	}
	if st.CacheHits+st.CacheMisses != callers || st.CacheMisses != 1 {
		t.Errorf("hits=%d misses=%d, want %d total with 1 miss", st.CacheHits, st.CacheMisses, callers)
	}
}

func TestDistinctConfigsGetDistinctEntries(t *testing.T) {
	e := NewEngine(seedStream(t), Options{})
	ctx := context.Background()
	a, err := e.Votes(ctx, Params{NumSamples: 8, SampleRatio: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Votes(ctx, Params{NumSamples: 8, SampleRatio: 0.3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Votes == b.Votes {
		t.Error("different seeds shared a cache entry")
	}
	// Normalized-equal params share: zero values vs explicit defaults.
	c, err := e.Votes(ctx, Params{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.Votes(ctx, Params{Sampler: "RES", NumSamples: 80, SampleRatio: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Votes != d.Votes {
		t.Error("normalized-identical params missed the cache")
	}
}

func TestCacheEviction(t *testing.T) {
	e := NewEngine(seedStream(t), Options{MaxCacheEntries: 2})
	ctx := context.Background()
	for seed := int64(1); seed <= 4; seed++ {
		if _, err := e.Votes(ctx, Params{NumSamples: 4, SampleRatio: 0.2, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.CacheEntries != 2 {
		t.Errorf("cache holds %d entries, want 2", st.CacheEntries)
	}
}

func TestParamValidation(t *testing.T) {
	e := NewEngine(stream.New(), Options{})
	ctx := context.Background()
	bad := []Params{
		{Sampler: "bogus"},
		{SampleRatio: 2},
		{SampleRatio: -0.5},       // must be rejected, not defaulted
		{SampleRatio: math.NaN()}, // NaN slips past naive range checks
		{SampleRatio: math.Inf(1)},
		{NumSamples: -3},
		{SampleRatio: 0.5, NumSamples: -1},
		{NumSamples: MaxEnsembleSize + 1}, // a huge N is an O(N) allocation
	}
	for _, p := range bad {
		if _, err := e.Votes(ctx, p); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("params %+v: err = %v, want ErrInvalidParams", p, err)
		}
	}
	if st := e.Stats(); st.EnsembleRuns != 0 || st.CacheMisses != 0 {
		t.Errorf("invalid params touched the cache: %+v", st)
	}
}

func TestContextCancellation(t *testing.T) {
	e := NewEngine(seedStream(t), Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Votes(ctx, testParams()); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// The abandoned run still completes and warms the cache.
	vs, err := e.Votes(context.Background(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	if !vs.Cached {
		t.Log("note: abandoned run had not finished before retry (still correct)")
	}
}
