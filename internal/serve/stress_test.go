package serve

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/stream"
)

// TestVotesByteIdenticalAcrossShardCounts is the acceptance pin for the
// sharded spine: for a fixed edge stream and seed, the ensemble votes served
// by engines over 1-, 4-, and 16-shard graphs — ingested in many small
// batches so the incremental snapshot path does the building — must be
// byte-identical, and identical to a single-batch (full-rebuild) ingest.
func TestVotesByteIdenticalAcrossShardCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	edges := make([]bipartite.Edge, 0, 2600)
	for i := 0; i < 2000; i++ {
		edges = append(edges, bipartite.Edge{U: uint32(rng.Intn(400)), V: uint32(rng.Intn(400))})
	}
	for u := 0; u < 25; u++ {
		for v := 0; v < 12; v++ {
			edges = append(edges, bipartite.Edge{U: uint32(400 + u), V: uint32(400 + v)})
		}
	}
	p := Params{NumSamples: 16, SampleRatio: 0.2, Seed: 5}

	votesFor := func(shards, batch int) []int {
		t.Helper()
		g := stream.NewSharded(shards)
		for off := 0; off < len(edges); off += batch {
			g.Append(edges[off:min(off+batch, len(edges))])
		}
		e := NewEngine(g, Options{})
		vs, err := e.Votes(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		return append(append([]int(nil), vs.Votes.User...), vs.Votes.Merchant...)
	}

	ref := votesFor(1, len(edges)) // unsharded, one batch: the full-build baseline
	for _, shards := range []int{1, 4, 16} {
		if got := votesFor(shards, 64); !reflect.DeepEqual(got, ref) {
			t.Errorf("shards=%d: incremental ingest votes diverge from unsharded full build", shards)
		}
	}
}

// TestConcurrentAppendSnapshotDetect interleaves ingest, snapshotting, and
// detection across shard counts under -race: versions served by detections
// must be monotone per client, snapshots must stay valid, and cached vote
// vectors must never be mutated by later activity.
func TestConcurrentAppendSnapshotDetect(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run("", func(t *testing.T) {
			g := stream.NewSharded(shards)
			g.Append(seedEdges())
			e := NewEngine(g, Options{MaxConcurrent: 2})
			ctx := context.Background()

			var wg sync.WaitGroup
			// Writers: fresh random edges, occasionally re-ingesting dups.
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 40; i++ {
						batch := make([]bipartite.Edge, 16)
						for j := range batch {
							batch[j] = bipartite.Edge{U: uint32(rng.Intn(600)), V: uint32(rng.Intn(600))}
						}
						if _, err := e.Ingest(batch); err != nil {
							t.Error(err)
							return
						}
					}
				}(int64(w + 1))
			}
			// Snapshotters.
			wg.Add(1)
			go func() {
				defer wg.Done()
				var lastV uint64
				for i := 0; i < 60; i++ {
					s, v := g.Snapshot()
					if v < lastV {
						t.Errorf("snapshot version went backwards: %d after %d", v, lastV)
						return
					}
					lastV = v
					if err := s.Validate(); err != nil {
						t.Errorf("invalid snapshot: %v", err)
						return
					}
				}
			}()
			// Detectors: small ensembles, rotating seeds; responses must be
			// monotone in graph version, and a vote vector captured early
			// must stay frozen.
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					var lastV uint64
					var pinned []int
					var pinnedCopy []int
					for i := 0; i < 15; i++ {
						vs, err := e.Votes(ctx, Params{NumSamples: 4, SampleRatio: 0.3, Seed: seed + int64(i%3)})
						if err != nil {
							t.Error(err)
							return
						}
						if vs.GraphVersion < lastV {
							t.Errorf("detection version went backwards: %d after %d", vs.GraphVersion, lastV)
							return
						}
						lastV = vs.GraphVersion
						if pinned == nil {
							pinned = vs.Votes.User
							pinnedCopy = append([]int(nil), pinned...)
						}
					}
					if !reflect.DeepEqual(pinned, pinnedCopy) {
						t.Error("cached vote vector mutated by later activity")
					}
				}(int64(100 * (w + 1)))
			}
			wg.Wait()

			if st := e.Stats(); st.Build == nil || st.Build.DeltaBuilds+st.Build.FullBuilds == 0 {
				t.Errorf("no snapshot builds recorded: %+v", st.Build)
			}
		})
	}
}

// seedEdges plants the dense block used across the serve tests.
func seedEdges() []bipartite.Edge {
	rng := rand.New(rand.NewSource(1))
	batch := make([]bipartite.Edge, 0, 2300)
	for i := 0; i < 2000; i++ {
		batch = append(batch, bipartite.Edge{U: uint32(rng.Intn(400)), V: uint32(rng.Intn(400))})
	}
	for u := 0; u < 25; u++ {
		for v := 0; v < 12; v++ {
			batch = append(batch, bipartite.Edge{U: uint32(400 + u), V: uint32(400 + v)})
		}
	}
	return batch
}
