package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/faultinject"
	"ensemfdet/internal/persist"
	"ensemfdet/internal/replicate"
	"ensemfdet/internal/stream"
)

// degradedJournal fails every append the way a gapped WAL does.
type degradedJournal struct{ err error }

func (j degradedJournal) AppendEdges(uint64, []bipartite.Edge) error { return j.err }
func (j degradedJournal) RetireEdges(uint64, []bipartite.Edge, stream.WindowMark) error {
	return j.err
}

// TestIngestDegradedStoreIs503 pins the degraded-ingest contract: a WAL gap
// is a retryable outage, so the response is 503 with a Retry-After hint and a
// machine-readable "degraded" marker — not the bare 500 that taught clients
// to treat it as fatal.
func TestIngestDegradedStoreIs503(t *testing.T) {
	g := stream.New()
	g.SetJournal(degradedJournal{err: fmt.Errorf("persist: WAL gap at version 3: %w", persist.ErrDegraded)})
	srv := httptest.NewServer(NewHandler(NewEngine(g, Options{})))
	t.Cleanup(srv.Close)

	resp, err := http.Post(srv.URL+"/v1/edges", "application/json",
		bytes.NewReader([]byte(`{"edges":[[1,2]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("degraded ingest carries no Retry-After hint")
	}
	var body struct {
		Error    string `json:"error"`
		Degraded bool   `json:"degraded"`
	}
	decodeResponse(t, resp, &body)
	if !body.Degraded || body.Error == "" {
		t.Fatalf("degraded ingest body: %+v, want degraded=true with an error", body)
	}
}

// TestIngestFencedStoreIs409 pins the fenced-ingest contract: a deposed
// primary's refusal is permanent for this node, so the response is 409 with a
// "fenced" marker — retrying here can never succeed, re-target the new
// primary.
func TestIngestFencedStoreIs409(t *testing.T) {
	g := stream.New()
	g.SetJournal(degradedJournal{err: fmt.Errorf("%w: epoch 4 is owned by another primary", persist.ErrFenced)})
	srv := httptest.NewServer(NewHandler(NewEngine(g, Options{})))
	t.Cleanup(srv.Close)

	resp, err := http.Post(srv.URL+"/v1/edges", "application/json",
		bytes.NewReader([]byte(`{"edges":[[1,2]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("fenced ingest: status %d, want 409", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Fatalf("fenced ingest suggests retrying (Retry-After %q); it must not", ra)
	}
	var body struct {
		Error  string `json:"error"`
		Fenced bool   `json:"fenced"`
	}
	decodeResponse(t, resp, &body)
	if !body.Fenced || body.Error == "" {
		t.Fatalf("fenced ingest body: %+v, want fenced=true naming the ruling epoch", body)
	}
}

// failoverNode wires a real durable replication node into the serving stack
// exactly as cmd/ensemfdetd does — ReadOnlyFn, Ready, and Admin all tracking
// the live role.
func failoverNode(t *testing.T, inject func(string) error) (*replicate.Node, *httptest.Server) {
	t.Helper()
	st, err := persist.Open(t.TempDir(), persist.Options{Fsync: persist.FsyncNever, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	g := stream.New()
	if _, err := st.Recover(g); err != nil {
		t.Fatal(err)
	}
	st.SetSource(g)
	node, err := replicate.NewNode(replicate.NodeConfig{Store: st, Graph: g, Inject: inject, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(g, Options{})
	h := NewHandlerWith(engine, HandlerConfig{
		ReadOnlyFn: func() bool { return node.Role() != "primary" },
		Ready:      node.Ready,
		Admin:      node.AdminHandler(),
	})
	srv := httptest.NewServer(h)
	t.Cleanup(func() { srv.Close(); node.Close(); st.Close() })
	return node, srv
}

// TestReadyzDuringPromotion is the mid-promote regression: between stopping
// the tail and the fence fsync the node is neither a current follower nor a
// safe primary, and /readyz must say so — a crash-point abort (the process
// crash it simulates) leaves it not-ready until re-promoted.
func TestReadyzDuringPromotion(t *testing.T) {
	inj := faultinject.New(3)
	inj.Arm("promote.pre-fence", faultinject.Rule{Count: 1})
	node, srv := failoverNode(t, inj.Check)

	readyz := func() (int, map[string]string) {
		var body map[string]string
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		decodeResponse(t, resp, &body)
		return resp.StatusCode, body
	}

	// Not following anyone, not promoted: not ready, but not the promote
	// reason either.
	if code, _ := readyz(); code != http.StatusServiceUnavailable {
		t.Fatalf("idle node readyz: %d, want 503", code)
	}
	if _, err := node.Promote(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("armed crash-point did not abort: %v", err)
	}
	code, body := readyz()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("mid-promote readyz: %d, want 503", code)
	}
	if body["reason"] != "promotion in progress: epoch fence not yet durable" {
		t.Fatalf("mid-promote reason: %q", body["reason"])
	}
	// The retry completes the promotion; the fence is durable; ready.
	if _, err := node.Promote(); err != nil {
		t.Fatal(err)
	}
	if code, body := readyz(); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("promoted readyz: %d %v", code, body)
	}
}

// TestPromoteDropsReadOnlyGuard drives a promotion through the public HTTP
// surface: the read-only guard must let the admin call through on a follower
// and stop rejecting ingest the moment the role flips — no handler rebuild.
func TestPromoteDropsReadOnlyGuard(t *testing.T) {
	_, srv := failoverNode(t, nil)

	post := func(path, body string) int {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post("/v1/edges", `{"edges":[[1,2]]}`); code != http.StatusForbidden {
		t.Fatalf("ingest on a follower: %d, want 403", code)
	}
	// Reads and detect stay open under the guard.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats on a follower: %d, want 200", resp.StatusCode)
	}
	if code := post("/v1/detect", `{"n":2,"s":0.5}`); code != http.StatusOK {
		t.Fatalf("detect on a follower: %d, want 200", code)
	}
	// The control surface is exempt — it is how a follower stops being one.
	if code := post("/v1/admin/promote", ""); code != http.StatusOK {
		t.Fatalf("promote through the guard: %d, want 200", code)
	}
	if code := post("/v1/edges", `{"edges":[[1,2]]}`); code != http.StatusOK {
		t.Fatalf("ingest after promotion: %d, want 200", code)
	}
}
