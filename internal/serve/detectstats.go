package serve

import (
	"sync/atomic"
	"time"
)

// DetectStats summarizes the detect path for /v1/stats and /metrics: how
// often runs resumed from a previous version's record vs started cold, how
// many ensemble samples that saved, and the end-to-end vote latency
// distribution (cache hits included — they are detect requests too).
type DetectStats struct {
	// IncrementalRuns and ColdRuns partition completed ensemble runs by
	// path; IncrementalFallbacks counts runs that found a base and a small
	// delta but could not prove reuse (core.ErrNotResumable) and went cold —
	// those runs are also counted in ColdRuns.
	IncrementalRuns      uint64 `json:"incremental_runs"`
	ColdRuns             uint64 `json:"cold_runs"`
	IncrementalFallbacks uint64 `json:"incremental_fallbacks"`
	// SamplesReused and SamplesRerun count ensemble samples across all
	// completed runs: reused ones were carried over from a base unexecuted,
	// rerun ones paid the full sample-detect-vote cost (a cold run
	// contributes NumSamples to rerun).
	SamplesReused uint64 `json:"samples_reused"`
	SamplesRerun  uint64 `json:"samples_rerun"`
	// LatencyCount / LatencySumSeconds aggregate the vote latency histogram
	// (per-bucket counts are exported on /metrics only).
	LatencyCount      uint64  `json:"latency_count"`
	LatencySumSeconds float64 `json:"latency_sum_seconds"`
	// PeelRounds totals the peeling rounds executed by completed runs —
	// the inner-loop work unit of the detect path. Divided by
	// IncrementalRuns+ColdRuns it gives peel-rounds-per-detect; reused
	// incremental samples and cache hits contribute nothing.
	PeelRounds uint64 `json:"peel_rounds"`
}

func (e *Engine) detectStats() DetectStats {
	count, sum := e.detectLatency.totals()
	return DetectStats{
		IncrementalRuns:      e.incRuns.Load(),
		ColdRuns:             e.coldRuns.Load(),
		IncrementalFallbacks: e.incFallbacks.Load(),
		SamplesReused:        e.samplesReused.Load(),
		SamplesRerun:         e.samplesRerun.Load(),
		LatencyCount:         count,
		LatencySumSeconds:    sum,
		PeelRounds:           e.peelRounds.Load(),
	}
}

// latencyBounds are the histogram's upper bounds in seconds, chosen to
// straddle the interesting range: cache hits land in the sub-millisecond
// buckets, incremental runs in the milliseconds, cold runs on large graphs in
// the hundreds of milliseconds and up.
var latencyBounds = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// latencyHist is a fixed-bucket cumulative histogram with atomic counters —
// the observe path is lock-free and allocation-free. Readers may see a
// bucket/sum snapshot that is slightly torn across concurrent observes;
// Prometheus scrapes tolerate that.
type latencyHist struct {
	buckets [len(latencyBounds) + 1]atomic.Uint64 // last bucket is +Inf
	count   atomic.Uint64
	sumNs   atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latencyBounds) && s > latencyBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

func (h *latencyHist) totals() (count uint64, sumSeconds float64) {
	return h.count.Load(), time.Duration(h.sumNs.Load()).Seconds()
}

// snapshot returns cumulative bucket counts aligned with latencyBounds plus a
// final +Inf bucket, in Prometheus le-label convention.
func (h *latencyHist) snapshot() (cum [len(latencyBounds) + 1]uint64, count uint64, sumSeconds float64) {
	var running uint64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	count, sumSeconds = h.totals()
	return cum, count, sumSeconds
}
