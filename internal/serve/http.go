package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/persist"
)

// HTTP JSON API of the ensemfdetd daemon. All endpoints speak JSON; errors
// are {"error": "..."} with a 4xx/5xx status.
//
//	POST /v1/edges   {"edges": [[u,v], ...]}          batched ingest
//	POST /v1/detect  {"t":40,"n":80,"s":0.1,...}      MVA detection
//	GET  /v1/votes   ?n=&s=&sampler=&seed=&min=&top=  ranked vote counts
//	GET  /v1/stats                                    graph + cache counters
//	GET  /metrics                                     Prometheus text format
//	GET  /healthz                                     liveness
//
// Request bodies are capped at maxBodyBytes to keep a malicious client from
// ballooning the heap; batch several /v1/edges calls for larger ingests.
const maxBodyBytes = 64 << 20

// NewHandler returns the daemon's HTTP routing handler over e. It is what
// cmd/ensemfdetd mounts and what the end-to-end tests boot under httptest.
func NewHandler(e *Engine) http.Handler {
	return NewHandlerWith(e, HandlerConfig{})
}

// HandlerConfig selects the role-dependent parts of the HTTP surface. The
// zero value is the classic standalone primary.
type HandlerConfig struct {
	// ReadOnly rejects every mutating route with 403 — the follower's write
	// guard. Reads and POST /v1/detect (a read that happens to take a body)
	// stay open.
	ReadOnly bool
	// ReadOnlyFn, when non-nil, re-evaluates the write guard per request —
	// the failover role manager flips it false at promotion without
	// rebuilding the handler. It overrides ReadOnly.
	ReadOnlyFn func() bool
	// PrimaryURL, on a read-only daemon, names the primary in rejection
	// bodies so a misdirected writer knows where to go. PrimaryURLFn, when
	// non-nil, overrides it per request (runtime re-pointing moves it).
	PrimaryURL   string
	PrimaryURLFn func() string
	// Repl, when non-nil, is mounted under GET /v1/repl/ (the replication
	// shipping endpoints, an http.Handler so serve never imports replicate).
	Repl http.Handler
	// Admin, when non-nil, is mounted under POST /v1/admin/ (the failover
	// control surface: promote, follow). Admin routes are exempt from the
	// read-only guard — promotion is exactly the operation that must work on
	// a read-only follower.
	Admin http.Handler
	// Ready gates GET /readyz; nil means ready as soon as the handler is
	// serving (a primary is ready once recovery built it).
	Ready func() (bool, string)
	// Version, when set, is exported as the ensemfdetd_build_info metric.
	Version string
}

func (cfg HandlerConfig) readOnly() bool {
	if cfg.ReadOnlyFn != nil {
		return cfg.ReadOnlyFn()
	}
	return cfg.ReadOnly
}

func (cfg HandlerConfig) primaryURL() string {
	if cfg.PrimaryURLFn != nil {
		return cfg.PrimaryURLFn()
	}
	return cfg.PrimaryURL
}

// NewHandlerWith returns the routing handler over e shaped by cfg.
func NewHandlerWith(e *Engine, cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/edges", func(w http.ResponseWriter, r *http.Request) { handleEdges(e, w, r) })
	mux.HandleFunc("POST /v1/detect", func(w http.ResponseWriter, r *http.Request) { handleDetect(e, w, r) })
	mux.HandleFunc("GET /v1/votes", func(w http.ResponseWriter, r *http.Request) { handleVotes(e, w, r) })
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		handleMetrics(e, cfg.Version, w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Ready != nil {
			if ok, reason := cfg.Ready(); !ok {
				writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "unavailable", "reason": reason})
				return
			}
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	if cfg.Repl != nil {
		mux.Handle("GET /v1/repl/", cfg.Repl)
	}
	if cfg.Admin != nil {
		mux.Handle("POST /v1/admin/", cfg.Admin)
	}
	if cfg.ReadOnly || cfg.ReadOnlyFn != nil {
		return readOnlyGuard(mux, cfg)
	}
	return mux
}

// readOnlyGuard is the follower's write guard: every non-read method is
// rejected before routing — including mutating routes added in the future,
// which is why this is a method filter and not a per-route check — except
// POST /v1/detect (a read that carries its parameters in a body) and the
// /v1/admin/ control surface (promotion must work on a read-only follower —
// it is how the follower stops being one). The 403 body names the primary
// so a misdirected writer can redirect itself.
func readOnlyGuard(next http.Handler, cfg HandlerConfig) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if cfg.readOnly() {
			switch r.Method {
			case http.MethodGet, http.MethodHead, http.MethodOptions:
			case http.MethodPost:
				if r.URL.Path != "/v1/detect" && !strings.HasPrefix(r.URL.Path, "/v1/admin/") {
					rejectWrite(w, cfg.primaryURL())
					return
				}
			default:
				rejectWrite(w, cfg.primaryURL())
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

func rejectWrite(w http.ResponseWriter, primaryURL string) {
	body := map[string]string{"error": "this daemon is a read-only replica; write to the primary"}
	if primaryURL != "" {
		body["primary"] = primaryURL
	}
	writeJSON(w, http.StatusForbidden, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeIngestError maps an ingest failure onto the durability contract:
//
//   - ErrDegraded → 503 with Retry-After and "degraded": true. The store's
//     WAL rejected the batch but is healing itself via a snapshot; the
//     client should retry after the hinted delay (dedup makes that safe).
//     A bare 500 here taught clients to treat the outage as fatal.
//   - ErrFenced → 409 with "fenced": true. This node observed a higher
//     failover epoch — it is a deposed primary and retrying against it can
//     never succeed; the error body names the ruling epoch.
//   - ErrOverloaded → 429 with Retry-After and "overloaded": true. The
//     admission queue was full so the batch was shed before touching the
//     store; backing off and retrying is the whole contract.
//
// Everything else falls through to the generic mapping.
func writeIngestError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, persist.ErrDegraded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": err.Error(), "degraded": true})
	case errors.Is(err, persist.ErrFenced):
		writeJSON(w, http.StatusConflict, map[string]any{"error": err.Error(), "fenced": true})
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]any{"error": err.Error(), "overloaded": true})
	default:
		writeError(w, statusFor(err), err)
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	// Reject trailing garbage so a concatenated or truncated payload fails
	// loudly instead of half-applying. The limit reader can trip here too —
	// a first value that fits followed by bytes that push past the cap — and
	// that must keep reporting as an over-limit body (413), not as trailing
	// data (400).
	if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("bad request body: %w", err)
		}
		return errors.New("bad request body: trailing data after JSON value")
	}
	return nil
}

// bodyErrStatus distinguishes an over-limit body (413, the client should
// split the batch) from malformed JSON (400, the client should fix it).
func bodyErrStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

type edgesRequest struct {
	// Edges is the batch, one [user, merchant] pair per element.
	Edges [][2]uint32 `json:"edges"`
}

type edgesResponse struct {
	Added      int    `json:"added"`
	Duplicates int    `json:"duplicates"`
	Version    uint64 `json:"version"`
	NumUsers   int    `json:"num_users"`
	NumMerch   int    `json:"num_merchants"`
	NumEdges   int    `json:"num_edges"`
}

func handleEdges(e *Engine, w http.ResponseWriter, r *http.Request) {
	var req edgesRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	if len(req.Edges) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("edges must be a non-empty array of [user, merchant] pairs"))
		return
	}
	batch := make([]bipartite.Edge, len(req.Edges))
	for i, p := range req.Edges {
		batch[i] = bipartite.Edge{U: p[0], V: p[1]}
	}
	res, err := e.Ingest(batch)
	if err != nil {
		// An id-bound rejection is the client's to fix (400); a degraded
		// WAL is a retryable outage (503 + Retry-After — dedup makes the
		// retry safe); a fenced store is neither (409): this node was
		// deposed and the client must re-target the new primary.
		writeIngestError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, edgesResponse{
		Added:      res.Added,
		Duplicates: res.Duplicates,
		Version:    res.Version,
		NumUsers:   res.Stats.NumUsers,
		NumMerch:   res.Stats.NumMerchants,
		NumEdges:   res.Stats.NumEdges,
	})
}

type detectRequest struct {
	// T is the MVA vote threshold; null/omitted or negative → N/2.
	T *int `json:"t"`
	// N, S, Sampler, Seed mirror serve.Params.
	N       int     `json:"n"`
	S       float64 `json:"s"`
	Sampler string  `json:"sampler"`
	Seed    int64   `json:"seed"`
}

func (req detectRequest) params() Params {
	return Params{Sampler: req.Sampler, NumSamples: req.N, SampleRatio: req.S, Seed: req.Seed}
}

type detectResponse struct {
	GraphVersion uint64 `json:"graph_version"`
	Threshold    int    `json:"threshold"`
	NumSamples   int    `json:"num_samples"`
	Cached       bool   `json:"cached"`
	// Incremental/ReusedSamples/RerunSamples describe the ensemble run behind
	// this answer: an incremental run re-executed only the RerunSamples
	// samples its ingest delta dirtied (cache hits report the original run's
	// split).
	Incremental   bool     `json:"incremental"`
	ReusedSamples int      `json:"reused_samples"`
	RerunSamples  int      `json:"rerun_samples"`
	ElapsedMS     float64  `json:"elapsed_ms"`
	Users         []uint32 `json:"users"`
	Merchants     []uint32 `json:"merchants"`
}

func handleDetect(e *Engine, w http.ResponseWriter, r *http.Request) {
	var req detectRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	t := -1
	if req.T != nil {
		t = *req.T
	}
	start := time.Now()
	det, err := e.Detect(r.Context(), req.params(), t)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, detectResponse{
		GraphVersion:  det.GraphVersion,
		Threshold:     det.Threshold,
		NumSamples:    det.NumSamples,
		Cached:        det.Cached,
		Incremental:   det.Incremental,
		ReusedSamples: det.ReusedSamples,
		RerunSamples:  det.RerunSamples,
		ElapsedMS:     float64(time.Since(start).Microseconds()) / 1000,
		Users:         emptyNotNull(det.Users),
		Merchants:     emptyNotNull(det.Merchants),
	})
}

type votesResponse struct {
	GraphVersion uint64      `json:"graph_version"`
	NumSamples   int         `json:"num_samples"`
	Cached       bool        `json:"cached"`
	Users        []NodeVotes `json:"users"`
	Merchants    []NodeVotes `json:"merchants"`
}

func handleVotes(e *Engine, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	p := Params{Sampler: q.Get("sampler")}
	var err error
	if p.NumSamples, err = intParam(q.Get("n"), 0); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad n: %w", err))
		return
	}
	if p.SampleRatio, err = floatParam(q.Get("s"), 0); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad s: %w", err))
		return
	}
	// Seed is an int64 everywhere else (the JSON body, core.Config); parsing
	// it as the platform int would truncate large seeds on 32-bit builds and
	// silently change which ensemble a cache key names.
	seed, err := int64Param(q.Get("seed"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad seed: %w", err))
		return
	}
	p.Seed = seed
	minVotes, err := intParam(q.Get("min"), 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad min: %w", err))
		return
	}
	top, err := intParam(q.Get("top"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad top: %w", err))
		return
	}
	rk, err := e.Rank(r.Context(), p, minVotes, top)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, votesResponse{
		GraphVersion: rk.GraphVersion,
		NumSamples:   rk.NumSamples,
		Cached:       rk.Cached,
		Users:        emptyNotNull(rk.Users),
		Merchants:    emptyNotNull(rk.Merchants),
	})
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func int64Param(s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseInt(s, 10, 64)
}

func floatParam(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseFloat(s, 64)
}

// statusFor maps engine errors to HTTP statuses by inspecting the error
// itself, never the request context: a request can fail validation (400) or
// hit a real engine fault (500) and only then have its client hang up, and
// those statuses — which land in logs and metrics — must not be masked as
// 499 by the late disconnect. Only an error that is the cancellation gets
// the client-closed-request status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrInvalidParams):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

// emptyNotNull keeps empty result sets serializing as [] rather than null.
func emptyNotNull[T any](s []T) []T {
	if s == nil {
		return []T{}
	}
	return s
}
