package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ensemfdet/internal/persist"
	"ensemfdet/internal/stream"
)

// durableDaemon boots the full HTTP stack over a persistence-backed graph,
// exactly as cmd/ensemfdetd wires it with -data-dir.
func durableDaemon(t *testing.T, dir string) (*httptest.Server, *Engine) {
	t.Helper()
	st, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	g := stream.New()
	if _, err := st.Recover(g); err != nil {
		t.Fatal(err)
	}
	g.SetJournal(st)
	st.SetSource(g)
	engine := NewEngine(g, Options{})
	engine.AttachPersist(st)
	srv := httptest.NewServer(NewHandler(engine))
	t.Cleanup(srv.Close)
	return srv, engine
}

func getRaw(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, raw)
	}
	return raw
}

// TestDaemonDurabilityEndToEnd is the restart drill over HTTP: ingest,
// record /v1/votes, shut the engine down (flush), boot a second daemon over
// the same directory, and require the votes responses to be byte-identical.
// Persist counters must be visible in /v1/stats and /metrics throughout.
func TestDaemonDurabilityEndToEnd(t *testing.T) {
	dir := t.TempDir()
	srv, engine := durableDaemon(t, dir)

	for i, batch := range fraudBatches() {
		if code := postJSON(t, srv.URL+"/v1/edges", map[string]any{"edges": batch}, nil); code != http.StatusOK {
			t.Fatalf("ingest batch %d: status %d", i, code)
		}
	}
	const votesURL = "/v1/votes?n=12&s=0.3&seed=7&top=10"
	before := getRaw(t, srv.URL+votesURL)

	var st Stats
	getJSON(t, srv.URL+"/v1/stats", &st)
	if st.Persist == nil || st.Persist.AppendedRecords != 3 || st.Persist.FsyncPolicy != "always" {
		t.Fatalf("persist stats section: %+v", st.Persist)
	}
	metrics := string(getRaw(t, srv.URL+"/metrics"))
	for _, want := range []string{
		"ensemfdetd_wal_records_total 3",
		"ensemfdetd_wal_fsyncs_total",
		"ensemfdetd_persist_snapshot_version",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Graceful shutdown: flush a covering snapshot and close the WAL.
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, engine2 := durableDaemon(t, dir)
	defer engine2.Close()
	after := getRaw(t, srv2.URL+votesURL)
	if !bytes.Equal(before, after) {
		t.Fatalf("votes diverged across restart:\nbefore: %s\nafter:  %s", before, after)
	}
	var st2 Stats
	getJSON(t, srv2.URL+"/v1/stats", &st2)
	if st2.Graph.Version != st.Graph.Version {
		t.Fatalf("recovered version %d, want %d", st2.Graph.Version, st.Graph.Version)
	}
	if st2.Persist.Recovery.SnapshotVersion != st.Graph.Version {
		t.Fatalf("recovery did not use the shutdown snapshot: %+v", st2.Persist.Recovery)
	}
}
