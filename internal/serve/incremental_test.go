package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"

	"ensemfdet/internal/bipartite"
)

// onsParams picks ONS-merchant, the sampler whose reuse rule tolerates the
// user-universe growth every fresh-user edge causes; RES pins |E| and can
// never resume across an insert.
func onsParams() Params {
	return Params{Sampler: "ONS-merchant", NumSamples: 12, SampleRatio: 0.3, Seed: 7}
}

func TestDetectIncrementalAfterSmallDelta(t *testing.T) {
	g := seedStream(t)
	e := NewEngine(g, Options{})
	ctx := context.Background()

	d1, err := e.Detect(ctx, onsParams(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Incremental || d1.ReusedSamples != 0 || d1.RerunSamples != 12 {
		t.Errorf("cold detect reported incremental=%v reused=%d rerun=%d",
			d1.Incremental, d1.ReusedSamples, d1.RerunSamples)
	}

	// One new user transacting with one existing merchant: |V| is stable, so
	// every sample that did not draw that merchant is provably clean.
	g.AppendEdge(5000, 3)
	d2, err := e.Detect(ctx, onsParams(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Incremental {
		t.Fatal("detect after a 1-edge delta did not run incrementally")
	}
	if d2.ReusedSamples+d2.RerunSamples != 12 {
		t.Errorf("reused %d + rerun %d != N = 12", d2.ReusedSamples, d2.RerunSamples)
	}
	if d2.ReusedSamples == 0 {
		t.Error("1-edge delta dirtied every sample (reuse proof never fired)")
	}

	// The incremental answer must be byte-identical to a cold run of the
	// same configuration on the same graph.
	vs, err := e.Votes(ctx, onsParams())
	if err != nil {
		t.Fatal(err)
	}
	cold := NewEngine(g, Options{IncrementalMaxDeltaRatio: -1})
	cvs, err := cold.Votes(ctx, onsParams())
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(vs.Votes.User, cvs.Votes.User) || !slices.Equal(vs.Votes.Merchant, cvs.Votes.Merchant) {
		t.Error("incremental votes differ from cold votes")
	}

	st := e.Stats()
	if st.Detect.IncrementalRuns != 1 || st.Detect.ColdRuns != 1 {
		t.Errorf("detect stats: %+v, want 1 incremental + 1 cold run", st.Detect)
	}
	if st.Detect.SamplesReused != uint64(d2.ReusedSamples) || st.Detect.SamplesRerun != uint64(12+d2.RerunSamples) {
		t.Errorf("sample counters %+v inconsistent with responses (reused=%d rerun=%d)",
			st.Detect, d2.ReusedSamples, d2.RerunSamples)
	}
	if st.Detect.LatencyCount < 2 {
		t.Errorf("latency histogram observed %d requests, want >= 2", st.Detect.LatencyCount)
	}

	// A repeat at the same version is a cache hit that reports the run's
	// original provenance.
	d3, err := e.Detect(ctx, onsParams(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if !d3.Cached || !d3.Incremental || d3.ReusedSamples != d2.ReusedSamples {
		t.Errorf("cached repeat: cached=%v incremental=%v reused=%d, want true/true/%d",
			d3.Cached, d3.Incremental, d3.ReusedSamples, d2.ReusedSamples)
	}
}

func TestIncrementalDisabledByNegativeRatio(t *testing.T) {
	g := seedStream(t)
	e := NewEngine(g, Options{IncrementalMaxDeltaRatio: -1})
	ctx := context.Background()
	if _, err := e.Detect(ctx, onsParams(), 6); err != nil {
		t.Fatal(err)
	}
	g.AppendEdge(5000, 3)
	d, err := e.Detect(ctx, onsParams(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if d.Incremental {
		t.Error("incremental run despite a negative threshold")
	}
	if st := e.Stats(); st.Detect.ColdRuns != 2 || st.Detect.IncrementalRuns != 0 {
		t.Errorf("detect stats: %+v, want 2 cold runs", st.Detect)
	}
}

func TestIncrementalFallsBackColdWhenDeltaLarge(t *testing.T) {
	g := seedStream(t)
	e := NewEngine(g, Options{})
	ctx := context.Background()
	if _, err := e.Detect(ctx, onsParams(), 6); err != nil {
		t.Fatal(err)
	}
	// A batch churning far more than 25% of the graph's edges must not go
	// incremental: classification would mark nearly everything dirty anyway.
	big := make([]bipartite.Edge, 0, 4000)
	for u := uint32(0); u < 100; u++ {
		for v := uint32(0); v < 40; v++ {
			big = append(big, bipartite.Edge{U: 6000 + u, V: v})
		}
	}
	g.Append(big)
	d, err := e.Detect(ctx, onsParams(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if d.Incremental {
		t.Error("incremental run despite delta past the ratio threshold")
	}
	if st := e.Stats(); st.Detect.ColdRuns != 2 || st.Detect.IncrementalFallbacks != 0 {
		t.Errorf("detect stats: %+v, want 2 cold runs and no fallback (threshold pre-empted the attempt)", st.Detect)
	}
}

func TestIncrementalResInsertFallsBackNotResumable(t *testing.T) {
	g := seedStream(t)
	e := NewEngine(g, Options{})
	ctx := context.Background()
	p := Params{Sampler: "RES", NumSamples: 12, SampleRatio: 0.3, Seed: 7}
	if _, err := e.Detect(ctx, p, 6); err != nil {
		t.Fatal(err)
	}
	// RES draws edge indices, so reuse requires |E| unchanged; an insert is
	// provably non-resumable and must fall back cold — correctly, not
	// erroring.
	g.AppendEdge(5000, 3)
	d, err := e.Detect(ctx, p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if d.Incremental {
		t.Error("RES resumed across an |E| change")
	}
	st := e.Stats()
	if st.Detect.IncrementalFallbacks != 1 || st.Detect.ColdRuns != 2 {
		t.Errorf("detect stats: %+v, want 1 fallback and 2 cold runs", st.Detect)
	}
	cold := NewEngine(g, Options{IncrementalMaxDeltaRatio: -1})
	cvs, err := cold.Votes(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := e.Votes(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(vs.Votes.User, cvs.Votes.User) || !slices.Equal(vs.Votes.Merchant, cvs.Votes.Merchant) {
		t.Error("fallback votes differ from cold votes")
	}
}

// TestEvictionKeepsIncrementalBaseUnderPressure is the regression test for
// the FIFO-eviction bug: at a small cache bound, inserting version v's entry
// evicted the just-completed v-1 entry — exactly the incremental base —
// before the run could read it, so a tight ingest/detect loop never reused a
// sample. The base is now resolved under the insert's lock and the newest
// completed entry per fingerprint is pinned against the first eviction pass.
func TestEvictionKeepsIncrementalBaseUnderPressure(t *testing.T) {
	g := seedStream(t)
	e := NewEngine(g, Options{MaxCacheEntries: 1})
	ctx := context.Background()
	if _, err := e.Detect(ctx, onsParams(), 6); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		g.AppendEdge(uint32(5100+i), 3)
		d, err := e.Detect(ctx, onsParams(), 6)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Incremental {
			t.Fatalf("cycle %d: eviction pressure broke the incremental chain", i)
		}
	}
	if st := e.Stats(); st.CacheEntries != 1 {
		t.Errorf("cache holds %d entries, want the bound 1", st.CacheEntries)
	}
}

func TestEvictionBoundsPinnedEntriesAcrossFingerprints(t *testing.T) {
	e := NewEngine(seedStream(t), Options{MaxCacheEntries: 2})
	ctx := context.Background()
	// Every completed entry here is the newest for its fingerprint — all
	// pinned — so the second eviction pass must reclaim them anyway to hold
	// the memory bound.
	for seed := int64(1); seed <= 5; seed++ {
		if _, err := e.Votes(ctx, Params{NumSamples: 4, SampleRatio: 0.2, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.CacheEntries != 2 {
		t.Errorf("cache holds %d entries, want 2", st.CacheEntries)
	}
}

func TestFlushCacheDropsIncrementalBases(t *testing.T) {
	g := seedStream(t)
	e := NewEngine(g, Options{})
	ctx := context.Background()
	if _, err := e.Detect(ctx, onsParams(), 6); err != nil {
		t.Fatal(err)
	}
	e.FlushCache()
	g.AppendEdge(5000, 3)
	d, err := e.Detect(ctx, onsParams(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if d.Incremental {
		t.Error("run resumed from a flushed base")
	}
}

func TestDetectHTTPReportsIncrementalFields(t *testing.T) {
	g := seedStream(t)
	srv := httptest.NewServer(NewHandler(NewEngine(g, Options{})))
	defer srv.Close()

	detect := func() (m map[string]any) {
		t.Helper()
		body := `{"t":6,"n":12,"s":0.3,"seed":7,"sampler":"ONS-merchant"}`
		resp, err := http.Post(srv.URL+"/v1/detect", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("detect status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	first := detect()
	if first["incremental"] != false || first["rerun_samples"] != float64(12) {
		t.Errorf("cold response: incremental=%v rerun_samples=%v", first["incremental"], first["rerun_samples"])
	}
	g.AppendEdge(5000, 3)
	second := detect()
	if second["incremental"] != true {
		t.Fatalf("post-delta response not incremental: %v", second)
	}
	if second["reused_samples"].(float64)+second["rerun_samples"].(float64) != 12 {
		t.Errorf("reused %v + rerun %v != 12", second["reused_samples"], second["rerun_samples"])
	}

	// /v1/stats carries the detect section; /metrics the counters and the
	// latency histogram.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Detect DetectStats `json:"detect"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Detect.IncrementalRuns != 1 || st.Detect.ColdRuns != 1 || st.Detect.SamplesReused == 0 {
		t.Errorf("stats detect section: %+v", st.Detect)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"ensemfdetd_detect_incremental_runs_total 1",
		"ensemfdetd_detect_cold_runs_total 1",
		"ensemfdetd_detect_samples_reused_total",
		"ensemfdetd_detect_samples_rerun_total",
		"ensemfdetd_detect_seconds_bucket{le=\"+Inf\"}",
		"ensemfdetd_detect_seconds_sum",
		"ensemfdetd_detect_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
