package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/stream"
)

// blockingJournal parks every append until released, letting a test hold
// ingest slots occupied for as long as it likes.
type blockingJournal struct {
	entered chan struct{} // signaled once per append that has started
	release chan struct{} // closed to let all parked appends finish
}

func (j *blockingJournal) AppendEdges(uint64, []bipartite.Edge) error {
	j.entered <- struct{}{}
	<-j.release
	return nil
}

func (j *blockingJournal) RetireEdges(uint64, []bipartite.Edge, stream.WindowMark) error {
	return nil
}

// TestIngestAdmissionControl pins the admission contract at the engine
// level: with IngestQueue slots all held by in-flight batches, the next
// Ingest is shed immediately with ErrOverloaded — it never blocks and never
// touches the store — and the shed/queue-depth counters say so. Once a slot
// frees, ingest admits again.
func TestIngestAdmissionControl(t *testing.T) {
	const bound = 2
	j := &blockingJournal{entered: make(chan struct{}, bound), release: make(chan struct{})}
	g := stream.New()
	g.SetJournal(j)
	e := NewEngine(g, Options{IngestQueue: bound})

	var wg sync.WaitGroup
	for i := 0; i < bound; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Ingest([]bipartite.Edge{{U: uint32(i), V: uint32(i)}}); err != nil {
				t.Errorf("parked ingest %d: %v", i, err)
			}
		}()
	}
	for i := 0; i < bound; i++ {
		<-j.entered // both batches are inside the journal, holding their slots
	}

	if st := e.Stats().IngestStats; st.QueueDepth != bound || st.QueueBound != bound {
		t.Errorf("saturated queue: depth=%d bound=%d, want %d/%d", st.QueueDepth, st.QueueBound, bound, bound)
	}
	_, err := e.Ingest([]bipartite.Edge{{U: 9, V: 9}})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("ingest into full queue: err=%v, want ErrOverloaded", err)
	}
	if shed := e.Stats().IngestStats.Shed; shed != 1 {
		t.Errorf("shed counter = %d, want 1", shed)
	}

	close(j.release)
	wg.Wait()
	if _, err := e.Ingest([]bipartite.Edge{{U: 10, V: 10}}); err != nil {
		t.Fatalf("ingest after drain: %v", err)
	}
	st := e.Stats().IngestStats
	if st.QueueDepth != 0 {
		t.Errorf("drained queue depth = %d, want 0", st.QueueDepth)
	}
	if st.Shed != 1 {
		t.Errorf("shed counter after drain = %d, want 1 (shed batches stay shed)", st.Shed)
	}
}

// TestIngestUnboundedByDefault pins that the zero Options keep the
// pre-admission-control behavior: no queue, nothing shed.
func TestIngestUnboundedByDefault(t *testing.T) {
	e := NewEngine(stream.New(), Options{})
	for i := 0; i < 64; i++ {
		if _, err := e.Ingest([]bipartite.Edge{{U: uint32(i), V: 0}}); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	st := e.Stats().IngestStats
	if st.Shed != 0 || st.QueueBound != 0 || st.QueueDepth != 0 {
		t.Errorf("unbounded engine reported shed=%d bound=%d depth=%d, want all zero",
			st.Shed, st.QueueBound, st.QueueDepth)
	}
}

// TestIngestOverloadedIs429 pins the HTTP face of admission control: a shed
// batch is 429 Too Many Requests with a Retry-After hint and an
// "overloaded" flag, so clients can distinguish backpressure (back off and
// retry) from a broken request (400) or a degraded store (503).
func TestIngestOverloadedIs429(t *testing.T) {
	j := &blockingJournal{entered: make(chan struct{}, 1), release: make(chan struct{})}
	g := stream.New()
	g.SetJournal(j)
	srv := httptest.NewServer(NewHandler(NewEngine(g, Options{IngestQueue: 1})))
	t.Cleanup(srv.Close)

	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/edges", "application/json",
			bytes.NewReader([]byte(`{"edges":[[1,2]]}`)))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	<-j.entered // the first batch holds the only slot inside the journal

	resp, err := http.Post(srv.URL+"/v1/edges", "application/json",
		bytes.NewReader([]byte(`{"edges":[[3,4]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed ingest: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After header")
	}
	var body struct {
		Overloaded bool `json:"overloaded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.Overloaded {
		t.Error(`429 body missing "overloaded": true`)
	}

	close(j.release)
	if err := <-done; err != nil {
		t.Fatalf("parked ingest: %v", err)
	}
}
