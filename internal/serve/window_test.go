package serve

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/stream"
)

// TestWindowStatsAndMetricsOverHTTP boots the full handler over a windowed
// graph and checks the window section of /v1/stats and the
// ensemfdetd_window_* metrics appear once a policy is active and a pass has
// retired something.
func TestWindowStatsAndMetricsOverHTTP(t *testing.T) {
	g := stream.NewSharded(4)
	g.SetWindow(stream.WindowPolicy{MaxVersions: 1})
	e := NewEngine(g, Options{})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)

	if code := postJSON(t, srv.URL+"/v1/edges", map[string]any{"edges": [][2]uint32{{0, 0}, {1, 1}}}, nil); code != 200 {
		t.Fatalf("ingest: %d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/edges", map[string]any{"edges": [][2]uint32{{2, 2}}}, nil); code != 200 {
		t.Fatalf("ingest: %d", code)
	}
	res, ok := e.RetireNow()
	if !ok || res.Removed != 2 {
		t.Fatalf("RetireNow: ok=%v %+v, want the first batch retired", ok, res)
	}

	var st Stats
	getJSON(t, srv.URL+"/v1/stats", &st)
	if st.Window == nil {
		t.Fatal("stats missing window section with a policy active")
	}
	if st.Window.Policy.MaxVersions != 1 || st.Window.RetiredEdges != 2 ||
		st.Window.RetirePasses != 1 || st.Window.Mark.Version != 1 {
		t.Fatalf("window stats: %+v", st.Window)
	}
	if st.Window.LiveEdges != st.Graph.NumEdges {
		t.Fatalf("window live edges %d != graph edges %d", st.Window.LiveEdges, st.Graph.NumEdges)
	}

	metrics := string(getRaw(t, srv.URL+"/metrics"))
	for _, want := range []string{
		"ensemfdetd_window_retired_edges_total 2",
		"ensemfdetd_window_retire_passes_total 1",
		"ensemfdetd_window_retire_seconds_total",
		"ensemfdetd_window_live_edges 1",
		"ensemfdetd_window_watermark_version 1",
		"ensemfdetd_window_journal_errors_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestStatsOmitWindowWithoutPolicy: an unbounded daemon keeps the old stats
// shape — no window section, no window metrics.
func TestStatsOmitWindowWithoutPolicy(t *testing.T) {
	g := stream.New()
	e := NewEngine(g, Options{})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)

	var st Stats
	getJSON(t, srv.URL+"/v1/stats", &st)
	if st.Window != nil {
		t.Fatalf("window section present without a policy: %+v", st.Window)
	}
	if _, ok := e.RetireNow(); ok {
		t.Fatal("RetireNow reported ok without a policy")
	}
	metrics := string(getRaw(t, srv.URL+"/metrics"))
	if strings.Contains(metrics, "ensemfdetd_window_") {
		t.Fatal("window metrics exported without a policy")
	}
}

// TestIngestKicksRetireOnCountBound pins the MaxEdges backstop: a batch that
// pushes the live count past the cap triggers a background retire without
// waiting for any ticker.
func TestIngestKicksRetireOnCountBound(t *testing.T) {
	g := stream.NewSharded(4)
	g.SetWindow(stream.WindowPolicy{MaxEdges: 10})
	e := NewEngine(g, Options{})
	t.Cleanup(func() { e.Close() })

	batch := func(base, n int) []bipartite.Edge {
		out := make([]bipartite.Edge, n)
		for i := range out {
			out[i] = bipartite.Edge{U: uint32(base + i), V: uint32(base + i)}
		}
		return out
	}
	// Three 5-edge versions then a 10-edge one: 25 live > 10. Whole-version
	// retirement drops the three oldest versions, leaving exactly the last.
	e.Ingest(batch(0, 5))
	e.Ingest(batch(100, 5))
	e.Ingest(batch(200, 5))
	e.Ingest(batch(300, 10))

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := g.Stats().NumEdges; n == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background retire never enforced the cap: %d live edges", g.Stats().NumEdges)
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap, _ := g.Snapshot()
	if !snap.HasEdge(300, 300) || snap.HasEdge(0, 0) {
		t.Fatal("count retire kept the wrong versions")
	}
	if e.retireKicks.Load() == 0 {
		t.Fatal("ingest never kicked a retire")
	}
}
