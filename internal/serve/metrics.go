package serve

import (
	"fmt"
	"net/http"
	"strconv"
)

// handleMetrics renders the engine's counters in the Prometheus text
// exposition format (version 0.0.4), the scrape-friendly sibling of the JSON
// /v1/stats endpoint. Everything here is served from existing atomics — a
// scrape never takes the cache lock for more than the entry count and never
// touches a snapshot — so aggressive scrape intervals cannot perturb the
// serving path.
func handleMetrics(e *Engine, version string, w http.ResponseWriter, _ *http.Request) {
	st := e.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	if version != "" {
		const bi = "ensemfdetd_build_info"
		fmt.Fprintf(w, "# HELP %s Build information for this daemon, value always 1.\n# TYPE %s gauge\n", bi, bi)
		fmt.Fprintf(w, "%s{version=%q} 1\n", bi, version)
	}

	counter("ensemfdetd_ingest_batches_total", "Edge batches accepted by the ingest endpoint.", st.IngestStats.Batches)
	counter("ensemfdetd_ingest_edges_total", "Edges added to the graph after deduplication.", st.IngestStats.Added)
	counter("ensemfdetd_ingest_duplicates_total", "Ingested edges dropped as duplicates.", st.IngestStats.Duplicates)
	counter("ensemfdetd_ingest_shed_total", "Ingest batches rejected with 429 because the admission queue was full.", st.IngestStats.Shed)
	gauge("ensemfdetd_ingest_queue_depth", "Ingest batches currently holding an admission slot (0 when admission control is off).", int64(st.IngestStats.QueueDepth))

	counter("ensemfdetd_cache_hits_total", "Detection requests answered from the vote cache.", st.CacheHits)
	counter("ensemfdetd_cache_misses_total", "Detection requests that had to start an ensemble run.", st.CacheMisses)
	counter("ensemfdetd_ensemble_runs_total", "Completed ensemble runs (cold or incremental).", st.EnsembleRuns)
	gauge("ensemfdetd_cache_entries", "Vote-cache entries currently resident.", int64(st.CacheEntries))
	gauge("ensemfdetd_inflight_runs", "Ensemble runs executing right now.", int64(st.InFlight))

	counter("ensemfdetd_detect_incremental_runs_total", "Ensemble runs that resumed from a previous version's record.", st.Detect.IncrementalRuns)
	counter("ensemfdetd_detect_cold_runs_total", "Ensemble runs executed from scratch.", st.Detect.ColdRuns)
	counter("ensemfdetd_detect_incremental_fallbacks_total", "Runs that found a base and a small delta but could not prove reuse and went cold.", st.Detect.IncrementalFallbacks)
	counter("ensemfdetd_detect_samples_reused_total", "Ensemble samples carried over from an incremental base without re-execution.", st.Detect.SamplesReused)
	counter("ensemfdetd_detect_samples_rerun_total", "Ensemble samples executed (dirty samples of incremental runs plus all samples of cold runs).", st.Detect.SamplesRerun)
	counter("ensemfdetd_detect_peel_rounds_total", "Peeling rounds executed across completed ensemble runs.", st.Detect.PeelRounds)

	{
		const h = "ensemfdetd_detect_seconds"
		cum, _, sum := e.detectLatency.snapshot()
		fmt.Fprintf(w, "# HELP %s End-to-end vote latency per detect request, cache hits included.\n# TYPE %s histogram\n", h, h)
		for i, bound := range latencyBounds {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h, formatSeconds(bound), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h, cum[len(latencyBounds)])
		fmt.Fprintf(w, "%s_sum %s\n", h, formatSeconds(sum))
		// _count must equal the +Inf bucket; the separately-maintained atomic
		// count can run ahead of the bucket snapshot under concurrent observes.
		fmt.Fprintf(w, "%s_count %d\n", h, cum[len(latencyBounds)])
	}

	gauge("ensemfdetd_graph_version", "Current graph version (bumps once per batch that adds edges).", int64(st.Graph.Version))
	gauge("ensemfdetd_graph_users", "User nodes in the dynamic graph.", int64(st.Graph.NumUsers))
	gauge("ensemfdetd_graph_merchants", "Merchant nodes in the dynamic graph.", int64(st.Graph.NumMerchants))
	gauge("ensemfdetd_graph_edges", "Deduplicated edges in the dynamic graph.", int64(st.Graph.NumEdges))

	if st.Build != nil {
		const builds = "ensemfdetd_snapshot_builds_total"
		fmt.Fprintf(w, "# HELP %s Snapshot constructions by kind (delta = incremental merge, full = rebuild).\n# TYPE %s counter\n", builds, builds)
		fmt.Fprintf(w, "%s{kind=\"delta\"} %d\n", builds, st.Build.DeltaBuilds)
		fmt.Fprintf(w, "%s{kind=\"full\"} %d\n", builds, st.Build.FullBuilds)
		const dur = "ensemfdetd_snapshot_build_seconds_total"
		fmt.Fprintf(w, "# HELP %s Cumulative time spent building snapshots, by kind.\n# TYPE %s counter\n", dur, dur)
		fmt.Fprintf(w, "%s{kind=\"delta\"} %s\n", dur, formatSeconds(st.Build.DeltaBuildDur.Seconds()))
		fmt.Fprintf(w, "%s{kind=\"full\"} %s\n", dur, formatSeconds(st.Build.FullBuildDur.Seconds()))
	}
	if win := st.Window; win != nil {
		counter("ensemfdetd_window_retired_edges_total", "Edges retired by sliding-window expiry passes.", win.RetiredEdges)
		counter("ensemfdetd_window_retire_passes_total", "Retire passes that removed at least one edge.", win.RetirePasses)
		const retireDur = "ensemfdetd_window_retire_seconds_total"
		fmt.Fprintf(w, "# HELP %s Cumulative time spent inside removing retire passes.\n# TYPE %s counter\n%s %s\n",
			retireDur, retireDur, retireDur, formatSeconds(win.RetireDur.Seconds()))
		counter("ensemfdetd_window_journal_errors_total", "Retire passes whose tombstone failed to reach the WAL.", win.JournalErrors)
		gauge("ensemfdetd_window_live_edges", "Live edges currently inside the window.", int64(win.LiveEdges))
		gauge("ensemfdetd_window_watermark_version", "Expiry watermark: no live edge was ingested at or below this version.", int64(win.Mark.Version))
	}
	if len(st.Shards) > 0 {
		const name = "ensemfdetd_shard_edges"
		fmt.Fprintf(w, "# HELP %s Edges held by each ingest shard.\n# TYPE %s gauge\n", name, name)
		for _, s := range st.Shards {
			fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", name, s.Shard, s.NumEdges)
		}
	}
	if p := st.Persist; p != nil {
		counter("ensemfdetd_wal_records_total", "Edge batches appended to the write-ahead log.", p.AppendedRecords)
		counter("ensemfdetd_wal_bytes_total", "Bytes appended to the write-ahead log.", p.AppendedBytes)
		counter("ensemfdetd_wal_fsyncs_total", "WAL fsync calls.", p.Fsyncs)
		counter("ensemfdetd_wal_tombstones_total", "Tombstone (edge-retirement) records appended to the write-ahead log.", p.TombstoneRecords)
		counter("ensemfdetd_wal_compactions_total", "Sealed WAL segments rewritten to drop snapshot-covered records.", p.Compactions)
		counter("ensemfdetd_wal_compacted_bytes_total", "WAL bytes reclaimed by segment compaction.", p.CompactedBytes)
		gauge("ensemfdetd_wal_segments", "WAL segments currently on disk.", int64(p.WALSegments))
		gauge("ensemfdetd_wal_disk_bytes", "WAL bytes currently on disk.", p.WALBytes)
		counter("ensemfdetd_persist_snapshots_total", "Durable graph snapshots written.", p.SnapshotsWritten)
		counter("ensemfdetd_persist_snapshot_errors_total", "Failed snapshot attempts.", p.SnapshotErrors)
		gauge("ensemfdetd_persist_snapshot_version", "Graph version of the newest durable snapshot.", int64(p.SnapshotVersion))
		gauge("ensemfdetd_persist_wal_bytes_since_snapshot", "WAL growth past the newest snapshot (snapshot trigger input).", p.BytesSinceSnapshot)
		gauge("ensemfdetd_persist_wal_gap_version", "Non-zero when ingest is degraded by a WAL failure; heals at the next covering snapshot.", int64(p.WALGapVersion))
	}
	if rp := st.Repl; rp != nil {
		const role = "ensemfdetd_repl_role"
		fmt.Fprintf(w, "# HELP %s Replication role of this daemon, value always 1.\n# TYPE %s gauge\n", role, role)
		fmt.Fprintf(w, "%s{role=%q} 1\n", role, rp.Role)
		counter("ensemfdetd_repl_bytes_shipped_total", "Bytes shipped over the replication channel (sent by a primary, received by a follower).", rp.BytesShipped)
		gauge("ensemfdetd_repl_epoch", "Failover epoch (term) this node has adopted.", int64(rp.Epoch))
		fenced := int64(0)
		if rp.Fenced {
			fenced = 1
		}
		gauge("ensemfdetd_repl_fenced", "Whether this node is a deposed primary rejecting local writes.", fenced)
		counter("ensemfdetd_repl_promotions_total", "Follower-to-primary promotions performed by this process.", rp.Promotions)
		if rp.Role == "primary" {
			counter("ensemfdetd_repl_tail_requests_total", "Tail requests answered for followers.", rp.TailRequests)
			counter("ensemfdetd_repl_tail_records_total", "WAL records shipped through the tail endpoint.", rp.TailRecords)
			counter("ensemfdetd_repl_files_shipped_total", "Snapshot and segment files shipped to bootstrapping followers.", rp.FilesShipped)
			counter("ensemfdetd_repl_epoch_fences_total", "Requests observed advertising a higher epoch than ours (deposition signals).", rp.EpochFences)
		} else {
			gauge("ensemfdetd_repl_versions_behind", "Graph versions this follower lags its primary by.", int64(rp.VersionsBehind))
			const sb = "ensemfdetd_repl_seconds_behind"
			fmt.Fprintf(w, "# HELP %s Seconds this follower has spent behind its primary (0 when caught up).\n# TYPE %s gauge\n%s %s\n",
				sb, sb, sb, formatSeconds(rp.SecondsBehind))
			counter("ensemfdetd_repl_records_applied_total", "Replicated WAL records applied to the local graph.", rp.RecordsApplied)
			counter("ensemfdetd_repl_tombstones_applied_total", "Replicated tombstone records applied to the local graph.", rp.TombstonesApplied)
			counter("ensemfdetd_repl_resyncs_total", "Snapshot resyncs after the primary truncated past this follower.", rp.Resyncs)
			counter("ensemfdetd_repl_reconnects_total", "Tail stream breaks that triggered a reconnect.", rp.Reconnects)
			counter("ensemfdetd_repl_journal_errors_total", "Replicated records that failed to reach the local WAL.", rp.JournalErrors)
			counter("ensemfdetd_repl_epoch_adopts_total", "Higher failover epochs adopted in place.", rp.EpochAdopts)
			counter("ensemfdetd_repl_epoch_resyncs_total", "Epoch-boundary resyncs off an abandoned timeline.", rp.EpochResyncs)
			counter("ensemfdetd_repl_epoch_rejects_total", "Replication responses refused because the sender's epoch was below ours.", rp.EpochRejects)
			const bo = "ensemfdetd_repl_backoff_seconds"
			fmt.Fprintf(w, "# HELP %s Cumulative seconds spent sleeping between replication retries.\n# TYPE %s counter\n%s %s\n",
				bo, bo, bo, formatSeconds(rp.BackoffSeconds))
			ready := int64(0)
			if rp.Ready {
				ready = 1
			}
			gauge("ensemfdetd_repl_ready", "Whether this follower currently passes its readiness lag gate.", ready)
		}
	}
}

// formatSeconds renders a float in the shortest round-trippable form, the
// way Prometheus client libraries do.
func formatSeconds(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
