package serve

import (
	"math/rand"
	"reflect"
	"testing"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/core"
	"ensemfdet/internal/density"
	"ensemfdet/internal/fdet"
	"ensemfdet/internal/sampling"
	"ensemfdet/internal/stream"
)

// TestBucketHeapEquivalenceAcrossShardCounts closes the shard dimension of
// the bucket-peeler contract: snapshots built through 1-, 4-, and 16-shard
// ingest (batched, so the incremental build path runs) are detected on with
// both peeling engines, for every sampler; votes and kˆ must be
// byte-identical bucket-vs-heap at every shard count, and identical across
// shard counts.
func TestBucketHeapEquivalenceAcrossShardCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	edges := make([]bipartite.Edge, 0, 2300)
	for i := 0; i < 2000; i++ {
		edges = append(edges, bipartite.Edge{U: uint32(rng.Intn(350)), V: uint32(rng.Intn(300))})
	}
	for u := 0; u < 20; u++ {
		for v := 0; v < 10; v++ {
			edges = append(edges, bipartite.Edge{U: uint32(350 + u), V: uint32(300 + v)})
		}
	}

	for _, m := range sampling.All() {
		var ref *core.Output
		for _, shards := range []int{1, 4, 16} {
			sg := stream.NewSharded(shards)
			for off := 0; off < len(edges); off += 131 {
				end := off + 131
				if end > len(edges) {
					end = len(edges)
				}
				sg.Append(edges[off:end])
				sg.Snapshot() // force the delta-build chain between batches
			}
			g, _ := sg.Snapshot()

			cfg := core.Config{
				Method:      m,
				NumSamples:  8,
				SampleRatio: 0.25,
				Seed:        13,
				Parallelism: 4,
				FDet:        fdet.Options{Metric: density.AvgDegree{}},
			}
			bucket, err := core.Run(g, cfg)
			if err != nil {
				t.Fatalf("%s shards=%d (bucket): %v", m.Name(), shards, err)
			}
			cfg.FDet.ForceHeap = true
			heap, err := core.Run(g, cfg)
			if err != nil {
				t.Fatalf("%s shards=%d (heap): %v", m.Name(), shards, err)
			}
			if !reflect.DeepEqual(bucket.Votes, heap.Votes) {
				t.Errorf("%s shards=%d: votes differ between bucket and heap engines", m.Name(), shards)
			}
			if !reflect.DeepEqual(bucket.KHats, heap.KHats) {
				t.Errorf("%s shards=%d: kˆ differs between bucket and heap engines", m.Name(), shards)
			}
			if ref == nil {
				ref = bucket
				continue
			}
			if !reflect.DeepEqual(bucket.Votes, ref.Votes) {
				t.Errorf("%s shards=%d: votes differ from single-shard reference", m.Name(), shards)
			}
		}
	}
}
