package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/stream"
)

// daemon boots the full HTTP stack over an empty dynamic graph, exactly as
// cmd/ensemfdetd wires it.
func daemon(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(NewEngine(stream.New(), Options{})))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	decodeResponse(t, resp, out)
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	decodeResponse(t, resp, out)
	return resp.StatusCode
}

func decodeResponse(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("bad response %q: %v", raw, err)
		}
	}
}

// fraudBatches builds background traffic plus a planted dense block, split
// into several ingest batches.
func fraudBatches() [][][2]uint32 {
	rng := rand.New(rand.NewSource(42))
	var background [][2]uint32
	for i := 0; i < 1500; i++ {
		background = append(background, [2]uint32{uint32(rng.Intn(300)), uint32(rng.Intn(300))})
	}
	var block [][2]uint32
	for u := 0; u < 20; u++ {
		for v := 0; v < 10; v++ {
			block = append(block, [2]uint32{uint32(300 + u), uint32(300 + v)})
		}
	}
	return [][][2]uint32{background[:700], background[700:], block}
}

// TestDaemonEndToEnd is the acceptance-criteria flow: boot the daemon,
// ingest edges in batches, detect, sweep three thresholds, and assert via
// the stats endpoint that the unchanged graph version executed exactly one
// ensemble run; then ingest again and verify the version bump invalidates
// the cache.
func TestDaemonEndToEnd(t *testing.T) {
	srv := daemon(t)

	var health map[string]string
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, health)
	}

	// Batched ingest: version advances once per effective batch.
	var lastIngest edgesResponse
	for i, batch := range fraudBatches() {
		if code := postJSON(t, srv.URL+"/v1/edges", map[string]any{"edges": batch}, &lastIngest); code != http.StatusOK {
			t.Fatalf("ingest batch %d: status %d", i, code)
		}
		if lastIngest.Version != uint64(i+1) {
			t.Fatalf("after batch %d version = %d", i, lastIngest.Version)
		}
	}
	if lastIngest.NumUsers < 320 || lastIngest.NumEdges == 0 {
		t.Fatalf("ingest summary: %+v", lastIngest)
	}

	detectBody := func(T int) map[string]any {
		return map[string]any{"t": T, "n": 12, "s": 0.3, "seed": 7}
	}

	var first detectResponse
	if code := postJSON(t, srv.URL+"/v1/detect", detectBody(9), &first); code != http.StatusOK {
		t.Fatalf("detect: status %d", code)
	}
	if first.Cached || first.GraphVersion != 3 || first.NumSamples != 12 {
		t.Fatalf("first detect: %+v", first)
	}
	if len(first.Users) == 0 {
		t.Fatal("planted fraud block not detected")
	}

	// Threshold sweep: three different T values, all served from cache.
	sizes := make([]int, 0, 3)
	for _, T := range []int{3, 6, 12} {
		var d detectResponse
		if code := postJSON(t, srv.URL+"/v1/detect", detectBody(T), &d); code != http.StatusOK {
			t.Fatalf("detect T=%d: status %d", T, code)
		}
		if !d.Cached {
			t.Errorf("detect T=%d was not served from cache", T)
		}
		if d.Threshold != T {
			t.Errorf("threshold echoed as %d, want %d", d.Threshold, T)
		}
		sizes = append(sizes, len(d.Users))
	}
	if !(sizes[0] >= sizes[1] && sizes[1] >= sizes[2]) {
		t.Errorf("detection sets must shrink as T grows: %v", sizes)
	}

	// The votes endpoint shares the same cache entry.
	var votes votesResponse
	if code := getJSON(t, srv.URL+"/v1/votes?n=12&s=0.3&seed=7&top=5", &votes); code != http.StatusOK {
		t.Fatalf("votes: status %d", code)
	}
	if !votes.Cached || len(votes.Users) == 0 || len(votes.Users) > 5 {
		t.Fatalf("votes: %+v", votes)
	}
	for i := 1; i < len(votes.Users); i++ {
		if votes.Users[i].Votes > votes.Users[i-1].Votes {
			t.Fatal("votes not ranked descending")
		}
	}

	// Stats must prove one ensemble run served the whole sweep.
	var st Stats
	if code := getJSON(t, srv.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.EnsembleRuns != 1 {
		t.Fatalf("sweep of 3 thresholds executed %d ensemble runs, want 1", st.EnsembleRuns)
	}
	if st.CacheMisses != 1 || st.CacheHits != 4 {
		t.Errorf("cache counters: %+v, want misses=1 hits=4", st)
	}
	if st.Graph.Version != 3 {
		t.Errorf("graph version = %d, want 3", st.Graph.Version)
	}

	// A second ingest bumps the version and invalidates the cache.
	var ing edgesResponse
	postJSON(t, srv.URL+"/v1/edges", map[string]any{"edges": [][2]uint32{{900, 900}}}, &ing)
	if ing.Version != 4 {
		t.Fatalf("post-ingest version = %d, want 4", ing.Version)
	}
	var after detectResponse
	if code := postJSON(t, srv.URL+"/v1/detect", detectBody(6), &after); code != http.StatusOK {
		t.Fatalf("detect after ingest: status %d", code)
	}
	if after.Cached || after.GraphVersion != 4 {
		t.Fatalf("detect after ingest served stale cache: %+v", after)
	}
	getJSON(t, srv.URL+"/v1/stats", &st)
	if st.EnsembleRuns != 2 {
		t.Errorf("after invalidation runs = %d, want 2", st.EnsembleRuns)
	}
}

func TestDaemonDefaultThreshold(t *testing.T) {
	srv := daemon(t)
	postJSON(t, srv.URL+"/v1/edges", map[string]any{"edges": [][2]uint32{{0, 0}, {1, 0}, {1, 1}}}, nil)
	// Omitted T → N/2; explicit 0 clamps to 1 (not N/2) and the response
	// reports the threshold actually applied.
	var d detectResponse
	postJSON(t, srv.URL+"/v1/detect", map[string]any{"n": 8, "s": 0.5}, &d)
	if d.Threshold != 4 {
		t.Errorf("omitted T → %d, want N/2 = 4", d.Threshold)
	}
	postJSON(t, srv.URL+"/v1/detect", map[string]any{"t": 0, "n": 8, "s": 0.5}, &d)
	if d.Threshold != 1 {
		t.Errorf("explicit T=0 applied as %d, want clamp to 1", d.Threshold)
	}
}

func TestDaemonBadRequests(t *testing.T) {
	srv := daemon(t)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"empty edge batch", "POST", "/v1/edges", `{"edges": []}`, http.StatusBadRequest},
		{"malformed json", "POST", "/v1/edges", `{"edges": [`, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/edges", `{"edgez": [[0,1]]}`, http.StatusBadRequest},
		{"trailing garbage", "POST", "/v1/detect", `{"t":1}{"t":2}`, http.StatusBadRequest},
		{"bad sampler", "POST", "/v1/detect", `{"sampler":"bogus"}`, http.StatusBadRequest},
		{"bad ratio", "POST", "/v1/detect", `{"s": 7.5}`, http.StatusBadRequest},
		{"negative ratio", "POST", "/v1/detect", `{"s": -0.5}`, http.StatusBadRequest},
		{"negative samples", "POST", "/v1/detect", `{"n": -1}`, http.StatusBadRequest},
		{"NaN ratio query", "GET", "/v1/votes?s=NaN", "", http.StatusBadRequest},
		{"huge node id", "POST", "/v1/edges", `{"edges": [[4294967295, 0]]}`, http.StatusBadRequest},
		{"huge ensemble", "POST", "/v1/detect", `{"n": 1000000000}`, http.StatusBadRequest},
		{"bad votes query", "GET", "/v1/votes?n=abc", "", http.StatusBadRequest},
		{"wrong method", "GET", "/v1/detect", "", http.StatusMethodNotAllowed},
		{"unknown path", "GET", "/v1/nope", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

// TestDaemonOversizedBody checks that an over-limit ingest body maps to 413
// (split the batch), not 400 (fix the JSON).
func TestDaemonOversizedBody(t *testing.T) {
	srv := daemon(t)
	pair := []byte("[0,0],")
	body := append([]byte(`{"edges":[`), bytes.Repeat(pair, (maxBodyBytes/len(pair))+1)...)
	body = append(body[:len(body)-1], []byte("]}")...)
	resp, err := http.Post(srv.URL+"/v1/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestDaemonConcurrentClients fires parallel detect requests for the same
// configuration at a fresh version; single-flighting must collapse them into
// one ensemble run.
func TestDaemonConcurrentClients(t *testing.T) {
	srv := daemon(t)
	postJSON(t, srv.URL+"/v1/edges", map[string]any{"edges": fraudBatches()[2]}, nil)

	const clients = 6
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp, err := http.Post(srv.URL+"/v1/detect", "application/json",
				bytes.NewReader([]byte(`{"n": 10, "s": 0.3, "seed": 3}`)))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			errc <- err
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	var st Stats
	getJSON(t, srv.URL+"/v1/stats", &st)
	if st.EnsembleRuns != 1 {
		t.Errorf("%d concurrent clients caused %d ensemble runs, want 1", clients, st.EnsembleRuns)
	}
}

// TestStatusForInspectsError pins the 499-masking fix: the error decides the
// status, and only a cancellation error maps to 499.
func TestStatusForInspectsError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"validation", fmt.Errorf("serve: %w: bad S", ErrInvalidParams), http.StatusBadRequest},
		{"canceled", context.Canceled, 499},
		{"wrapped canceled", fmt.Errorf("wait: %w", context.Canceled), 499},
		{"deadline", context.DeadlineExceeded, 499},
		{"engine fault", errors.New("ensemble run panicked"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("%s: statusFor = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestValidationErrorWithCanceledContext is the regression the unit table
// cannot express end-to-end: a request that fails validation while its
// client has already disconnected must report 400, not 499 — the old code
// consulted r.Context().Err() first and masked every such failure.
func TestValidationErrorWithCanceledContext(t *testing.T) {
	h := NewHandler(NewEngine(stream.New(), Options{}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/v1/votes?s=7.5", nil).WithContext(ctx)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("validation failure under a canceled context: status %d, want 400", rr.Code)
	}
	// An actually-canceled wait still reports 499.
	req = httptest.NewRequest("GET", "/v1/votes?n=4&s=0.5", nil).WithContext(ctx)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != 499 {
		t.Fatalf("canceled wait: status %d, want 499", rr.Code)
	}
}

// TestVotesSeedInt64 pins the seed query parameter to a full-int64 parse: a
// seed above 2^31-1 must hit the same cache entry as the identical JSON-body
// seed on every platform, not overflow a platform int.
func TestVotesSeedInt64(t *testing.T) {
	srv := daemon(t)
	postJSON(t, srv.URL+"/v1/edges", map[string]any{"edges": fraudBatches()[2]}, nil)

	const seed = int64(3_000_000_000) // > 2^31-1
	var d detectResponse
	if code := postJSON(t, srv.URL+"/v1/detect",
		map[string]any{"n": 8, "s": 0.4, "seed": seed}, &d); code != http.StatusOK {
		t.Fatalf("detect with 33-bit seed: status %d", code)
	}
	var v votesResponse
	url := fmt.Sprintf("%s/v1/votes?n=8&s=0.4&seed=%d", srv.URL, seed)
	if code := getJSON(t, url, &v); code != http.StatusOK {
		t.Fatalf("votes with 33-bit seed: status %d", code)
	}
	// Same seed through the query path must be the cached body-path entry.
	if !v.Cached {
		t.Fatal("query-path seed did not hit the body-path cache entry")
	}
	if _, err := strconv.ParseInt("9223372036854775808", 10, 64); err == nil {
		t.Fatal("sanity: out-of-range int64 must not parse")
	}
	resp, err := http.Get(srv.URL + "/v1/votes?seed=9223372036854775808")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("overflowing seed: status %d, want 400", resp.StatusCode)
	}
}

// TestOversizedTrailingBody413 pins the decodeBody fix: a body whose first
// JSON value fits under the limit but whose trailing bytes push past it is an
// over-limit body (413), not "trailing data" (400).
func TestOversizedTrailingBody413(t *testing.T) {
	srv := daemon(t)
	body := append([]byte(`{"t":1}`), bytes.Repeat([]byte(" "), maxBodyBytes+16)...)
	resp, err := http.Post(srv.URL+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit trailing bytes: status %d, want 413", resp.StatusCode)
	}
}

// failingJournal rejects every batch, simulating a full or broken disk.
type failingJournal struct{}

func (failingJournal) AppendEdges(uint64, []bipartite.Edge) error {
	return errors.New("disk full")
}

func (failingJournal) RetireEdges(uint64, []bipartite.Edge, stream.WindowMark) error {
	return errors.New("disk full")
}

// TestIngestJournalFailureIs500 pins the durability error path: a WAL
// failure is a server fault (500, retryable), never a 400.
func TestIngestJournalFailureIs500(t *testing.T) {
	g := stream.New()
	g.SetJournal(failingJournal{})
	srv := httptest.NewServer(NewHandler(NewEngine(g, Options{})))
	t.Cleanup(srv.Close)
	resp, err := http.Post(srv.URL+"/v1/edges", "application/json",
		bytes.NewReader([]byte(`{"edges":[[1,2]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("journal failure: status %d, want 500", resp.StatusCode)
	}
}
