// Package fraudar implements the FRAUDAR baseline (Hooi et al., KDD'16;
// paper §II and §V-B2): global greedy peeling under the camouflage-resistant
// column-weighted density metric. FRAUDAR returns whole dense blocks — every
// node of a detected block is labelled suspicious — and, run for K rounds
// with edge removal between rounds, yields K blocks whose prefix unions form
// the discrete "diamond points" of the paper's Figures 3-4.
//
// The greedy engine is the same one FDET uses (FRAUDAR *is* that greedy,
// which the paper leans on); what differs is the orchestration: the full
// graph instead of samples, a fixed block count K instead of automatic
// truncation, and block-membership labelling instead of vote aggregation.
package fraudar

import (
	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/density"
	"ensemfdet/internal/eval"
	"ensemfdet/internal/fdet"
)

// DefaultK matches the paper's Table III setting ("K is fixed as 30 for
// FRAUDAR").
const DefaultK = 30

// Config parameterizes the baseline.
type Config struct {
	// K is the number of blocks detected; 0 means DefaultK.
	K int
	// Metric is the density score; nil means density.Default().
	Metric density.Metric
}

func (c Config) k() int {
	if c.K <= 0 {
		return DefaultK
	}
	return c.K
}

// Result holds the detected blocks in detection order (densest first).
type Result struct {
	Blocks []fdet.Block
}

// Detect runs FRAUDAR on the full graph.
func Detect(g *bipartite.Graph, cfg Config) Result {
	res := fdet.Detect(g, fdet.Options{
		Metric: cfg.Metric,
		FixedK: cfg.k(),
	})
	return Result{Blocks: res.Blocks}
}

// PrefixUsers returns the union of user ids over the first k blocks — the
// detected set when an operator keeps only the k densest blocks.
func (r Result) PrefixUsers(k int) []uint32 {
	if k > len(r.Blocks) {
		k = len(r.Blocks)
	}
	seen := make(map[uint32]bool)
	var out []uint32
	for _, blk := range r.Blocks[:k] {
		for _, u := range blk.Users {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	return out
}

// Curve evaluates every block-prefix operating point against the labels.
// This is FRAUDAR's entire tunable surface: K discrete points, typically
// with large gaps in |detected| — the practicability drawback the paper's
// Figure 4 illustrates (ENSEMFDET's vote threshold has no such gaps).
func (r Result) Curve(labels *eval.Labels) eval.Curve {
	var curve eval.Curve
	for k := 1; k <= len(r.Blocks); k++ {
		m := eval.Evaluate(labels, r.PrefixUsers(k))
		curve = append(curve, eval.CurvePoint{Param: float64(k), Metrics: m})
	}
	return curve
}
