package fraudar

import (
	"math/rand"
	"testing"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/eval"
)

func plantedGraph(seed int64, bgUsers, bgMerchants, bgEdges, numBlocks, blockUsers, blockMerchants int) (*bipartite.Graph, []uint32) {
	rng := rand.New(rand.NewSource(seed))
	nu := bgUsers + numBlocks*blockUsers
	nm := bgMerchants + numBlocks*blockMerchants
	b := bipartite.NewBuilderSized(nu, nm, 0)
	for i := 0; i < bgEdges; i++ {
		b.AddEdge(uint32(rng.Intn(bgUsers)), uint32(rng.Intn(bgMerchants)))
	}
	var fraud []uint32
	for k := 0; k < numBlocks; k++ {
		for i := 0; i < blockUsers; i++ {
			u := uint32(bgUsers + k*blockUsers + i)
			fraud = append(fraud, u)
			for j := 0; j < blockMerchants; j++ {
				b.AddEdge(u, uint32(bgMerchants+k*blockMerchants+j))
			}
		}
	}
	return b.Build(), fraud
}

func TestDetectRecoversPlantedBlocks(t *testing.T) {
	g, fraud := plantedGraph(1, 300, 300, 600, 2, 10, 10)
	res := Detect(g, Config{K: 5})
	if len(res.Blocks) == 0 {
		t.Fatal("no blocks")
	}
	det := res.PrefixUsers(2)
	inDet := make(map[uint32]bool)
	for _, u := range det {
		inDet[u] = true
	}
	hits := 0
	for _, u := range fraud {
		if inDet[u] {
			hits++
		}
	}
	if hits < len(fraud) {
		t.Errorf("first 2 blocks recover %d/%d planted users", hits, len(fraud))
	}
}

func TestPrefixUsersMonotone(t *testing.T) {
	g, _ := plantedGraph(3, 200, 200, 500, 2, 8, 8)
	res := Detect(g, Config{K: 6})
	prev := 0
	for k := 1; k <= len(res.Blocks); k++ {
		n := len(res.PrefixUsers(k))
		if n < prev {
			t.Fatalf("prefix user count decreased at k=%d: %d < %d", k, n, prev)
		}
		prev = n
	}
	// Clamp beyond available blocks.
	if len(res.PrefixUsers(100)) != prev {
		t.Error("PrefixUsers(100) != full union")
	}
}

func TestCurveShape(t *testing.T) {
	g, fraud := plantedGraph(5, 400, 400, 800, 3, 10, 10)
	labels := eval.NewLabels(g.NumUsers(), fraud)
	res := Detect(g, Config{K: 8})
	curve := res.Curve(labels)
	if len(curve) != len(res.Blocks) {
		t.Fatalf("curve has %d points for %d blocks", len(curve), len(res.Blocks))
	}
	// Early prefixes should be high precision (dense planted blocks first).
	if curve[0].Precision < 0.9 {
		t.Errorf("first block precision %.2f, want ≥ 0.9", curve[0].Precision)
	}
	// Recall is monotone in the prefix.
	for i := 1; i < len(curve); i++ {
		if curve[i].Recall < curve[i-1].Recall-1e-12 {
			t.Errorf("recall decreased at prefix %d", i+1)
		}
	}
}

func TestDefaultK(t *testing.T) {
	if (Config{}).k() != DefaultK {
		t.Errorf("default K = %d, want %d", (Config{}).k(), DefaultK)
	}
}

func TestDetectEmptyGraph(t *testing.T) {
	res := Detect(bipartite.NewBuilder().Build(), Config{})
	if len(res.Blocks) != 0 {
		t.Error("blocks on empty graph")
	}
	if len(res.PrefixUsers(3)) != 0 {
		t.Error("users on empty graph")
	}
}

func TestDetectFewerBlocksThanK(t *testing.T) {
	// A single dense block graph cannot produce 30 blocks.
	b := bipartite.NewBuilderSized(5, 5, 25)
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			b.AddEdge(uint32(u), uint32(v))
		}
	}
	res := Detect(b.Build(), Config{K: 30})
	if len(res.Blocks) == 0 || len(res.Blocks) > 30 {
		t.Errorf("blocks = %d", len(res.Blocks))
	}
}
