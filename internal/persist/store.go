package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/stream"
)

// ErrDegraded tags every append rejected because the store is in the
// fail-stop WAL gap state (or entering it): the batch did not reach the log
// and will not until a covering snapshot heals the gap. The serving layer
// maps it to 503 + Retry-After so clients back off instead of hot-retrying.
var ErrDegraded = errors.New("persist: WAL degraded")

// ErrFenced tags local-ingest appends rejected because this store's epoch is
// owned by another primary — the node has been deposed (or never promoted).
// Unlike ErrDegraded this does not heal with time: the remedy is rejoining
// the new primary as a follower, so the serving layer maps it to 409.
var ErrFenced = errors.New("persist: fenced")

// Source is what the store snapshots: anything handing out immutable
// versioned CSR views. *stream.Graph is the production implementation.
// Sources that additionally implement SnapshotWithMark (the stream graph
// does) get their window watermark persisted in the snapshot header, so
// recovery restores expiry progress along with the edges.
type Source interface {
	Snapshot() (*bipartite.Graph, uint64)
}

// markedSource is the optional windowing extension of Source.
type markedSource interface {
	SnapshotWithMark() (*bipartite.Graph, uint64, stream.WindowMark)
}

// Store is the durability engine: it implements stream.Journal (the WAL
// tee), writes background snapshots once the log outgrows the threshold,
// and recovers a stream.Graph at boot. All methods are safe for concurrent
// use. Lifecycle: Open → Recover → stream.SetJournal(store) +
// SetSource(graph) → traffic → Close.
type Store struct {
	dir  string
	opts Options
	wal  *wal
	logf func(string, ...any)

	// pending holds the WAL records scanned at Open, consumed by Recover.
	pending []walRecord
	torn    bool

	src atomic.Pointer[sourceBox]

	// snapMu serializes snapshot writes (background and forced); snapping
	// keeps at most one background snapshot goroutine in flight without
	// making Append wait on an ongoing write. lifeMu orders goroutine
	// spawns against Close: a kick either observes closed and spawns
	// nothing, or completes its wg.Add before Close starts waiting — never
	// an Add concurrent with Wait at counter zero.
	snapMu   sync.Mutex
	snapping atomic.Bool
	lifeMu   sync.Mutex
	wg       sync.WaitGroup
	closed   atomic.Bool

	snapVersion    atomic.Uint64
	bytesSinceSnap atomic.Int64
	snapsWritten   atomic.Uint64
	snapErrs       atomic.Uint64
	snapNs         atomic.Int64

	// walGap is the highest graph version whose batch failed to reach the
	// WAL (0 = healthy). While non-zero the store is degraded: every
	// subsequent append is rejected too — acknowledging any later batch
	// would leave a version hole the replay path can never reproduce. The
	// gap heals only when a snapshot at or above it lands, because a
	// snapshot captures the in-memory graph, unjournaled batches included.
	walGap atomic.Uint64

	// Failover epoch (term) state, durably mirrored by the fence file (and
	// discovered from snapshot headers / WAL fence records at Recover, which
	// may only raise it). fenceMu serializes fence-file writes; owned gates
	// the local-ingest journal tee — a deposed primary's appends fail-stop
	// with ErrFenced, while the replica apply path (AppendRecord) stays open.
	fenceMu    sync.Mutex
	epoch      atomic.Uint64
	epochStart atomic.Uint64
	owned      atomic.Bool

	recovered RecoveryStats
}

type sourceBox struct{ src Source }

// Open prepares the durability state under dir (created if missing),
// scanning the WAL — truncating a torn final record with a logged warning —
// and locating the newest valid snapshot. Call Recover next to load the
// state into a graph; a fresh directory recovers to the empty graph.
func Open(dir string, opts Options) (*Store, error) {
	logf := opts.logf()
	if err := os.MkdirAll(filepath.Join(dir, "snap"), 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating data dir: %w", err)
	}
	w, records, torn, err := openWAL(filepath.Join(dir, "wal"), opts.segmentBytes(), opts.Fsync == FsyncAlways, logf, opts.Inject)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		wal:     w,
		logf:    logf,
		pending: records,
		torn:    torn,
	}
	// Seed the epoch from the fence file. A directory without one predates
	// failover: epoch 0, owned — the single-primary behaviour. Recover then
	// raises the epoch past the fence if snapshots or WAL fences outrank it
	// (a crash can land durable state before the fence write), dropping
	// ownership when they do.
	fence, ok, err := readFenceFile(dir)
	if err != nil {
		return nil, err
	}
	s.epoch.Store(fence.epoch)
	s.epochStart.Store(fence.start)
	s.owned.Store(!ok || fence.owned)
	return s, nil
}

// Recover loads the newest valid snapshot into g (which must be empty) and
// replays the WAL records above the snapshot's version, in version order,
// through g's normal Append path. Install the store as g's journal only
// after Recover returns, so replayed batches are not re-journaled. A
// snapshot that fails to decode is skipped with a warning in favor of the
// next older one.
func (s *Store) Recover(g *stream.Graph) (RecoveryStats, error) {
	var rec RecoveryStats
	rec.TornTail = s.torn

	// maxBadSnap is the highest version an unreadable snapshot file claimed
	// (from its name). Falling back past such a file is only safe if the WAL
	// still covers every version it did — otherwise "recovery" would boot a
	// graph silently missing acknowledged batches, the exact loss the sealed
	// -segment scan refuses.
	var snap *bipartite.Graph
	var snapMark stream.WindowMark
	var snapWrittenAt int64
	var snapEpoch uint64
	var maxBadSnap uint64
	for _, sf := range listSnapshots(filepath.Join(s.dir, "snap")) {
		loaded, hdr, err := readSnapshotFile(sf.path)
		if err != nil {
			s.logf("persist: skipping unusable snapshot %s: %v", filepath.Base(sf.path), err)
			if sf.version > maxBadSnap {
				maxBadSnap = sf.version
			}
			continue
		}
		snap, rec.SnapshotVersion, rec.SnapshotEdges = loaded, hdr.Version, loaded.NumEdges()
		snapMark, snapWrittenAt, snapEpoch = hdr.Mark, hdr.WrittenAt, hdr.Epoch
		break
	}
	if snap != nil {
		// RestoreAt adopts the persisted window watermark and stamps the
		// restored edges as ingested when the snapshot was written — the
		// stamps' original batch granularity is not persisted, so the window
		// treats recovered history as uniformly snapshot-aged (it can retain
		// longer than the live run would, never expire earlier).
		if err := g.RestoreAt(snap, rec.SnapshotVersion, snapMark, snapWrittenAt); err != nil {
			return rec, err
		}
		rec.WindowMark = snapMark
		s.snapVersion.Store(rec.SnapshotVersion)
		// The WAL is only guaranteed to reach back to this snapshot: records
		// it covers may already be gone from disk, so a replication tail may
		// not start below it.
		s.wal.setFloor(rec.SnapshotVersion)
	}

	// Replay the tail in version order: each record re-adds exactly the
	// edges it added live (dedup handles batch overlap), so versions — and
	// therefore vote-cache keys — come out identical to the live run.
	replay := s.pending
	s.pending = nil
	sort.Slice(replay, func(i, j int) bool { return replay[i].version < replay[j].version })

	// Every version bump journals exactly one record, so snapshot + WAL must
	// tile the version sequence. A hole at or below an unreadable snapshot's
	// claimed version means that snapshot was the only copy of acknowledged
	// batches: refuse, naming the remedy, rather than silently serving a
	// graph with data missing. (Holes above maxBadSnap are not checked — a
	// crash can tear one record of a concurrent pair out of the tail, and
	// those batches were never acknowledged.)
	if maxBadSnap > rec.SnapshotVersion {
		expected := rec.SnapshotVersion + 1
		for _, r := range replay {
			if r.version <= rec.SnapshotVersion || expected > maxBadSnap {
				continue
			}
			if r.version != expected {
				return rec, fmt.Errorf(
					"persist: recovery would lose versions %d..%d: they are covered only by an unreadable snapshot (claimed version %d); restore it from backup, or delete it to accept the loss",
					expected, min(r.version-1, maxBadSnap), maxBadSnap)
			}
			expected = r.version + 1
		}
		if expected <= maxBadSnap {
			return rec, fmt.Errorf(
				"persist: recovery would lose versions %d..%d: they are covered only by an unreadable snapshot (claimed version %d); restore it from backup, or delete it to accept the loss",
				expected, maxBadSnap, maxBadSnap)
		}
	}

	var tailBytes int64
	var walEpoch, walEpochStart uint64
	for i := 0; i < len(replay); i++ {
		r := replay[i]
		if r.kind == recEpochFence && r.epoch > walEpoch {
			// Note the fence even when the snapshot covers its version: the
			// snapshot carries the epoch forward in its header, but an older
			// (pre-fence) snapshot may have been the one that survived.
			walEpoch, walEpochStart = r.epoch, r.version
		}
		if r.version <= rec.SnapshotVersion {
			rec.SkippedRecords++
			continue
		}
		if r.kind == recEpochFence {
			// A fence occupies its version slot but carries no edges: replay
			// is just the version bump, so the surviving history tiles
			// exactly as it did live.
			g.AdvanceVersionTo(r.version)
			rec.ReplayedRecords++
			tailBytes += r.frameSize()
			continue
		}
		if r.kind == recTombstone {
			// Replay the retirement as an exact deletion: the tombstone
			// names precisely the edges the live pass removed, so no window
			// policy is re-evaluated (and none need be configured) at boot.
			// The record's watermark restores expiry progress reached after
			// the snapshot was cut. Consecutive tombstones (common when a
			// fast retire ticker ran between snapshots) coalesce into one
			// Remove: each Remove scans every live shard entry, so one pass
			// over the union keeps replay O(records + live) instead of
			// O(tombstone records × live). Deletion sets of distinct
			// versions are disjoint (an edge must be re-appended before it
			// can be removed again), so the union removes the same edges,
			// and the final version/mark pins below reproduce the last
			// record's state — intermediate versions are unobservable at
			// boot.
			edges := r.edges
			mark := r.mark
			rec.ReplayedTombstones++
			rec.ReplayedRecords++
			rec.ReplayedEdges += len(r.edges)
			tailBytes += r.frameSize()
			for i+1 < len(replay) && replay[i+1].kind == recTombstone {
				i++
				next := replay[i]
				edges = append(edges[:len(edges):len(edges)], next.edges...)
				mark = next.mark
				r = next
				rec.ReplayedTombstones++
				rec.ReplayedRecords++
				rec.ReplayedEdges += len(next.edges)
				tailBytes += next.frameSize()
			}
			g.Remove(edges)
			g.AdvanceMarkTo(mark)
			g.AdvanceVersionTo(r.version)
			continue
		}
		g.Append(r.edges)
		// Pin the record to the version it committed as live. Normally the
		// operation's own bump already matches; after an unhealed version
		// hole (see the package doc) this keeps the surviving acknowledged
		// versions from being renumbered.
		g.AdvanceVersionTo(r.version)
		rec.ReplayedRecords++
		rec.ReplayedEdges += len(r.edges)
		tailBytes += r.frameSize()
	}
	s.bytesSinceSnap.Store(tailBytes)

	// Resolve the epoch: the fence file seeded it at Open; durable state that
	// outranks it (a shipped snapshot's header, a WAL fence record the crash
	// landed before the fence-file write) raises it — and anything the fence
	// file did not record ownership of is, by definition, not owned here.
	// That asymmetry is the fencing guarantee across reboots: a deposed
	// primary can observe a higher epoch but can never manufacture ownership
	// of one.
	if walEpoch > s.epoch.Load() {
		s.epoch.Store(walEpoch)
		s.epochStart.Store(walEpochStart)
		s.owned.Store(false)
	}
	if snapEpoch > s.epoch.Load() {
		s.epoch.Store(snapEpoch)
		s.epochStart.Store(0) // start version unknown from a header alone
		s.owned.Store(false)
	}
	rec.Epoch = s.epoch.Load()
	rec.Version = g.Version()
	rec.WindowMark = g.WindowStats().Mark // snapshot mark + replayed tombstone marks
	s.recovered = rec
	return rec, nil
}

// SetSource enables snapshotting against src. Without a source the store is
// WAL-only: the log grows until Close.
func (s *Store) SetSource(src Source) {
	if src == nil {
		s.src.Store(nil)
		return
	}
	s.src.Store(&sourceBox{src: src})
}

// AppendEdges implements stream.Journal: it frames and writes the batch to
// the WAL (fsyncing under FsyncAlways) before the stream append returns, and
// kicks a background snapshot once the log has outgrown the threshold.
//
// Failure is fail-stop: one WAL error degrades the store, and every
// subsequent batch is rejected (the stream still commits them in memory, so
// clients get 500s and reads keep working) until a snapshot at or above the
// gap restores a consistent durable image — attempted immediately in the
// background, and again at the size trigger, a manual Snapshot, or Close.
// After healing, client retries deduplicate against the snapshotted edges,
// so the "retry on 500" contract stays truthful.
func (s *Store) AppendEdges(version uint64, edges []bipartite.Edge) error {
	if err := s.checkOwned(); err != nil {
		return err
	}
	return s.journalRecord(walRecord{kind: recEdges, version: version, edges: edges})
}

// RetireEdges implements the tombstone half of stream.Journal: a retire pass
// (or explicit Remove) that deleted edges is framed as a tombstone record at
// its version — carrying the post-pass window watermark, so replay restores
// expiry progress exactly — under the same fail-stop contract as
// AppendEdges: a WAL failure degrades the store until a covering snapshot
// (which captures the post-retire graph, unjournaled retirements included)
// heals the gap.
func (s *Store) RetireEdges(version uint64, edges []bipartite.Edge, mark stream.WindowMark) error {
	if err := s.checkOwned(); err != nil {
		return err
	}
	return s.journalRecord(walRecord{kind: recTombstone, version: version, edges: edges, mark: mark})
}

// checkOwned gates the local-ingest journal tee on epoch ownership: a node
// whose epoch belongs to another primary must fail-stop every write it would
// acknowledge, or it could fork history a promoted follower has already
// diverged from. The replica apply path (AppendRecord) bypasses this —
// followers journal the owner's records precisely because they are not the
// owner.
func (s *Store) checkOwned() error {
	if s.owned.Load() {
		return nil
	}
	return fmt.Errorf("%w: epoch %d is owned by another primary; local writes are rejected", ErrFenced, s.epoch.Load())
}

func (s *Store) journalRecord(rec walRecord) error {
	if s.closed.Load() {
		return fmt.Errorf("persist: store is closed")
	}
	for {
		gap := s.walGap.Load()
		if gap == 0 {
			break
		}
		if s.snapVersion.Load() >= gap {
			// A snapshot covered the hole; resume journaling.
			if s.walGap.CompareAndSwap(gap, 0) {
				break
			}
			continue
		}
		raiseGap(&s.walGap, rec.version) // this batch is unjournaled too
		// Kick another heal attempt: the original failure's kick may have
		// cut below a gap raised since (or been swallowed by an in-flight
		// snapshot), and the size trigger can't fire while appends are
		// rejected — without this, a healthy disk could stay degraded until
		// shutdown.
		s.kickSnapshot()
		return fmt.Errorf("%w since a failure at version ≤ %d: batch %d rejected until a covering snapshot lands", ErrDegraded, gap, rec.version)
	}
	n, err := s.wal.append(rec)
	if err != nil {
		raiseGap(&s.walGap, rec.version)
		s.kickSnapshot() // try to self-heal without waiting for the size trigger
		return fmt.Errorf("%w: %w", ErrDegraded, err)
	}
	if s.bytesSinceSnap.Add(n) >= s.opts.snapshotBytes() {
		s.kickSnapshot()
	}
	return nil
}

// raiseGap lifts *gap to at least version.
func raiseGap(gap *atomic.Uint64, version uint64) {
	for {
		cur := gap.Load()
		if version <= cur || gap.CompareAndSwap(cur, version) {
			return
		}
	}
}

// kickSnapshot starts one background snapshot unless one is already in
// flight (or there is no source / the store is closing).
func (s *Store) kickSnapshot() {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.src.Load() == nil || s.closed.Load() || !s.snapping.CompareAndSwap(false, true) {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.snapping.Store(false)
		if err := s.Snapshot(); err != nil {
			s.logf("persist: background snapshot failed: %v", err)
		}
	}()
}

// Snapshot synchronously snapshots the source's current graph and truncates
// the WAL to its version. It is a no-op without a source or when the newest
// snapshot already covers the current version.
func (s *Store) Snapshot() error {
	box := s.src.Load()
	if box == nil {
		return nil
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	// Bytes counted before the snapshot cut belong to records the snapshot
	// will cover (their journal tee completed before the cut's commit lock),
	// so exactly `pre` is subtracted on success — bytes racing in during the
	// write keep counting toward the next trigger.
	pre := s.bytesSinceSnap.Load()
	var g *bipartite.Graph
	var version uint64
	var mark stream.WindowMark
	if ms, ok := box.src.(markedSource); ok {
		g, version, mark = ms.SnapshotWithMark()
	} else {
		g, version = box.src.Snapshot()
	}
	if version <= s.snapVersion.Load() {
		return nil
	}
	start := time.Now()
	if s.opts.Inject != nil {
		if err := s.opts.Inject("snap.write"); err != nil {
			s.snapErrs.Add(1)
			return fmt.Errorf("persist: writing snapshot: %w", err)
		}
	}
	if _, err := writeSnapshotFile(filepath.Join(s.dir, "snap"), g, version, mark, time.Now().UnixNano(), s.epoch.Load()); err != nil {
		s.snapErrs.Add(1)
		return err
	}
	// The snapshot is durable: drop WAL segments it fully covers. A crash
	// between the rename above and this truncation only leaves covered
	// records behind, which replay skips.
	if err := s.wal.truncateTo(version); err != nil {
		s.snapErrs.Add(1)
		return err
	}
	s.snapNs.Add(int64(time.Since(start)))
	s.snapVersion.Store(version)
	// Eagerly clear a gap this snapshot covers, so the degraded signal in
	// Stats/metrics (and the next append's fast path) reflect the heal even
	// if no ingest traffic follows; AppendEdges' lazy check remains the
	// backstop for a gap raised concurrently above this cut.
	for {
		gap := s.walGap.Load()
		if gap == 0 || gap > version || s.walGap.CompareAndSwap(gap, 0) {
			break
		}
	}
	s.bytesSinceSnap.Add(-pre)
	s.snapsWritten.Add(1)
	s.logf("persist: snapshot at version %d (%d edges), WAL truncated", version, g.NumEdges())
	return nil
}

// Sync flushes the WAL to disk regardless of the fsync policy — the
// FsyncNever escape hatch for checkpoints.
func (s *Store) Sync() error { return s.wal.sync() }

// Epoch returns the failover term this store has observed, the first graph
// version of that term (0 when unknown), and whether local ingest owns it.
func (s *Store) Epoch() (epoch, start uint64, owned bool) {
	return s.epoch.Load(), s.epochStart.Load(), s.owned.Load()
}

// AdoptEpoch durably records an epoch observed from elsewhere — a higher
// term in a tail response, a fence record shipped by the new primary, or an
// admin re-point. Ownership is dropped: adopting is how a node concedes the
// term to its owner. Adopting an epoch at or below the current one only
// rewrites the fence when it would change state (idempotent re-adopts are
// free); it never lowers the epoch.
func (s *Store) AdoptEpoch(epoch, start uint64) error {
	s.fenceMu.Lock()
	defer s.fenceMu.Unlock()
	cur := s.epoch.Load()
	if epoch < cur {
		return fmt.Errorf("persist: cannot adopt epoch %d below current %d", epoch, cur)
	}
	if epoch == cur && !s.owned.Load() && (start == 0 || s.epochStart.Load() == start) {
		return nil
	}
	if err := writeFenceFile(s.dir, fenceState{epoch: epoch, start: start, owned: false}, s.opts.Inject); err != nil {
		return err
	}
	s.epoch.Store(epoch)
	s.epochStart.Store(start)
	s.owned.Store(false)
	return nil
}

// PromoteEpoch is the durable half of follower promotion: it fsyncs
// ownership of a new term (strictly above the current epoch) into the fence
// file, then journals an epoch-fence record at startVersion — the version
// slot the term begins at. Once the fence write returns, any surviving
// pre-promote primary that observes this epoch fail-stops, and this store's
// local ingest is unlocked. The fence record rides the normal journal path,
// so it ships to tailing followers and replays across reboots.
func (s *Store) PromoteEpoch(epoch, startVersion uint64) error {
	s.fenceMu.Lock()
	defer s.fenceMu.Unlock()
	if cur := s.epoch.Load(); epoch <= cur {
		return fmt.Errorf("persist: promote epoch %d is not above current %d", epoch, cur)
	}
	if startVersion == 0 {
		return errors.New("persist: promote start version must be non-zero")
	}
	if err := writeFenceFile(s.dir, fenceState{epoch: epoch, start: startVersion, owned: true}, s.opts.Inject); err != nil {
		return err
	}
	s.epoch.Store(epoch)
	s.epochStart.Store(startVersion)
	s.owned.Store(true)
	return s.journalRecord(walRecord{kind: recEpochFence, version: startVersion, epoch: epoch})
}

// Rewind discards the store's entire durable history — every snapshot and
// WAL segment — leaving a fresh, empty log. It is the epoch-boundary resync
// primitive: when a rejoining node's history has forked from the promoted
// primary's (its versions overlap the new term's), the forked suffix cannot
// be surgically unwound record-by-record, so the caller first forces the
// in-memory graph onto the new primary's snapshot, then Rewinds, then cuts a
// fresh snapshot of the converged state. A crash in between recovers the
// pre-rewind state or an empty store — either way the next resync attempt
// converges again; acknowledged history on the *new* timeline is never lost
// because none exists locally until the post-rewind snapshot lands.
func (s *Store) Rewind() error {
	if s.closed.Load() {
		return fmt.Errorf("persist: store is closed")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	snapDir := filepath.Join(s.dir, "snap")
	for _, sf := range listSnapshots(snapDir) {
		//ensemfdet:durability-ok rewind discards the abandoned timeline's snapshots by design
		if err := os.Remove(sf.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("persist: removing snapshot: %w", err)
		}
	}
	if err := syncDir(snapDir); err != nil {
		return fmt.Errorf("persist: syncing snapshot dir: %w", err)
	}
	if err := s.wal.reset(); err != nil {
		return err
	}
	s.snapVersion.Store(0)
	s.bytesSinceSnap.Store(0)
	s.walGap.Store(0)
	return nil
}

// Close flushes everything: it waits for any background snapshot, writes a
// final snapshot if the WAL grew past the last one, and closes the log. The
// store is unusable afterwards; in-flight AppendEdges calls fail cleanly.
func (s *Store) Close() error {
	s.lifeMu.Lock()
	if !s.closed.CompareAndSwap(false, true) {
		s.lifeMu.Unlock()
		return nil
	}
	s.lifeMu.Unlock()
	s.wg.Wait()
	var err error
	if s.bytesSinceSnap.Load() > 0 {
		err = s.Snapshot()
	}
	if cerr := s.wal.close(); err == nil {
		err = cerr
	}
	return err
}

// Stats returns current durability counters.
func (s *Store) Stats() Stats {
	segs, bytes := s.wal.diskStats()
	records, appended, tombstones, fsyncs, compactions, compacted := s.wal.counters()
	return Stats{
		Epoch:              s.epoch.Load(),
		EpochStartVersion:  s.epochStart.Load(),
		EpochOwned:         s.owned.Load(),
		FsyncPolicy:        s.opts.Fsync.String(),
		WALSegments:        segs,
		WALBytes:           bytes,
		AppendedRecords:    records,
		AppendedBytes:      appended,
		TombstoneRecords:   tombstones,
		Fsyncs:             fsyncs,
		Compactions:        compactions,
		CompactedBytes:     compacted,
		SnapshotsWritten:   s.snapsWritten.Load(),
		SnapshotErrors:     s.snapErrs.Load(),
		SnapshotVersion:    s.snapVersion.Load(),
		BytesSinceSnapshot: s.bytesSinceSnap.Load(),
		WALGapVersion:      s.walGap.Load(),
		SnapshotDur:        time.Duration(s.snapNs.Load()),
		Recovery:           s.recovered,
	}
}
