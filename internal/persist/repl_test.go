package persist

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/stream"
)

// shipState downloads everything st's manifest lists into dir, laid out the
// way a follower bootstrap would — the persist-level half of replication.
func shipState(t *testing.T, st *Store, dir string) Manifest {
	t.Helper()
	m, err := st.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"snap", "wal"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	ship := func(rc io.ReadCloser, size int64, dest string) {
		t.Helper()
		defer rc.Close()
		data, err := io.ReadAll(rc)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(data)) != size {
			t.Fatalf("shipped %d bytes of %s, open reported %d", len(data), dest, size)
		}
		if err := os.WriteFile(dest, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if m.Snapshot != nil {
		rc, size, err := st.OpenSnapshotFile(m.Snapshot.Name)
		if err != nil {
			t.Fatal(err)
		}
		ship(rc, size, filepath.Join(dir, "snap", m.Snapshot.Name))
	}
	for _, seg := range m.Segments {
		rc, size, err := st.OpenSegmentFile(seg.Name)
		if err != nil {
			t.Fatal(err)
		}
		ship(rc, size, filepath.Join(dir, "wal", seg.Name))
	}
	return m
}

// TestManifestShipRecoversIdentically is the persist-level bootstrap pin:
// downloading the manifest's snapshot + segments verbatim into a fresh
// directory and recovering there must reproduce the source graph — version
// and CSR bytes — exactly, including state spread across several sealed
// segments and a mid-stream snapshot.
func TestManifestShipRecoversIdentically(t *testing.T) {
	srcDir := t.TempDir()
	st, g, _ := openDurable(t, srcDir, 4, Options{Fsync: FsyncAlways, SegmentBytes: 1 << 10})
	defer st.Close()
	for i, b := range randomBatches(11, 10, 30) {
		if res := g.Append(b); res.Err != nil {
			t.Fatal(res.Err)
		}
		if i == 4 {
			if err := st.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}

	m := shipState(t, st, t.TempDir())
	if m.Snapshot == nil {
		t.Fatal("manifest lists no snapshot after an explicit Snapshot()")
	}
	if len(m.Segments) == 0 {
		t.Fatal("manifest lists no WAL segments despite post-snapshot appends")
	}
	for i := 1; i < len(m.Segments); i++ {
		if m.Segments[i-1].Name >= m.Segments[i].Name {
			t.Fatalf("segments out of order: %q before %q", m.Segments[i-1].Name, m.Segments[i].Name)
		}
	}

	dstDir := t.TempDir()
	shipState(t, st, dstDir)
	st2, g2, rec := openDurable(t, dstDir, 16, Options{Fsync: FsyncAlways})
	defer st2.Close()
	if rec.ReplayedRecords == 0 {
		t.Fatalf("shipped recovery replayed nothing: %+v", rec)
	}
	if g2.Version() != g.Version() {
		t.Fatalf("shipped recovery at version %d, source at %d", g2.Version(), g.Version())
	}
	snapA, _ := g.Snapshot()
	snapB, _ := g2.Snapshot()
	if !bytes.Equal(csrBytes(t, snapA), csrBytes(t, snapB)) {
		t.Fatal("shipped recovery diverged from the source CSR")
	}
}

// TestManifestMixedV1V2Segments pins segment enumeration over a directory
// mixing a legacy v1 segment with v2 segments: the v1 file is flagged
// Legacy, and TailSince re-frames its records as v2 so a tailer decodes one
// format only.
func TestManifestMixedV1V2Segments(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		t.Fatal(err)
	}
	var legacy []byte
	legacy = append(legacy, v1Record(1, []bipartite.Edge{{U: 1, V: 2}})...)
	legacy = append(legacy, v1Record(2, []bipartite.Edge{{U: 3, V: 4}})...)
	if err := os.WriteFile(segPath(walDir, 1), legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	st, g, _ := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	defer st.Close()
	if g.Version() != 2 {
		t.Fatalf("recovered version %d from the v1 segment, want 2", g.Version())
	}
	if res := g.Append([]bipartite.Edge{{U: 5, V: 6}}); res.Err != nil {
		t.Fatal(res.Err)
	}

	m, err := st.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != 2 {
		t.Fatalf("want the v1 segment and the v2 active segment, got %+v", m.Segments)
	}
	if !m.Segments[0].Legacy || m.Segments[0].Records != 2 {
		t.Fatalf("v1 segment not flagged legacy: %+v", m.Segments[0])
	}
	if m.Segments[1].Legacy {
		t.Fatalf("v2 segment flagged legacy: %+v", m.Segments[1])
	}

	payload, last, n, err := st.TailSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || last != 3 {
		t.Fatalf("tail from 0: %d records up to %d, want 3 up to 3", n, last)
	}
	var versions []uint64
	for off := 0; off < len(payload); {
		rec, sz, ok := DecodeRecordFrame(payload[off:])
		if !ok {
			t.Fatalf("undecodable v2 frame at offset %d", off)
		}
		versions = append(versions, rec.Version)
		if rec.Kind != RecordEdges || len(rec.Edges) != 1 {
			t.Fatalf("record %d: %+v", rec.Version, rec)
		}
		off += sz
	}
	for i := 1; i < len(versions); i++ {
		if versions[i] <= versions[i-1] {
			t.Fatalf("tail versions not ascending: %v", versions)
		}
	}
}

// TestTailSinceChunkingAndResume pins the pagination contract: a tiny
// maxBytes still makes progress (≥1 record per call), resuming from each
// call's last version walks the whole log in ascending order with no gaps
// and no duplicates.
func TestTailSinceChunkingAndResume(t *testing.T) {
	dir := t.TempDir()
	st, g, _ := openDurable(t, dir, 1, Options{Fsync: FsyncAlways})
	defer st.Close()
	for _, b := range randomBatches(5, 12, 8) {
		if res := g.Append(b); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	var got []uint64
	from := uint64(0)
	for {
		payload, last, n, err := st.TailSince(from, 1) // absurdly small cap
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		if n != 1 {
			t.Fatalf("maxBytes=1 returned %d records, want exactly the one-record minimum", n)
		}
		rec, _, ok := DecodeRecordFrame(payload)
		if !ok {
			t.Fatal("undecodable frame")
		}
		got = append(got, rec.Version)
		from = last
	}
	if uint64(len(got)) != g.Version() {
		t.Fatalf("tailed %d records, graph at version %d", len(got), g.Version())
	}
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("tail walked %v, want consecutive versions from 1", got)
		}
	}
}

// TestTailGoneAfterTruncation pins the floor contract: once a snapshot
// truncates the log, a tail from below the floor is ErrTailGone — never a
// silent hole — and the floor survives a reopen, because recovery re-seeds
// it from the snapshot version even though the WAL might still cover more.
func TestTailGoneAfterTruncation(t *testing.T) {
	dir := t.TempDir()
	st, g, _ := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	for _, b := range randomBatches(9, 6, 20) {
		if res := g.Append(b); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	snapVer := g.Version()
	if res := g.Append([]bipartite.Edge{{U: 900, V: 900}}); res.Err != nil {
		t.Fatal(res.Err)
	}

	if _, _, _, err := st.TailSince(0, 0); !errors.Is(err, ErrTailGone) {
		t.Fatalf("tail from 0 after truncation: %v, want ErrTailGone", err)
	}
	if _, last, n, err := st.TailSince(snapVer, 0); err != nil || n != 1 || last != snapVer+1 {
		t.Fatalf("tail from the floor: n=%d last=%d err=%v", n, last, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, _, _ := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	defer st2.Close()
	if _, _, _, err := st2.TailSince(0, 0); !errors.Is(err, ErrTailGone) {
		t.Fatalf("tail from 0 after reopen: %v, want ErrTailGone", err)
	}
}

// TestTornActiveTailNeverShips pins the acknowledged-bytes limit: garbage
// appended to the active segment behind the store's back (a torn write) is
// invisible to the manifest, to OpenSegmentFile, and to TailSince.
func TestTornActiveTailNeverShips(t *testing.T) {
	dir := t.TempDir()
	st, g, _ := openDurable(t, dir, 1, Options{Fsync: FsyncAlways})
	defer st.Close()
	for i := 0; i < 3; i++ {
		if res := g.Append([]bipartite.Edge{{U: uint32(i), V: uint32(i)}}); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	m, err := st.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	active := m.Segments[len(m.Segments)-1]

	// Tear the tail: half a frame of garbage directly into the file.
	f, err := os.OpenFile(filepath.Join(dir, "wal", active.Name), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := st.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Segments[len(m2.Segments)-1].Bytes != active.Bytes {
		t.Fatalf("manifest bytes moved with the torn tail: %d → %d", active.Bytes, m2.Segments[len(m2.Segments)-1].Bytes)
	}
	rc, size, err := st.OpenSegmentFile(active.Name)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || int64(len(data)) != size || size != active.Bytes {
		t.Fatalf("shipped %d bytes (reported %d), want the %d acknowledged", len(data), size, active.Bytes)
	}
	if _, _, n, err := st.TailSince(0, 0); err != nil || n != 3 {
		t.Fatalf("tail over a torn segment: n=%d err=%v, want the 3 acknowledged records", n, err)
	}
}

// TestShipNameValidation pins the no-traversal contract: only well-formed
// manifest names resolve, and everything else reports os.ErrNotExist.
func TestShipNameValidation(t *testing.T) {
	dir := t.TempDir()
	st, g, _ := openDurable(t, dir, 1, Options{Fsync: FsyncAlways})
	defer st.Close()
	if res := g.Append([]bipartite.Edge{{U: 1, V: 1}}); res.Err != nil {
		t.Fatal(res.Err)
	}
	for _, name := range []string{
		"../wal/seg-0000000000000001.wal",
		"seg-xyz.wal",
		"seg-0000000000000001.wal.tmp",
		"",
		"seg-00000000000000ff.wal", // well-formed but unknown index
	} {
		if _, _, err := st.OpenSegmentFile(name); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("OpenSegmentFile(%q): %v, want os.ErrNotExist", name, err)
		}
		if _, _, err := st.OpenSnapshotFile(name); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("OpenSnapshotFile(%q): %v, want os.ErrNotExist", name, err)
		}
	}
}

// TestManifestRacingSnapshots drives manifest reads and tails concurrently
// with appends and truncating snapshots — the shipping endpoints under churn.
// Run under -race; correctness here is "no torn listing, no error besides
// ErrTailGone".
func TestManifestRacingSnapshots(t *testing.T) {
	dir := t.TempDir()
	st, g, _ := openDurable(t, dir, 4, Options{Fsync: FsyncNever, SegmentBytes: 1 << 10})
	defer st.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i, b := range randomBatches(21, 60, 15) {
			if res := g.Append(b); res.Err != nil {
				t.Errorf("append %d: %v", i, res.Err)
				return
			}
			if i%10 == 9 {
				if err := st.Snapshot(); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			from := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := st.Manifest(); err != nil {
					t.Errorf("manifest under churn: %v", err)
					return
				}
				_, last, n, err := st.TailSince(from, 1<<12)
				switch {
				case errors.Is(err, ErrTailGone):
					from = g.Version() // resync: jump to the current version
				case err != nil:
					t.Errorf("tail under churn: %v", err)
					return
				case n > 0:
					if last <= from {
						t.Errorf("tail went backwards: from %d to %d", from, last)
						return
					}
					from = last
				}
			}
		}()
	}
	wg.Wait()
}

// TestAppendRecordExplicitVersions pins the follower's journaling path:
// records land at the versions they carry — holes included — and a reopen
// replays them into the same graph a primary's recovery would build.
func TestAppendRecordExplicitVersions(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Fsync: FsyncAlways, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Version: 2, Kind: RecordEdges, Edges: []bipartite.Edge{{U: 1, V: 1}, {U: 2, V: 2}}},
		{Version: 3, Kind: RecordEdges, Edges: []bipartite.Edge{{U: 3, V: 3}}},
		// Version 7: a hole, exactly as a degraded primary's tail would ship.
		{Version: 7, Kind: RecordEdges, Edges: []bipartite.Edge{{U: 7, V: 7}}},
		{Version: 9, Kind: RecordTombstone, Edges: []bipartite.Edge{{U: 2, V: 2}},
			Mark: stream.WindowMark{Version: 1, Wall: 42}},
	}
	for _, r := range recs {
		if err := st.AppendRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.AppendRecord(Record{Version: 0, Kind: RecordEdges}); err == nil {
		t.Fatal("AppendRecord accepted version 0")
	}
	if err := st.AppendRecord(Record{Version: 10, Kind: 99}); err == nil {
		t.Fatal("AppendRecord accepted an unknown kind")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, g, rec := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	defer st2.Close()
	if rec.ReplayedRecords != len(recs) {
		t.Fatalf("replayed %d records, want %d", rec.ReplayedRecords, len(recs))
	}
	if g.Version() != 9 {
		t.Fatalf("recovered version %d, want 9 (the highest explicit version)", g.Version())
	}
	snap, _ := g.Snapshot()
	if snap.NumEdges() != 3 {
		t.Fatalf("recovered %d edges, want 3 (4 appended, 1 tombstoned)", snap.NumEdges())
	}
	if snap.HasEdge(2, 2) {
		t.Fatal("tombstoned edge survived recovery")
	}
	if g.WindowStats().Mark.Version != 1 {
		t.Fatalf("recovered watermark %+v, want version 1", g.WindowStats().Mark)
	}
}

// TestHasStateAndEncodeDecodeFrame covers the small helpers: HasState flips
// only on real bytes, and EncodeRecordFrame round-trips through
// DecodeRecordFrame.
func TestHasStateAndEncodeDecodeFrame(t *testing.T) {
	dir := t.TempDir()
	if HasState(dir) {
		t.Fatal("empty dir reports state")
	}
	if err := os.MkdirAll(filepath.Join(dir, "wal"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal", "seg-0000000000000001.wal"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if HasState(dir) {
		t.Fatal("empty segment file reports state")
	}
	if err := os.WriteFile(filepath.Join(dir, "wal", "seg-0000000000000001.wal"), []byte{1}, 0o644); err != nil {
		t.Fatal(err)
	}
	if !HasState(dir) {
		t.Fatal("non-empty segment does not report state")
	}

	in := Record{Version: 12, Kind: RecordTombstone, Mark: stream.WindowMark{Version: 4, Wall: 99},
		Edges: []bipartite.Edge{{U: 8, V: 9}}}
	frame := EncodeRecordFrame(in)
	out, n, ok := DecodeRecordFrame(frame)
	if !ok || n != len(frame) {
		t.Fatalf("round-trip failed: ok=%v n=%d len=%d", ok, n, len(frame))
	}
	if out.Version != in.Version || out.Kind != in.Kind || out.Mark != in.Mark ||
		len(out.Edges) != 1 || out.Edges[0] != in.Edges[0] {
		t.Fatalf("round-trip mismatch: %+v vs %+v", out, in)
	}
}
