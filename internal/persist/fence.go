package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Epoch fence file, little-endian. The fence is the durable half of failover:
// it records the highest epoch (term) this data directory has observed and
// whether this node owns it — i.e. whether local ingest may acknowledge
// writes under it. A promote fsyncs {epoch, owned: true} before the first
// write of the new term is acknowledged; a node that observes a higher epoch
// from anyone fsyncs {epoch, owned: false} and fail-stops ingest, which is
// what keeps a deposed primary fenced across its own reboots.
//
//	[8]byte  magic "EFDFENCE"
//	uint32   format version (1)
//	uint64   epoch
//	uint64   epoch start version (first graph version of the epoch; 0 unknown)
//	uint8    owned (1 = local ingest may acknowledge writes in this epoch)
//	uint32   crc32c over the 29 bytes above
//
// A missing fence file means the directory predates failover: epoch 0,
// owned — exactly the pre-epoch single-primary behaviour.

var fenceMagic = [8]byte{'E', 'F', 'D', 'F', 'E', 'N', 'C', 'E'}

const (
	fenceFormatV1 = uint32(1)
	fenceHdrBytes = 8 + 4 + 8 + 8 + 1
	fenceFileName = "fence"
)

// fenceState is the decoded fence file.
type fenceState struct {
	epoch uint64
	start uint64
	owned bool
}

// writeFenceFile durably publishes fs under dir (tmp → fsync → rename →
// dir fsync). inject, when non-nil, is consulted at "fence.write" before any
// byte lands — the promote crash-point drills hang off it.
func writeFenceFile(dir string, fs fenceState, inject func(string) error) error {
	if inject != nil {
		if err := inject("fence.write"); err != nil {
			return fmt.Errorf("persist: fence write: %w", err)
		}
	}
	var buf [fenceHdrBytes + 4]byte
	copy(buf[:8], fenceMagic[:])
	binary.LittleEndian.PutUint32(buf[8:], fenceFormatV1)
	binary.LittleEndian.PutUint64(buf[12:], fs.epoch)
	binary.LittleEndian.PutUint64(buf[20:], fs.start)
	if fs.owned {
		buf[28] = 1
	}
	binary.LittleEndian.PutUint32(buf[fenceHdrBytes:], crc32.Checksum(buf[:fenceHdrBytes], castagnoli))

	path := filepath.Join(dir, fenceFileName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: creating fence file: %w", err)
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	_, err = f.Write(buf[:])
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("persist: writing fence file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("persist: publishing fence file: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("persist: syncing fence dir: %w", err)
	}
	return nil
}

// readFenceFile loads the fence under dir. ok is false when no fence file
// exists (a pre-epoch directory). A corrupt fence is an error, not a silent
// epoch-0: acting as an owner on garbage could fork acknowledged history.
func readFenceFile(dir string) (fs fenceState, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, fenceFileName))
	if os.IsNotExist(err) {
		return fenceState{}, false, nil
	}
	if err != nil {
		return fenceState{}, false, fmt.Errorf("persist: reading fence file: %w", err)
	}
	if len(data) < fenceHdrBytes+4 || [8]byte(data[:8]) != fenceMagic {
		return fenceState{}, false, fmt.Errorf("persist: fence file: bad magic or truncated")
	}
	if format := binary.LittleEndian.Uint32(data[8:]); format != fenceFormatV1 {
		return fenceState{}, false, fmt.Errorf("persist: fence file: unsupported format %d", format)
	}
	if crc32.Checksum(data[:fenceHdrBytes], castagnoli) != binary.LittleEndian.Uint32(data[fenceHdrBytes:]) {
		return fenceState{}, false, fmt.Errorf("persist: fence file: checksum mismatch")
	}
	fs.epoch = binary.LittleEndian.Uint64(data[12:])
	fs.start = binary.LittleEndian.Uint64(data[20:])
	fs.owned = data[28] == 1
	return fs, true, nil
}
