package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/stream"
)

// Snapshot file layout, little-endian.
//
// Format 3 (written by this version):
//
//	[8]byte  magic "EFDSNAP1"
//	uint32   format version (3)
//	uint64   graph version
//	uint64   window watermark: version  (stream.WindowMark.Version)
//	int64    window watermark: wall     (stream.WindowMark.Wall, unix ns)
//	int64    written-at wall time (unix ns; recovery stamps restored edges)
//	uint64   epoch (failover term the snapshot was written under)
//	uint32   crc32c over the 52 header bytes above
//	[]byte   bipartite CSR codec blob (self-checksummed)
//
// Format 2 (pre-failover) lacks the epoch field; format 1 (legacy,
// pre-windowing) also lacks the three watermark/time fields. The reader
// accepts all three, reporting zeroes for the absent fields — so a
// pre-epoch directory recovers into an epoch-aware store without a rewrite.
// The watermark is captured atomically with the CSR cut
// (stream.SnapshotWithMark), so a recovered graph adopts expiry progress
// consistent with the recovered edge set — combined with WAL tombstone
// replay for post-snapshot retires, no restart can resurrect an expired
// edge.
//
// Files are written to a .tmp sibling, synced, renamed into place, and the
// directory synced, so a crash mid-write leaves either the old set of
// snapshots or the new one — never a half-visible file. After a successful
// write, older snapshot files are deleted.

var snapMagic = [8]byte{'E', 'F', 'D', 'S', 'N', 'A', 'P', '1'}

const (
	snapFormatV1 = uint32(1)
	snapFormatV2 = uint32(2)
	snapFormatV3 = uint32(3)
)

// SnapshotHeader is the decoded metadata of one snapshot file or stream.
// Fields a legacy format lacks are zero.
type SnapshotHeader struct {
	// Version is the graph version the snapshot captures.
	Version uint64
	// Mark is the window expiry watermark at the cut (formats ≥ 2).
	Mark stream.WindowMark
	// WrittenAt is the wall time of the write, unix ns (formats ≥ 2).
	WrittenAt int64
	// Epoch is the failover term the snapshot was written under (format 3).
	Epoch uint64
}

func snapPath(dir string, version uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", version))
}

// writeSnapshotFile durably writes g at the given graph version with its
// window watermark and epoch, and removes older snapshots. It returns the
// final path.
func writeSnapshotFile(dir string, g *bipartite.Graph, version uint64, mark stream.WindowMark, writtenAt int64, epoch uint64) (string, error) {
	path := snapPath(dir, version)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", fmt.Errorf("persist: creating snapshot: %w", err)
	}
	defer os.Remove(tmp) // no-op after the rename succeeds

	bw := bufio.NewWriterSize(f, 1<<20)
	var hdr [52]byte
	copy(hdr[:8], snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], snapFormatV3)
	binary.LittleEndian.PutUint64(hdr[12:], version)
	binary.LittleEndian.PutUint64(hdr[20:], mark.Version)
	binary.LittleEndian.PutUint64(hdr[28:], uint64(mark.Wall))
	binary.LittleEndian.PutUint64(hdr[36:], uint64(writtenAt))
	binary.LittleEndian.PutUint64(hdr[44:], epoch)
	if _, err := bw.Write(hdr[:]); err == nil {
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(hdr[:], castagnoli))
		_, err = bw.Write(crc[:])
		if err == nil {
			err = bipartite.WriteCSR(bw, g)
		}
		if err == nil {
			err = bw.Flush()
		}
		if err == nil {
			err = f.Sync()
		}
	} else {
		err = fmt.Errorf("persist: writing snapshot header: %w", err)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", fmt.Errorf("persist: syncing snapshot dir: %w", err)
	}
	// The new snapshot is durable; older ones are now redundant.
	for _, old := range listSnapshots(dir) {
		if old.version != version {
			//ensemfdet:durability-ok superseded snapshots: the newer one is already fsynced and published
			os.Remove(old.path)
		}
	}
	return path, nil
}

// readSnapshotFile decodes and validates one snapshot file of any supported
// format. Fields absent from a legacy format come back zero.
func readSnapshotFile(path string) (g *bipartite.Graph, hdr SnapshotHeader, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, hdr, fmt.Errorf("persist: opening snapshot: %w", err)
	}
	defer f.Close()
	return decodeSnapshot(f, filepath.Base(path))
}

// decodeSnapshot reads one snapshot of any supported format from r; label
// names the source in errors (a file's base name, or "stream" for a shipped
// body).
func decodeSnapshot(r io.Reader, label string) (g *bipartite.Graph, out SnapshotHeader, err error) {
	br := bufio.NewReaderSize(r, 1<<20)

	var pre [12]byte // magic + format: enough to select the header shape
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return nil, out, fmt.Errorf("persist: reading snapshot header: %w", err)
	}
	if [8]byte(pre[:8]) != snapMagic {
		return nil, out, fmt.Errorf("persist: snapshot %s: bad magic", label)
	}
	format := binary.LittleEndian.Uint32(pre[8:])
	var hdrLen int
	switch format {
	case snapFormatV1:
		hdrLen = 20 // magic + format + graph version
	case snapFormatV2:
		hdrLen = 44 // + watermark version, watermark wall, written-at
	case snapFormatV3:
		hdrLen = 52 // + epoch
	default:
		return nil, out, fmt.Errorf("persist: snapshot %s: unsupported format %d", label, format)
	}
	hdr := make([]byte, hdrLen+4)
	copy(hdr, pre[:])
	if _, err := io.ReadFull(br, hdr[len(pre):]); err != nil {
		return nil, out, fmt.Errorf("persist: reading snapshot header: %w", err)
	}
	if crc32.Checksum(hdr[:hdrLen], castagnoli) != binary.LittleEndian.Uint32(hdr[hdrLen:]) {
		return nil, out, fmt.Errorf("persist: snapshot %s: header checksum mismatch", label)
	}
	out.Version = binary.LittleEndian.Uint64(hdr[12:])
	if format >= snapFormatV2 {
		out.Mark.Version = binary.LittleEndian.Uint64(hdr[20:])
		out.Mark.Wall = int64(binary.LittleEndian.Uint64(hdr[28:]))
		out.WrittenAt = int64(binary.LittleEndian.Uint64(hdr[36:]))
	}
	if format >= snapFormatV3 {
		out.Epoch = binary.LittleEndian.Uint64(hdr[44:])
	}
	g, err = bipartite.ReadCSR(br)
	if err != nil {
		return nil, out, fmt.Errorf("persist: snapshot %s: %w", label, err)
	}
	return g, out, nil
}

// snapFile names one on-disk snapshot.
type snapFile struct {
	path    string
	version uint64
}

// listSnapshots returns the snapshots in dir, newest version first. Files
// that do not parse as snapshot names (including .tmp leftovers) are ignored.
func listSnapshots(dir string) []snapFile {
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		return nil
	}
	out := make([]snapFile, 0, len(names))
	for _, name := range names {
		v, err := parseIndexedName(filepath.Base(name), "snap-", ".snap")
		if err != nil {
			continue
		}
		out = append(out, snapFile{path: name, version: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].version > out[j].version })
	return out
}
