package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"ensemfdet/internal/bipartite"
)

// Snapshot file layout, little-endian:
//
//	[8]byte  magic "EFDSNAP1"
//	uint32   format version
//	uint64   graph version
//	uint32   crc32c over the 20 header bytes above
//	[]byte   bipartite CSR codec blob (self-checksummed)
//
// Files are written to a .tmp sibling, synced, renamed into place, and the
// directory synced, so a crash mid-write leaves either the old set of
// snapshots or the new one — never a half-visible file. After a successful
// write, older snapshot files are deleted.

var snapMagic = [8]byte{'E', 'F', 'D', 'S', 'N', 'A', 'P', '1'}

const snapFormatVersion = uint32(1)

func snapPath(dir string, version uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", version))
}

// writeSnapshotFile durably writes g at the given graph version and removes
// older snapshots. It returns the final path.
func writeSnapshotFile(dir string, g *bipartite.Graph, version uint64) (string, error) {
	path := snapPath(dir, version)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", fmt.Errorf("persist: creating snapshot: %w", err)
	}
	defer os.Remove(tmp) // no-op after the rename succeeds

	bw := bufio.NewWriterSize(f, 1<<20)
	var hdr [20]byte
	copy(hdr[:8], snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], snapFormatVersion)
	binary.LittleEndian.PutUint64(hdr[12:], version)
	if _, err := bw.Write(hdr[:]); err == nil {
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(hdr[:], castagnoli))
		_, err = bw.Write(crc[:])
		if err == nil {
			err = bipartite.WriteCSR(bw, g)
		}
		if err == nil {
			err = bw.Flush()
		}
		if err == nil {
			err = f.Sync()
		}
	} else {
		err = fmt.Errorf("persist: writing snapshot header: %w", err)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", fmt.Errorf("persist: syncing snapshot dir: %w", err)
	}
	// The new snapshot is durable; older ones are now redundant.
	for _, old := range listSnapshots(dir) {
		if old.version != version {
			os.Remove(old.path)
		}
	}
	return path, nil
}

// readSnapshotFile decodes and validates one snapshot file.
func readSnapshotFile(path string) (*bipartite.Graph, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("persist: opening snapshot: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)

	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("persist: reading snapshot header: %w", err)
	}
	if [8]byte(hdr[:8]) != snapMagic {
		return nil, 0, fmt.Errorf("persist: snapshot %s: bad magic", filepath.Base(path))
	}
	if crc32.Checksum(hdr[:20], castagnoli) != binary.LittleEndian.Uint32(hdr[20:]) {
		return nil, 0, fmt.Errorf("persist: snapshot %s: header checksum mismatch", filepath.Base(path))
	}
	if format := binary.LittleEndian.Uint32(hdr[8:]); format != snapFormatVersion {
		return nil, 0, fmt.Errorf("persist: snapshot %s: unsupported format %d", filepath.Base(path), format)
	}
	version := binary.LittleEndian.Uint64(hdr[12:])
	g, err := bipartite.ReadCSR(br)
	if err != nil {
		return nil, 0, fmt.Errorf("persist: snapshot %s: %w", filepath.Base(path), err)
	}
	return g, version, nil
}

// snapFile names one on-disk snapshot.
type snapFile struct {
	path    string
	version uint64
}

// listSnapshots returns the snapshots in dir, newest version first. Files
// that do not parse as snapshot names (including .tmp leftovers) are ignored.
func listSnapshots(dir string) []snapFile {
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		return nil
	}
	out := make([]snapFile, 0, len(names))
	for _, name := range names {
		v, err := parseIndexedName(filepath.Base(name), "snap-", ".snap")
		if err != nil {
			continue
		}
		out = append(out, snapFile{path: name, version: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].version > out[j].version })
	return out
}
