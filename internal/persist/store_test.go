package persist

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/core"
	"ensemfdet/internal/stream"
)

// randomBatches shapes a deterministic ingest stream: n batches of mixed
// fresh and duplicate edges over a modest id space.
func randomBatches(seed int64, n, perBatch int) [][]bipartite.Edge {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]bipartite.Edge, n)
	for i := range out {
		batch := make([]bipartite.Edge, perBatch)
		for j := range batch {
			batch[j] = bipartite.Edge{U: uint32(rng.Intn(150)), V: uint32(rng.Intn(120))}
		}
		out[i] = batch
	}
	return out
}

// csrBytes canonically encodes a graph for byte-identity comparison.
func csrBytes(t *testing.T, g *bipartite.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := bipartite.WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// votes runs a small deterministic ensemble on g.
func votes(t *testing.T, g *bipartite.Graph) core.Votes {
	t.Helper()
	out, err := core.Run(g, core.Config{NumSamples: 8, SampleRatio: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return out.Votes
}

// openDurable boots a store-backed stream graph in dir, the way the daemon
// wires it: open, recover, then journal + source.
func openDurable(t *testing.T, dir string, shards int, opts Options) (*Store, *stream.Graph, RecoveryStats) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = testLogf(t)
	}
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	g := stream.NewSharded(shards)
	rec, err := st.Recover(g)
	if err != nil {
		t.Fatal(err)
	}
	g.SetJournal(st)
	st.SetSource(g)
	return st, g, rec
}

// TestCrashRecoveryMatchesUninterruptedRun is the acceptance-criteria pin:
// a run that crashes (store abandoned without Close, WAL fsynced per batch)
// after a mid-stream snapshot must recover — even into a different shard
// count — to the same version, a byte-identical CSR snapshot, and
// byte-identical detection votes as an uninterrupted run over the same
// acknowledged batches.
func TestCrashRecoveryMatchesUninterruptedRun(t *testing.T) {
	batches := randomBatches(3, 12, 40)
	dir := t.TempDir()

	st, g, rec := openDurable(t, dir, 4, Options{Fsync: FsyncAlways})
	if rec.Version != 0 || rec.SnapshotVersion != 0 {
		t.Fatalf("fresh dir recovery: %+v", rec)
	}
	for i, b := range batches {
		if res := g.Append(b); res.Err != nil {
			t.Fatalf("batch %d: %v", i, res.Err)
		}
		if i == 5 {
			if err := st.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	liveVersion := g.Version()
	liveSnap, _ := g.Snapshot()
	liveVotes := votes(t, liveSnap)
	// Crash: no Close, no final snapshot. Every acknowledged batch is on
	// disk because FsyncAlways synced before each Append returned.

	st2, g2, rec2 := openDurable(t, dir, 16, Options{Fsync: FsyncAlways})
	defer st2.Close()
	if g2.Version() != liveVersion {
		t.Fatalf("recovered version %d, want %d", g2.Version(), liveVersion)
	}
	if rec2.SnapshotVersion == 0 || rec2.ReplayedRecords == 0 {
		t.Fatalf("recovery should combine a snapshot and a WAL tail: %+v", rec2)
	}
	gotSnap, _ := g2.Snapshot()
	if !bytes.Equal(csrBytes(t, gotSnap), csrBytes(t, liveSnap)) {
		t.Fatal("recovered snapshot is not byte-identical to the uninterrupted run")
	}
	if !reflect.DeepEqual(votes(t, gotSnap), liveVotes) {
		t.Fatal("recovered votes differ from the uninterrupted run")
	}

	// Ingest continues seamlessly after recovery.
	extra := []bipartite.Edge{{U: 500, V: 500}}
	if res := g2.Append(extra); res.Err != nil || res.Version != liveVersion+1 {
		t.Fatalf("post-recovery append: %+v", res)
	}
}

// TestRecoveryWALOnly recovers from a log with no snapshot at all.
func TestRecoveryWALOnly(t *testing.T) {
	batches := randomBatches(9, 6, 25)
	dir := t.TempDir()
	_, g, _ := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	for _, b := range batches {
		g.Append(b)
	}
	live, _ := g.Snapshot()

	_, g2, rec := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	if rec.SnapshotVersion != 0 || rec.ReplayedRecords == 0 {
		t.Fatalf("WAL-only recovery: %+v", rec)
	}
	if g2.Version() != g.Version() {
		t.Fatalf("version %d, want %d", g2.Version(), g.Version())
	}
	got, _ := g2.Snapshot()
	if !bytes.Equal(csrBytes(t, got), csrBytes(t, live)) {
		t.Fatal("WAL-only recovery diverged")
	}
}

// TestRecoverySnapshotOnly: after Close (which writes a covering snapshot
// and truncates the WAL), recovery is pure snapshot load — zero replay.
func TestRecoverySnapshotOnly(t *testing.T) {
	dir := t.TempDir()
	st, g, _ := openDurable(t, dir, 4, Options{Fsync: FsyncAlways})
	for _, b := range randomBatches(11, 5, 30) {
		g.Append(b)
	}
	live, _ := g.Snapshot()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, g2, rec := openDurable(t, dir, 4, Options{Fsync: FsyncAlways})
	defer st2.Close()
	if rec.ReplayedRecords != 0 || rec.SkippedRecords != 0 || rec.SnapshotVersion != g.Version() {
		t.Fatalf("post-Close recovery should be snapshot-only: %+v", rec)
	}
	got, _ := g2.Snapshot()
	if !bytes.Equal(csrBytes(t, got), csrBytes(t, live)) {
		t.Fatal("snapshot-only recovery diverged")
	}
	// The recovered CSR was pre-published: no build ran.
	if bs := g2.BuildStats(); bs.FullBuilds+bs.DeltaBuilds != 0 {
		t.Fatalf("snapshot-only recovery rebuilt the CSR: %+v", bs)
	}
}

// TestBackgroundSnapshotTruncatesWAL drives the size trigger: with a tiny
// threshold every batch tips the log over, so snapshots must be written in
// the background and the WAL must shrink to the uncovered tail.
func TestBackgroundSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	st, g, _ := openDurable(t, dir, 4, Options{Fsync: FsyncAlways, SnapshotBytes: 1, SegmentBytes: 1 << 10})
	for _, b := range randomBatches(13, 10, 50) {
		g.Append(b)
	}
	if err := st.Close(); err != nil { // waits for in-flight background snapshots
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.SnapshotsWritten == 0 {
		t.Fatalf("size trigger never fired: %+v", stats)
	}
	if stats.SnapshotErrors != 0 {
		t.Fatalf("snapshot errors: %+v", stats)
	}
	if stats.SnapshotVersion != g.Version() {
		t.Fatalf("final snapshot at version %d, graph at %d", stats.SnapshotVersion, g.Version())
	}

	_, g2, rec := openDurable(t, dir, 4, Options{Fsync: FsyncAlways})
	if rec.SnapshotVersion != g.Version() || rec.ReplayedRecords != 0 {
		t.Fatalf("recovery after snapshot cycle: %+v", rec)
	}
	want, _ := g.Snapshot()
	got, _ := g2.Snapshot()
	if !bytes.Equal(csrBytes(t, got), csrBytes(t, want)) {
		t.Fatal("recovery after background snapshots diverged")
	}
}

// TestRecoverySkipsCorruptSnapshot: an unreadable snapshot whose range the
// WAL still covers must be skipped with a warning, falling back to full WAL
// replay — never a refused boot, never silent trust.
func TestRecoverySkipsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	_, g, _ := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	for _, b := range randomBatches(17, 4, 20) {
		g.Append(b)
	}
	live, _ := g.Snapshot()

	// Plant a corrupt snapshot claiming a version the (untruncated) WAL
	// still fully covers: skipping it loses nothing.
	bad := snapPath(filepath.Join(dir, "snap"), 2)
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, g2, rec := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	if rec.SnapshotVersion != 0 {
		t.Fatalf("corrupt snapshot was trusted: %+v", rec)
	}
	got, _ := g2.Snapshot()
	if !bytes.Equal(csrBytes(t, got), csrBytes(t, live)) {
		t.Fatal("recovery around a corrupt snapshot diverged")
	}
}

// TestRecoveryRefusesLossyCorruptSnapshot: when the newest snapshot is
// unreadable AND the WAL was already truncated to it, the acknowledged
// batches it held exist nowhere else — recovery must refuse with a clear
// message, not silently boot a near-empty graph.
func TestRecoveryRefusesLossyCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, g, _ := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	for _, b := range randomBatches(19, 5, 20) {
		g.Append(b)
	}
	if err := st.Snapshot(); err != nil { // truncates the WAL to version 5
		t.Fatal(err)
	}
	g.Append(edgesN(900, 3)) // version 6, the only WAL record left

	snaps := listSnapshots(filepath.Join(dir, "snap"))
	if len(snaps) != 1 {
		t.Fatalf("expected exactly one snapshot, got %d", len(snaps))
	}
	raw, err := os.ReadFile(snaps[0].path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(snaps[0].path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{Fsync: FsyncAlways, Logf: testLogf(t)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = st2.Recover(stream.NewSharded(2))
	if err == nil || !strings.Contains(err.Error(), "lose versions") {
		t.Fatalf("lossy corrupt snapshot must refuse recovery, got: %v", err)
	}
}

// TestJournalFailStopAndSnapshotHeal drives the degraded-mode contract: one
// WAL failure rejects the batch AND every later batch (no version holes in
// the log), a covering snapshot heals the gap, and recovery after the heal
// reproduces the live graph exactly — including the batches that never made
// the WAL.
func TestJournalFailStopAndSnapshotHeal(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	// Tiny segments so the second batch needs a rotation; planting the next
	// segment's filename makes that rotation (O_EXCL create) fail — a
	// deterministic journal fault without touching wal internals.
	st, g, _ := openDurable(t, dir, 2, Options{Fsync: FsyncAlways, SegmentBytes: 64})

	if res := g.Append(edgesN(0, 3)); res.Err != nil { // v1, fits segment 1
		t.Fatal(res.Err)
	}
	plant := segPath(walDir, 2)
	if err := os.WriteFile(plant, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if res := g.Append(edgesN(100, 4)); res.Err == nil { // v2: rotation fails
		t.Fatal("journal failure not surfaced")
	}
	st.wg.Wait() // drain the auto-heal snapshot attempt (it fails too)

	if res := g.Append(edgesN(200, 2)); res.Err == nil { // v3: degraded gate
		t.Fatal("append accepted while the WAL has a version hole")
	}
	if st.Stats().WALGapVersion == 0 {
		t.Fatal("degraded state not reported in Stats")
	}

	// Fix the disk; the gate must STILL reject — the hole is not filled by
	// a healthy WAL, only by a covering snapshot.
	if err := os.Remove(plant); err != nil {
		t.Fatal(err)
	}
	if res := g.Append(edgesN(300, 2)); res.Err == nil { // v4
		t.Fatal("append accepted with an unhealed version hole")
	}
	if err := st.Snapshot(); err != nil { // covers v1..v4, heals
		t.Fatal(err)
	}
	if res := g.Append(edgesN(400, 2)); res.Err != nil { // v5: healthy again
		t.Fatalf("append after heal: %v", res.Err)
	}
	if st.Stats().WALGapVersion != 0 {
		t.Fatal("gap did not clear after a covering snapshot")
	}
	// The rejected appends above each kicked a background heal snapshot;
	// drain them before simulating the crash, or a late goroutine races the
	// test teardown (and the recovery comparison below).
	st.wg.Wait()

	// Crash now: recovery = snapshot(v4) + WAL(v5) must equal live exactly.
	live, _ := g.Snapshot()
	_, g2, _ := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	if g2.Version() != g.Version() {
		t.Fatalf("recovered version %d, want %d", g2.Version(), g.Version())
	}
	got, _ := g2.Snapshot()
	if !bytes.Equal(csrBytes(t, got), csrBytes(t, live)) {
		t.Fatal("recovery after a healed WAL failure diverged from the live graph")
	}
}

// TestDuplicateOnlyBatchesNotJournaled: replayed WALs must not contain
// batches that added nothing — re-ingesting the same batch twice journals
// once.
func TestDuplicateOnlyBatchesNotJournaled(t *testing.T) {
	dir := t.TempDir()
	st, g, _ := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	batch := edgesN(0, 10)
	g.Append(batch)
	g.Append(batch) // all duplicates: no version bump, nothing to persist
	if n := st.Stats().AppendedRecords; n != 1 {
		t.Fatalf("journaled %d records, want 1", n)
	}
}

func TestAppendEdgesAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	st, g, _ := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	g.AppendEdge(1, 1)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if res := g.AppendEdge(2, 2); res.Err == nil {
		t.Fatal("append through a closed store must surface a durability error")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"", FsyncAlways, true},
		{"NEVER", FsyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// TestConcurrentDurableIngest hammers a store-backed graph from several
// producers with aggressive snapshotting (run with -race), then verifies the
// recovered edge set matches.
func TestConcurrentDurableIngest(t *testing.T) {
	dir := t.TempDir()
	st, g, _ := openDurable(t, dir, 8, Options{Fsync: FsyncNever, SnapshotBytes: 512, SegmentBytes: 2 << 10})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for _, b := range randomBatches(seed, 30, 8) {
				if res := g.Append(b); res.Err != nil {
					t.Error(res.Err)
					return
				}
			}
		}(int64(100 + p))
	}
	wg.Wait()
	live, _ := g.Snapshot()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, g2, _ := openDurable(t, dir, 8, Options{Fsync: FsyncNever})
	got, _ := g2.Snapshot()
	if !bytes.Equal(csrBytes(t, got), csrBytes(t, live)) {
		t.Fatal("concurrent durable ingest did not recover to the live graph")
	}
	if g2.Version() != g.Version() {
		t.Fatalf("recovered version %d, want %d", g2.Version(), g.Version())
	}
}

// TestReplayPreservesVersionsAcrossHole: a crash can leave a WAL missing one
// version of a concurrent pair (the torn record was never acknowledged, the
// survivor was). Replay must pin the surviving records to their original
// versions instead of renumbering everything after the hole — acknowledged
// clients hold those version labels.
func TestReplayPreservesVersionsAcrossHole(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	w, _, _, err := openWAL(walDir, 1<<20, true, testLogf(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Version 2's record is missing: its journal write was torn mid-crash.
	if _, err := w.append(walRecord{kind: recEdges, version: 1, edges: edgesN(0, 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(walRecord{kind: recEdges, version: 3, edges: edgesN(100, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	_, g, rec := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	if g.Version() != 3 {
		t.Fatalf("recovered version %d, want the acknowledged label 3", g.Version())
	}
	if rec.ReplayedRecords != 2 {
		t.Fatalf("replayed %d records, want 2", rec.ReplayedRecords)
	}
	// New ingest continues above the preserved labels.
	if res := g.AppendEdge(900, 900); res.Version != 4 {
		t.Fatalf("post-recovery append got version %d, want 4", res.Version)
	}
}

// TestTaintedSegmentSealsClean: rotating away from a tainted segment must
// cut its garbage tail first, so a crash that strands the sealed segment on
// disk (before the covering snapshot deletes it) still boots.
func TestTaintedSegmentSealsClean(t *testing.T) {
	dir := t.TempDir()
	w, _, _, err := openWAL(dir, 1<<20, true, testLogf(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(walRecord{kind: recEdges, version: 1, edges: edgesN(0, 2)}); err != nil {
		t.Fatal(err)
	}
	// Simulate a failed record write: partial garbage lands after the good
	// record and the writer marks itself tainted.
	if _, err := w.f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	w.tainted = true
	if err := w.truncateTo(0); err != nil { // rotates the tainted segment
		t.Fatal(err)
	}
	if _, err := w.append(walRecord{kind: recEdges, version: 2, edges: edgesN(10, 2)}); err != nil {
		t.Fatalf("append after tainted rotation: %v", err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	// Both segments are on disk (nothing deleted at watermark 0); the boot
	// scan must find two clean segments, not refuse over sealed garbage.
	_, recs, torn, err := openWAL(dir, 1<<20, true, testLogf(t), nil)
	if err != nil {
		t.Fatalf("boot after tainted seal refused: %v", err)
	}
	if torn || len(recs) != 2 || recs[0].version != 1 || recs[1].version != 2 {
		t.Fatalf("boot after tainted seal: torn=%v recs=%+v", torn, recs)
	}
}

// TestDegradedRejectionKicksHeal: while degraded, every rejected append must
// re-attempt the healing snapshot — the size trigger cannot fire when
// appends are rejected, so without this a healthy disk could stay degraded
// until shutdown.
func TestDegradedRejectionKicksHeal(t *testing.T) {
	dir := t.TempDir()
	st, g, _ := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	if res := g.Append(edgesN(0, 2)); res.Err != nil { // v1
		t.Fatal(res.Err)
	}
	// Simulate an unhealed gap (as if v1's journal write had failed).
	st.walGap.Store(1)

	if res := g.Append(edgesN(100, 2)); res.Err == nil { // v2: rejected, kicks
		t.Fatal("append accepted while degraded")
	}
	st.wg.Wait() // the kicked snapshot cuts at v2 ≥ gap and heals

	// The degraded signal clears with the snapshot itself, not lazily on
	// the next ingest — operators watch this gauge.
	if gap := st.Stats().WALGapVersion; gap != 0 {
		t.Fatalf("gap %d still reported after the healing snapshot landed", gap)
	}
	if res := g.Append(edgesN(200, 2)); res.Err != nil { // v3: healthy again
		t.Fatalf("append after rejection-kicked heal: %v", res.Err)
	}
	if gap := st.Stats().WALGapVersion; gap != 0 {
		t.Fatalf("gap %d survived the kicked heal", gap)
	}
}
