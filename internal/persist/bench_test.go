package persist

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/stream"
)

func benchGraph(edges int) *bipartite.Graph {
	rng := rand.New(rand.NewSource(1))
	b := bipartite.NewBuilderSized(edges/8, edges/8, edges)
	for i := 0; i < edges; i++ {
		b.AddEdge(uint32(rng.Intn(edges/8)), uint32(rng.Intn(edges/8)))
	}
	return b.Build()
}

// BenchmarkWALAppend measures the journal tee alone (no fsync, so the OS
// page cache is the ceiling): the framing+CRC cost a durable ingest batch
// pays on top of the in-memory append.
func BenchmarkWALAppend(b *testing.B) {
	const batch = 256
	edges := edgesN(0, batch)
	w, _, _, err := openWAL(b.TempDir(), defaultSegmentBytes, false, b.Logf, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer w.close()
	b.SetBytes(int64(walFrameBytes + 16 + 8*batch)) // v2 edge-record framing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.append(walRecord{kind: recEdges, version: uint64(i + 1), edges: edges}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendFsync is the durable-by-default path: one fsync per
// acknowledged batch. Expect device flush latency, not CPU, to dominate.
func BenchmarkWALAppendFsync(b *testing.B) {
	const batch = 256
	edges := edgesN(0, batch)
	w, _, _, err := openWAL(b.TempDir(), defaultSegmentBytes, true, b.Logf, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer w.close()
	b.SetBytes(int64(walFrameBytes + 16 + 8*batch)) // v2 edge-record framing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.append(walRecord{kind: recEdges, version: uint64(i + 1), edges: edges}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotEncode measures the CSR snapshot codec write path.
func BenchmarkSnapshotEncode(b *testing.B) {
	g := benchGraph(1 << 16)
	var buf bytes.Buffer
	if err := bipartite.WriteCSR(&buf, g); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bipartite.WriteCSR(io.Discard, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotDecode measures boot-time snapshot loading, validation
// included — the latency floor of a recovery with an up-to-date snapshot.
func BenchmarkSnapshotDecode(b *testing.B) {
	g := benchGraph(1 << 16)
	var buf bytes.Buffer
	if err := bipartite.WriteCSR(&buf, g); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bipartite.ReadCSR(bytes.NewReader(enc)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecovery measures a full boot: open the store, load the
// snapshot, replay a WAL tail into a sharded stream graph.
func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	st, err := Open(dir, Options{Fsync: FsyncNever, Logf: b.Logf})
	if err != nil {
		b.Fatal(err)
	}
	g := stream.NewSharded(4)
	if _, err := st.Recover(g); err != nil {
		b.Fatal(err)
	}
	g.SetJournal(st)
	st.SetSource(g)
	rng := rand.New(rand.NewSource(2))
	for batch := 0; batch < 64; batch++ {
		edges := make([]bipartite.Edge, 512)
		for i := range edges {
			edges[i] = bipartite.Edge{U: uint32(rng.Intn(1 << 13)), V: uint32(rng.Intn(1 << 13))}
		}
		if res := g.Append(edges); res.Err != nil {
			b.Fatal(res.Err)
		}
		if batch == 31 {
			if err := st.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := st.wal.sync(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st2, err := Open(dir, Options{Fsync: FsyncNever, Logf: b.Logf})
		if err != nil {
			b.Fatal(err)
		}
		g2 := stream.NewSharded(4)
		if _, err := st2.Recover(g2); err != nil {
			b.Fatal(err)
		}
		if g2.Version() != g.Version() {
			b.Fatalf("recovered version %d, want %d", g2.Version(), g.Version())
		}
		if err := st2.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
