package persist

// WAL-shipping surface: the exported, read-only view of the durability state
// that the replication subsystem (internal/replicate) serves over HTTP. A
// follower bootstraps by downloading the newest snapshot plus the listed
// segments verbatim into its own data directory (after which normal recovery
// reproduces the primary's graph version-exactly), then tails records past
// its version with TailSince. Everything here reads the same on-disk state
// the store itself maintains; nothing is duplicated for replication.
//
// Consistency contract: a record enters the tail only after its WAL write
// completed, so the tail carries exactly the durable history. Versions that
// never reached the WAL (a degraded primary committing in memory while
// appends are rejected) are absent from the tail by construction; they become
// visible to followers only through the healing snapshot, which moves the
// truncation floor and pushes tailing followers through a snapshot resync.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/stream"
)

// ErrTailGone reports that a tail request starts below the WAL truncation
// floor: records at or below it have been folded into a snapshot and deleted
// from the log, so the only way forward for the caller is a snapshot resync.
var ErrTailGone = errors.New("persist: requested tail start precedes the WAL truncation floor")

// Exported record kinds, numerically identical to the v2 on-disk kinds.
const (
	// RecordEdges is an ingested edge batch.
	RecordEdges = recEdges
	// RecordTombstone is a retirement/removal; it carries the window
	// watermark its pass reached.
	RecordTombstone = recTombstone
	// RecordEpochFence marks the start of a failover term: it carries the
	// epoch that began at its version and no edges. Tailing followers adopt
	// the epoch durably when they apply it.
	RecordEpochFence = recEpochFence
)

// Record is one replicated WAL record: the unit TailSince ships and a
// follower applies (and re-journals) at its explicit version.
type Record struct {
	Version uint64
	Kind    uint32
	Mark    stream.WindowMark // RecordTombstone only
	Epoch   uint64            // RecordEpochFence only
	Edges   []bipartite.Edge
}

// EncodeRecordFrame frames r in the v2 WAL format (length + CRC32C +
// payload), the exact byte layout TailSince responses concatenate.
func EncodeRecordFrame(r Record) []byte {
	var buf []byte
	b := encodeRecord(&buf, walRecord{kind: r.Kind, version: r.Version, edges: r.Edges, mark: r.Mark, epoch: r.Epoch})
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// DecodeRecordFrame parses one v2-framed record from the head of data,
// returning it with its framed size. ok is false for a truncated, checksum
// -failing, or malformed frame.
func DecodeRecordFrame(data []byte) (Record, int, bool) {
	rec, n, ok := decodeRecordV2(data)
	if !ok {
		return Record{}, 0, false
	}
	return Record{Version: rec.version, Kind: rec.kind, Mark: rec.mark, Epoch: rec.epoch, Edges: rec.edges}, n, true
}

// AppendRecord journals one record at its explicit version — the follower's
// write path. Unlike the stream.Journal tee (which trusts the graph's own
// version counter), replication must pin each record to the version it
// carried on the primary, holes included, or a follower restart would
// renumber history. The fail-stop gap contract of AppendEdges applies
// unchanged: a WAL failure degrades the store until a covering snapshot
// (cut from the follower's graph source) heals it. Epoch ownership is not
// checked here — replicas journal the owner's records precisely because
// they are not the owner.
func (s *Store) AppendRecord(r Record) error {
	if r.Kind != RecordEdges && r.Kind != RecordTombstone && r.Kind != RecordEpochFence {
		return fmt.Errorf("persist: unknown record kind %d", r.Kind)
	}
	if r.Version == 0 {
		return errors.New("persist: record version must be non-zero")
	}
	return s.journalRecord(walRecord{kind: r.Kind, version: r.Version, edges: r.Edges, mark: r.Mark, epoch: r.Epoch})
}

// SegmentInfo describes one shippable WAL segment.
type SegmentInfo struct {
	Name       string `json:"name"`
	Bytes      int64  `json:"bytes"`
	MinVersion uint64 `json:"min_version"`
	MaxVersion uint64 `json:"max_version"`
	Records    int    `json:"records"`
	// Legacy marks a pre-windowing v1 segment (no header, edge batches
	// only). Followers download it verbatim; their own recovery scanner
	// format-detects it exactly like the primary's did.
	Legacy bool `json:"legacy,omitempty"`
}

// SnapshotInfo names the snapshot a bootstrap should download.
type SnapshotInfo struct {
	Name    string `json:"name"`
	Bytes   int64  `json:"bytes"`
	Version uint64 `json:"version"`
}

// Manifest is the shippable-state listing a follower bootstraps from:
// the newest durable snapshot (nil on a store that has never snapshotted)
// plus every WAL segment, sealed ones first, in index order. Segment bytes
// count only acknowledged records — a torn or tainted active tail is never
// shipped.
type Manifest struct {
	Snapshot *SnapshotInfo `json:"snapshot,omitempty"`
	Segments []SegmentInfo `json:"segments"`
	// Epoch is the failover term the primary is serving under, and
	// EpochVersion the first graph version of that term (0 when unknown —
	// epoch 0, or a term adopted from a header alone). Followers classify
	// their own history against this pair: a local version at or past
	// EpochVersion under a lower epoch has forked and must resync.
	Epoch        uint64 `json:"epoch"`
	EpochVersion uint64 `json:"epoch_version,omitempty"`
}

// Manifest returns the current shippable state. The listing is a consistent
// cut of the WAL metadata (taken under the log lock) paired with the newest
// snapshot on disk; a snapshot or truncation racing the call at worst makes
// the follower's download find a file changed or gone, which it answers by
// restarting its bootstrap from a fresh manifest.
func (s *Store) Manifest() (Manifest, error) {
	if s.closed.Load() {
		return Manifest{}, errors.New("persist: store is closed")
	}
	epoch, start, _ := s.Epoch()
	m := Manifest{Segments: s.wal.segmentInfos(), Epoch: epoch, EpochVersion: start}
	// Retry the size stat a few times: the newest snapshot can be deleted by
	// an even newer one landing between the listing and the stat.
	for attempt := 0; attempt < 3; attempt++ {
		snaps := listSnapshots(filepath.Join(s.dir, "snap"))
		if len(snaps) == 0 {
			return m, nil
		}
		fi, err := os.Stat(snaps[0].path)
		if err != nil {
			continue
		}
		m.Snapshot = &SnapshotInfo{
			Name:    filepath.Base(snaps[0].path),
			Bytes:   fi.Size(),
			Version: snaps[0].version,
		}
		return m, nil
	}
	return Manifest{}, errors.New("persist: snapshot listing raced repeated snapshot writes")
}

// segmentInfos lists sealed segments then the active one (when it holds
// records), under the log lock so the listing is a consistent cut.
func (w *wal) segmentInfos() []SegmentInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]SegmentInfo, 0, len(w.sealed)+1)
	add := func(seg segMeta) {
		out = append(out, SegmentInfo{
			Name:       filepath.Base(seg.path),
			Bytes:      seg.bytes,
			MinVersion: seg.minVer,
			MaxVersion: seg.maxVer,
			Records:    seg.records,
			Legacy:     seg.v1,
		})
	}
	for _, seg := range w.sealed {
		add(seg)
	}
	if w.active.records > 0 {
		add(w.active)
	}
	return out
}

// OpenSnapshotFile opens one snapshot by its manifest name for verbatim
// shipping. Unknown or malformed names fail with an error satisfying
// errors.Is(err, os.ErrNotExist) — the name is parsed and the path
// re-derived, so no request can escape the snapshot directory.
func (s *Store) OpenSnapshotFile(name string) (io.ReadCloser, int64, error) {
	version, err := parseIndexedName(name, "snap-", ".snap")
	if err != nil {
		return nil, 0, fmt.Errorf("persist: %q: %w", name, os.ErrNotExist)
	}
	path := snapPath(filepath.Join(s.dir, "snap"), version)
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, fi.Size(), nil
}

// OpenSegmentFile opens one WAL segment by its manifest name for verbatim
// shipping, limited to its acknowledged bytes: the active segment's unsynced
// or torn tail — and any record racing in after the open — is never shipped,
// so a follower always receives a prefix that scans cleanly. Unknown names
// fail with os.ErrNotExist.
func (s *Store) OpenSegmentFile(name string) (io.ReadCloser, int64, error) {
	index, err := parseIndexedName(name, "seg-", ".wal")
	if err != nil {
		return nil, 0, fmt.Errorf("persist: %q: %w", name, os.ErrNotExist)
	}
	path, limit, ok := s.wal.segmentForShip(index)
	if !ok {
		return nil, 0, fmt.Errorf("persist: segment %q: %w", name, os.ErrNotExist)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	return &limitedFile{f: f, r: io.LimitReader(f, limit)}, limit, nil
}

// segmentForShip resolves a segment index to its path and acknowledged byte
// count under the log lock.
func (w *wal) segmentForShip(index uint64) (path string, limit int64, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, seg := range w.sealed {
		if seg.index == index {
			return seg.path, seg.bytes, true
		}
	}
	if w.active.index == index {
		return w.active.path, w.active.bytes, true
	}
	return "", 0, false
}

type limitedFile struct {
	f *os.File
	r io.Reader
}

func (l *limitedFile) Read(p []byte) (int, error) { return l.r.Read(p) }
func (l *limitedFile) Close() error               { return l.f.Close() }

// TailSince returns the durable records with version > from, sorted by
// version and re-framed in the v2 format, up to roughly maxBytes per call
// (at least one record is always returned when any qualifies; 0 picks 4MB).
// last is the highest version included — the caller's next from. A from
// below the truncation floor returns ErrTailGone: those versions now exist
// only inside a snapshot, and the caller must resync from one.
//
// The call holds the log lock across its file reads so truncation and
// compaction cannot mutate the segment set underneath it; the no-new-records
// fast path (the long-poll idle case) is a pure metadata check and touches
// no files.
func (s *Store) TailSince(from uint64, maxBytes int64) (payload []byte, last uint64, n int, err error) {
	if s.closed.Load() {
		return nil, 0, 0, errors.New("persist: store is closed")
	}
	if maxBytes <= 0 {
		maxBytes = 4 << 20
	}
	return s.wal.tailSince(from, maxBytes)
}

func (w *wal) tailSince(from uint64, maxBytes int64) ([]byte, uint64, int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil, 0, 0, errors.New("persist: WAL is closed")
	}
	if from < w.floor {
		return nil, 0, 0, fmt.Errorf("%w (from %d, floor %d)", ErrTailGone, from, w.floor)
	}
	newest := w.active.maxVer
	for _, seg := range w.sealed {
		if seg.maxVer > newest {
			newest = seg.maxVer
		}
	}
	if newest <= from {
		return nil, from, 0, nil
	}

	// Records within one segment can sit slightly out of version order
	// (versions are assigned under the commit lock, serialization on the log
	// lock happens after), so collect then sort — the same discipline replay
	// uses.
	var recs []walRecord
	collect := func(seg segMeta) error {
		if seg.records == 0 || seg.maxVer <= from {
			return nil
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return fmt.Errorf("persist: reading WAL segment for tail: %w", err)
		}
		if int64(len(data)) > seg.bytes {
			data = data[:seg.bytes] // exclude a tainted tail / racing write
		}
		off := 0
		decode := decodeRecordV1
		if !seg.v1 {
			off = len(walMagic)
			decode = decodeRecordV2
		}
		for off < len(data) {
			rec, sz, ok := decode(data[off:])
			if !ok {
				return fmt.Errorf("persist: WAL segment %s: undecodable record at offset %d during tail", filepath.Base(seg.path), off)
			}
			if rec.version > from {
				recs = append(recs, rec)
			}
			off += sz
		}
		return nil
	}
	for _, seg := range w.sealed {
		if err := collect(seg); err != nil {
			return nil, 0, 0, err
		}
	}
	if err := collect(w.active); err != nil {
		return nil, 0, 0, err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].version < recs[j].version })

	var payload []byte
	var scratch []byte
	var last uint64
	n := 0
	for _, r := range recs {
		frame := encodeRecord(&scratch, r)
		if n > 0 && int64(len(payload)+len(frame)) > maxBytes {
			break
		}
		payload = append(payload, frame...)
		last = r.version
		n++
	}
	return payload, last, n, nil
}

// DecodeSnapshot decodes one snapshot stream — the bytes OpenSnapshotFile
// ships — validating its header CRC and the CSR blob's self-checksums. It is
// the in-memory half of snapshot shipping: a follower without a data
// directory seeds its graph straight from the response body.
func DecodeSnapshot(r io.Reader) (g *bipartite.Graph, hdr SnapshotHeader, err error) {
	return decodeSnapshot(r, "stream")
}

// HasState reports whether dir holds any recoverable durable state — a
// snapshot, or a WAL segment with bytes in it. A follower uses it to decide
// between local recovery (resume) and a fresh bootstrap from the primary.
func HasState(dir string) bool {
	if len(listSnapshots(filepath.Join(dir, "snap"))) > 0 {
		return true
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "seg-*.wal"))
	if err != nil {
		return false
	}
	for _, p := range segs {
		if fi, err := os.Stat(p); err == nil && fi.Size() > 0 {
			return true
		}
	}
	return false
}
