package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ensemfdet/internal/bipartite"
)

// WAL record framing, little-endian:
//
//	uint32 payloadLen
//	uint32 crc32c(payload)
//	payload:
//	  uint64 version   graph version the batch committed as
//	  uint32 count     edges in the batch (pre-dedup)
//	  count × (uint32 u, uint32 v)
//
// Segments are named seg-<16-hex-digit index>.wal; the index only orders
// them. A segment is sealed by rotation (synced, then never written again),
// so only the final segment can legitimately end mid-record after a crash.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const walFrameBytes = 8 // length + checksum prefix

// walRecord is one decoded log record.
type walRecord struct {
	version uint64
	edges   []bipartite.Edge
}

func (r walRecord) frameSize() int64 { return walFrameBytes + 12 + 8*int64(len(r.edges)) }

// segMeta describes one on-disk segment.
type segMeta struct {
	index   uint64
	path    string
	bytes   int64
	maxVer  uint64 // highest record version in the segment (0 = none)
	records int
}

// wal is the segmented log writer. All mutating methods serialize on mu;
// concurrent stream appends therefore commit to the log one at a time, which
// is also what gives each record a well-defined position for truncation.
type wal struct {
	dir      string
	segBytes int64
	fsync    bool
	logf     func(string, ...any)

	mu     sync.Mutex
	sealed []segMeta
	active segMeta
	f      *os.File
	buf    []byte // record encode scratch

	// tainted is set when a record write or fsync fails: the active
	// segment's on-disk tail is then unknowable (a partial frame, or pages
	// the kernel dropped after a failed fsync), so no further record may
	// land after it — a later good record behind garbage would be
	// unreachable to the boot scan and silently lost. The taint clears only
	// by rotating to a fresh segment (the tainted one is sealed and, once a
	// snapshot covers it, deleted).
	tainted bool

	appendedRecords uint64
	appendedBytes   uint64
	fsyncs          uint64
}

func segPath(dir string, index uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%016x.wal", index))
}

// openWAL scans dir, truncating a torn tail in the final segment, and
// returns the writer positioned to append plus every surviving record (the
// store replays the ones past the snapshot watermark). torn reports whether
// a tail truncation happened.
func openWAL(dir string, segBytes int64, fsync bool, logf func(string, ...any)) (w *wal, records []walRecord, torn bool, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, false, fmt.Errorf("persist: creating WAL dir: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		return nil, nil, false, err
	}
	sort.Strings(names) // fixed-width hex index → lexicographic = numeric

	w = &wal{dir: dir, segBytes: segBytes, fsync: fsync, logf: logf}
	for i, name := range names {
		last := i == len(names)-1
		recs, meta, tornHere, err := scanSegment(name, last, logf)
		if err != nil {
			return nil, nil, false, err
		}
		torn = torn || tornHere
		records = append(records, recs...)
		if last {
			w.active = meta
		} else {
			w.sealed = append(w.sealed, meta)
		}
	}
	if len(names) == 0 {
		w.active = segMeta{index: 1, path: segPath(dir, 1)}
	}
	// Resume appending into the (possibly just-truncated) final segment.
	w.f, err = os.OpenFile(w.active.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, false, fmt.Errorf("persist: opening WAL segment: %w", err)
	}
	return w, records, torn, nil
}

// scanSegment decodes one segment. A record that is truncated, fails its
// checksum, or does not decode marks the segment torn from that offset: in
// the final segment the file is truncated there (crash mid-write — the batch
// was never acknowledged); in a sealed segment it is a hard error, since
// dropping it would lose acknowledged batches.
func scanSegment(path string, last bool, logf func(string, ...any)) ([]walRecord, segMeta, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, segMeta{}, false, fmt.Errorf("persist: reading WAL segment: %w", err)
	}
	meta := segMeta{path: path}
	meta.index, err = parseIndexedName(filepath.Base(path), "seg-", ".wal")
	if err != nil {
		return nil, segMeta{}, false, fmt.Errorf("persist: unparseable WAL segment name %q", filepath.Base(path))
	}

	var records []walRecord
	off := 0
	for off < len(data) {
		rec, n, ok := decodeRecord(data[off:])
		if !ok {
			break
		}
		records = append(records, rec)
		meta.records++
		if rec.version > meta.maxVer {
			meta.maxVer = rec.version
		}
		off += n
	}
	meta.bytes = int64(off)
	if off == len(data) {
		return records, meta, false, nil
	}
	if !last {
		return nil, segMeta{}, false, fmt.Errorf(
			"persist: WAL segment %s corrupt at offset %d: not the final segment, refusing to drop acknowledged records", path, off)
	}
	logf("persist: truncating torn WAL tail: %s at offset %d (%d bytes dropped; the interrupted batch was never acknowledged)",
		filepath.Base(path), off, len(data)-off)
	if err := os.Truncate(path, int64(off)); err != nil {
		return nil, segMeta{}, false, fmt.Errorf("persist: truncating torn WAL tail: %w", err)
	}
	return records, meta, true, nil
}

// decodeRecord parses one framed record from the head of data, reporting its
// total size. ok is false for a torn, checksum-failing, or malformed record.
func decodeRecord(data []byte) (walRecord, int, bool) {
	if len(data) < walFrameBytes {
		return walRecord{}, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data))
	sum := binary.LittleEndian.Uint32(data[4:])
	if n < 12 || (n-12)%8 != 0 || walFrameBytes+n > len(data) {
		return walRecord{}, 0, false
	}
	payload := data[walFrameBytes : walFrameBytes+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return walRecord{}, 0, false
	}
	rec := walRecord{version: binary.LittleEndian.Uint64(payload)}
	count := int(binary.LittleEndian.Uint32(payload[8:]))
	if 12+8*count != n || rec.version == 0 {
		return walRecord{}, 0, false
	}
	rec.edges = make([]bipartite.Edge, count)
	for i := range rec.edges {
		rec.edges[i] = bipartite.Edge{
			U: binary.LittleEndian.Uint32(payload[12+8*i:]),
			V: binary.LittleEndian.Uint32(payload[16+8*i:]),
		}
	}
	return rec, walFrameBytes + n, true
}

// append encodes and writes one record, rotating the segment first when it
// is full, and syncs according to policy. The returned size is the framed
// record's on-disk footprint.
func (w *wal) append(version uint64, edges []bipartite.Edge) (int64, error) {
	payloadLen := 12 + 8*len(edges)
	total := walFrameBytes + payloadLen

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("persist: WAL is closed")
	}
	if w.tainted {
		return 0, fmt.Errorf("persist: WAL segment tainted by an earlier write failure")
	}
	if w.active.bytes > 0 && w.active.bytes+int64(total) > w.segBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if cap(w.buf) < total {
		w.buf = make([]byte, total)
	}
	buf := w.buf[:total]
	binary.LittleEndian.PutUint32(buf, uint32(payloadLen))
	payload := buf[walFrameBytes:]
	binary.LittleEndian.PutUint64(payload, version)
	binary.LittleEndian.PutUint32(payload[8:], uint32(len(edges)))
	for i, e := range edges {
		binary.LittleEndian.PutUint32(payload[12+8*i:], e.U)
		binary.LittleEndian.PutUint32(payload[16+8*i:], e.V)
	}
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))

	if _, err := w.f.Write(buf); err != nil {
		w.tainted = true // a partial frame may be on disk
		return 0, fmt.Errorf("persist: WAL write: %w", err)
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			w.tainted = true // the kernel may have dropped the dirty pages
			return 0, fmt.Errorf("persist: WAL fsync: %w", err)
		}
		w.fsyncs++
	}
	w.active.bytes += int64(total)
	w.active.records++
	if version > w.active.maxVer {
		w.active.maxVer = version
	}
	w.appendedRecords++
	w.appendedBytes += uint64(total)
	return int64(total), nil
}

// rotateLocked seals the active segment (sync + close) and opens the next.
// The new segment is created first, so a failure anywhere leaves the old
// segment active and writable. Rotating is also how a tainted segment is
// retired: its sync failure is then tolerated, because every record that
// matters in it is (or will be, before the taint-clearing snapshot) covered
// elsewhere, and the segment is deleted at the next truncation.
func (w *wal) rotateLocked() error {
	next := segMeta{index: w.active.index + 1}
	next.path = segPath(w.dir, next.index)
	f, err := os.OpenFile(next.path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: opening WAL segment: %w", err)
	}
	if w.tainted {
		// Cut the unknowable tail (a partial frame, or a record whose fsync
		// failed) back to the last acknowledged record before sealing: a
		// sealed segment must always scan cleanly, or a crash before it is
		// deleted would refuse the next boot over garbage that no
		// acknowledged batch ever occupied.
		if err := os.Truncate(w.active.path, w.active.bytes); err != nil {
			f.Close()
			os.Remove(next.path)
			return fmt.Errorf("persist: truncating tainted WAL segment: %w", err)
		}
	}
	if err := w.f.Sync(); err != nil && !w.tainted {
		f.Close()
		os.Remove(next.path)
		return fmt.Errorf("persist: sealing WAL segment: %w", err)
	}
	if err := w.f.Close(); err != nil {
		w.logf("persist: closing sealed WAL segment %s: %v", filepath.Base(w.active.path), err)
	}
	w.sealed = append(w.sealed, w.active)
	w.f, w.active = f, next
	w.tainted = false
	return nil
}

// truncateTo seals the active segment (if it holds records) and deletes
// every sealed segment whose records are all at or below version — they are
// fully covered by the snapshot at that version. Segments containing any
// newer record are kept whole; replay skips their covered records instead.
func (w *wal) truncateTo(version uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("persist: WAL is closed")
	}
	if w.active.records > 0 || w.tainted {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	// Build the survivor list fresh — compacting w.sealed in place would
	// alias the backing array, and bailing out mid-loop on a remove error
	// would leave duplicated/stale metadata behind. A segment whose removal
	// fails stays listed so the next truncation retries it; one already
	// gone from disk counts as removed.
	kept := make([]segMeta, 0, len(w.sealed))
	var firstErr error
	for _, seg := range w.sealed {
		if seg.maxVer <= version {
			if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
				if firstErr == nil {
					firstErr = fmt.Errorf("persist: removing covered WAL segment: %w", err)
				}
				kept = append(kept, seg)
			}
			continue
		}
		kept = append(kept, seg)
	}
	w.sealed = kept
	if firstErr != nil {
		return firstErr
	}
	return syncDir(w.dir)
}

// sync flushes the active segment to disk regardless of policy.
func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("persist: WAL fsync: %w", err)
	}
	w.fsyncs++
	return nil
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// diskStats reports segment count and total on-disk bytes.
func (w *wal) diskStats() (segments int, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, seg := range w.sealed {
		bytes += seg.bytes
	}
	return len(w.sealed) + 1, bytes + w.active.bytes
}

func (w *wal) counters() (records, appended, fsyncs uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendedRecords, w.appendedBytes, w.fsyncs
}

// parseIndexedName extracts the 16-hex-digit index from names shaped like
// <prefix><index><suffix>.
func parseIndexedName(name, prefix, suffix string) (uint64, error) {
	hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(hex) != 16 || hex == name {
		return 0, fmt.Errorf("persist: name %q does not match %s<16 hex>%s", name, prefix, suffix)
	}
	return strconv.ParseUint(hex, 16, 64)
}

// syncDir fsyncs a directory so renames and removals within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
