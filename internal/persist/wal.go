package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/stream"
)

// WAL on-disk layout, little-endian.
//
// Format v2 segments open with an 8-byte magic ("EFDWAL2\0"); v1 segments
// (written before windowing) have no header and start directly with a
// record. The scanner format-detects per segment, so a directory may mix v1
// and v2 segments freely — recovery replays both — while every segment
// written by this version (including compaction rewrites) is v2.
//
// v1 record framing:
//
//	uint32 payloadLen
//	uint32 crc32c(payload)
//	payload:
//	  uint64 version   graph version the batch committed as
//	  uint32 count     edges in the batch (pre-dedup)
//	  count × (uint32 u, uint32 v)
//
// v2 record framing (same frame, payload gains a kind; tombstones also
// carry the window watermark their retire pass reached, so replay restores
// expiry progress exactly; epoch fences carry the failover term that began
// at their version):
//
//	uint32 payloadLen
//	uint32 crc32c(payload)
//	payload:
//	  uint64 version
//	  uint32 kind      1 = edge batch, 2 = tombstone, 3 = epoch fence
//	  uint32 count     (0 for kind 3)
//	  [kind 2 only] uint64 watermark version, int64 watermark wall (unix ns)
//	  [kind 3 only] uint64 epoch
//	  count × (uint32 u, uint32 v)
//
// v2 segments written before failover existed simply contain no kind-3
// records; they decode unchanged ("v2-no-epoch" compatibility).
//
// Segments are named seg-<16-hex-digit index>.wal; the index only orders
// them. A segment is sealed by rotation (synced, then never written again),
// so only the final segment can legitimately end mid-record after a crash.
// A resumed v1 final segment is sealed immediately at open and a fresh v2
// segment becomes active, so records of both formats never share a file.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var walMagic = [8]byte{'E', 'F', 'D', 'W', 'A', 'L', '2', 0}

const walFrameBytes = 8 // length + checksum prefix

// Record kinds of the v2 format. v1 records decode as recEdges.
const (
	recEdges      = uint32(1)
	recTombstone  = uint32(2)
	recEpochFence = uint32(3)
)

// walRecord is one decoded log record.
type walRecord struct {
	version uint64
	kind    uint32
	mark    stream.WindowMark // tombstones only
	epoch   uint64            // epoch fences only
	edges   []bipartite.Edge
	size    int64 // on-disk framed size, format-dependent
}

func (r walRecord) frameSize() int64 { return r.size }

// segMeta describes one on-disk segment.
type segMeta struct {
	index   uint64
	path    string
	bytes   int64
	minVer  uint64 // lowest record version in the segment (0 = none)
	maxVer  uint64 // highest record version in the segment (0 = none)
	records int
	v1      bool // legacy headerless format
}

func (m *segMeta) note(version uint64) {
	if m.records == 0 || version < m.minVer {
		m.minVer = version
	}
	if version > m.maxVer {
		m.maxVer = version
	}
	m.records++
}

// wal is the segmented log writer. All mutating methods serialize on mu;
// concurrent stream appends therefore commit to the log one at a time, which
// is also what gives each record a well-defined position for truncation.
type wal struct {
	dir      string
	segBytes int64
	fsync    bool
	logf     func(string, ...any)
	inject   func(string) error // fault-injection hook; nil in production

	mu     sync.Mutex
	sealed []segMeta
	active segMeta
	f      *os.File
	buf    []byte // record encode scratch

	// floor is the truncation watermark: records at or below it may have
	// been deleted or compacted away, so a replication tail may only start
	// at or above it (TailSince returns ErrTailGone below). It rises when a
	// snapshot truncates the log, and recovery seeds it with the recovered
	// snapshot's version — the log is never guaranteed to reach further
	// back than that.
	floor uint64

	// tainted is set when a record write or fsync fails: the active
	// segment's on-disk tail is then unknowable (a partial frame, or pages
	// the kernel dropped after a failed fsync), so no further record may
	// land after it — a later good record behind garbage would be
	// unreachable to the boot scan and silently lost. The taint clears only
	// by rotating to a fresh segment (the tainted one is sealed and, once a
	// snapshot covers it, deleted).
	tainted bool

	appendedRecords  uint64
	appendedBytes    uint64
	tombstoneRecords uint64
	fsyncs           uint64
	compactions      uint64
	compactedBytes   uint64 // bytes reclaimed by segment compaction
}

func segPath(dir string, index uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%016x.wal", index))
}

// openWAL scans dir, truncating a torn tail in the final segment, and
// returns the writer positioned to append plus every surviving record (the
// store replays the ones past the snapshot watermark). torn reports whether
// a tail truncation happened. Leftover compaction temporaries are removed.
func openWAL(dir string, segBytes int64, fsync bool, logf func(string, ...any), inject func(string) error) (w *wal, records []walRecord, torn bool, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, false, fmt.Errorf("persist: creating WAL dir: %w", err)
	}
	if tmps, err := filepath.Glob(filepath.Join(dir, "seg-*.wal.tmp")); err == nil {
		for _, tmp := range tmps {
			//ensemfdet:durability-ok compaction temporaries a crash left behind; the original segment is intact
			os.Remove(tmp)
		}
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		return nil, nil, false, err
	}
	sort.Strings(names) // fixed-width hex index → lexicographic = numeric

	w = &wal{dir: dir, segBytes: segBytes, fsync: fsync, logf: logf, inject: inject}
	for i, name := range names {
		last := i == len(names)-1
		recs, meta, tornHere, err := scanSegment(name, last, logf)
		if err != nil {
			return nil, nil, false, err
		}
		torn = torn || tornHere
		records = append(records, recs...)
		if last {
			w.active = meta
		} else {
			w.sealed = append(w.sealed, meta)
		}
	}
	if len(names) == 0 {
		w.active = segMeta{index: 1, path: segPath(dir, 1)}
	}
	if w.active.v1 && w.active.bytes > 0 {
		// Never append v2 records into a legacy segment: seal it as-is (its
		// torn tail, if any, was just truncated) and start a fresh v2
		// segment, so each file holds exactly one format.
		w.sealed = append(w.sealed, w.active)
		w.active = segMeta{index: w.active.index + 1, path: segPath(dir, w.active.index+1)}
	}
	// Resume appending into the (possibly just-truncated) final segment.
	w.f, err = os.OpenFile(w.active.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, false, fmt.Errorf("persist: opening WAL segment: %w", err)
	}
	return w, records, torn, nil
}

// scanSegment decodes one segment, detecting its format from the leading
// magic. A record that is truncated, fails its checksum, or does not decode
// marks the segment torn from that offset: in the final segment the file is
// truncated there (crash mid-write — the batch was never acknowledged); in a
// sealed segment it is a hard error, since dropping it would lose
// acknowledged batches.
func scanSegment(path string, last bool, logf func(string, ...any)) ([]walRecord, segMeta, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, segMeta{}, false, fmt.Errorf("persist: reading WAL segment: %w", err)
	}
	meta := segMeta{path: path}
	meta.index, err = parseIndexedName(filepath.Base(path), "seg-", ".wal")
	if err != nil {
		return nil, segMeta{}, false, fmt.Errorf("persist: unparseable WAL segment name %q", filepath.Base(path))
	}

	off := 0
	decode := decodeRecordV2
	if len(data) >= len(walMagic) && [8]byte(data[:8]) == walMagic {
		off = len(walMagic)
	} else {
		// No magic: a legacy v1 segment, or a fresh/torn-at-the-header v2
		// file. Both scan with the v1 decoder (which finds no records in the
		// latter) and are treated as v1 — openWAL then retires a non-empty
		// one instead of appending to it.
		meta.v1 = true
		decode = decodeRecordV1
	}

	var records []walRecord
	for off < len(data) {
		rec, n, ok := decode(data[off:])
		if !ok {
			break
		}
		records = append(records, rec)
		meta.note(rec.version)
		off += n
	}
	meta.bytes = int64(off)
	if off == len(data) {
		return records, meta, false, nil
	}
	if !last {
		return nil, segMeta{}, false, fmt.Errorf(
			"persist: WAL segment %s corrupt at offset %d: not the final segment, refusing to drop acknowledged records", path, off)
	}
	logf("persist: truncating torn WAL tail: %s at offset %d (%d bytes dropped; the interrupted batch was never acknowledged)",
		filepath.Base(path), off, len(data)-off)
	//ensemfdet:durability-ok cuts only the torn tail past the last acknowledged record
	if err := os.Truncate(path, int64(off)); err != nil {
		return nil, segMeta{}, false, fmt.Errorf("persist: truncating torn WAL tail: %w", err)
	}
	return records, meta, true, nil
}

// decodeRecordV1 parses one legacy framed record (edge batches only) from
// the head of data, reporting its total size. ok is false for a torn,
// checksum-failing, or malformed record.
func decodeRecordV1(data []byte) (walRecord, int, bool) {
	if len(data) < walFrameBytes {
		return walRecord{}, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data))
	sum := binary.LittleEndian.Uint32(data[4:])
	if n < 12 || (n-12)%8 != 0 || walFrameBytes+n > len(data) {
		return walRecord{}, 0, false
	}
	payload := data[walFrameBytes : walFrameBytes+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return walRecord{}, 0, false
	}
	rec := walRecord{version: binary.LittleEndian.Uint64(payload), kind: recEdges}
	count := int(binary.LittleEndian.Uint32(payload[8:]))
	if 12+8*count != n || rec.version == 0 {
		return walRecord{}, 0, false
	}
	rec.edges = decodeEdges(payload[12:], count)
	rec.size = int64(walFrameBytes + n)
	return rec, walFrameBytes + n, true
}

// decodeRecordV2 parses one v2 framed record (edge batch or tombstone).
func decodeRecordV2(data []byte) (walRecord, int, bool) {
	if len(data) < walFrameBytes {
		return walRecord{}, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data))
	sum := binary.LittleEndian.Uint32(data[4:])
	if n < 16 || walFrameBytes+n > len(data) {
		return walRecord{}, 0, false
	}
	payload := data[walFrameBytes : walFrameBytes+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return walRecord{}, 0, false
	}
	rec := walRecord{
		version: binary.LittleEndian.Uint64(payload),
		kind:    binary.LittleEndian.Uint32(payload[8:]),
	}
	count := int(binary.LittleEndian.Uint32(payload[12:]))
	body := 16
	switch rec.kind {
	case recEdges:
	case recTombstone:
		if n < 32 {
			return walRecord{}, 0, false
		}
		rec.mark.Version = binary.LittleEndian.Uint64(payload[16:])
		rec.mark.Wall = int64(binary.LittleEndian.Uint64(payload[24:]))
		body = 32
	case recEpochFence:
		// A fence never carries edges; a non-zero count is malformed.
		if n < 24 || count != 0 {
			return walRecord{}, 0, false
		}
		rec.epoch = binary.LittleEndian.Uint64(payload[16:])
		body = 24
	default:
		return walRecord{}, 0, false
	}
	if body+8*count != n || rec.version == 0 {
		return walRecord{}, 0, false
	}
	rec.edges = decodeEdges(payload[body:], count)
	rec.size = int64(walFrameBytes + n)
	return rec, walFrameBytes + n, true
}

func decodeEdges(data []byte, count int) []bipartite.Edge {
	edges := make([]bipartite.Edge, count)
	for i := range edges {
		edges[i] = bipartite.Edge{
			U: binary.LittleEndian.Uint32(data[8*i:]),
			V: binary.LittleEndian.Uint32(data[8*i+4:]),
		}
	}
	return edges
}

// encodeRecord frames one v2 record into buf (grown as needed), returning
// the framed bytes. Tombstones carry the watermark, and epoch fences the
// epoch, after the version/kind prefix.
func encodeRecord(buf *[]byte, r walRecord) []byte {
	body := 16
	switch r.kind {
	case recTombstone:
		body = 32
	case recEpochFence:
		body = 24
	}
	payloadLen := body + 8*len(r.edges)
	total := walFrameBytes + payloadLen
	if cap(*buf) < total {
		*buf = make([]byte, total)
	}
	b := (*buf)[:total]
	binary.LittleEndian.PutUint32(b, uint32(payloadLen))
	payload := b[walFrameBytes:]
	binary.LittleEndian.PutUint64(payload, r.version)
	binary.LittleEndian.PutUint32(payload[8:], r.kind)
	binary.LittleEndian.PutUint32(payload[12:], uint32(len(r.edges)))
	switch r.kind {
	case recTombstone:
		binary.LittleEndian.PutUint64(payload[16:], r.mark.Version)
		binary.LittleEndian.PutUint64(payload[24:], uint64(r.mark.Wall))
	case recEpochFence:
		binary.LittleEndian.PutUint64(payload[16:], r.epoch)
	}
	for i, e := range r.edges {
		binary.LittleEndian.PutUint32(payload[body+8*i:], e.U)
		binary.LittleEndian.PutUint32(payload[body+8*i+4:], e.V)
	}
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(payload, castagnoli))
	return b
}

// append encodes and writes one record, rotating the segment first when it
// is full, and syncs according to policy. A fresh segment gets its format
// header before the first record. The returned size is the framed record's
// on-disk footprint (header bytes excluded).
func (w *wal) append(rec walRecord) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("persist: WAL is closed")
	}
	if w.tainted {
		return 0, fmt.Errorf("persist: WAL segment tainted by an earlier write failure")
	}
	buf := encodeRecord(&w.buf, rec)
	w.buf = buf
	if w.active.bytes > 0 && w.active.bytes+int64(len(buf)) > w.segBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if w.active.bytes == 0 {
		if _, err := w.f.Write(walMagic[:]); err != nil {
			w.tainted = true
			return 0, fmt.Errorf("persist: WAL header write: %w", err)
		}
		w.active.bytes = int64(len(walMagic))
	}

	if w.inject != nil {
		if err := w.inject("wal.write"); err != nil {
			w.tainted = true // simulate a partial frame on disk
			return 0, fmt.Errorf("persist: WAL write: %w", err)
		}
	}
	if _, err := w.f.Write(buf); err != nil {
		w.tainted = true // a partial frame may be on disk
		return 0, fmt.Errorf("persist: WAL write: %w", err)
	}
	if w.fsync {
		if w.inject != nil {
			if err := w.inject("wal.fsync"); err != nil {
				w.tainted = true
				return 0, fmt.Errorf("persist: WAL fsync: %w", err)
			}
		}
		if err := w.f.Sync(); err != nil {
			w.tainted = true // the kernel may have dropped the dirty pages
			return 0, fmt.Errorf("persist: WAL fsync: %w", err)
		}
		w.fsyncs++
	}
	w.active.bytes += int64(len(buf))
	w.active.note(rec.version)
	w.appendedRecords++
	w.appendedBytes += uint64(len(buf))
	if rec.kind == recTombstone {
		w.tombstoneRecords++
	}
	return int64(len(buf)), nil
}

// rotateLocked seals the active segment (sync + close) and opens the next.
// The new segment is created first, so a failure anywhere leaves the old
// segment active and writable. Rotating is also how a tainted segment is
// retired: its sync failure is then tolerated, because every record that
// matters in it is (or will be, before the taint-clearing snapshot) covered
// elsewhere, and the segment is deleted at the next truncation.
//
//ensemfdet:durability-ok taint truncation cuts only unacknowledged bytes, and the removals undo a next-segment create that never took effect
func (w *wal) rotateLocked() error {
	next := segMeta{index: w.active.index + 1}
	next.path = segPath(w.dir, next.index)
	f, err := os.OpenFile(next.path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: opening WAL segment: %w", err)
	}
	if w.tainted {
		// Cut the unknowable tail (a partial frame, or a record whose fsync
		// failed) back to the last acknowledged record before sealing: a
		// sealed segment must always scan cleanly, or a crash before it is
		// deleted would refuse the next boot over garbage that no
		// acknowledged batch ever occupied.
		if err := os.Truncate(w.active.path, w.active.bytes); err != nil {
			f.Close()
			os.Remove(next.path)
			return fmt.Errorf("persist: truncating tainted WAL segment: %w", err)
		}
	}
	if err := w.f.Sync(); err != nil && !w.tainted {
		f.Close()
		os.Remove(next.path)
		return fmt.Errorf("persist: sealing WAL segment: %w", err)
	}
	if err := w.f.Close(); err != nil {
		w.logf("persist: closing sealed WAL segment %s: %v", filepath.Base(w.active.path), err)
	}
	w.sealed = append(w.sealed, w.active)
	w.f, w.active = f, next
	w.tainted = false
	return nil
}

// truncateTo seals the active segment (if it holds records) and trims the
// log to the snapshot at the given version: sealed segments whose records
// are all at or below it are deleted outright, and surviving sealed
// segments that straddle the watermark are compacted — rewritten in place
// (tmp + rename) dropping the covered records, so a segment pinned by one
// fresh record no longer drags megabytes of snapshotted history behind it.
func (w *wal) truncateTo(version uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("persist: WAL is closed")
	}
	// Raise the tail floor before touching any file: a replication tail
	// that would need records this call is about to delete must see the
	// floor first (both run under mu, so at worst it gets ErrTailGone a
	// moment early — never a silent version hole).
	if version > w.floor {
		w.floor = version
	}
	if w.active.records > 0 || w.tainted {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	// Build the survivor list fresh — compacting w.sealed in place would
	// alias the backing array, and bailing out mid-loop on a remove error
	// would leave duplicated/stale metadata behind. A segment whose removal
	// fails stays listed so the next truncation retries it; one already
	// gone from disk counts as removed. Compaction failures likewise keep
	// the original segment, whole and listed.
	kept := make([]segMeta, 0, len(w.sealed))
	var firstErr error
	for _, seg := range w.sealed {
		if seg.maxVer <= version {
			//ensemfdet:durability-ok every record in this segment is covered by the fsynced snapshot at or above version
			if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
				if firstErr == nil {
					firstErr = fmt.Errorf("persist: removing covered WAL segment: %w", err)
				}
				kept = append(kept, seg)
			}
			continue
		}
		if seg.records > 0 && seg.minVer <= version {
			if err := w.compactSegmentLocked(&seg, version); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("persist: compacting WAL segment: %w", err)
				}
			}
		}
		kept = append(kept, seg)
	}
	w.sealed = kept
	if firstErr != nil {
		return firstErr
	}
	return syncDir(w.dir)
}

// compactSegmentLocked rewrites one sealed segment keeping only records
// above version, updating *seg to describe the rewritten file. The rewrite
// is crash-safe: the survivors are written to a .tmp sibling, synced, and
// renamed over the original — a crash leaves either the whole old segment or
// the compacted one, both of which scan cleanly and replay identically
// (covered records are skipped by replay anyway). The output is always
// format v2, which is how legacy v1 segments age out of a mixed directory.
func (w *wal) compactSegmentLocked(seg *segMeta, version uint64) error {
	recs, _, _, err := scanSegment(seg.path, false, w.logf)
	if err != nil {
		return err
	}
	tmp := seg.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after the rename succeeds

	next := segMeta{index: seg.index, path: seg.path}
	_, err = f.Write(walMagic[:])
	next.bytes = int64(len(walMagic))
	if err == nil {
		for _, r := range recs {
			if r.version <= version {
				continue
			}
			buf := encodeRecord(&w.buf, r)
			w.buf = buf
			if _, err = f.Write(buf); err != nil {
				break
			}
			next.bytes += int64(len(buf))
			next.note(r.version)
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	//ensemfdet:durability-ok the caller (truncateTo) dir-fsyncs once after the whole compaction batch
	if err := os.Rename(tmp, seg.path); err != nil {
		return err
	}
	w.compactions++
	if seg.bytes > next.bytes {
		w.compactedBytes += uint64(seg.bytes - next.bytes)
	}
	*seg = next
	return nil
}

// reset discards the entire log — every sealed segment and the active one —
// and starts a fresh empty segment at the next index, clearing taint and the
// floor. It is the epoch-boundary rewind primitive: after a follower's graph
// has been forced onto a new primary's history, records of the abandoned
// timeline must not survive to replay on the next boot.
func (w *wal) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("persist: WAL is closed")
	}
	next := segMeta{index: w.active.index + 1}
	next.path = segPath(w.dir, next.index)
	f, err := os.OpenFile(next.path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: opening WAL segment: %w", err)
	}
	w.f.Close() // the old active segment is about to be deleted; errors moot
	old := append(append([]segMeta(nil), w.sealed...), w.active)
	w.f, w.active = f, next
	w.sealed = nil
	w.tainted = false
	w.floor = 0
	var firstErr error
	for _, seg := range old {
		//ensemfdet:durability-ok epoch rewind: the abandoned timeline must not survive to replay
		if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) && firstErr == nil {
			firstErr = fmt.Errorf("persist: removing WAL segment: %w", err)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return syncDir(w.dir)
}

// setFloor raises the tail floor to at least v (recovery seeds it with the
// recovered snapshot's version; see the field comment).
func (w *wal) setFloor(v uint64) {
	w.mu.Lock()
	if v > w.floor {
		w.floor = v
	}
	w.mu.Unlock()
}

// sync flushes the active segment to disk regardless of policy.
func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("persist: WAL fsync: %w", err)
	}
	w.fsyncs++
	return nil
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// diskStats reports segment count and total on-disk bytes.
func (w *wal) diskStats() (segments int, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, seg := range w.sealed {
		bytes += seg.bytes
	}
	return len(w.sealed) + 1, bytes + w.active.bytes
}

func (w *wal) counters() (records, appended, tombstones, fsyncs, compactions, compacted uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendedRecords, w.appendedBytes, w.tombstoneRecords, w.fsyncs, w.compactions, w.compactedBytes
}

// parseIndexedName extracts the 16-hex-digit index from names shaped like
// <prefix><index><suffix>.
func parseIndexedName(name, prefix, suffix string) (uint64, error) {
	hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(hex) != 16 || hex == name {
		return 0, fmt.Errorf("persist: name %q does not match %s<16 hex>%s", name, prefix, suffix)
	}
	return strconv.ParseUint(hex, 16, 64)
}

// syncDir fsyncs a directory so renames and removals within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
