package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/stream"
)

// --- legacy-format fixtures -------------------------------------------------

// v1Record frames one legacy (headerless, kind-less) WAL record.
func v1Record(version uint64, edges []bipartite.Edge) []byte {
	payload := make([]byte, 12+8*len(edges))
	binary.LittleEndian.PutUint64(payload, version)
	binary.LittleEndian.PutUint32(payload[8:], uint32(len(edges)))
	for i, e := range edges {
		binary.LittleEndian.PutUint32(payload[12+8*i:], e.U)
		binary.LittleEndian.PutUint32(payload[16+8*i:], e.V)
	}
	out := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}

// writeV1Snapshot writes a format-1 snapshot file exactly as the
// pre-windowing code laid it out: 20-byte header (magic, format, graph
// version), header CRC, CSR blob.
func writeV1Snapshot(t *testing.T, dir string, g *bipartite.Graph, version uint64) {
	t.Helper()
	var buf bytes.Buffer
	var hdr [20]byte
	copy(hdr[:8], snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], snapFormatV1)
	binary.LittleEndian.PutUint64(hdr[12:], version)
	buf.Write(hdr[:])
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(hdr[:], castagnoli))
	buf.Write(crc[:])
	if err := bipartite.WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath(dir, version), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// --- tests ------------------------------------------------------------------

// TestWindowedCrashRecoveryByteIdentical is the windowed acceptance pin: a
// run that interleaves durable appends with retire passes (tombstones in the
// WAL) and then crashes must recover — into any shard count — to the same
// version, the same window watermark, a byte-identical CSR and
// byte-identical votes. In particular no expired edge may resurrect.
func TestWindowedCrashRecoveryByteIdentical(t *testing.T) {
	batches := randomBatches(41, 14, 30)
	dir := t.TempDir()

	st, g, _ := openDurable(t, dir, 4, Options{Fsync: FsyncAlways})
	g.SetWindow(stream.WindowPolicy{MaxVersions: 5})
	for i, b := range batches {
		if res := g.Append(b); res.Err != nil {
			t.Fatalf("batch %d: %v", i, res.Err)
		}
		if i%3 == 2 {
			if res := g.Retire(time.Now()); res.Err != nil {
				t.Fatalf("retire %d: %v", i, res.Err)
			}
		}
		if i == 7 {
			if err := st.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if g.WindowStats().RetiredEdges == 0 {
		t.Fatal("test setup never retired anything")
	}
	liveSnap, _ := g.Snapshot()
	// Pick a genuinely expired edge — in an early batch, absent live — to
	// probe for resurrection and post-recovery re-ingest.
	var retired bipartite.Edge
	haveRetired := false
	for _, e := range batches[0] {
		if !liveSnap.HasEdge(e.U, e.V) {
			retired, haveRetired = e, true
			break
		}
	}
	if !haveRetired {
		t.Fatal("no expired edge found to probe")
	}
	liveVersion := g.Version()
	liveMark := g.WindowStats().Mark
	liveVotes := votes(t, liveSnap)
	// Crash: no Close, no final snapshot. Recover each shard count from a
	// pristine copy of the crashed directory.

	for _, shards := range []int{1, 4, 16} {
		cp := t.TempDir()
		copyTree(t, dir, cp)
		st2, g2, rec := openDurable(t, cp, shards, Options{Fsync: FsyncAlways})
		if g2.Version() != liveVersion {
			t.Fatalf("shards=%d: recovered version %d, want %d", shards, g2.Version(), liveVersion)
		}
		if rec.ReplayedTombstones == 0 {
			t.Fatalf("shards=%d: recovery replayed no tombstones: %+v", shards, rec)
		}
		if got := g2.WindowStats().Mark; got != liveMark {
			t.Fatalf("shards=%d: recovered watermark %+v, want %+v", shards, got, liveMark)
		}
		gotSnap, _ := g2.Snapshot()
		if gotSnap.HasEdge(retired.U, retired.V) {
			t.Fatalf("shards=%d: recovery resurrected expired edge %v", shards, retired)
		}
		if !bytes.Equal(csrBytes(t, gotSnap), csrBytes(t, liveSnap)) {
			t.Fatalf("shards=%d: recovered CSR not byte-identical to the crashed run", shards)
		}
		if !reflect.DeepEqual(votes(t, gotSnap), liveVotes) {
			t.Fatalf("shards=%d: recovered votes differ", shards)
		}
		// A retired edge must be re-ingestable after recovery too.
		if res := g2.Append([]bipartite.Edge{retired}); res.Added != 1 || res.Err != nil {
			t.Fatalf("shards=%d: re-ingest of expired edge after recovery: %+v", shards, res)
		}
		st2.Close()
	}
}

// copyTree duplicates a data directory for repeated recovery experiments.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMixedV1V2Recovery boots from a hand-crafted legacy state — a format-1
// snapshot plus headerless v1 WAL segments — layers windowed v2 traffic
// (appends and tombstones) on top, crashes, and requires recovery across
// shard counts {1, 4, 16} to reproduce the crashed run's CSR and votes
// byte-for-byte. This is the upgrade path: a daemon restarted onto the new
// binary with old data on disk.
func TestMixedV1V2Recovery(t *testing.T) {
	seedDir := t.TempDir()

	// Legacy state: snapshot at version 3 over batches 0..2, v1 segments
	// carrying versions 4 and 5.
	batches := randomBatches(77, 8, 25)
	base := stream.NewSharded(1)
	base.Append(batches[0])
	base.Append(batches[1])
	base.Append(batches[2])
	baseSnap, baseVer := base.Snapshot()
	if baseVer != 3 {
		t.Fatalf("setup: base version %d", baseVer)
	}
	writeV1Snapshot(t, filepath.Join(seedDir, "snap"), baseSnap, baseVer)
	walDir := filepath.Join(seedDir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		t.Fatal(err)
	}
	seg1 := v1Record(4, batches[3])
	if err := os.WriteFile(segPath(walDir, 1), seg1, 0o644); err != nil {
		t.Fatal(err)
	}
	seg2 := v1Record(5, batches[4])
	if err := os.WriteFile(segPath(walDir, 2), seg2, 0o644); err != nil {
		t.Fatal(err)
	}

	// Boot the legacy directory, then run windowed v2 traffic on top.
	st, g, rec := openDurable(t, seedDir, 4, Options{Fsync: FsyncAlways})
	if rec.SnapshotVersion != 3 || rec.ReplayedRecords != 2 {
		t.Fatalf("legacy boot: %+v", rec)
	}
	g.SetWindow(stream.WindowPolicy{MaxVersions: 4})
	for i := 5; i < 8; i++ {
		if res := g.Append(batches[i]); res.Err != nil {
			t.Fatal(res.Err)
		}
		if res := g.Retire(time.Now()); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if g.WindowStats().RetiredEdges == 0 {
		t.Fatal("setup: window never retired")
	}
	liveSnap, liveVer := g.Snapshot()
	liveVotes := votes(t, liveSnap)
	_ = st // crash: no Close

	for _, shards := range []int{1, 4, 16} {
		cp := t.TempDir()
		copyTree(t, seedDir, cp)
		st2, g2, rec2 := openDurable(t, cp, shards, Options{Fsync: FsyncAlways})
		if g2.Version() != liveVer {
			t.Fatalf("shards=%d: version %d, want %d", shards, g2.Version(), liveVer)
		}
		if rec2.ReplayedTombstones == 0 {
			t.Fatalf("shards=%d: no tombstones replayed: %+v", shards, rec2)
		}
		gotSnap, _ := g2.Snapshot()
		if !bytes.Equal(csrBytes(t, gotSnap), csrBytes(t, liveSnap)) {
			t.Fatalf("shards=%d: mixed v1/v2 recovery diverged from the live run", shards)
		}
		if !reflect.DeepEqual(votes(t, gotSnap), liveVotes) {
			t.Fatalf("shards=%d: votes diverged", shards)
		}
		st2.Close()
	}
}

// TestCrashBetweenRetireJournalAndSnapshot is the satellite regression for
// the retire/commit interaction: a tombstone lands in the WAL, the process
// dies before any snapshot covers it, and recovery must replay the
// retirement (pinned to its original version by AdvanceVersionTo) rather
// than resurrect the edges. The second phase checks the opposite ordering:
// once a snapshot covers the tombstone, replay skips it.
func TestCrashBetweenRetireJournalAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	_, g, _ := openDurable(t, dir, 4, Options{Fsync: FsyncAlways})
	g.SetWindow(stream.WindowPolicy{MaxVersions: 1})

	g.Append([]bipartite.Edge{{U: 0, V: 0}, {U: 1, V: 1}}) // v1
	g.AppendEdge(2, 2)                                     // v2
	res := g.Retire(time.Now())                            // v3: tombstone for v1's edges
	if res.Removed != 2 || res.Err != nil {
		t.Fatalf("retire: %+v", res)
	}
	liveVer := g.Version()
	liveSnap, _ := g.Snapshot()
	// Crash with no snapshot at all: the WAL alone carries appends + tombstone.

	cp := t.TempDir()
	copyTree(t, dir, cp)
	st2, g2, rec := openDurable(t, cp, 4, Options{Fsync: FsyncAlways})
	if rec.SnapshotVersion != 0 || rec.ReplayedTombstones != 1 {
		t.Fatalf("WAL-only windowed recovery: %+v", rec)
	}
	if g2.Version() != liveVer {
		t.Fatalf("version %d, want %d (tombstone replay must pin its version)", g2.Version(), liveVer)
	}
	gotSnap, _ := g2.Snapshot()
	if !bytes.Equal(csrBytes(t, gotSnap), csrBytes(t, liveSnap)) {
		t.Fatal("recovered CSR diverged")
	}
	if gotSnap.HasEdge(0, 0) || gotSnap.HasEdge(1, 1) {
		t.Fatal("crash between retire-journal and snapshot resurrected retired edges")
	}

	// Phase 2: snapshot now covers the tombstone; a reboot must skip it.
	if err := st2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	g2.AppendEdge(7, 7)
	liveVer2 := g2.Version()
	liveSnap2, _ := g2.Snapshot()

	cp2 := t.TempDir()
	copyTree(t, cp, cp2)
	_, g3, rec3 := openDurable(t, cp2, 4, Options{Fsync: FsyncAlways})
	if rec3.ReplayedTombstones != 0 {
		t.Fatalf("covered tombstone was replayed: %+v", rec3)
	}
	if g3.Version() != liveVer2 {
		t.Fatalf("version %d, want %d", g3.Version(), liveVer2)
	}
	got3, _ := g3.Snapshot()
	if !bytes.Equal(csrBytes(t, got3), csrBytes(t, liveSnap2)) {
		t.Fatal("post-snapshot recovery diverged")
	}
}

// TestSnapshotPersistsWindowMark pins the snapshot-side watermark: a durable
// snapshot written after retirement carries the mark, and recovery adopts it.
func TestSnapshotPersistsWindowMark(t *testing.T) {
	dir := t.TempDir()
	st, g, _ := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	g.SetWindow(stream.WindowPolicy{MaxVersions: 2})
	for i := 0; i < 6; i++ {
		g.AppendEdge(uint32(i), uint32(i))
	}
	if res := g.Retire(time.Now()); res.Removed == 0 || res.Err != nil {
		t.Fatalf("retire: %+v", res)
	}
	wantMark := g.WindowStats().Mark
	if wantMark.Version == 0 {
		t.Fatal("setup: zero watermark")
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, g2, rec := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	if rec.WindowMark != wantMark {
		t.Fatalf("recovered mark %+v, want %+v", rec.WindowMark, wantMark)
	}
	if got := g2.WindowStats().Mark; got != wantMark {
		t.Fatalf("graph mark %+v, want %+v", got, wantMark)
	}
}

// TestWALCompactionDropsCoveredRecords pins the log-compaction satellite: a
// sealed segment straddling the snapshot watermark is rewritten without the
// covered records — instead of surviving whole — and the rewrite still
// replays the uncovered tail. A legacy v1 segment compacts the same way
// (and comes out v2).
func TestWALCompactionDropsCoveredRecords(t *testing.T) {
	t.Run("v2", func(t *testing.T) {
		dir := t.TempDir()
		w, _, _, err := openWAL(dir, 1<<20, true, testLogf(t), nil)
		if err != nil {
			t.Fatal(err)
		}
		for v := uint64(1); v <= 5; v++ {
			if _, err := w.append(walRecord{kind: recEdges, version: v, edges: edgesN(int(v)*10, 4)}); err != nil {
				t.Fatal(err)
			}
		}
		// One segment holds 1..5; truncating to 3 seals it and must compact
		// it down to records 4 and 5.
		preBytes := fileSize(t, segPath(dir, 1))
		if err := w.truncateTo(3); err != nil {
			t.Fatal(err)
		}
		_, _, _, fsyncs, compactions, reclaimed := w.counters()
		_ = fsyncs
		if compactions != 1 || reclaimed == 0 {
			t.Fatalf("compactions=%d reclaimed=%d, want one compaction reclaiming bytes", compactions, reclaimed)
		}
		if post := fileSize(t, segPath(dir, 1)); post >= preBytes {
			t.Fatalf("segment did not shrink: %d -> %d bytes", preBytes, post)
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		_, recs, torn, err := openWAL(dir, 1<<20, true, testLogf(t), nil)
		if err != nil || torn {
			t.Fatalf("reopen after compaction: torn=%v err=%v", torn, err)
		}
		got := map[uint64]int{}
		for _, r := range recs {
			got[r.version] = len(r.edges)
		}
		if len(got) != 2 || got[4] != 4 || got[5] != 4 {
			t.Fatalf("post-compaction records = %v, want versions 4 and 5 intact", got)
		}
	})

	t.Run("v1 segment", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		seg := append(v1Record(1, edgesN(0, 3)), v1Record(2, edgesN(10, 3))...)
		seg = append(seg, v1Record(3, edgesN(20, 3))...)
		if err := os.WriteFile(segPath(dir, 1), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs, _, err := openWAL(dir, 1<<20, true, testLogf(t), nil)
		if err != nil || len(recs) != 3 {
			t.Fatalf("v1 boot: recs=%d err=%v", len(recs), err)
		}
		if err := w.truncateTo(1); err != nil {
			t.Fatal(err)
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		// The rewritten segment is v2 now and holds only versions 2 and 3.
		data, err := os.ReadFile(segPath(dir, 1))
		if err != nil {
			t.Fatal(err)
		}
		if [8]byte(data[:8]) != walMagic {
			t.Fatal("compacted legacy segment did not upgrade to v2 framing")
		}
		_, recs, torn, err := openWAL(dir, 1<<20, true, testLogf(t), nil)
		if err != nil || torn || len(recs) != 2 {
			t.Fatalf("reopen: recs=%d torn=%v err=%v", len(recs), torn, err)
		}
		if recs[0].version != 2 || recs[1].version != 3 {
			t.Fatalf("surviving versions: %d, %d", recs[0].version, recs[1].version)
		}
	})
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestRetireJournalFailureDegradesStore pins the retire half of the
// fail-stop contract: a tombstone that cannot reach the WAL degrades the
// store exactly like a failed append — later batches are rejected — and a
// covering snapshot (which includes the unjournaled retirement, because it
// captures the in-memory graph) heals it.
func TestRetireJournalFailureDegradesStore(t *testing.T) {
	dir := t.TempDir()
	st, g, _ := openDurable(t, dir, 2, Options{Fsync: FsyncAlways})
	g.SetWindow(stream.WindowPolicy{MaxVersions: 1})
	g.AppendEdge(0, 0)
	g.AppendEdge(1, 1)

	// Make the WAL fail by removing write permission on the active segment's
	// file descriptor path — simpler: close the wal's file via store Close
	// is too blunt. Instead, taint by swapping the active segment file for a
	// directory is fragile; use the internal taint directly.
	st.wal.mu.Lock()
	st.wal.tainted = true
	st.wal.mu.Unlock()

	res := g.Retire(time.Now())
	if res.Err == nil || res.Removed == 0 {
		t.Fatalf("retire with tainted WAL: %+v, want an error and an in-memory removal", res)
	}
	// The store is degraded: the next append is rejected.
	if res2 := g.AppendEdge(5, 5); res2.Err == nil {
		t.Fatalf("append after failed retire-journal: %+v, want rejection", res2)
	}
	// Wait for the self-heal snapshot the failure kicked (it captures the
	// retired state), then appends must flow again. Each probe uses a fresh
	// edge: a rejected probe still lands in memory, so retrying the same
	// edge would dedup to an empty batch that never reaches the journal and
	// "succeeds" with the gap still open.
	deadline := time.Now().Add(5 * time.Second)
	for i := uint32(6); ; i++ {
		if res3 := g.AppendEdge(i, i); res3.Err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("store never healed after retire-journal failure")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Stats().WALGapVersion != 0 {
		t.Fatalf("gap still open after heal: %+v", st.Stats())
	}
}
