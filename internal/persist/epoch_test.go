package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/stream"
)

// writeLegacySnapshot hand-crafts a pre-epoch snapshot file exactly as PR 4
// (format 1) and PR 5 (format 2) wrote them, so recovery is exercised
// against real historical bytes rather than whatever the current writer
// emits.
func writeLegacySnapshot(t *testing.T, dir string, format uint32, g *bipartite.Graph, version uint64, mark stream.WindowMark, writtenAt int64) {
	t.Helper()
	hdrLen := 20
	if format == snapFormatV2 {
		hdrLen = 44
	}
	hdr := make([]byte, hdrLen+4)
	copy(hdr, snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], format)
	binary.LittleEndian.PutUint64(hdr[12:], version)
	if format == snapFormatV2 {
		binary.LittleEndian.PutUint64(hdr[20:], mark.Version)
		binary.LittleEndian.PutUint64(hdr[28:], uint64(mark.Wall))
		binary.LittleEndian.PutUint64(hdr[36:], uint64(writtenAt))
	}
	binary.LittleEndian.PutUint32(hdr[hdrLen:], crc32.Checksum(hdr[:hdrLen], castagnoli))
	var buf bytes.Buffer
	buf.Write(hdr)
	if err := bipartite.WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath(filepath.Join(dir, "snap"), version), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// snapOf cuts g's current bipartite snapshot, discarding the version.
func snapOf(g *stream.Graph) *bipartite.Graph {
	s, _ := g.Snapshot()
	return s
}

// encodeV1Frame frames one legacy (PR 4-era) WAL record: the v1 format knew
// only edge batches and had no kind field.
func encodeV1Frame(version uint64, edges []bipartite.Edge) []byte {
	n := 12 + 8*len(edges)
	b := make([]byte, walFrameBytes+n)
	binary.LittleEndian.PutUint32(b, uint32(n))
	payload := b[walFrameBytes:]
	binary.LittleEndian.PutUint64(payload, version)
	binary.LittleEndian.PutUint32(payload[8:], uint32(len(edges)))
	for i, e := range edges {
		binary.LittleEndian.PutUint32(payload[12+8*i:], e.U)
		binary.LittleEndian.PutUint32(payload[12+8*i+4:], e.V)
	}
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(payload, castagnoli))
	return b
}

// TestMixedFormatRecoveryPreEpochDir is the acceptance-criteria pin for
// format compatibility: a data dir assembled from pre-epoch artifacts — a
// format-1 or format-2 snapshot, a magic-less v1 WAL segment, a v2 segment
// with no fence records, and no fence file — must recover into the
// epoch-aware store at epoch 0 with ingest owned (the single-primary
// behaviour every pre-failover deployment ran under), byte-identical to an
// in-memory replay, without rewriting the legacy files. Promotion must then
// work on top of that history, and survive a reboot.
func TestMixedFormatRecoveryPreEpochDir(t *testing.T) {
	for _, tc := range []struct {
		name   string
		format uint32
	}{
		{"snapshotV1", snapFormatV1},
		{"snapshotV2", snapFormatV2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			for _, sub := range []string{"snap", "wal"} {
				if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
					t.Fatal(err)
				}
			}

			// The reference run: what an uninterrupted pre-epoch primary held
			// in memory after the same batches, retirement, and version bumps.
			batches := randomBatches(11, 8, 40)
			ref := stream.New()
			for _, b := range batches[:5] {
				ref.Append(b)
			}
			snapG, snapVer := ref.Snapshot()
			if snapVer != 5 {
				t.Fatalf("reference snapshot at version %d, want 5", snapVer)
			}
			writeLegacySnapshot(t, dir, tc.format, snapG, snapVer,
				stream.WindowMark{Version: 3, Wall: 111}, 222)

			// Segment 1: legacy v1 (no magic), versions 6-7.
			var seg1 bytes.Buffer
			seg1.Write(encodeV1Frame(6, batches[5]))
			seg1.Write(encodeV1Frame(7, batches[6]))
			seg1Path := segPath(filepath.Join(dir, "wal"), 1)
			if err := os.WriteFile(seg1Path, seg1.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}

			// Segment 2: v2 framing, an edge batch then a tombstone — the
			// full PR 5 repertoire, no epoch fences anywhere.
			retired := batches[0][:5]
			mark := stream.WindowMark{Version: 6, Wall: 333}
			var seg2 bytes.Buffer
			seg2.Write(walMagic[:])
			var scratch []byte
			seg2.Write(encodeRecord(&scratch, walRecord{version: 8, kind: recEdges, edges: batches[7]}))
			seg2.Write(encodeRecord(&scratch, walRecord{version: 9, kind: recTombstone, mark: mark, edges: retired}))
			if err := os.WriteFile(segPath(filepath.Join(dir, "wal"), 2), seg2.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}

			for _, b := range batches[5:] {
				ref.Append(b)
			}
			ref.Remove(retired)
			ref.AdvanceMarkTo(mark)
			ref.AdvanceVersionTo(9)

			// Recover into a different shard layout than the reference, the
			// way every crash-recovery pin in this package does.
			st, g, rec := openDurable(t, dir, 3, Options{Fsync: FsyncNever})
			if epoch, start, owned := st.Epoch(); epoch != 0 || start != 0 || !owned {
				t.Fatalf("pre-epoch dir recovered to epoch %d start %d owned %v, want 0/0/owned", epoch, start, owned)
			}
			if rec.SnapshotVersion != 5 || rec.ReplayedRecords != 4 {
				t.Fatalf("recovery stats %+v, want snapshot 5 and 4 replayed records", rec)
			}
			if g.Version() != 9 {
				t.Fatalf("recovered version %d, want 9", g.Version())
			}
			if !bytes.Equal(csrBytes(t, snapOf(g)), csrBytes(t, snapOf(ref))) {
				t.Fatal("recovered graph differs from the reference replay")
			}

			// "Without rewrite": the sealed legacy segment's bytes are
			// untouched by recovery — epoch awareness cost the old files
			// nothing.
			after, err := os.ReadFile(seg1Path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(after, seg1.Bytes()) {
				t.Fatal("recovery rewrote the legacy v1 WAL segment")
			}

			// The epoch-aware store keeps serving the pre-epoch history:
			// ingest continues, and a promotion layers the first fence on top.
			ref.Append(batches[0])
			if res := g.Append(batches[0]); res.Err != nil {
				t.Fatalf("ingest on recovered pre-epoch store: %v", res.Err)
			}
			if g.Version() != 10 {
				t.Fatalf("post-recovery ingest version %d, want 10", g.Version())
			}
			if err := st.PromoteEpoch(1, g.Version()+1); err != nil {
				t.Fatalf("promoting on top of pre-epoch history: %v", err)
			}
			g.AdvanceVersionTo(g.Version() + 1)
			ref.AdvanceVersionTo(11)
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			// The reboot replays the fence record and fence file together.
			st2, g2, _ := openDurable(t, dir, 2, Options{Fsync: FsyncNever})
			defer st2.Close()
			if epoch, start, owned := st2.Epoch(); epoch != 1 || start != 11 || !owned {
				t.Fatalf("rebooted epoch %d start %d owned %v, want 1/11/owned", epoch, start, owned)
			}
			if g2.Version() != 11 {
				t.Fatalf("rebooted version %d, want 11", g2.Version())
			}
			if !bytes.Equal(csrBytes(t, snapOf(g2)), csrBytes(t, snapOf(ref))) {
				t.Fatal("rebooted graph differs from the reference replay")
			}
		})
	}
}

// TestBitFlipsInWALPayloadAreRejected pins the checksum guarantee the fuzz
// target probes at random: flipping any single bit of a frame's
// CRC-protected region (the checksum itself, or the payload) makes both
// decoders reject the frame — a corrupt record is never applied.
func TestBitFlipsInWALPayloadAreRejected(t *testing.T) {
	var scratch []byte
	frames := [][]byte{
		append([]byte(nil), encodeRecord(&scratch, walRecord{version: 1, kind: recEdges, edges: edgesN(0, 3)})...),
		append([]byte(nil), encodeRecord(&scratch, walRecord{version: 2, kind: recTombstone, mark: stream.WindowMark{Version: 1, Wall: 99}, edges: edgesN(3, 2)})...),
		append([]byte(nil), encodeRecord(&scratch, walRecord{version: 3, kind: recEpochFence, epoch: 7})...),
		encodeV1Frame(4, edgesN(0, 2)),
	}
	for fi, frame := range frames {
		for bit := 32; bit < 8*len(frame); bit++ { // skip the uncovered length word
			mut := append([]byte(nil), frame...)
			mut[bit/8] ^= 1 << (bit % 8)
			if _, _, ok := decodeRecordV2(mut); ok && fi < 3 {
				t.Fatalf("frame %d: v2 decoder accepted a flip at bit %d", fi, bit)
			}
			if _, _, ok := decodeRecordV1(mut); ok && fi == 3 {
				t.Fatalf("frame %d: v1 decoder accepted a flip at bit %d", fi, bit)
			}
		}
	}
}

// FuzzDecodeRecord hammers both WAL frame decoders with arbitrary bytes:
// they must never panic, never accept a zero version or an edge-carrying
// fence, never claim to have consumed more input than exists, and every
// frame the v2 decoder does accept must re-encode byte-identically — so a
// decode-modify cycle can never silently corrupt a segment.
func FuzzDecodeRecord(f *testing.F) {
	var scratch []byte
	seeds := [][]byte{
		append([]byte(nil), encodeRecord(&scratch, walRecord{version: 1, kind: recEdges, edges: edgesN(0, 3)})...),
		append([]byte(nil), encodeRecord(&scratch, walRecord{version: 2, kind: recTombstone, mark: stream.WindowMark{Version: 5, Wall: 42}, edges: edgesN(4, 2)})...),
		append([]byte(nil), encodeRecord(&scratch, walRecord{version: 3, kind: recEpochFence, epoch: 9})...),
		encodeV1Frame(4, edgesN(0, 2)),
	}
	for _, s := range seeds {
		f.Add(s)
		torn := append([]byte(nil), s[:len(s)-3]...)
		f.Add(torn)
		flipped := append([]byte(nil), s...)
		flipped[len(flipped)/2] ^= 0x40
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if rec, n, ok := decodeRecordV2(data); ok {
			if n <= 0 || n > len(data) {
				t.Fatalf("v2 consumed %d of %d bytes", n, len(data))
			}
			if rec.version == 0 {
				t.Fatal("v2 accepted a zero version")
			}
			if rec.kind == recEpochFence && len(rec.edges) != 0 {
				t.Fatal("v2 accepted an edge-carrying fence")
			}
			var buf []byte
			if !bytes.Equal(encodeRecord(&buf, rec), data[:n]) {
				t.Fatal("v2 decode/encode round-trip is not byte-identical")
			}
		}
		if rec, n, ok := decodeRecordV1(data); ok {
			if n <= 0 || n > len(data) {
				t.Fatalf("v1 consumed %d of %d bytes", n, len(data))
			}
			if rec.version == 0 {
				t.Fatal("v1 accepted a zero version")
			}
			if rec.kind != recEdges {
				t.Fatalf("v1 produced kind %d", rec.kind)
			}
		}
	})
}
