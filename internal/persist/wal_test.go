package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ensemfdet/internal/bipartite"
)

func testLogf(t *testing.T) func(string, ...any) {
	return func(format string, args ...any) { t.Logf(format, args...) }
}

func edgesN(start, n int) []bipartite.Edge {
	out := make([]bipartite.Edge, n)
	for i := range out {
		out[i] = bipartite.Edge{U: uint32(start + i), V: uint32(start + i + 1)}
	}
	return out
}

func TestWALAppendScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, recs, torn, err := openWAL(dir, 1<<20, true, testLogf(t), nil)
	if err != nil || len(recs) != 0 || torn {
		t.Fatalf("fresh openWAL: recs=%d torn=%v err=%v", len(recs), torn, err)
	}
	batches := [][]bipartite.Edge{edgesN(0, 3), edgesN(10, 1), edgesN(20, 7)}
	for i, b := range batches {
		if _, err := w.append(walRecord{kind: recEdges, version: uint64(i + 1), edges: b}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	_, recs, torn, err = openWAL(dir, 1<<20, true, testLogf(t), nil)
	if err != nil || torn {
		t.Fatalf("reopen: torn=%v err=%v", torn, err)
	}
	if len(recs) != len(batches) {
		t.Fatalf("scanned %d records, want %d", len(recs), len(batches))
	}
	for i, r := range recs {
		if r.version != uint64(i+1) || !reflect.DeepEqual(r.edges, batches[i]) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestWALSegmentRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every batch after the first rotates.
	w, _, _, err := openWAL(dir, 48, true, testLogf(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 5; v++ {
		if _, err := w.append(walRecord{kind: recEdges, version: v, edges: edgesN(int(v)*10, 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if segs, _ := w.diskStats(); segs < 3 {
		t.Fatalf("48-byte segments after 5 batches: %d segments, want rotation", segs)
	}

	// Truncating to version 3 must drop every segment fully covered by it
	// and keep all records above it.
	if err := w.truncateTo(3); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	_, recs, torn, err := openWAL(dir, 48, true, testLogf(t), nil)
	if err != nil || torn {
		t.Fatalf("reopen after truncate: torn=%v err=%v", torn, err)
	}
	keptVersions := map[uint64]bool{}
	for _, r := range recs {
		keptVersions[r.version] = true
	}
	if !keptVersions[4] || !keptVersions[5] {
		t.Fatalf("records above the watermark were dropped: %v", keptVersions)
	}
	if keptVersions[1] || keptVersions[2] || keptVersions[3] {
		t.Fatalf("covered records survived truncation: %v", keptVersions)
	}
}

// lastRecordRange locates the byte range of the final record in the only WAL
// segment, from the decoded record sizes.
func lastRecordRange(t *testing.T, data []byte) (start, end int) {
	t.Helper()
	off := 0
	if len(data) >= len(walMagic) && [8]byte(data[:8]) == walMagic {
		off = len(walMagic)
	}
	for off < len(data) {
		_, n, ok := decodeRecordV2(data[off:])
		if !ok {
			t.Fatalf("pristine WAL does not decode at offset %d", off)
		}
		start, end = off, off+n
		off += n
	}
	if end != len(data) {
		t.Fatalf("pristine WAL has trailing bytes: %d != %d", end, len(data))
	}
	return start, end
}

// TestWALTornTailByteByByte is the crash matrix: for every truncation point
// and every flipped byte inside the final record, recovery must come back
// with exactly the fully-acknowledged prefix, warn, and stay appendable —
// never refuse to start.
func TestWALTornTailByteByByte(t *testing.T) {
	dir := t.TempDir()
	w, _, _, err := openWAL(dir, 1<<20, true, testLogf(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	const full = 4
	for v := uint64(1); v <= full; v++ {
		if _, err := w.append(walRecord{kind: recEdges, version: v, edges: edgesN(int(v)*100, 3)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	seg := segPath(dir, 1)
	pristine, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	start, end := lastRecordRange(t, pristine)

	check := func(name string, content []byte) {
		t.Helper()
		if err := os.WriteFile(seg, content, 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs, torn, err := openWAL(dir, 1<<20, true, testLogf(t), nil)
		if err != nil {
			t.Fatalf("%s: recovery refused to start: %v", name, err)
		}
		if !torn {
			t.Fatalf("%s: torn tail not reported", name)
		}
		if len(recs) != full-1 {
			t.Fatalf("%s: recovered %d records, want the %d acknowledged ones", name, len(recs), full-1)
		}
		for i, r := range recs {
			if r.version != uint64(i+1) {
				t.Fatalf("%s: record %d has version %d", name, i, r.version)
			}
		}
		// The log must remain appendable after truncation.
		if _, err := w.append(walRecord{kind: recEdges, version: uint64(full), edges: edgesN(999, 1)}); err != nil {
			t.Fatalf("%s: append after truncation: %v", name, err)
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
	}

	for cut := start + 1; cut < end; cut++ {
		check("truncate", append([]byte(nil), pristine[:cut]...))
	}
	for i := start; i < end; i++ {
		mut := append([]byte(nil), pristine...)
		mut[i] ^= 0x5a
		check("flip", mut)
	}

	// A clean cut exactly at a record boundary is not torn.
	if err := os.WriteFile(seg, pristine[:start], 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, torn, err := openWAL(dir, 1<<20, true, testLogf(t), nil)
	if err != nil || torn || len(recs) != full-1 {
		t.Fatalf("boundary cut: recs=%d torn=%v err=%v", len(recs), torn, err)
	}
}

// TestWALRefusesSealedCorruption pins the other half of the policy: a
// corrupt record in a sealed (non-final) segment holds acknowledged data and
// must refuse recovery rather than silently dropping it.
func TestWALRefusesSealedCorruption(t *testing.T) {
	dir := t.TempDir()
	w, _, _, err := openWAL(dir, 40, true, testLogf(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 3; v++ {
		if _, err := w.append(walRecord{kind: recEdges, version: v, edges: edgesN(int(v)*10, 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if segs, _ := w.diskStats(); segs < 2 {
		t.Fatalf("setup needs multiple segments, got %d", segs)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	first := segPath(dir, 1)
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = openWAL(dir, 40, true, testLogf(t), nil)
	if err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("sealed-segment corruption: err = %v, want refusal", err)
	}
}

func TestWALRejectsMalformedSegmentName(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-zz.wal"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := openWAL(dir, 1<<20, true, testLogf(t), nil); err == nil {
		t.Fatal("malformed segment name must error, not be silently skipped")
	}
}

// TestTruncateToleratesMissingSegment: a covered segment already gone from
// disk counts as removed; the survivor metadata must stay consistent.
func TestTruncateToleratesMissingSegment(t *testing.T) {
	dir := t.TempDir()
	w, _, _, err := openWAL(dir, 40, true, testLogf(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 4; v++ {
		if _, err := w.append(walRecord{kind: recEdges, version: v, edges: edgesN(int(v)*10, 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(segPath(dir, 1)); err != nil { // externally deleted
		t.Fatal(err)
	}
	if err := w.truncateTo(3); err != nil {
		t.Fatalf("truncate over a missing covered segment: %v", err)
	}
	segs, _ := w.diskStats()
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	_, recs, torn, err := openWAL(dir, 40, true, testLogf(t), nil)
	if err != nil || torn {
		t.Fatalf("reopen: torn=%v err=%v", torn, err)
	}
	if len(recs) != 1 || recs[0].version != 4 {
		t.Fatalf("survivors = %+v, want only version 4", recs)
	}
	if segs < 1 {
		t.Fatalf("diskStats inconsistent after tolerant truncation: %d segments", segs)
	}
}
