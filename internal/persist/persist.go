// Package persist is the durability layer under the ensemfdetd daemon: a
// segmented write-ahead log of ingested edge batches plus binary CSR
// snapshots of the graph, so a restart — graceful or kill -9 — recovers the
// same graph, version, and therefore byte-identical detection votes as an
// uninterrupted run over the acknowledged batches.
//
// # Data layout
//
//	<dir>/wal/seg-<index>.wal   length+CRC32C-framed edge-batch records
//	<dir>/snap/snap-<ver>.snap  versioned header + bipartite CSR codec blob
//
// Each WAL record carries the graph version its batch committed as. The
// stream graph tees every adding batch into the log (stream.Journal) before
// the append returns, so with FsyncAlways an acknowledged batch is on disk.
// When the log grows past Options.SnapshotBytes, a background goroutine
// writes a snapshot of the current graph and truncates the WAL to the
// snapshot's version watermark: sealed segments whose records are all
// covered by the snapshot are deleted.
//
// # Recovery
//
// Boot-time recovery loads the newest valid snapshot, seeds the stream
// graph with it (stream.Graph.Restore — the decoded CSR is also
// pre-published as the first cached snapshot), then replays the WAL records
// above the snapshot's version, in version order, through the normal
// sharded Append path. Replay is idempotent because appends deduplicate, and
// version-exact because each replayed batch re-adds precisely the edges it
// added live. A torn or checksum-failing final record — the signature of a
// crash mid-write — is truncated with a logged warning, never a refused
// boot; corruption in a sealed (non-final) segment is refused, because
// truncating there would silently drop acknowledged batches. Likewise, an
// unreadable snapshot is skipped in favor of WAL replay when the log still
// covers its range, and refused — with the remedy named — when it does not.
//
// # Failure handling
//
// A WAL write or fsync failure is fail-stop: the failed batch and every
// batch after it are rejected (each gets an error the serving layer maps to
// a retryable 500; the in-memory graph still commits, so reads keep
// working) until a snapshot at or above the gap restores a consistent
// durable image — attempted immediately in the background and healed
// automatically once one lands. This keeps the version sequence in
// (snapshot + WAL) hole-free, which is what recovery's version-exactness
// rests on.
package persist

import (
	"fmt"
	"log"
	"strings"
	"time"

	"ensemfdet/internal/stream"
)

// FsyncPolicy selects when the WAL is flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs the WAL after every batch, before the append is
	// acknowledged: an acked batch survives kill -9 and power loss. This is
	// the default and the only policy under which the recovery guarantee
	// covers every acknowledged batch.
	FsyncAlways FsyncPolicy = iota
	// FsyncNever leaves flushing to the OS page cache: ingest runs at
	// memory speed, a process crash loses nothing (the kernel still owns
	// the dirty pages), but a host crash can lose the most recent batches.
	FsyncNever
)

// ParseFsyncPolicy maps the -fsync flag values ("always", "never") to a
// policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "", "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("persist: unknown fsync policy %q (want always or never)", s)
}

func (p FsyncPolicy) String() string {
	if p == FsyncNever {
		return "never"
	}
	return "always"
}

// Options configures a Store. The zero value is production-safe: fsync
// every batch, snapshot every 16MB of WAL growth, 8MB segments.
type Options struct {
	// Fsync is the WAL flush policy.
	Fsync FsyncPolicy
	// SnapshotBytes is how far the WAL may grow past the latest snapshot
	// before a background snapshot is triggered (0 → 16MB).
	SnapshotBytes int64
	// SegmentBytes caps one WAL segment before rotation (0 → 8MB). A batch
	// larger than a whole segment still lands in one (oversized) segment.
	SegmentBytes int64
	// Logf receives recovery warnings and snapshot progress lines
	// (nil → log.Printf).
	Logf func(format string, args ...any)
	// Inject, when non-nil, is consulted at named fault-injection points
	// ("wal.write", "wal.fsync", "snap.write", "fence.write") before the
	// real operation; a non-nil return is treated as that operation having
	// failed. Drill tests wire internal/faultinject here; production leaves
	// it nil.
	Inject func(point string) error
}

const (
	defaultSnapshotBytes = 16 << 20
	defaultSegmentBytes  = 8 << 20
)

func (o Options) snapshotBytes() int64 {
	if o.SnapshotBytes <= 0 {
		return defaultSnapshotBytes
	}
	return o.SnapshotBytes
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return defaultSegmentBytes
	}
	return o.SegmentBytes
}

func (o Options) logf() func(string, ...any) {
	if o.Logf == nil {
		return log.Printf
	}
	return o.Logf
}

// RecoveryStats summarizes one boot-time recovery.
type RecoveryStats struct {
	// SnapshotVersion is the graph version of the snapshot that seeded
	// recovery; 0 means no usable snapshot existed.
	SnapshotVersion uint64 `json:"snapshot_version"`
	// SnapshotEdges is the edge count of that snapshot.
	SnapshotEdges int `json:"snapshot_edges"`
	// ReplayedRecords / ReplayedEdges count the WAL tail replayed on top of
	// the snapshot (edges are pre-dedup batch sizes; tombstone records count
	// in both, their edges being the ones deleted).
	ReplayedRecords int `json:"replayed_records"`
	ReplayedEdges   int `json:"replayed_edges"`
	// ReplayedTombstones counts the tombstone records among ReplayedRecords
	// — retire passes reproduced as exact deletions.
	ReplayedTombstones int `json:"replayed_tombstones"`
	// WindowMark is the expiry watermark adopted from the snapshot (zero for
	// format-1 snapshots and fresh directories).
	WindowMark stream.WindowMark `json:"window_mark"`
	// SkippedRecords counts WAL records at or below the snapshot watermark,
	// already covered by the snapshot.
	SkippedRecords int `json:"skipped_records"`
	// TornTail reports that a torn or corrupt final record was truncated.
	TornTail bool `json:"torn_tail"`
	// Version is the recovered graph version.
	Version uint64 `json:"version"`
	// Epoch is the failover term resolved from the fence file, snapshot
	// header, and WAL fence records (0 for pre-epoch directories).
	Epoch uint64 `json:"epoch"`
}

// Stats is a point-in-time durability summary, surfaced by the daemon's
// /v1/stats and /metrics endpoints.
type Stats struct {
	// Epoch is the failover term this store has observed;
	// EpochStartVersion is the first graph version of that term (0 when
	// unknown); EpochOwned reports whether local ingest may acknowledge
	// writes under it — false on followers and on a deposed primary.
	Epoch             uint64 `json:"epoch"`
	EpochStartVersion uint64 `json:"epoch_start_version,omitempty"`
	EpochOwned        bool   `json:"epoch_owned"`
	// FsyncPolicy is the configured WAL flush policy.
	FsyncPolicy string `json:"fsync_policy"`
	// WALSegments and WALBytes describe the log currently on disk.
	WALSegments int   `json:"wal_segments"`
	WALBytes    int64 `json:"wal_bytes"`
	// AppendedRecords/AppendedBytes/Fsyncs count WAL activity since this
	// process opened the store; TombstoneRecords is the retire-record subset
	// of AppendedRecords.
	AppendedRecords  uint64 `json:"appended_records"`
	AppendedBytes    uint64 `json:"appended_bytes"`
	TombstoneRecords uint64 `json:"tombstone_records"`
	Fsyncs           uint64 `json:"fsyncs"`
	// Compactions counts sealed segments rewritten to drop snapshot-covered
	// records; CompactedBytes is the disk space those rewrites reclaimed.
	Compactions    uint64 `json:"compactions"`
	CompactedBytes uint64 `json:"compacted_bytes"`
	// SnapshotsWritten / SnapshotErrors count snapshot attempts since open.
	SnapshotsWritten uint64 `json:"snapshots_written"`
	SnapshotErrors   uint64 `json:"snapshot_errors"`
	// SnapshotVersion is the version of the newest durable snapshot.
	SnapshotVersion uint64 `json:"snapshot_version"`
	// BytesSinceSnapshot is the WAL growth past that snapshot — the value
	// compared against Options.SnapshotBytes.
	BytesSinceSnapshot int64 `json:"bytes_since_snapshot"`
	// WALGapVersion, when non-zero, reports the store is degraded: a batch
	// at this version (or below) failed to reach the WAL, and ingest is
	// rejected until a snapshot at or above it heals the gap.
	WALGapVersion uint64 `json:"wal_gap_version,omitempty"`
	// SnapshotDur is cumulative time spent encoding+syncing snapshots.
	SnapshotDur time.Duration `json:"snapshot_ns"`
	// Recovery echoes the boot-time recovery summary.
	Recovery RecoveryStats `json:"recovery"`
}
