package density

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ensemfdet/internal/bipartite"
)

func block(t *testing.T, nu, nm int) *bipartite.Graph {
	t.Helper()
	b := bipartite.NewBuilderSized(nu, nm, nu*nm)
	for u := 0; u < nu; u++ {
		for v := 0; v < nm; v++ {
			b.AddEdge(uint32(u), uint32(v))
		}
	}
	return b.Build()
}

func TestColumnWeightedWeights(t *testing.T) {
	g := block(t, 3, 2) // each merchant has degree 3
	w := ColumnWeighted{C: 5}.MerchantWeights(g)
	want := 1 / math.Log(8)
	for v, got := range w {
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("w[%d] = %g, want %g", v, got, want)
		}
	}
}

func TestColumnWeightedDefaultC(t *testing.T) {
	g := block(t, 1, 1)
	w := ColumnWeighted{}.MerchantWeights(g) // C=0 → DefaultC
	want := 1 / math.Log(1+DefaultC)
	if math.Abs(w[0]-want) > 1e-12 {
		t.Errorf("w = %g, want %g (DefaultC)", w[0], want)
	}
}

func TestAvgDegreeScore(t *testing.T) {
	g := block(t, 4, 4) // 16 edges, 8 nodes
	if got, want := Score(g, AvgDegree{}), 2.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Score = %g, want %g", got, want)
	}
}

func TestScoreEmptyGraph(t *testing.T) {
	g := bipartite.NewBuilder().Build()
	if Score(g, Default()) != 0 {
		t.Error("empty graph score != 0")
	}
	if ScoreSubset(g, Default(), nil, nil) != 0 {
		t.Error("empty subset score != 0")
	}
}

func TestScoreSubsetMatchesWhole(t *testing.T) {
	g := block(t, 3, 3)
	users := []uint32{0, 1, 2}
	merchants := []uint32{0, 1, 2}
	whole := Score(g, Default())
	sub := ScoreSubset(g, Default(), users, merchants)
	if math.Abs(whole-sub) > 1e-12 {
		t.Errorf("whole = %g, subset-of-everything = %g", whole, sub)
	}
}

func TestScoreSubsetDenser(t *testing.T) {
	// A dense block embedded in a sparse background must out-score the whole
	// graph.
	b := bipartite.NewBuilderSized(20, 20, 0)
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			b.AddEdge(uint32(u), uint32(v))
		}
	}
	for u := 5; u < 20; u++ {
		b.AddEdge(uint32(u), uint32(u))
	}
	g := b.Build()
	blockScore := ScoreSubset(g, Default(), []uint32{0, 1, 2, 3, 4}, []uint32{0, 1, 2, 3, 4})
	wholeScore := Score(g, Default())
	if blockScore <= wholeScore {
		t.Errorf("block %g not denser than whole %g", blockScore, wholeScore)
	}
}

func TestCamouflageResistance(t *testing.T) {
	// The column-weighted metric must rank a clean dense block above an
	// equally dense block whose merchants are also hit by heavy camouflage
	// traffic; the unweighted metric cannot tell them apart. This is the
	// stated purpose of Definition 2's penalty.
	b := bipartite.NewBuilderSized(210, 10, 0)
	// Block A: users 0..4 x merchants 0..4 (clean, merchant degree stays 5).
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			b.AddEdge(uint32(u), uint32(v))
		}
	}
	// Block B: users 5..9 x merchants 5..9, plus 200 background users on
	// each of those merchants (popular merchants used as camouflage).
	for u := 5; u < 10; u++ {
		for v := 5; v < 10; v++ {
			b.AddEdge(uint32(u), uint32(v))
		}
	}
	for u := 10; u < 210; u++ {
		for v := 5; v < 10; v++ {
			b.AddEdge(uint32(u), uint32(v))
		}
	}
	g := b.Build()
	m := Default()
	usersA, merchA := []uint32{0, 1, 2, 3, 4}, []uint32{0, 1, 2, 3, 4}
	usersB, merchB := []uint32{5, 6, 7, 8, 9}, []uint32{5, 6, 7, 8, 9}
	a := ScoreSubset(g, m, usersA, merchA)
	bb := ScoreSubset(g, m, usersB, merchB)
	if a <= bb {
		t.Errorf("column-weighted: clean block %g should out-score camouflaged block %g", a, bb)
	}
	ua := ScoreSubset(g, AvgDegree{}, usersA, merchA)
	ub := ScoreSubset(g, AvgDegree{}, usersB, merchB)
	if math.Abs(ua-ub) > 1e-12 {
		t.Errorf("avg-degree should not distinguish the blocks: %g vs %g", ua, ub)
	}
}

func TestPropertyWeightsPositiveFinite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu, nm := 1+rng.Intn(20), 1+rng.Intn(20)
		bld := bipartite.NewBuilderSized(nu, nm, 0)
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			bld.AddEdge(uint32(rng.Intn(nu)), uint32(rng.Intn(nm)))
		}
		g := bld.Build()
		for _, m := range []Metric{Default(), AvgDegree{}, ColumnWeighted{C: 2}} {
			for _, w := range m.MerchantWeights(g) {
				if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyScoreNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu, nm := 1+rng.Intn(20), 1+rng.Intn(20)
		bld := bipartite.NewBuilderSized(nu, nm, 0)
		for i := 0; i < rng.Intn(100); i++ {
			bld.AddEdge(uint32(rng.Intn(nu)), uint32(rng.Intn(nm)))
		}
		g := bld.Build()
		return Score(g, Default()) >= 0 && Score(g, AvgDegree{}) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMetricNames(t *testing.T) {
	if Default().Name() != "column-weighted" {
		t.Errorf("Default name = %q", Default().Name())
	}
	if (AvgDegree{}).Name() != "avg-degree" {
		t.Errorf("AvgDegree name = %q", AvgDegree{}.Name())
	}
}
