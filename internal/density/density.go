// Package density implements the graph density scores used to rank fraud
// blocks (paper §III-B, Definition 2).
//
// Definition 2 as printed compresses the FRAUDAR metric it cites: the density
// score of a node subset S is the column-weighted edge mass of the subgraph
// divided by the number of nodes,
//
//	φ(S) = (1/|S|) · Σ_{(i,j) ∈ E(S)} w(j),   w(j) = 1 / log(d_j + c),
//
// where d_j is merchant j's degree in the graph the detector was handed
// (not the peeled remnant), so that high-degree merchants — the natural
// camouflage targets — contribute little per edge. The plain average-degree
// metric of Charikar (all weights 1) is provided for ablations.
package density

import (
	"math"

	"ensemfdet/internal/bipartite"
)

// Metric assigns a weight to every merchant column; the density score of a
// subgraph is its weighted edge mass divided by its node count. Metrics must
// produce strictly positive, finite weights for any merchant with degree ≥ 1.
type Metric interface {
	// Name identifies the metric in logs and experiment output.
	Name() string
	// MerchantWeights returns w, where edge (u, v) weighs w[v]. The slice
	// has length g.NumMerchants().
	MerchantWeights(g *bipartite.Graph) []float64
}

// ColumnWeighted is the camouflage-resistant FRAUDAR weighting
// w(v) = 1/log(d_v + C). C must satisfy C > 1 so that degree-1 merchants get
// a positive finite weight; the FRAUDAR reference implementation uses C = 5,
// which is the DefaultC here.
type ColumnWeighted struct {
	C float64
}

// DefaultC is the log-shift constant used when ColumnWeighted.C is zero.
const DefaultC = 5.0

// Name implements Metric.
func (ColumnWeighted) Name() string { return "column-weighted" }

// MerchantWeights implements Metric.
func (m ColumnWeighted) MerchantWeights(g *bipartite.Graph) []float64 {
	c := m.C
	if c == 0 {
		c = DefaultC
	}
	w := make([]float64, g.NumMerchants())
	for v := range w {
		w[v] = 1 / math.Log(float64(g.MerchantDegree(uint32(v)))+c)
	}
	return w
}

// AvgDegree is Charikar's unweighted metric: φ(S) = |E(S)| / |S|. It is used
// as an ablation of the column weighting.
type AvgDegree struct{}

// Name implements Metric.
func (AvgDegree) Name() string { return "avg-degree" }

// MerchantWeights implements Metric.
func (AvgDegree) MerchantWeights(g *bipartite.Graph) []float64 {
	w := make([]float64, g.NumMerchants())
	for v := range w {
		w[v] = 1
	}
	return w
}

// Default returns the metric used throughout the paper's experiments.
func Default() Metric { return ColumnWeighted{C: DefaultC} }

// Score computes φ(G) for the whole graph under the metric's weights
// evaluated on the graph itself. An empty graph scores 0.
func Score(g *bipartite.Graph, m Metric) float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	return ScoreWithWeights(g, m.MerchantWeights(g))
}

// ScoreWithWeights computes φ(G) with externally supplied merchant weights
// (e.g. weights frozen from a parent graph). An empty graph scores 0.
func ScoreWithWeights(g *bipartite.Graph, w []float64) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	total := 0.0
	for v := 0; v < g.NumMerchants(); v++ {
		total += float64(g.MerchantDegree(uint32(v))) * w[v]
	}
	return total / float64(n)
}

// ScoreSubset computes φ of the subgraph induced by the given node subset of
// g, with weights taken from g itself. It is O(Σ deg(u)) over the selected
// users and exists mainly to cross-check the incremental peeling engine in
// tests.
func ScoreSubset(g *bipartite.Graph, m Metric, users, merchants []uint32) float64 {
	n := len(users) + len(merchants)
	if n == 0 {
		return 0
	}
	w := m.MerchantWeights(g)
	inMerch := make(map[uint32]bool, len(merchants))
	for _, v := range merchants {
		inMerch[v] = true
	}
	total := 0.0
	seen := make(map[uint32]bool, len(users))
	for _, u := range users {
		if seen[u] {
			continue
		}
		seen[u] = true
		for _, v := range g.UserNeighbors(u) {
			if inMerch[v] {
				total += w[v]
			}
		}
	}
	return total / float64(n)
}
