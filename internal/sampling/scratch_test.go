package sampling

import (
	"math/rand"
	"reflect"
	"testing"

	"ensemfdet/internal/bipartite"
)

// snapshotSubgraph deep-copies the parts of a subgraph a later arena build
// would overwrite, so two draws from one scratch can be compared.
type subgraphSnapshot struct {
	edges       []bipartite.Edge
	userIDs     []uint32
	merchantIDs []uint32
}

func snapshot(sg *bipartite.Subgraph) subgraphSnapshot {
	return subgraphSnapshot{
		edges:       sg.EdgeList(),
		userIDs:     append([]uint32{}, sg.UserIDs...),
		merchantIDs: append([]uint32{}, sg.MerchantIDs...),
	}
}

// TestSampleIntoMatchesSample proves the scratch path draws exactly the
// subgraph the allocating path draws — same rng consumption, same edges,
// same parent id maps — for every method, across repeated reuse of one
// scratch (the ensemble worker's access pattern).
func TestSampleIntoMatchesSample(t *testing.T) {
	g := randomGraph(11, 120, 90, 900)
	for _, m := range All() {
		s := new(Scratch)
		rngA := rand.New(rand.NewSource(5))
		rngB := rand.New(rand.NewSource(5))
		for draw := 0; draw < 6; draw++ {
			ratio := 0.05 + 0.15*float64(draw)
			got := snapshot(SampleInto(m, g, ratio, rngA, s))
			want := snapshot(m.Sample(g, ratio, rngB))
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s draw %d (S=%.2f): scratch draw differs from allocating draw", m.Name(), draw, ratio)
			}
		}
	}
}

// TestSampleIntoAcrossGraphs reuses one scratch against parents of very
// different sizes, mimicking the serving engine's arena pool surviving
// stream-graph versions.
func TestSampleIntoAcrossGraphs(t *testing.T) {
	big := randomGraph(21, 300, 260, 4000)
	small := randomGraph(22, 10, 8, 30)
	s := new(Scratch)
	for i := 0; i < 3; i++ {
		for _, g := range []*bipartite.Graph{big, small} {
			for _, m := range All() {
				rngA := rand.New(rand.NewSource(int64(i) + 100))
				rngB := rand.New(rand.NewSource(int64(i) + 100))
				got := snapshot(SampleInto(m, g, 0.3, rngA, s))
				want := snapshot(m.Sample(g, 0.3, rngB))
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s on %v: reuse across graphs changed the draw", m.Name(), g)
				}
			}
		}
	}
}

// fallbackMethod is a Method unknown to SampleInto's type switch.
type fallbackMethod struct{}

func (fallbackMethod) Name() string { return "custom" }
func (fallbackMethod) Sample(g *bipartite.Graph, ratio float64, rng *rand.Rand) *bipartite.Subgraph {
	return g.InducedByUsers([]uint32{0})
}

func TestSampleIntoFallsBackForUnknownMethods(t *testing.T) {
	g := randomGraph(31, 20, 20, 60)
	sg := SampleInto(fallbackMethod{}, g, 0.5, rand.New(rand.NewSource(1)), new(Scratch))
	if sg.NumUsers() != 1 || sg.ParentUser(0) != 0 {
		t.Errorf("fallback did not delegate to Method.Sample: %v", sg)
	}
}
