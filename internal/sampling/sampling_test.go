package sampling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ensemfdet/internal/bipartite"
)

func randomGraph(seed int64, nu, nm, edges int) *bipartite.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := bipartite.NewBuilderSized(nu, nm, edges)
	for i := 0; i < edges; i++ {
		b.AddEdge(uint32(rng.Intn(nu)), uint32(rng.Intn(nm)))
	}
	return b.Build()
}

func TestRandomEdgeSampleSize(t *testing.T) {
	g := randomGraph(1, 100, 100, 1000)
	rng := rand.New(rand.NewSource(2))
	sg := (RandomEdge{}).Sample(g, 0.1, rng)
	want := int(math.Ceil(0.1 * float64(g.NumEdges())))
	if sg.NumEdges() != want {
		t.Errorf("RES edges = %d, want %d", sg.NumEdges(), want)
	}
	if err := sg.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestRandomEdgeSampleEdgesExist(t *testing.T) {
	g := randomGraph(3, 50, 50, 400)
	rng := rand.New(rand.NewSource(4))
	sg := (RandomEdge{}).Sample(g, 0.2, rng)
	sg.Edges(func(e bipartite.Edge) bool {
		if !g.HasEdge(sg.ParentUser(e.U), sg.ParentMerchant(e.V)) {
			t.Errorf("sampled edge %v not in parent", e)
			return false
		}
		return true
	})
}

func TestOneSideNodeSampleSize(t *testing.T) {
	g := randomGraph(5, 80, 60, 500)
	rng := rand.New(rand.NewSource(6))
	sg := (OneSideNode{Side: bipartite.UserSide}).Sample(g, 0.25, rng)
	want := int(math.Ceil(0.25 * 80))
	if sg.NumUsers() != want {
		t.Errorf("ONS-user users = %d, want %d", sg.NumUsers(), want)
	}
	// Sampled users keep all incident edges.
	total := 0
	for u := 0; u < sg.NumUsers(); u++ {
		pu := sg.ParentUser(uint32(u))
		if sg.UserDegree(uint32(u)) != g.UserDegree(pu) {
			t.Errorf("user %d lost edges: %d vs %d", pu, sg.UserDegree(uint32(u)), g.UserDegree(pu))
		}
		total += g.UserDegree(pu)
	}
	if sg.NumEdges() != total {
		t.Errorf("edges = %d, want %d", sg.NumEdges(), total)
	}
}

func TestOneSideNodeMerchantSide(t *testing.T) {
	g := randomGraph(7, 60, 40, 300)
	rng := rand.New(rand.NewSource(8))
	sg := (OneSideNode{Side: bipartite.MerchantSide}).Sample(g, 0.5, rng)
	want := int(math.Ceil(0.5 * 40))
	if sg.NumMerchants() != want {
		t.Errorf("ONS-merchant merchants = %d, want %d", sg.NumMerchants(), want)
	}
}

func TestTwoSideNodeSampleSize(t *testing.T) {
	g := randomGraph(9, 100, 100, 2000)
	rng := rand.New(rand.NewSource(10))
	sg := (TwoSideNode{}).Sample(g, 0.3, rng)
	// Cross-section drops isolated nodes, so sizes are upper bounds.
	if sg.NumUsers() > 30 || sg.NumMerchants() > 30 {
		t.Errorf("TNS sizes (%d,%d) exceed requested 30", sg.NumUsers(), sg.NumMerchants())
	}
	// Expected edges ≈ S² |E| = 180; allow generous slack.
	if sg.NumEdges() == 0 {
		t.Error("TNS produced no edges on a dense graph")
	}
	if sg.NumEdges() > g.NumEdges()/2 {
		t.Errorf("TNS kept %d of %d edges, far above S²", sg.NumEdges(), g.NumEdges())
	}
}

func TestSampleRatioOne(t *testing.T) {
	g := randomGraph(11, 30, 30, 200)
	rng := rand.New(rand.NewSource(12))
	sg := (RandomEdge{}).Sample(g, 1.0, rng)
	if sg.NumEdges() != g.NumEdges() {
		t.Errorf("S=1 RES kept %d of %d edges", sg.NumEdges(), g.NumEdges())
	}
}

func TestSampleEmptyGraph(t *testing.T) {
	g := bipartite.NewBuilder().Build()
	rng := rand.New(rand.NewSource(13))
	for _, m := range All() {
		sg := m.Sample(g, 0.5, rng)
		if sg.NumEdges() != 0 {
			t.Errorf("%s on empty graph produced edges", m.Name())
		}
	}
}

func TestSampleDeterministicGivenSeed(t *testing.T) {
	g := randomGraph(15, 50, 50, 400)
	for _, m := range All() {
		a := m.Sample(g, 0.2, rand.New(rand.NewSource(42)))
		b := m.Sample(g, 0.2, rand.New(rand.NewSource(42)))
		if a.NumEdges() != b.NumEdges() || a.NumUsers() != b.NumUsers() {
			t.Errorf("%s not deterministic", m.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, m := range All() {
		got, err := ByName(m.Name())
		if err != nil {
			t.Errorf("ByName(%q): %v", m.Name(), err)
			continue
		}
		if got.Name() != m.Name() {
			t.Errorf("ByName(%q).Name() = %q", m.Name(), got.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName accepted bogus name")
	}
}

func TestPropertySampleSizesWithinBounds(t *testing.T) {
	f := func(seed int64, ratioRaw uint8) bool {
		ratio := float64(ratioRaw%100+1) / 100 // (0,1]
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(seed, 10+rng.Intn(50), 10+rng.Intn(50), 50+rng.Intn(300))
		for _, m := range All() {
			sg := m.Sample(g, ratio, rng)
			if sg.NumEdges() > g.NumEdges() {
				return false
			}
			if sg.NumUsers() > g.NumUsers() || sg.NumMerchants() > g.NumMerchants() {
				return false
			}
			if sg.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRESFavorsHighDegreeNodes(t *testing.T) {
	// Empirical check of Lemma 1's consequence: under RES, a merchant with
	// many edges should appear in samples far more often than a merchant
	// with one edge.
	b := bipartite.NewBuilderSized(101, 2, 0)
	for u := 0; u < 100; u++ {
		b.AddEdge(uint32(u), 0) // merchant 0: degree 100
	}
	b.AddEdge(100, 1) // merchant 1: degree 1
	g := b.Build()
	rng := rand.New(rand.NewSource(99))
	hits0, hits1 := 0, 0
	const trials = 200
	for i := 0; i < trials; i++ {
		sg := (RandomEdge{}).Sample(g, 0.1, rng)
		for v := 0; v < sg.NumMerchants(); v++ {
			switch sg.ParentMerchant(uint32(v)) {
			case 0:
				hits0++
			case 1:
				hits1++
			}
		}
	}
	if hits0 != trials {
		t.Errorf("degree-100 merchant appeared %d/%d times, want always", hits0, trials)
	}
	if hits1 > trials/2 {
		t.Errorf("degree-1 merchant appeared %d/%d times, want ≈ 10%%", hits1, trials)
	}
}
