package sampling

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExpectedNSByDegree(t *testing.T) {
	hist := []int{0, 10, 5, 2}
	got := ExpectedNSByDegree(hist, 0.3)
	want := []float64{0, 3, 1.5, 0.6}
	for q := range want {
		if math.Abs(got[q]-want[q]) > 1e-12 {
			t.Errorf("E_NS[d_%d] = %g, want %g", q, got[q], want[q])
		}
	}
}

func TestExpectedESByDegree(t *testing.T) {
	hist := []int{0, 10, 0, 0}
	got := ExpectedESByDegree(hist, 0.2)
	// degree-1 nodes survive with probability pe.
	if math.Abs(got[1]-10*0.2) > 1e-12 {
		t.Errorf("E_ES[d_1] = %g, want 2", got[1])
	}
}

func TestLemma1Crossover(t *testing.T) {
	// For q above the crossover, E_ES > E_NS; below it, E_ES < E_NS.
	pv, pe := 0.3, 0.1
	qc := CrossoverDegree(pv, pe)
	if qc <= 0 {
		t.Fatalf("crossover %g not positive", qc)
	}
	hist := make([]int, 60)
	for q := 1; q < 60; q++ {
		hist[q] = 100
	}
	ns := ExpectedNSByDegree(hist, pv)
	es := ExpectedESByDegree(hist, pe)
	for q := 1; q < 60; q++ {
		switch {
		case float64(q) > qc+1e-9 && es[q] <= ns[q]:
			t.Errorf("q=%d > crossover %.2f but E_ES=%g ≤ E_NS=%g", q, qc, es[q], ns[q])
		case float64(q) < qc-1e-9 && es[q] >= ns[q]:
			t.Errorf("q=%d < crossover %.2f but E_ES=%g ≥ E_NS=%g", q, qc, es[q], ns[q])
		}
	}
}

func TestPropertyCrossoverConsistent(t *testing.T) {
	// The sign of E_ES − E_NS must flip exactly at the crossover for any
	// valid probability pair.
	f := func(a, b uint8) bool {
		pv := float64(a%98+1) / 100
		pe := float64(b%98+1) / 100
		qc := CrossoverDegree(pv, pe)
		for _, dq := range []float64{0.5, 2} {
			q := qc * dq
			if q < 0.01 {
				continue
			}
			esRate := 1 - math.Pow(1-pe, q)
			switch {
			case dq > 1 && esRate < pv-1e-9:
				return false
			case dq < 1 && esRate > pv+1e-9:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestApproximationEdgeProbability(t *testing.T) {
	p := ApproximationEdgeProbability(100000, 1, 0.5, 50)
	if p <= 0 || p > 1 {
		t.Fatalf("p = %g out of range", p)
	}
	// Larger ε (looser approximation) needs fewer edges.
	loose := ApproximationEdgeProbability(100000, 1, 0.9, 50)
	if loose > p {
		t.Errorf("looser ε needs more edges: %g > %g", loose, p)
	}
	// Degenerate inputs clamp to 1.
	if ApproximationEdgeProbability(1, 1, 0.5, 50) != 1 {
		t.Error("n<2 must clamp to 1")
	}
	if ApproximationEdgeProbability(100, 1, 0, 50) != 1 {
		t.Error("eps=0 must clamp to 1")
	}
}
