// Package sampling implements the three structural sampling methods for
// bipartite graphs from paper §IV-A: random edge sampling (RES), one-side
// node sampling (ONS) and two-side node sampling (TNS), plus the sampling
// theory helpers behind Eq. 3 and Lemma 1.
//
// All methods draw without replacement, honour a sample ratio S and are
// deterministic given the caller's *rand.Rand, which is what lets the
// ensemble layer fan samples out across goroutines reproducibly.
package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/scratch"
)

// Method produces one sampled subgraph from a parent graph. Implementations
// must be safe for concurrent use by multiple goroutines as long as each call
// receives its own rng.
type Method interface {
	// Name identifies the method in experiment output, e.g. "RES".
	Name() string
	// Sample draws a subgraph with the given ratio S ∈ (0, 1]. The meaning
	// of S is method-specific: fraction of edges for RES, fraction of the
	// sampled side's nodes for ONS, fraction of each side for TNS.
	Sample(g *bipartite.Graph, ratio float64, rng *rand.Rand) *bipartite.Subgraph
}

// RandomEdge is RES (§IV-A2): a uniform sample of ⌈S·|E|⌉ distinct edges;
// the subgraph contains exactly those edges and their endpoints.
type RandomEdge struct{}

// Name implements Method.
func (RandomEdge) Name() string { return "RES" }

// Sample implements Method.
func (RandomEdge) Sample(g *bipartite.Graph, ratio float64, rng *rand.Rand) *bipartite.Subgraph {
	return SampleInto(RandomEdge{}, g, ratio, rng, new(Scratch)).Detach()
}

// OneSideNode is ONS (§IV-A3): a uniform sample of ⌈S·n⌉ nodes from one
// side; sampled nodes keep all their incident edges. The paper's
// "task-oriented" and "retain topology" principles govern which Side to
// sample — for dense-subgraph detection, sample the side with the higher
// average degree (typically merchants).
type OneSideNode struct {
	Side bipartite.Side
}

// Name implements Method.
func (o OneSideNode) Name() string { return fmt.Sprintf("ONS-%s", o.Side) }

// Sample implements Method.
func (o OneSideNode) Sample(g *bipartite.Graph, ratio float64, rng *rand.Rand) *bipartite.Subgraph {
	return SampleInto(o, g, ratio, rng, new(Scratch)).Detach()
}

// TwoSideNode is TNS (§IV-A4): independent uniform samples of ⌈S·|U|⌉ users
// and ⌈S·|V|⌉ merchants; the subgraph is the cross-section, so its expected
// edge count is ≈ S²·|E| — callers typically enlarge S or the number of
// samples N to compensate, as the paper notes.
type TwoSideNode struct{}

// Name implements Method.
func (TwoSideNode) Name() string { return "TNS" }

// Sample implements Method.
func (TwoSideNode) Sample(g *bipartite.Graph, ratio float64, rng *rand.Rand) *bipartite.Subgraph {
	return SampleInto(TwoSideNode{}, g, ratio, rng, new(Scratch)).Detach()
}

// ByName returns the sampling method with the given name, one of "RES",
// "ONS-user", "ONS-merchant", "TNS".
func ByName(name string) (Method, error) {
	switch name {
	case "RES":
		return RandomEdge{}, nil
	case "ONS-user":
		return OneSideNode{Side: bipartite.UserSide}, nil
	case "ONS-merchant":
		return OneSideNode{Side: bipartite.MerchantSide}, nil
	case "TNS":
		return TwoSideNode{}, nil
	default:
		return nil, fmt.Errorf("sampling: unknown method %q", name)
	}
}

// All returns every sampling method, in the order Figure 5 plots them.
func All() []Method {
	return []Method{
		TwoSideNode{},
		OneSideNode{Side: bipartite.MerchantSide},
		OneSideNode{Side: bipartite.UserSide},
		RandomEdge{},
	}
}

// sampleCount converts a ratio into a draw count, clamped to [0, n]; a
// positive ratio on a non-empty population draws at least one element.
func sampleCount(n int, ratio float64) int {
	if n == 0 || ratio <= 0 {
		return 0
	}
	m := int(math.Ceil(ratio * float64(n)))
	if m > n {
		m = n
	}
	return m
}

// Scratch is the reusable per-worker sampler state: the Floyd draw's
// chosen-set (a bitset with targeted clearing, not a per-call map), the
// index and id buffers, and the subgraph-build arena. One Scratch per
// ensemble worker makes every sampling method allocation-free after
// warm-up.
//
// The subgraph returned by SampleInto aliases the scratch's arena and is
// valid until the next SampleInto with the same scratch. A Scratch must not
// be shared between goroutines without synchronization. The zero value is
// ready to use.
type Scratch struct {
	// chosenBits is the Floyd draw's chosen-set as a bitset (1 bit per
	// population element instead of a 4-byte stamp — a 10M-edge parent
	// costs 1.25MB per arena, not 40MB). The all-zero invariant between
	// draws is restored by targeted clearing: every set bit is recorded in
	// idx, so the next draw clears O(previous m) words, never O(n). The
	// slice's length never shrinks, which keeps every previously set word
	// reachable for that clearing pass.
	chosenBits []uint64
	idx        []int
	uids       []uint32
	vids       []uint32
	arena      bipartite.Arena
}

// SampleInto draws one subgraph exactly like m.Sample(g, ratio, rng) —
// identical rng consumption, identical subgraph, identical parent id maps —
// but builds it in s's buffers. Methods not implemented by this package
// fall back to m.Sample (allocating).
func SampleInto(m Method, g *bipartite.Graph, ratio float64, rng *rand.Rand, s *Scratch) *bipartite.Subgraph {
	switch m := m.(type) {
	case RandomEdge:
		n := g.NumEdges()
		idx := s.sampleIndices(n, sampleCount(n, ratio), rng)
		sort.Ints(idx)
		// The sorted draw is the canonical (user-major) edge-id list; the
		// arena build walks it straight into CSR rows with no intermediate
		// edge list.
		return g.InducedByEdgeIDsArena(&s.arena, idx)
	case OneSideNode:
		n := g.NumNodesOn(m.Side)
		ids := s.sampleIDs(&s.uids, n, sampleCount(n, ratio), rng)
		if m.Side == bipartite.UserSide {
			return g.InducedByUsersArena(&s.arena, ids)
		}
		return g.InducedByMerchantsArena(&s.arena, ids)
	case TwoSideNode:
		nu, nm := g.NumUsers(), g.NumMerchants()
		users := s.sampleIDs(&s.uids, nu, sampleCount(nu, ratio), rng)
		merchants := s.sampleIDs(&s.vids, nm, sampleCount(nm, ratio), rng)
		return g.InducedByBothArena(&s.arena, users, merchants)
	default:
		return m.Sample(g, ratio, rng)
	}
}

// sampleIndices draws m distinct ints from [0, n) using Floyd's algorithm,
// O(m) expected time. The chosen-set is the scratch's bitset; the rng
// consumption and output order are identical to the historical map-backed
// implementation, which is what keeps fixed-seed ensembles byte-identical
// across the allocating and scratch paths.
func (s *Scratch) sampleIndices(n, m int, rng *rand.Rand) []int {
	// Restore the bitset's all-zero invariant by clearing exactly the words
	// the previous draw touched (their only set bits are that draw's — the
	// invariant held before it ran). Clear before any resize: a fresh
	// allocation below relies on the old array being discardable as
	// all-zero-equivalent.
	for _, j := range s.idx {
		s.chosenBits[j>>6] = 0
	}
	if words := (n + 63) >> 6; len(s.chosenBits) < words {
		s.chosenBits = make([]uint64, words)
	}
	out := s.idx[:0]
	for i := n - m; i < n; i++ {
		j := rng.Intn(i + 1)
		if s.chosenBits[j>>6]&(1<<(j&63)) != 0 {
			j = i
		}
		s.chosenBits[j>>6] |= 1 << (j & 63)
		out = append(out, j)
	}
	s.idx = out
	return out
}

// LastDraw exposes the node ids the most recent SampleInto drew, for callers
// that need the sampled-node set itself rather than the realized subgraph
// (the ensemble's incremental-reuse record): for ONS primary holds the drawn
// side's ids, for TNS primary holds the drawn users and secondary the drawn
// merchants. For RES the draw is edge indices, not node ids, and both slices
// are meaningless. The slices alias the scratch and are valid until the next
// SampleInto with the same scratch.
func (s *Scratch) LastDraw() (primary, secondary []uint32) {
	return s.uids, s.vids
}

func (s *Scratch) sampleIDs(buf *[]uint32, n, m int, rng *rand.Rand) []uint32 {
	idx := s.sampleIndices(n, m, rng)
	ids := scratch.Grow(buf, len(idx))
	for i, x := range idx {
		ids[i] = uint32(x)
	}
	return ids
}
