// Package sampling implements the three structural sampling methods for
// bipartite graphs from paper §IV-A: random edge sampling (RES), one-side
// node sampling (ONS) and two-side node sampling (TNS), plus the sampling
// theory helpers behind Eq. 3 and Lemma 1.
//
// All methods draw without replacement, honour a sample ratio S and are
// deterministic given the caller's *rand.Rand, which is what lets the
// ensemble layer fan samples out across goroutines reproducibly.
package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ensemfdet/internal/bipartite"
)

// Method produces one sampled subgraph from a parent graph. Implementations
// must be safe for concurrent use by multiple goroutines as long as each call
// receives its own rng.
type Method interface {
	// Name identifies the method in experiment output, e.g. "RES".
	Name() string
	// Sample draws a subgraph with the given ratio S ∈ (0, 1]. The meaning
	// of S is method-specific: fraction of edges for RES, fraction of the
	// sampled side's nodes for ONS, fraction of each side for TNS.
	Sample(g *bipartite.Graph, ratio float64, rng *rand.Rand) *bipartite.Subgraph
}

// RandomEdge is RES (§IV-A2): a uniform sample of ⌈S·|E|⌉ distinct edges;
// the subgraph contains exactly those edges and their endpoints.
type RandomEdge struct{}

// Name implements Method.
func (RandomEdge) Name() string { return "RES" }

// Sample implements Method.
func (RandomEdge) Sample(g *bipartite.Graph, ratio float64, rng *rand.Rand) *bipartite.Subgraph {
	m := sampleCount(g.NumEdges(), ratio)
	idx := sampleIndices(g.NumEdges(), m, rng)
	sort.Ints(idx)
	// Single merged pass: idx is sorted, and user-major edge ids are grouped
	// by user, so we walk users forward as we consume indices.
	edges := make([]bipartite.Edge, 0, m)
	u := uint32(0)
	for _, i := range idx {
		for {
			_, end := g.UserRowRange(u)
			if i < end {
				break
			}
			u++
		}
		edges = append(edges, bipartite.Edge{U: u, V: g.UserAdjAt(i)})
	}
	return g.InducedByEdges(edges)
}

// OneSideNode is ONS (§IV-A3): a uniform sample of ⌈S·n⌉ nodes from one
// side; sampled nodes keep all their incident edges. The paper's
// "task-oriented" and "retain topology" principles govern which Side to
// sample — for dense-subgraph detection, sample the side with the higher
// average degree (typically merchants).
type OneSideNode struct {
	Side bipartite.Side
}

// Name implements Method.
func (o OneSideNode) Name() string { return fmt.Sprintf("ONS-%s", o.Side) }

// Sample implements Method.
func (o OneSideNode) Sample(g *bipartite.Graph, ratio float64, rng *rand.Rand) *bipartite.Subgraph {
	n := g.NumNodesOn(o.Side)
	ids := sampleIDs(n, sampleCount(n, ratio), rng)
	if o.Side == bipartite.UserSide {
		return g.InducedByUsers(ids)
	}
	return g.InducedByMerchants(ids)
}

// TwoSideNode is TNS (§IV-A4): independent uniform samples of ⌈S·|U|⌉ users
// and ⌈S·|V|⌉ merchants; the subgraph is the cross-section, so its expected
// edge count is ≈ S²·|E| — callers typically enlarge S or the number of
// samples N to compensate, as the paper notes.
type TwoSideNode struct{}

// Name implements Method.
func (TwoSideNode) Name() string { return "TNS" }

// Sample implements Method.
func (TwoSideNode) Sample(g *bipartite.Graph, ratio float64, rng *rand.Rand) *bipartite.Subgraph {
	nu, nm := g.NumUsers(), g.NumMerchants()
	users := sampleIDs(nu, sampleCount(nu, ratio), rng)
	merchants := sampleIDs(nm, sampleCount(nm, ratio), rng)
	return g.InducedByBoth(users, merchants)
}

// ByName returns the sampling method with the given name, one of "RES",
// "ONS-user", "ONS-merchant", "TNS".
func ByName(name string) (Method, error) {
	switch name {
	case "RES":
		return RandomEdge{}, nil
	case "ONS-user":
		return OneSideNode{Side: bipartite.UserSide}, nil
	case "ONS-merchant":
		return OneSideNode{Side: bipartite.MerchantSide}, nil
	case "TNS":
		return TwoSideNode{}, nil
	default:
		return nil, fmt.Errorf("sampling: unknown method %q", name)
	}
}

// All returns every sampling method, in the order Figure 5 plots them.
func All() []Method {
	return []Method{
		TwoSideNode{},
		OneSideNode{Side: bipartite.MerchantSide},
		OneSideNode{Side: bipartite.UserSide},
		RandomEdge{},
	}
}

// sampleCount converts a ratio into a draw count, clamped to [0, n]; a
// positive ratio on a non-empty population draws at least one element.
func sampleCount(n int, ratio float64) int {
	if n == 0 || ratio <= 0 {
		return 0
	}
	m := int(math.Ceil(ratio * float64(n)))
	if m > n {
		m = n
	}
	return m
}

// sampleIndices draws m distinct ints from [0, n) using Floyd's algorithm,
// O(m) expected time and memory independent of n.
func sampleIndices(n, m int, rng *rand.Rand) []int {
	chosen := make(map[int]bool, m)
	out := make([]int, 0, m)
	for i := n - m; i < n; i++ {
		j := rng.Intn(i + 1)
		if chosen[j] {
			j = i
		}
		chosen[j] = true
		out = append(out, j)
	}
	return out
}

func sampleIDs(n, m int, rng *rand.Rand) []uint32 {
	idx := sampleIndices(n, m, rng)
	ids := make([]uint32, len(idx))
	for i, x := range idx {
		ids[i] = uint32(x)
	}
	return ids
}
