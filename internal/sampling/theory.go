package sampling

import "math"

// This file implements the sampling-theory quantities of paper §IV-A1:
// the expected per-degree node counts under node sampling (NS) and edge
// sampling (ES) of Eq. 3, the Lemma 1 crossover degree, and the Theorem 1
// edge-sampling probability that yields an ε-approximation of the density
// metric.

// ExpectedNSByDegree returns E_NS[d_q] = fD(q) · p_v for every degree q,
// where hist[q] = fD(q) is the number of nodes of degree q in the original
// graph and pv is the node-sampling probability.
func ExpectedNSByDegree(hist []int, pv float64) []float64 {
	out := make([]float64, len(hist))
	for q, f := range hist {
		out[q] = float64(f) * pv
	}
	return out
}

// ExpectedESByDegree returns E_ES[d_q] = fD(q) · (1 − (1−p_e)^q) for every
// degree q: under edge sampling a node survives iff at least one of its q
// edges is drawn.
func ExpectedESByDegree(hist []int, pe float64) []float64 {
	out := make([]float64, len(hist))
	for q, f := range hist {
		out[q] = float64(f) * (1 - math.Pow(1-pe, float64(q)))
	}
	return out
}

// CrossoverDegree returns the Lemma 1 threshold log(1−pv)/log(1−pe): for
// degrees strictly above it, edge sampling includes nodes at a higher rate
// than node sampling. Both probabilities must lie in (0, 1).
func CrossoverDegree(pv, pe float64) float64 {
	return math.Log(1-pv) / math.Log(1-pe)
}

// ApproximationEdgeProbability returns the Theorem 1 edge-sampling
// probability p = 3(d+2)·ln(n) / (ε²·c), clamped to (0, 1], under which the
// sampled subgraph's density score is an ε-approximation of the original's
// when the minimum degree is c = Ω(ln n). (The paper's rendering of the
// formula drops the ε² factor typographically; the cited source, Gao et al.
// ICC'16, carries it.) d is the approximation-order parameter of the cited
// theorem, n the number of vertices.
func ApproximationEdgeProbability(n int, d, eps, c float64) float64 {
	if n < 2 || eps <= 0 || c <= 0 {
		return 1
	}
	p := 3 * (d + 2) * math.Log(float64(n)) / (eps * eps * c)
	if p > 1 {
		return 1
	}
	if p <= 0 {
		return 1
	}
	return p
}
