package core

import (
	"testing"

	"ensemfdet/internal/sampling"
)

// BenchmarkClassifyClean measures delta classification across the samplers —
// the fixed per-run cost an incremental detection pays up front, before any
// dirty sample re-executes. The CI allocs gate pins allocs/op at zero: the
// clean-sample path is a bitset probe per sample and must never allocate.
func BenchmarkClassifyClean(b *testing.B) {
	gb, _ := plantedGraph(13, 300, 60, 1200, 2, 10, 4)
	delta := DeltaInfo{Users: []uint32{1, 2, 3}, Merchants: []uint32{1, 2}}
	for _, m := range sampling.All() {
		b.Run(m.Name(), func(b *testing.B) {
			cfg := Config{Method: m, NumSamples: 16, SampleRatio: 0.2, Seed: 3, Record: true}
			out, err := Run(gb, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if out.Rec == nil {
				b.Fatal("no record")
			}
			dst := make([]int, 0, out.Rec.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = classify(out.Rec, delta, 1, 3, dst[:0])
			}
		})
	}
}
