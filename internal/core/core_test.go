package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/sampling"
)

// plantedGraph embeds dense fraud blocks in a sparse background; returns the
// graph and the planted fraud user set.
func plantedGraph(seed int64, bgUsers, bgMerchants, bgEdges, numBlocks, blockUsers, blockMerchants int) (*bipartite.Graph, map[uint32]bool) {
	rng := rand.New(rand.NewSource(seed))
	nu := bgUsers + numBlocks*blockUsers
	nm := bgMerchants + numBlocks*blockMerchants
	b := bipartite.NewBuilderSized(nu, nm, 0)
	for i := 0; i < bgEdges; i++ {
		b.AddEdge(uint32(rng.Intn(bgUsers)), uint32(rng.Intn(bgMerchants)))
	}
	fraud := make(map[uint32]bool)
	for k := 0; k < numBlocks; k++ {
		for i := 0; i < blockUsers; i++ {
			u := uint32(bgUsers + k*blockUsers + i)
			fraud[u] = true
			for j := 0; j < blockMerchants; j++ {
				b.AddEdge(u, uint32(bgMerchants+k*blockMerchants+j))
			}
		}
	}
	return b.Build(), fraud
}

func testConfig() Config {
	return Config{NumSamples: 12, SampleRatio: 0.3, Seed: 1}
}

// panicSampler simulates a bug deep in the parallel phase.
type panicSampler struct{}

func (panicSampler) Name() string { return "panic" }
func (panicSampler) Sample(*bipartite.Graph, float64, *rand.Rand) *bipartite.Subgraph {
	panic("boom")
}

func TestRunSurvivesWorkerPanic(t *testing.T) {
	// A panic inside a worker goroutine must come back as Run's error, not
	// kill the process: long-running daemons recover around Run, but that
	// cannot reach goroutines Run spawns itself.
	g, _ := plantedGraph(1, 50, 50, 100, 1, 5, 5)
	_, err := Run(g, Config{Method: panicSampler{}, NumSamples: 4, SampleRatio: 0.5})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want a recovered panic error", err)
	}
}

func TestRunRecoversPlantedFraud(t *testing.T) {
	g, fraud := plantedGraph(1, 400, 400, 800, 2, 10, 10)
	out, err := Run(g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Fraud users must out-vote typical background users: at a majority
	// threshold, most accepted users are fraud.
	accepted := out.Votes.AcceptUsers(out.Votes.NumSamples / 2)
	if len(accepted) == 0 {
		t.Fatal("no users accepted at N/2 votes")
	}
	hits := 0
	for _, u := range accepted {
		if fraud[u] {
			hits++
		}
	}
	if hits < len(fraud)/2 {
		t.Errorf("only %d/%d planted fraud users accepted (|accepted|=%d)", hits, len(fraud), len(accepted))
	}
	if prec := float64(hits) / float64(len(accepted)); prec < 0.5 {
		t.Errorf("precision at N/2 = %.2f, want ≥ 0.5", prec)
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	g, _ := plantedGraph(3, 200, 200, 400, 1, 8, 8)
	cfg := testConfig()
	cfg.Parallelism = 1
	a, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	b, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Votes, b.Votes) {
		t.Error("votes differ across parallelism levels")
	}
	if !reflect.DeepEqual(a.KHats, b.KHats) {
		t.Error("kˆ values differ across parallelism levels")
	}
}

func TestRunSeedChangesVotes(t *testing.T) {
	g, _ := plantedGraph(5, 300, 300, 900, 1, 8, 8)
	cfg := testConfig()
	a, _ := Run(g, cfg)
	cfg.Seed = 999
	b, _ := Run(g, cfg)
	if reflect.DeepEqual(a.Votes.User, b.Votes.User) {
		t.Error("different seeds produced identical votes (suspicious)")
	}
}

func TestVoteMonotonicityInT(t *testing.T) {
	g, _ := plantedGraph(7, 300, 300, 600, 2, 8, 8)
	out, err := Run(g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := out.Votes.CountUsersAt(1)
	for T := 2; T <= out.Votes.NumSamples; T++ {
		cur := out.Votes.CountUsersAt(T)
		if cur > prev {
			t.Fatalf("detected count increased with T: %d→%d at T=%d", prev, cur, T)
		}
		prev = cur
	}
}

func TestPropertyAcceptSetsNested(t *testing.T) {
	// Accept(T+1) ⊆ Accept(T) for arbitrary vote vectors.
	f := func(raw []uint8) bool {
		v := Votes{User: make([]int, len(raw)), NumSamples: 16}
		for i, r := range raw {
			v.User[i] = int(r % 17)
		}
		for T := 1; T < 16; T++ {
			hi := v.AcceptUsers(T + 1)
			inLo := make(map[uint32]bool)
			for _, u := range v.AcceptUsers(T) {
				inLo[u] = true
			}
			for _, u := range hi {
				if !inLo[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUserThresholds(t *testing.T) {
	v := Votes{User: []int{0, 3, 1, 3, 7}, NumSamples: 8}
	got := v.UserThresholds()
	want := []int{1, 3, 7}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UserThresholds = %v, want %v", got, want)
	}
	if v.MaxUserVotes() != 7 {
		t.Errorf("MaxUserVotes = %d, want 7", v.MaxUserVotes())
	}
}

func TestAcceptThresholdFloor(t *testing.T) {
	v := Votes{User: []int{0, 2}, NumSamples: 4}
	// T below 1 behaves as 1: nodes with zero votes are never accepted.
	if got := v.AcceptUsers(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("AcceptUsers(0) = %v, want [1]", got)
	}
	if v.CountUsersAt(-5) != 1 {
		t.Errorf("CountUsersAt(-5) = %d, want 1", v.CountUsersAt(-5))
	}
}

func TestConfigValidation(t *testing.T) {
	g, _ := plantedGraph(9, 50, 50, 100, 1, 4, 4)
	if _, err := Run(g, Config{SampleRatio: 1.5}); err == nil {
		t.Error("S > 1 accepted")
	}
	if _, err := Run(g, Config{SampleRatio: -0.1}); err == nil {
		t.Error("S < 0 accepted")
	}
}

func TestConfigValidateTable(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring; empty means valid
	}{
		{"zero value uses defaults", Config{}, ""},
		{"explicit valid", Config{NumSamples: 80, SampleRatio: 0.1}, ""},
		{"N zero selects default", Config{NumSamples: 0}, ""},
		// Negative N is rejected, and the message must say "non-negative" —
		// the old text claimed N "must be positive" while the check only
		// rejected negatives, misleading callers about N = 0.
		{"N negative", Config{NumSamples: -1}, "non-negative"},
		{"N very negative", Config{NumSamples: -80}, "non-negative"},
		{"S above one", Config{SampleRatio: 1.01}, "sample ratio"},
		{"S negative", Config{SampleRatio: -0.5}, "sample ratio"},
		{"S boundary one", Config{SampleRatio: 1}, ""},
	}
	for _, c := range cases {
		err := c.cfg.validate()
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted, want error containing %q", c.name, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
		if strings.Contains(err.Error(), "must be positive") {
			t.Errorf("%s: error %q still uses the misleading 'must be positive' wording", c.name, err)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.method().Name() != "RES" {
		t.Errorf("default method = %q, want RES", c.method().Name())
	}
	if c.numSamples() != DefaultN || c.sampleRatio() != DefaultS {
		t.Errorf("defaults = (%d,%g), want (%d,%g)", c.numSamples(), c.sampleRatio(), DefaultN, DefaultS)
	}
	if got := (Config{NumSamples: 10, SampleRatio: 0.1}).RepetitionRate(); got != 1.0 {
		t.Errorf("R = %g, want 1", got)
	}
	// The zero value inherits both defaults: R = 0.1 × 80 = 8 (Table II).
	if got := c.RepetitionRate(); got != 8.0 {
		t.Errorf("zero-value R = %g, want 8", got)
	}
}

func TestRunCollectScores(t *testing.T) {
	g, _ := plantedGraph(11, 200, 200, 400, 2, 6, 6)
	cfg := testConfig()
	cfg.CollectScores = true
	out, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.BlockScores) != cfg.NumSamples {
		t.Fatalf("BlockScores len = %d, want %d", len(out.BlockScores), cfg.NumSamples)
	}
	nonEmpty := 0
	for i, scores := range out.BlockScores {
		if len(scores) > 0 {
			nonEmpty++
		}
		if out.KHats[i] > len(scores) {
			t.Errorf("sample %d: kˆ=%d > detected %d", i, out.KHats[i], len(scores))
		}
	}
	if nonEmpty == 0 {
		t.Error("no sample produced any block")
	}
}

func TestRunEmptyGraph(t *testing.T) {
	g := bipartite.NewBuilder().Build()
	out, err := Run(g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out.Votes.MaxUserVotes() != 0 {
		t.Error("votes on empty graph")
	}
}

func TestDetectConvenience(t *testing.T) {
	g, fraud := plantedGraph(13, 300, 300, 600, 1, 10, 10)
	users, merchants, err := Detect(g, testConfig(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) == 0 || len(merchants) == 0 {
		t.Fatalf("Detect returned empty sets (%d users, %d merchants)", len(users), len(merchants))
	}
	hits := 0
	for _, u := range users {
		if fraud[u] {
			hits++
		}
	}
	if hits == 0 {
		t.Error("Detect found no planted fraud users")
	}
}

func TestRunWithEachSampler(t *testing.T) {
	g, _ := plantedGraph(15, 200, 100, 500, 1, 8, 6)
	for _, m := range sampling.All() {
		cfg := testConfig()
		cfg.Method = m
		cfg.SampleRatio = 0.4
		out, err := Run(g, cfg)
		if err != nil {
			t.Errorf("%s: %v", m.Name(), err)
			continue
		}
		if out.Votes.NumSamples != cfg.NumSamples {
			t.Errorf("%s: NumSamples = %d", m.Name(), out.Votes.NumSamples)
		}
	}
}
