package core

import (
	"sync"

	"ensemfdet/internal/fdet"
	"ensemfdet/internal/sampling"
	"ensemfdet/internal/scratch"
)

// Arena is the scratch state of one ensemble worker: the sampler's index
// buffers and subgraph-build arena, the FDET peeler state, the per-sample
// merchant-weight buffer, the per-sample vote dedup stamps, and the
// worker-local vote accumulators. A worker claims one arena, processes many
// samples with it, and allocates nothing after the first few samples warm
// the buffers.
//
// Arenas hold scratch only — nothing in an arena influences detection
// results, which stay byte-identical for a fixed Config.Seed no matter how
// arenas are recycled (pinned by determinism tests).
type Arena struct {
	samp    sampling.Scratch
	det     fdet.Scratch
	weights []float64
	seenU   scratch.Stamps // per-sample vote dedup: a node votes once per sample
	seenV   scratch.Stamps
	// Worker-local vote accumulators in the parent id space; merged into
	// the output under one lock per worker instead of one per sample.
	userVotes  []int
	merchVotes []int
}

// ArenaPool hands out worker arenas. Run draws one arena per worker and
// returns it when the worker drains; a pool shared across Runs (the serving
// engine keeps one for the daemon's lifetime) makes steady-state detection
// effectively allocation-free. The zero value is empty and ready; arenas
// are created on demand, so a pool never blocks.
type ArenaPool struct {
	mu   sync.Mutex
	free []*Arena
}

// NewArenaPool returns an empty pool.
func NewArenaPool() *ArenaPool { return &ArenaPool{} }

func (p *ArenaPool) get() *Arena {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		a := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return a
	}
	return &Arena{}
}

func (p *ArenaPool) put(a *Arena) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, a)
}
