package core

import (
	"math"
	"reflect"
	"testing"

	"ensemfdet/internal/density"
	"ensemfdet/internal/fdet"
	"ensemfdet/internal/sampling"
)

// TestBucketHeapEquivalenceAcrossSamplersAndSeeds is the ensemble-level half
// of the bucket-peeler contract: for every sampling method and several
// seeds, an ensemble run on the O(E) bucket engine must produce votes, kˆ,
// and per-block score curves byte-identical to the same run pinned to the
// O(E log V) heap engine. Unit weights (AvgDegree) select the bucket engine;
// fdet.Options.ForceHeap pins the heap on the identical configuration.
func TestBucketHeapEquivalenceAcrossSamplersAndSeeds(t *testing.T) {
	g, _ := plantedGraph(55, 260, 240, 700, 2, 7, 7)
	for _, m := range sampling.All() {
		for _, seed := range []int64{2, 11, 23} {
			cfg := Config{
				Method:        m,
				NumSamples:    8,
				SampleRatio:   0.3,
				Seed:          seed,
				Parallelism:   4,
				CollectScores: true,
				FDet:          fdet.Options{Metric: density.AvgDegree{}},
			}
			bucket, err := Run(g, cfg)
			if err != nil {
				t.Fatalf("%s seed %d (bucket): %v", m.Name(), seed, err)
			}
			cfg.FDet.ForceHeap = true
			heap, err := Run(g, cfg)
			if err != nil {
				t.Fatalf("%s seed %d (heap): %v", m.Name(), seed, err)
			}
			if !reflect.DeepEqual(bucket.Votes, heap.Votes) {
				t.Errorf("%s seed %d: votes differ between bucket and heap engines", m.Name(), seed)
			}
			if !reflect.DeepEqual(bucket.KHats, heap.KHats) {
				t.Errorf("%s seed %d: kˆ differs between bucket and heap engines", m.Name(), seed)
			}
			if len(bucket.BlockScores) != len(heap.BlockScores) {
				t.Fatalf("%s seed %d: score spine length differs", m.Name(), seed)
			}
			for i := range bucket.BlockScores {
				bs, hs := bucket.BlockScores[i], heap.BlockScores[i]
				if len(bs) != len(hs) {
					t.Fatalf("%s seed %d: sample %d curve length differs", m.Name(), seed, i)
				}
				for j := range bs {
					if math.Float64bits(bs[j]) != math.Float64bits(hs[j]) {
						t.Errorf("%s seed %d: sample %d block %d score differs bitwise", m.Name(), seed, i, j)
					}
				}
			}
		}
	}
}
