// Incremental detection: re-run only the ensemble samples an ingest delta
// actually dirtied, reusing every other sample's recorded vote contribution.
//
// The reuse argument rests on two determinism facts. First, sample i's rng is
// derived from (Seed, i) alone, and each sampler consumes that stream as a
// pure function of its population size — |E| for RES, |U| or |V| for ONS,
// both for TNS — so when the population size is unchanged, the sample
// provably draws the same index sequence on the new graph. Second, the
// default density metric weighs each merchant by its own degree only, so a
// merchant whose adjacency the delta did not touch keeps its frozen parent
// weight. A sample is therefore clean when the delta provably leaves its
// realized subgraph and every weight it reads unchanged; the clean
// conditions are per-sampler:
//
//   - ONS-merchant: |V| unchanged and no drawn merchant touched. The
//     subgraph is the drawn merchants' rows; user-universe growth is
//     harmless because the draw never looks at |U| and untouched rows cannot
//     mention new users.
//   - ONS-user: |U| unchanged, no drawn user touched, and no realized
//     merchant touched (their weights are read).
//   - TNS: |U| and |V| unchanged and no drawn node on either side touched.
//   - RES: |E| unchanged, no realized user inside the touched-user id
//     interval, and no realized merchant touched. RES draws edge indices, so
//     the id interval argument carries the proof: every change sits in a
//     touched user's CSR row, rows below the smallest touched user keep
//     their offsets, and rows above the largest keep theirs too because the
//     net edge-count shift is zero — so an edge id resolving into a user
//     outside the interval resolves to the same (user, merchant) pair.
//
// The drawn set — not the realized subgraph — is the dependency for node
// samplers: a drawn zero-degree node is absent from the realized subgraph,
// but an edge arriving at it changes what the same draw realizes, so it must
// dirty the sample. Everything unprovable (unknown sampler, custom metric,
// changed universe size where the draw depends on it) falls back to a cold
// run via ErrNotResumable.

package core

import (
	"errors"
	"fmt"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/sampling"
	"ensemfdet/internal/scratch"
)

// ErrNotResumable reports that RunIncremental cannot prove reuse for the
// given (previous output, config, delta) and the caller must run cold. It is
// always wrapped with the specific reason; test with errors.Is.
var ErrNotResumable = errors.New("not resumable")

// reuseKind names the per-sampler clean/dirty rule a Record was built under.
type reuseKind uint8

const (
	reuseRES reuseKind = iota + 1
	reuseONSUser
	reuseONSMerchant
	reuseTNS
)

// reuseKindOf maps a sampling method to its reuse rule; ok is false for
// methods this package cannot reason about (third-party samplers).
func reuseKindOf(m sampling.Method) (reuseKind, bool) {
	switch m := m.(type) {
	case sampling.RandomEdge:
		return reuseRES, true
	case sampling.OneSideNode:
		if m.Side == bipartite.UserSide {
			return reuseONSUser, true
		}
		return reuseONSMerchant, true
	case sampling.TwoSideNode:
		return reuseTNS, true
	}
	return 0, false
}

// resumableConfig reports whether a run under cfg can be proven reusable at
// all: a custom metric or explicit weights may depend on global graph state,
// and score curves cannot be reconstructed for reused samples.
func resumableConfig(cfg Config) bool {
	return !cfg.CollectScores && cfg.FDet.Metric == nil && cfg.FDet.MerchantWeights == nil
}

// Record is the resumable state of one recorded run: per sample, the bitset
// of parent nodes the realized subgraph provably depends on and the sparse
// voted-node lists, plus the graph dimensions and config identity the proof
// is valid against. Records are immutable once their run returns; a later
// RunIncremental aliases clean samples' voted lists into its own fresh
// Record rather than mutating this one.
type Record struct {
	kind  reuseKind
	n     int
	seed  int64
	ratio float64

	// Graph dimensions at record time: the population sizes the samplers'
	// rng-consumption proof is pinned to, and the id spaces the dep bitsets
	// and voted lists index.
	numUsers, numMerchants, numEdges int

	// Per-sample dependency bitsets, n rows of wordsU/wordsM words each in
	// one spine (row i is depU[i*wordsU:(i+1)*wordsU]). What the bits mean
	// is kind-specific: drawn nodes for node samplers, realized nodes for
	// RES and for ONS-user's merchant side. wordsU is 0 for ONS-merchant,
	// whose samples depend on no individual user.
	wordsU, wordsM int
	depU, depM     []uint64

	// votedU[i]/votedM[i] are sample i's vote contribution as parent-id
	// lists (each node at most once per sample). Subtracting them undoes the
	// sample exactly; integer votes make the arithmetic lossless.
	votedU, votedM [][]uint32

	// khats[i] is sample i's truncation point, re-reported for reused
	// samples. Owned by the record (never scratch-backed).
	khats []int
}

func words(n int) int { return (n + 63) >> 6 }

func newRecord(kind reuseKind, n int, seed int64, ratio float64, g *bipartite.Graph) *Record {
	r := &Record{
		kind:         kind,
		n:            n,
		seed:         seed,
		ratio:        ratio,
		numUsers:     g.NumUsers(),
		numMerchants: g.NumMerchants(),
		numEdges:     g.NumEdges(),
		votedU:       make([][]uint32, n),
		votedM:       make([][]uint32, n),
		khats:        make([]int, n),
	}
	r.wordsU, r.wordsM = words(r.numUsers), words(r.numMerchants)
	if kind == reuseONSMerchant {
		r.wordsU = 0
	}
	if r.wordsU > 0 {
		r.depU = make([]uint64, n*r.wordsU)
	}
	if r.wordsM > 0 {
		r.depM = make([]uint64, n*r.wordsM)
	}
	return r
}

// recordDeps writes sample i's dependency bits. Rows are disjoint per
// sample, so concurrent workers recording different samples never race.
func (r *Record) recordDeps(i int, sg *bipartite.Subgraph, drawnPrim, drawnSec []uint32) {
	du := r.depU[i*r.wordsU : (i+1)*r.wordsU]
	dm := r.depM[i*r.wordsM : (i+1)*r.wordsM]
	switch r.kind {
	case reuseRES:
		setBits(du, sg.UserIDs)
		setBits(dm, sg.MerchantIDs)
	case reuseONSUser:
		setBits(du, drawnPrim)
		setBits(dm, sg.MerchantIDs)
	case reuseONSMerchant:
		setBits(dm, drawnPrim)
	case reuseTNS:
		setBits(du, drawnPrim)
		setBits(dm, drawnSec)
	}
}

func setBits(words []uint64, ids []uint32) {
	for _, id := range ids {
		words[id>>6] |= 1 << (id & 63)
	}
}

// hitAny reports whether any id below dim has its bit set in words. Ids at
// or past dim are skipped: they postdate the record's universe, so no old
// sample can depend on them.
func hitAny(words []uint64, ids []uint32, dim int) bool {
	for _, id := range ids {
		if int(id) < dim && words[id>>6]&(1<<(id&63)) != 0 {
			return true
		}
	}
	return false
}

// anyBitInRange reports whether words has any set bit in [lo, hi].
func anyBitInRange(words []uint64, lo, hi int) bool {
	if lo > hi {
		return false
	}
	loW, hiW := lo>>6, hi>>6
	loMask := ^uint64(0) << (lo & 63)
	hiMask := ^uint64(0) >> (63 - hi&63)
	if loW == hiW {
		return words[loW]&loMask&hiMask != 0
	}
	if words[loW]&loMask != 0 || words[hiW]&hiMask != 0 {
		return true
	}
	for w := loW + 1; w < hiW; w++ {
		if words[w] != 0 {
			return true
		}
	}
	return false
}

// DeltaInfo is the touched-node churn between the graph a previous output
// was computed on and the graph passed to RunIncremental: every user and
// merchant whose adjacency changed, as a conservative superset (duplicates
// and false positives allowed — they only over-invalidate; omissions would
// corrupt votes). internal/stream.Graph.Delta produces exactly this.
type DeltaInfo struct {
	Users     []uint32
	Merchants []uint32
}

// IncrementalStats reports how much work an incremental run reused.
type IncrementalStats struct {
	// Reused is the number of samples whose recorded votes were carried
	// over; Rerun is the number re-executed. They sum to NumSamples.
	Reused, Rerun int
}

// classify partitions the record's samples against the delta, appending
// dirty sample indices to dst and returning it. Allocation-free: the loops
// only test bits recorded at run time. minTU/maxTU bound the touched-user id
// interval for the RES rule (callers pass 0, -1 when no users were touched).
func classify(rec *Record, delta DeltaInfo, minTU, maxTU int, dst []int) []int {
	for i := 0; i < rec.n; i++ {
		du := rec.depU[i*rec.wordsU : (i+1)*rec.wordsU]
		dm := rec.depM[i*rec.wordsM : (i+1)*rec.wordsM]
		dirty := false
		switch rec.kind {
		case reuseRES:
			hi := maxTU
			if hi > rec.numUsers-1 {
				hi = rec.numUsers - 1
			}
			dirty = anyBitInRange(du, minTU, hi) || hitAny(dm, delta.Merchants, rec.numMerchants)
		case reuseONSUser:
			dirty = hitAny(du, delta.Users, rec.numUsers) || hitAny(dm, delta.Merchants, rec.numMerchants)
		case reuseONSMerchant:
			dirty = hitAny(dm, delta.Merchants, rec.numMerchants)
		case reuseTNS:
			dirty = hitAny(du, delta.Users, rec.numUsers) || hitAny(dm, delta.Merchants, rec.numMerchants)
		}
		if dirty {
			dst = append(dst, i)
		}
	}
	return dst
}

// RunIncremental re-computes the ensemble on g, reusing prev — a recorded
// Output produced with the same Config on an earlier version of the same
// graph — for every sample the delta provably does not affect. Dirty
// samples' old sparse votes are subtracted and the samples re-executed
// through the same spine Run uses, so the returned votes are byte-identical
// to Run(g, cfg) — reuse is proven, never approximated.
//
// delta must cover exactly the changes between prev's graph and g (a
// conservative superset of touched nodes is fine; an omission is not). The
// caller must pass the same Config that produced prev: Seed, N, S, and the
// sampling method are checked against the record, the FDet options (which
// the record cannot capture) are the caller's contract. ErrNotResumable —
// mismatched or unprovable configurations, a shrunken universe, a population
// size the sampler's draw depends on having changed — means "run cold", not
// failure; any other error is a genuine run failure.
//
// The returned Output carries a fresh Record, so incremental runs chain:
// v→v+1→v+2 each reuse the previous step's record.
func RunIncremental(g *bipartite.Graph, cfg Config, prev *Output, delta DeltaInfo) (*Output, IncrementalStats, error) {
	var st IncrementalStats
	if err := cfg.validate(); err != nil {
		return nil, st, err
	}
	if prev == nil || prev.Rec == nil {
		return nil, st, fmt.Errorf("core: %w: previous output carries no reuse record", ErrNotResumable)
	}
	rec := prev.Rec
	n, method, ratio := cfg.numSamples(), cfg.method(), cfg.sampleRatio()
	kind, ok := reuseKindOf(method)
	if !ok || !cfg.Record || !resumableConfig(cfg) {
		return nil, st, fmt.Errorf("core: %w: config cannot be proven reusable", ErrNotResumable)
	}
	if kind != rec.kind || n != rec.n || cfg.Seed != rec.seed || ratio != rec.ratio {
		return nil, st, fmt.Errorf("core: %w: config does not match the recorded run", ErrNotResumable)
	}
	nu, nm, ne := g.NumUsers(), g.NumMerchants(), g.NumEdges()
	if nu < rec.numUsers || nm < rec.numMerchants {
		return nil, st, fmt.Errorf("core: %w: node universe shrank", ErrNotResumable)
	}
	switch kind {
	case reuseRES:
		if ne != rec.numEdges {
			return nil, st, fmt.Errorf("core: %w: |E| changed, RES edge-index space shifted", ErrNotResumable)
		}
	case reuseONSUser:
		if nu != rec.numUsers {
			return nil, st, fmt.Errorf("core: %w: |U| changed, ONS-user draw stream shifted", ErrNotResumable)
		}
	case reuseONSMerchant:
		if nm != rec.numMerchants {
			return nil, st, fmt.Errorf("core: %w: |V| changed, ONS-merchant draw stream shifted", ErrNotResumable)
		}
	case reuseTNS:
		if nu != rec.numUsers || nm != rec.numMerchants {
			return nil, st, fmt.Errorf("core: %w: node universe changed, TNS draw streams shifted", ErrNotResumable)
		}
	}

	// Touched-user id interval for the RES row-offset argument.
	minTU, maxTU := 0, -1
	if kind == reuseRES && len(delta.Users) > 0 {
		minTU, maxTU = int(delta.Users[0]), int(delta.Users[0])
		for _, u := range delta.Users[1:] {
			if int(u) < minTU {
				minTU = int(u)
			}
			if int(u) > maxTU {
				maxTU = int(u)
			}
		}
	}

	var dirty []int
	if s := cfg.Scratch; s != nil {
		dirty = scratch.Grow(&s.dirty, n)[:0]
	} else {
		dirty = make([]int, 0, n)
	}
	dirty = classify(rec, delta, minTU, maxTU, dirty)
	st.Reused, st.Rerun = n-len(dirty), len(dirty)

	env := newRunEnv(g, cfg)
	newRec := env.rec
	if newRec == nil {
		// Unreachable given the checks above, but never continue without a
		// record: the chain would silently go cold.
		return nil, st, fmt.Errorf("core: %w: recording unavailable", ErrNotResumable)
	}

	// Seed the output with the previous votes (new nodes start at zero), then
	// subtract the dirty samples' old contributions; execute adds their new
	// ones. Clean samples carry everything over: votes stay by construction,
	// dep rows are copied (row widths can only have grown with the universe;
	// the prefix copy is exact because ids are stable), and voted lists are
	// aliased — records are immutable once built, so sharing is safe.
	copy(env.out.Votes.User, prev.Votes.User)
	copy(env.out.Votes.Merchant, prev.Votes.Merchant)
	for _, i := range dirty {
		for _, id := range rec.votedU[i] {
			env.out.Votes.User[id]--
		}
		for _, id := range rec.votedM[i] {
			env.out.Votes.Merchant[id]--
		}
	}
	d := 0
	for i := 0; i < n; i++ {
		if d < len(dirty) && dirty[d] == i {
			d++
			continue
		}
		env.out.KHats[i] = rec.khats[i]
		env.out.SampleWork[i] = 0
		newRec.khats[i] = rec.khats[i]
		newRec.votedU[i], newRec.votedM[i] = rec.votedU[i], rec.votedM[i]
		if rec.wordsU > 0 {
			copy(newRec.depU[i*newRec.wordsU:i*newRec.wordsU+rec.wordsU], rec.depU[i*rec.wordsU:(i+1)*rec.wordsU])
		}
		if rec.wordsM > 0 {
			copy(newRec.depM[i*newRec.wordsM:i*newRec.wordsM+rec.wordsM], rec.depM[i*rec.wordsM:(i+1)*rec.wordsM])
		}
	}
	if err := env.execute(dirty); err != nil {
		return nil, st, err
	}
	return env.out, st, nil
}
