package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/density"
	"ensemfdet/internal/fdet"
	"ensemfdet/internal/sampling"
)

// referenceVotes recomputes the ensemble votes the slow, allocating way: one
// fresh sampler draw and one fresh FDET detection per sample, vote sets
// materialized via the public union helpers. This mirrors the pre-arena
// implementation of Run and is the ground truth the zero-allocation hot
// path must match byte for byte.
func referenceVotes(t *testing.T, g *bipartite.Graph, cfg Config) Votes {
	t.Helper()
	n := cfg.numSamples()
	method := cfg.method()
	ratio := cfg.sampleRatio()
	metric := cfg.FDet.Metric
	if metric == nil {
		metric = density.Default()
	}
	parentWeights := metric.MerchantWeights(g)
	votes := Votes{
		User:       make([]int, g.NumUsers()),
		Merchant:   make([]int, g.NumMerchants()),
		NumSamples: n,
	}
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)*2_654_435_761 + 1))
		sg := method.Sample(g, ratio, rng)
		opts := cfg.FDet
		opts.MerchantWeights = make([]float64, sg.NumMerchants())
		for lv := range opts.MerchantWeights {
			opts.MerchantWeights[lv] = parentWeights[sg.ParentMerchant(uint32(lv))]
		}
		res := fdet.Detect(sg.Graph, opts)
		for _, lu := range res.DetectedUsers() {
			votes.User[sg.ParentUser(lu)]++
		}
		for _, lv := range res.DetectedMerchants() {
			votes.Merchant[sg.ParentMerchant(lv)]++
		}
	}
	return votes
}

// TestRunMatchesReferencePipeline proves the arena-backed hot path computes
// exactly the votes of the naive per-sample pipeline, for every sampling
// method. This is the tentpole's non-negotiable invariant.
func TestRunMatchesReferencePipeline(t *testing.T) {
	g, _ := plantedGraph(21, 250, 220, 600, 2, 7, 7)
	for _, m := range sampling.All() {
		cfg := Config{Method: m, NumSamples: 10, SampleRatio: 0.3, Seed: 5}
		out, err := Run(g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		want := referenceVotes(t, g, cfg)
		if !reflect.DeepEqual(out.Votes, want) {
			t.Errorf("%s: arena votes differ from reference pipeline", m.Name())
		}
	}
}

// TestRunDeterministicAcrossParallelismLevels pins the satellite contract:
// the same Seed yields identical Votes for Parallelism ∈ {1, 4, GOMAXPROCS}.
func TestRunDeterministicAcrossParallelismLevels(t *testing.T) {
	g, _ := plantedGraph(31, 300, 300, 700, 2, 8, 8)
	cfg := Config{NumSamples: 16, SampleRatio: 0.2, Seed: 9}
	var ref *Output
	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg.Parallelism = par
		out, err := Run(g, cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if ref == nil {
			ref = out
			continue
		}
		if !reflect.DeepEqual(out.Votes, ref.Votes) {
			t.Errorf("votes differ at parallelism %d", par)
		}
		if !reflect.DeepEqual(out.KHats, ref.KHats) {
			t.Errorf("kˆ values differ at parallelism %d", par)
		}
	}
}

// TestRunDeterministicWithWarmedArenas runs the ensemble twice through the
// same ArenaPool — the second run reuses every warmed buffer (remappers,
// peeler state, vote accumulators) — and again after warming the pool on a
// *different* graph and config, which is the serving engine's actual reuse
// pattern across versions. All runs must agree with a pool-free run.
func TestRunDeterministicWithWarmedArenas(t *testing.T) {
	g, _ := plantedGraph(41, 280, 260, 650, 2, 8, 8)
	cfg := Config{NumSamples: 12, SampleRatio: 0.25, Seed: 3, Parallelism: 4}
	cold, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewArenaPool()
	cfg.Arenas = pool
	first, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Votes, cold.Votes) {
		t.Error("pooled run differs from pool-free run")
	}
	if !reflect.DeepEqual(second.Votes, cold.Votes) {
		t.Error("warmed-arena rerun differs from pool-free run")
	}

	// Pollute the pool with a larger graph and different sampler, then
	// verify the original detection is still bit-for-bit reproducible.
	big, _ := plantedGraph(43, 600, 500, 2000, 3, 9, 9)
	bigCfg := Config{Method: sampling.TwoSideNode{}, NumSamples: 8, SampleRatio: 0.5, Seed: 77, Parallelism: 4, Arenas: pool}
	if _, err := Run(big, bigCfg); err != nil {
		t.Fatal(err)
	}
	third, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(third.Votes, cold.Votes) {
		t.Error("arena reuse across graphs leaked state into votes")
	}
}
