// Package core implements ENSEMFDET, the paper's primary contribution
// (§IV-C, Algorithm 2): an ensemble that oversamples a bipartite graph N
// times, runs the FDET heuristic on every sampled subgraph in parallel,
// accumulates per-node votes in the original id space, and accepts nodes by
// majority voting against a threshold T (Definition 4).
//
// The vote threshold is what gives ENSEMFDET its practicability edge over
// plain FRAUDAR: sweeping T yields a near-continuous family of detection
// sets (the smooth curves of Figures 3-9) instead of a few discrete block
// unions.
package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/density"
	"ensemfdet/internal/fdet"
	"ensemfdet/internal/sampling"
	"ensemfdet/internal/scratch"
)

// Config carries the ensemble parameters of the paper's Table II.
type Config struct {
	// Method is the structural sampler M; nil means RES.
	Method sampling.Method
	// NumSamples is N, the number of sampled graphs; 0 means DefaultN.
	NumSamples int
	// SampleRatio is S ∈ (0, 1]; 0 means DefaultS.
	SampleRatio float64
	// Parallelism bounds the worker pool; 0 means GOMAXPROCS.
	Parallelism int
	// Seed makes the whole ensemble deterministic. Sample i draws from an
	// rng seeded with Seed and i only.
	Seed int64
	// FDet configures the per-subgraph detector.
	FDet fdet.Options
	// CollectScores retains every sample's per-block score curve in the
	// output (Figure 1); costs O(N·kˆ) memory.
	CollectScores bool
	// Arenas, when non-nil, supplies the per-worker scratch arenas (sampler
	// buffers, remapper tables, peeler state, vote accumulators). Serving
	// layers share one pool across requests so the hot path stops
	// allocating once warm; nil means Run uses a private pool, which still
	// reuses arenas across the samples each worker processes. Arenas never
	// affect results — votes are byte-identical for a fixed Seed either
	// way — so the field is excluded from cache fingerprints.
	Arenas *ArenaPool
	// Scratch, when non-nil, backs the Output's per-sample arrays (KHats,
	// SampleWork, and the BlockScores spine under CollectScores) with
	// reusable buffers instead of fresh allocations. The serving layer keeps
	// a small pool of these so repeated cold detections stop allocating
	// per-run output scaffolding. The returned Output's per-sample fields
	// then alias the scratch and are invalidated by the next Run using it;
	// Votes is always freshly allocated and safe to retain. Like Arenas,
	// Scratch never affects results.
	Scratch *RunScratch
	// Record, when set, attaches a reuse Record to the Output: per sample,
	// the node set the realized subgraph provably depends on (compact
	// bitsets) and the sparse vote contribution (voted-node lists). The
	// record is what RunIncremental consumes to re-run only the samples a
	// later ingest delta dirtied. Recording is skipped — Output.Rec stays
	// nil, and the run is simply not resumable — for configurations whose
	// reuse cannot be proven: an unknown sampling method, a custom density
	// metric or explicit merchant weights (their values need not be local to
	// a merchant's own adjacency), or CollectScores (clean samples cannot
	// reconstruct their score curves). Like Arenas and Scratch, Record never
	// affects votes.
	Record bool
}

// RunScratch holds the reusable per-run output buffers selected by
// Config.Scratch. The zero value is ready; buffers grow in place. A
// RunScratch must not back two concurrent Runs.
type RunScratch struct {
	khats  []int
	work   []time.Duration
	scores [][]float64
	dirty  []int // RunIncremental's dirty-sample index list
}

// Defaults for the paper's main experimental setting (§V-C1).
const (
	DefaultN = 80
	DefaultS = 0.1
)

// RepetitionRate returns R = S × N, the expected number of times each edge
// (under RES) is covered by the ensemble (Table II).
func (c Config) RepetitionRate() float64 {
	return c.sampleRatio() * float64(c.numSamples())
}

func (c Config) method() sampling.Method {
	if c.Method == nil {
		return sampling.RandomEdge{}
	}
	return c.Method
}

func (c Config) numSamples() int {
	if c.NumSamples <= 0 {
		return DefaultN
	}
	return c.NumSamples
}

func (c Config) sampleRatio() float64 {
	if c.SampleRatio <= 0 {
		return DefaultS
	}
	return c.SampleRatio
}

func (c Config) parallelism() int {
	if c.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Parallelism
}

// ValidSampleRatio reports whether s is an acceptable sample ratio: 0 (use
// the default) or a value in (0,1]. The positive form of the range check
// also rejects NaN, which both halves of a naive `< 0 || > 1` miss — NaN
// would otherwise panic deep in the sampler. Every layer that validates S
// (facade, core, serve) must share this predicate so they cannot diverge.
func ValidSampleRatio(s float64) bool {
	return s == 0 || (s > 0 && s <= 1)
}

func (c Config) validate() error {
	if !ValidSampleRatio(c.SampleRatio) {
		return fmt.Errorf("core: sample ratio S must be in (0,1], got %g", c.SampleRatio)
	}
	if c.NumSamples < 0 {
		return fmt.Errorf("core: number of samples N must be non-negative (0 selects the default %d), got %d",
			DefaultN, c.NumSamples)
	}
	return nil
}

// Votes holds per-node vote counts in the parent graph's id space: node x
// received Votes[x] votes, one per sampled graph whose FDET output contained
// it (h_i(x) in Definition 4).
type Votes struct {
	User       []int
	Merchant   []int
	NumSamples int
}

// AcceptUsers returns the user ids with at least T votes, ascending.
func (v *Votes) AcceptUsers(t int) []uint32 { return acceptIDs(v.User, t) }

// AcceptMerchants returns the merchant ids with at least T votes, ascending.
func (v *Votes) AcceptMerchants(t int) []uint32 { return acceptIDs(v.Merchant, t) }

func acceptIDs(votes []int, t int) []uint32 {
	if t < 1 {
		t = 1
	}
	var out []uint32
	for id, n := range votes {
		if n >= t {
			out = append(out, uint32(id))
		}
	}
	return out
}

// CountUsersAt returns |{u : votes(u) ≥ T}| without materializing the set.
func (v *Votes) CountUsersAt(t int) int {
	if t < 1 {
		t = 1
	}
	n := 0
	for _, c := range v.User {
		if c >= t {
			n++
		}
	}
	return n
}

// MaxUserVotes returns the highest vote count any user received.
func (v *Votes) MaxUserVotes() int {
	m := 0
	for _, c := range v.User {
		if c > m {
			m = c
		}
	}
	return m
}

// UserThresholds returns the sorted distinct positive vote counts present
// among users; sweeping exactly these thresholds visits every distinct
// detection set.
func (v *Votes) UserThresholds() []int {
	seen := make(map[int]bool)
	for _, c := range v.User {
		if c > 0 {
			seen[c] = true
		}
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Output is the result of Run.
type Output struct {
	Votes Votes
	// BlockScores[i] is sample i's per-block φ curve (only when
	// Config.CollectScores is set).
	BlockScores [][]float64
	// KHats[i] is sample i's truncation point kˆ.
	KHats []int
	// SampleWork[i] is the serial CPU-side duration of sample i
	// (sampling + FDET). The sum is the serial cost of the parallel phase;
	// dividing by the worker count models wall time at other parallelism
	// levels (Table III's projection). A sample reused by RunIncremental
	// reports zero work.
	SampleWork []time.Duration
	// Rec is the reuse record (Config.Record); nil when recording was off or
	// the configuration is not provably resumable. Unlike the scratch-backed
	// fields above, Rec is always freshly allocated and safe to retain — it
	// is the incremental base the serving layer keeps across requests.
	Rec *Record
	// PeelRounds is the total number of peeling rounds (detected blocks,
	// pre-truncation) executed across the run's samples — the unit the
	// peeler's O(kˆ|E|) cost scales with. Samples reused by RunIncremental
	// contribute nothing, so the count measures work actually done, not
	// work implied by the ensemble size. Workers accumulate it atomically;
	// integer addition commutes, so the value is deterministic for a fixed
	// Config.
	PeelRounds int64
}

// TotalWork returns the summed serial duration of all samples.
func (o *Output) TotalWork() time.Duration {
	var total time.Duration
	for _, w := range o.SampleWork {
		total += w
	}
	return total
}

// Run executes the parallel phase of Algorithm 2 and returns the aggregated
// votes. It is deterministic for a fixed Config (including Seed) regardless
// of Parallelism.
func Run(g *bipartite.Graph, cfg Config) (*Output, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	env := newRunEnv(g, cfg)
	if err := env.execute(nil); err != nil {
		return nil, err
	}
	return env.out, nil
}

// runEnv is the shared execution spine of Run and RunIncremental: the frozen
// parent weights, the output being filled, the optional reuse record, and
// the worker machinery. Both entry points execute samples through exactly
// the same code path, which is what makes incremental votes byte-identical
// to cold ones rather than merely close.
type runEnv struct {
	g             *bipartite.Graph
	cfg           Config
	n             int
	method        sampling.Method
	ratio         float64
	parentWeights []float64
	out           *Output
	rec           *Record
	pool          *ArenaPool
}

func newRunEnv(g *bipartite.Graph, cfg Config) *runEnv {
	env := &runEnv{
		g:      g,
		cfg:    cfg,
		n:      cfg.numSamples(),
		method: cfg.method(),
		ratio:  cfg.sampleRatio(),
	}

	// Freeze the density metric's merchant weights on the parent graph so
	// every sample judges merchants by their global popularity (camouflage
	// resistance per Definition 2), not by their deflated in-sample degree.
	metric := cfg.FDet.Metric
	if metric == nil {
		metric = density.Default()
	}
	env.parentWeights = cfg.FDet.MerchantWeights
	if env.parentWeights == nil {
		env.parentWeights = metric.MerchantWeights(g)
	}

	env.out = &Output{
		Votes: Votes{
			User:       make([]int, g.NumUsers()),
			Merchant:   make([]int, g.NumMerchants()),
			NumSamples: env.n,
		},
	}
	if s := cfg.Scratch; s != nil {
		// Every index is overwritten by its sample before Run returns
		// successfully, so growing without zeroing is safe.
		env.out.KHats = scratch.Grow(&s.khats, env.n)
		env.out.SampleWork = scratch.Grow(&s.work, env.n)
		if cfg.CollectScores {
			env.out.BlockScores = scratch.Grow(&s.scores, env.n)
		}
	} else {
		env.out.KHats = make([]int, env.n)
		env.out.SampleWork = make([]time.Duration, env.n)
		if cfg.CollectScores {
			env.out.BlockScores = make([][]float64, env.n)
		}
	}

	if cfg.Record {
		if kind, ok := reuseKindOf(env.method); ok && resumableConfig(cfg) {
			env.rec = newRecord(kind, env.n, cfg.Seed, env.ratio, g)
			env.out.Rec = env.rec
		}
	}

	env.pool = cfg.Arenas
	if env.pool == nil {
		// Private pool: arenas are still recycled across the samples each
		// worker processes within this Run, just not across Runs.
		env.pool = NewArenaPool()
	}
	return env
}

// execute runs the given sample indices (nil means all n) through the worker
// pool, accumulating their votes into out.Votes on top of whatever it already
// holds. Deterministic for a fixed Config regardless of Parallelism or which
// goroutine processes which sample.
func (env *runEnv) execute(indices []int) error {
	g, cfg, out, rec := env.g, env.cfg, env.out, env.rec

	// A panic in a worker (sampler or FDET on a degenerate subgraph) must
	// not crash the process: long-running callers like the serving daemon
	// have a recover around Run, but that cannot reach goroutines spawned
	// here. Each job recovers individually — the worker keeps draining the
	// channel so the producer never blocks — and the first panic is
	// reported as the run's error.
	var (
		panicMu  sync.Mutex
		panicErr error
		voteMu   sync.Mutex
	)
	runSample := func(a *Arena, i int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicErr == nil {
					panicErr = fmt.Errorf("core: sample %d panicked: %v", i, r)
				}
				panicMu.Unlock()
			}
		}()
		//ensemfdet:nondeterministic-ok per-sample wall timing feeds SampleWork metrics, never vote bytes
		start := time.Now()
		// Each sample gets its own rng derived from (Seed, i) so
		// results do not depend on goroutine scheduling.
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)*2_654_435_761 + 1))
		sg := sampling.SampleInto(env.method, g, env.ratio, rng, &a.samp)
		if rec != nil {
			drawnPrim, drawnSec := a.samp.LastDraw()
			rec.recordDeps(i, sg, drawnPrim, drawnSec)
		}
		opts := cfg.FDet
		weights := scratch.Grow(&a.weights, sg.NumMerchants())
		for lv := range weights {
			weights[lv] = env.parentWeights[sg.ParentMerchant(uint32(lv))]
		}
		opts.MerchantWeights = weights
		res := a.det.Detect(sg.Graph, opts)
		// Cast votes in the parent id space directly off the retained
		// blocks: the stamps dedup nodes whose edges are split across
		// blocks, so each node votes at most once per sample (h_i(x) of
		// Definition 4) — no union set is ever materialized. Recording runs
		// collect each sample's voted-node list instead of bumping dense
		// worker accumulators; the lists are both the merge input and the
		// sparse vote contribution a later RunIncremental subtracts.
		a.seenU.Reset(sg.NumUsers())
		a.seenV.Reset(sg.NumMerchants())
		if rec != nil {
			var vu, vm []uint32
			for _, blk := range res.Blocks {
				for _, lu := range blk.Users {
					if a.seenU.TryAdd(int(lu)) {
						vu = append(vu, sg.ParentUser(lu))
					}
				}
				for _, lv := range blk.Merchants {
					if a.seenV.TryAdd(int(lv)) {
						vm = append(vm, sg.ParentMerchant(lv))
					}
				}
			}
			rec.votedU[i], rec.votedM[i] = vu, vm
			rec.khats[i] = res.TruncatedAt
		} else {
			for _, blk := range res.Blocks {
				for _, lu := range blk.Users {
					if a.seenU.TryAdd(int(lu)) {
						a.userVotes[sg.ParentUser(lu)]++
					}
				}
				for _, lv := range blk.Merchants {
					if a.seenV.TryAdd(int(lv)) {
						a.merchVotes[sg.ParentMerchant(lv)]++
					}
				}
			}
		}
		out.KHats[i] = res.TruncatedAt
		atomic.AddInt64(&out.PeelRounds, int64(len(res.Scores)))
		if cfg.CollectScores {
			// res.Scores aliases the worker's scratch; the retained curve
			// needs its own copy (CollectScores is the off-hot-path mode).
			out.BlockScores[i] = append([]float64(nil), res.Scores...)
		}
		//ensemfdet:nondeterministic-ok SampleWork is an observability duration, not part of the vote
		out.SampleWork[i] = time.Since(start)
	}

	var wg sync.WaitGroup
	jobs := make(chan int)
	workers := cfg.parallelism()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := env.pool.get()
			if rec == nil {
				scratch.GrowZero(&a.userVotes, g.NumUsers())
				scratch.GrowZero(&a.merchVotes, g.NumMerchants())
			}
			for i := range jobs {
				runSample(a, i)
			}
			if rec == nil {
				// Merge this worker's votes. Integer addition commutes, so
				// the merge order (worker completion order) cannot affect
				// results.
				voteMu.Lock()
				for id, c := range a.userVotes {
					if c != 0 {
						out.Votes.User[id] += c
					}
				}
				for id, c := range a.merchVotes {
					if c != 0 {
						out.Votes.Merchant[id] += c
					}
				}
				voteMu.Unlock()
			}
			env.pool.put(a)
		}()
	}
	if indices == nil {
		for i := 0; i < env.n; i++ {
			jobs <- i
		}
	} else {
		for _, i := range indices {
			jobs <- i
		}
	}
	close(jobs)
	wg.Wait()
	if panicErr != nil {
		return panicErr
	}
	if rec != nil {
		// Recording merge: add each executed sample's voted list. Serial and
		// index-ordered, hence deterministic by construction.
		if indices == nil {
			for i := 0; i < env.n; i++ {
				env.addVotes(i)
			}
		} else {
			for _, i := range indices {
				env.addVotes(i)
			}
		}
	}
	return nil
}

// addVotes folds sample i's recorded voted-node lists into the output votes.
func (env *runEnv) addVotes(i int) {
	for _, id := range env.rec.votedU[i] {
		env.out.Votes.User[id]++
	}
	for _, id := range env.rec.votedM[i] {
		env.out.Votes.Merchant[id]++
	}
}

// Detect runs the full Algorithm 2 pipeline and applies MVA at threshold T,
// returning the final fraud sets (U_final, V_final).
func Detect(g *bipartite.Graph, cfg Config, t int) (users, merchants []uint32, err error) {
	out, err := Run(g, cfg)
	if err != nil {
		return nil, nil, err
	}
	return out.Votes.AcceptUsers(t), out.Votes.AcceptMerchants(t), nil
}
