package core

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"time"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/density"
	"ensemfdet/internal/sampling"
	"ensemfdet/internal/stream"
)

// baseChurnEdges builds the seed edge set every churn script starts from: a
// sparse background plus a dense fraud block, deterministic in seed.
func baseChurnEdges(seed int64) []bipartite.Edge {
	rng := rand.New(rand.NewSource(seed))
	var edges []bipartite.Edge
	seen := map[[2]uint32]bool{}
	add := func(u, v uint32) {
		k := [2]uint32{u, v}
		if !seen[k] {
			seen[k] = true
			edges = append(edges, bipartite.Edge{U: u, V: v})
		}
	}
	for i := 0; i < 900; i++ {
		add(uint32(rng.Intn(250)), uint32(rng.Intn(50)))
	}
	// Dense block: users 250-269 × merchants 50-54.
	for u := uint32(250); u < 270; u++ {
		for v := uint32(50); v < 55; v++ {
			add(u, v)
		}
	}
	// Two remote degree-1 edges far from the busy id range; the "swap"
	// script churns here so samples that never drew them stay provably
	// clean under every sampler's rule.
	add(3000, 70)
	add(3001, 71)
	return edges
}

// churnStep mutates the stream graph and commits at least one version.
type churnStep func(t *testing.T, g *stream.Graph, base []bipartite.Edge)

var churnScripts = map[string][]churnStep{
	// Small insert batch among existing nodes.
	"insert": {
		func(t *testing.T, g *stream.Graph, base []bipartite.Edge) {
			g.Append([]bipartite.Edge{{U: 3, V: 7}, {U: 3, V: 9}, {U: 17, V: 7}})
		},
	},
	// Explicit deletions (unlearning / tombstone replay shape).
	"delete": {
		func(t *testing.T, g *stream.Graph, base []bipartite.Edge) {
			if res := g.Remove(base[:2]); res.Removed != 2 {
				t.Fatalf("Remove removed %d, want 2", res.Removed)
			}
		},
	},
	// Equal-size swap confined to the remote corner: |E| returns to the base
	// count across two commits and both node universes stay fixed, so every
	// sampler's rule — including RES's edge-index-interval argument — can
	// prove untouched samples clean.
	"swap": {
		func(t *testing.T, g *stream.Graph, base []bipartite.Edge) {
			if res := g.Remove([]bipartite.Edge{{U: 3000, V: 70}}); res.Removed != 1 {
				t.Fatalf("Remove removed %d, want 1", res.Removed)
			}
			g.Append([]bipartite.Edge{{U: 3000, V: 71}})
		},
	},
	// Window retire pass (partial, count-bounded eviction).
	"retire": {
		func(t *testing.T, g *stream.Graph, base []bipartite.Edge) {
			g.SetWindow(stream.WindowPolicy{MaxEdges: g.Stats().NumEdges - 3})
			if res := g.Retire(time.Now()); res.Removed != 3 {
				t.Fatalf("Retire removed %d, want 3", res.Removed)
			}
			g.SetWindow(stream.WindowPolicy{})
		},
		func(t *testing.T, g *stream.Graph, base []bipartite.Edge) {
			g.Append([]bipartite.Edge{{U: 9, V: 3}})
		},
	},
	// Node-universe growth: brand-new users attach to one existing merchant
	// (the fraud-burst shape ONS-merchant reuse is designed for).
	"grow": {
		func(t *testing.T, g *stream.Graph, base []bipartite.Edge) {
			g.Append([]bipartite.Edge{{U: 5000, V: 52}, {U: 5001, V: 52}, {U: 5002, V: 52}})
		},
	},
	// Multi-step chain: v→v+1→v+2→v+3, each step reusing the previous
	// step's (possibly incremental) record.
	"chain": {
		func(t *testing.T, g *stream.Graph, base []bipartite.Edge) {
			g.Append([]bipartite.Edge{{U: 11, V: 21}})
		},
		func(t *testing.T, g *stream.Graph, base []bipartite.Edge) {
			g.Append([]bipartite.Edge{{U: 12, V: 22}, {U: 13, V: 22}})
		},
		func(t *testing.T, g *stream.Graph, base []bipartite.Edge) {
			if res := g.Remove(base[10:11]); res.Removed != 1 {
				t.Fatalf("Remove removed %d, want 1", res.Removed)
			}
		},
	},
}

// TestIncrementalMatchesColdRun is the equivalence suite: across samplers ×
// seeds × shard counts × churn scripts, incremental votes must be
// byte-identical to a cold run at the same version — including chains where
// each step resumes from the previous incremental output.
func TestIncrementalMatchesColdRun(t *testing.T) {
	reusedBySampler := map[string]int{}
	for _, m := range sampling.All() {
		for _, seed := range []int64{0, 1, 2} {
			for _, shards := range []int{1, 4, 16} {
				for name, script := range churnScripts {
					t.Run(fmt.Sprintf("%s/seed%d/shards%d/%s", m.Name(), seed, shards, name), func(t *testing.T) {
						reusedBySampler[m.Name()] += runChurnScript(t, m, seed, shards, script)
					})
				}
			}
		}
	}
	// The suite must exercise real reuse, not pass vacuously through cold
	// fallbacks: every sampler has at least one script designed to keep some
	// samples provably clean ("swap" for RES, everything small for the node
	// samplers).
	for _, m := range sampling.All() {
		if reusedBySampler[m.Name()] == 0 {
			t.Errorf("sampler %s never reused a sample across the whole suite", m.Name())
		}
	}
}

func runChurnScript(t *testing.T, m sampling.Method, seed int64, shards int, script []churnStep) (reused int) {
	base := baseChurnEdges(seed + 7)
	g := stream.NewSharded(shards)
	if res := g.Append(base); res.Added != len(base) {
		t.Fatalf("base append added %d of %d", res.Added, len(base))
	}
	cfg := Config{
		Method:      m,
		NumSamples:  16,
		SampleRatio: 0.2,
		Seed:        seed,
		Parallelism: 4,
		Record:      true,
	}
	snap, ver := g.Snapshot()
	prev, err := Run(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if prev.Rec == nil {
		t.Fatal("recorded run produced no record")
	}
	for si, step := range script {
		step(t, g, base)
		snap, newVer := g.Snapshot()
		if newVer == ver {
			t.Fatalf("step %d committed nothing", si)
		}
		d, ok := g.Delta(ver, newVer)
		if !ok {
			t.Fatalf("step %d: delta %d→%d unanswerable", si, ver, newVer)
		}
		inc, st, err := RunIncremental(snap, cfg, prev, DeltaInfo{Users: d.Users, Merchants: d.Merchants})
		if errors.Is(err, ErrNotResumable) {
			// Provability fell through (e.g. RES under an |E| change): the
			// fallback is a cold run, which re-records for the next step.
			inc, err = Run(snap, cfg)
		} else if err == nil {
			reused += st.Reused
			if st.Reused+st.Rerun != 16 {
				t.Fatalf("step %d: reused %d + rerun %d != 16", si, st.Reused, st.Rerun)
			}
		}
		if err != nil {
			t.Fatalf("step %d: %v", si, err)
		}
		cold, err := Run(snap, cfg)
		if err != nil {
			t.Fatalf("step %d cold: %v", si, err)
		}
		if !slices.Equal(inc.Votes.User, cold.Votes.User) {
			t.Fatalf("step %d: user votes diverge from cold run", si)
		}
		if !slices.Equal(inc.Votes.Merchant, cold.Votes.Merchant) {
			t.Fatalf("step %d: merchant votes diverge from cold run", si)
		}
		if !slices.Equal(inc.KHats, cold.KHats) {
			t.Fatalf("step %d: khats diverge from cold run", si)
		}
		prev, ver = inc, newVer
	}
	return reused
}

// TestIncrementalSwapReusesUnderRES pins that the RES reuse rule is not
// vacuous: an equal-size swap confined to high user ids keeps samples whose
// realized users all sit below the touched interval provably clean.
func TestIncrementalSwapReusesUnderRES(t *testing.T) {
	base := baseChurnEdges(3)
	g := stream.NewSharded(4)
	g.Append(base)
	cfg := Config{Method: sampling.RandomEdge{}, NumSamples: 40, SampleRatio: 0.05, Seed: 9, Record: true}
	snap, ver := g.Snapshot()
	prev, err := Run(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Swap confined to the remote corner: the touched-user interval
	// [3000, 3000] misses every sample that did not draw the lone edge
	// there, and the touched merchants are realized by no one else.
	if res := g.Remove([]bipartite.Edge{{U: 3000, V: 70}}); res.Removed != 1 {
		t.Fatalf("Remove removed %d", res.Removed)
	}
	g.Append([]bipartite.Edge{{U: 3000, V: 71}})
	snap2, newVer := g.Snapshot()
	d, ok := g.Delta(ver, newVer)
	if !ok {
		t.Fatal("delta unanswerable")
	}
	inc, st, err := RunIncremental(snap2, cfg, prev, DeltaInfo{Users: d.Users, Merchants: d.Merchants})
	if err != nil {
		t.Fatal(err)
	}
	if st.Reused == 0 {
		t.Fatal("RES swap reused nothing; the interval rule is broken or vacuous")
	}
	cold, err := Run(snap2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(inc.Votes.User, cold.Votes.User) || !slices.Equal(inc.Votes.Merchant, cold.Votes.Merchant) {
		t.Fatal("votes diverge from cold run")
	}
}

// TestIncrementalIsolatedDrawnNodeGainsEdge pins the drawn-vs-realized
// subtlety: a drawn zero-degree merchant is absent from the realized
// subgraph, but an edge arriving at it must dirty the sample — classifying
// by realized nodes only would wrongly reuse it.
func TestIncrementalIsolatedDrawnNodeGainsEdge(t *testing.T) {
	// Merchant 40 exists (id space reaches it) but has no edges: users 0-9
	// each bought from merchants 0-3 only, and one edge to merchant 41 fixes
	// the merchant universe above 40.
	var edges []bipartite.Edge
	for u := uint32(0); u < 10; u++ {
		for v := uint32(0); v < 4; v++ {
			edges = append(edges, bipartite.Edge{U: u, V: v})
		}
	}
	edges = append(edges, bipartite.Edge{U: 10, V: 41})
	g := stream.NewSharded(1)
	g.Append(edges)
	// Ratio 1.0 draws every merchant, including isolated merchant 40.
	cfg := Config{
		Method:      sampling.OneSideNode{Side: bipartite.MerchantSide},
		NumSamples:  4,
		SampleRatio: 1.0,
		Seed:        5,
		Record:      true,
	}
	snap, ver := g.Snapshot()
	prev, err := Run(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Merchant 40 gains its first edge from an existing user: nm unchanged,
	// so the config is resumable — but every sample drew merchant 40, so all
	// must be dirty.
	g.Append([]bipartite.Edge{{U: 3, V: 40}})
	snap2, newVer := g.Snapshot()
	d, ok := g.Delta(ver, newVer)
	if !ok {
		t.Fatal("delta unanswerable")
	}
	inc, st, err := RunIncremental(snap2, cfg, prev, DeltaInfo{Users: d.Users, Merchants: d.Merchants})
	if err != nil {
		t.Fatal(err)
	}
	if st.Reused != 0 {
		t.Fatalf("reused %d samples that drew the newly-connected merchant", st.Reused)
	}
	cold, err := Run(snap2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(inc.Votes.User, cold.Votes.User) || !slices.Equal(inc.Votes.Merchant, cold.Votes.Merchant) {
		t.Fatal("votes diverge from cold run")
	}
}

// TestRunIncrementalNotResumable covers every deliberate fallback-to-cold
// path.
func TestRunIncrementalNotResumable(t *testing.T) {
	base := baseChurnEdges(1)
	g := stream.NewSharded(2)
	g.Append(base)
	snap, _ := g.Snapshot()
	cfg := Config{Method: sampling.OneSideNode{Side: bipartite.MerchantSide}, NumSamples: 8, SampleRatio: 0.3, Seed: 2, Record: true}
	prev, err := Run(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	delta := DeltaInfo{Users: []uint32{1}, Merchants: []uint32{1}}

	cases := map[string]struct {
		prev *Output
		cfg  Config
		g    *bipartite.Graph
	}{
		"no record": {prev: &Output{Votes: prev.Votes}, cfg: cfg, g: snap},
		"record off": {prev: prev, cfg: func() Config {
			c := cfg
			c.Record = false
			return c
		}(), g: snap},
		"seed mismatch": {prev: prev, cfg: func() Config {
			c := cfg
			c.Seed = 99
			return c
		}(), g: snap},
		"n mismatch": {prev: prev, cfg: func() Config {
			c := cfg
			c.NumSamples = 9
			return c
		}(), g: snap},
		"ratio mismatch": {prev: prev, cfg: func() Config {
			c := cfg
			c.SampleRatio = 0.4
			return c
		}(), g: snap},
		"sampler mismatch": {prev: prev, cfg: func() Config {
			c := cfg
			c.Method = sampling.RandomEdge{}
			return c
		}(), g: snap},
		"collect scores": {prev: prev, cfg: func() Config {
			c := cfg
			c.CollectScores = true
			return c
		}(), g: snap},
		"custom metric": {prev: prev, cfg: func() Config {
			c := cfg
			c.FDet.Metric = density.AvgDegree{}
			return c
		}(), g: snap},
	}
	for name, tc := range cases {
		if _, _, err := RunIncremental(tc.g, tc.cfg, tc.prev, delta); !errors.Is(err, ErrNotResumable) {
			t.Errorf("%s: err = %v, want ErrNotResumable", name, err)
		}
	}

	// Population-size shifts the draw depends on: |V| change for
	// ONS-merchant, |E| change for RES.
	g.Append([]bipartite.Edge{{U: 1, V: 2000}})
	snap2, _ := g.Snapshot()
	if _, _, err := RunIncremental(snap2, cfg, prev, delta); !errors.Is(err, ErrNotResumable) {
		t.Errorf("|V| growth: err = %v, want ErrNotResumable", err)
	}
	resCfg := cfg
	resCfg.Method = sampling.RandomEdge{}
	prevRES, err := Run(snap, resCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunIncremental(snap2, resCfg, prevRES, delta); !errors.Is(err, ErrNotResumable) {
		t.Errorf("|E| growth under RES: err = %v, want ErrNotResumable", err)
	}
}

// TestRecordingDoesNotChangeVotes pins that Record is observability-only:
// votes with and without it are byte-identical.
func TestRecordingDoesNotChangeVotes(t *testing.T) {
	gb, _ := plantedGraph(11, 200, 40, 800, 2, 10, 4)
	for _, m := range sampling.All() {
		cfg := Config{Method: m, NumSamples: 12, SampleRatio: 0.25, Seed: 4}
		plain, err := Run(gb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Record = true
		recorded, err := Run(gb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if recorded.Rec == nil {
			t.Fatalf("%s: no record", m.Name())
		}
		if !slices.Equal(plain.Votes.User, recorded.Votes.User) ||
			!slices.Equal(plain.Votes.Merchant, recorded.Votes.Merchant) {
			t.Fatalf("%s: recording changed votes", m.Name())
		}
	}
}

// TestClassifyCleanDoesNotAllocate is the allocs/op gate on the reuse path:
// re-classifying samples against a delta, clean or not, must not allocate
// when the dirty list is scratch-backed.
func TestClassifyCleanDoesNotAllocate(t *testing.T) {
	gb, _ := plantedGraph(13, 300, 60, 1200, 2, 10, 4)
	for _, m := range sampling.All() {
		cfg := Config{Method: m, NumSamples: 16, SampleRatio: 0.2, Seed: 3, Record: true}
		out, err := Run(gb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := out.Rec
		delta := DeltaInfo{Users: []uint32{1, 2, 3}, Merchants: []uint32{1, 2}}
		dst := make([]int, 0, rec.n)
		allocs := testing.AllocsPerRun(100, func() {
			dst = classify(rec, delta, 1, 3, dst[:0])
		})
		if allocs != 0 {
			t.Errorf("%s: classify allocated %.1f/op, want 0", m.Name(), allocs)
		}
	}
}
