package indexheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushPopOrdered(t *testing.T) {
	h := New(5)
	prios := []float64{3, 1, 4, 1.5, 0.5}
	for id, p := range prios {
		h.Push(id, p)
	}
	if h.Len() != 5 {
		t.Fatalf("Len = %d, want 5", h.Len())
	}
	wantOrder := []int{4, 1, 3, 0, 2}
	for _, want := range wantOrder {
		id, _ := h.Pop()
		if id != want {
			t.Fatalf("Pop = %d, want %d", id, want)
		}
	}
	if h.Len() != 0 {
		t.Errorf("Len after drain = %d", h.Len())
	}
}

func TestUpdateDecreaseKey(t *testing.T) {
	h := New(3)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.Update(2, 1)
	if id, p := h.Peek(); id != 2 || p != 1 {
		t.Errorf("Peek = (%d,%g), want (2,1)", id, p)
	}
	h.Update(2, 100)
	if id, _ := h.Peek(); id != 0 {
		t.Errorf("Peek after increase = %d, want 0", id)
	}
}

func TestAddDelta(t *testing.T) {
	h := New(2)
	h.Push(0, 5)
	h.Push(1, 6)
	h.Add(1, -3)
	if id, p := h.Peek(); id != 1 || p != 3 {
		t.Errorf("Peek = (%d,%g), want (1,3)", id, p)
	}
}

func TestRemove(t *testing.T) {
	h := New(4)
	for i := 0; i < 4; i++ {
		h.Push(i, float64(i))
	}
	h.Remove(0) // remove the min
	if id, _ := h.Peek(); id != 1 {
		t.Errorf("Peek after Remove(0) = %d, want 1", id)
	}
	h.Remove(2) // remove from the middle
	if h.Contains(2) {
		t.Error("Contains(2) after Remove")
	}
	if h.Len() != 2 {
		t.Errorf("Len = %d, want 2", h.Len())
	}
}

func TestContainsAndPriority(t *testing.T) {
	h := New(2)
	h.Push(1, 7)
	if !h.Contains(1) || h.Contains(0) {
		t.Error("Contains wrong")
	}
	if h.Priority(1) != 7 {
		t.Errorf("Priority = %g, want 7", h.Priority(1))
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	h := New(2)
	mustPanic("Pop empty", func() { h.Pop() })
	mustPanic("Peek empty", func() { h.Peek() })
	mustPanic("Update absent", func() { h.Update(0, 1) })
	mustPanic("Remove absent", func() { h.Remove(0) })
	h.Push(0, 1)
	mustPanic("double Push", func() { h.Push(0, 2) })
}

func TestPropertyHeapSort(t *testing.T) {
	// Pushing random priorities and draining must yield sorted order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		h := New(n)
		prios := make([]float64, n)
		for i := range prios {
			prios[i] = rng.NormFloat64()
			h.Push(i, prios[i])
		}
		var got []float64
		for h.Len() > 0 {
			_, p := h.Pop()
			got = append(got, p)
		}
		return sort.Float64sAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRandomOps(t *testing.T) {
	// A random interleaving of push/update/remove/pop keeps the heap
	// consistent with a naive model.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 64
		h := New(n)
		model := make(map[int]float64)
		for step := 0; step < 500; step++ {
			id := rng.Intn(n)
			switch op := rng.Intn(4); op {
			case 0: // push
				if _, ok := model[id]; !ok {
					p := rng.Float64()
					model[id] = p
					h.Push(id, p)
				}
			case 1: // update
				if _, ok := model[id]; ok {
					p := rng.Float64()
					model[id] = p
					h.Update(id, p)
				}
			case 2: // remove
				if _, ok := model[id]; ok {
					delete(model, id)
					h.Remove(id)
				}
			case 3: // pop
				if len(model) > 0 {
					got, p := h.Pop()
					want, ok := model[got]
					if !ok || want != p {
						return false
					}
					for _, mp := range model {
						if mp < p {
							return false
						}
					}
					delete(model, got)
				}
			}
			if h.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestResetReuse(t *testing.T) {
	h := New(4)
	h.Push(0, 3)
	h.Push(3, 1)
	// Reset to a larger capacity: old members must be gone, new ids usable.
	h.Reset(8)
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", h.Len())
	}
	for id := 0; id < 8; id++ {
		if h.Contains(id) {
			t.Errorf("id %d survived Reset", id)
		}
	}
	h.Push(7, 2)
	h.Push(3, 1)
	h.Push(0, 5)
	if id, p := h.Pop(); id != 3 || p != 1 {
		t.Errorf("Pop = (%d,%g), want (3,1)", id, p)
	}
	// Shrink: capacity stays, semantics follow the new bound.
	h.Reset(2)
	h.Push(1, 9)
	if id, _ := h.Pop(); id != 1 {
		t.Errorf("Pop after shrink = %d, want 1", id)
	}
}

func TestBulkBuildMatchesOrderedPushes(t *testing.T) {
	// PushUnordered+Heapify must drain in the same (priority, id) order as
	// ordered Pushes — the peeler's determinism contract.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		prios := make([]float64, n)
		for i := range prios {
			prios[i] = float64(rng.Intn(8)) // coarse: force priority ties
		}
		a, b := New(n), New(n)
		for i, p := range prios {
			a.Push(i, p)
			b.PushUnordered(i, p)
		}
		b.Heapify()
		for a.Len() > 0 {
			ia, pa := a.Pop()
			ib, pb := b.Pop()
			if ia != ib || pa != pb {
				return false
			}
		}
		return b.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAddIfPresent(t *testing.T) {
	h := New(3)
	h.Push(0, 5)
	h.Push(1, 6)
	if !h.AddIfPresent(1, -4) {
		t.Fatal("AddIfPresent(queued id) = false")
	}
	if id, p := h.Peek(); id != 1 || p != 2 {
		t.Fatalf("Peek = (%d,%g), want (1,2)", id, p)
	}
	if h.AddIfPresent(2, 1) {
		t.Fatal("AddIfPresent(absent id) = true")
	}
	if h.Contains(2) {
		t.Fatal("Contains(absent id) = true")
	}
}

func TestZeroValueReset(t *testing.T) {
	var h Heap
	h.Reset(3)
	h.Push(2, 1.5)
	if id, p := h.Peek(); id != 2 || p != 1.5 {
		t.Errorf("Peek = (%d,%g), want (2,1.5)", id, p)
	}
}
