// Package indexheap provides an indexed binary min-heap over the node ids of
// a graph, supporting O(log n) decrease/increase-key by id. It is the
// "minimal heap" the paper relies on for FDET's O(kˆ|E| log(|U|+|V|)) bound
// (§IV-B): greedy peeling repeatedly pops the minimum-priority node and
// lowers the priorities of its neighbours.
package indexheap

// Heap is an indexed min-heap of float64 priorities keyed by dense int ids in
// [0, capacity). Construct with New, or Reset a zero value.
type Heap struct {
	ids   []int32 // heap array of ids
	pos   []int32 // pos[id] = index in ids, or -1 if absent
	prio  []float64
	count int
}

const absent = int32(-1)

// New returns a heap able to hold ids in [0, capacity).
func New(capacity int) *Heap {
	h := &Heap{}
	h.Reset(capacity)
	return h
}

// Reset empties the heap and prepares it for ids in [0, capacity), growing
// storage only when the capacity exceeds anything seen before. It costs
// O(capacity) — the same as New — but allocates nothing once warm, which is
// what lets a peeler run round after round without heap churn.
func (h *Heap) Reset(capacity int) {
	if cap(h.pos) < capacity {
		h.pos = make([]int32, capacity)
		h.prio = make([]float64, capacity)
		h.ids = make([]int32, 0, capacity)
	}
	h.pos = h.pos[:capacity]
	h.prio = h.prio[:capacity]
	h.ids = h.ids[:0]
	h.count = 0
	for i := range h.pos {
		h.pos[i] = absent
	}
}

// Len returns the number of ids currently in the heap.
func (h *Heap) Len() int { return h.count }

// Contains reports whether id is in the heap.
func (h *Heap) Contains(id int) bool { return h.pos[id] != absent }

// Priority returns the current priority of id. It must be in the heap.
func (h *Heap) Priority(id int) float64 { return h.prio[id] }

// Push inserts id with the given priority. It panics if id is already
// present; use Update to change an existing priority.
func (h *Heap) Push(id int, priority float64) {
	if h.pos[id] != absent {
		panic("indexheap: Push of id already in heap")
	}
	h.prio[id] = priority
	h.ids = append(h.ids, int32(id))
	h.pos[id] = int32(h.count)
	h.count++
	h.up(h.count - 1)
}

// Pop removes and returns the id with minimum priority and that priority.
// Ties are broken arbitrarily but deterministically. It panics on an empty
// heap.
func (h *Heap) Pop() (id int, priority float64) {
	if h.count == 0 {
		panic("indexheap: Pop from empty heap")
	}
	top := h.ids[0]
	h.swap(0, h.count-1)
	h.ids = h.ids[:h.count-1]
	h.count--
	h.pos[top] = absent
	if h.count > 0 {
		h.down(0)
	}
	return int(top), h.prio[top]
}

// Peek returns the minimum id and priority without removing it.
func (h *Heap) Peek() (id int, priority float64) {
	if h.count == 0 {
		panic("indexheap: Peek of empty heap")
	}
	return int(h.ids[0]), h.prio[h.ids[0]]
}

// Update changes the priority of id, restoring heap order in O(log n).
// It panics if id is not in the heap.
func (h *Heap) Update(id int, priority float64) {
	i := h.pos[id]
	if i == absent {
		panic("indexheap: Update of id not in heap")
	}
	old := h.prio[id]
	h.prio[id] = priority
	switch {
	case priority < old:
		h.up(int(i))
	case priority > old:
		h.down(int(i))
	}
}

// Add increments the priority of id by delta (delta may be negative).
func (h *Heap) Add(id int, delta float64) {
	h.Update(id, h.prio[id]+delta)
}

// Remove deletes id from the heap regardless of its position.
func (h *Heap) Remove(id int) {
	i := h.pos[id]
	if i == absent {
		panic("indexheap: Remove of id not in heap")
	}
	h.swap(int(i), h.count-1)
	h.ids = h.ids[:h.count-1]
	h.count--
	h.pos[id] = absent
	if int(i) < h.count {
		h.down(int(i))
		h.up(int(i))
	}
}

func (h *Heap) less(i, j int) bool {
	pi, pj := h.prio[h.ids[i]], h.prio[h.ids[j]]
	if pi != pj {
		return pi < pj
	}
	// Deterministic tie-break on id keeps peeling reproducible across runs.
	return h.ids[i] < h.ids[j]
}

func (h *Heap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.pos[h.ids[i]] = int32(i)
	h.pos[h.ids[j]] = int32(j)
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < h.count && h.less(l, smallest) {
			smallest = l
		}
		if r < h.count && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
