// Package indexheap provides an indexed min-heap over the node ids of a
// graph, supporting O(log n) decrease/increase-key by id. It is the
// "minimal heap" the paper relies on for FDET's O(kˆ|E| log(|U|+|V|)) bound
// (§IV-B): greedy peeling repeatedly pops the minimum-priority node and
// lowers the priorities of its neighbours.
//
// The heap is 4-ary with (priority, id) stored inline in the heap slots: a
// sift compares against up to four children that share one or two cache
// lines, and never chases a pos/prio indirection per comparison the way the
// classic ids[]+prio[] layout does. Sifts move slots hole-style (one write
// per level instead of a swap's two). Ties are broken toward the lower id,
// making the pop sequence a total order on (priority, id) — the property
// the FDET peeler's determinism contract is built on.
package indexheap

// slot is one heap entry. Keeping the priority next to the id means a
// comparison touches only the heap array.
type slot struct {
	prio float64
	id   int32
}

// Heap is an indexed min-heap of float64 priorities keyed by dense int ids in
// [0, capacity). Construct with New, or Reset a zero value.
type Heap struct {
	slots []slot
	pos   []int32 // pos[id] = index in slots, or -1 if absent
	count int
}

const absent = int32(-1)

// New returns a heap able to hold ids in [0, capacity).
func New(capacity int) *Heap {
	h := &Heap{}
	h.Reset(capacity)
	return h
}

// Reset empties the heap and prepares it for ids in [0, capacity), growing
// storage only when the capacity exceeds anything seen before. It costs
// O(capacity) — the same as New — but allocates nothing once warm, which is
// what lets a peeler run round after round without heap churn.
func (h *Heap) Reset(capacity int) {
	if cap(h.pos) < capacity {
		h.pos = make([]int32, capacity)
		h.slots = make([]slot, 0, capacity)
	}
	h.pos = h.pos[:capacity]
	h.slots = h.slots[:0]
	h.count = 0
	for i := range h.pos {
		h.pos[i] = absent
	}
}

// Len returns the number of ids currently in the heap.
func (h *Heap) Len() int { return h.count }

// Contains reports whether id is in the heap.
func (h *Heap) Contains(id int) bool { return h.pos[id] != absent }

// Priority returns the current priority of id. It must be in the heap.
func (h *Heap) Priority(id int) float64 { return h.slots[h.pos[id]].prio }

// Push inserts id with the given priority. It panics if id is already
// present; use Update to change an existing priority.
func (h *Heap) Push(id int, priority float64) {
	h.PushUnordered(id, priority)
	h.up(h.count - 1)
}

// PushUnordered appends id without restoring heap order. It exists for bulk
// builds: n PushUnordered calls followed by one Heapify cost O(n) instead of
// the O(n log n) of n ordered Pushes. The heap must not be read between the
// first PushUnordered and the Heapify.
func (h *Heap) PushUnordered(id int, priority float64) {
	if h.pos[id] != absent {
		panic("indexheap: Push of id already in heap")
	}
	h.pos[id] = int32(h.count)
	h.slots = append(h.slots, slot{prio: priority, id: int32(id)})
	h.count++
}

// Heapify restores heap order after a bulk of PushUnordered calls using
// Floyd's bottom-up construction. The resulting pop sequence is identical to
// that of ordered Pushes: pops follow the (priority, id) total order, which
// does not depend on the heap's internal layout.
func (h *Heap) Heapify() {
	for i := (h.count - 2) >> 2; i >= 0; i-- {
		h.down(i)
	}
}

// Pop removes and returns the id with minimum priority and that priority.
// Ties are broken toward the lower id. It panics on an empty heap.
func (h *Heap) Pop() (id int, priority float64) {
	if h.count == 0 {
		panic("indexheap: Pop from empty heap")
	}
	top := h.slots[0]
	h.count--
	last := h.slots[h.count]
	h.slots = h.slots[:h.count]
	h.pos[top.id] = absent
	if h.count > 0 {
		h.slots[0] = last
		h.pos[last.id] = 0
		h.down(0)
	}
	return int(top.id), top.prio
}

// Peek returns the minimum id and priority without removing it.
func (h *Heap) Peek() (id int, priority float64) {
	if h.count == 0 {
		panic("indexheap: Peek of empty heap")
	}
	return int(h.slots[0].id), h.slots[0].prio
}

// Update changes the priority of id, restoring heap order in O(log n).
// It panics if id is not in the heap.
func (h *Heap) Update(id int, priority float64) {
	i := h.pos[id]
	if i == absent {
		panic("indexheap: Update of id not in heap")
	}
	old := h.slots[i].prio
	h.slots[i].prio = priority
	switch {
	case priority < old:
		h.up(int(i))
	case priority > old:
		h.down(int(i))
	}
}

// Add increments the priority of id by delta (delta may be negative). It
// panics if id is not in the heap.
func (h *Heap) Add(id int, delta float64) {
	i := h.pos[id]
	if i == absent {
		panic("indexheap: Add of id not in heap")
	}
	h.addAt(int(i), delta)
}

// AddIfPresent increments the priority of id by delta when id is in the
// heap, fusing the peeler's Contains+Add pair into a single pos lookup. It
// reports whether id was present.
func (h *Heap) AddIfPresent(id int, delta float64) bool {
	i := h.pos[id]
	if i == absent {
		return false
	}
	h.addAt(int(i), delta)
	return true
}

func (h *Heap) addAt(i int, delta float64) {
	h.slots[i].prio += delta
	switch {
	case delta < 0:
		h.up(i)
	case delta > 0:
		h.down(i)
	}
}

// Remove deletes id from the heap regardless of its position.
func (h *Heap) Remove(id int) {
	i := int(h.pos[id])
	if i == int(absent) {
		panic("indexheap: Remove of id not in heap")
	}
	h.count--
	last := h.slots[h.count]
	h.slots = h.slots[:h.count]
	h.pos[id] = absent
	if i < h.count {
		h.slots[i] = last
		h.pos[last.id] = int32(i)
		h.down(i)
		h.up(i)
	}
}

// less orders slots by (priority, id); the id tie-break keeps peeling
// deterministic across runs and across queue implementations.
func less(a, b slot) bool {
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.id < b.id
}

// up sifts the slot at i toward the root, hole-style: the moving slot is
// held in a register while parents shift down, costing one slot write and
// one pos write per level.
func (h *Heap) up(i int) {
	s := h.slots[i]
	for i > 0 {
		parent := (i - 1) >> 2
		ps := h.slots[parent]
		if !less(s, ps) {
			break
		}
		h.slots[i] = ps
		h.pos[ps.id] = int32(i)
		i = parent
	}
	h.slots[i] = s
	h.pos[s.id] = int32(i)
}

// down sifts the slot at i toward the leaves. The four children occupy
// adjacent slots, so the min-child scan is a sequential read.
func (h *Heap) down(i int) {
	s := h.slots[i]
	n := h.count
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m, ms := c, h.slots[c]
		for j := c + 1; j < end; j++ {
			if js := h.slots[j]; less(js, ms) {
				m, ms = j, js
			}
		}
		if !less(ms, s) {
			break
		}
		h.slots[i] = ms
		h.pos[ms.id] = int32(i)
		i = m
	}
	h.slots[i] = s
	h.pos[s.id] = int32(i)
}
