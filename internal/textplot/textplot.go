// Package textplot renders small scatter/line plots as ASCII text. The
// experiment harness uses it to print the paper's figures (PR curves,
// block-score curves, parameter sweeps) directly in terminal output next to
// the numeric series they are drawn from.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line/point set. X and Y must have equal length;
// NaN/Inf points are skipped.
type Series struct {
	Name   string
	Marker rune
	X, Y   []float64
}

// Plot is a single chart. The zero value is unusable; construct with New.
type Plot struct {
	title          string
	xLabel, yLabel string
	width, height  int
	series         []Series
}

// New returns an empty plot with the default 72x20 character canvas.
func New(title, xLabel, yLabel string) *Plot {
	return &Plot{title: title, xLabel: xLabel, yLabel: yLabel, width: 72, height: 20}
}

// SetSize overrides the canvas size in characters (minimums 16x6 enforced).
func (p *Plot) SetSize(width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	p.width, p.height = width, height
}

// Add appends a series. Markers default to a per-series letter when 0.
func (p *Plot) Add(s Series) {
	if s.Marker == 0 {
		s.Marker = rune('a' + len(p.series)%26)
	}
	p.series = append(p.series, s)
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Render draws the plot. Plots with no finite points render a placeholder
// body so harness output stays aligned.
func (p *Plot) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", p.title)

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range p.series {
		for i := range s.X {
			if i >= len(s.Y) || !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			points++
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if points == 0 {
		sb.WriteString("  (no data)\n")
		return sb.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, p.height)
	for r := range grid {
		grid[r] = make([]rune, p.width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for _, s := range p.series {
		for i := range s.X {
			if i >= len(s.Y) || !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			c := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(p.width-1)))
			r := p.height - 1 - int(math.Round((s.Y[i]-minY)/(maxY-minY)*float64(p.height-1)))
			grid[r][c] = s.Marker
		}
	}

	yLo, yHi := fmt.Sprintf("%.3g", minY), fmt.Sprintf("%.3g", maxY)
	margin := len(yLo)
	if len(yHi) > margin {
		margin = len(yHi)
	}
	for r := 0; r < p.height; r++ {
		label := strings.Repeat(" ", margin)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", margin, yHi)
		case p.height - 1:
			label = fmt.Sprintf("%*s", margin, yLo)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, strings.TrimRight(string(grid[r]), " "))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", p.width))
	fmt.Fprintf(&sb, "%s  %-*s%s\n", strings.Repeat(" ", margin), p.width-len(fmt.Sprintf("%.3g", maxX)), fmt.Sprintf("%.3g", minX), fmt.Sprintf("%.3g", maxX))
	if p.xLabel != "" || p.yLabel != "" {
		fmt.Fprintf(&sb, "%s  x: %s, y: %s\n", strings.Repeat(" ", margin), p.xLabel, p.yLabel)
	}
	for _, s := range p.series {
		fmt.Fprintf(&sb, "%s  [%c] %s\n", strings.Repeat(" ", margin), s.Marker, s.Name)
	}
	return sb.String()
}
