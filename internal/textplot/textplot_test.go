package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	p := New("test plot", "recall", "precision")
	p.Add(Series{Name: "method A", Marker: '*', X: []float64{0, 0.5, 1}, Y: []float64{1, 0.5, 0}})
	out := p.Render()
	for _, want := range []string{"test plot", "[*] method A", "x: recall, y: precision", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	p := New("empty", "x", "y")
	out := p.Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty plot did not render placeholder:\n%s", out)
	}
	p.Add(Series{Name: "nan only", X: []float64{math.NaN()}, Y: []float64{1}})
	if !strings.Contains(p.Render(), "(no data)") {
		t.Error("NaN-only series should count as no data")
	}
}

func TestRenderDegenerateRange(t *testing.T) {
	p := New("flat", "x", "y")
	p.Add(Series{Name: "s", X: []float64{1, 1, 1}, Y: []float64{2, 2, 2}})
	out := p.Render()
	if strings.Contains(out, "(no data)") {
		t.Error("flat series should still render")
	}
}

func TestDefaultMarkers(t *testing.T) {
	p := New("m", "x", "y")
	p.Add(Series{Name: "one", X: []float64{0}, Y: []float64{0}})
	p.Add(Series{Name: "two", X: []float64{1}, Y: []float64{1}})
	out := p.Render()
	if !strings.Contains(out, "[a] one") || !strings.Contains(out, "[b] two") {
		t.Errorf("default markers wrong:\n%s", out)
	}
}

func TestSetSizeClamps(t *testing.T) {
	p := New("s", "x", "y")
	p.SetSize(1, 1)
	p.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}})
	out := p.Render()
	lines := strings.Split(out, "\n")
	if len(lines) < 6 {
		t.Errorf("clamped canvas too small:\n%s", out)
	}
}

func TestMismatchedXYLengths(t *testing.T) {
	p := New("mm", "x", "y")
	p.Add(Series{Name: "s", X: []float64{0, 1, 2}, Y: []float64{5}})
	out := p.Render() // must not panic; extra X values ignored
	if strings.Contains(out, "(no data)") {
		t.Error("series with one valid point should render")
	}
}
