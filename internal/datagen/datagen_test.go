package datagen

import (
	"math"
	"testing"

	"ensemfdet/internal/bipartite"
)

func smallConfig() Config {
	return Config{
		Name:                "test",
		Seed:                1,
		BackgroundUsers:     2000,
		BackgroundMerchants: 1000,
		BackgroundEdges:     5000,
		Groups: []GroupSpec{
			{Users: 40, Merchants: 12, Density: 0.5, CamouflagePerUser: 1},
			{Users: 25, Merchants: 10, Density: 0.6},
		},
		MissingLabelRate: 0.2,
		FalseLabelRate:   0.25,
	}
}

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Graph.NumUsers() != 2000+65 {
		t.Errorf("users = %d, want 2065", ds.Graph.NumUsers())
	}
	if ds.Graph.NumMerchants() != 1000+22 {
		t.Errorf("merchants = %d, want 1022", ds.Graph.NumMerchants())
	}
	if len(ds.TrueFraudUsers) != 65 {
		t.Errorf("planted fraud = %d, want 65", len(ds.TrueFraudUsers))
	}
	if len(ds.FraudGroups) != 2 {
		t.Errorf("groups = %d, want 2", len(ds.FraudGroups))
	}
	if err := ds.Graph.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Error("edge counts differ across identical configs")
	}
	if a.Labels.NumFraud != b.Labels.NumFraud {
		t.Error("blacklists differ across identical configs")
	}
}

func TestGenerateFraudBlocksAreDense(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Each planted group's users should have degree ≈ density·merchants +
	// camouflage, far above the background average.
	bgAvg := float64(5000) / 2000
	for gi, group := range ds.FraudGroups {
		avg := 0.0
		for _, u := range group {
			avg += float64(ds.Graph.UserDegree(u))
		}
		avg /= float64(len(group))
		if avg < 2*bgAvg {
			t.Errorf("group %d avg degree %.1f not ≫ background %.1f", gi, avg, bgAvg)
		}
	}
}

func TestGenerateBlacklistNoise(t *testing.T) {
	cfg := smallConfig()
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	planted := make(map[uint32]bool)
	for _, u := range ds.TrueFraudUsers {
		planted[u] = true
	}
	listedPlanted, listedHonest := 0, 0
	for u := 0; u < ds.Graph.NumUsers(); u++ {
		if !ds.Labels.Fraud[u] {
			continue
		}
		if planted[uint32(u)] {
			listedPlanted++
		} else {
			listedHonest++
		}
	}
	if listedPlanted == len(ds.TrueFraudUsers) {
		t.Error("no missing labels despite MissingLabelRate > 0")
	}
	if listedPlanted < len(ds.TrueFraudUsers)/2 {
		t.Errorf("too many missing labels: %d/%d listed", listedPlanted, len(ds.TrueFraudUsers))
	}
	if listedHonest == 0 {
		t.Error("no false labels despite FalseLabelRate > 0")
	}
}

func TestGenerateMerchantSkew(t *testing.T) {
	// Zipf popularity: the busiest merchant must dwarf the median one, and
	// Davg(merchant) > Davg(user) as §V-C2 assumes.
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	if g.MaxDegree(bipartite.MerchantSide) < 10*g.DegreeQuantile(bipartite.MerchantSide, 0.5) {
		t.Errorf("merchant popularity not heavy-tailed: max=%d median=%d",
			g.MaxDegree(bipartite.MerchantSide), g.DegreeQuantile(bipartite.MerchantSide, 0.5))
	}
	if g.AvgDegree(bipartite.MerchantSide) <= g.AvgDegree(bipartite.UserSide) {
		t.Errorf("Davg(merchant)=%.2f not above Davg(user)=%.2f",
			g.AvgDegree(bipartite.MerchantSide), g.AvgDegree(bipartite.UserSide))
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{BackgroundUsers: 0, BackgroundMerchants: 10},
		{BackgroundUsers: 10, BackgroundMerchants: 0},
		{BackgroundUsers: 10, BackgroundMerchants: 10, Groups: []GroupSpec{{Users: 0, Merchants: 1, Density: 0.5}}},
		{BackgroundUsers: 10, BackgroundMerchants: 10, Groups: []GroupSpec{{Users: 1, Merchants: 1, Density: 0}}},
		{BackgroundUsers: 10, BackgroundMerchants: 10, Groups: []GroupSpec{{Users: 1, Merchants: 1, Density: 1.5}}},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestPresetStatsNearTableI(t *testing.T) {
	const scale = 0.01
	for _, id := range AllPresets() {
		ds, err := GeneratePreset(id, scale, 7)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		target, err := TableITarget(id, scale)
		if err != nil {
			t.Fatal(err)
		}
		s := ds.Stats()
		within := func(name string, got, want int, tolFrac float64) {
			tol := int(float64(want) * tolFrac)
			if got < want-tol || got > want+tol {
				t.Errorf("%v %s = %d, want %d ± %d", id, name, got, want, tol)
			}
		}
		within("users", s.Users, target.Users, 0.1)
		within("merchants", s.Merchants, target.Merchants, 0.1)
		within("edges", s.Edges, target.Edges, 0.25)
		within("fraud PINs", s.FraudPINs, target.FraudPINs, 0.25)
	}
}

func TestPresetInvalid(t *testing.T) {
	if _, err := Preset(PresetID(99), 0.1, 1); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := Preset(Dataset1, 0, 1); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := Preset(Dataset1, 1.5, 1); err == nil {
		t.Error("scale > 1 accepted")
	}
	if _, err := TableITarget(PresetID(99), 0.1); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestPresetFraudRatesDiffer(t *testing.T) {
	// Dataset #2 has a much lower fraud rate than #1 and #3 in Table I; the
	// presets must preserve the ordering.
	rates := map[PresetID]float64{}
	for _, id := range AllPresets() {
		ds, err := GeneratePreset(id, 0.01, 3)
		if err != nil {
			t.Fatal(err)
		}
		s := ds.Stats()
		rates[id] = float64(s.FraudPINs) / float64(s.Users)
	}
	if !(rates[Dataset2] < rates[Dataset1] && rates[Dataset2] < rates[Dataset3]) {
		t.Errorf("fraud-rate ordering wrong: %v", rates)
	}
}

func TestEstimatedFraudEdges(t *testing.T) {
	groups := []GroupSpec{{Users: 10, Merchants: 10, Density: 0.5, CamouflagePerUser: 2}}
	if got := estimatedFraudEdges(groups); got != 50+20 {
		t.Errorf("estimate = %d, want 70", got)
	}
}

func TestStatsString(t *testing.T) {
	if Dataset1.String() != "Dataset #1" {
		t.Errorf("String = %q", Dataset1.String())
	}
	if math.Signbit(float64(Dataset3)) {
		t.Error("preset ids must be positive")
	}
}
