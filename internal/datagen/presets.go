package datagen

import (
	"fmt"
	"math/rand"
)

// PresetID selects one of the paper's three Table I datasets.
type PresetID int

// The three JD.com transaction datasets of Table I.
const (
	Dataset1 PresetID = iota + 1
	Dataset2
	Dataset3
)

// String implements fmt.Stringer.
func (p PresetID) String() string { return fmt.Sprintf("Dataset #%d", int(p)) }

// tableIRow holds the paper's Table I targets at full scale.
type tableIRow struct {
	users     int
	fraudPINs int
	merchants int
	edges     int
}

var tableI = map[PresetID]tableIRow{
	Dataset1: {users: 454_925, fraudPINs: 24_247, merchants: 226_585, edges: 1_023_846},
	Dataset2: {users: 2_194_325, fraudPINs: 16_035, merchants: 120_867, edges: 2_790_517},
	Dataset3: {users: 4_332_696, fraudPINs: 101_702, merchants: 556_634, edges: 7_997_696},
}

// Preset returns the Config mirroring one of Table I's datasets at the given
// scale ∈ (0, 1] (1.0 reproduces the paper's full node/edge counts; tests
// use ~0.02). Fraud is split into groups whose sizes vary pseudo-randomly
// under the preset's seed, matching the paper's observation that "there are
// usually multiple groups of fraudsters in the same period".
func Preset(id PresetID, scale float64, seed int64) (Config, error) {
	row, ok := tableI[id]
	if !ok {
		return Config{}, fmt.Errorf("datagen: unknown preset %d", int(id))
	}
	if scale <= 0 || scale > 1 {
		return Config{}, fmt.Errorf("datagen: scale %g out of (0,1]", scale)
	}
	at := func(n int) int {
		v := int(float64(n) * scale)
		if v < 10 {
			v = 10
		}
		return v
	}

	// Blacklist composition. Only about half of a real blacklist is
	// *structurally* detectable (members of dense promotion-abuse blocks);
	// the rest — stolen accounts, one-off abusers, later-appealed entries —
	// has no block signature (§V-A describes exactly this churn). So the
	// generator plants dense blocks for detectableShare of the Table I
	// "Fraud PIN" count, drops missing labels from them, and fills the
	// remainder of the blacklist with unstructured background users. This
	// is also what keeps every detector's recall visibly below 1 in the
	// paper's figures.
	const (
		detectableShare = 0.55
		missing         = 0.2
	)
	targetBlacklist := at(row.fraudPINs)
	planted := int(detectableShare * float64(targetBlacklist) / (1 - missing))
	if planted < 60 {
		planted = 60
	}

	cfg := Config{
		Name:                id.String(),
		Seed:                seed,
		BackgroundUsers:     at(row.users) - planted,
		BackgroundMerchants: at(row.merchants),
		MissingLabelRate:    missing,
		// The unstructured remainder of the blacklist, expressed relative
		// to its planted part: |blacklist| lands on the Table I target.
		FalseLabelRate: (1 - detectableShare) / detectableShare,
	}

	// Split the planted users into groups of 100-300 accounts that hit a
	// shared merchant pool near-synchronously (density ≥ 0.8, §III-A
	// "extremely synchronized behavior patterns"). High block density is
	// not a free parameter: an S=0.1 edge sample thins a block's average
	// degree by 10×, so blocks must start near avg degree ≳ 20 for their
	// samples to stay denser than background blobs — the regime the
	// paper's S=0.1 setting presumes. Each account also spends several
	// camouflage purchases on popular honest merchants; the column-weighted
	// metric is designed to shrug that off while the spectral baselines are
	// not. Sizes come from a dedicated rng so the group structure is stable
	// per (id, seed).
	grng := rand.New(rand.NewSource(seed ^ int64(id)*0x9E3779B9))
	groupSize := planted / 5
	if groupSize < 100 {
		groupSize = 100
	}
	if groupSize > 300 {
		groupSize = 300
	}
	remaining := planted
	for remaining > 0 {
		gu := groupSize - 20 + grng.Intn(41)
		if gu > remaining || remaining-gu < 60 {
			gu = remaining // fold the remainder into the last group
		}
		remaining -= gu
		cfg.Groups = append(cfg.Groups, GroupSpec{
			Users:             gu,
			Merchants:         15 + grng.Intn(16),
			Density:           0.8 + 0.15*grng.Float64(),
			CamouflagePerUser: 4 + grng.Intn(8),
		})
	}

	// Legitimate shopping communities holding ~1/6 of the user base, each
	// wider and sparser per node than any fraud block: they dominate the
	// spectrum (more total edges per block) without out-scoring fraud under
	// the density metric.
	commEdges := 0
	for commUsers := cfg.BackgroundUsers / 6; commUsers > 0; {
		cu := 120 + grng.Intn(181) // 120-300 members
		if cu > commUsers {
			cu = commUsers
		}
		commUsers -= cu
		cs := CommunitySpec{
			Users:         cu,
			Merchants:     cu/3 + 10,
			AvgUserDegree: 3.5 + 2.5*grng.Float64(),
		}
		cfg.Communities = append(cfg.Communities, cs)
		commEdges += int(float64(cs.Users) * cs.AvgUserDegree)
	}

	// The random background carries whatever Table I's edge budget leaves
	// after fraud and community edges, floored so every dataset keeps a
	// diffuse majority class.
	cfg.BackgroundEdges = at(row.edges) - estimatedFraudEdges(cfg.Groups) - commEdges
	if floor := at(row.edges) * 3 / 10; cfg.BackgroundEdges < floor {
		cfg.BackgroundEdges = floor
	}
	return cfg, nil
}

// GeneratePreset is a convenience wrapper over Preset + Generate.
func GeneratePreset(id PresetID, scale float64, seed int64) (*Dataset, error) {
	cfg, err := Preset(id, scale, seed)
	if err != nil {
		return nil, err
	}
	return Generate(cfg)
}

// AllPresets returns the three dataset ids in paper order.
func AllPresets() []PresetID { return []PresetID{Dataset1, Dataset2, Dataset3} }

// TableITarget returns the paper's published Table I row for a preset,
// scaled; experiment reporting prints it next to the generated stats.
func TableITarget(id PresetID, scale float64) (Stats, error) {
	row, ok := tableI[id]
	if !ok {
		return Stats{}, fmt.Errorf("datagen: unknown preset %d", int(id))
	}
	return Stats{
		Name:      id.String(),
		Users:     int(float64(row.users) * scale),
		FraudPINs: int(float64(row.fraudPINs) * scale),
		Merchants: int(float64(row.merchants) * scale),
		Edges:     int(float64(row.edges) * scale),
	}, nil
}
