// Package datagen synthesizes "who buy-from where" transaction graphs with
// planted fraud, standing in for the proprietary JD.com datasets of the
// paper's Table I (see DESIGN.md §1 for the substitution argument).
//
// The generator reproduces the structural properties the paper says the
// detectors key on:
//
//   - Background traffic with Zipf-skewed merchant popularity and
//     heavy-tailed user activity (legitimate e-commerce shape).
//   - Multiple disjoint groups of fraudsters, each a dense random bipartite
//     block between a batch of registered accounts and a handful of target
//     merchants ("synchronized behaviour" + "rare behaviour", §III-A).
//   - Camouflage edges from fraud accounts to popular honest merchants
//     (the adversarial pattern FRAUDAR's column weights defend against).
//   - A noisy blacklist ground truth: a fraction of real fraud is missing
//     (never caught) and a fraction of honest users is wrongly listed
//     (account theft, later appeals) — both phenomena the paper describes
//     in §V-A, and the reason absolute precision/recall are modest.
package datagen

import (
	"fmt"
	"math/rand"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/eval"
)

// CommunitySpec describes one legitimate dense shopping community — a set
// of honest users concentrating purchases on a shared merchant pool
// (regional customers, category enthusiasts). Communities are what makes
// real transaction spectra "busy": they carry more spectral mass than fraud
// blocks (more total edges), so the leading SVD components describe them
// rather than the fraud — the effect behind SPOKEN's and FBOX's instability
// in the paper's Figure 3. They are sparser per node than fraud blocks, so
// density heuristics still rank fraud first.
type CommunitySpec struct {
	Users     int
	Merchants int
	// AvgUserDegree is the mean number of in-community purchases per
	// member.
	AvgUserDegree float64
}

// GroupSpec describes one planted group of fraudsters.
type GroupSpec struct {
	// Users is the number of fraud accounts in the group.
	Users int
	// Merchants is the number of colluding target merchants.
	Merchants int
	// Density is the edge probability inside the block; the paper's
	// "synchronized behaviour" corresponds to densities far above the
	// background's.
	Density float64
	// CamouflagePerUser is the number of extra edges each fraud account
	// makes to popular background merchants.
	CamouflagePerUser int
}

// Config fully determines one synthetic dataset.
type Config struct {
	Name string
	Seed int64

	// Background population.
	BackgroundUsers     int
	BackgroundMerchants int
	BackgroundEdges     int
	// MerchantZipfS ≥ 1.01 skews merchant popularity (bigger = more skew);
	// 0 means 1.3.
	MerchantZipfS float64
	// UserZipfS skews user activity; 0 means 1.8 (users are less skewed
	// than merchants, matching Davg(merchant) ≫ Davg(PIN) in §V-C2).
	UserZipfS float64

	// Communities are legitimate dense regions drawn over background ids.
	Communities []CommunitySpec

	// Fraud plants.
	Groups []GroupSpec

	// Blacklist noise.
	// MissingLabelRate is the fraction of planted fraud users absent from
	// the blacklist.
	MissingLabelRate float64
	// FalseLabelRate is the number of wrongly blacklisted honest users,
	// expressed as a fraction of the blacklist's planted part.
	FalseLabelRate float64
}

// Dataset is a generated graph plus its ground truth.
type Dataset struct {
	Name  string
	Graph *bipartite.Graph
	// Labels is the noisy blacklist the evaluation uses, as in the paper.
	Labels *eval.Labels
	// TrueFraudUsers are the planted fraud accounts (noise-free, for
	// diagnostics and tests).
	TrueFraudUsers []uint32
	// FraudGroups[i] lists the user ids of planted group i.
	FraudGroups [][]uint32
}

// Stats summarizes the dataset in the shape of the paper's Table I row.
type Stats struct {
	Name      string
	Users     int
	FraudPINs int // blacklist size, the paper's "Fraud PIN" column
	Merchants int
	Edges     int
}

// Stats returns the Table I row for d.
func (d *Dataset) Stats() Stats {
	return Stats{
		Name:      d.Name,
		Users:     d.Graph.NumUsers(),
		FraudPINs: d.Labels.NumFraud,
		Merchants: d.Graph.NumMerchants(),
		Edges:     d.Graph.NumEdges(),
	}
}

// Generate builds the dataset. It is deterministic in Config (including
// Seed).
func Generate(cfg Config) (*Dataset, error) {
	if cfg.BackgroundUsers <= 0 || cfg.BackgroundMerchants <= 0 {
		return nil, fmt.Errorf("datagen: background sides must be positive, got %d users x %d merchants",
			cfg.BackgroundUsers, cfg.BackgroundMerchants)
	}
	for i, gr := range cfg.Groups {
		if gr.Users <= 0 || gr.Merchants <= 0 {
			return nil, fmt.Errorf("datagen: group %d has empty side", i)
		}
		if gr.Density <= 0 || gr.Density > 1 {
			return nil, fmt.Errorf("datagen: group %d density %g out of (0,1]", i, gr.Density)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	fraudUsers, fraudMerchants := 0, 0
	for _, gr := range cfg.Groups {
		fraudUsers += gr.Users
		fraudMerchants += gr.Merchants
	}
	numUsers := cfg.BackgroundUsers + fraudUsers
	numMerchants := cfg.BackgroundMerchants + fraudMerchants

	b := bipartite.NewBuilderSized(numUsers, numMerchants,
		cfg.BackgroundEdges+estimatedFraudEdges(cfg.Groups))

	// --- background traffic ---
	mzs := cfg.MerchantZipfS
	if mzs == 0 {
		mzs = 1.3
	}
	uzs := cfg.UserZipfS
	if uzs == 0 {
		uzs = 1.8
	}
	// The Zipf offset v flattens the distribution's head so the busiest
	// node carries a few percent of traffic, not tens of percent; without
	// it, duplicate (u, v) draws collapse under dedup and the realized
	// edge count falls far short of the Table I target.
	merchZipf := rand.NewZipf(rng, mzs, 1+float64(cfg.BackgroundMerchants)/200, uint64(cfg.BackgroundMerchants-1))
	userZipf := rand.NewZipf(rng, uzs, 1+float64(cfg.BackgroundUsers)/100, uint64(cfg.BackgroundUsers-1))
	// Permute ids so popularity is not correlated with id order (samplers
	// and detectors must not be able to exploit id structure).
	userPerm := rng.Perm(cfg.BackgroundUsers)
	merchPerm := rng.Perm(cfg.BackgroundMerchants)
	// Draw until the requested number of *distinct* edges exists, with an
	// attempt cap guaranteeing termination on tiny dense populations.
	seen := make(map[uint64]struct{}, cfg.BackgroundEdges)
	maxAttempts := 3*cfg.BackgroundEdges + 16
	for attempt := 0; len(seen) < cfg.BackgroundEdges && attempt < maxAttempts; attempt++ {
		u := userPerm[int(userZipf.Uint64())]
		v := merchPerm[int(merchZipf.Uint64())]
		key := uint64(u)<<32 | uint64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(uint32(u), uint32(v))
	}

	// --- legitimate communities ---
	for _, cs := range cfg.Communities {
		cu := cs.Users
		if cu > cfg.BackgroundUsers {
			cu = cfg.BackgroundUsers
		}
		cv := cs.Merchants
		if cv > cfg.BackgroundMerchants {
			cv = cfg.BackgroundMerchants
		}
		if cu == 0 || cv == 0 {
			continue
		}
		memberUsers := make([]uint32, cu)
		for i := range memberUsers {
			memberUsers[i] = uint32(rng.Intn(cfg.BackgroundUsers))
		}
		memberMerchants := make([]uint32, cv)
		for i := range memberMerchants {
			memberMerchants[i] = uint32(rng.Intn(cfg.BackgroundMerchants))
		}
		for _, u := range memberUsers {
			deg := int(cs.AvgUserDegree)
			if rng.Float64() < cs.AvgUserDegree-float64(deg) {
				deg++
			}
			for k := 0; k < deg; k++ {
				b.AddEdge(u, memberMerchants[rng.Intn(cv)])
			}
		}
	}

	// --- fraud blocks ---
	ds := &Dataset{Name: cfg.Name}
	uBase := cfg.BackgroundUsers
	vBase := cfg.BackgroundMerchants
	for _, gr := range cfg.Groups {
		var group []uint32
		for i := 0; i < gr.Users; i++ {
			u := uint32(uBase + i)
			group = append(group, u)
			ds.TrueFraudUsers = append(ds.TrueFraudUsers, u)
			for j := 0; j < gr.Merchants; j++ {
				if rng.Float64() < gr.Density {
					b.AddEdge(u, uint32(vBase+j))
				}
			}
			for k := 0; k < gr.CamouflagePerUser; k++ {
				v := merchPerm[int(merchZipf.Uint64())]
				b.AddEdge(u, uint32(v))
			}
		}
		ds.FraudGroups = append(ds.FraudGroups, group)
		uBase += gr.Users
		vBase += gr.Merchants
	}

	ds.Graph = b.Build()

	// --- noisy blacklist ---
	var blacklist []uint32
	for _, u := range ds.TrueFraudUsers {
		if rng.Float64() >= cfg.MissingLabelRate {
			blacklist = append(blacklist, u)
		}
	}
	falseCount := int(cfg.FalseLabelRate * float64(len(blacklist)))
	for k := 0; k < falseCount; k++ {
		blacklist = append(blacklist, uint32(rng.Intn(cfg.BackgroundUsers)))
	}
	ds.Labels = eval.NewLabels(numUsers, blacklist)
	return ds, nil
}

func estimatedFraudEdges(groups []GroupSpec) int {
	total := 0
	for _, gr := range groups {
		total += int(float64(gr.Users*gr.Merchants)*gr.Density) + gr.Users*gr.CamouflagePerUser
	}
	return total
}
