// Package spectral holds the shared plumbing of the SVD-based baselines
// (SPOKEN and FBOX): conversion of a bipartite graph to its 0/1 adjacency
// matrix and a cached truncated decomposition of it.
package spectral

import (
	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/linalg"
)

// Adjacency returns the |U|×|V| 0/1 adjacency matrix W of the "who buy-from
// where" graph.
func Adjacency(g *bipartite.Graph) *linalg.Sparse {
	entries := make([]linalg.Entry, 0, g.NumEdges())
	g.Edges(func(e bipartite.Edge) bool {
		entries = append(entries, linalg.Entry{Row: e.U, Col: e.V, Val: 1})
		return true
	})
	m, err := linalg.NewSparse(g.NumUsers(), g.NumMerchants(), entries)
	if err != nil {
		// Graph ids are dense and in range by construction; reaching here
		// means a bipartite invariant was violated upstream.
		panic("spectral: adjacency conversion failed: " + err.Error())
	}
	return m
}

// Decompose computes the rank-k truncated SVD of g's adjacency matrix.
func Decompose(g *bipartite.Graph, k, powerIters int, seed int64) linalg.SVDResult {
	return linalg.TruncatedSVD(Adjacency(g), k, powerIters, seed)
}
