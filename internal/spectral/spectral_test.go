package spectral

import (
	"math"
	"testing"

	"ensemfdet/internal/bipartite"
)

func TestAdjacency(t *testing.T) {
	b := bipartite.NewBuilder()
	b.AddEdge(0, 1)
	b.AddEdge(2, 0)
	g := b.Build()
	m := Adjacency(g)
	if m.Rows() != g.NumUsers() || m.Cols() != g.NumMerchants() {
		t.Fatalf("dims %dx%d, want %dx%d", m.Rows(), m.Cols(), g.NumUsers(), g.NumMerchants())
	}
	if m.At(0, 1) != 1 || m.At(2, 0) != 1 || m.At(0, 0) != 0 {
		t.Error("adjacency entries wrong")
	}
	if m.NNZ() != g.NumEdges() {
		t.Errorf("nnz = %d, want %d", m.NNZ(), g.NumEdges())
	}
}

func TestDecomposeFullBlock(t *testing.T) {
	// A full n×m all-ones block has a single nonzero singular value
	// sqrt(n·m).
	b := bipartite.NewBuilderSized(6, 4, 24)
	for u := 0; u < 6; u++ {
		for v := 0; v < 4; v++ {
			b.AddEdge(uint32(u), uint32(v))
		}
	}
	svd := Decompose(b.Build(), 2, 3, 1)
	want := math.Sqrt(24)
	if math.Abs(svd.S[0]-want) > 1e-8 {
		t.Errorf("σ1 = %g, want %g", svd.S[0], want)
	}
	if svd.S[1] > 1e-8 {
		t.Errorf("σ2 = %g, want ~0", svd.S[1])
	}
}
