package stream

import "ensemfdet/internal/bipartite"

// This file is the churn-tracking half of the dynamic graph: a bounded
// history of which nodes each committed version touched, queryable as a
// Delta between two snapshot versions. The incremental detection path
// (internal/core.RunIncremental, wired by internal/serve) classifies ensemble
// samples clean or dirty against exactly this touched-node set, so the
// contract is conservative-superset: a Delta may name a node whose adjacency
// did not actually change (e.g. the endpoint of a fully-duplicate edge in an
// adding batch), but it must never omit a node whose adjacency did. Missing
// history is reported, never fabricated: once a range has been evicted,
// restored, or force-rewound, Delta returns ok=false and callers fall back to
// a cold run.

// DefaultDeltaHistoryNodes bounds the touched-node history: once the summed
// endpoint count across retained records exceeds it, the oldest records are
// evicted and the history floor rises past them. At 8 bytes per endpoint the
// default retains ~8 MB of churn history — weeks of steady-state deltas, or
// a few huge backfill batches, whichever comes first.
const DefaultDeltaHistoryNodes = 1 << 20

// deltaRec is one committed change: the version it committed as and the
// endpoints whose adjacency that commit touched (or may have touched).
type deltaRec struct {
	ver       uint64
	users     []uint32
	merchants []uint32
	inserts   int
	deletes   int
}

// Delta is the churn between two snapshot versions: every user and merchant
// whose adjacency changed in (FromVersion, ToVersion], with insert/delete
// edge counts for sizing the reuse-vs-rebuild decision. The node lists are a
// conservative superset (duplicates allowed, endpoints of deduplicated edges
// allowed) — sound for dirtiness classification, which only over-invalidates.
type Delta struct {
	FromVersion uint64
	ToVersion   uint64
	// Users and Merchants are the touched parent node ids. Order is
	// unspecified and ids may repeat across (or within) records.
	Users     []uint32
	Merchants []uint32
	// Inserts and Deletes count edges actually added and removed in the
	// range (exact, unlike the node lists).
	Inserts int
	Deletes int
}

// EdgesChanged is the total edge churn in the range.
func (d Delta) EdgesChanged() int { return d.Inserts + d.Deletes }

// Delta reports the per-node churn between two snapshot versions, i.e. the
// union of touched endpoints over every commit with from < version ≤ to. The
// second result is false when the history cannot prove the range complete:
// from exceeds to, tracking is disabled, or part of the range was evicted
// (history bound), cleared (restore / force-rewind / replay hole). Callers
// must treat ok=false as "everything may have changed".
func (g *Graph) Delta(from, to uint64) (Delta, bool) {
	// Ranges past the current version refer to versions this graph has not
	// produced — after an epoch rewind, to a dead timeline's labels.
	if from > to || to > g.version.Load() {
		return Delta{}, false
	}
	g.histMu.Lock()
	defer g.histMu.Unlock()
	if g.histLimit <= 0 || from < g.histFloor {
		return Delta{}, false
	}
	d := Delta{FromVersion: from, ToVersion: to}
	for i := range g.hist {
		r := &g.hist[i]
		if r.ver <= from || r.ver > to {
			continue
		}
		d.Users = append(d.Users, r.users...)
		d.Merchants = append(d.Merchants, r.merchants...)
		d.Inserts += r.inserts
		d.Deletes += r.deletes
	}
	return d, true
}

// SetDeltaHistoryLimit replaces the touched-node history bound (in summed
// endpoints across retained records; 0 or negative disables tracking). The
// existing history is discarded and the floor rises to the current version,
// so the next Delta range starts fresh — the limit is a construction-time
// tuning knob, not something to flip per query.
func (g *Graph) SetDeltaHistoryLimit(nodes int) {
	g.histMu.Lock()
	defer g.histMu.Unlock()
	g.histLimit = nodes
	g.histResetLocked(g.version.Load())
}

// histRecord appends one commit's touched endpoints to the history, evicting
// from the front (and raising the floor) once the node budget is exceeded.
// Called with commitMu held (read half for appends, write half for removals);
// histMu is a leaf lock below it. Concurrent adding batches may record out of
// version order — harmless, because Delta filters by version and the floor
// only ever rises past evicted records.
//
// The full pre-dedup batch is recorded for appends — a duplicate edge touches
// nothing, so this only over-marks, which the Delta contract allows — because
// the set of actually-added edges is scattered across per-shard logs by the
// time the batch commits, and re-collecting it would cost more than the
// occasional duplicate endpoint.
func (g *Graph) histRecord(ver uint64, edges []bipartite.Edge, inserts, deletes int) {
	g.histMu.Lock()
	defer g.histMu.Unlock()
	if g.histLimit <= 0 {
		return
	}
	users := make([]uint32, len(edges))
	merchants := make([]uint32, len(edges))
	for i, e := range edges {
		users[i] = e.U
		merchants[i] = e.V
	}
	g.hist = append(g.hist, deltaRec{ver: ver, users: users, merchants: merchants, inserts: inserts, deletes: deletes})
	g.histNodes += len(users) + len(merchants)
	k := 0
	for g.histNodes > g.histLimit && k < len(g.hist) {
		old := &g.hist[k]
		g.histNodes -= len(old.users) + len(old.merchants)
		if old.ver > g.histFloor {
			g.histFloor = old.ver
		}
		k++
	}
	if k > 0 {
		n := copy(g.hist, g.hist[k:])
		clear(g.hist[n:]) // release evicted records' endpoint slices
		g.hist = g.hist[:n]
	}
}

// histReset discards all history and raises the floor to ver: the graph's
// contents can no longer be related to any earlier version (restore, epoch
// resync, replay hole).
func (g *Graph) histReset(ver uint64) {
	g.histMu.Lock()
	defer g.histMu.Unlock()
	g.histResetLocked(ver)
}

func (g *Graph) histResetLocked(ver uint64) {
	clear(g.hist)
	g.hist = g.hist[:0]
	g.histNodes = 0
	// Exactly ver, not max: an epoch rewind lowers the floor so the adopted
	// timeline's future commits are queryable from its snapshot version.
	g.histFloor = ver
}
