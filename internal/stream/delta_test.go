package stream

import (
	"slices"
	"testing"
	"time"

	"ensemfdet/internal/bipartite"
)

func sortedU32(s []uint32) []uint32 {
	out := slices.Clone(s)
	slices.Sort(out)
	return slices.Compact(out)
}

func TestDeltaTracksAppendEndpoints(t *testing.T) {
	g := NewSharded(4)
	v0 := g.Version()
	g.Append([]bipartite.Edge{{U: 1, V: 10}, {U: 2, V: 10}})
	g.Append([]bipartite.Edge{{U: 3, V: 11}})
	d, ok := g.Delta(v0, g.Version())
	if !ok {
		t.Fatal("Delta not answerable over fully-recorded range")
	}
	if got, want := sortedU32(d.Users), []uint32{1, 2, 3}; !slices.Equal(got, want) {
		t.Fatalf("touched users = %v, want %v", got, want)
	}
	if got, want := sortedU32(d.Merchants), []uint32{10, 11}; !slices.Equal(got, want) {
		t.Fatalf("touched merchants = %v, want %v", got, want)
	}
	if d.Inserts != 3 || d.Deletes != 0 {
		t.Fatalf("inserts/deletes = %d/%d, want 3/0", d.Inserts, d.Deletes)
	}
}

func TestDeltaSubrangeExcludesOutsideCommits(t *testing.T) {
	g := NewSharded(1)
	g.AppendEdge(1, 10)
	v1 := g.Version()
	g.AppendEdge(2, 11)
	v2 := g.Version()
	g.AppendEdge(3, 12)

	d, ok := g.Delta(v1, v2)
	if !ok {
		t.Fatal("Delta not answerable")
	}
	if got, want := sortedU32(d.Users), []uint32{2}; !slices.Equal(got, want) {
		t.Fatalf("touched users = %v, want %v", got, want)
	}
	if d.Inserts != 1 {
		t.Fatalf("inserts = %d, want 1", d.Inserts)
	}
	// Empty range: same from and to.
	d, ok = g.Delta(v2, v2)
	if !ok || len(d.Users) != 0 || len(d.Merchants) != 0 || d.EdgesChanged() != 0 {
		t.Fatalf("empty range delta = %+v ok=%v, want empty/true", d, ok)
	}
	// Inverted range is unanswerable.
	if _, ok := g.Delta(v2, v1); ok {
		t.Fatal("inverted range should be unanswerable")
	}
}

func TestDeltaDuplicateBatchDoesNotCommitButDupEndpointsMayOvermark(t *testing.T) {
	g := NewSharded(2)
	g.AppendEdge(1, 10)
	v1 := g.Version()
	// A fully-duplicate batch does not bump the version and records nothing.
	g.AppendEdge(1, 10)
	if g.Version() != v1 {
		t.Fatalf("duplicate batch bumped version to %d", g.Version())
	}
	d, ok := g.Delta(v1, g.Version())
	if !ok || len(d.Users) != 0 {
		t.Fatalf("delta after duplicate-only batch = %+v ok=%v, want empty/true", d, ok)
	}
	// A mixed batch records the full pre-dedup endpoint set (conservative
	// over-marking) but exact insert counts.
	g.Append([]bipartite.Edge{{U: 1, V: 10}, {U: 5, V: 20}})
	d, ok = g.Delta(v1, g.Version())
	if !ok {
		t.Fatal("Delta not answerable")
	}
	if got, want := sortedU32(d.Users), []uint32{1, 5}; !slices.Equal(got, want) {
		t.Fatalf("touched users = %v, want %v", got, want)
	}
	if d.Inserts != 1 {
		t.Fatalf("inserts = %d, want 1 (duplicate excluded)", d.Inserts)
	}
}

func TestDeltaTracksRemovalsAndRetires(t *testing.T) {
	g := NewSharded(4)
	g.Append([]bipartite.Edge{{U: 1, V: 10}, {U: 2, V: 11}, {U: 3, V: 12}})
	v1 := g.Version()

	g.Remove([]bipartite.Edge{{U: 2, V: 11}})
	d, ok := g.Delta(v1, g.Version())
	if !ok {
		t.Fatal("Delta not answerable")
	}
	if got, want := sortedU32(d.Users), []uint32{2}; !slices.Equal(got, want) {
		t.Fatalf("touched users after Remove = %v, want %v", got, want)
	}
	if d.Inserts != 0 || d.Deletes != 1 {
		t.Fatalf("inserts/deletes = %d/%d, want 0/1", d.Inserts, d.Deletes)
	}

	// A window retire pass is a removal commit like any other.
	v2 := g.Version()
	g.SetWindow(WindowPolicy{MaxEdges: 1})
	g.Retire(time.Now())
	d, ok = g.Delta(v2, g.Version())
	if !ok {
		t.Fatal("Delta not answerable after retire")
	}
	if d.Deletes != 1 || len(d.Users) != 1 {
		t.Fatalf("retire delta = %+v, want 1 deleted edge endpoint", d)
	}
}

func TestDeltaEvictionRaisesFloor(t *testing.T) {
	g := NewSharded(1)
	g.SetDeltaHistoryLimit(4)
	v0 := g.Version()
	for i := uint32(0); i < 8; i++ {
		g.AppendEdge(i, 100+i)
	}
	if _, ok := g.Delta(v0, g.Version()); ok {
		t.Fatal("evicted range should be unanswerable")
	}
	// A recent suffix still inside the budget must remain answerable.
	recent := g.Version() - 1
	d, ok := g.Delta(recent, g.Version())
	if !ok || d.Inserts != 1 {
		t.Fatalf("recent delta = %+v ok=%v, want 1 insert", d, ok)
	}
}

func TestDeltaDisabledTracking(t *testing.T) {
	g := NewSharded(1)
	g.SetDeltaHistoryLimit(0)
	v0 := g.Version()
	g.AppendEdge(1, 10)
	if _, ok := g.Delta(v0, g.Version()); ok {
		t.Fatal("Delta should be unanswerable with tracking disabled")
	}
}

func TestDeltaResetOnRestoreForceAndReplayHole(t *testing.T) {
	// Restore: the adopted version starts a fresh, queryable history.
	base := NewSharded(1)
	base.Append([]bipartite.Edge{{U: 1, V: 10}, {U: 2, V: 11}})
	snap, ver := base.Snapshot()

	g := NewSharded(2)
	if err := g.Restore(snap, ver); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Delta(0, ver); ok {
		t.Fatal("pre-restore range should be unanswerable")
	}
	g.AppendEdge(7, 70)
	d, ok := g.Delta(ver, g.Version())
	if !ok || d.Inserts != 1 || !slices.Equal(sortedU32(d.Users), []uint32{7}) {
		t.Fatalf("post-restore delta = %+v ok=%v, want users=[7]", d, ok)
	}

	// AdvanceVersionTo without a jump preserves history; with a jump it
	// clears it.
	g.AdvanceVersionTo(g.Version()) // no-op
	if _, ok := g.Delta(ver, g.Version()); !ok {
		t.Fatal("no-op AdvanceVersionTo should preserve history")
	}
	hole := g.Version() + 5
	g.AdvanceVersionTo(hole)
	if _, ok := g.Delta(ver, g.Version()); ok {
		t.Fatal("replay hole should clear history")
	}
	g.AppendEdge(8, 80)
	if d, ok := g.Delta(hole, g.Version()); !ok || d.Inserts != 1 {
		t.Fatalf("post-hole delta = %+v ok=%v, want 1 insert", d, ok)
	}

	// ForceVersionTo (epoch resync) rewinds: old ranges die, the adopted
	// timeline is queryable from the forced version even though it is lower.
	low := uint64(3)
	g.ForceVersionTo(low)
	if _, ok := g.Delta(hole, hole+1); ok {
		t.Fatal("abandoned-timeline range should be unanswerable")
	}
	g.AppendEdge(9, 90)
	if d, ok := g.Delta(low, g.Version()); !ok || d.Inserts != 1 {
		t.Fatalf("post-rewind delta = %+v ok=%v, want 1 insert", d, ok)
	}
}

func TestDeltaConcurrentAppends(t *testing.T) {
	g := NewSharded(4)
	v0 := g.Version()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				u := uint32(w*1000 + i)
				g.AppendEdge(u, u%37)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	d, ok := g.Delta(v0, g.Version())
	if !ok {
		t.Fatal("Delta not answerable")
	}
	if d.Inserts != 400 {
		t.Fatalf("inserts = %d, want 400", d.Inserts)
	}
	if got := len(sortedU32(d.Users)); got != 400 {
		t.Fatalf("distinct touched users = %d, want 400", got)
	}
}
