// Package stream provides the mutable front half of the serving pipeline: a
// concurrency-safe dynamic bipartite graph that accepts batched edge appends
// as purchases arrive and hands out immutable bipartite.Graph snapshots for
// detection.
//
// The paper's ensemble (and every algorithm in this repository) works on an
// immutable dual-CSR Graph. A production ingest path cannot rebuild that CSR
// per purchase, so Graph keeps the live state as a deduplicated edge log and
// materializes CSR snapshots lazily, caching one snapshot per version.
//
// # Sharded ingest
//
// The log is split into P shards partitioning the user-id space (an edge
// lives in the shard of its user, selected by the id's low bits so dense,
// growing id ranges stay balanced). Each shard has its own lock, dedup set,
// and append-ordered edge log, so concurrent producers writing different
// shards never contend. A single monotonic version survives the split: every
// batch that adds at least one edge bumps one atomic counter, and appends
// run under the read half of a commit lock whose write half lets the
// snapshot path capture a (version, per-shard watermark) cut that is exactly
// consistent — an edge is visible to a capture iff its batch's version bump
// is.
//
// # Incremental snapshots
//
// Snapshots record per-shard sequence watermarks (log lengths). The next
// build hands only the edges past those watermarks — the delta — to
// bipartite.ExtendBuilder, which merges them into the previous CSR instead
// of re-sorting the whole log; a full rebuild runs only when the delta is a
// large fraction of the graph (or there is no previous snapshot). Shard logs
// are append-only, so the capture is zero-copy: builders read the immutable
// prefix of each log while producers keep appending behind the watermarks.
// The built snapshot is published through an atomic pointer under the
// single-flight build lock, so a slow store can never stall ingest.
package stream

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/scratch"
)

// DefaultShards returns the shard count New picks: GOMAXPROCS rounded up to
// a power of two, clamped to [1, MaxShards].
func DefaultShards() int {
	p := 1
	for p < runtime.GOMAXPROCS(0) && p < MaxShards {
		p <<= 1
	}
	return p
}

// MaxShards bounds the shard count. Shards beyond the core count only add
// scan overhead to batched appends, and captures walk every shard.
const MaxShards = 64

// deltaRebuildDenominator sets the incremental-build threshold: a snapshot
// uses the delta path while |Δ| · denominator ≤ |E_prev|, i.e. deltas up to
// 25% of the previous snapshot. Past that, merging approaches the cost of
// the full counting-sort rebuild and loses to its better locality.
const deltaRebuildDenominator = 4

// fullBuildKeepCap is the largest concat-scratch capacity (in edges) kept
// after a full rebuild; larger buffers are released so one big build does
// not pin O(|E|) scratch on a graph that thereafter only does delta builds.
const fullBuildKeepCap = 1 << 16

// Graph is a mutable, concurrency-safe dynamic bipartite graph. The zero
// value is not usable; construct with New or NewSharded. All methods are
// safe for concurrent use.
type Graph struct {
	shards []shard
	mask   uint32 // len(shards) - 1; shard of user u is u & mask

	// commitMu makes (version, shard logs) capturable as one consistent cut:
	// appends hold the read half for the whole batch (shard writes + version
	// bump), captures take the write half briefly. Appends therefore only
	// serialize against captures and same-shard writers, never each other.
	commitMu sync.RWMutex
	version  atomic.Uint64

	// journal, when set, receives every batch that added edges, tagged with
	// the version the batch committed as. It is read under commitMu's read
	// half and swapped under the write half, so a batch never races the tee.
	journal Journal

	// Size counters, updated once per touched shard per batch; reads are
	// lock-free and exact whenever no append is in flight.
	numEdges     atomic.Int64
	numUsers     atomic.Int64
	numMerchants atomic.Int64

	// groupScratch pools per-append batch-grouping state (multi-shard only).
	groupScratch sync.Pool

	buildMu sync.Mutex               // single-flights cold snapshot builds
	snap    atomic.Pointer[snapshot] // published under buildMu, read lock-free
	ext     *bipartite.ExtendBuilder // build arena, guarded by buildMu
	logRefs [][]bipartite.Edge       // capture scratch, guarded by buildMu
	edgeBuf []bipartite.Edge         // delta/full concat scratch, guarded by buildMu

	deltaBuilds  atomic.Uint64
	fullBuilds   atomic.Uint64
	deltaBuildNs atomic.Int64
	fullBuildNs  atomic.Int64
}

// shard is one user-range partition of the edge log. The padding keeps hot
// shard headers on distinct cache lines so uncontended shards stay
// uncontended at the hardware level too.
type shard struct {
	mu    sync.Mutex
	seen  map[uint64]struct{} // edge key set for O(1) dedup
	edges []bipartite.Edge    // deduplicated, append order, append-only
	_     [64]byte
}

// snapshot pins a built CSR to the version and per-shard log watermarks it
// reflects; the watermarks are what the next build's delta starts from.
type snapshot struct {
	g       *bipartite.Graph
	version uint64
	marks   []int
}

// New returns an empty dynamic graph at version 0 with DefaultShards shards.
func New() *Graph { return NewSharded(0) }

// NewSharded returns an empty dynamic graph with the given shard count,
// rounded up to a power of two and clamped to [1, MaxShards]; 0 selects
// DefaultShards. Shard count affects only write concurrency: snapshots, and
// therefore detection results, are byte-identical across shard counts.
func NewSharded(shards int) *Graph {
	if shards <= 0 {
		shards = DefaultShards()
	}
	p := 1
	for p < shards && p < MaxShards {
		p <<= 1
	}
	g := &Graph{
		shards: make([]shard, p),
		mask:   uint32(p - 1),
		ext:    bipartite.NewExtendBuilder(),
	}
	g.groupScratch.New = func() any { return new(groupScratch) }
	for i := range g.shards {
		g.shards[i].seen = make(map[uint64]struct{})
	}
	return g
}

// NumShards returns the shard count chosen at construction.
func (g *Graph) NumShards() int { return len(g.shards) }

func edgeKey(e bipartite.Edge) uint64 { return uint64(e.U)<<32 | uint64(e.V) }

// AppendResult summarizes one batched append.
type AppendResult struct {
	// Added is the number of edges not previously present.
	Added int
	// Duplicates is the number of edges skipped because they were already
	// in the graph (or repeated within the batch).
	Duplicates int
	// Version is the graph version after the append. It exceeds the
	// pre-append version iff Added > 0.
	Version uint64
	// Stats is the graph size immediately after this append. It is exact
	// when no other writer races this batch; concurrent batches may be
	// partially included.
	Stats Stats
	// Err reports a journal (durability) failure: the batch is committed in
	// memory, but the write-ahead log did not acknowledge it, so it may not
	// survive a restart. Callers serving durable ingest must fail the
	// request; a retry is safe because appends deduplicate.
	Err error
}

// Journal is the persistence tee: when installed via SetJournal, every batch
// that adds at least one edge is handed to AppendEdges with the version the
// batch committed as, before the append returns. The full pre-dedup batch is
// journaled — replaying it through Append is idempotent. Implementations are
// called concurrently (one call per in-flight batch) and must serialize
// internally; internal/persist.Store is the production implementation.
type Journal interface {
	AppendEdges(version uint64, edges []bipartite.Edge) error
}

// SetJournal installs (or, with nil, removes) the durability tee. Install it
// after recovery has replayed any existing log and before accepting traffic;
// batches appended while no journal is set are not persisted.
func (g *Graph) SetJournal(j Journal) {
	g.commitMu.Lock()
	defer g.commitMu.Unlock()
	g.journal = j
}

// Restore seeds an empty dynamic graph from a recovered snapshot, adopting
// its version. The snapshot is also pre-published as the graph's cached CSR
// snapshot, so the first post-boot Snapshot — and every delta build after it
// — starts from the recovered arrays instead of rebuilding O(|E|) state.
// Restore must run before any Append and before SetJournal; snap must be a
// canonical CSR (one produced by this package's Snapshot or the bipartite
// codec), or later incremental snapshots would diverge from full rebuilds.
func (g *Graph) Restore(snap *bipartite.Graph, version uint64) error {
	if g.version.Load() != 0 || g.numEdges.Load() != 0 {
		return errors.New("stream: Restore requires an empty graph")
	}
	if snap == nil {
		g.version.Store(version)
		return nil
	}
	if res := g.Append(snap.EdgeList()); res.Duplicates != 0 {
		return fmt.Errorf("stream: restore snapshot contained %d duplicate edges", res.Duplicates)
	}
	atomicMax(&g.numUsers, int64(snap.NumUsers()))
	atomicMax(&g.numMerchants, int64(snap.NumMerchants()))
	marks := make([]int, len(g.shards))
	for i := range g.shards {
		g.shards[i].mu.Lock()
		marks[i] = len(g.shards[i].edges)
		g.shards[i].mu.Unlock()
	}
	g.snap.Store(&snapshot{g: snap, version: version, marks: marks})
	g.version.Store(version)
	return nil
}

// Append records a batch of purchase edges, deduplicating against everything
// already ingested. The version counter advances once per batch that adds at
// least one new edge, so an idempotent retry of the same batch leaves the
// version — and therefore every cached detection — intact. The batch is
// committed shard by shard: a concurrent snapshot may observe a prefix of a
// large multi-shard batch, but never a torn shard.
func (g *Graph) Append(edges []bipartite.Edge) AppendResult {
	g.commitMu.RLock()
	defer g.commitMu.RUnlock()

	var res AppendResult
	var maxU, maxV int64 = -1, -1
	if len(g.shards) == 1 {
		res.Added = g.shards[0].appendRun(edges, &res.Duplicates, &maxU, &maxV)
		if res.Added > 0 {
			g.numEdges.Add(int64(res.Added))
		}
	} else {
		// Counting-sort the batch into shard-contiguous runs first, so each
		// shard lock is taken once over its run instead of scanning the
		// whole batch per shard. The grouping scratch is pooled: steady-state
		// appends allocate nothing.
		gs := g.groupScratch.Get().(*groupScratch)
		grouped := gs.group(edges, g.mask)
		for si := range g.shards {
			run := grouped[gs.off[si]:gs.off[si+1]]
			if len(run) == 0 {
				continue
			}
			added := g.shards[si].appendRun(run, &res.Duplicates, &maxU, &maxV)
			if added > 0 {
				g.numEdges.Add(int64(added))
				res.Added += added
			}
		}
		g.groupScratch.Put(gs)
	}
	if res.Added > 0 {
		atomicMax(&g.numUsers, maxU+1)
		atomicMax(&g.numMerchants, maxV+1)
		res.Version = g.version.Add(1)
		// Tee the batch into the journal before acknowledging, still under
		// the commit read lock: a snapshot capture at version V therefore
		// never completes before every batch with version ≤ V has been
		// offered to the log, which is what makes truncating the log at a
		// snapshot's watermark safe. The full pre-dedup batch is journaled;
		// replay re-deduplicates.
		if g.journal != nil {
			if err := g.journal.AppendEdges(res.Version, edges); err != nil {
				res.Err = fmt.Errorf("stream: journal append at version %d: %w", res.Version, err)
			}
		}
	} else {
		res.Version = g.version.Load()
	}
	res.Stats = Stats{
		Version:      res.Version,
		NumUsers:     int(g.numUsers.Load()),
		NumMerchants: int(g.numMerchants.Load()),
		NumEdges:     int(g.numEdges.Load()),
	}
	return res
}

// appendRun folds a slice of edges, all belonging to this shard (or the only
// shard), into the shard under its lock.
func (s *shard) appendRun(run []bipartite.Edge, dups *int, maxU, maxV *int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	added := 0
	for _, e := range run {
		k := edgeKey(e)
		if _, dup := s.seen[k]; dup {
			*dups++
			continue
		}
		s.seen[k] = struct{}{}
		s.edges = append(s.edges, e)
		added++
		if int64(e.U) > *maxU {
			*maxU = int64(e.U)
		}
		if int64(e.V) > *maxV {
			*maxV = int64(e.V)
		}
	}
	return added
}

// groupScratch is reusable per-append grouping state: a shard-major
// permutation of the batch plus the run offsets.
type groupScratch struct {
	buf []bipartite.Edge
	off []int // len shards+1 after group; off[s]:off[s+1] is shard s's run
	cur []int
}

// group scatters edges into shard-contiguous runs in gs.buf and returns the
// permuted batch; gs.off holds the run boundaries.
func (gs *groupScratch) group(edges []bipartite.Edge, mask uint32) []bipartite.Edge {
	shards := int(mask) + 1
	buf := scratch.Grow(&gs.buf, len(edges))
	off := scratch.GrowZero(&gs.off, shards+1)
	cur := scratch.Grow(&gs.cur, shards)
	for _, e := range edges {
		off[(e.U&mask)+1]++
	}
	for s := 0; s < shards; s++ {
		off[s+1] += off[s]
		cur[s] = off[s]
	}
	for _, e := range edges {
		s := e.U & mask
		buf[cur[s]] = e
		cur[s]++
	}
	return buf
}

// atomicMax raises *a to v if v is larger.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// AppendEdge records a single purchase (u, v).
func (g *Graph) AppendEdge(u, v uint32) AppendResult {
	return g.Append([]bipartite.Edge{{U: u, V: v}})
}

// Version returns the current graph version. Version 0 is the empty graph.
func (g *Graph) Version() uint64 { return g.version.Load() }

// AdvanceVersionTo raises the version counter to v if it is currently
// lower. It exists for WAL replay: a crash can leave a version hole — a
// batch that failed to journal, or one record of a concurrent pair torn
// from the log tail — and replaying the surviving records then advancing to
// each record's original version keeps recovered version labels (and
// therefore vote-cache keys) identical to what acknowledged clients saw,
// instead of silently renumbering everything after the hole.
func (g *Graph) AdvanceVersionTo(v uint64) {
	for {
		cur := g.version.Load()
		if v <= cur || g.version.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Stats is a point-in-time size summary of the dynamic graph.
type Stats struct {
	Version      uint64 `json:"version"`
	NumUsers     int    `json:"num_users"`
	NumMerchants int    `json:"num_merchants"`
	NumEdges     int    `json:"num_edges"`
}

// Stats returns the current version and side/edge counts. The reads are
// lock-free; values are exact whenever no append is in flight.
func (g *Graph) Stats() Stats {
	return Stats{
		Version:      g.version.Load(),
		NumUsers:     int(g.numUsers.Load()),
		NumMerchants: int(g.numMerchants.Load()),
		NumEdges:     int(g.numEdges.Load()),
	}
}

// ShardSize reports one shard's log size.
type ShardSize struct {
	Shard    int `json:"shard"`
	NumEdges int `json:"num_edges"`
}

// ShardSizes returns the per-shard edge counts, for observability.
func (g *Graph) ShardSizes() []ShardSize {
	out := make([]ShardSize, len(g.shards))
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.Lock()
		out[i] = ShardSize{Shard: i, NumEdges: len(s.edges)}
		s.mu.Unlock()
	}
	return out
}

// BuildStats counts snapshot constructions by kind, with cumulative build
// time; the delta/full ratio is the health signal of the incremental path.
type BuildStats struct {
	DeltaBuilds   uint64        `json:"delta_builds"`
	FullBuilds    uint64        `json:"full_builds"`
	DeltaBuildDur time.Duration `json:"delta_build_ns"`
	FullBuildDur  time.Duration `json:"full_build_ns"`
}

// BuildStats returns cumulative snapshot-build counters.
func (g *Graph) BuildStats() BuildStats {
	return BuildStats{
		DeltaBuilds:   g.deltaBuilds.Load(),
		FullBuilds:    g.fullBuilds.Load(),
		DeltaBuildDur: time.Duration(g.deltaBuildNs.Load()),
		FullBuildDur:  time.Duration(g.fullBuildNs.Load()),
	}
}

// Snapshot returns an immutable CSR view of the graph and the version it
// reflects. The result is cached: repeated calls at an unchanged version
// return the same *bipartite.Graph, so snapshotting is O(1) between appends.
// Cold builds are single-flighted — a burst of snapshotters after an ingest
// performs one capture and one build, not one per caller — and incremental:
// when a previous snapshot exists and the delta since its watermarks is
// small, the new CSR is merged from (previous snapshot, delta) instead of
// rebuilt from all |E| edges. The returned graph is never mutated by later
// appends, and is byte-identical for a given edge set regardless of shard
// count, append order, or which build path produced it.
func (g *Graph) Snapshot() (*bipartite.Graph, uint64) {
	if s := g.snap.Load(); s != nil && s.version == g.version.Load() {
		return s.g, s.version
	}
	// Serialize builders; losers of the race re-check the cache the winner
	// just filled. Append never takes buildMu, so ingest is unaffected.
	g.buildMu.Lock()
	defer g.buildMu.Unlock()
	if s := g.snap.Load(); s != nil && s.version == g.version.Load() {
		return s.g, s.version
	}
	prev := g.snap.Load()

	// Capture a consistent cut under the commit lock: version, side sizes,
	// and a stable view of every shard log. Logs are append-only, so the
	// captured prefixes stay immutable after release and the hold time is
	// O(shards), not O(edges) — ingest stalls for the capture, never for
	// the build.
	g.commitMu.Lock()
	v := g.version.Load()
	nu := int(g.numUsers.Load())
	nm := int(g.numMerchants.Load())
	marks := make([]int, len(g.shards))
	logs := scratch.Grow(&g.logRefs, len(g.shards))
	total := 0
	for i := range g.shards {
		logs[i] = g.shards[i].edges
		marks[i] = len(logs[i])
		total += marks[i]
	}
	g.commitMu.Unlock()

	deltaN := total
	if prev != nil {
		deltaN = 0
		for i, m := range marks {
			deltaN += m - prev.marks[i]
		}
	}

	start := time.Now()
	var built *bipartite.Graph
	if prev != nil && deltaN*deltaRebuildDenominator <= prev.g.NumEdges() {
		delta := scratch.Grow(&g.edgeBuf, deltaN)[:0]
		for i, log := range logs {
			delta = append(delta, log[prev.marks[i]:marks[i]]...)
		}
		g.edgeBuf = delta
		built = g.ext.Extend(prev.g, delta, nu, nm)
		g.deltaBuilds.Add(1)
		g.deltaBuildNs.Add(int64(time.Since(start)))
	} else {
		all := scratch.Grow(&g.edgeBuf, total)[:0]
		for i, log := range logs {
			all = append(all, log[:marks[i]]...)
		}
		g.edgeBuf = all
		built = g.ext.Rebuild(nu, nm, all)
		g.fullBuilds.Add(1)
		g.fullBuildNs.Add(int64(time.Since(start)))
		// A full rebuild grew the concat scratch to O(|E|); steady-state
		// traffic then takes only the delta path, which needs a fraction of
		// that. Release oversized buffers rather than pinning |E| edges of
		// scratch for the graph's lifetime — the next full build (rare by
		// design) just re-allocates.
		if cap(g.edgeBuf) > fullBuildKeepCap {
			g.edgeBuf = nil
		}
	}
	clear(logs) // do not pin shard log arrays beyond the build

	g.snap.Store(&snapshot{g: built, version: v, marks: marks})
	return built, v
}
