// Package stream provides the mutable front half of the serving pipeline: a
// concurrency-safe dynamic bipartite graph that accepts batched edge appends
// as purchases arrive, retires edges that age out of a configured window, and
// hands out immutable bipartite.Graph snapshots for detection.
//
// The paper's ensemble (and every algorithm in this repository) works on an
// immutable dual-CSR Graph. A production ingest path cannot rebuild that CSR
// per purchase, so Graph keeps the live state as a deduplicated edge log and
// materializes CSR snapshots lazily, caching one snapshot per version.
//
// # Sharded ingest
//
// The log is split into P shards partitioning the user-id space (an edge
// lives in the shard of its user, selected by the id's low bits so dense,
// growing id ranges stay balanced). Each shard has its own lock, dedup set,
// and append-ordered edge log, so concurrent producers writing different
// shards never contend. A single monotonic version survives the split: every
// batch that adds at least one edge bumps one atomic counter, and appends
// run under the read half of a commit lock whose write half lets the
// snapshot path capture a consistent cut — an edge is visible to a capture
// iff its batch's version bump is. Every log entry is stamped with the
// version and wall time its batch committed as; the stamps are what the
// window policy (window.go) ages edges by.
//
// # Incremental snapshots with deletions
//
// Each shard remembers how much of its log the latest captured snapshot has
// seen (a per-shard baseline mark), and retire passes collect the edges they
// remove from below those marks into a pending-deletes list. A snapshot
// capture therefore yields exactly the delta since the previous snapshot —
// the inserted suffix of every shard log plus the pending deletes — and
// hands both to bipartite.ExtendBuilder.ExtendDelta, which merges them into
// the previous CSR instead of re-sorting the whole log. A full rebuild runs
// only when the combined insert+delete churn is a large fraction of the
// graph (or there is no previous snapshot). Shard logs are append-only
// between retire passes, and retire rewrites survivors into fresh backing
// arrays, so captured log views stay immutable while producers keep
// appending behind them. The built snapshot is published through an atomic
// pointer under the single-flight build lock, so a slow store can never
// stall ingest.
package stream

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/scratch"
	"ensemfdet/internal/u64set"
)

// DefaultShards returns the shard count New picks: GOMAXPROCS rounded up to
// a power of two, clamped to [1, MaxShards].
func DefaultShards() int {
	p := 1
	for p < runtime.GOMAXPROCS(0) && p < MaxShards {
		p <<= 1
	}
	return p
}

// MaxShards bounds the shard count. Shards beyond the core count only add
// scan overhead to batched appends, and captures walk every shard.
const MaxShards = 64

// deltaRebuildDenominator sets the incremental-build threshold: a snapshot
// uses the delta path while (|inserts| + |deletes|) · denominator ≤ |E_prev|,
// i.e. combined churn up to 25% of the previous snapshot. Past that, merging
// approaches the cost of the full counting-sort rebuild and loses to its
// better locality. Deletes count toward the churn: every deleted edge makes
// the merge visit (and the merchant side re-derive) an affected row, exactly
// like an insert does.
const deltaRebuildDenominator = 4

// fullBuildKeepCap is the largest concat-scratch capacity (in edges) kept
// after a full rebuild; larger buffers are released so one big build does
// not pin O(|E|) scratch on a graph that thereafter only does delta builds.
const fullBuildKeepCap = 1 << 16

// logEntry is one live edge in a shard log, stamped with the version and
// wall time of the batch that ingested it. The stamps drive the window
// policy: age in versions compares ver, age in wall time compares at.
type logEntry struct {
	e   bipartite.Edge
	ver uint64
	at  int64 // unix nanoseconds
}

// Graph is a mutable, concurrency-safe dynamic bipartite graph. The zero
// value is not usable; construct with New or NewSharded. All methods are
// safe for concurrent use.
type Graph struct {
	shards []shard
	mask   uint32 // len(shards) - 1; shard of user u is u & mask

	// commitMu makes (version, shard logs) capturable as one consistent cut:
	// appends hold the read half for the whole batch (shard writes + version
	// bump), while captures and retire passes take the write half. Appends
	// therefore only serialize against captures, retires, and same-shard
	// writers, never each other.
	commitMu sync.RWMutex
	version  atomic.Uint64
	// lastIngest is the version of the newest adding batch. The version-age
	// window measures against it rather than version itself: retire passes
	// bump version too, and aging against that would make an idle graph
	// slide its own window until it drained.
	lastIngest atomic.Uint64

	// journal, when set, receives every batch that added edges and every
	// retire pass that removed edges, tagged with the version the change
	// committed as. It is read under commitMu (read half for appends, write
	// half for retires) and swapped under the write half, so a change never
	// races the tee.
	journal Journal

	// now supplies ingest timestamps; it exists so tests can drive the
	// wall-clock window deterministically.
	now func() time.Time

	// Size counters, updated once per touched shard per batch; reads are
	// lock-free and exact whenever no append is in flight.
	numEdges     atomic.Int64
	numUsers     atomic.Int64
	numMerchants atomic.Int64

	// pendingDel accumulates edges that retire passes removed from below the
	// shards' baseline marks — edges the previous snapshot still contains.
	// The next capture consumes it as the delete half of the delta. Guarded
	// by commitMu's write half (retire and capture both hold it).
	pendingDel []bipartite.Edge

	// Window state: the active policy and the expiry watermark (no live edge
	// carries a stamp at or below the mark). See window.go.
	window   atomic.Pointer[WindowPolicy]
	markVer  atomic.Uint64
	markWall atomic.Int64

	retiredTotal atomic.Uint64
	retirePasses atomic.Uint64
	retireNs     atomic.Int64
	journalErrs  atomic.Uint64

	// groupScratch pools per-append batch-grouping state (multi-shard only).
	groupScratch sync.Pool

	buildMu  sync.Mutex               // single-flights cold snapshot builds
	snap     atomic.Pointer[snapshot] // published under buildMu, read lock-free
	ext      *bipartite.ExtendBuilder // build arena, guarded by buildMu
	logRefs  [][]logEntry             // capture scratch, guarded by buildMu
	insStart []int                    // capture scratch: per-shard baseline marks
	edgeBuf  []bipartite.Edge         // delta/full concat scratch, guarded by buildMu

	deltaBuilds  atomic.Uint64
	fullBuilds   atomic.Uint64
	deltaBuildNs atomic.Int64
	fullBuildNs  atomic.Int64

	// Touched-node history (delta.go): which users/merchants each committed
	// version changed, bounded by histLimit summed endpoints. histMu is a
	// leaf lock acquired below commitMu (either half) and the shard locks.
	histMu    sync.Mutex
	hist      []deltaRec
	histNodes int
	histFloor uint64 // Delta ranges starting below this are unanswerable
	histLimit int
}

// shard is one user-range partition of the edge log. The padding keeps hot
// shard headers on distinct cache lines so uncontended shards stay
// uncontended at the hardware level too.
type shard struct {
	mu   sync.Mutex
	seen u64set.Set // edge key set for O(1) dedup; supports delete for expiry
	// entries is the live log in append order. Appends only ever append;
	// retire passes rewrite survivors into a fresh backing array (preserving
	// order), so a captured view of the old array stays immutable.
	entries []logEntry
	// snapMark is the baseline boundary: entries below it are contained in
	// the latest captured snapshot, entries at or past it are the pending
	// insert delta. Written by captures and retires (commitMu write half).
	snapMark int
	_        [64]byte
}

// snapshot pins a built CSR to the version it reflects and the window
// watermark current at its capture.
type snapshot struct {
	g       *bipartite.Graph
	version uint64
	mark    WindowMark
}

// New returns an empty dynamic graph at version 0 with DefaultShards shards.
func New() *Graph { return NewSharded(0) }

// NewSharded returns an empty dynamic graph with the given shard count,
// rounded up to a power of two and clamped to [1, MaxShards]; 0 selects
// DefaultShards. Shard count affects only write concurrency: snapshots, and
// therefore detection results, are byte-identical across shard counts.
func NewSharded(shards int) *Graph {
	if shards <= 0 {
		shards = DefaultShards()
	}
	p := 1
	for p < shards && p < MaxShards {
		p <<= 1
	}
	g := &Graph{
		shards: make([]shard, p),
		mask:   uint32(p - 1),
		ext:    bipartite.NewExtendBuilder(),
		//ensemfdet:nondeterministic-ok the clock drives window aging only; votes key on logical versions
		now:       time.Now,
		histLimit: DefaultDeltaHistoryNodes,
	}
	g.groupScratch.New = func() any { return new(groupScratch) }
	return g
}

// NumShards returns the shard count chosen at construction.
func (g *Graph) NumShards() int { return len(g.shards) }

func edgeKey(e bipartite.Edge) uint64 { return uint64(e.U)<<32 | uint64(e.V) }

// AppendResult summarizes one batched append.
type AppendResult struct {
	// Added is the number of edges not previously present.
	Added int
	// Duplicates is the number of edges skipped because they were already
	// in the graph (or repeated within the batch).
	Duplicates int
	// Version is the graph version after the append. It exceeds the
	// pre-append version iff Added > 0.
	Version uint64
	// Stats is the graph size immediately after this append. It is exact
	// when no other writer races this batch; concurrent batches may be
	// partially included.
	Stats Stats
	// Err reports a journal (durability) failure: the batch is committed in
	// memory, but the write-ahead log did not acknowledge it, so it may not
	// survive a restart. Callers serving durable ingest must fail the
	// request; a retry is safe because appends deduplicate.
	Err error
}

// Journal is the persistence tee: when installed via SetJournal, every batch
// that adds at least one edge is handed to AppendEdges, and every retire
// pass (or explicit Remove) that removes at least one edge is handed to
// RetireEdges, each with the version the change committed as, before the
// mutating call returns. The full pre-dedup batch is journaled — replaying
// it through Append is idempotent — and retire records carry the exact edges
// removed, so replaying them through Remove reproduces the deletion without
// re-evaluating any window policy. Implementations are called concurrently
// (one call per in-flight batch; RetireEdges is serialized by the commit
// lock) and must serialize internally; internal/persist.Store is the
// production implementation.
type Journal interface {
	AppendEdges(version uint64, edges []bipartite.Edge) error
	// RetireEdges receives the exact removed edges plus the window watermark
	// after the pass, so replay restores expiry progress (AdvanceMarkTo)
	// along with the deletion — the watermark advances between snapshots,
	// and without it in the record a crash would roll expiry progress back
	// to the last snapshot's mark.
	RetireEdges(version uint64, edges []bipartite.Edge, mark WindowMark) error
}

// SetJournal installs (or, with nil, removes) the durability tee. Install it
// after recovery has replayed any existing log and before accepting traffic;
// batches appended while no journal is set are not persisted.
func (g *Graph) SetJournal(j Journal) {
	g.commitMu.Lock()
	defer g.commitMu.Unlock()
	g.journal = j
}

// Restore seeds an empty dynamic graph from a recovered snapshot, adopting
// its version; RestoreAt is the variant recovery uses to also adopt the
// window watermark and ingest-time stamp recorded in a v2 snapshot file.
func (g *Graph) Restore(snap *bipartite.Graph, version uint64) error {
	return g.RestoreAt(snap, version, WindowMark{}, 0)
}

// RestoreAt seeds an empty dynamic graph from a recovered snapshot, adopting
// its version and window watermark. The snapshot is also pre-published as
// the graph's cached CSR snapshot, so the first post-boot Snapshot — and
// every delta build after it — starts from the recovered arrays instead of
// rebuilding O(|E|) state.
//
// Restored edges are stamped with the snapshot's version and with wall (the
// time the snapshot was written; 0 falls back to now): their original
// per-batch stamps are not persisted, so for windowing purposes the whole
// recovered set is treated as ingested when the snapshot was cut. The window
// therefore never expires a recovered edge earlier than the live run would
// have — it can only retain it a little longer, and steady-state traffic
// re-converges the stamps.
//
// RestoreAt must run before any Append and before SetJournal; snap must be a
// canonical CSR (one produced by this package's Snapshot or the bipartite
// codec), or later incremental snapshots would diverge from full rebuilds.
func (g *Graph) RestoreAt(snap *bipartite.Graph, version uint64, mark WindowMark, wall int64) error {
	if g.version.Load() != 0 || g.numEdges.Load() != 0 {
		return errors.New("stream: Restore requires an empty graph")
	}
	g.markVer.Store(mark.Version)
	g.markWall.Store(mark.Wall)
	if snap == nil {
		g.version.Store(version)
		g.lastIngest.Store(version)
		return nil
	}
	if wall == 0 {
		wall = g.now().UnixNano()
	}
	if res := g.Append(snap.EdgeList()); res.Duplicates != 0 {
		return fmt.Errorf("stream: restore snapshot contained %d duplicate edges", res.Duplicates)
	}
	atomicMax(&g.numUsers, int64(snap.NumUsers()))
	atomicMax(&g.numMerchants, int64(snap.NumMerchants()))
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for j := range sh.entries {
			sh.entries[j].ver = version
			sh.entries[j].at = wall
		}
		sh.snapMark = len(sh.entries)
		sh.mu.Unlock()
	}
	g.snap.Store(&snapshot{g: snap, version: version, mark: mark})
	g.version.Store(version)
	g.lastIngest.Store(version)
	// The restore's internal Append recorded the whole snapshot as one giant
	// touched set at a version label that no longer exists; the adopted
	// version starts a fresh history.
	g.histReset(version)
	return nil
}

// Append records a batch of purchase edges, deduplicating against everything
// currently live. The version counter advances once per batch that adds at
// least one new edge, so an idempotent retry of the same batch leaves the
// version — and therefore every cached detection — intact. An edge that was
// retired by the window is no longer in the dedup set, so re-observing it
// re-ingests it with fresh stamps. The batch is committed shard by shard: a
// concurrent snapshot may observe a prefix of a large multi-shard batch, but
// never a torn shard.
func (g *Graph) Append(edges []bipartite.Edge) AppendResult {
	g.commitMu.RLock()
	defer g.commitMu.RUnlock()
	at := g.now().UnixNano()

	var res AppendResult
	var maxU, maxV int64 = -1, -1
	if len(g.shards) == 1 {
		start, added := g.shards[0].appendRun(edges, &res.Duplicates, &maxU, &maxV)
		res.Added = added
		if res.Added > 0 {
			g.numEdges.Add(int64(res.Added))
			g.commitBatch(&res, edges, func(ver uint64) {
				g.shards[0].stamp(start, res.Added, ver, at)
			})
		}
	} else {
		// Counting-sort the batch into shard-contiguous runs first, so each
		// shard lock is taken once over its run instead of scanning the
		// whole batch per shard. The grouping scratch is pooled: steady-state
		// appends allocate nothing.
		gs := g.groupScratch.Get().(*groupScratch)
		grouped := gs.group(edges, g.mask)
		starts := scratch.Grow(&gs.starts, len(g.shards))
		added := scratch.Grow(&gs.added, len(g.shards))
		for si := range g.shards {
			added[si] = 0
			run := grouped[gs.off[si]:gs.off[si+1]]
			if len(run) == 0 {
				continue
			}
			start, n := g.shards[si].appendRun(run, &res.Duplicates, &maxU, &maxV)
			if n > 0 {
				g.numEdges.Add(int64(n))
				res.Added += n
				starts[si], added[si] = start, n
			}
		}
		if res.Added > 0 {
			g.commitBatch(&res, edges, func(ver uint64) {
				for si := range g.shards {
					if added[si] > 0 {
						g.shards[si].stamp(starts[si], added[si], ver, at)
					}
				}
			})
		}
		g.groupScratch.Put(gs)
	}
	if res.Added > 0 {
		atomicMax(&g.numUsers, maxU+1)
		atomicMax(&g.numMerchants, maxV+1)
	} else {
		res.Version = g.version.Load()
	}
	res.Stats = Stats{
		Version:      res.Version,
		NumUsers:     int(g.numUsers.Load()),
		NumMerchants: int(g.numMerchants.Load()),
		NumEdges:     int(g.numEdges.Load()),
	}
	return res
}

// commitBatch finishes an adding batch while still under the commit read
// lock: it bumps the version, stamps the appended log entries with it (the
// stamp callback re-takes each touched shard lock; the appended index ranges
// are stable because retires need the commit write half), and tees the batch
// into the journal. A snapshot capture at version V therefore never completes
// before every batch with version ≤ V has been stamped and offered to the
// log, which is what makes truncating the log at a snapshot's watermark safe.
// The full pre-dedup batch is journaled; replay re-deduplicates.
func (g *Graph) commitBatch(res *AppendResult, edges []bipartite.Edge, stamp func(ver uint64)) {
	res.Version = g.version.Add(1)
	atomicMaxU64(&g.lastIngest, res.Version)
	stamp(res.Version)
	g.histRecord(res.Version, edges, res.Added, 0)
	if g.journal != nil {
		if err := g.journal.AppendEdges(res.Version, edges); err != nil {
			res.Err = fmt.Errorf("stream: journal append at version %d: %w", res.Version, err)
		}
	}
}

// appendRun folds a slice of edges, all belonging to this shard (or the only
// shard), into the shard under its lock, returning the log index the run
// started at and the number of entries added. Entries are stamped later by
// the batch commit, once the batch's version is known; the [start,
// start+added) range stays valid because concurrent batches only append past
// it and retire passes exclude appends entirely.
func (s *shard) appendRun(run []bipartite.Edge, dups *int, maxU, maxV *int64) (start, added int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start = len(s.entries)
	for _, e := range run {
		if !s.seen.Add(edgeKey(e)) {
			*dups++
			continue
		}
		s.entries = append(s.entries, logEntry{e: e})
		added++
		if int64(e.U) > *maxU {
			*maxU = int64(e.U)
		}
		if int64(e.V) > *maxV {
			*maxV = int64(e.V)
		}
	}
	return start, added
}

// stamp writes the batch's version and ingest time into the entries this
// batch appended. The range [start, start+n) is stable: entries only ever
// grow between retire passes, and retire passes exclude appends entirely.
func (s *shard) stamp(start, n int, ver uint64, at int64) {
	s.mu.Lock()
	for i := start; i < start+n; i++ {
		s.entries[i].ver = ver
		s.entries[i].at = at
	}
	s.mu.Unlock()
}

// groupScratch is reusable per-append grouping state: a shard-major
// permutation of the batch plus the run offsets and per-shard stamp ranges.
type groupScratch struct {
	buf    []bipartite.Edge
	off    []int // len shards+1 after group; off[s]:off[s+1] is shard s's run
	cur    []int
	starts []int
	added  []int
}

// group scatters edges into shard-contiguous runs in gs.buf and returns the
// permuted batch; gs.off holds the run boundaries.
func (gs *groupScratch) group(edges []bipartite.Edge, mask uint32) []bipartite.Edge {
	shards := int(mask) + 1
	buf := scratch.Grow(&gs.buf, len(edges))
	off := scratch.GrowZero(&gs.off, shards+1)
	cur := scratch.Grow(&gs.cur, shards)
	for _, e := range edges {
		off[(e.U&mask)+1]++
	}
	for s := 0; s < shards; s++ {
		off[s+1] += off[s]
		cur[s] = off[s]
	}
	for _, e := range edges {
		s := e.U & mask
		buf[cur[s]] = e
		cur[s]++
	}
	return buf
}

// atomicMax raises *a to v if v is larger.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// atomicMaxU64 raises *a to v if v is larger.
func atomicMaxU64(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// AppendEdge records a single purchase (u, v).
func (g *Graph) AppendEdge(u, v uint32) AppendResult {
	return g.Append([]bipartite.Edge{{U: u, V: v}})
}

// Version returns the current graph version. Version 0 is the empty graph.
func (g *Graph) Version() uint64 { return g.version.Load() }

// AdvanceVersionTo raises the version counter to v if it is currently
// lower. It exists for WAL replay: a crash can leave a version hole — a
// batch that failed to journal, or one record of a concurrent pair torn
// from the log tail — and replaying the surviving records (edge batches and
// tombstones alike) then advancing to each record's original version keeps
// recovered version labels (and therefore vote-cache keys) identical to what
// acknowledged clients saw, instead of silently renumbering everything after
// the hole.
func (g *Graph) AdvanceVersionTo(v uint64) {
	for {
		cur := g.version.Load()
		if v <= cur {
			return
		}
		if g.version.CompareAndSwap(cur, v) {
			// The jump means versions in (cur, v) exist in the WAL's history
			// but not in ours; deltas spanning the hole would silently claim
			// nothing changed across it.
			g.histReset(v)
			return
		}
	}
}

// ForceVersionTo sets the version counter to exactly v — lower included,
// which AdvanceVersionTo can never do. It exists for epoch-boundary resyncs
// in failover: a follower whose history forked from a newly promoted primary
// is diffed onto the primary's snapshot and must then adopt the snapshot's
// version even though its own (abandoned-timeline) counter is higher.
// Runs under the commit write lock so no in-flight append commits across the
// change; the cached CSR snapshot keyed to the old version is invalidated by
// the mismatch on its next read.
func (g *Graph) ForceVersionTo(v uint64) {
	g.commitMu.Lock()
	defer g.commitMu.Unlock()
	g.version.Store(v)
	g.lastIngest.Store(v)
	// An epoch resync adopts another timeline's version labels; nothing in
	// the local history relates to them.
	g.histReset(v)
}

// ForceMarkTo sets the window expiry watermark to exactly mark — lower
// included. Like ForceVersionTo it exists for epoch-boundary resyncs, where
// the adopted snapshot's watermark replaces the abandoned timeline's.
func (g *Graph) ForceMarkTo(mark WindowMark) {
	g.commitMu.Lock()
	defer g.commitMu.Unlock()
	g.markVer.Store(mark.Version)
	g.markWall.Store(mark.Wall)
}

// Stats is a point-in-time size summary of the dynamic graph.
type Stats struct {
	Version      uint64 `json:"version"`
	NumUsers     int    `json:"num_users"`
	NumMerchants int    `json:"num_merchants"`
	NumEdges     int    `json:"num_edges"`
}

// Stats returns the current version and side/edge counts. The reads are
// lock-free; values are exact whenever no append is in flight. NumEdges is
// the live (windowed) count; side sizes never shrink, because node ids are
// dense indices and a fully expired user keeps its id.
func (g *Graph) Stats() Stats {
	return Stats{
		Version:      g.version.Load(),
		NumUsers:     int(g.numUsers.Load()),
		NumMerchants: int(g.numMerchants.Load()),
		NumEdges:     int(g.numEdges.Load()),
	}
}

// ShardSize reports one shard's log size.
type ShardSize struct {
	Shard    int `json:"shard"`
	NumEdges int `json:"num_edges"`
}

// ShardSizes returns the per-shard live edge counts, for observability.
func (g *Graph) ShardSizes() []ShardSize {
	out := make([]ShardSize, len(g.shards))
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.Lock()
		out[i] = ShardSize{Shard: i, NumEdges: len(s.entries)}
		s.mu.Unlock()
	}
	return out
}

// BuildStats counts snapshot constructions by kind, with cumulative build
// time; the delta/full ratio is the health signal of the incremental path.
type BuildStats struct {
	DeltaBuilds   uint64        `json:"delta_builds"`
	FullBuilds    uint64        `json:"full_builds"`
	DeltaBuildDur time.Duration `json:"delta_build_ns"`
	FullBuildDur  time.Duration `json:"full_build_ns"`
}

// BuildStats returns cumulative snapshot-build counters.
func (g *Graph) BuildStats() BuildStats {
	return BuildStats{
		DeltaBuilds:   g.deltaBuilds.Load(),
		FullBuilds:    g.fullBuilds.Load(),
		DeltaBuildDur: time.Duration(g.deltaBuildNs.Load()),
		FullBuildDur:  time.Duration(g.fullBuildNs.Load()),
	}
}

// Snapshot returns an immutable CSR view of the graph and the version it
// reflects. The result is cached: repeated calls at an unchanged version
// return the same *bipartite.Graph, so snapshotting is O(1) between appends.
// Cold builds are single-flighted — a burst of snapshotters after an ingest
// performs one capture and one build, not one per caller — and incremental:
// when a previous snapshot exists and the churn since it (appended edges
// plus retired edges) is small, the new CSR is merged from (previous
// snapshot, inserts, deletes) instead of rebuilt from all |E| edges. The
// returned graph is never mutated by later appends or retires, and is
// byte-identical for a given live edge set regardless of shard count, append
// order, retire schedule, or which build path produced it.
func (g *Graph) Snapshot() (*bipartite.Graph, uint64) {
	s := g.snapshotInternal()
	return s.g, s.version
}

// SnapshotWithMark is Snapshot plus the window watermark captured atomically
// with the CSR cut — the persistence layer stores it in the snapshot file so
// recovery adopts a watermark consistent with the recovered edge set.
func (g *Graph) SnapshotWithMark() (*bipartite.Graph, uint64, WindowMark) {
	s := g.snapshotInternal()
	return s.g, s.version, s.mark
}

func (g *Graph) snapshotInternal() *snapshot {
	if s := g.snap.Load(); s != nil && s.version == g.version.Load() {
		return s
	}
	// Serialize builders; losers of the race re-check the cache the winner
	// just filled. Append never takes buildMu, so ingest is unaffected.
	g.buildMu.Lock()
	defer g.buildMu.Unlock()
	if s := g.snap.Load(); s != nil && s.version == g.version.Load() {
		return s
	}
	prev := g.snap.Load()

	// Capture a consistent cut under the commit lock: version, side sizes,
	// watermark, a stable view of every shard log, and the pending deletes.
	// The capture is also the baseline advance — each shard's snapMark moves
	// to its log end and the delete list is taken — because the build below
	// always completes and publishes, making this cut the next delta's
	// starting point. Logs are append-only between retire passes (and retire
	// rewrites into fresh arrays), so the captured views stay immutable after
	// release and the hold time is O(shards), not O(edges) — ingest stalls
	// for the capture, never for the build.
	g.commitMu.Lock()
	v := g.version.Load()
	nu := int(g.numUsers.Load())
	nm := int(g.numMerchants.Load())
	mark := WindowMark{Version: g.markVer.Load(), Wall: g.markWall.Load()}
	logs := scratch.Grow(&g.logRefs, len(g.shards))
	insStart := scratch.Grow(&g.insStart, len(g.shards))
	total, insTotal := 0, 0
	for i := range g.shards {
		sh := &g.shards[i]
		logs[i] = sh.entries
		insStart[i] = sh.snapMark
		total += len(sh.entries)
		insTotal += len(sh.entries) - sh.snapMark
		sh.snapMark = len(sh.entries)
	}
	dels := g.pendingDel
	g.pendingDel = nil
	g.commitMu.Unlock()

	churn := insTotal + len(dels)
	//ensemfdet:nondeterministic-ok build timing feeds the *BuildNs metrics, never the built graph
	start := time.Now()
	var built *bipartite.Graph
	if prev != nil && churn*deltaRebuildDenominator <= prev.g.NumEdges() {
		ins := scratch.Grow(&g.edgeBuf, insTotal)[:0]
		for i, log := range logs {
			for _, en := range log[insStart[i]:] {
				ins = append(ins, en.e)
			}
		}
		g.edgeBuf = ins
		built = g.ext.ExtendDelta(prev.g, ins, dels, nu, nm)
		g.deltaBuilds.Add(1)
		//ensemfdet:nondeterministic-ok metrics-only duration
		g.deltaBuildNs.Add(int64(time.Since(start)))
	} else {
		all := scratch.Grow(&g.edgeBuf, total)[:0]
		for _, log := range logs {
			for _, en := range log {
				all = append(all, en.e)
			}
		}
		g.edgeBuf = all
		built = g.ext.Rebuild(nu, nm, all)
		g.fullBuilds.Add(1)
		//ensemfdet:nondeterministic-ok metrics-only duration
		g.fullBuildNs.Add(int64(time.Since(start)))
		// A full rebuild grew the concat scratch to O(|E|); steady-state
		// traffic then takes only the delta path, which needs a fraction of
		// that. Release oversized buffers rather than pinning |E| edges of
		// scratch for the graph's lifetime — the next full build (rare by
		// design) just re-allocates.
		if cap(g.edgeBuf) > fullBuildKeepCap {
			g.edgeBuf = nil
		}
	}
	clear(logs) // do not pin shard log arrays beyond the build

	ns := &snapshot{g: built, version: v, mark: mark}
	g.snap.Store(ns)
	return ns
}
