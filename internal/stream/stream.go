// Package stream provides the mutable front half of the serving pipeline: a
// concurrency-safe dynamic bipartite graph that accepts batched edge appends
// as purchases arrive and hands out immutable bipartite.Graph snapshots for
// detection.
//
// The paper's ensemble (and every algorithm in this repository) works on an
// immutable dual-CSR Graph. A production ingest path cannot rebuild that CSR
// per purchase, so Graph keeps the live state as a deduplicated edge log
// guarded by a mutex and materializes CSR snapshots lazily, caching one
// snapshot per version. Appends bump a monotonic version counter only when
// they change the edge set, which is what lets the serve layer key its vote
// cache on (version, config) and answer repeat queries without re-running
// detection.
//
// Snapshot construction copies the edge log under a read lock and builds the
// CSR outside any lock, so detection never blocks ingest for longer than a
// memcpy of the edge slice.
package stream

import (
	"sync"

	"ensemfdet/internal/bipartite"
)

// Graph is a mutable, concurrency-safe dynamic bipartite graph. The zero
// value is not usable; construct with New. All methods are safe for
// concurrent use.
type Graph struct {
	mu           sync.RWMutex
	numUsers     int
	numMerchants int
	edges        []bipartite.Edge    // deduplicated, append order
	seen         map[uint64]struct{} // edge key set for O(1) dedup
	version      uint64              // bumps only when the edge set changes

	buildMu     sync.Mutex       // single-flights cold snapshot builds
	snap        *bipartite.Graph // cached CSR snapshot of snapVersion
	snapVersion uint64
}

// New returns an empty dynamic graph at version 0.
func New() *Graph {
	return &Graph{seen: make(map[uint64]struct{})}
}

func edgeKey(e bipartite.Edge) uint64 { return uint64(e.U)<<32 | uint64(e.V) }

// AppendResult summarizes one batched append.
type AppendResult struct {
	// Added is the number of edges not previously present.
	Added int
	// Duplicates is the number of edges skipped because they were already
	// in the graph (or repeated within the batch).
	Duplicates int
	// Version is the graph version after the append. It exceeds the
	// pre-append version iff Added > 0.
	Version uint64
	// Stats is the graph size immediately after this append, captured
	// under the same lock so it is consistent with Version even when other
	// writers race.
	Stats Stats
}

// Append records a batch of purchase edges, deduplicating against everything
// already ingested. The version counter advances once per batch that adds at
// least one new edge, so an idempotent retry of the same batch leaves the
// version — and therefore every cached detection — intact.
func (g *Graph) Append(edges []bipartite.Edge) AppendResult {
	g.mu.Lock()
	defer g.mu.Unlock()
	var res AppendResult
	for _, e := range edges {
		k := edgeKey(e)
		if _, dup := g.seen[k]; dup {
			res.Duplicates++
			continue
		}
		g.seen[k] = struct{}{}
		g.edges = append(g.edges, e)
		if int(e.U) >= g.numUsers {
			g.numUsers = int(e.U) + 1
		}
		if int(e.V) >= g.numMerchants {
			g.numMerchants = int(e.V) + 1
		}
		res.Added++
	}
	if res.Added > 0 {
		g.version++
	}
	res.Version = g.version
	res.Stats = Stats{
		Version:      g.version,
		NumUsers:     g.numUsers,
		NumMerchants: g.numMerchants,
		NumEdges:     len(g.edges),
	}
	return res
}

// AppendEdge records a single purchase (u, v).
func (g *Graph) AppendEdge(u, v uint32) AppendResult {
	return g.Append([]bipartite.Edge{{U: u, V: v}})
}

// Version returns the current graph version. Version 0 is the empty graph.
func (g *Graph) Version() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.version
}

// Stats is a point-in-time size summary of the dynamic graph.
type Stats struct {
	Version      uint64 `json:"version"`
	NumUsers     int    `json:"num_users"`
	NumMerchants int    `json:"num_merchants"`
	NumEdges     int    `json:"num_edges"`
}

// Stats returns the current version and side/edge counts atomically.
func (g *Graph) Stats() Stats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return Stats{
		Version:      g.version,
		NumUsers:     g.numUsers,
		NumMerchants: g.numMerchants,
		NumEdges:     len(g.edges),
	}
}

// Snapshot returns an immutable CSR view of the graph and the version it
// reflects. The result is cached: repeated calls at an unchanged version
// return the same *bipartite.Graph, so snapshotting is O(1) between appends.
// Cold builds are single-flighted — a burst of snapshotters after an ingest
// performs one edge-log copy and one CSR build, not one per caller. The
// returned graph is never mutated by later appends.
func (g *Graph) Snapshot() (*bipartite.Graph, uint64) {
	if snap, v, ok := g.cachedSnapshot(); ok {
		return snap, v
	}
	// Serialize builders; losers of the race re-check the cache the winner
	// just filled. Append never takes buildMu, so ingest is unaffected.
	g.buildMu.Lock()
	defer g.buildMu.Unlock()
	if snap, v, ok := g.cachedSnapshot(); ok {
		return snap, v
	}

	// Copy the log under the read lock; build the CSR outside it so a large
	// build never stalls ingest.
	g.mu.RLock()
	v := g.version
	nu, nm := g.numUsers, g.numMerchants
	edges := make([]bipartite.Edge, len(g.edges))
	copy(edges, g.edges)
	g.mu.RUnlock()

	snap := bipartite.NewBuilderSized(nu, nm, len(edges))
	snap.AddEdges(edges)
	built := snap.Build()

	g.mu.Lock()
	g.snap, g.snapVersion = built, v
	g.mu.Unlock()
	return built, v
}

func (g *Graph) cachedSnapshot() (*bipartite.Graph, uint64, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.snap != nil && g.snapVersion == g.version {
		return g.snap, g.snapVersion, true
	}
	return nil, 0, false
}
