package stream

import (
	"fmt"
	"slices"
	"time"

	"ensemfdet/internal/bipartite"
)

// This file is the sliding-window half of the dynamic graph: a WindowPolicy
// bounds how long (in wall time or versions) or how many edges the graph
// retains, Retire applies it, and Remove deletes an explicit edge set (the
// primitive WAL tombstone replay uses). Both run under the commit lock's
// write half, so a retire is a version bump exactly like an adding append:
// snapshots observe either none or all of it, the journal tee sees it before
// the mutating call returns, and the vote cache invalidates naturally.

// WindowPolicy bounds the live edge set. Any combination of the three limits
// may be set; an edge is retired when it violates any of them. The zero
// value disables windowing.
type WindowPolicy struct {
	// MaxAge retires edges whose ingest wall time is older than now−MaxAge
	// at the next retire pass. 0 disables the age bound.
	MaxAge time.Duration `json:"max_age_ns"`
	// MaxVersions keeps only the newest MaxVersions ingest versions: an edge
	// retires once it is MaxVersions or more adding batches older than the
	// newest ingest (retire passes bump the version too but never age the
	// window). 0 disables the version bound.
	MaxVersions uint64 `json:"max_versions"`
	// MaxEdges caps the live edge count: when exceeded, edges are retired
	// oldest-version-first, and within the boundary version the canonically
	// smallest (user, merchant) pairs go first, so the pass lands exactly on
	// the cap. Both rules make the retired set a pure function of the ingest
	// history — independent of shard count and scan order — which is what
	// pins windowed snapshots byte-identical across shard counts; canonical
	// ordering within one version is also what keeps a recovered graph
	// (whose whole restored history shares one version stamp) from being
	// evicted wholesale the first time the cap trips. 0 disables the count
	// bound.
	MaxEdges int `json:"max_edges"`
}

// Enabled reports whether any bound is set.
func (p WindowPolicy) Enabled() bool {
	return p.MaxAge > 0 || p.MaxVersions > 0 || p.MaxEdges > 0
}

// WindowMark is the expiry watermark: every live edge carries an ingest
// version stamp strictly above Version, and (when wall-time windowing has
// run) a wall stamp strictly above Wall. Snapshots persist the mark so a
// recovered graph knows how far expiry had progressed — no restart can
// resurrect an edge the window already retired, because tombstones are
// replayed from the WAL and pre-snapshot deletions are simply absent from
// the snapshot itself; the mark carries the *progress state* across the
// boundary for observability and stamp adoption.
type WindowMark struct {
	Version uint64 `json:"version"`
	Wall    int64  `json:"wall_unix_ns"`
}

// RetireResult summarizes one retire pass or explicit removal.
type RetireResult struct {
	// Removed is the number of edges deleted from the live graph.
	Removed int
	// Version is the graph version after the pass; it exceeds the prior
	// version iff Removed > 0.
	Version uint64
	// Mark is the window watermark after the pass.
	Mark WindowMark
	// Err reports a journal (durability) failure: the retirement is
	// committed in memory but its tombstone record did not reach the
	// write-ahead log. The store degrades exactly as for a failed append —
	// subsequent ingest is rejected until a covering snapshot heals the gap.
	Err error
}

// SetWindow installs (or, with a zero policy, removes) the sliding-window
// policy. The policy only takes effect at Retire calls; installing it never
// retires anything by itself.
func (g *Graph) SetWindow(p WindowPolicy) {
	if p.Enabled() {
		g.window.Store(&p)
	} else {
		g.window.Store(nil)
	}
}

// Window returns the active window policy (zero when windowing is off).
func (g *Graph) Window() WindowPolicy {
	if p := g.window.Load(); p != nil {
		return *p
	}
	return WindowPolicy{}
}

// Retire applies the window policy as of now: it removes every live edge
// that violates a bound, deletes their keys from the dedup sets (so a
// re-observed edge re-ingests with fresh stamps), bumps the version once if
// anything was removed, journals a tombstone record at that version, and
// advances the window watermark. It is a no-op (and does not bump the
// version) when no policy is set or nothing is old enough.
//
// The whole pass holds the commit lock exclusively: ingest stalls for the
// O(live edges) scan, which is the price of snapshots staying exact — a
// capture can never observe half a retire. Passes are expected to run on a
// period (the daemon's retire ticker), not per request.
func (g *Graph) Retire(now time.Time) RetireResult {
	p := g.window.Load()
	if p == nil {
		return RetireResult{Version: g.version.Load(), Mark: g.mark()}
	}
	//ensemfdet:nondeterministic-ok retire-pass wall timing feeds retireNs metrics; the cut itself uses the caller-supplied now
	start := time.Now()
	g.commitMu.Lock()
	defer g.commitMu.Unlock()

	curV := g.version.Load()
	var verCut uint64
	// Age against the newest ingest, not the raw version counter: retire
	// bumps must not count as aging, or idle periodic passes would slide the
	// window over a quiescent graph until nothing was left.
	if base := g.lastIngest.Load(); p.MaxVersions > 0 && base > p.MaxVersions {
		verCut = base - p.MaxVersions
	}
	var wallCut int64
	if p.MaxAge > 0 {
		wallCut = now.UnixNano() - int64(p.MaxAge)
	}
	var partial map[uint64]struct{}
	if p.MaxEdges > 0 {
		countCut, part := g.countCutLocked(p.MaxEdges, verCut, wallCut)
		verCut = max(verCut, countCut)
		partial = part
	}
	if verCut == 0 && wallCut == 0 && partial == nil {
		return RetireResult{Version: curV, Mark: g.mark()}
	}

	removed := g.removeMatchingLocked(func(en logEntry) bool {
		if en.ver <= verCut || (wallCut > 0 && en.at <= wallCut) {
			return true
		}
		_, dead := partial[edgeKey(en.e)]
		return dead
	})
	if len(removed) == 0 {
		return RetireResult{Version: curV, Mark: g.mark()}
	}
	atomicMaxU64(&g.markVer, verCut)
	if wallCut > 0 {
		atomicMax(&g.markWall, wallCut)
	}
	res := g.commitRemovalLocked(removed)
	g.retiredTotal.Add(uint64(len(removed)))
	g.retirePasses.Add(1)
	//ensemfdet:nondeterministic-ok metrics-only duration
	g.retireNs.Add(int64(time.Since(start)))
	return res
}

// countCutLocked computes what the MaxEdges bound demands beyond the age
// cuts: whole versions are dropped oldest-first while doing so keeps at
// least maxEdges survivors, and the remaining excess is taken from the next
// (boundary) version as its canonically smallest (U, V) edges — so the pass
// lands exactly on the cap, and a version holding many edges (one huge
// batch, or a recovered snapshot whose whole history shares one restore
// stamp) is trimmed, never evicted wholesale. Returns the whole-version
// cutoff plus the boundary version's partial-eviction key set (nil when the
// cut aligns with a version boundary). Requires the commit write lock.
func (g *Graph) countCutLocked(maxEdges int, verCut uint64, wallCut int64) (uint64, map[uint64]struct{}) {
	// Under the commit write lock numEdges is exact and bounds the age-cut
	// survivor count, so an in-cap graph — the steady state of a periodic
	// ticker — skips the O(live) scan entirely.
	if int(g.numEdges.Load()) <= maxEdges {
		return 0, nil
	}
	ageDead := func(en logEntry) bool {
		return en.ver <= verCut || (wallCut > 0 && en.at <= wallCut)
	}
	perVer := make(map[uint64]int)
	remaining := 0
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for _, en := range sh.entries {
			if ageDead(en) {
				continue // the age cuts already remove it
			}
			perVer[en.ver]++
			remaining++
		}
		sh.mu.Unlock()
	}
	if remaining <= maxEdges {
		return 0, nil
	}
	vers := make([]uint64, 0, len(perVer))
	for v := range perVer {
		vers = append(vers, v)
	}
	slices.Sort(vers)
	cut := uint64(0)
	boundary := uint64(0)
	for _, v := range vers {
		if remaining-perVer[v] >= maxEdges {
			remaining -= perVer[v]
			cut = v
			if remaining == maxEdges {
				return cut, nil
			}
			continue
		}
		boundary = v
		break
	}
	// Trim the boundary version: its canonically smallest excess edges go.
	excess := remaining - maxEdges
	cand := make([]bipartite.Edge, 0, perVer[boundary])
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		for _, en := range sh.entries {
			if en.ver == boundary && !ageDead(en) {
				cand = append(cand, en.e)
			}
		}
		sh.mu.Unlock()
	}
	slices.SortFunc(cand, func(a, b bipartite.Edge) int {
		if a.U != b.U {
			if a.U < b.U {
				return -1
			}
			return 1
		}
		switch {
		case a.V < b.V:
			return -1
		case a.V > b.V:
			return 1
		}
		return 0
	})
	partial := make(map[uint64]struct{}, excess)
	for _, e := range cand[:excess] {
		partial[edgeKey(e)] = struct{}{}
	}
	return cut, partial
}

// Remove deletes the given edges from the live graph (edges not present are
// ignored), bumping the version once and journaling a tombstone record iff
// anything was removed. It is the exact-deletion primitive: WAL tombstone
// replay reproduces retirements through it without re-evaluating any policy,
// and it doubles as an explicit unlearning API (a chargeback, a data-removal
// request). The window watermark does not move — Remove expresses "these
// edges", not "everything this old".
func (g *Graph) Remove(edges []bipartite.Edge) RetireResult {
	if len(edges) == 0 {
		return RetireResult{Version: g.version.Load(), Mark: g.mark()}
	}
	keys := make(map[uint64]struct{}, len(edges))
	for _, e := range edges {
		keys[edgeKey(e)] = struct{}{}
	}
	g.commitMu.Lock()
	defer g.commitMu.Unlock()
	removed := g.removeMatchingLocked(func(en logEntry) bool {
		_, dead := keys[edgeKey(en.e)]
		return dead
	})
	if len(removed) == 0 {
		return RetireResult{Version: g.version.Load(), Mark: g.mark()}
	}
	return g.commitRemovalLocked(removed)
}

// removeMatchingLocked deletes every log entry dead() selects: the entry
// leaves its shard log (survivors are rewritten into a fresh backing array,
// preserving order, so captured views of the old array stay immutable), its
// key leaves the dedup set, and — when the entry sat below the shard's
// baseline mark, i.e. the previous snapshot contains it — the edge joins
// pendingDel for the next delta build. Requires the commit write lock;
// returns the removed edges for journaling.
func (g *Graph) removeMatchingLocked(dead func(logEntry) bool) []bipartite.Edge {
	var removed []bipartite.Edge
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		n := 0
		for _, en := range sh.entries {
			if dead(en) {
				n++
			}
		}
		if n == 0 {
			sh.mu.Unlock()
			continue
		}
		fresh := make([]logEntry, 0, len(sh.entries)-n)
		belowMark := 0
		for idx, en := range sh.entries {
			if dead(en) {
				sh.seen.Delete(edgeKey(en.e))
				removed = append(removed, en.e)
				if idx < sh.snapMark {
					belowMark++
					g.pendingDel = append(g.pendingDel, en.e)
				}
				continue
			}
			fresh = append(fresh, en)
		}
		sh.entries = fresh
		sh.snapMark -= belowMark
		sh.mu.Unlock()
	}
	return removed
}

// commitRemovalLocked finishes a removal that deleted at least one edge:
// version bump, size counter, journal tombstone tee. Requires the commit
// write lock — the tee under it guarantees a snapshot cut at version V has
// been offered every tombstone ≤ V, the same covering property adding
// appends have.
func (g *Graph) commitRemovalLocked(removed []bipartite.Edge) RetireResult {
	g.numEdges.Add(-int64(len(removed)))
	newV := g.version.Add(1)
	g.histRecord(newV, removed, 0, len(removed))
	res := RetireResult{Removed: len(removed), Version: newV, Mark: g.mark()}
	if g.journal != nil {
		if err := g.journal.RetireEdges(newV, removed, res.Mark); err != nil {
			g.journalErrs.Add(1)
			res.Err = fmt.Errorf("stream: journal retire at version %d: %w", newV, err)
		}
	}
	return res
}

// AdvanceMarkTo raises the window watermark to at least mark (each field
// independently). It exists for WAL replay: tombstone records carry the
// watermark their retire pass reached, and replaying them restores expiry
// progress exactly — without it, a crash would roll the mark back to the
// last snapshot's value.
func (g *Graph) AdvanceMarkTo(mark WindowMark) {
	atomicMaxU64(&g.markVer, mark.Version)
	atomicMax(&g.markWall, mark.Wall)
}

func (g *Graph) mark() WindowMark {
	return WindowMark{Version: g.markVer.Load(), Wall: g.markWall.Load()}
}

// WindowStats is a point-in-time summary of the window machinery, surfaced
// by the daemon's /v1/stats window section and the ensemfdetd_window_*
// metrics.
type WindowStats struct {
	// Policy is the active window policy (zero if windowing is off).
	Policy WindowPolicy `json:"policy"`
	// RetiredEdges counts edges retired by window passes since construction
	// (explicit Removes are not window retirements and are excluded).
	RetiredEdges uint64 `json:"retired_edges"`
	// RetirePasses counts Retire calls that removed at least one edge.
	RetirePasses uint64 `json:"retire_passes"`
	// RetireDur is cumulative time spent inside removing retire passes.
	RetireDur time.Duration `json:"retire_ns"`
	// JournalErrors counts removals whose tombstone record failed to reach
	// the journal (the store degrades until a snapshot heals it).
	JournalErrors uint64 `json:"journal_errors"`
	// Mark is the current expiry watermark.
	Mark WindowMark `json:"watermark"`
	// LiveEdges is the current live-window size (same value as
	// Stats.NumEdges, repeated here so the window section is self-contained).
	LiveEdges int `json:"live_edges"`
}

// WindowStats returns current window counters. All reads are lock-free.
func (g *Graph) WindowStats() WindowStats {
	return WindowStats{
		Policy:        g.Window(),
		RetiredEdges:  g.retiredTotal.Load(),
		RetirePasses:  g.retirePasses.Load(),
		RetireDur:     time.Duration(g.retireNs.Load()),
		JournalErrors: g.journalErrs.Load(),
		Mark:          g.mark(),
		LiveEdges:     int(g.numEdges.Load()),
	}
}
