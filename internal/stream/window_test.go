package stream

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ensemfdet/internal/bipartite"
)

// csrBytes serializes a graph through the binary codec — the strongest
// equality available: two graphs with identical csrBytes are byte-identical
// CSRs.
func csrBytes(t *testing.T, g *bipartite.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := bipartite.WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRetireByVersionAge(t *testing.T) {
	g := NewSharded(4)
	g.SetWindow(WindowPolicy{MaxVersions: 2})

	g.Append([]bipartite.Edge{{U: 0, V: 0}, {U: 1, V: 1}}) // version 1
	g.AppendEdge(2, 2)                                     // version 2
	g.AppendEdge(3, 3)                                     // version 3

	// Window of 2 versions at version 3: batches stamped ≤ 1 expire.
	res := g.Retire(time.Now())
	if res.Removed != 2 || res.Err != nil {
		t.Fatalf("retire: %+v, want Removed=2", res)
	}
	if res.Version != 4 {
		t.Fatalf("retire version = %d, want 4 (a retire is a version bump)", res.Version)
	}
	if res.Mark.Version != 1 {
		t.Fatalf("watermark = %d, want 1", res.Mark.Version)
	}
	if st := g.Stats(); st.NumEdges != 2 || st.NumUsers != 4 {
		t.Fatalf("post-retire stats: %+v (sides must not shrink)", st)
	}

	// A second pass with nothing old enough is a no-op: no bump.
	res = g.Retire(time.Now())
	if res.Removed != 0 || res.Version != 4 {
		t.Fatalf("idle retire: %+v", res)
	}

	// A retired edge left the dedup set: re-observing it re-ingests.
	re := g.Append([]bipartite.Edge{{U: 0, V: 0}})
	if re.Added != 1 || re.Duplicates != 0 || re.Version != 5 {
		t.Fatalf("re-ingest of retired edge: %+v, want Added=1 Version=5", re)
	}
	// A live edge is still a duplicate.
	if dup := g.AppendEdge(3, 3); dup.Added != 0 || dup.Duplicates != 1 {
		t.Fatalf("live edge re-append: %+v", dup)
	}
}

func TestRetireByWallAge(t *testing.T) {
	g := NewSharded(2)
	now := time.Unix(1000, 0)
	g.now = func() time.Time { return now }
	g.SetWindow(WindowPolicy{MaxAge: 10 * time.Second})

	g.AppendEdge(0, 0)
	now = now.Add(7 * time.Second)
	g.AppendEdge(1, 1)

	// 8s later: the first edge is 15s old, the second 8s.
	now = now.Add(8 * time.Second)
	res := g.Retire(now)
	if res.Removed != 1 {
		t.Fatalf("retire: %+v, want Removed=1", res)
	}
	if g.Stats().NumEdges != 1 {
		t.Fatalf("live edges = %d, want 1", g.Stats().NumEdges)
	}
	if want := now.Add(-10 * time.Second).UnixNano(); res.Mark.Wall != want {
		t.Fatalf("wall watermark = %d, want %d", res.Mark.Wall, want)
	}
	snap, _ := g.Snapshot()
	if snap.NumEdges() != 1 || !snap.HasEdge(1, 1) {
		t.Fatalf("snapshot after wall retire: %v", snap)
	}
}

func TestRetireByMaxEdges(t *testing.T) {
	g := NewSharded(4)
	g.SetWindow(WindowPolicy{MaxEdges: 5})
	g.Append([]bipartite.Edge{{U: 0, V: 0}, {U: 0, V: 1}, {U: 0, V: 2}}) // v1: 3 edges
	g.Append([]bipartite.Edge{{U: 1, V: 0}, {U: 1, V: 1}})               // v2: 2 edges
	g.Append([]bipartite.Edge{{U: 2, V: 0}})                             // v3: 1 edge

	// 6 live > 5: the pass lands exactly on the cap by trimming the oldest
	// (boundary) version — its canonically smallest edge (0,0) goes, the
	// rest of v1 survives.
	res := g.Retire(time.Now())
	if res.Removed != 1 {
		t.Fatalf("retire: %+v, want exactly 1 edge trimmed to land on the cap", res)
	}
	// No version was evicted whole, so the watermark does not move.
	if res.Mark.Version != 0 {
		t.Fatalf("watermark = %d, want 0 (boundary version only trimmed)", res.Mark.Version)
	}
	snap, _ := g.Snapshot()
	if snap.HasEdge(0, 0) {
		t.Fatal("canonically smallest boundary edge survived")
	}
	for _, e := range []bipartite.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 0}, {U: 1, V: 1}, {U: 2, V: 0}} {
		if !snap.HasEdge(e.U, e.V) {
			t.Fatalf("survivor %v missing", e)
		}
	}
	if snap.NumEdges() != 5 {
		t.Fatalf("snapshot has %d edges, want exactly the cap (5)", snap.NumEdges())
	}

	// A second over-cap batch: now v1's remainder (2 edges, oldest) plus one
	// edge of v2 must go to land on 5 again — whole-version eviction first,
	// canonical trim at the new boundary. The watermark follows the last
	// fully evicted version.
	g.Append([]bipartite.Edge{{U: 3, V: 0}, {U: 3, V: 1}, {U: 3, V: 2}})
	res = g.Retire(time.Now())
	if res.Removed != 3 {
		t.Fatalf("second retire: %+v, want 3 removed", res)
	}
	if res.Mark.Version != 1 {
		t.Fatalf("watermark = %d, want 1 (v1 now fully gone)", res.Mark.Version)
	}
	snap, _ = g.Snapshot()
	if snap.NumEdges() != 5 || snap.HasEdge(0, 1) || snap.HasEdge(0, 2) || snap.HasEdge(1, 0) {
		t.Fatalf("second trim kept the wrong edges: %v", snap)
	}
}

// TestCountCapAfterRestoreTrimsInsteadOfEvicting is the regression for the
// recovered-lump bug: after RestoreAt the whole history shares one version
// stamp, and the first over-cap retire must trim it to the cap — not evict
// the entire detection window as "one old batch".
func TestCountCapAfterRestoreTrimsInsteadOfEvicting(t *testing.T) {
	src := NewSharded(4)
	src.Append(randomEdges(55, 300, 100, 100))
	snap, v := src.Snapshot()
	live := snap.NumEdges()

	g := NewSharded(4)
	if err := g.RestoreAt(snap, v, WindowMark{}, 0); err != nil {
		t.Fatal(err)
	}
	g.SetWindow(WindowPolicy{MaxEdges: live}) // exactly at the cap
	g.Append([]bipartite.Edge{{U: 200, V: 200}, {U: 201, V: 201}, {U: 202, V: 202}})

	res := g.Retire(time.Now())
	if res.Removed != 3 {
		t.Fatalf("retire removed %d, want 3 (trim the restored lump, not evict it)", res.Removed)
	}
	if st := g.Stats(); st.NumEdges != live {
		t.Fatalf("live = %d, want %d", st.NumEdges, live)
	}
	s2, _ := g.Snapshot()
	if !s2.HasEdge(202, 202) {
		t.Fatal("fresh edge should have survived the trim")
	}
}

func TestRemoveExactEdges(t *testing.T) {
	g := NewSharded(4)
	j := &recordingJournal{}
	g.Append([]bipartite.Edge{{U: 0, V: 0}, {U: 1, V: 1}, {U: 2, V: 2}})
	g.SetJournal(j)

	res := g.Remove([]bipartite.Edge{{U: 1, V: 1}, {U: 9, V: 9}}) // second is absent
	if res.Removed != 1 || res.Version != 2 || res.Err != nil {
		t.Fatalf("remove: %+v, want Removed=1 Version=2", res)
	}
	if len(j.retireVersions) != 1 || j.retireVersions[0] != 2 ||
		len(j.retired[0]) != 1 || j.retired[0][0] != (bipartite.Edge{U: 1, V: 1}) {
		t.Fatalf("tombstone tee: versions=%v retired=%v", j.retireVersions, j.retired)
	}
	// Remove is not expiry: the watermark stays put.
	if res.Mark.Version != 0 {
		t.Fatalf("Remove moved the watermark: %+v", res.Mark)
	}
	// Removing nothing is a version no-op and journals nothing.
	res = g.Remove([]bipartite.Edge{{U: 9, V: 9}})
	if res.Removed != 0 || res.Version != 2 || len(j.retireVersions) != 1 {
		t.Fatalf("no-op remove: %+v (journal %v)", res, j.retireVersions)
	}
	snap, _ := g.Snapshot()
	if snap.NumEdges() != 2 || snap.HasEdge(1, 1) {
		t.Fatalf("removed edge survives in snapshot: %v", snap)
	}
}

func TestRetireJournalsTombstones(t *testing.T) {
	g := NewSharded(4)
	j := &recordingJournal{}
	g.SetJournal(j)
	g.SetWindow(WindowPolicy{MaxVersions: 1})

	g.Append([]bipartite.Edge{{U: 0, V: 0}, {U: 1, V: 1}}) // v1
	g.AppendEdge(2, 2)                                     // v2
	res := g.Retire(time.Now())                            // v3, retires v1's edges
	if res.Removed != 2 || res.Err != nil {
		t.Fatalf("retire: %+v", res)
	}
	if len(j.retireVersions) != 1 || j.retireVersions[0] != 3 {
		t.Fatalf("tombstone versions = %v, want [3]", j.retireVersions)
	}
	got := map[bipartite.Edge]bool{}
	for _, e := range j.retired[0] {
		got[e] = true
	}
	if len(got) != 2 || !got[bipartite.Edge{U: 0, V: 0}] || !got[bipartite.Edge{U: 1, V: 1}] {
		t.Fatalf("tombstone edges = %v", j.retired[0])
	}

	// A journal failure surfaces in the result but the in-memory retire
	// stands (the store's gap machinery owns healing).
	j.err = errFailedJournal
	g.AppendEdge(3, 3)
	g.AppendEdge(4, 4)
	res = g.Retire(time.Now())
	if res.Err == nil || res.Removed == 0 {
		t.Fatalf("failed-journal retire: %+v", res)
	}
	if g.WindowStats().JournalErrors != 1 {
		t.Fatalf("journal error not counted: %+v", g.WindowStats())
	}
}

// windowModel is the reference implementation of windowed-stream semantics:
// a map of live edges stamped with ingest versions, plus monotone side
// maxima. The stream graph across any shard count must reproduce exactly the
// CSR this model's surviving set builds to.
type windowModel struct {
	ver       uint64 // total version (appends + removing retires)
	ingestVer uint64 // version of the last adding append
	live      map[bipartite.Edge]uint64
	nu, nm    int
}

func newWindowModel() *windowModel {
	return &windowModel{live: map[bipartite.Edge]uint64{}}
}

func (m *windowModel) append(batch []bipartite.Edge) {
	var fresh []bipartite.Edge
	for _, e := range batch {
		if _, ok := m.live[e]; !ok {
			fresh = append(fresh, e)
		}
	}
	if len(fresh) == 0 {
		return
	}
	m.ver++
	m.ingestVer = m.ver
	for _, e := range fresh {
		m.live[e] = m.ver
		m.nu = max(m.nu, int(e.U)+1)
		m.nm = max(m.nm, int(e.V)+1)
	}
}

func (m *windowModel) retire(maxVersions uint64) {
	if m.ingestVer <= maxVersions {
		return
	}
	cut := m.ingestVer - maxVersions
	removed := false
	for e, v := range m.live {
		if v <= cut {
			delete(m.live, e)
			removed = true
		}
	}
	if removed {
		m.ver++
	}
}

func (m *windowModel) graph(t *testing.T) *bipartite.Graph {
	t.Helper()
	edges := make([]bipartite.Edge, 0, len(m.live))
	for e := range m.live {
		edges = append(edges, e)
	}
	g, err := bipartite.FromEdges(m.nu, m.nm, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestWindowedSnapshotDeterminism is the tentpole's determinism pin: the
// same append/retire schedule, run against shard counts {1, 4, 16}, must
// produce byte-identical snapshot CSRs at every step — equal to the model's
// from-scratch build of the surviving set (so the delta chain with deletions
// composes exactly), with matching versions and watermarks, and the chain
// must actually exercise the deletion-aware delta path.
func TestWindowedSnapshotDeterminism(t *testing.T) {
	const maxVersions = 4
	edges := randomEdges(17, 6000, 400, 300)

	for _, shards := range []int{1, 4, 16} {
		g := NewSharded(shards)
		g.SetWindow(WindowPolicy{MaxVersions: maxVersions})
		m := newWindowModel()

		rng := rand.New(rand.NewSource(99))
		for off := 0; off < len(edges); off += 223 {
			end := min(off+223, len(edges))
			batch := edges[off:end]
			g.Append(batch)
			m.append(batch)
			if rng.Intn(3) == 0 {
				g.Retire(time.Now())
				m.retire(maxVersions)
			}
			if rng.Intn(2) == 0 {
				snap, v := g.Snapshot()
				if v != m.ver {
					t.Fatalf("shards=%d: version %d, model %d", shards, v, m.ver)
				}
				if !bytes.Equal(csrBytes(t, snap), csrBytes(t, m.graph(t))) {
					t.Fatalf("shards=%d: snapshot diverges from model at version %d", shards, v)
				}
			}
		}
		g.Retire(time.Now())
		m.retire(maxVersions)
		snap, v := g.Snapshot()
		if v != m.ver {
			t.Fatalf("shards=%d: final version %d, model %d", shards, v, m.ver)
		}
		if !bytes.Equal(csrBytes(t, snap), csrBytes(t, m.graph(t))) {
			t.Fatalf("shards=%d: final snapshot diverges from model", shards)
		}
		if err := snap.Validate(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		bs := g.BuildStats()
		if bs.DeltaBuilds == 0 {
			t.Fatalf("shards=%d: windowed chain never took the delta path: %+v", shards, bs)
		}
		if g.WindowStats().RetiredEdges == 0 {
			t.Fatalf("shards=%d: window never retired anything", shards)
		}
		// The delta chain must also match a one-shot full rebuild of the
		// surviving set on a fresh graph (the cross-path half of the pin).
		fresh := NewSharded(shards)
		fresh.Append(snap.EdgeList())
		atomicMax(&fresh.numUsers, int64(snap.NumUsers()))
		atomicMax(&fresh.numMerchants, int64(snap.NumMerchants()))
		fs, _ := fresh.Snapshot()
		if !bytes.Equal(csrBytes(t, snap), csrBytes(t, fs)) {
			t.Fatalf("shards=%d: delta chain diverges from full rebuild", shards)
		}
	}
}

// TestWindowedCountDeterminism runs the MaxEdges policy across shard counts:
// whole-version retirement must select the same edges regardless of how the
// log is sharded.
func TestWindowedCountDeterminism(t *testing.T) {
	edges := randomEdges(23, 3000, 300, 200)
	var want []byte
	for _, shards := range []int{1, 4, 16} {
		g := NewSharded(shards)
		g.SetWindow(WindowPolicy{MaxEdges: 500})
		for off := 0; off < len(edges); off += 97 {
			end := min(off+97, len(edges))
			g.Append(edges[off:end])
			g.Retire(time.Now())
		}
		snap, _ := g.Snapshot()
		if st := g.Stats(); st.NumEdges > 500 {
			t.Fatalf("shards=%d: %d live edges exceed the 500 cap after retire", shards, st.NumEdges)
		}
		b := csrBytes(t, snap)
		if want == nil {
			want = b
		} else if !bytes.Equal(b, want) {
			t.Fatalf("shards=%d: count-windowed snapshot differs from shards=1", shards)
		}
	}
}

func TestRestoreAtAdoptsMarkAndStamps(t *testing.T) {
	src := NewSharded(4)
	src.SetWindow(WindowPolicy{MaxVersions: 2})
	src.Append(randomEdges(31, 500, 100, 100)) // v1
	src.Append(randomEdges(32, 500, 100, 100)) // v2
	src.AppendEdge(200, 200)                   // v3
	src.Retire(time.Now())                     // v4
	snap, v, mark := src.SnapshotWithMark()
	if mark.Version == 0 {
		t.Fatalf("expected a non-zero watermark, got %+v", mark)
	}

	g := NewSharded(8)
	wall := time.Unix(5000, 0).UnixNano()
	if err := g.RestoreAt(snap, v, mark, wall); err != nil {
		t.Fatal(err)
	}
	if g.Version() != v {
		t.Fatalf("restored version = %d, want %d", g.Version(), v)
	}
	if got := g.WindowStats().Mark; got != mark {
		t.Fatalf("restored mark = %+v, want %+v", got, mark)
	}
	// The pre-published snapshot carries the restored mark.
	if _, _, m2 := g.SnapshotWithMark(); m2 != mark {
		t.Fatalf("snapshot mark = %+v, want %+v", m2, mark)
	}
	// Restored edges are stamped at the snapshot version: a version-age
	// window that still covers v retires nothing.
	g.SetWindow(WindowPolicy{MaxVersions: 1})
	if res := g.Retire(time.Now()); res.Removed != 0 {
		t.Fatalf("retire after restore removed %d edges (stamps should sit at the snapshot version)", res.Removed)
	}
	// Advance two versions: now everything restored is out of the window.
	g.AppendEdge(300, 300)
	g.AppendEdge(301, 301)
	if res := g.Retire(time.Now()); res.Removed != snap.NumEdges()+1 {
		t.Fatalf("retire removed %d, want the %d restored edges plus one", res.Removed, snap.NumEdges()+1)
	}
}

// TestConcurrentIngestRetireSnapshot hammers Append, Retire, Remove,
// Snapshot and Stats together under -race: snapshots must stay internally
// consistent and immutable, versions monotone, and the dedup set coherent
// (a live edge never double-ingests, a retired one always can).
func TestConcurrentIngestRetireSnapshot(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run("", func(t *testing.T) {
			g := NewSharded(shards)
			g.SetWindow(WindowPolicy{MaxVersions: 20, MaxEdges: 3000})
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 150; i++ {
						batch := make([]bipartite.Edge, 8)
						for j := range batch {
							batch[j] = bipartite.Edge{U: uint32(rng.Intn(400)), V: uint32(rng.Intn(400))}
						}
						if res := g.Append(batch); res.Added > 0 && res.Version == 0 {
							t.Error("append that added edges left version 0")
							return
						}
					}
				}(int64(w + 1))
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 60; i++ {
					g.Retire(time.Now())
					g.Remove([]bipartite.Edge{{U: uint32(i % 400), V: uint32(i % 400)}})
				}
			}()
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var lastV uint64
					var pinned *bipartite.Graph
					var pinnedBytes []byte
					for i := 0; i < 80; i++ {
						s, v := g.Snapshot()
						if v < lastV {
							t.Errorf("snapshot version went backwards: %d after %d", v, lastV)
							return
						}
						lastV = v
						if err := s.Validate(); err != nil {
							t.Errorf("inconsistent snapshot: %v", err)
							return
						}
						if pinned == nil {
							pinned, pinnedBytes = s, csrBytes(t, s)
						}
					}
					if !bytes.Equal(pinnedBytes, csrBytes(t, pinned)) {
						t.Error("pinned snapshot mutated by later appends/retires")
					}
				}()
			}
			wg.Wait()

			st := g.Stats()
			sizes := g.ShardSizes()
			sum := 0
			for _, sz := range sizes {
				sum += sz.NumEdges
			}
			if sum != st.NumEdges {
				t.Errorf("shard sizes sum to %d, stats say %d", sum, st.NumEdges)
			}
			s, _ := g.Snapshot()
			if s.NumEdges() != st.NumEdges {
				t.Errorf("final snapshot has %d edges, stats say %d", s.NumEdges(), st.NumEdges)
			}
		})
	}
}
