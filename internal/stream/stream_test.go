package stream

import (
	"math/rand"
	"sync"
	"testing"

	"ensemfdet/internal/bipartite"
)

func TestAppendDedupAndVersion(t *testing.T) {
	g := New()
	if v := g.Version(); v != 0 {
		t.Fatalf("empty graph version = %d, want 0", v)
	}

	res := g.Append([]bipartite.Edge{{U: 0, V: 0}, {U: 0, V: 1}, {U: 0, V: 0}})
	if res.Added != 2 || res.Duplicates != 1 || res.Version != 1 {
		t.Fatalf("first batch: %+v, want Added=2 Duplicates=1 Version=1", res)
	}

	// Re-ingesting the same batch is a no-op and must not bump the version.
	res = g.Append([]bipartite.Edge{{U: 0, V: 0}, {U: 0, V: 1}})
	if res.Added != 0 || res.Duplicates != 2 || res.Version != 1 {
		t.Fatalf("idempotent retry: %+v, want Added=0 Duplicates=2 Version=1", res)
	}

	res = g.AppendEdge(5, 7)
	if res.Added != 1 || res.Version != 2 {
		t.Fatalf("new edge: %+v, want Added=1 Version=2", res)
	}
	st := g.Stats()
	if st.NumUsers != 6 || st.NumMerchants != 8 || st.NumEdges != 3 || st.Version != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSnapshotCachingAndImmutability(t *testing.T) {
	g := New()
	g.Append([]bipartite.Edge{{U: 0, V: 0}, {U: 1, V: 0}, {U: 1, V: 1}})

	s1, v1 := g.Snapshot()
	if v1 != 1 {
		t.Fatalf("snapshot version = %d, want 1", v1)
	}
	if s1.NumEdges() != 3 || s1.NumUsers() != 2 || s1.NumMerchants() != 2 {
		t.Fatalf("snapshot shape: %v", s1)
	}
	if err := s1.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}

	// Unchanged version → cached pointer, no rebuild.
	s1b, v1b := g.Snapshot()
	if s1b != s1 || v1b != v1 {
		t.Fatal("snapshot at unchanged version was rebuilt")
	}

	// Appending must not mutate the earlier snapshot.
	g.AppendEdge(9, 9)
	if s1.NumEdges() != 3 || s1.NumUsers() != 2 {
		t.Fatal("append mutated an existing snapshot")
	}
	s2, v2 := g.Snapshot()
	if v2 != 2 || s2 == s1 {
		t.Fatalf("post-append snapshot: version %d, same pointer %v", v2, s2 == s1)
	}
	if s2.NumUsers() != 10 || s2.NumEdges() != 4 {
		t.Fatalf("post-append snapshot shape: %v", s2)
	}
}

func TestSnapshotEmpty(t *testing.T) {
	g := New()
	s, v := g.Snapshot()
	if v != 0 || s.NumEdges() != 0 || s.NumUsers() != 0 {
		t.Fatalf("empty snapshot: v=%d %v", v, s)
	}
}

// TestConcurrentIngestAndSnapshot hammers Append and Snapshot from many
// goroutines; run with -race. Every snapshot must be internally consistent
// regardless of interleaving.
func TestConcurrentIngestAndSnapshot(t *testing.T) {
	g := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				batch := make([]bipartite.Edge, 8)
				for j := range batch {
					batch[j] = bipartite.Edge{U: uint32(rng.Intn(500)), V: uint32(rng.Intn(500))}
				}
				g.Append(batch)
			}
		}(int64(w + 1))
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s, _ := g.Snapshot()
				if err := s.Validate(); err != nil {
					t.Errorf("inconsistent snapshot: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	st := g.Stats()
	s, v := g.Snapshot()
	if v != st.Version && g.Version() == st.Version {
		t.Errorf("final snapshot version %d, stats version %d", v, st.Version)
	}
	if s.NumEdges() != st.NumEdges {
		t.Errorf("final snapshot has %d edges, stats say %d", s.NumEdges(), st.NumEdges)
	}
}
