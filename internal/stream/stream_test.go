package stream

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ensemfdet/internal/bipartite"
)

func TestAppendDedupAndVersion(t *testing.T) {
	g := New()
	if v := g.Version(); v != 0 {
		t.Fatalf("empty graph version = %d, want 0", v)
	}

	res := g.Append([]bipartite.Edge{{U: 0, V: 0}, {U: 0, V: 1}, {U: 0, V: 0}})
	if res.Added != 2 || res.Duplicates != 1 || res.Version != 1 {
		t.Fatalf("first batch: %+v, want Added=2 Duplicates=1 Version=1", res)
	}

	// Re-ingesting the same batch is a no-op and must not bump the version.
	res = g.Append([]bipartite.Edge{{U: 0, V: 0}, {U: 0, V: 1}})
	if res.Added != 0 || res.Duplicates != 2 || res.Version != 1 {
		t.Fatalf("idempotent retry: %+v, want Added=0 Duplicates=2 Version=1", res)
	}

	res = g.AppendEdge(5, 7)
	if res.Added != 1 || res.Version != 2 {
		t.Fatalf("new edge: %+v, want Added=1 Version=2", res)
	}
	st := g.Stats()
	if st.NumUsers != 6 || st.NumMerchants != 8 || st.NumEdges != 3 || st.Version != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSnapshotCachingAndImmutability(t *testing.T) {
	g := New()
	g.Append([]bipartite.Edge{{U: 0, V: 0}, {U: 1, V: 0}, {U: 1, V: 1}})

	s1, v1 := g.Snapshot()
	if v1 != 1 {
		t.Fatalf("snapshot version = %d, want 1", v1)
	}
	if s1.NumEdges() != 3 || s1.NumUsers() != 2 || s1.NumMerchants() != 2 {
		t.Fatalf("snapshot shape: %v", s1)
	}
	if err := s1.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}

	// Unchanged version → cached pointer, no rebuild.
	s1b, v1b := g.Snapshot()
	if s1b != s1 || v1b != v1 {
		t.Fatal("snapshot at unchanged version was rebuilt")
	}

	// Appending must not mutate the earlier snapshot.
	g.AppendEdge(9, 9)
	if s1.NumEdges() != 3 || s1.NumUsers() != 2 {
		t.Fatal("append mutated an existing snapshot")
	}
	s2, v2 := g.Snapshot()
	if v2 != 2 || s2 == s1 {
		t.Fatalf("post-append snapshot: version %d, same pointer %v", v2, s2 == s1)
	}
	if s2.NumUsers() != 10 || s2.NumEdges() != 4 {
		t.Fatalf("post-append snapshot shape: %v", s2)
	}
}

func TestSnapshotEmpty(t *testing.T) {
	g := New()
	s, v := g.Snapshot()
	if v != 0 || s.NumEdges() != 0 || s.NumUsers() != 0 {
		t.Fatalf("empty snapshot: v=%d %v", v, s)
	}
}

func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {16, 16}, {1000, MaxShards},
	} {
		if got := NewSharded(tc.in).NumShards(); got != tc.want {
			t.Errorf("NewSharded(%d).NumShards() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := New().NumShards(); got != DefaultShards() {
		t.Errorf("New().NumShards() = %d, want DefaultShards() = %d", got, DefaultShards())
	}
}

// randomEdges draws n edges with duplicates over a node space shaped like
// live traffic (skewless uniform is fine for structural determinism checks).
func randomEdges(seed int64, n, users, merchants int) []bipartite.Edge {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bipartite.Edge, n)
	for i := range out {
		out[i] = bipartite.Edge{U: uint32(rng.Intn(users)), V: uint32(rng.Intn(merchants))}
	}
	return out
}

// graphsEqual compares two immutable graphs by shape and full edge list; the
// CSR layout is a canonical function of (sizes, edge set) — pinned by the
// bipartite package's own extend tests — so this equality is byte-identity.
func graphsEqual(a, b *bipartite.Graph) bool {
	return a.NumUsers() == b.NumUsers() &&
		a.NumMerchants() == b.NumMerchants() &&
		reflect.DeepEqual(a.EdgeList(), b.EdgeList())
}

// TestSnapshotDeterministicAcrossShardCounts is the tentpole's core pin: the
// same edge stream, ingested into graphs with shard counts {1, 4, 16}, in one
// giant batch (full-build path) or in many small batches with interleaved
// snapshots (delta-build path), must yield identical snapshots.
func TestSnapshotDeterministicAcrossShardCounts(t *testing.T) {
	edges := randomEdges(11, 4000, 300, 250)
	ref, err := bipartite.FromEdges(300, 250, edges)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 4, 16} {
		// One batch: full rebuild.
		full := NewSharded(shards)
		full.Append(edges)
		fs, _ := full.Snapshot()
		if err := fs.Validate(); err != nil {
			t.Fatalf("shards=%d full: invalid: %v", shards, err)
		}
		if !graphsEqual(fs, ref) {
			t.Fatalf("shards=%d: full-build snapshot diverges from reference", shards)
		}

		// Many small batches with a snapshot after each: exercises the
		// incremental chain. Snapshot equality at the end proves the delta
		// merges composed to the same graph.
		inc := NewSharded(shards)
		for off := 0; off < len(edges); off += 97 {
			end := min(off+97, len(edges))
			inc.Append(edges[off:end])
			if s, _ := inc.Snapshot(); s.NumEdges() > ref.NumEdges() {
				t.Fatalf("shards=%d: intermediate snapshot has %d edges, reference max %d",
					shards, s.NumEdges(), ref.NumEdges())
			}
		}
		is, _ := inc.Snapshot()
		if err := is.Validate(); err != nil {
			t.Fatalf("shards=%d incremental: invalid: %v", shards, err)
		}
		if !graphsEqual(is, ref) {
			t.Fatalf("shards=%d: incremental snapshot diverges from reference", shards)
		}
		if bs := inc.BuildStats(); bs.DeltaBuilds == 0 {
			t.Fatalf("shards=%d: incremental ingest never took the delta path: %+v", shards, bs)
		}
	}
}

// TestDeltaVersusFullBuildSelection checks the rebuild threshold: small
// post-snapshot batches extend incrementally, a huge one falls back to a
// full rebuild.
func TestDeltaVersusFullBuildSelection(t *testing.T) {
	g := NewSharded(4)
	g.Append(randomEdges(5, 8000, 500, 500))
	g.Snapshot()
	before := g.BuildStats()
	if before.FullBuilds != 1 || before.DeltaBuilds != 0 {
		t.Fatalf("first snapshot: %+v, want exactly one full build", before)
	}

	// A tiny delta must extend.
	g.AppendEdge(600, 600)
	g.Snapshot()
	if bs := g.BuildStats(); bs.DeltaBuilds != 1 {
		t.Fatalf("small delta: %+v, want one delta build", bs)
	}

	// A delta larger than 1/4 of the snapshot must trigger a full rebuild.
	big := make([]bipartite.Edge, 0, 4000)
	for i := 0; i < 4000; i++ {
		big = append(big, bipartite.Edge{U: uint32(1000 + i), V: uint32(1000 + i)})
	}
	g.Append(big)
	s, _ := g.Snapshot()
	if bs := g.BuildStats(); bs.FullBuilds != 2 {
		t.Fatalf("large delta: %+v, want a second full build", bs)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentIngestAndSnapshot hammers Append, Snapshot, and Stats from
// many goroutines across shard counts; run with -race. Every snapshot must
// be internally consistent, never shrink, and observed versions must be
// monotone; snapshots taken early must be untouched by later appends.
func TestConcurrentIngestAndSnapshot(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run("", func(t *testing.T) {
			g := NewSharded(shards)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 200; i++ {
						batch := make([]bipartite.Edge, 8)
						for j := range batch {
							batch[j] = bipartite.Edge{U: uint32(rng.Intn(500)), V: uint32(rng.Intn(500))}
						}
						res := g.Append(batch)
						if res.Added > 0 && res.Version == 0 {
							t.Error("append that added edges left version 0")
							return
						}
					}
				}(int64(w + 1))
			}
			// Snapshotters: validate, check monotone versions and that an
			// earlier snapshot's contents survive later appends verbatim.
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var lastV uint64
					var pinned *bipartite.Graph
					var pinnedEdges int
					for i := 0; i < 100; i++ {
						s, v := g.Snapshot()
						if v < lastV {
							t.Errorf("snapshot version went backwards: %d after %d", v, lastV)
							return
						}
						lastV = v
						if err := s.Validate(); err != nil {
							t.Errorf("inconsistent snapshot: %v", err)
							return
						}
						if pinned == nil {
							pinned, pinnedEdges = s, s.NumEdges()
						}
					}
					if pinned.NumEdges() != pinnedEdges {
						t.Errorf("pinned snapshot grew from %d to %d edges", pinnedEdges, pinned.NumEdges())
					}
					if err := pinned.Validate(); err != nil {
						t.Errorf("pinned snapshot corrupted: %v", err)
					}
				}()
			}
			wg.Wait()

			st := g.Stats()
			s, v := g.Snapshot()
			if v != st.Version && g.Version() == st.Version {
				t.Errorf("final snapshot version %d, stats version %d", v, st.Version)
			}
			if s.NumEdges() != st.NumEdges {
				t.Errorf("final snapshot has %d edges, stats say %d", s.NumEdges(), st.NumEdges)
			}
			sizes := g.ShardSizes()
			sum := 0
			for _, sz := range sizes {
				sum += sz.NumEdges
			}
			if len(sizes) != shards || sum != st.NumEdges {
				t.Errorf("shard sizes %v do not sum to %d", sizes, st.NumEdges)
			}
		})
	}
}

// recordingJournal captures journaled batches and tombstones; err, when set,
// is returned from every call.
type recordingJournal struct {
	mu             sync.Mutex
	versions       []uint64
	batches        [][]bipartite.Edge
	retireVersions []uint64
	retired        [][]bipartite.Edge
	err            error
}

func (j *recordingJournal) AppendEdges(version uint64, edges []bipartite.Edge) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.versions = append(j.versions, version)
	j.batches = append(j.batches, append([]bipartite.Edge(nil), edges...))
	return nil
}

func (j *recordingJournal) RetireEdges(version uint64, edges []bipartite.Edge, _ WindowMark) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.retireVersions = append(j.retireVersions, version)
	j.retired = append(j.retired, append([]bipartite.Edge(nil), edges...))
	return nil
}

func TestJournalTeesAddingBatches(t *testing.T) {
	g := NewSharded(4)
	j := &recordingJournal{}
	g.SetJournal(j)

	res := g.Append([]bipartite.Edge{{U: 0, V: 0}, {U: 1, V: 1}, {U: 0, V: 0}})
	if res.Err != nil || res.Version != 1 {
		t.Fatalf("first append: %+v", res)
	}
	// An all-duplicate batch must not be journaled: it did not change the
	// graph, so replaying the log without it reproduces the same state.
	res = g.Append([]bipartite.Edge{{U: 0, V: 0}})
	if res.Added != 0 || res.Err != nil {
		t.Fatalf("dup append: %+v", res)
	}
	g.AppendEdge(2, 2)

	if len(j.versions) != 2 || j.versions[0] != 1 || j.versions[1] != 2 {
		t.Fatalf("journaled versions = %v, want [1 2]", j.versions)
	}
	// The full pre-dedup batch is journaled (replay re-deduplicates).
	if len(j.batches[0]) != 3 {
		t.Fatalf("journaled batch 1 has %d edges, want the full batch of 3", len(j.batches[0]))
	}
}

func TestJournalErrorSurfacesInResult(t *testing.T) {
	g := New()
	j := &recordingJournal{err: errFailedJournal}
	g.SetJournal(j)
	res := g.AppendEdge(1, 1)
	if res.Err == nil {
		t.Fatal("journal failure not surfaced in AppendResult.Err")
	}
	// The in-memory commit still happened (at-least-once semantics): a retry
	// after the journal recovers deduplicates.
	if res.Added != 1 || g.Stats().NumEdges != 1 {
		t.Fatalf("failed-journal append result: %+v", res)
	}
}

var errFailedJournal = errBoom{}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

func TestRestoreAdoptsSnapshotAndVersion(t *testing.T) {
	src := NewSharded(4)
	src.Append(randomEdges(21, 1000, 200, 200))
	src.Append(randomEdges(22, 1000, 200, 200))
	snap, v := src.Snapshot()

	for _, shards := range []int{1, 8} {
		g := NewSharded(shards)
		if err := g.Restore(snap, v); err != nil {
			t.Fatal(err)
		}
		if g.Version() != v {
			t.Fatalf("restored version = %d, want %d", g.Version(), v)
		}
		st := g.Stats()
		if st.NumEdges != snap.NumEdges() || st.NumUsers != snap.NumUsers() || st.NumMerchants != snap.NumMerchants() {
			t.Fatalf("restored stats %+v, want snapshot shape %v", st, snap)
		}
		// The recovered CSR is pre-published: the first Snapshot returns it
		// without any rebuild.
		got, gv := g.Snapshot()
		if got != snap || gv != v {
			t.Fatal("first post-restore Snapshot rebuilt instead of reusing the recovered CSR")
		}
		if bs := g.BuildStats(); bs.FullBuilds != 0 || bs.DeltaBuilds != 0 {
			t.Fatalf("restore triggered builds: %+v", bs)
		}
		// Appends continue from the restored state via the delta path and
		// match the source graph exactly.
		extra := randomEdges(23, 500, 250, 250)
		g.Append(extra)
		src2 := NewSharded(4)
		src2.Append(randomEdges(21, 1000, 200, 200))
		src2.Append(randomEdges(22, 1000, 200, 200))
		src2.Append(extra)
		want, _ := src2.Snapshot()
		have, _ := g.Snapshot()
		if !graphsEqual(have, want) {
			t.Fatal("post-restore append diverges from an uninterrupted graph")
		}
	}

	// Restore refuses a non-empty graph.
	g := New()
	g.AppendEdge(0, 0)
	if err := g.Restore(snap, v); err == nil {
		t.Fatal("Restore on a non-empty graph must fail")
	}
}

func TestRestoreNilSnapshot(t *testing.T) {
	g := New()
	if err := g.Restore(nil, 0); err != nil {
		t.Fatal(err)
	}
	if g.Version() != 0 || g.Stats().NumEdges != 0 {
		t.Fatalf("nil restore changed the graph: %+v", g.Stats())
	}
}
