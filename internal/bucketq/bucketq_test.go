package bucketq

import (
	"math/rand"
	"testing"
)

func TestPopOrderIsPriorityThenID(t *testing.T) {
	q := New(8, 10)
	q.Push(3, 5)
	q.Push(0, 7)
	q.Push(6, 5)
	q.Push(1, 2)
	q.Push(5, 7)
	want := []struct{ id, p int32 }{{1, 2}, {3, 5}, {6, 5}, {0, 7}, {5, 7}}
	for i, w := range want {
		id, p := q.PopMin()
		if id != w.id || p != w.p {
			t.Fatalf("pop %d: got (%d,%d), want (%d,%d)", i, id, p, w.id, w.p)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after draining = %d, want 0", q.Len())
	}
}

// Equal priorities must pop in ascending id order no matter the push order:
// this is the tie-break the float-path heap pins, and the equivalence
// contract between the two peelers depends on it.
func TestEqualPriorityTieBreakLowestID(t *testing.T) {
	for _, pushOrder := range [][]int32{
		{0, 1, 2, 3, 4},
		{4, 3, 2, 1, 0},
		{2, 0, 4, 1, 3},
	} {
		q := New(5, 3)
		for _, id := range pushOrder {
			q.Push(id, 3)
		}
		for want := int32(0); want < 5; want++ {
			id, p := q.PopMin()
			if id != want || p != 3 {
				t.Fatalf("push order %v: got (%d,%d), want (%d,3)", pushOrder, id, p, want)
			}
		}
	}
}

func TestDecMovesFloorBackDown(t *testing.T) {
	q := New(4, 10)
	q.Push(0, 1)
	q.Push(1, 3)
	q.Push(2, 3)
	if id, p := q.PopMin(); id != 0 || p != 1 {
		t.Fatalf("first pop = (%d,%d), want (0,1)", id, p)
	}
	// Floor has advanced to 3; a Dec must bring it back.
	q.Dec(2)
	if id, p := q.PopMin(); id != 2 || p != 2 {
		t.Fatalf("pop after Dec = (%d,%d), want (2,2)", id, p)
	}
	if id, p := q.PopMin(); id != 1 || p != 3 {
		t.Fatalf("last pop = (%d,%d), want (1,3)", id, p)
	}
}

func TestDecIfPresent(t *testing.T) {
	q := New(3, 5)
	q.Push(1, 4)
	if !q.DecIfPresent(1) {
		t.Fatal("DecIfPresent(queued id) = false")
	}
	if got := q.Priority(1); got != 3 {
		t.Fatalf("Priority after Dec = %d, want 3", got)
	}
	if q.DecIfPresent(2) {
		t.Fatal("DecIfPresent(absent id) = true")
	}
	if q.Contains(2) {
		t.Fatal("Contains(absent id) = true")
	}
}

func TestResetRecycles(t *testing.T) {
	q := New(6, 4)
	for id := int32(0); id < 6; id++ {
		q.Push(id, id%3)
	}
	q.PopMin()
	q.Reset(4, 2)
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", q.Len())
	}
	for id := int32(0); id < 4; id++ {
		if q.Contains(id) {
			t.Fatalf("Contains(%d) = true after Reset", id)
		}
	}
	q.Push(3, 0)
	q.Push(2, 2)
	if id, p := q.PopMin(); id != 3 || p != 0 {
		t.Fatalf("pop after Reset = (%d,%d), want (3,0)", id, p)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	q := New(2, 3)
	mustPanic("PopMin empty", func() { q.PopMin() })
	q.Push(0, 0)
	mustPanic("double Push", func() { q.Push(0, 1) })
	mustPanic("Dec below zero", func() { q.Dec(0) })
	mustPanic("Dec absent", func() { q.Dec(1) })
}

// naive is the reference: a linear scan over (priority, id) pairs that pops
// the lexicographic minimum.
type naive struct {
	prio map[int32]int32
}

func (n *naive) popMin() (int32, int32) {
	bestID, bestP := int32(-1), int32(1<<30)
	for id, p := range n.prio {
		if p < bestP || (p == bestP && id < bestID) {
			bestID, bestP = id, p
		}
	}
	delete(n.prio, bestID)
	return bestID, bestP
}

// TestRandomizedAgainstNaive drives interleaved Push/Dec/PopMin traffic and
// checks every pop against the reference order.
func TestRandomizedAgainstNaive(t *testing.T) {
	const n, maxPrio = 200, 12
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := New(n, maxPrio)
		ref := &naive{prio: make(map[int32]int32)}
		queued := make([]int32, 0, n)
		free := make([]int32, n)
		for i := range free {
			free[i] = int32(i)
		}
		for step := 0; step < 4000; step++ {
			switch op := rng.Intn(4); {
			case op == 0 && len(free) > 0: // push
				i := rng.Intn(len(free))
				id := free[i]
				free[i] = free[len(free)-1]
				free = free[:len(free)-1]
				p := int32(rng.Intn(maxPrio + 1))
				q.Push(id, p)
				ref.prio[id] = p
				queued = append(queued, id)
			case op == 1 && len(queued) > 0: // dec
				id := queued[rng.Intn(len(queued))]
				if q.Priority(id) > 0 {
					q.Dec(id)
					ref.prio[id]--
				}
			case len(queued) > 0: // pop
				id, p := q.PopMin()
				wantID, wantP := ref.popMin()
				if id != wantID || p != wantP {
					t.Fatalf("seed %d step %d: PopMin = (%d,%d), want (%d,%d)", seed, step, id, p, wantID, wantP)
				}
				for i, qid := range queued {
					if qid == id {
						queued[i] = queued[len(queued)-1]
						queued = queued[:len(queued)-1]
						break
					}
				}
				free = append(free, id)
			}
		}
		if q.Len() != len(ref.prio) {
			t.Fatalf("seed %d: Len = %d, want %d", seed, q.Len(), len(ref.prio))
		}
	}
}
