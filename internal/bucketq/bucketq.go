// Package bucketq provides a monotone bucket queue over dense int32 node
// ids with small non-negative integer priorities: an array of intrusive
// doubly-linked lists, one per priority value, plus a floor pointer that
// tracks the lowest possibly-non-empty bucket.
//
// It is the integer-priority victim queue of the FDET peeler (Ban & Duan
// style): when every merchant weight is exactly 1, node priorities are alive
// degrees, every decrease-key is by exactly 1, and the pop sequence never
// needs a comparison sort — the floor pointer moves down by at most one per
// decrease and back up past drained buckets, for O(V + E + maxPrio) floor
// movement over a whole peel round.
//
// Tie-breaking is pinned: PopMin returns the lowest id in the lowest
// non-empty bucket, the same total order on (priority, id) the float-path
// index heap uses, which is what keeps bucket-peeled votes byte-identical to
// heap-peeled votes. To make the lowest-id pop O(1), every bucket list is
// kept in ascending id order. Pushing ids in descending order (as the peeler
// does when seeding a round) costs O(1) per push; an out-of-order insert
// pays a forward scan of the target bucket, which on peeling workloads is
// short because a decremented node re-enters a bucket that mostly holds ids
// near the ones that entered with it. The worst case is O(bucket occupancy)
// per insert and is documented rather than hidden.
package bucketq

const absent = int32(-1)

// Queue is a bucket queue over ids in [0, n) with priorities in [0, maxPrio].
// Construct with New, or Reset a zero value. The zero value is empty.
type Queue struct {
	head  []int32 // head[p] = lowest id in bucket p, or -1
	next  []int32 // next[id] = successor in its bucket (ascending), or -1
	prev  []int32 // prev[id] = predecessor, or -1 when id is the bucket head
	prio  []int32 // prio[id], or -1 when id is not in the queue
	floor int32   // lowest bucket that may be non-empty
	count int
}

// New returns a queue for ids in [0, n) and priorities in [0, maxPrio].
func New(n, maxPrio int) *Queue {
	q := &Queue{}
	q.Reset(n, maxPrio)
	return q
}

// Reset empties the queue and prepares it for ids in [0, n) and priorities
// in [0, maxPrio], growing storage only beyond high-water marks so a queue
// embedded in peeler scratch recycles across rounds without allocating.
func (q *Queue) Reset(n, maxPrio int) {
	q.head = growFilled(q.head, maxPrio+1)
	q.next = growFilled(q.next, n)
	q.prev = growFilled(q.prev, n)
	q.prio = growFilled(q.prio, n)
	q.floor = 0
	q.count = 0
}

// growFilled returns s resized to n with every element set to absent.
func growFilled(s []int32, n int) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = absent
	}
	return s
}

// Len returns the number of ids currently queued.
func (q *Queue) Len() int { return q.count }

// Contains reports whether id is in the queue.
func (q *Queue) Contains(id int32) bool { return q.prio[id] != absent }

// Priority returns the current priority of id. It must be in the queue.
func (q *Queue) Priority(id int32) int32 { return q.prio[id] }

// Push inserts id with the given priority. It panics if id is already
// present.
func (q *Queue) Push(id, priority int32) {
	if q.prio[id] != absent {
		panic("bucketq: Push of id already in queue")
	}
	q.prio[id] = priority
	q.insert(id, priority)
	q.count++
	if priority < q.floor {
		q.floor = priority
	}
}

// insert links id into bucket p keeping the list ascending by id.
func (q *Queue) insert(id, p int32) {
	h := q.head[p]
	if h == absent || id < h {
		q.prev[id] = absent
		q.next[id] = h
		if h != absent {
			q.prev[h] = id
		}
		q.head[p] = id
		return
	}
	// Forward scan for the last member below id.
	at := h
	for n := q.next[at]; n != absent && n < id; n = q.next[at] {
		at = n
	}
	n := q.next[at]
	q.next[at] = id
	q.prev[id] = at
	q.next[id] = n
	if n != absent {
		q.prev[n] = id
	}
}

// unlink removes id from bucket p in O(1).
func (q *Queue) unlink(id, p int32) {
	pr, nx := q.prev[id], q.next[id]
	if pr == absent {
		q.head[p] = nx
	} else {
		q.next[pr] = nx
	}
	if nx != absent {
		q.prev[nx] = pr
	}
}

// Dec lowers the priority of id by exactly 1. It panics if id is absent or
// already at priority 0.
func (q *Queue) Dec(id int32) {
	p := q.prio[id]
	if p == absent {
		panic("bucketq: Dec of id not in queue")
	}
	if p == 0 {
		panic("bucketq: Dec below zero priority")
	}
	q.unlink(id, p)
	p--
	q.prio[id] = p
	q.insert(id, p)
	if p < q.floor {
		q.floor = p
	}
}

// DecIfPresent lowers the priority of id by 1 when id is queued, fusing the
// peeler's Contains+Dec pair into one lookup. It reports whether id was
// present.
func (q *Queue) DecIfPresent(id int32) bool {
	if q.prio[id] == absent {
		return false
	}
	q.Dec(id)
	return true
}

// PopMin removes and returns the lowest id within the lowest non-empty
// bucket, together with its priority. It panics on an empty queue.
func (q *Queue) PopMin() (id, priority int32) {
	if q.count == 0 {
		panic("bucketq: PopMin from empty queue")
	}
	f := q.floor
	for q.head[f] == absent {
		f++
	}
	q.floor = f
	id = q.head[f]
	q.unlink(id, f)
	q.prio[id] = absent
	q.count--
	return id, f
}
