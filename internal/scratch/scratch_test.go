package scratch

import "testing"

func TestGrowReusesCapacity(t *testing.T) {
	var buf []int
	a := Grow(&buf, 8)
	if len(a) != 8 {
		t.Fatalf("len = %d, want 8", len(a))
	}
	a[7] = 42
	b := Grow(&buf, 4)
	if len(b) != 4 || cap(b) < 8 {
		t.Fatalf("shrink: len=%d cap=%d, want len 4 cap ≥ 8", len(b), cap(b))
	}
	c := Grow(&buf, 8)
	if &c[0] != &a[0] {
		t.Error("grow within capacity reallocated")
	}
	if c[7] != 42 {
		t.Error("Grow must not clear surviving elements")
	}
}

func TestGrowZero(t *testing.T) {
	var buf []float64
	a := GrowZero(&buf, 3)
	a[0], a[1], a[2] = 1, 2, 3
	b := GrowZero(&buf, 2)
	if b[0] != 0 || b[1] != 0 {
		t.Errorf("GrowZero left stale values: %v", b)
	}
}

func TestStampsBasics(t *testing.T) {
	var s Stamps
	s.Reset(4)
	if s.Has(0) || s.Has(3) {
		t.Error("fresh set not empty")
	}
	if !s.TryAdd(2) {
		t.Error("first TryAdd(2) = false")
	}
	if s.TryAdd(2) {
		t.Error("second TryAdd(2) = true")
	}
	s.Add(0)
	if !s.Has(0) || !s.Has(2) || s.Has(1) {
		t.Error("membership wrong after adds")
	}
	s.Reset(4)
	for i := 0; i < 4; i++ {
		if s.Has(i) {
			t.Errorf("id %d survived Reset", i)
		}
	}
}

func TestStampsShrinkThenGrow(t *testing.T) {
	var s Stamps
	s.Reset(8)
	for i := 0; i < 8; i++ {
		s.Add(i)
	}
	s.Reset(2)
	s.Reset(8) // re-expose indices 2..7 from the first generation
	for i := 0; i < 8; i++ {
		if s.Has(i) {
			t.Errorf("stale mark resurfaced at %d", i)
		}
	}
}

func TestStampsWraparound(t *testing.T) {
	s := Stamps{mark: []uint32{^uint32(0), 0}, cur: ^uint32(0)}
	s.Reset(2) // cur wraps to 0 → must clear and restart at 1
	if s.cur != 1 {
		t.Fatalf("cur = %d, want 1 after wrap", s.cur)
	}
	if s.Has(0) || s.Has(1) {
		t.Error("marks survived generation wraparound")
	}
}
