// Package scratch provides the tiny allocation-reuse primitives shared by
// the ensemble hot path: grow-in-place buffers and epoch-stamped membership
// sets whose reset is a generation bump instead of an O(n) clear.
//
// The ensemble runs the sample→subgraph→peel pipeline thousands of times per
// detection; profiles showed the dominant avoidable cost was re-allocating
// (and re-filling) parent-sized tables per sample. Everything here exists so
// a per-worker arena can hold those tables once and recycle them.
package scratch

// Grow returns *buf resized to length n, reusing the backing array whenever
// capacity allows. Element contents are unspecified — callers must overwrite
// every index they read.
func Grow[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// GrowZero returns *buf resized to length n with every element zeroed.
func GrowZero[T any](buf *[]T, n int) []T {
	b := Grow(buf, n)
	clear(b)
	return b
}

// Stamps is an epoch-stamped membership set over dense ids [0, n). Reset
// bumps a generation counter, so clearing costs O(1) once the table is
// warm; only growth (or the ~never generation wraparound) pays O(n).
//
// The zero value is empty and ready for Reset.
type Stamps struct {
	mark []uint32
	cur  uint32
}

// Reset prepares the set to track ids in [0, n), forgetting all marks.
func (s *Stamps) Reset(n int) {
	if cap(s.mark) < n {
		s.mark = make([]uint32, n)
		s.cur = 0
	}
	s.mark = s.mark[:n]
	s.cur++
	if s.cur == 0 {
		// The generation counter wrapped: stale marks from 2^32 resets ago
		// could collide with the new generation. Clear the whole backing
		// array (not just [:n]) so shrink-then-grow cannot resurface them.
		clear(s.mark[:cap(s.mark)])
		s.cur = 1
	}
}

// Has reports whether id i is in the set.
func (s *Stamps) Has(i int) bool { return s.mark[i] == s.cur }

// Add inserts id i.
func (s *Stamps) Add(i int) { s.mark[i] = s.cur }

// TryAdd inserts id i and reports whether it was newly inserted.
func (s *Stamps) TryAdd(i int) bool {
	if s.mark[i] == s.cur {
		return false
	}
	s.mark[i] = s.cur
	return true
}

// Len returns the tracked universe size (the n of the last Reset).
func (s *Stamps) Len() int { return len(s.mark) }
