package fbox

import (
	"math"
	"math/rand"
	"testing"

	"ensemfdet/internal/bipartite"
)

// smallAttackGraph builds a graph with strong community structure (large
// blocks that dominate the spectrum) plus a small injected attack block that
// is too small to surface in the top components — FBOX's target scenario.
func smallAttackGraph(seed int64) (*bipartite.Graph, map[uint32]bool) {
	rng := rand.New(rand.NewSource(seed))
	// Two large communities of 60x60 at 40% density dominate the spectrum.
	const commU, commV = 60, 60
	const atkU, atkV = 6, 6
	nu := 2*commU + atkU
	nm := 2*commV + atkV
	b := bipartite.NewBuilderSized(nu, nm, 0)
	for c := 0; c < 2; c++ {
		for u := 0; u < commU; u++ {
			for v := 0; v < commV; v++ {
				if rng.Float64() < 0.4 {
					b.AddEdge(uint32(c*commU+u), uint32(c*commV+v))
				}
			}
		}
	}
	fraud := make(map[uint32]bool)
	for u := 0; u < atkU; u++ {
		id := uint32(2*commU + u)
		fraud[id] = true
		for v := 0; v < atkV; v++ {
			b.AddEdge(id, uint32(2*commV+v))
		}
	}
	return b.Build(), fraud
}

func TestScoreFlagsSmallAttack(t *testing.T) {
	g, fraud := smallAttackGraph(1)
	res := Score(g, Config{K: 4, Seed: 2})
	det := res.Detect(6)
	hits := 0
	for _, u := range det {
		if fraud[u] {
			hits++
		}
	}
	if hits < len(fraud)/2 {
		t.Errorf("FBOX flagged %d/%d attack users in top 6%% (|det|=%d)", hits, len(fraud), len(det))
	}
}

func TestScoreRange(t *testing.T) {
	g, _ := smallAttackGraph(3)
	res := Score(g, Config{K: 4, Seed: 4})
	for u, s := range res.UserScores {
		if math.IsNaN(s) {
			if g.UserDegree(uint32(u)) >= 1 {
				t.Fatalf("user %d with degree %d scored NaN", u, g.UserDegree(uint32(u)))
			}
			continue
		}
		if s < 0 || s > 1 {
			t.Fatalf("user %d score %g out of [0,1]", u, s)
		}
	}
}

func TestMinDegreeExcludes(t *testing.T) {
	b := bipartite.NewBuilderSized(3, 3, 0)
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	b.AddEdge(1, 1)
	g := b.Build() // user 2 isolated, user 0 degree 1, user 1 degree 2
	res := Score(g, Config{K: 2, Seed: 1, MinDegree: 2})
	if !math.IsNaN(res.UserScores[0]) || !math.IsNaN(res.UserScores[2]) {
		t.Error("low-degree users not excluded")
	}
	if math.IsNaN(res.UserScores[1]) {
		t.Error("qualifying user excluded")
	}
}

func TestDetectTauSweep(t *testing.T) {
	g, _ := smallAttackGraph(5)
	res := Score(g, Config{K: 4, Seed: 6})
	prev := -1
	for _, tau := range []float64{1, 5, 10, 50, 100} {
		n := len(res.Detect(tau))
		if n < prev {
			t.Fatalf("detected count decreased as τ grew: %d < %d at τ=%g", n, prev, tau)
		}
		prev = n
	}
	if got := len(res.Detect(100)); got == 0 {
		t.Error("τ=100%% detected nothing")
	}
}

func TestDetectDefaultTau(t *testing.T) {
	g, _ := smallAttackGraph(7)
	res := Score(g, Config{K: 4, Seed: 8})
	if len(res.Detect(0)) != len(res.Detect(DefaultTauPercent)) {
		t.Error("τ≤0 does not fall back to default")
	}
}

func TestScoreEmptyGraph(t *testing.T) {
	g := bipartite.NewBuilder().Build()
	res := Score(g, Config{})
	if len(res.UserScores) != 0 {
		t.Error("empty graph produced scores")
	}
	if len(res.Detect(5)) != 0 {
		t.Error("empty graph detected users")
	}
}

func TestHonestUsersScoreLow(t *testing.T) {
	g, fraud := smallAttackGraph(9)
	res := Score(g, Config{K: 4, Seed: 10})
	var fraudMean, honestMean float64
	var nf, nh int
	for u, s := range res.UserScores {
		if math.IsNaN(s) {
			continue
		}
		if fraud[uint32(u)] {
			fraudMean += s
			nf++
		} else {
			honestMean += s
			nh++
		}
	}
	fraudMean /= float64(nf)
	honestMean /= float64(nh)
	if fraudMean <= honestMean {
		t.Errorf("attack users mean score %.3f not above honest %.3f", fraudMean, honestMean)
	}
}
