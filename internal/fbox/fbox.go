// Package fbox implements the FBOX baseline (Shah et al., ICDM'14; paper §II
// and §V-B2): an adversarial spectral detector built on the reconstruction
// error of the truncated SVD. Fraud blocks that are too small to surface in
// the top-k spectral components are nearly invisible to the reconstruction:
// a fraud account's adjacency row projects onto the top-k subspace with far
// less mass than an honest account of the same degree. FBOX flags the nodes
// whose reconstructed degree falls below a low percentile of what their
// observed degree predicts.
package fbox

import (
	"math"
	"sort"

	"ensemfdet/internal/bipartite"
	"ensemfdet/internal/spectral"
)

// DefaultK is the number of SVD components; the paper's setup ties it to
// SPOKEN's 25 components.
const DefaultK = 25

// DefaultTauPercent is the percentile threshold τ of the FBOX paper's
// recommended operating point (they report τ ∈ {1%, 5%, 10%}).
const DefaultTauPercent = 5.0

// Config parameterizes FBOX.
type Config struct {
	// K is the truncation rank of the SVD; 0 means DefaultK.
	K int
	// PowerIters tunes the underlying randomized SVD; 0 means its default.
	PowerIters int
	// Seed makes the decomposition deterministic.
	Seed int64
	// MinDegree excludes users with fewer edges from scoring (their
	// reconstruction is meaningless); 0 means 1.
	MinDegree int
}

func (c Config) k() int {
	if c.K <= 0 {
		return DefaultK
	}
	return c.K
}

func (c Config) minDegree() int {
	if c.MinDegree <= 0 {
		return 1
	}
	return c.MinDegree
}

// Result carries per-user suspiciousness scores in [0, 1]: 1 − ‖recon‖/‖row‖.
// A score near 1 means the user is invisible to the top-k decomposition
// (suspicious); near 0 means well explained. Users below MinDegree score
// NaN and are excluded from thresholding.
type Result struct {
	UserScores []float64
	// ReconNorms[u] is ‖P_k(row_u)‖₂, kept for diagnostics and tests.
	ReconNorms []float64
}

// Score computes FBOX suspiciousness for every user.
func Score(g *bipartite.Graph, cfg Config) Result {
	nu := g.NumUsers()
	res := Result{
		UserScores: make([]float64, nu),
		ReconNorms: make([]float64, nu),
	}
	for u := range res.UserScores {
		res.UserScores[u] = math.NaN()
	}
	if g.NumEdges() == 0 {
		return res
	}
	adj := spectral.Adjacency(g)
	svd := spectral.Decompose(g, cfg.k(), cfg.PowerIters, cfg.Seed)
	minDeg := cfg.minDegree()
	for u := 0; u < nu; u++ {
		if g.UserDegree(uint32(u)) < minDeg {
			continue
		}
		actual := adj.RowNorm2(u) // = sqrt(degree) for a 0/1 row
		recon := svd.ReconstructedRowNorm(u)
		res.ReconNorms[u] = recon
		ratio := recon / actual
		if ratio > 1 {
			ratio = 1 // numerical overshoot
		}
		res.UserScores[u] = 1 - ratio
	}
	return res
}

// Detect applies the percentile rule: it flags the users whose
// reconstruction ratio falls in the lowest tauPercent of scored users
// (equivalently, suspiciousness in the top tauPercent). tauPercent ≤ 0 uses
// DefaultTauPercent.
func (r Result) Detect(tauPercent float64) []uint32 {
	if tauPercent <= 0 {
		tauPercent = DefaultTauPercent
	}
	type su struct {
		id uint32
		s  float64
	}
	var scored []su
	for u, s := range r.UserScores {
		if !math.IsNaN(s) {
			scored = append(scored, su{uint32(u), s})
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].s != scored[j].s {
			return scored[i].s > scored[j].s
		}
		return scored[i].id < scored[j].id
	})
	n := int(math.Ceil(float64(len(scored)) * tauPercent / 100))
	if n > len(scored) {
		n = len(scored)
	}
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		out[i] = scored[i].id
	}
	return out
}
