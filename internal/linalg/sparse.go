// Package linalg is the sparse linear-algebra substrate for the spectral
// fraud-detection baselines (SPOKEN and FBOX). It provides a CSR sparse
// matrix with mat-vec products, small dense matrices with a modified
// Gram-Schmidt QR, a symmetric Jacobi eigensolver, and a deterministic
// randomized truncated SVD built from those parts. Only the standard
// library is used.
package linalg

import "fmt"

// Entry is one nonzero of a sparse matrix.
type Entry struct {
	Row, Col uint32
	Val      float64
}

// Sparse is an immutable CSR matrix.
type Sparse struct {
	rows, cols int
	rowOff     []int
	colIdx     []uint32
	vals       []float64
}

// NewSparse builds a rows×cols CSR matrix from entries. Duplicate (row, col)
// entries are summed. Entries out of range yield an error.
func NewSparse(rows, cols int, entries []Entry) (*Sparse, error) {
	for _, e := range entries {
		if int(e.Row) >= rows || int(e.Col) >= cols {
			return nil, fmt.Errorf("linalg: entry (%d,%d) out of %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	counts := make([]int, rows+1)
	for _, e := range entries {
		counts[e.Row+1]++
	}
	for i := 1; i <= rows; i++ {
		counts[i] += counts[i-1]
	}
	colIdx := make([]uint32, len(entries))
	vals := make([]float64, len(entries))
	cur := make([]int, rows)
	for _, e := range entries {
		p := counts[e.Row] + cur[e.Row]
		colIdx[p] = e.Col
		vals[p] = e.Val
		cur[e.Row]++
	}
	m := &Sparse{rows: rows, cols: cols, rowOff: counts, colIdx: colIdx, vals: vals}
	m.sumDuplicates()
	return m, nil
}

// sumDuplicates merges repeated columns within each row in place.
func (m *Sparse) sumDuplicates() {
	newColIdx := m.colIdx[:0]
	newVals := m.vals[:0]
	newOff := make([]int, m.rows+1)
	for r := 0; r < m.rows; r++ {
		start, end := m.rowOff[r], m.rowOff[r+1]
		// insertion sort the row (rows are short in our workloads)
		row := make(map[uint32]float64, end-start)
		var order []uint32
		for p := start; p < end; p++ {
			c := m.colIdx[p]
			if _, ok := row[c]; !ok {
				order = append(order, c)
			}
			row[c] += m.vals[p]
		}
		sortU32(order)
		for _, c := range order {
			newColIdx = append(newColIdx, c)
			newVals = append(newVals, row[c])
		}
		newOff[r+1] = len(newColIdx)
	}
	m.colIdx = newColIdx
	m.vals = newVals
	m.rowOff = newOff
}

func sortU32(a []uint32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Rows returns the number of rows.
func (m *Sparse) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Sparse) Cols() int { return m.cols }

// NNZ returns the number of stored nonzeros.
func (m *Sparse) NNZ() int { return len(m.vals) }

// At returns the (r, c) element; O(row length).
func (m *Sparse) At(r, c int) float64 {
	for p := m.rowOff[r]; p < m.rowOff[r+1]; p++ {
		if int(m.colIdx[p]) == c {
			return m.vals[p]
		}
	}
	return 0
}

// MulVec computes dst = A·x. dst must have length Rows, x length Cols.
func (m *Sparse) MulVec(dst, x []float64) {
	if len(dst) != m.rows || len(x) != m.cols {
		panic(fmt.Sprintf("linalg: MulVec dims dst=%d x=%d for %dx%d", len(dst), len(x), m.rows, m.cols))
	}
	for r := 0; r < m.rows; r++ {
		s := 0.0
		for p := m.rowOff[r]; p < m.rowOff[r+1]; p++ {
			s += m.vals[p] * x[m.colIdx[p]]
		}
		dst[r] = s
	}
}

// MulTVec computes dst = Aᵀ·x. dst must have length Cols, x length Rows.
func (m *Sparse) MulTVec(dst, x []float64) {
	if len(dst) != m.cols || len(x) != m.rows {
		panic(fmt.Sprintf("linalg: MulTVec dims dst=%d x=%d for %dx%d", len(dst), len(x), m.rows, m.cols))
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for p := m.rowOff[r]; p < m.rowOff[r+1]; p++ {
			dst[m.colIdx[p]] += m.vals[p] * xr
		}
	}
}

// RowNorm2 returns the Euclidean norm of row r.
func (m *Sparse) RowNorm2(r int) float64 {
	s := 0.0
	for p := m.rowOff[r]; p < m.rowOff[r+1]; p++ {
		s += m.vals[p] * m.vals[p]
	}
	return sqrt(s)
}
