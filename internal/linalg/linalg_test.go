package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSparseBasics(t *testing.T) {
	m, err := NewSparse(2, 3, []Entry{
		{0, 0, 1}, {0, 2, 2}, {1, 1, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 3 || m.NNZ() != 3 {
		t.Fatalf("dims/nnz wrong: %dx%d nnz=%d", m.Rows(), m.Cols(), m.NNZ())
	}
	if m.At(0, 0) != 1 || m.At(0, 2) != 2 || m.At(1, 1) != 3 || m.At(1, 0) != 0 {
		t.Error("At wrong")
	}
}

func TestNewSparseDuplicatesSummed(t *testing.T) {
	m, err := NewSparse(1, 2, []Entry{{0, 1, 1}, {0, 1, 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 1 || m.At(0, 1) != 3.5 {
		t.Errorf("duplicate sum: nnz=%d val=%g", m.NNZ(), m.At(0, 1))
	}
}

func TestNewSparseRangeCheck(t *testing.T) {
	if _, err := NewSparse(1, 1, []Entry{{1, 0, 1}}); err == nil {
		t.Error("accepted out-of-range row")
	}
	if _, err := NewSparse(1, 1, []Entry{{0, 1, 1}}); err == nil {
		t.Error("accepted out-of-range col")
	}
}

func TestMulVec(t *testing.T) {
	// [[1 2],[3 4]] · [1, -1] = [-1, -1]
	m, _ := NewSparse(2, 2, []Entry{{0, 0, 1}, {0, 1, 2}, {1, 0, 3}, {1, 1, 4}})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, -1})
	if dst[0] != -1 || dst[1] != -1 {
		t.Errorf("MulVec = %v", dst)
	}
	dt := make([]float64, 2)
	m.MulTVec(dt, []float64{1, 1})
	if dt[0] != 4 || dt[1] != 6 {
		t.Errorf("MulTVec = %v", dt)
	}
}

func TestMulVecDimPanics(t *testing.T) {
	m, _ := NewSparse(2, 3, nil)
	defer func() {
		if recover() == nil {
			t.Error("MulVec with wrong dims did not panic")
		}
	}()
	m.MulVec(make([]float64, 1), make([]float64, 3))
}

func TestPropertyMulTVecAdjoint(t *testing.T) {
	// ⟨A·x, y⟩ = ⟨x, Aᵀ·y⟩ for random sparse A.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		var entries []Entry
		for i := 0; i < rng.Intn(80); i++ {
			entries = append(entries, Entry{
				Row: uint32(rng.Intn(rows)), Col: uint32(rng.Intn(cols)), Val: rng.NormFloat64(),
			})
		}
		m, err := NewSparse(rows, cols, entries)
		if err != nil {
			return false
		}
		x := make([]float64, cols)
		y := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		ax := make([]float64, rows)
		m.MulVec(ax, x)
		aty := make([]float64, cols)
		m.MulTVec(aty, y)
		return math.Abs(Dot(ax, y)-Dot(x, aty)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQROrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(30, 5)
	for c := 0; c < 5; c++ {
		col := d.Col(c)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	orig := NewDense(30, 5)
	copy(orig.data, d.data)
	r := d.QR()
	// QᵀQ = I
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if got := Dot(d.Col(i), d.Col(j)); math.Abs(got-want) > 1e-10 {
				t.Errorf("QᵀQ[%d,%d] = %g, want %g", i, j, got, want)
			}
		}
	}
	// Q·R = original
	for c := 0; c < 5; c++ {
		recon := make([]float64, 30)
		for i := 0; i <= c; i++ {
			AXPY(r.At(i, c), d.Col(i), recon)
		}
		for row := 0; row < 30; row++ {
			if math.Abs(recon[row]-orig.At(row, c)) > 1e-9 {
				t.Fatalf("QR reconstruction off at (%d,%d)", row, c)
			}
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	d := NewDense(4, 2)
	for i := 0; i < 4; i++ {
		d.Set(i, 0, 1)
		d.Set(i, 1, 2) // col1 = 2·col0
	}
	r := d.QR()
	if r.At(1, 1) != 0 {
		t.Errorf("R[1,1] = %g, want 0 for dependent column", r.At(1, 1))
	}
	if Norm2(d.Col(1)) != 0 {
		t.Error("dependent column not zeroed")
	}
}

func TestJacobiEigenKnown(t *testing.T) {
	// [[2 1],[1 2]] has eigenvalues 3 and 1.
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	vals, vecs := JacobiEigen(a)
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigvals = %v, want [3 1]", vals)
	}
	// A·v = λ·v for each pair.
	for c := 0; c < 2; c++ {
		v := vecs.Col(c)
		av := []float64{2*v[0] + v[1], v[0] + 2*v[1]}
		for i := range av {
			if math.Abs(av[i]-vals[c]*v[i]) > 1e-9 {
				t.Errorf("A·v != λ·v for eigenpair %d", c)
			}
		}
	}
}

func TestJacobiEigenNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-square JacobiEigen did not panic")
		}
	}()
	JacobiEigen(NewDense(2, 3))
}

func TestPropertyJacobiEigenDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(8)
		a := NewDense(k, k)
		for i := 0; i < k; i++ {
			for j := i; j < k; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs := JacobiEigen(a)
		// descending order
		for i := 1; i < k; i++ {
			if vals[i] > vals[i-1]+1e-9 {
				return false
			}
		}
		// residual ‖A·v − λ·v‖ small
		for c := 0; c < k; c++ {
			v := vecs.Col(c)
			for i := 0; i < k; i++ {
				av := 0.0
				for j := 0; j < k; j++ {
					av += a.At(i, j) * v[j]
				}
				if math.Abs(av-vals[c]*v[i]) > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// lowRankSparse builds an exactly rank-2 matrix σ1·u1v1ᵀ + σ2·u2v2ᵀ with
// block-indicator singular vectors.
func lowRankSparse(t *testing.T) *Sparse {
	t.Helper()
	var entries []Entry
	// block 1: rows 0..9 x cols 0..9, value 5
	for r := 0; r < 10; r++ {
		for c := 0; c < 10; c++ {
			entries = append(entries, Entry{uint32(r), uint32(c), 5})
		}
	}
	// block 2: rows 10..19 x cols 10..19, value 2
	for r := 10; r < 20; r++ {
		for c := 10; c < 20; c++ {
			entries = append(entries, Entry{uint32(r), uint32(c), 2})
		}
	}
	m, err := NewSparse(20, 20, entries)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTruncatedSVDExactRank2(t *testing.T) {
	m := lowRankSparse(t)
	res := TruncatedSVD(m, 2, 3, 42)
	// True singular values: 5·10 = 50 and 2·10 = 20 (rank-1 blocks of
	// all-ones 10x10 scaled).
	if math.Abs(res.S[0]-50) > 1e-6 || math.Abs(res.S[1]-20) > 1e-6 {
		t.Fatalf("singular values = %v, want [50 20]", res.S)
	}
	// U columns orthonormal.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if got := Dot(res.U.Col(i), res.U.Col(j)); math.Abs(got-want) > 1e-8 {
				t.Errorf("UᵀU[%d,%d] = %g", i, j, got)
			}
			if got := Dot(res.V.Col(i), res.V.Col(j)); math.Abs(got-want) > 1e-8 {
				t.Errorf("VᵀV[%d,%d] = %g", i, j, got)
			}
		}
	}
	// Leading left singular vector supported on rows 0..9.
	u0 := res.U.Col(0)
	for r := 10; r < 20; r++ {
		if math.Abs(u0[r]) > 1e-6 {
			t.Errorf("u1[%d] = %g, want 0", r, u0[r])
		}
	}
}

func TestTruncatedSVDReconstruction(t *testing.T) {
	m := lowRankSparse(t)
	res := TruncatedSVD(m, 2, 3, 7)
	// Rank-2 truncation of an exactly rank-2 matrix reconstructs it.
	for r := 0; r < 20; r += 3 {
		for c := 0; c < 20; c += 3 {
			recon := 0.0
			for i := 0; i < 2; i++ {
				recon += res.S[i] * res.U.At(r, i) * res.V.At(c, i)
			}
			if math.Abs(recon-m.At(r, c)) > 1e-6 {
				t.Fatalf("recon(%d,%d) = %g, want %g", r, c, recon, m.At(r, c))
			}
		}
	}
}

func TestTruncatedSVDDeterministic(t *testing.T) {
	m := lowRankSparse(t)
	a := TruncatedSVD(m, 2, 2, 9)
	b := TruncatedSVD(m, 2, 2, 9)
	for i := range a.S {
		if a.S[i] != b.S[i] {
			t.Error("SVD not deterministic for fixed seed")
		}
	}
}

func TestTruncatedSVDClampsK(t *testing.T) {
	m, _ := NewSparse(3, 2, []Entry{{0, 0, 1}, {1, 1, 1}})
	res := TruncatedSVD(m, 10, 2, 1)
	if res.Rank() != 2 {
		t.Errorf("rank = %d, want 2 (clamped)", res.Rank())
	}
}

func TestTruncatedSVDEmptyMatrix(t *testing.T) {
	m, _ := NewSparse(4, 4, nil)
	res := TruncatedSVD(m, 2, 2, 1)
	for _, s := range res.S {
		if s != 0 {
			t.Errorf("zero matrix has σ=%g", s)
		}
	}
}

func TestReconstructedRowNorm(t *testing.T) {
	m := lowRankSparse(t)
	res := TruncatedSVD(m, 2, 3, 3)
	// Row 0 has true norm sqrt(10·25) = sqrt(250); exact-rank recon equals it.
	want := m.RowNorm2(0)
	if got := res.ReconstructedRowNorm(0); math.Abs(got-want) > 1e-6 {
		t.Errorf("ReconstructedRowNorm(0) = %g, want %g", got, want)
	}
}

func TestPropertySingularValuesDecreasing(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 5+rng.Intn(20), 5+rng.Intn(20)
		var entries []Entry
		for i := 0; i < 30+rng.Intn(100); i++ {
			entries = append(entries, Entry{
				Row: uint32(rng.Intn(rows)), Col: uint32(rng.Intn(cols)), Val: rng.Float64(),
			})
		}
		m, err := NewSparse(rows, cols, entries)
		if err != nil {
			return false
		}
		res := TruncatedSVD(m, 4, 2, seed)
		for i := 1; i < len(res.S); i++ {
			if res.S[i] > res.S[i-1]+1e-8 {
				return false
			}
			if res.S[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDenseHelpers(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(1, 2, 5)
	if d.At(1, 2) != 5 {
		t.Error("Set/At")
	}
	k := d.CopyColsTo(2)
	if k.ColsN != 2 || k.RowsN != 2 {
		t.Error("CopyColsTo dims")
	}
	k2 := d.CopyColsTo(99)
	if k2.ColsN != 3 {
		t.Error("CopyColsTo clamp")
	}
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Error("Norm2")
	}
	y := []float64{1, 1}
	AXPY(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Error("AXPY")
	}
	Scale(0.5, y)
	if y[0] != 3.5 {
		t.Error("Scale")
	}
}
