package linalg

import "math/rand"

// SVDResult holds a rank-k truncated singular value decomposition
// A ≈ U·diag(S)·Vᵀ with U (rows×k) and V (cols×k) having orthonormal
// columns and S in descending order.
type SVDResult struct {
	U *Dense
	S []float64
	V *Dense
}

// TruncatedSVD computes a rank-k truncated SVD of A with randomized subspace
// iteration (Halko-Martinsson-Tropp): sketch Y = A·Ω, power-iterate
// (AAᵀ)^q with QR re-orthonormalization between applications, then solve the
// small projected problem exactly via a symmetric Jacobi eigensolver on
// B·Bᵀ where B = Qᵀ·A.
//
// iters is the number of power iterations q (2-4 suffices for the sharply
// decaying spectra of fraud graphs; 0 means 3). The decomposition is
// deterministic for a fixed seed. k is clamped to min(rows, cols).
func TruncatedSVD(a *Sparse, k, iters int, seed int64) SVDResult {
	rows, cols := a.Rows(), a.Cols()
	if k > rows {
		k = rows
	}
	if k > cols {
		k = cols
	}
	if k <= 0 || a.NNZ() == 0 {
		return SVDResult{U: NewDense(rows, maxInt(k, 0)), S: make([]float64, maxInt(k, 0)), V: NewDense(cols, maxInt(k, 0))}
	}
	if iters <= 0 {
		iters = 3
	}
	// Oversample for accuracy of the leading k triplets.
	p := k + minInt(10, k)
	if p > rows {
		p = rows
	}
	if p > cols {
		p = cols
	}

	rng := rand.New(rand.NewSource(seed))
	// Sketch: Y = A·Ω, Ω gaussian cols×p.
	q := NewDense(rows, p)
	omega := make([]float64, cols)
	for j := 0; j < p; j++ {
		for i := range omega {
			omega[i] = rng.NormFloat64()
		}
		a.MulVec(q.Col(j), omega)
	}
	q.QR()

	// Power iterations with re-orthonormalization.
	z := NewDense(cols, p)
	for it := 0; it < iters; it++ {
		for j := 0; j < p; j++ {
			a.MulTVec(z.Col(j), q.Col(j))
		}
		z.QR()
		for j := 0; j < p; j++ {
			a.MulVec(q.Col(j), z.Col(j))
		}
		q.QR()
	}

	// B = Qᵀ·A, stored transposed: bt (cols×p) with bt[:,j] = Aᵀ·q_j.
	bt := NewDense(cols, p)
	for j := 0; j < p; j++ {
		a.MulTVec(bt.Col(j), q.Col(j))
	}

	// Small symmetric problem: G = B·Bᵀ = btᵀ·bt (p×p), G = W Λ Wᵀ,
	// σ_i = sqrt(λ_i), U = Q·W, V = Bᵀ·W·Σ⁻¹.
	g := NewDense(p, p)
	for i := 0; i < p; i++ {
		for j := i; j < p; j++ {
			v := Dot(bt.Col(i), bt.Col(j))
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
	}
	lam, w := JacobiEigen(g)

	res := SVDResult{U: NewDense(rows, k), S: make([]float64, k), V: NewDense(cols, k)}
	for c := 0; c < k; c++ {
		l := lam[c]
		if l < 0 {
			l = 0
		}
		sigma := sqrt(l)
		res.S[c] = sigma
		uc := res.U.Col(c)
		for i := 0; i < p; i++ {
			AXPY(w.At(i, c), q.Col(i), uc)
		}
		vc := res.V.Col(c)
		for i := 0; i < p; i++ {
			AXPY(w.At(i, c), bt.Col(i), vc)
		}
		if sigma > 1e-12 {
			Scale(1/sigma, vc)
		} else {
			for i := range vc {
				vc[i] = 0
			}
		}
	}
	return res
}

// ReconstructedRowNorm returns, for each row r of A, the Euclidean norm of
// the projection of that row onto the top-k right singular subspace:
// ‖Σ_i σ_i·U[r,i]·V[:,i]‖₂ = ‖(σ_i·U[r,i])_i‖₂ (V's columns are
// orthonormal). FBOX compares this against the true row norm.
func (s SVDResult) ReconstructedRowNorm(r int) float64 {
	acc := 0.0
	for c := 0; c < len(s.S); c++ {
		t := s.S[c] * s.U.At(r, c)
		acc += t * t
	}
	return sqrt(acc)
}

// Rank returns the number of retained singular triplets.
func (s SVDResult) Rank() int { return len(s.S) }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
