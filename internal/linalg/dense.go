package linalg

import (
	"fmt"
	"math"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// Dense is a column-major dense matrix; columns are the natural unit for the
// block iterations used by the truncated SVD.
type Dense struct {
	RowsN, ColsN int
	data         []float64 // column-major: element (r,c) at data[c*RowsN+r]
}

// NewDense allocates a zeroed rows×cols dense matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{RowsN: rows, ColsN: cols, data: make([]float64, rows*cols)}
}

// At returns element (r, c).
func (d *Dense) At(r, c int) float64 { return d.data[c*d.RowsN+r] }

// Set assigns element (r, c).
func (d *Dense) Set(r, c int, v float64) { d.data[c*d.RowsN+r] = v }

// Col returns column c as a shared slice.
func (d *Dense) Col(c int) []float64 { return d.data[c*d.RowsN : (c+1)*d.RowsN] }

// CopyColsTo returns a new Dense holding the first k columns.
func (d *Dense) CopyColsTo(k int) *Dense {
	if k > d.ColsN {
		k = d.ColsN
	}
	out := NewDense(d.RowsN, k)
	copy(out.data, d.data[:d.RowsN*k])
	return out
}

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return sqrt(Dot(x, x)) }

// AXPY computes y += a·x.
func AXPY(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// QR orthonormalizes the columns of d in place with modified Gram-Schmidt and
// one re-orthogonalization pass, returning the k×k upper-triangular R.
// Columns whose residual norm collapses below tol·(initial norm) are zeroed
// and get a zero diagonal in R — callers treating d as an orthonormal basis
// should check R's diagonal for rank deficiency.
func (d *Dense) QR() *Dense {
	k := d.ColsN
	r := NewDense(k, k)
	const tol = 1e-12
	for j := 0; j < k; j++ {
		cj := d.Col(j)
		orig := Norm2(cj)
		// two MGS passes for numerical robustness; R accumulates both
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < j; i++ {
				ci := d.Col(i)
				proj := Dot(ci, cj)
				r.Set(i, j, r.At(i, j)+proj)
				AXPY(-proj, ci, cj)
			}
		}
		n := Norm2(cj)
		if orig > 0 && n > tol*orig && n > 0 {
			r.Set(j, j, n)
			Scale(1/n, cj)
		} else {
			r.Set(j, j, 0)
			for i := range cj {
				cj[i] = 0
			}
		}
	}
	return r
}

// JacobiEigen computes the eigendecomposition of a symmetric k×k matrix A
// (passed as a Dense, only the provided values are used; symmetry is
// assumed): A = V Λ Vᵀ. It returns eigenvalues in descending order with the
// matching eigenvector columns. Cyclic Jacobi with a fixed sweep budget; k
// is small (tens) in all callers.
func JacobiEigen(a *Dense) (eigvals []float64, eigvecs *Dense) {
	k := a.RowsN
	if a.ColsN != k {
		panic(fmt.Sprintf("linalg: JacobiEigen needs square input, got %dx%d", a.RowsN, a.ColsN))
	}
	// working copy
	m := NewDense(k, k)
	copy(m.data, a.data)
	v := NewDense(k, k)
	for i := 0; i < k; i++ {
		v.Set(i, i, 1)
	}
	fro := 0.0
	for i := range m.data {
		fro += m.data[i] * m.data[i]
	}
	// Converge the off-diagonal mass to machine-precision level relative to
	// the matrix scale; eigvec residuals end up ~sqrt(eps).
	eps := 1e-24 * (fro + 1)
	const sweeps = 100
	for s := 0; s < sweeps; s++ {
		off := 0.0
		for p := 0; p < k; p++ {
			for q := p + 1; q < k; q++ {
				off += m.At(p, q) * m.At(p, q)
			}
		}
		if off < eps {
			break
		}
		for p := 0; p < k; p++ {
			for q := p + 1; q < k; q++ {
				apq := m.At(p, q)
				if apq*apq < eps/float64(k*k+1) {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				sn := t * c
				// rotate rows/cols p, q of m
				for i := 0; i < k; i++ {
					mip, miq := m.At(i, p), m.At(i, q)
					m.Set(i, p, c*mip-sn*miq)
					m.Set(i, q, sn*mip+c*miq)
				}
				for i := 0; i < k; i++ {
					mpi, mqi := m.At(p, i), m.At(q, i)
					m.Set(p, i, c*mpi-sn*mqi)
					m.Set(q, i, sn*mpi+c*mqi)
				}
				for i := 0; i < k; i++ {
					vip, viq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vip-sn*viq)
					v.Set(i, q, sn*vip+c*viq)
				}
			}
		}
	}
	// extract and sort descending
	type ev struct {
		val float64
		idx int
	}
	order := make([]ev, k)
	for i := 0; i < k; i++ {
		order[i] = ev{m.At(i, i), i}
	}
	for i := 1; i < len(order); i++ { // insertion sort, k is tiny
		for j := i; j > 0 && order[j].val > order[j-1].val; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	eigvals = make([]float64, k)
	eigvecs = NewDense(k, k)
	for c, o := range order {
		eigvals[c] = o.val
		copy(eigvecs.Col(c), v.Col(o.idx))
	}
	return eigvals, eigvecs
}
