package bipartite

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// smallGraph is the running example:
//
//	u0 - v0, v1
//	u1 - v1
//	u2 - v1, v2
func smallGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1)
	b.AddEdge(2, 1)
	b.AddEdge(2, 2)
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestBuilderBasic(t *testing.T) {
	g := smallGraph(t)
	if got, want := g.NumUsers(), 3; got != want {
		t.Errorf("NumUsers = %d, want %d", got, want)
	}
	if got, want := g.NumMerchants(), 3; got != want {
		t.Errorf("NumMerchants = %d, want %d", got, want)
	}
	if got, want := g.NumEdges(), 5; got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
	if got, want := g.NumNodes(), 6; got != want {
		t.Errorf("NumNodes = %d, want %d", got, want)
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := smallGraph(t)
	wantUserDeg := []int{2, 1, 2}
	for u, want := range wantUserDeg {
		if got := g.UserDegree(uint32(u)); got != want {
			t.Errorf("UserDegree(%d) = %d, want %d", u, got, want)
		}
	}
	wantMerchDeg := []int{1, 3, 1}
	for v, want := range wantMerchDeg {
		if got := g.MerchantDegree(uint32(v)); got != want {
			t.Errorf("MerchantDegree(%d) = %d, want %d", v, got, want)
		}
	}
	if got, want := g.UserNeighbors(0), []uint32{0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("UserNeighbors(0) = %v, want %v", got, want)
	}
	if got, want := g.MerchantNeighbors(1), []uint32{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("MerchantNeighbors(1) = %v, want %v", got, want)
	}
}

func TestHasEdge(t *testing.T) {
	g := smallGraph(t)
	cases := []struct {
		u, v uint32
		want bool
	}{
		{0, 0, true}, {0, 1, true}, {0, 2, false},
		{1, 1, true}, {1, 0, false},
		{2, 2, true}, {2, 0, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestDuplicateEdgesMerged(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 10; i++ {
		b.AddEdge(0, 0)
		b.AddEdge(1, 0)
	}
	g := b.Build()
	if got, want := g.NumEdges(), 2; got != want {
		t.Errorf("NumEdges = %d, want %d (duplicates must merge)", got, want)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder().Build()
	if g.NumUsers() != 0 || g.NumMerchants() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph has nonzero size: %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("empty graph Validate: %v", err)
	}
	g.Edges(func(Edge) bool {
		t.Error("Edges on empty graph yielded an edge")
		return false
	})
}

func TestEdgeAt(t *testing.T) {
	g := smallGraph(t)
	list := g.EdgeList()
	for i, want := range list {
		if got := g.EdgeAt(i); got != want {
			t.Errorf("EdgeAt(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestEdgesEarlyStop(t *testing.T) {
	g := smallGraph(t)
	n := 0
	g.Edges(func(Edge) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early-stopped iteration visited %d edges, want 3", n)
	}
}

func TestFromEdgesRangeCheck(t *testing.T) {
	_, err := FromEdges(1, 1, []Edge{{U: 1, V: 0}})
	if err == nil {
		t.Error("FromEdges accepted out-of-range user id")
	}
	_, err = FromEdges(1, 1, []Edge{{U: 0, V: 5}})
	if err == nil {
		t.Error("FromEdges accepted out-of-range merchant id")
	}
	g, err := FromEdges(4, 4, []Edge{{U: 0, V: 0}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	// Declared sizes preserve isolated trailing nodes.
	if g.NumUsers() != 4 || g.NumMerchants() != 4 {
		t.Errorf("declared sizes not preserved: %v", g)
	}
}

func TestBuilderSizedGrows(t *testing.T) {
	b := NewBuilderSized(2, 2, 4)
	b.AddEdge(5, 7)
	g := b.Build()
	if g.NumUsers() != 6 || g.NumMerchants() != 8 {
		t.Errorf("builder did not grow sides: %v", g)
	}
}

// randomEdges generates a reproducible random edge multiset.
func randomEdges(rng *rand.Rand, numUsers, numMerchants, n int) []Edge {
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{
			U: uint32(rng.Intn(numUsers)),
			V: uint32(rng.Intn(numMerchants)),
		}
	}
	return edges
}

func TestPropertyCSRSymmetry(t *testing.T) {
	// For random graphs, the user-side and merchant-side CSR views must
	// describe the same edge set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu, nm := 1+rng.Intn(40), 1+rng.Intn(40)
		g, err := FromEdges(nu, nm, randomEdges(rng, nu, nm, rng.Intn(200)))
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		var fromUsers, fromMerchants []Edge
		g.Edges(func(e Edge) bool { fromUsers = append(fromUsers, e); return true })
		for v := 0; v < g.NumMerchants(); v++ {
			for _, u := range g.MerchantNeighbors(uint32(v)) {
				fromMerchants = append(fromMerchants, Edge{U: u, V: uint32(v)})
			}
		}
		sortEdges(fromUsers)
		sortEdges(fromMerchants)
		return reflect.DeepEqual(fromUsers, fromMerchants)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDegreeSums(t *testing.T) {
	// Sum of degrees on each side equals |E|.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu, nm := 1+rng.Intn(50), 1+rng.Intn(50)
		g, err := FromEdges(nu, nm, randomEdges(rng, nu, nm, rng.Intn(300)))
		if err != nil {
			return false
		}
		su, sm := 0, 0
		for u := 0; u < g.NumUsers(); u++ {
			su += g.UserDegree(uint32(u))
		}
		for v := 0; v < g.NumMerchants(); v++ {
			sm += g.MerchantDegree(uint32(v))
		}
		return su == g.NumEdges() && sm == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := smallGraph(t)
	g.userAdj[0], g.userAdj[1] = g.userAdj[1], g.userAdj[0] // break sortedness
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted unsorted adjacency row")
	}
}
