package bipartite

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrIDRange tags failures caused by a node id above a configured bound —
// distinct from parse errors or I/O failures, so callers can decide whether
// raising the bound is the right remedy before suggesting it.
var ErrIDRange = errors.New("node id out of range")

// Edge-list text format: one edge per line, "user<TAB>merchant" (or any run
// of spaces/tabs as separator). Lines starting with '#' and blank lines are
// ignored. Binary format: a fixed little-endian header followed by the edge
// array; see writeBinaryHeader.

// ReadEdgeList parses a text edge list into a Graph. Side sizes are inferred
// from the largest ids present. Ids up to MaxNodeID are accepted.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return ReadEdgeListMax(r, MaxNodeID)
}

// MaxNodeID is the largest node id ReadEdgeList accepts. Ids are dense
// indices, so graph memory is proportional to the largest id present; the
// very top of the uint32 range is additionally excluded because CSR offset
// arithmetic indexes by id+1.
const MaxNodeID = 1<<32 - 2

// ReadEdgeListMax parses a text edge list, rejecting any node id above
// maxID. The parsed edge slice is handed to the CSR builder without an
// intermediate copy, so peak memory is one edge slice plus the graph.
func ReadEdgeListMax(r io.Reader, maxID uint32) (*Graph, error) {
	edges, err := ReadEdgesMax(r, maxID)
	if err != nil {
		return nil, err
	}
	numUsers, numMerchants := 0, 0
	for _, e := range edges {
		if int(e.U) >= numUsers {
			numUsers = int(e.U) + 1
		}
		if int(e.V) >= numMerchants {
			numMerchants = int(e.V) + 1
		}
	}
	return buildFromEdges(numUsers, numMerchants, edges), nil
}

// ReadEdgesMax parses the text edge-list format into a raw edge slice
// without building a graph — the right entry point when the edges feed a
// dynamic ingest path rather than an immediate CSR. Any node id above maxID
// is rejected; callers ingesting untrusted files should pass a bound
// matching the memory they are willing to spend, since ids are dense
// indices and a single line naming id 2^32-2 is 20 bytes of input that
// commits downstream consumers to gigabytes of offset arrays.
func ReadEdgesMax(r io.Reader, maxID uint32) ([]Edge, error) {
	if maxID > MaxNodeID {
		maxID = MaxNodeID
	}
	var edges []Edge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("bipartite: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bipartite: line %d: bad user id %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bipartite: line %d: bad merchant id %q: %w", lineNo, fields[1], err)
		}
		if u > uint64(maxID) || v > uint64(maxID) {
			return nil, fmt.Errorf("bipartite: line %d: %w: node id exceeds maximum %d", lineNo, ErrIDRange, maxID)
		}
		edges = append(edges, Edge{U: uint32(u), V: uint32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bipartite: reading edge list: %w", err)
	}
	return edges, nil
}

// WriteEdgeList writes g in the text edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var err error
	g.Edges(func(e Edge) bool {
		_, err = fmt.Fprintf(bw, "%d\t%d\n", e.U, e.V)
		return err == nil
	})
	if err != nil {
		return fmt.Errorf("bipartite: writing edge list: %w", err)
	}
	return bw.Flush()
}

const binaryMagic = uint32(0xB1FA_0001)

// WriteBinary writes g in the compact binary format. The format records side
// sizes explicitly, so isolated trailing nodes round-trip exactly.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{binaryMagic, uint32(g.NumUsers()), uint32(g.NumMerchants()), uint32(g.NumEdges())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("bipartite: writing binary header: %w", err)
		}
	}
	buf := make([]uint32, 0, 2*4096)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		err := binary.Write(bw, binary.LittleEndian, buf)
		buf = buf[:0]
		return err
	}
	var err error
	g.Edges(func(e Edge) bool {
		buf = append(buf, e.U, e.V)
		if len(buf) == cap(buf) {
			err = flush()
		}
		return err == nil
	})
	if err != nil {
		return fmt.Errorf("bipartite: writing binary edges: %w", err)
	}
	if err := flush(); err != nil {
		return fmt.Errorf("bipartite: writing binary edges: %w", err)
	}
	return bw.Flush()
}

// ReadBinary parses the binary format written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("bipartite: reading binary header: %w", err)
		}
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("bipartite: bad magic %#x", hdr[0])
	}
	numUsers, numMerchants, numEdges := int(hdr[1]), int(hdr[2]), int(hdr[3])
	raw := make([]uint32, 2*numEdges)
	if err := binary.Read(br, binary.LittleEndian, raw); err != nil {
		return nil, fmt.Errorf("bipartite: reading %d binary edges: %w", numEdges, err)
	}
	edges := make([]Edge, numEdges)
	for i := range edges {
		edges[i] = Edge{U: raw[2*i], V: raw[2*i+1]}
	}
	g, err := FromEdges(numUsers, numMerchants, edges)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
