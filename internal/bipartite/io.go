package bipartite

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Edge-list text format: one edge per line, "user<TAB>merchant" (or any run
// of spaces/tabs as separator). Lines starting with '#' and blank lines are
// ignored. Binary format: a fixed little-endian header followed by the edge
// array; see writeBinaryHeader.

// ReadEdgeList parses a text edge list into a Graph. Side sizes are inferred
// from the largest ids present.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("bipartite: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bipartite: line %d: bad user id %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bipartite: line %d: bad merchant id %q: %w", lineNo, fields[1], err)
		}
		b.AddEdge(uint32(u), uint32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bipartite: reading edge list: %w", err)
	}
	return b.Build(), nil
}

// WriteEdgeList writes g in the text edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var err error
	g.Edges(func(e Edge) bool {
		_, err = fmt.Fprintf(bw, "%d\t%d\n", e.U, e.V)
		return err == nil
	})
	if err != nil {
		return fmt.Errorf("bipartite: writing edge list: %w", err)
	}
	return bw.Flush()
}

const binaryMagic = uint32(0xB1FA_0001)

// WriteBinary writes g in the compact binary format. The format records side
// sizes explicitly, so isolated trailing nodes round-trip exactly.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{binaryMagic, uint32(g.NumUsers()), uint32(g.NumMerchants()), uint32(g.NumEdges())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("bipartite: writing binary header: %w", err)
		}
	}
	buf := make([]uint32, 0, 2*4096)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		err := binary.Write(bw, binary.LittleEndian, buf)
		buf = buf[:0]
		return err
	}
	var err error
	g.Edges(func(e Edge) bool {
		buf = append(buf, e.U, e.V)
		if len(buf) == cap(buf) {
			err = flush()
		}
		return err == nil
	})
	if err != nil {
		return fmt.Errorf("bipartite: writing binary edges: %w", err)
	}
	if err := flush(); err != nil {
		return fmt.Errorf("bipartite: writing binary edges: %w", err)
	}
	return bw.Flush()
}

// ReadBinary parses the binary format written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("bipartite: reading binary header: %w", err)
		}
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("bipartite: bad magic %#x", hdr[0])
	}
	numUsers, numMerchants, numEdges := int(hdr[1]), int(hdr[2]), int(hdr[3])
	raw := make([]uint32, 2*numEdges)
	if err := binary.Read(br, binary.LittleEndian, raw); err != nil {
		return nil, fmt.Errorf("bipartite: reading %d binary edges: %w", numEdges, err)
	}
	edges := make([]Edge, numEdges)
	for i := range edges {
		edges[i] = Edge{U: raw[2*i], V: raw[2*i+1]}
	}
	g, err := FromEdges(numUsers, numMerchants, edges)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
