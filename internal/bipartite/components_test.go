package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConnectedComponentsTwoBlocks(t *testing.T) {
	// Two disjoint 2x2 blocks plus an isolated user.
	g, err := FromEdges(5, 4, []Edge{
		{U: 0, V: 0}, {U: 0, V: 1}, {U: 1, V: 0}, {U: 1, V: 1},
		{U: 2, V: 2}, {U: 2, V: 3}, {U: 3, V: 2}, {U: 3, V: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := ConnectedComponents(g)
	if cl.Count != 3 {
		t.Fatalf("Count = %d, want 3 (two blocks + isolated u4)", cl.Count)
	}
	if cl.User[0] != cl.User[1] || cl.User[0] != cl.Merchant[0] {
		t.Error("block 1 not connected")
	}
	if cl.User[2] != cl.User[3] || cl.User[2] != cl.Merchant[2] {
		t.Error("block 2 not connected")
	}
	if cl.User[0] == cl.User[2] {
		t.Error("blocks merged")
	}
	label, size := cl.LargestComponent()
	if size != 4 {
		t.Errorf("largest size = %d, want 4", size)
	}
	if label != cl.User[0] && label != cl.User[2] {
		t.Errorf("largest label %d is not a block label", label)
	}
}

func TestConnectedComponentsEmpty(t *testing.T) {
	cl := ConnectedComponents(NewBuilder().Build())
	if cl.Count != 0 {
		t.Errorf("Count = %d, want 0", cl.Count)
	}
	if label, size := cl.LargestComponent(); label != -1 || size != 0 {
		t.Errorf("LargestComponent = (%d,%d), want (-1,0)", label, size)
	}
}

func TestPropertyComponentSizesSum(t *testing.T) {
	// Component sizes must partition all nodes, and endpoints of every edge
	// must share a component.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu, nm := 1+rng.Intn(30), 1+rng.Intn(30)
		g, err := FromEdges(nu, nm, randomEdges(rng, nu, nm, rng.Intn(100)))
		if err != nil {
			return false
		}
		cl := ConnectedComponents(g)
		total := 0
		for _, s := range cl.Sizes {
			total += s
		}
		if total != g.NumNodes() {
			return false
		}
		ok := true
		g.Edges(func(e Edge) bool {
			if cl.User[e.U] != cl.Merchant[e.V] {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
