package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInducedByEdges(t *testing.T) {
	g := smallGraph(t)
	sg := g.InducedByEdges([]Edge{{U: 0, V: 1}, {U: 2, V: 1}})
	if sg.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", sg.NumEdges())
	}
	if sg.NumUsers() != 2 || sg.NumMerchants() != 1 {
		t.Fatalf("sizes = (%d,%d), want (2,1)", sg.NumUsers(), sg.NumMerchants())
	}
	// Every local edge must map to a parent edge.
	sg.Edges(func(e Edge) bool {
		pu, pv := sg.ParentUser(e.U), sg.ParentMerchant(e.V)
		if !g.HasEdge(pu, pv) {
			t.Errorf("local edge %v maps to non-edge (%d,%d)", e, pu, pv)
		}
		return true
	})
}

func TestInducedByEdgesNoExtraEdges(t *testing.T) {
	// Edge sampling must not add edges beyond those sampled, even when both
	// endpoints of an unsampled parent edge are present.
	g := smallGraph(t)
	// u0-v0 and u0-v1 exist; sample only u0-v0 plus u1-v1 so that v1 and u0
	// are both present but u0-v1 is not sampled.
	sg := g.InducedByEdges([]Edge{{U: 0, V: 0}, {U: 1, V: 1}})
	if sg.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want exactly the 2 sampled edges", sg.NumEdges())
	}
}

func TestInducedByUsersKeepsAllIncidentEdges(t *testing.T) {
	g := smallGraph(t)
	sg := g.InducedByUsers([]uint32{0, 2})
	if sg.NumEdges() != 4 { // u0: 2 edges, u2: 2 edges
		t.Fatalf("NumEdges = %d, want 4", sg.NumEdges())
	}
	if sg.NumUsers() != 2 {
		t.Fatalf("NumUsers = %d, want 2", sg.NumUsers())
	}
	if sg.NumMerchants() != 3 { // v0, v1, v2 all touched
		t.Fatalf("NumMerchants = %d, want 3", sg.NumMerchants())
	}
}

func TestInducedByMerchants(t *testing.T) {
	g := smallGraph(t)
	sg := g.InducedByMerchants([]uint32{1})
	if sg.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", sg.NumEdges())
	}
	if sg.NumUsers() != 3 || sg.NumMerchants() != 1 {
		t.Fatalf("sizes = (%d,%d), want (3,1)", sg.NumUsers(), sg.NumMerchants())
	}
}

func TestInducedByBothCrossSection(t *testing.T) {
	g := smallGraph(t)
	sg := g.InducedByBoth([]uint32{0, 1}, []uint32{1})
	// Surviving edges: u0-v1, u1-v1.
	if sg.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", sg.NumEdges())
	}
}

func TestInducedDuplicateInputsIgnored(t *testing.T) {
	g := smallGraph(t)
	a := g.InducedByUsers([]uint32{0, 0, 2, 2, 2})
	b := g.InducedByUsers([]uint32{0, 2})
	if a.NumEdges() != b.NumEdges() || a.NumUsers() != b.NumUsers() {
		t.Errorf("duplicate ids changed result: %v vs %v", a.Graph, b.Graph)
	}
}

func TestWholeIdentity(t *testing.T) {
	g := smallGraph(t)
	sg := g.Whole()
	if sg.NumEdges() != g.NumEdges() {
		t.Fatalf("Whole changed edge count")
	}
	for u := 0; u < g.NumUsers(); u++ {
		if sg.ParentUser(uint32(u)) != uint32(u) {
			t.Errorf("ParentUser(%d) != %d", u, u)
		}
	}
	for v := 0; v < g.NumMerchants(); v++ {
		if sg.ParentMerchant(uint32(v)) != uint32(v) {
			t.Errorf("ParentMerchant(%d) != %d", v, v)
		}
	}
}

func TestPropertySubgraphEdgesMapToParent(t *testing.T) {
	// Every edge of any induced subgraph corresponds to an edge of the
	// parent under the id maps, for all three samplers' primitives.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu, nm := 2+rng.Intn(30), 2+rng.Intn(30)
		g, err := FromEdges(nu, nm, randomEdges(rng, nu, nm, 20+rng.Intn(200)))
		if err != nil {
			return false
		}
		// random user and merchant selections
		var users, merchants []uint32
		for u := 0; u < nu; u++ {
			if rng.Intn(2) == 0 {
				users = append(users, uint32(u))
			}
		}
		for v := 0; v < nm; v++ {
			if rng.Intn(2) == 0 {
				merchants = append(merchants, uint32(v))
			}
		}
		subs := []*Subgraph{
			g.InducedByUsers(users),
			g.InducedByMerchants(merchants),
			g.InducedByBoth(users, merchants),
		}
		for _, sg := range subs {
			if sg.Validate() != nil {
				return false
			}
			ok := true
			sg.Edges(func(e Edge) bool {
				if !g.HasEdge(sg.ParentUser(e.U), sg.ParentMerchant(e.V)) {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCrossSectionEdgeCount(t *testing.T) {
	// |E(cross-section)| equals the number of parent edges with both
	// endpoints selected.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu, nm := 2+rng.Intn(20), 2+rng.Intn(20)
		g, err := FromEdges(nu, nm, randomEdges(rng, nu, nm, rng.Intn(150)))
		if err != nil {
			return false
		}
		keepU := make(map[uint32]bool)
		keepV := make(map[uint32]bool)
		var users, merchants []uint32
		for u := 0; u < nu; u++ {
			if rng.Intn(2) == 0 {
				users = append(users, uint32(u))
				keepU[uint32(u)] = true
			}
		}
		for v := 0; v < nm; v++ {
			if rng.Intn(2) == 0 {
				merchants = append(merchants, uint32(v))
				keepV[uint32(v)] = true
			}
		}
		want := 0
		g.Edges(func(e Edge) bool {
			if keepU[e.U] && keepV[e.V] {
				want++
			}
			return true
		})
		return g.InducedByBoth(users, merchants).NumEdges() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
