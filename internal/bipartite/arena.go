package bipartite

import (
	"slices"

	"ensemfdet/internal/scratch"
)

// Arena is reusable scratch for building induced subgraphs. One arena per
// worker goroutine makes the sample→subgraph step allocation-free after
// warm-up: the remapper tables are epoch-stamped (reset is a generation
// bump, not a parent-sized refill), the CSR arrays are grown in place, and
// no intermediate local []Edge is materialized on the paths that can avoid
// one (edge lists arrive pre-grouped for edge- and user-induced builds).
//
// Aliasing contract: the Subgraph returned by the *Arena build methods
// points into arena-owned memory — its Graph CSR arrays and its
// UserIDs/MerchantIDs maps are overwritten by the next build on the same
// arena. Callers that need a subgraph to outlive the next build must use the
// allocating variants (InducedByEdges etc.), which wrap a fresh arena.
//
// An Arena must not be shared between goroutines without external
// synchronization. Building from different parent graphs with one arena is
// fine: every build re-sizes all tables to its own parent.
type Arena struct {
	users     idRemapper
	merchants idRemapper
	keep      scratch.Stamps // merchant keep-set for cross-section builds
	dedup     scratch.Stamps // input user dedup for cross-section builds
	edges     []Edge         // local-id edge buffer for scatter builds
	userOff   []int
	merchOff  []int
	userAdj   []uint32
	merchAdj  []uint32
	cur       []int // per-row scatter cursors / row counts
	g         Graph
	sub       Subgraph
}

// NewArena returns an empty arena. All tables are grown lazily on first use.
func NewArena() *Arena { return &Arena{} }

// Reset drops the arena's logical contents (the last built subgraph's id
// maps and edge buffer). It is not required between builds — every build
// resets internally — but lets long-lived holders release references into
// large id spaces without dropping the backing capacity.
func (a *Arena) Reset() {
	a.users.ids = a.users.ids[:0]
	a.merchants.ids = a.merchants.ids[:0]
	a.edges = a.edges[:0]
	a.g = Graph{}
	a.sub = Subgraph{}
}

// InducedByEdgesArena is InducedByEdges building into a. The given parent
// edges are not modified.
func (g *Graph) InducedByEdgesArena(a *Arena, edges []Edge) *Subgraph {
	a.users.reset(g.NumUsers())
	a.merchants.reset(g.NumMerchants())
	// Pass 1: assign local user ids in first-seen order and count rows. The
	// count table is indexed by local id, so nu ≤ len(edges) slots suffice
	// and the zeroing stays sample-sized, never parent-sized.
	bound := min(g.NumUsers(), len(edges))
	cnt := scratch.GrowZero(&a.cur, bound)
	for _, e := range edges {
		cnt[a.users.get(e.U)]++
	}
	nu := len(a.users.ids)
	uoff := scratch.Grow(&a.userOff, nu+1)
	uoff[0] = 0
	for l := 0; l < nu; l++ {
		uoff[l+1] = uoff[l] + cnt[l]
		cnt[l] = 0
	}
	// Pass 2: scatter merchants into their rows, assigning local merchant
	// ids in edge order — the same first-seen order the allocating path
	// produced, so parent id maps are identical.
	uadj := scratch.Grow(&a.userAdj, len(edges))
	for _, e := range edges {
		lu := a.users.get(e.U)
		uadj[uoff[lu]+cnt[lu]] = a.merchants.get(e.V)
		cnt[lu]++
	}
	return a.finish(g, nu)
}

// InducedByEdgeIDsArena builds the subgraph of the edges whose canonical
// (user-major) edge ids are listed in ids, which must be sorted ascending
// and in range [0, NumEdges). It is the RES fast path: the sampler's sorted
// index draw maps straight into CSR rows and no edge list is materialized.
func (g *Graph) InducedByEdgeIDsArena(a *Arena, ids []int) *Subgraph {
	a.users.reset(g.NumUsers())
	a.merchants.reset(g.NumMerchants())
	// ids are sorted, so owning users appear in nondecreasing canonical
	// order and a single forward walk over the user offsets resolves them;
	// each user's row fills contiguously as its ids stream past.
	uoff := scratch.Grow(&a.userOff, len(ids)+1)
	uadj := scratch.Grow(&a.userAdj, len(ids))
	u := uint32(0)
	prevLU := -1
	for pos, i := range ids {
		for {
			_, end := g.UserRowRange(u)
			if i < end {
				break
			}
			u++
		}
		lu := int(a.users.get(u))
		if lu != prevLU {
			uoff[lu] = pos
			prevLU = lu
		}
		uadj[pos] = a.merchants.get(g.UserAdjAt(i))
	}
	nu := len(a.users.ids)
	uoff[nu] = len(ids)
	return a.finish(g, nu)
}

// InducedByUsersArena is InducedByUsers building into a.
func (g *Graph) InducedByUsersArena(a *Arena, userIDs []uint32) *Subgraph {
	a.users.reset(g.NumUsers())
	a.merchants.reset(g.NumMerchants())
	for _, pu := range userIDs {
		a.users.get(pu) // idempotent: duplicate ids keep their first-seen local id
	}
	nu := len(a.users.ids)
	uoff := scratch.Grow(&a.userOff, nu+1)
	uoff[0] = 0
	for l, pu := range a.users.ids {
		uoff[l+1] = uoff[l] + g.UserDegree(pu)
	}
	// Selected users keep all their edges: rows copy whole parent rows, and
	// merchant ids are assigned first-seen in that same visit order.
	uadj := scratch.Grow(&a.userAdj, uoff[nu])
	pos := 0
	for _, pu := range a.users.ids {
		for _, pv := range g.UserNeighbors(pu) {
			uadj[pos] = a.merchants.get(pv)
			pos++
		}
	}
	return a.finish(g, nu)
}

// InducedByMerchantsArena is InducedByMerchants building into a.
func (g *Graph) InducedByMerchantsArena(a *Arena, merchantIDs []uint32) *Subgraph {
	a.users.reset(g.NumUsers())
	a.merchants.reset(g.NumMerchants())
	edges := a.edges[:0]
	for _, pv := range merchantIDs {
		if a.merchants.seen(pv) {
			continue
		}
		lv := a.merchants.get(pv)
		for _, pu := range g.MerchantNeighbors(pv) {
			edges = append(edges, Edge{U: a.users.get(pu), V: lv})
		}
	}
	a.edges = edges
	return a.scatterLocal(g, edges)
}

// InducedByBothArena is InducedByBoth building into a.
func (g *Graph) InducedByBothArena(a *Arena, userIDs, merchantIDs []uint32) *Subgraph {
	a.users.reset(g.NumUsers())
	a.merchants.reset(g.NumMerchants())
	a.keep.Reset(g.NumMerchants())
	for _, v := range merchantIDs {
		a.keep.Add(int(v))
	}
	a.dedup.Reset(g.NumUsers())
	edges := a.edges[:0]
	for _, pu := range userIDs {
		if !a.dedup.TryAdd(int(pu)) {
			continue
		}
		for _, pv := range g.UserNeighbors(pu) {
			if a.keep.Has(int(pv)) {
				edges = append(edges, Edge{U: a.users.get(pu), V: a.merchants.get(pv)})
			}
		}
	}
	a.edges = edges
	return a.scatterLocal(g, edges)
}

// scatterLocal counting-sorts already-localized edges into user rows and
// finishes the build. Every local user id stems from at least one edge, so
// row tables are bounded by len(edges).
func (a *Arena) scatterLocal(parent *Graph, edges []Edge) *Subgraph {
	nu := len(a.users.ids)
	uoff := scratch.Grow(&a.userOff, nu+1)
	cnt := scratch.GrowZero(&a.cur, nu)
	for _, e := range edges {
		cnt[e.U]++
	}
	uoff[0] = 0
	for l := 0; l < nu; l++ {
		uoff[l+1] = uoff[l] + cnt[l]
		cnt[l] = 0
	}
	uadj := scratch.Grow(&a.userAdj, len(edges))
	for _, e := range edges {
		uadj[uoff[e.U]+cnt[e.U]] = e.V
		cnt[e.U]++
	}
	return a.finish(parent, nu)
}

// finish sorts and dedups the user rows already scattered into
// a.userOff/a.userAdj, derives the merchant-side CSR (rows come out sorted
// because the fill is user-major), and wires up the arena-owned Subgraph.
// The result is byte-identical to what buildFromEdges produces for the same
// logical edge set.
func (a *Arena) finish(parent *Graph, nu int) *Subgraph {
	uoff := a.userOff[:nu+1]
	uadj := a.userAdj
	// Local merchant ids within a row are in first-seen order, not
	// ascending; the CSR invariant wants strictly sorted rows. Sort each
	// row in place, then compact duplicates out (w trails i, so writes
	// never clobber unread input).
	w := 0
	start := uoff[0]
	for u := 0; u < nu; u++ {
		end := uoff[u+1]
		slices.Sort(uadj[start:end])
		uoff[u] = w
		for i := start; i < end; i++ {
			if i > start && uadj[i] == uadj[i-1] {
				continue
			}
			uadj[w] = uadj[i]
			w++
		}
		start = end
	}
	uoff[nu] = w
	uadj = uadj[:w]

	nm := len(a.merchants.ids)
	moff := scratch.GrowZero(&a.merchOff, nm+1)
	for _, v := range uadj {
		moff[v+1]++
	}
	for v := 1; v <= nm; v++ {
		moff[v] += moff[v-1]
	}
	madj := scratch.Grow(&a.merchAdj, w)
	cur := scratch.GrowZero(&a.cur, nm)
	for u := 0; u < nu; u++ {
		for i := uoff[u]; i < uoff[u+1]; i++ {
			v := uadj[i]
			madj[moff[v]+cur[v]] = uint32(u)
			cur[v]++
		}
	}
	a.g = Graph{userOff: uoff, userAdj: uadj, merchOff: moff, merchAdj: madj}
	a.sub = Subgraph{Graph: &a.g, UserIDs: a.users.ids, MerchantIDs: a.merchants.ids}
	return &a.sub
}
